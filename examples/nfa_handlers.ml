(* The paper's second way of exposing choices (§3.1): "implement a
   distributed system as a non-deterministic finite state automaton
   with multiple applicable handlers ... Each of the handlers is likely
   to be shorter as well as easier to maintain and reason about. It is
   then the runtime's task to resolve the non-determinism."

   Here an edge cache receives documents. TWO tiny handlers apply to
   every incoming document — keep it locally, or push it onward to the
   origin server — and neither contains any policy. The runtime picks a
   handler per delivery; the exposed objective (serve hits locally, but
   respect the cache budget) is all the guidance it gets.

   Run with: dune exec examples/nfa_handlers.exe *)

module Edge_cache = struct
  type msg = Doc of int | Lookup of int | Hit | Miss

  type state = {
    self : Proto.Node_id.t;
    cached : int list;  (* newest first, bounded *)
    pushed : int;
    hits : int;
    misses : int;
  }

  let capacity = 8
  let origin = Proto.Node_id.of_int 0

  let name = "edge-cache"
  let equal_state (a : state) b = a = b

  let msg_kind = function
    | Doc _ -> "doc"
    | Lookup _ -> "lookup"
    | Hit -> "hit"
    | Miss -> "miss"

  let msg_bytes = function Doc _ -> 4096 | Lookup _ -> 64 | Hit | Miss -> 32
  let msg_codec = None
  let validate = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_msg ppf = function
    | Doc d -> Format.fprintf ppf "doc(%d)" d
    | Lookup d -> Format.fprintf ppf "lookup(%d)" d
    | Hit -> Format.fprintf ppf "hit"
    | Miss -> Format.fprintf ppf "miss"

  let pp_state ppf st =
    Format.fprintf ppf "{cached=%d hits=%d misses=%d}" (List.length st.cached) st.hits st.misses

  let fingerprint = None

  let init (ctx : Proto.Ctx.t) =
    ({ self = ctx.self; cached = []; pushed = 0; hits = 0; misses = 0 }, [])

  let is_origin st = Proto.Node_id.equal st.self origin

  (* Both handlers guard on Doc at a non-origin node: the ambiguity IS
     the exposed choice. Each is two lines. *)
  let h_keep =
    Proto.Handler.v ~name:"doc/keep"
      ~guard:(fun st ~src:_ m -> (match m with Doc _ -> true | _ -> false) && not (is_origin st))
      (fun _ st ~src:_ m ->
        match m with
        | Doc d ->
            let cached = d :: List.filteri (fun i _ -> i < capacity - 1) st.cached in
            ({ st with cached }, [])
        | _ -> (st, []))

  let h_push =
    Proto.Handler.v ~name:"doc/push"
      ~guard:(fun st ~src:_ m -> (match m with Doc _ -> true | _ -> false) && not (is_origin st))
      (fun _ st ~src:_ m ->
        match m with
        | Doc d -> ({ st with pushed = st.pushed + 1 }, [ Proto.Action.send ~dst:origin (Doc d) ])
        | _ -> (st, []))

  let h_origin_store =
    Proto.Handler.v ~name:"doc/origin"
      ~guard:(fun st ~src:_ m -> (match m with Doc _ -> true | _ -> false) && is_origin st)
      (fun _ st ~src:_ m ->
        match m with
        | Doc d -> ({ st with cached = d :: st.cached }, [])
        | _ -> (st, []))

  let h_lookup =
    Proto.Handler.v ~name:"lookup"
      ~guard:(fun _ ~src:_ m -> match m with Lookup _ -> true | _ -> false)
      (fun _ st ~src m ->
        match m with
        | Lookup d ->
            if List.mem d st.cached then
              ({ st with hits = st.hits + 1 }, [ Proto.Action.send ~dst:src Hit ])
            else ({ st with misses = st.misses + 1 }, [ Proto.Action.send ~dst:src Miss ])
        | _ -> (st, []))

  let h_reply =
    Proto.Handler.v ~name:"reply"
      ~guard:(fun _ ~src:_ m -> match m with Hit | Miss -> true | _ -> false)
      (fun _ st ~src:_ _ -> (st, []))

  let receive = [ h_push; h_keep; h_origin_store; h_lookup; h_reply ]
  let on_timer _ st _ : state * msg Proto.Action.t list = (st, [])

  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"hit-rate" ~weight:2.0 (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int (st.hits - st.misses)) 0. view);
      Core.Objective.v ~name:"cache-pressure" ~weight:0.2 (fun view ->
          Proto.View.fold
            (fun acc _ st -> acc -. float_of_int (max 0 (List.length st.cached - capacity)))
            0. view);
    ]

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.safety ~name:"bounded-cache" (fun view ->
          Proto.View.fold
            (fun ok _ st -> ok && (is_origin st || List.length st.cached <= capacity))
            true view);
    ]

  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Edge_cache)

let run label configure =
  let topology =
    Net.Topology.uniform ~n:3 (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = E.create ~seed:4 ~jitter:0. ~topology () in
  configure eng;
  for i = 0 to 2 do
    E.spawn eng (Proto.Node_id.of_int i)
  done;
  E.run_for eng 0.1;
  (* Zipf-ish workload against edge node 1: docs arrive, lookups follow. *)
  let rng = Dsim.Rng.create 9 in
  for i = 1 to 120 do
    let doc = Dsim.Rng.int rng 12 in
    let at = 0.2 *. float_of_int i in
    if i mod 3 = 0 then
      E.inject eng ~after:at ~src:(Proto.Node_id.of_int 2) ~dst:(Proto.Node_id.of_int 1)
        (Edge_cache.Doc doc)
    else
      E.inject eng ~after:at ~src:(Proto.Node_id.of_int 2) ~dst:(Proto.Node_id.of_int 1)
        (Edge_cache.Lookup doc)
  done;
  E.run_for eng 40.;
  let st = Option.get (E.state_of eng (Proto.Node_id.of_int 1)) in
  Printf.printf "  %-12s hits %3d, misses %3d, pushed %2d  (handler decisions: %d)\n" label
    st.Edge_cache.hits st.Edge_cache.misses st.Edge_cache.pushed (E.stats eng).decisions

let () =
  print_endline "Edge cache as an NFA: two applicable handlers per document,";
  print_endline "zero policy code; the runtime resolves the ambiguity.\n";
  run "first(=push)" (fun eng -> E.set_resolver eng Core.Resolver.first);
  run "random" (fun eng -> E.set_resolver eng Core.Resolver.random);
  run "lookahead" (fun eng ->
      E.set_lookahead eng { E.default_lookahead with horizon = 1.0; max_events = 100 });
  print_endline "\nEvery ambiguous delivery shows up in the decision log under the";
  print_endline "label 'handler:doc' - the NFA transition is just another choice."
