(* Quickstart: the whole programming model on one page.

   We build a tiny "work sharing" service in the paper's style:
   1. the protocol EXPOSES its one policy decision — which worker to
      offload a job to — as a labelled choice with features;
   2. it EXPOSES an objective — jobs completed;
   3. the runtime RESOLVES the choice: we run the same unchanged
      protocol under a random resolver and under predictive lookahead
      and watch the objective improve.

   Run with: dune exec examples/quickstart.exe *)

module Work_sharing = struct
  type msg = Job of { cost : float } | Done

  type state = {
    self : Proto.Node_id.t;
    speed : float;  (* jobs this node can absorb per second *)
    backlog : int;
    completed : int;
  }

  let name = "work-sharing"
  let equal_state (a : state) b = a = b
  let msg_kind = function Job _ -> "job" | Done -> "done"
  let msg_bytes = function Job _ -> 256 | Done -> 16
  let msg_codec = None
  let validate = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_msg ppf = function
    | Job { cost } -> Format.fprintf ppf "job(%.1f)" cost
    | Done -> Format.fprintf ppf "done"

  let pp_state ppf st =
    Format.fprintf ppf "{backlog=%d completed=%d}" st.backlog st.completed

  let fingerprint = None

  (* Node 0 is the dispatcher; workers differ in speed. *)
  let init (ctx : Proto.Ctx.t) =
    let id = Proto.Node_id.to_int ctx.self in
    let speed = if id = 0 then 0. else float_of_int id in
    ( { self = ctx.self; speed; backlog = 0; completed = 0 },
      if id = 0 then [ Proto.Action.set_timer ~id:"dispatch" ~after:0.1 ] else [] )

  let receive =
    [
      Proto.Handler.v ~name:"job"
        ~guard:(fun _ ~src:_ m -> match m with Job _ -> true | Done -> false)
        (fun _ st ~src:_ _ ->
          (* Start servicing if idle; service time depends on speed. *)
          let start =
            if st.backlog = 0 then [ Proto.Action.set_timer ~id:"work" ~after:(1. /. st.speed) ]
            else []
          in
          ({ st with backlog = st.backlog + 1 }, start));
      Proto.Handler.v ~name:"done"
        ~guard:(fun _ ~src:_ m -> m = Done)
        (fun _ st ~src:_ _ -> (st, []));
    ]

  let workers = List.map Proto.Node_id.of_int [ 1; 2; 3 ]

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "dispatch" ->
        (* THE exposed choice: which worker gets the next job? The
           features let any resolver reason about it; the protocol
           itself takes no position. *)
        let alternative w =
          Core.Choice.alt
            ~features:[ ("rtt_ms", Proto.Ctx.predicted_ms ctx w) ]
            ~describe:(Format.asprintf "%a" Proto.Node_id.pp w)
            w
        in
        let target =
          ctx.choose (Core.Choice.make ~label:"offload" (List.map alternative workers))
        in
        ( st,
          [
            Proto.Action.send ~dst:target (Job { cost = 1.0 });
            Proto.Action.set_timer ~id:"dispatch" ~after:0.4;
          ] )
    | "work" ->
        if st.backlog > 0 then
          let st = { st with backlog = st.backlog - 1; completed = st.completed + 1 } in
          let continue =
            if st.backlog > 0 then [ Proto.Action.set_timer ~id:"work" ~after:(1. /. st.speed) ]
            else []
          in
          (st, continue)
        else (st, [])
    | _ -> (st, [])

  (* The exposed objective: higher is better. *)
  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"throughput" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int st.completed) 0. view);
      Core.Objective.v ~name:"low-backlog" ~weight:0.5 (fun view ->
          Proto.View.fold (fun acc _ st -> acc -. float_of_int st.backlog) 0. view);
    ]

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.safety ~name:"sane-backlog" (fun view ->
          Proto.View.fold (fun ok _ st -> ok && st.backlog >= 0) true view);
    ]

  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Work_sharing)

let run resolver_name configure =
  (* Worker 3 is fast but far; worker 1 is slow but near — a resolver
     has something real to learn. *)
  let topology =
    Net.Topology.of_matrix
      (Array.init 4 (fun a ->
           Array.init 4 (fun b ->
               if a = b then Net.Linkprop.ideal
               else
                 let ms = 5. +. (10. *. float_of_int (a + b)) in
                 Net.Linkprop.v ~latency:(ms /. 1000.) ~bandwidth:1_000_000. ~loss:0.)))
  in
  let eng = E.create ~seed:1 ~topology () in
  configure eng;
  List.iter (E.spawn eng) (List.map Proto.Node_id.of_int [ 0; 1; 2; 3 ]);
  E.run_for eng 60.;
  let completed =
    Proto.View.fold (fun acc _ st -> acc + st.Work_sharing.completed) 0 (E.global_view eng)
  in
  Printf.printf "  %-20s completed %3d jobs (objective %.1f, %d choices resolved)\n"
    resolver_name completed (E.objective_score eng) (E.stats eng).decisions

let () =
  print_endline "Work-sharing quickstart: one protocol, three policies.";
  run "first (always w1)" (fun eng -> E.set_resolver eng Core.Resolver.first);
  run "random" (fun eng -> E.set_resolver eng Core.Resolver.random);
  run "lookahead" (fun eng ->
      E.set_lookahead eng { E.default_lookahead with horizon = 2.0; max_events = 200 });
  print_endline "\nThe protocol never changed - only the resolver did.";
  print_endline "That inversion is the paper's programming model."
