(* Command-line driver: one subcommand per experiment family, so every
   result in EXPERIMENTS.md can be regenerated (and varied) from the
   shell. *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic random seed.")

(* ---------- randtree ---------- *)

let randtree_setup =
  let parse = function
    | "baseline" -> Ok Experiments.Randtree_exp.Baseline
    | "random" -> Ok Experiments.Randtree_exp.Choice_random
    | "crystalball" -> Ok Experiments.Randtree_exp.Choice_crystalball
    | "greedy" -> Ok Experiments.Randtree_exp.Choice_greedy
    | "bandit" -> Ok Experiments.Randtree_exp.Choice_bandit
    | s -> Error (`Msg ("unknown setup: " ^ s))
  in
  let print ppf s = Format.fprintf ppf "%s" (Experiments.Randtree_exp.setup_name s) in
  Arg.conv (parse, print)

let randtree_cmd =
  let run seed nodes setups with_failure =
    let setups =
      match setups with [] -> Experiments.Randtree_exp.paper_setups | s -> s
    in
    let rows =
      List.map
        (fun setup ->
          let o = Experiments.Randtree_exp.run ~nodes ~seed ~with_failure setup in
          [
            Experiments.Randtree_exp.setup_name setup;
            Metrics.Report.fint o.Experiments.Randtree_exp.depth_after_join;
            Metrics.Report.fopt_int o.Experiments.Randtree_exp.depth_after_rejoin;
            Metrics.Report.fint o.Experiments.Randtree_exp.joined;
            Metrics.Report.fint o.Experiments.Randtree_exp.messages;
          ])
        setups
    in
    Metrics.Report.print
      ~title:(Printf.sprintf "RandTree: %d nodes, seed %d" nodes seed)
      ~header:[ "setup"; "join depth"; "rejoin depth"; "joined"; "msgs" ]
      rows
  in
  let nodes =
    Arg.(value & opt int 31 & info [ "nodes" ] ~docv:"N" ~doc:"Number of participants.")
  in
  let setups =
    Arg.(
      value
      & opt_all randtree_setup []
      & info [ "setup" ] ~docv:"SETUP"
          ~doc:"Setup to run (baseline|random|crystalball|greedy|bandit); repeatable.")
  in
  let with_failure =
    Arg.(value & flag & info [ "with-failure" ] ~doc:"Also fail and rejoin a subtree (E3).")
  in
  Cmd.v
    (Cmd.info "randtree" ~doc:"The paper's case study: overlay-tree join/rejoin depth (E2/E3).")
    Term.(const run $ seed_arg $ nodes $ setups $ with_failure)

(* ---------- gossip ---------- *)

let gossip_cmd =
  let run seed waves slow =
    let scenario =
      if slow then Experiments.Gossip_exp.Slow_stub else Experiments.Gossip_exp.Uniform
    in
    let rows =
      List.map
        (fun policy ->
          let o = Experiments.Gossip_exp.run ~seed ~waves ~scenario policy in
          [
            Experiments.Gossip_exp.policy_name policy;
            Metrics.Report.ffloat o.Experiments.Gossip_exp.mean_coverage_s;
            Metrics.Report.ffloat o.Experiments.Gossip_exp.max_coverage_s;
            Metrics.Report.fint o.Experiments.Gossip_exp.messages;
          ])
        Experiments.Gossip_exp.all_policies
    in
    Metrics.Report.print
      ~title:
        (Printf.sprintf "Gossip coverage, scenario %s, %d waves"
           (Experiments.Gossip_exp.scenario_name scenario)
           waves)
      ~header:[ "policy"; "mean (s)"; "max (s)"; "msgs" ]
      rows
  in
  let waves = Arg.(value & opt int 5 & info [ "waves" ] ~docv:"W" ~doc:"Rumor waves.") in
  let slow = Arg.(value & flag & info [ "slow-stub" ] ~doc:"Put one stub behind a slow link.") in
  Cmd.v
    (Cmd.info "gossip" ~doc:"Gossip peer-selection policies (E4).")
    Term.(const run $ seed_arg $ waves $ slow)

(* ---------- dissem ---------- *)

let dissem_scenario =
  let parse = function
    | "fast" -> Ok Experiments.Dissem_exp.Fast_seed
    | "slow" -> Ok Experiments.Dissem_exp.Slow_seed
    | "choked" -> Ok Experiments.Dissem_exp.Choked_seed
    | s -> Error (`Msg ("unknown scenario: " ^ s))
  in
  let print ppf s = Format.fprintf ppf "%s" (Experiments.Dissem_exp.scenario_name s) in
  Arg.conv (parse, print)

let dissem_cmd =
  let run seed scenario =
    let rows =
      List.map
        (fun policy ->
          let o = Experiments.Dissem_exp.run ~seed ~scenario policy in
          [
            Experiments.Dissem_exp.policy_name policy;
            Printf.sprintf "%d/15" o.Experiments.Dissem_exp.completed;
            Metrics.Report.ffloat o.Experiments.Dissem_exp.mean_completion_s;
            Metrics.Report.ffloat o.Experiments.Dissem_exp.max_completion_s;
            Metrics.Report.fint o.Experiments.Dissem_exp.duplicate_pieces;
          ])
        Experiments.Dissem_exp.all_policies
    in
    Metrics.Report.print
      ~title:
        (Printf.sprintf "Content distribution, scenario %s"
           (Experiments.Dissem_exp.scenario_name scenario))
      ~header:[ "policy"; "done"; "mean (s)"; "max (s)"; "dup pieces" ]
      rows
  in
  let scenario =
    Arg.(
      value
      & opt dissem_scenario Experiments.Dissem_exp.Choked_seed
      & info [ "scenario" ] ~docv:"S" ~doc:"Seed bandwidth: fast|slow|choked.")
  in
  Cmd.v
    (Cmd.info "dissem" ~doc:"Content-distribution block-selection policies (E5).")
    Term.(const run $ seed_arg $ scenario)

(* ---------- paxos ---------- *)

let paxos_cmd =
  let run seed duration loaded =
    let scenario =
      if loaded then Experiments.Paxos_exp.Loaded_leader else Experiments.Paxos_exp.Balanced_wan
    in
    let rows =
      List.map
        (fun policy ->
          let o = Experiments.Paxos_exp.run ~seed ~duration ~scenario policy in
          [
            Experiments.Paxos_exp.policy_name policy;
            Printf.sprintf "%d/%d" o.Experiments.Paxos_exp.committed o.Experiments.Paxos_exp.born;
            Metrics.Report.ffloat ~decimals:0 o.Experiments.Paxos_exp.mean_latency_ms;
            Metrics.Report.ffloat ~decimals:0 o.Experiments.Paxos_exp.p99_latency_ms;
            Metrics.Report.fint o.Experiments.Paxos_exp.agreement_violations;
          ])
        Experiments.Paxos_exp.all_policies
    in
    Metrics.Report.print
      ~title:
        (Printf.sprintf "Paxos, scenario %s, %.0fs"
           (Experiments.Paxos_exp.scenario_name scenario)
           duration)
      ~header:[ "policy"; "committed"; "mean (ms)"; "p99 (ms)"; "agreement viol." ]
      rows
  in
  let duration =
    Arg.(value & opt float 60. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run time.")
  in
  let loaded =
    Arg.(value & flag & info [ "loaded-leader" ] ~doc:"Congest the fixed leader's access link.")
  in
  Cmd.v
    (Cmd.info "paxos" ~doc:"Consensus proposer-assignment policies (E6).")
    Term.(const run $ seed_arg $ duration $ loaded)

(* ---------- dht ---------- *)

let dht_cmd =
  let run seed duration =
    let rows =
      List.map
        (fun policy ->
          let o = Experiments.Dht_exp.run ~seed ~duration policy in
          [
            Experiments.Dht_exp.policy_name policy;
            Printf.sprintf "%d/%d" o.Experiments.Dht_exp.completed o.Experiments.Dht_exp.issued;
            Metrics.Report.ffloat ~decimals:0 o.Experiments.Dht_exp.mean_latency_ms;
            Metrics.Report.ffloat ~decimals:0 o.Experiments.Dht_exp.p99_latency_ms;
            Metrics.Report.ffloat o.Experiments.Dht_exp.mean_hops;
          ])
        Experiments.Dht_exp.all_policies
    in
    Metrics.Report.print
      ~title:(Printf.sprintf "DHT routing, %.0fs of random lookups" duration)
      ~header:[ "policy"; "completed"; "mean (ms)"; "p99 (ms)"; "mean hops" ]
      rows
  in
  let duration =
    Arg.(value & opt float 40. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run time.")
  in
  Cmd.v
    (Cmd.info "dht" ~doc:"Chord-style DHT next-hop routing policies (E7).")
    Term.(const run $ seed_arg $ duration)

(* ---------- kvstore ---------- *)

let kvstore_cmd =
  let run seed duration =
    let rows =
      List.map
        (fun policy ->
          let o = Experiments.Kvstore_exp.run ~seed ~duration policy in
          [
            Experiments.Kvstore_exp.policy_name policy;
            Metrics.Report.fint o.Experiments.Kvstore_exp.reads;
            Metrics.Report.ffloat ~decimals:1 o.Experiments.Kvstore_exp.mean_read_ms;
            Metrics.Report.ffloat ~decimals:1 o.Experiments.Kvstore_exp.p99_read_ms;
            Metrics.Report.ffloat o.Experiments.Kvstore_exp.mean_staleness;
            Metrics.Report.fint o.Experiments.Kvstore_exp.monotonic_violations;
          ])
        Experiments.Kvstore_exp.all_policies
    in
    Metrics.Report.print
      ~title:(Printf.sprintf "Replicated KV store, %.0fs of session traffic" duration)
      ~header:[ "policy"; "reads"; "mean (ms)"; "p99 (ms)"; "staleness"; "mono viol." ]
      rows
  in
  let duration =
    Arg.(value & opt float 60. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run time.")
  in
  Cmd.v
    (Cmd.info "kvstore" ~doc:"Replicated KV store read-replica policies (E8).")
    Term.(const run $ seed_arg $ duration)

(* ---------- steering ---------- *)

let steering_cmd =
  let run seed duration delay =
    let base = Experiments.Steering_exp.run ~seed ~duration ~with_runtime:false () in
    let steered =
      Experiments.Steering_exp.run ~seed ~duration ~checkpoint_delay:delay ~with_runtime:true ()
    in
    Metrics.Report.print
      ~title:(Printf.sprintf "Lease race over %.0fs, checkpoint staleness %.2fs" duration delay)
      ~header:[ "setup"; "violations"; "grants"; "filtered"; "vetoes"; "worlds"; "cached"; "fp coll." ]
      [
        [
          "no runtime";
          Metrics.Report.fint base.Experiments.Steering_exp.violations;
          Metrics.Report.fint base.Experiments.Steering_exp.grants;
          "0";
          "0";
          "0";
          "0";
          "0";
        ];
        [
          "CrystalBall runtime";
          Metrics.Report.fint steered.Experiments.Steering_exp.violations;
          Metrics.Report.fint steered.Experiments.Steering_exp.grants;
          Metrics.Report.fint steered.Experiments.Steering_exp.filtered;
          Metrics.Report.fint steered.Experiments.Steering_exp.vetoes;
          Metrics.Report.fint steered.Experiments.Steering_exp.worlds_explored;
          Metrics.Report.fint steered.Experiments.Steering_exp.outcomes_cached;
          Metrics.Report.fint steered.Experiments.Steering_exp.fingerprint_collisions;
        ];
      ]
  in
  let duration =
    Arg.(value & opt float 120. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run time.")
  in
  let delay =
    Arg.(
      value & opt float 0.05
      & info [ "staleness" ] ~docv:"SECONDS" ~doc:"Checkpoint collection delay.")
  in
  Cmd.v
    (Cmd.info "steering" ~doc:"Execution steering on the buggy lease service (S1).")
    Term.(const run $ seed_arg $ duration $ delay)

(* ---------- metrics ---------- *)

let metrics_cmd =
  let run () =
    match Experiments.Metrics_exp.run () with
    | None -> prerr_endline "sources not found; run from the repository"
    | Some c ->
        Metrics.Report.print ~title:"Code metrics (E1)"
          ~header:[ "variant"; "LoC"; "handlers"; "if-else/handler" ]
          [
            [
              "baseline";
              Metrics.Report.fint c.baseline.Metrics.Code_metrics.loc;
              Metrics.Report.fint c.baseline.Metrics.Code_metrics.handlers;
              Metrics.Report.ffloat c.baseline.Metrics.Code_metrics.per_handler;
            ];
            [
              "choice-exposed";
              Metrics.Report.fint c.choice.Metrics.Code_metrics.loc;
              Metrics.Report.fint c.choice.Metrics.Code_metrics.handlers;
              Metrics.Report.ffloat c.choice.Metrics.Code_metrics.per_handler;
            ];
          ];
        Printf.printf "LoC reduction: %.0f%%\n" c.loc_reduction_percent
  in
  Cmd.v (Cmd.info "metrics" ~doc:"Code metrics of the two RandTree variants (E1).")
    Term.(const run $ const ())

(* ---------- overhead ---------- *)

let overhead_cmd =
  let run seed periods =
    let periods = if periods = [] then [ 5.0; 1.0; 0.2 ] else periods in
    let base = Experiments.Overhead_exp.run ~seed ~checkpoint_period:None () in
    let rows =
      [
        "no runtime";
        Metrics.Report.ffloat ~decimals:1 base.Experiments.Overhead_exp.mean_completion_s;
        "0";
        "0";
      ]
      :: List.map
           (fun period ->
             let o = Experiments.Overhead_exp.run ~seed ~checkpoint_period:(Some period) () in
             [
               Printf.sprintf "period %.2fs" period;
               Metrics.Report.ffloat ~decimals:1 o.Experiments.Overhead_exp.mean_completion_s;
               Metrics.Report.fint o.Experiments.Overhead_exp.checkpoints;
               Printf.sprintf "%d KB" (o.Experiments.Overhead_exp.checkpoint_bytes / 1024);
             ])
           periods
    in
    Metrics.Report.print ~title:"Checkpoint traffic vs swarm completion (A4)"
      ~header:[ "collection"; "mean done (s)"; "checkpoints"; "bytes" ]
      rows
  in
  let periods =
    Arg.(
      value & opt_all float []
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Checkpoint period to test; repeatable.")
  in
  Cmd.v
    (Cmd.info "overhead" ~doc:"Checkpoint communication overhead vs freshness (A4).")
    Term.(const run $ seed_arg $ periods)

(* ---------- explore ---------- *)

let explore_cmd =
  let run seed depth drops generic =
    let module App = Apps.Lease.Default in
    let module E = Engine.Sim.Make (App) in
    let module Ex = Mc.Explorer.Make (App) in
    let module St = Mc.Steering.Make (App) in
    (* Drive the buggy lease service until a lease is in flight while
       someone already holds one — the paper's "imminent inconsistency"
       snapshot — then run consequence prediction on it. *)
    let eng = E.create ~seed ~jitter:0. ~topology:Experiments.Steering_exp.topology () in
    E.set_resolver eng Core.Resolver.random;
    for i = 0 to 3 do
      E.spawn eng (Proto.Node_id.of_int i)
    done;
    let interesting view =
      List.exists
        (fun (_, _, m) -> String.equal (App.msg_kind m) "lease")
        view.Proto.View.inflight
      && Proto.View.fold (fun n _ st -> if App.holding st then n + 1 else n) 0 view >= 1
    in
    let rec seek budget =
      if budget = 0 then None
      else begin
        E.run_for eng 0.05;
        let view = E.global_view eng in
        if interesting view then Some view else seek (budget - 1)
      end
    in
    match seek 4000 with
    | None -> prerr_endline "no interesting snapshot reached; try another seed"
    | Some view ->
        Printf.printf "snapshot at %s: %d nodes, %d messages in flight\n"
          (Format.asprintf "%a" Dsim.Vtime.pp view.Proto.View.time)
          (Proto.View.node_count view)
          (Proto.View.inflight_count view);
        let world = Ex.world_of_view view in
        let result =
          Ex.explore ~include_drops:drops ~generic_node:generic ~depth world
        in
        Printf.printf "explored %d worlds (%d deduped, %d cached outcomes, %d fp collisions%s)\n"
          result.Ex.worlds_explored result.Ex.worlds_deduped result.Ex.outcomes_cached
          result.Ex.fingerprint_collisions
          (if result.Ex.truncated then ", truncated" else "");
        (match result.Ex.violations with
        | [] -> print_endline "no violation reachable within the horizon"
        | vs ->
            Printf.printf "%d violating path(s); first:\n" (List.length vs);
            let v = List.hd vs in
            Printf.printf "  property %s after:\n" v.Ex.property;
            List.iter
              (fun s -> Printf.printf "    %s\n" (Format.asprintf "%a" Ex.pp_step s))
              v.Ex.path);
        let verdict, stats =
          St.decide_with_stats ~include_drops:drops ~generic_node:generic ~depth world
        in
        (match verdict with
        | St.No_violation -> print_endline "steering: nothing to do"
        | St.Steer vetoes ->
            print_endline "steering: safe to veto —";
            List.iter
              (fun veto -> Printf.printf "  %s\n" (Format.asprintf "%a" St.pp_veto veto))
              vetoes
        | St.Cannot_steer props ->
            Printf.printf "steering: cannot steer away from %s\n" (String.concat ", " props));
        Printf.printf "steering explored %d worlds (%d cached outcomes, %d fp collisions)\n"
          stats.St.worlds_explored stats.St.outcomes_cached stats.St.fingerprint_collisions
  in
  let depth =
    Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc:"Exploration depth.")
  in
  let drops = Arg.(value & flag & info [ "drops" ] ~doc:"Also branch on message loss.") in
  let generic =
    Arg.(value & flag & info [ "generic-node" ] ~doc:"Inject the generic-node alphabet.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Consequence prediction on a live snapshot of the buggy lease service.")
    Term.(const run $ seed_arg $ depth $ drops $ generic)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let run seed rounds factor flaps overload drift byz apps show_plans =
    if factor <= 0. then begin
      Printf.eprintf "intensity must be positive (got %g)\n" factor;
      exit 2
    end;
    if rounds <= 0 then begin
      Printf.eprintf "rounds must be positive (got %d)\n" rounds;
      exit 2
    end;
    if flaps < 0 then begin
      Printf.eprintf "flaps must be non-negative (got %d)\n" flaps;
      exit 2
    end;
    if overload < 0 then begin
      Printf.eprintf "overload must be non-negative (got %d)\n" overload;
      exit 2
    end;
    if drift < 0 then begin
      Printf.eprintf "drift must be non-negative (got %d)\n" drift;
      exit 2
    end;
    if byz < -1 then begin
      Printf.eprintf "byz must be -1 (global), 0 (off) or a link count (got %d)\n" byz;
      exit 2
    end;
    let apps =
      match apps with
      | [] -> Experiments.Chaos_exp.apps
      | picked ->
          List.iter
            (fun a ->
              if not (List.mem a Experiments.Chaos_exp.apps) then begin
                Printf.eprintf "unknown app %s (have: %s)\n" a
                  (String.concat ", " Experiments.Chaos_exp.apps);
                exit 2
              end)
            picked;
          picked
    in
    let reports =
      List.concat_map
        (fun app ->
          List.map
            (fun i ->
              Experiments.Chaos_exp.run ~factor ~flaps ~overload ~drift ~byz ~seed:(seed + i) app)
            (List.init rounds Fun.id))
        apps
    in
    let rows =
      List.map
        (fun (r : Experiments.Chaos_exp.report) ->
          [
            r.Experiments.Chaos_exp.app;
            Metrics.Report.fint r.Experiments.Chaos_exp.seed;
            (if r.Experiments.Chaos_exp.violations = 0 then "yes"
             else Printf.sprintf "NO (%d)" r.Experiments.Chaos_exp.violations);
            (if r.Experiments.Chaos_exp.recovered then "yes" else "NO");
            (if r.Experiments.Chaos_exp.self_healed then "yes" else "NO");
            Metrics.Report.fint r.Experiments.Chaos_exp.plan_events;
            Metrics.Report.fint r.Experiments.Chaos_exp.delivered;
            Metrics.Report.fint r.Experiments.Chaos_exp.dropped;
            Metrics.Report.fint r.Experiments.Chaos_exp.duplicated;
            Metrics.Report.fint r.Experiments.Chaos_exp.corrupted;
            Metrics.Report.fint r.Experiments.Chaos_exp.decode_failures;
            Printf.sprintf "%d(-%d/+%d)" r.Experiments.Chaos_exp.byz_emitted
              r.Experiments.Chaos_exp.byz_rejected r.Experiments.Chaos_exp.byz_accepted;
            Metrics.Report.fint r.Experiments.Chaos_exp.sheds;
            (if r.Experiments.Chaos_exp.shed_bounded then
               Metrics.Report.fint r.Experiments.Chaos_exp.max_depth
             else Printf.sprintf "OVER (%d)" r.Experiments.Chaos_exp.max_depth);
            (if r.Experiments.Chaos_exp.overload_recovered then "yes" else "NO");
          ])
        reports
    in
    Metrics.Report.print
      ~title:
        (Printf.sprintf "Chaos soak: %d storms/app, base seed %d, intensity x%.1f" rounds seed
           factor)
      ~header:
        [
          "app";
          "seed";
          "safe";
          "recovered";
          "healed";
          "events";
          "dlv";
          "drop";
          "dup";
          "corrupt";
          "badwire";
          "byz";
          "shed";
          "depth";
          "drained";
        ]
      rows;
    if show_plans then
      List.iter
        (fun (r : Experiments.Chaos_exp.report) ->
          Printf.printf "\n%s seed %d plan:\n  %s\n" r.Experiments.Chaos_exp.app
            r.Experiments.Chaos_exp.seed r.Experiments.Chaos_exp.plan_text)
        reports;
    let bad =
      List.filter
        (fun (r : Experiments.Chaos_exp.report) ->
          r.Experiments.Chaos_exp.violations > 0
          || (not r.Experiments.Chaos_exp.recovered)
          || (not r.Experiments.Chaos_exp.shed_bounded)
          || not r.Experiments.Chaos_exp.overload_recovered)
        reports
    in
    if bad <> [] then begin
      Printf.printf "\n%d of %d soaks failed\n" (List.length bad) (List.length reports);
      exit 1
    end
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc:"Storms per application.")
  in
  let factor =
    Arg.(
      value
      & opt float 2.
      & info [ "intensity" ] ~docv:"X"
          ~doc:"Scale factor on storm length and fault counts (tests use 1).")
  in
  let flaps =
    Arg.(
      value
      & opt int 0
      & info [ "flaps" ] ~docv:"N"
          ~doc:
            "Add a flapping partition with N cut/heal cycles to every storm (stretches the \
             storm so the failure detector can see each cycle).")
  in
  let overload =
    Arg.(
      value
      & opt int 0
      & info [ "overload" ] ~docv:"N"
          ~doc:
            "Add N targeted injection bursts to every storm; the soak bounds mailboxes, sheds \
             by priority and turns on the circuit breaker, then asserts the queues never \
             overran and drained by the end of grace.")
  in
  let drift =
    Arg.(
      value
      & opt int 0
      & info [ "drift" ] ~docv:"N"
          ~doc:
            "Skew N nodes' local clocks per storm (rate drift plus one NTP-style step \
             excursion); all clocks heal before the storm ends.")
  in
  let byz =
    Arg.(
      value
      & opt int 0
      & info [ "byz" ] ~docv:"N"
          ~doc:
            "Byzantine message mutation: N directed links carry typed, decodes-clean payload \
             mutations for a window each (-1 mutates the global channel for the whole storm; \
             0 disables and leaves seeded plans byte-identical).")
  in
  let apps =
    Arg.(
      value
      & opt_all string []
      & info [ "app" ] ~docv:"APP"
          ~doc:"Application to soak (paxos|kvstore|gossip|dht|randtree); repeatable.")
  in
  let show_plans =
    Arg.(value & flag & info [ "plans" ] ~doc:"Print each generated fault plan (the replay witness).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Randomized adversarial soak: seeded storms of crashes, partitions, duplication, \
          corruption and reordering over every application, asserting safety and recovery.")
    Term.(
      const run $ seed_arg $ rounds $ factor $ flaps $ overload $ drift $ byz $ apps $ show_plans)

(* ---------- obs ---------- *)

let obs_cmd =
  let run seed duration app metrics_out spans_out include_volatile no_check =
    let sink = Obs.Sink.create () in
    (match app with
    | "paxos" ->
        ignore
          (Experiments.Paxos_exp.run ~seed ~duration ~obs:sink
             ~scenario:Experiments.Paxos_exp.Balanced_wan Experiments.Paxos_exp.Local)
    | "kvstore" ->
        ignore
          (Experiments.Kvstore_exp.run ~seed ~duration ~obs:sink
             Experiments.Kvstore_exp.Nearest)
    | "gossip" ->
        let waves = Stdlib.max 1 (int_of_float (duration /. 10.)) in
        ignore
          (Experiments.Gossip_exp.run ~seed ~waves ~obs:sink
             ~scenario:Experiments.Gossip_exp.Uniform Experiments.Gossip_exp.Random_peer)
    | "steering" ->
        ignore
          (Experiments.Steering_exp.run ~seed ~duration ~obs:sink ~with_runtime:true ())
    | other ->
        Format.printf "unknown app %S (expected paxos|kvstore|gossip|steering)@." other;
        exit 2);
    let metrics_lines =
      Obs.Sink.write_metrics ~include_volatile sink ~path:metrics_out
    in
    let span_lines = Obs.Sink.write_spans sink ~path:spans_out in
    Format.printf "%s: %d metrics -> %s, %d spans -> %s (%d recorded, %d evicted)@." app
      metrics_lines metrics_out span_lines spans_out
      (Obs.Span.recorded sink.Obs.Sink.spans)
      (Obs.Span.dropped sink.Obs.Sink.spans);
    if not no_check then begin
      let check label path =
        match Obs.Sink.validate_file path with
        | Ok n -> Format.printf "%s: %d valid JSON lines@." label n
        | Error msg ->
            Format.printf "%s: INVALID (%s)@." label msg;
            exit 1
      in
      check "metrics" metrics_out;
      check "spans" spans_out
    end
  in
  let duration =
    Arg.(value & opt float 10. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run time.")
  in
  let app_arg =
    Arg.(
      value
      & opt string "paxos"
      & info [ "app" ] ~docv:"APP"
          ~doc:"Experiment to instrument (paxos|kvstore|gossip|steering).")
  in
  let metrics_out =
    Arg.(
      value
      & opt string "obs_metrics.jsonl"
      & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Metrics JSON-lines output path.")
  in
  let spans_out =
    Arg.(
      value
      & opt string "obs_spans.jsonl"
      & info [ "spans-out" ] ~docv:"FILE" ~doc:"Spans JSON-lines output path.")
  in
  let include_volatile =
    Arg.(
      value & flag
      & info [ "include-volatile" ]
          ~doc:"Also export wall-clock-derived metrics (breaks per-seed determinism).")
  in
  let no_check =
    Arg.(
      value & flag
      & info [ "no-check" ] ~doc:"Skip re-reading and validating the emitted files.")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Run an experiment with the observability layer attached and export metrics and \
          causal spans as JSON-lines; by default the files are re-read and validated \
          (non-zero exit on empty or malformed output).")
    Term.(
      const run $ seed_arg $ duration $ app_arg $ metrics_out $ spans_out $ include_volatile
      $ no_check)

let () =
  let doc = "Reproduction of 'Simplifying Distributed System Development' (HotOS 2009)." in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            randtree_cmd;
            gossip_cmd;
            dissem_cmd;
            paxos_cmd;
            dht_cmd;
            kvstore_cmd;
            chaos_cmd;
            steering_cmd;
            metrics_cmd;
            overhead_cmd;
            explore_cmd;
            obs_cmd;
          ]))
