(** Tunables of the CrystalBall-enabled runtime. *)

type t = {
  checkpoint_period : float;
      (** virtual seconds between checkpoint collections (paper: the
          controller "periodically collects a consistent set of
          checkpoints") *)
  checkpoint_delay : float;
      (** emulated collection latency: a checkpoint of time [t] becomes
          usable at [t + checkpoint_delay], modelling the network round
          trips the real controller pays *)
  steer_period : float;  (** how often consequence prediction runs *)
  steer_depth : int;  (** exploration depth for steering *)
  max_worlds : int;  (** exploration budget per steering round *)
  domains : int;
      (** Domains the explorer fans each level out across; 1 (the
          default) keeps exploration on the caller's thread. Any value
          produces identical verdicts — this trades cores for
          steering-round latency only. *)
  include_drops : bool;  (** explore message-loss branches *)
  generic_node : bool;  (** inject the generic-node alphabet *)
  filter_ttl : float;  (** seconds an installed event filter lives *)
  history : int;  (** checkpoint generations retained *)
}

let default =
  {
    checkpoint_period = 1.0;
    checkpoint_delay = 0.2;
    steer_period = 1.0;
    steer_depth = 3;
    max_worlds = 5_000;
    domains = 1;
    include_drops = false;
    generic_node = false;
    filter_ttl = 5.0;
    history = 16;
  }

let validate t =
  if t.checkpoint_period <= 0. then invalid_arg "Config: checkpoint_period must be positive";
  if t.checkpoint_delay < 0. then invalid_arg "Config: checkpoint_delay must be non-negative";
  if t.steer_period <= 0. then invalid_arg "Config: steer_period must be positive";
  if t.steer_depth < 0 then invalid_arg "Config: steer_depth must be non-negative";
  if t.max_worlds <= 0 then invalid_arg "Config: max_worlds must be positive";
  if t.domains < 1 then invalid_arg "Config: domains must be >= 1";
  if t.filter_ttl <= 0. then invalid_arg "Config: filter_ttl must be positive";
  if t.history <= 0 then invalid_arg "Config: history must be positive";
  t
