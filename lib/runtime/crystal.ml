module Make (App : Proto.App_intf.APP) = struct
  module E = Engine.Sim.Make (App)
  module Ex = Mc.Explorer.Make (App)
  module St = Mc.Steering.Make (App)

  type checkpoint = { taken_at : Dsim.Vtime.t; view : (App.state, App.msg) Proto.View.t }

  type live_veto = { veto : St.veto; expires : Dsim.Vtime.t }

  type report = {
    checkpoints_taken : int;
    steering_rounds : int;
    vetoes_installed : int;
    cannot_steer : int;
    worlds_explored : int;
    outcomes_cached : int;
    fingerprint_collisions : int;
    checkpoint_bytes : int;
  }

  type t = {
    cfg : Config.t;
    eng : E.t;
    neighbors : App.state -> Proto.Node_id.t list;
    codec : App.state Wire.Codec.t option;
    mutable checkpoint_bytes : int;
    mutable checkpoints : checkpoint list;  (* newest first *)
    mutable next_checkpoint : Dsim.Vtime.t;
    mutable next_steer : Dsim.Vtime.t;
    mutable vetoes : live_veto list;
    mutable verdicts : (Dsim.Vtime.t * St.verdict) list;
    mutable n_checkpoints : int;
    mutable n_rounds : int;
    mutable n_vetoes : int;
    mutable n_cannot : int;
    mutable n_worlds : int;
    mutable n_cached : int;
    mutable n_collisions : int;
    (* Persisted across steering rounds: consecutive rounds explore
       near-identical neighbourhoods, which is the transposition
       cache's best case. *)
    cache : St.Ex.cache;
    (* One worker pool for the whole attachment (when [cfg.domains] >
       1): spawned once, reused by every explore of every steering
       round — never respawned in the steering hot path. *)
    pool : Core.Pool.t option;
    obs : Obs.Registry.t option;
  }

  (* Mirror the report counters into the registry as gauges; called
     wherever they move so an export mid-run is current. *)
  let publish_obs t =
    match t.obs with
    | None -> ()
    | Some reg ->
        let g name v =
          Obs.Registry.set (Obs.Registry.gauge reg ~name ~labels:[]) (float_of_int v)
        in
        g "crystal_checkpoints_taken" t.n_checkpoints;
        g "crystal_steering_rounds" t.n_rounds;
        g "crystal_vetoes_installed" t.n_vetoes;
        g "crystal_cannot_steer" t.n_cannot;
        g "crystal_worlds_explored" t.n_worlds;
        g "crystal_outcomes_cached" t.n_cached;
        g "crystal_fingerprint_collisions" t.n_collisions;
        g "crystal_checkpoint_bytes" t.checkpoint_bytes;
        g "crystal_live_vetoes" (List.length t.vetoes);
        g "crystal_degraded_nodes" (E.degraded_nodes t.eng)

  let collect_checkpoint t =
    let view = E.global_view t.eng in
    t.checkpoints <- { taken_at = E.now t.eng; view } :: t.checkpoints;
    t.n_checkpoints <- t.n_checkpoints + 1;
    (* When the app provides a state codec, checkpoint dissemination is
       charged to the emulated network: each node ships its serialized
       state to every neighbour, contending with application traffic on
       its access link (paper §3.3.2's communication-overhead limit). *)
    (match t.codec with
    | None -> ()
    | Some codec ->
        let now_s = Dsim.Vtime.to_seconds (E.now t.eng) in
        List.iter
          (fun (id, state) ->
            let per_copy = Wire.Codec.size codec state + 32 in
            let copies = max 1 (List.length (t.neighbors state)) in
            let bytes = per_copy * copies in
            t.checkpoint_bytes <- t.checkpoint_bytes + bytes;
            Net.Netem.occupy_access (E.netem t.eng)
              ~endpoint:(Proto.Node_id.to_int id) ~now:now_s ~bytes)
          view.Proto.View.nodes);
    (* Trim history. *)
    let rec take n = function
      | [] -> []
      | c :: rest -> if n = 0 then [] else c :: take (n - 1) rest
    in
    t.checkpoints <- take t.cfg.history t.checkpoints;
    publish_obs t

  let attach ?(config = Config.default) ?codec ?obs ~neighbors eng =
    let cfg = Config.validate config in
    (* One codec path for both byte-accounting consumers: an app that
       declared how its state persists (App.durable) gets checkpoint
       traffic charged with that same codec unless the caller overrides. *)
    let codec =
      match codec with
      | Some _ -> codec
      | None -> Option.map (fun (d : _ Proto.Durability.t) -> d.codec) App.durable
    in
    let t =
      {
        cfg;
        eng;
        neighbors;
        codec;
        checkpoint_bytes = 0;
        checkpoints = [];
        next_checkpoint = Dsim.Vtime.add (E.now eng) cfg.checkpoint_period;
        next_steer = Dsim.Vtime.add (E.now eng) cfg.steer_period;
        vetoes = [];
        verdicts = [];
        n_checkpoints = 0;
        n_rounds = 0;
        n_vetoes = 0;
        n_cannot = 0;
        n_worlds = 0;
        n_cached = 0;
        n_collisions = 0;
        cache = St.Ex.create_cache ();
        pool = (if cfg.domains > 1 then Some (Core.Pool.create ~domains:cfg.domains) else None);
        obs;
      }
    in
    (* The controller snapshots immediately on attach so a usable (if
       possibly empty) view exists as soon as the collection delay has
       elapsed. *)
    collect_checkpoint t;
    t

  let engine t = t.eng

  (* A checkpoint is usable once the emulated collection delay has
     elapsed — until then the controller is still gathering it. *)
  let usable_checkpoints t =
    let now = E.now t.eng in
    List.filter
      (fun c -> Dsim.Vtime.diff now c.taken_at >= t.cfg.checkpoint_delay)
      t.checkpoints

  let latest_view t =
    match usable_checkpoints t with [] -> None | c :: _ -> Some c.view

  let neighborhood_view t ~of_node =
    match E.state_of t.eng of_node with
    | None -> None
    | Some own_state -> (
        match latest_view t with
        | None -> None
        | Some stale ->
            let hood = Proto.Node_id.Set.of_list (t.neighbors own_state) in
            let stale_neighbors = Proto.View.restrict stale hood in
            Some
              {
                stale_neighbors with
                Proto.View.time = E.now t.eng;
                nodes =
                  (of_node, own_state)
                  :: List.filter
                       (fun (id, _) -> not (Proto.Node_id.equal id of_node))
                       stale_neighbors.Proto.View.nodes;
              })

  let refresh_filters t =
    let now = E.now t.eng in
    t.vetoes <- List.filter (fun lv -> Dsim.Vtime.(now < lv.expires) ) t.vetoes;
    E.clear_filters t.eng;
    List.iter
      (fun lv ->
        let v = lv.veto in
        E.add_filter t.eng ~name:(Format.asprintf "%a" St.pp_veto v)
          (fun ~kind ~src ~dst ->
            String.equal kind v.St.kind
            && Proto.Node_id.equal src v.St.src
            && Proto.Node_id.equal dst v.St.dst))
      t.vetoes

  let install_veto t veto =
    let already =
      List.exists (fun lv -> lv.veto = veto) t.vetoes
    in
    if not already then begin
      t.vetoes <-
        { veto; expires = Dsim.Vtime.add (E.now t.eng) t.cfg.filter_ttl } :: t.vetoes;
      t.n_vetoes <- t.n_vetoes + 1;
      Dsim.Trace.logf (E.trace t.eng) (E.now t.eng) Dsim.Trace.Info ~component:"crystal"
        "installing %a" St.pp_veto veto
    end

  (* One steering round: run consequence prediction from each live
     node's neighbourhood snapshot; install every veto judged safe. *)
  let steer t =
    t.n_rounds <- t.n_rounds + 1;
    let nodes = E.live_nodes t.eng in
    List.iter
      (fun (id, _) ->
        match neighborhood_view t ~of_node:id with
        | None -> ()
        | Some view ->
            (* Clock fingerprints of the nodes in the snapshot: a world
               explored while a neighbour's clock was skewed must not
               share a dedup class with the same states seen in sync. *)
            let clocks =
              List.filter
                (fun (n, _) -> List.mem_assoc n view.Proto.View.nodes)
                (E.clock_fingerprints t.eng)
            in
            let world = Ex.world_of_view ~clocks view in
            let verdict, stats =
              St.decide_with_stats ~max_worlds:t.cfg.max_worlds
                ~include_drops:t.cfg.include_drops ~generic_node:t.cfg.generic_node
                ~cache:t.cache ?pool:t.pool ?obs:t.obs ~depth:t.cfg.steer_depth world
            in
            t.n_worlds <- t.n_worlds + stats.St.worlds_explored;
            t.n_cached <- t.n_cached + stats.St.outcomes_cached;
            t.n_collisions <- t.n_collisions + stats.St.fingerprint_collisions;
            (match verdict with
            | St.No_violation -> ()
            | St.Steer vetoes ->
                t.verdicts <- (E.now t.eng, verdict) :: t.verdicts;
                List.iter (install_veto t) vetoes
            | St.Cannot_steer _ ->
                t.verdicts <- (E.now t.eng, verdict) :: t.verdicts;
                t.n_cannot <- t.n_cannot + 1))
      nodes;
    refresh_filters t;
    publish_obs t

  let tick t =
    let now = E.now t.eng in
    if Dsim.Vtime.(t.next_checkpoint <= now) then begin
      collect_checkpoint t;
      t.next_checkpoint <- Dsim.Vtime.add now t.cfg.checkpoint_period
    end;
    if Dsim.Vtime.(t.next_steer <= now) then begin
      steer t;
      t.next_steer <- Dsim.Vtime.add now t.cfg.steer_period
    end
    else refresh_filters t

  let run_for t duration =
    if duration < 0. then invalid_arg "Crystal.run_for: negative duration";
    let slice = Float.min t.cfg.checkpoint_period t.cfg.steer_period /. 2. in
    let target = Dsim.Vtime.add (E.now t.eng) duration in
    let continue = ref true in
    while !continue do
      let now = E.now t.eng in
      if Dsim.Vtime.(target <= now) then continue := false
      else begin
        let step = Float.min slice (Dsim.Vtime.diff target now) in
        E.run_for t.eng step;
        tick t
      end
    done

  let report t =
    {
      checkpoints_taken = t.n_checkpoints;
      steering_rounds = t.n_rounds;
      vetoes_installed = t.n_vetoes;
      cannot_steer = t.n_cannot;
      worlds_explored = t.n_worlds;
      outcomes_cached = t.n_cached;
      fingerprint_collisions = t.n_collisions;
      checkpoint_bytes = t.checkpoint_bytes;
    }

  let verdict_log t = List.rev t.verdicts

  let detach t = Option.iter Core.Pool.shutdown t.pool
end
