(** The CrystalBall-enabled runtime (paper Figure 1).

    Attached to a running engine, it periodically
    {ul
    {- collects checkpoints of every node (kept with an emulated
       collection delay, so consumers always see a slightly stale,
       realistically partial view);}
    {- runs consequence prediction from each node's neighbourhood
       snapshot and, when a violation is predicted and steering away is
       safe, installs time-limited event filters into the engine.}}

    Drive it with {!run_for}, which slices the engine's execution into
    runtime periods — the simulation analogue of the controller thread
    running beside the service. *)

module Make (App : Proto.App_intf.APP) : sig
  module E : module type of Engine.Sim.Make (App)
  module Ex : module type of Mc.Explorer.Make (App)
  module St : module type of Mc.Steering.Make (App)

  type t

  type report = {
    checkpoints_taken : int;
    steering_rounds : int;
    vetoes_installed : int;
    cannot_steer : int;
    worlds_explored : int;
        (** worlds actually visited by consequence prediction, summed
            over every explore of every steering round (not the
            per-round budget) *)
    outcomes_cached : int;
        (** handler outcomes served from the runtime's persistent
            transposition cache *)
    fingerprint_collisions : int;
        (** detected first-lane fingerprint collisions (worlds were
            kept apart; this only measures hash quality) *)
    checkpoint_bytes : int;
        (** control traffic charged to the network when a state codec
            was supplied; 0 otherwise *)
  }

  val attach :
    ?config:Config.t ->
    ?codec:App.state Wire.Codec.t ->
    ?obs:Obs.Registry.t ->
    neighbors:(App.state -> Proto.Node_id.t list) ->
    E.t ->
    t
  (** [obs] mirrors the {!report} counters into the registry as
      [crystal_*] gauges (refreshed at every checkpoint and steering
      round) and threads through to {!Mc.Steering} for per-phase
      profiling.

      [neighbors] extracts a node's protocol neighbourhood from its
      state (e.g. parent and children for a tree) — the set whose
      checkpoints the controller collects. When [codec] is given, every
      collection serializes each node's state and charges
      [size * |neighbors|] bytes of control traffic to that node's
      access links, so checkpointing contends with the application
      (paper §3.3.2). When omitted, the codec of the app's
      {!Proto.Durability} hook (if any) is used, so durability and
      checkpointing share one serialization path.

      When [config] asks for [domains] > 1, attaching spawns one
      persistent worker pool that every steering round's explores
      reuse; release it with {!detach}. *)

  val engine : t -> E.t

  val tick : t -> unit
  (** Performs any checkpoint collection and steering round now due.
      {!run_for} calls this automatically. *)

  val run_for : t -> float -> unit
  (** Advances the engine by the given virtual duration, interleaving
      runtime periods. *)

  val latest_view : t -> (App.state, App.msg) Proto.View.t option
  (** Most recent {e usable} (i.e. old enough to have been collected)
      global checkpoint view; [None] before the first collection
      matures. *)

  val neighborhood_view :
    t -> of_node:Proto.Node_id.t -> (App.state, App.msg) Proto.View.t option
  (** The stale partial view node [of_node]'s controller would hold:
      its own current state plus its neighbours' checkpointed states. *)

  val report : t -> report
  val verdict_log : t -> (Dsim.Vtime.t * St.verdict) list

  val detach : t -> unit
  (** Releases the runtime's worker pool (a no-op when [domains] = 1,
      idempotent otherwise). The engine itself is untouched; only
      further steering rounds on this [t] are invalid. *)
end
