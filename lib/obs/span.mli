(** Causal message spans in a bounded ring.

    A span records one hop of a causal chain: a message (or timer)
    enqueued at one virtual time and resolved at another, tagged with
    the trace id minted at the chain's root send.  The ring keeps the
    most recent [capacity] spans; the totals keep counting so overflow
    is visible. *)

type span = {
  trace : int;  (** trace id of the causal chain this hop belongs to *)
  seq : int;  (** global record order, assigned by the ring *)
  src : int;
  dst : int;
  kind : string;  (** message kind, or ["timer:<id>"] *)
  enqueue : float;  (** virtual time the hop was scheduled, seconds *)
  deliver : float;  (** virtual time the hop resolved, seconds *)
  verdict : string;
      (** ["deliver"], ["duplicate"], ["reorder"], ["drop:<cause>"],
          ["fire"], ... *)
}

type ring

val ring : ?capacity:int -> unit -> ring
(** Default capacity 65536. @raise Invalid_argument if not positive. *)

val record :
  ring ->
  trace:int ->
  src:int ->
  dst:int ->
  kind:string ->
  enqueue:float ->
  deliver:float ->
  verdict:string ->
  unit

val spans : ring -> span list
(** Retained spans, oldest first. *)

val recorded : ring -> int
(** Total spans ever recorded. *)

val dropped : ring -> int
(** Spans evicted by the capacity bound. *)

val to_json : span -> Json.t
val of_json : Json.t -> (span, string) result
val to_json_lines : ring -> string list
