type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | Str s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
  | Arr vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    let ln = String.length word in
    if !pos + ln <= n && String.sub s !pos ln = word then (
      pos := !pos + ln;
      v)
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then (
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
             in
             (* Encode the code point as UTF-8; surrogate pairs are not
                needed for anything the exporter emits. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else if code < 0x800 then (
               Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
             else (
               Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
         | _ -> fail "unknown escape");
        go ())
      else (
        Buffer.add_char b c;
        go ())
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Arr xs, Arr ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | _ -> false
