(** Minimal JSON values for metrics/span export.

    The observability layer emits JSON-lines files (one value per line)
    and the test-suite and CI re-read them, so we need both a printer
    and a parser.  Only what the exporter produces is supported — no
    streaming, no exotic number forms — but the parser accepts any
    well-formed JSON document so validation catches foreign garbage
    rather than crashing on it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Floats that are exact integers
    print with a trailing [.0] so they re-parse as [Float] — rendering
    then re-parsing then re-rendering is byte-stable, which the
    determinism tests rely on. *)

val of_string : string -> (t, string) result
(** Parse one JSON document.  Trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] on missing key or
    non-object. *)

val equal : t -> t -> bool
(** Structural equality; object fields are compared in order. *)
