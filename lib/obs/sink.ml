type t = { registry : Registry.t; spans : Span.ring }

let create ?span_capacity () =
  { registry = Registry.create (); spans = Span.ring ?capacity:span_capacity () }

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines);
  List.length lines

let write_metrics ?include_volatile t ~path =
  write_lines path (Registry.to_json_lines ?include_volatile t.registry)

let write_spans t ~path = write_lines path (Span.to_json_lines t.spans)

let validate_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go n =
        match input_line ic with
        | exception End_of_file -> if n = 0 then Error "empty file" else Ok n
        | line -> (
            match Json.of_string line with
            | Error msg -> Error (Printf.sprintf "line %d: %s" (n + 1) msg)
            | Ok j -> (
                let tagged =
                  match j with
                  | Json.Obj _ ->
                      Json.member "type" j <> None || Json.member "trace" j <> None
                  | _ -> false
                in
                if tagged then go (n + 1)
                else Error (Printf.sprintf "line %d: not a tagged object" (n + 1))))
      in
      go 0)
