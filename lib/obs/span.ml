type span = {
  trace : int;
  seq : int;
  src : int;
  dst : int;
  kind : string;
  enqueue : float;
  deliver : float;
  verdict : string;
}

type ring = { cap : int; buf : span option array; mutable next : int }

let ring ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Span.ring: capacity must be positive";
  { cap = capacity; buf = Array.make capacity None; next = 0 }

let record r ~trace ~src ~dst ~kind ~enqueue ~deliver ~verdict =
  let seq = r.next in
  r.buf.(seq mod r.cap) <- Some { trace; seq; src; dst; kind; enqueue; deliver; verdict };
  r.next <- seq + 1

let recorded r = r.next
let dropped r = Stdlib.max 0 (r.next - r.cap)

let spans r =
  let first = dropped r in
  List.init (r.next - first) (fun i ->
      match r.buf.((first + i) mod r.cap) with
      | Some s -> s
      | None -> assert false)

let to_json s =
  Json.Obj
    [
      ("trace", Json.Int s.trace);
      ("seq", Json.Int s.seq);
      ("src", Json.Int s.src);
      ("dst", Json.Int s.dst);
      ("kind", Json.Str s.kind);
      ("enqueue", Json.Float s.enqueue);
      ("deliver", Json.Float s.deliver);
      ("verdict", Json.Str s.verdict);
    ]

let of_json j =
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let flt k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    (int "trace", int "seq", int "src", int "dst", str "kind", flt "enqueue",
     flt "deliver", str "verdict")
  with
  | Some trace, Some seq, Some src, Some dst, Some kind, Some enqueue, Some deliver,
    Some verdict ->
      Ok { trace; seq; src; dst; kind; enqueue; deliver; verdict }
  | _ -> Error "Span.of_json: missing or ill-typed field"

let to_json_lines r = List.map (fun s -> Json.to_string (to_json s)) (spans r)
