(** Interned metrics: counters, gauges, and latency histograms, keyed
    by name plus string labels.

    Handles are interned — asking twice for the same (name, labels)
    pair returns the same underlying metric, whatever the label order,
    so instrumented code can re-derive a handle cheaply and hot paths
    can cache one.  Registering the same key as a different metric kind
    raises.

    Metrics whose values depend on wall-clock time (throughput, phase
    timings) should be registered with [~volatile:true]; the default
    export excludes them so that a given seed produces a byte-identical
    metrics file run over run. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : ?volatile:bool -> t -> name:string -> labels:(string * string) list -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?volatile:bool -> t -> name:string -> labels:(string * string) list -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?volatile:bool ->
  ?capacity:int ->
  t ->
  name:string ->
  labels:(string * string) list ->
  lo:float ->
  hi:float ->
  buckets:int ->
  histogram
(** Bucketed histogram backed by {!Dsim.Stats}: exact count/sum/mean,
    reservoir-sampled percentiles (default [capacity] 4096, seeded
    deterministically from the metric key), and separate
    underflow/overflow counts.  Bounds are fixed at first registration.
    @raise Invalid_argument unless [lo < hi] and [buckets > 0]. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val cardinality : t -> int
(** Number of registered (name, labels) series. *)

val to_json : ?include_volatile:bool -> t -> Json.t list
(** One object per metric, sorted by name then labels — the order is
    deterministic and independent of registration order.  [volatile]
    metrics are excluded unless [include_volatile] (default false). *)

val to_json_lines : ?include_volatile:bool -> t -> string list

val pp : Format.formatter -> t -> unit
(** Human-oriented dump, same order as the export. *)
