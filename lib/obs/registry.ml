type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  h_stats : Dsim.Stats.t;
  h_hist : Dsim.Stats.Histogram.h;
  h_lo : float;
  h_hi : float;
  h_buckets : int;
}

type value = Counter of counter | Gauge of gauge | Hist of histogram

type metric = {
  m_name : string;
  m_labels : (string * string) list;  (** sorted by key *)
  m_volatile : bool;
  m_value : value;
}

type key = string * (string * string) list

type t = { tbl : (key, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t ~name ~labels ~volatile mk =
  let labels = canon_labels labels in
  let k = (name, labels) in
  match Hashtbl.find_opt t.tbl k with
  | Some m -> m
  | None ->
      let m = { m_name = name; m_labels = labels; m_volatile = volatile; m_value = mk k } in
      Hashtbl.add t.tbl k m;
      m

let kind_clash name kind =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %s already registered as a different kind than %s" name
       kind)

let counter ?(volatile = false) t ~name ~labels =
  let m = register t ~name ~labels ~volatile (fun _ -> Counter { c = 0 }) in
  match m.m_value with Counter c -> c | _ -> kind_clash name "counter"

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge ?(volatile = false) t ~name ~labels =
  let m = register t ~name ~labels ~volatile (fun _ -> Gauge { g = 0. }) in
  match m.m_value with Gauge g -> g | _ -> kind_clash name "gauge"

let set g v = g.g <- v
let gauge_value g = g.g

let histogram ?(volatile = false) ?(capacity = 4096) t ~name ~labels ~lo ~hi ~buckets =
  let m =
    register t ~name ~labels ~volatile (fun key ->
        (* Seed the percentile reservoir from the metric key so the same
           series samples identically run over run. *)
        let seed = Hashtbl.hash key in
        Hist
          {
            h_stats = Dsim.Stats.create ~capacity ~seed ();
            h_hist = Dsim.Stats.Histogram.create ~lo ~hi ~buckets;
            h_lo = lo;
            h_hi = hi;
            h_buckets = buckets;
          })
  in
  match m.m_value with Hist h -> h | _ -> kind_clash name "histogram"

let observe h x =
  Dsim.Stats.add h.h_stats x;
  Dsim.Stats.Histogram.add h.h_hist x

let histogram_count h = Dsim.Stats.count h.h_stats

let cardinality t = Hashtbl.length t.tbl

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let metric_json m =
  let base ty rest =
    Json.Obj
      (("type", Json.Str ty)
      :: ("name", Json.Str m.m_name)
      :: ("labels", labels_json m.m_labels)
      :: rest)
  in
  match m.m_value with
  | Counter c -> base "counter" [ ("value", Json.Int c.c) ]
  | Gauge g -> base "gauge" [ ("value", Json.Float g.g) ]
  | Hist h ->
      let st = h.h_stats in
      let n = Dsim.Stats.count st in
      let stat f = if n = 0 then 0. else f st in
      let q p = if Dsim.Stats.retained st = 0 then 0. else Dsim.Stats.percentile st p in
      let buckets =
        Json.Arr
          (List.init h.h_buckets (fun i ->
               let blo, bhi = Dsim.Stats.Histogram.bucket_bounds h.h_hist i in
               Json.Obj
                 [
                   ("lo", Json.Float blo);
                   ("hi", Json.Float bhi);
                   ("count", Json.Int (Dsim.Stats.Histogram.counts h.h_hist).(i));
                 ]))
      in
      base "histogram"
        [
          ("count", Json.Int n);
          ("sum", Json.Float (Dsim.Stats.sum st));
          ("min", Json.Float (stat Dsim.Stats.min));
          ("max", Json.Float (stat Dsim.Stats.max));
          ("mean", Json.Float (Dsim.Stats.mean st));
          ("p50", Json.Float (q 50.));
          ("p90", Json.Float (q 90.));
          ("p99", Json.Float (q 99.));
          ("underflow", Json.Int (Dsim.Stats.Histogram.underflow h.h_hist));
          ("overflow", Json.Int (Dsim.Stats.Histogram.overflow h.h_hist));
          ("buckets", buckets);
        ]

let sorted_metrics ?(include_volatile = false) t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.filter (fun m -> include_volatile || not m.m_volatile)
  |> List.sort (fun a b ->
         match String.compare a.m_name b.m_name with
         | 0 -> compare a.m_labels b.m_labels
         | c -> c)

let to_json ?include_volatile t =
  List.map metric_json (sorted_metrics ?include_volatile t)

let to_json_lines ?include_volatile t =
  List.map Json.to_string (to_json ?include_volatile t)

let pp ppf t =
  let pp_labels ppf labels =
    if labels <> [] then
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v))
        labels
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun m ->
      match m.m_value with
      | Counter c ->
          Format.fprintf ppf "%s%a = %d@," m.m_name pp_labels m.m_labels c.c
      | Gauge g -> Format.fprintf ppf "%s%a = %g@," m.m_name pp_labels m.m_labels g.g
      | Hist h ->
          Format.fprintf ppf "%s%a: %a@," m.m_name pp_labels m.m_labels
            Dsim.Stats.pp_summary h.h_stats)
    (sorted_metrics ~include_volatile:true t);
  Format.fprintf ppf "@]"
