(** A metrics registry plus a span ring — the bundle instrumented
    components write into and exporters read out of. *)

type t = { registry : Registry.t; spans : Span.ring }

val create : ?span_capacity:int -> unit -> t

val write_metrics : ?include_volatile:bool -> t -> path:string -> int
(** Write the registry as JSON-lines; returns the number of lines.
    Volatile (wall-clock-derived) metrics are excluded by default so
    the file is deterministic per seed. *)

val write_spans : t -> path:string -> int

val validate_file : string -> (int, string) result
(** Re-read a JSON-lines file: every line must parse as a JSON object
    with a ["type"] or ["trace"] field.  Returns the line count;
    an empty file is an error.  This is what the CI smoke check runs. *)
