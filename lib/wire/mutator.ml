(* Byzantine message mutation: decode a wire encoding into its generic
   {!Codec.view}, perturb exactly one typed node, re-encode, and accept
   the mutant only if the *application's own codec* decodes it cleanly.
   The engine therefore never delivers garbage — it delivers well-formed
   protocol messages with adversarial field values, which is what
   exercises app validators instead of the transport checksum. *)

open Codec

(* ---------- mutation-site census ----------

   A site is a view node a mutation op knows how to perturb. Pairs,
   triples and unit are pure structure — their children count, they
   don't. A tagged node is a site only when its shape declares at least
   two cases (otherwise there is no sibling tag to move to); its shaped
   payload's fields count independently. *)

let rec count_sites sh v =
  match (sh, v) with
  | Bool, Vbool _ | Int, Vint _ | Float, Vfloat _ | String, Vstring _ | Bytes, Vbytes _ -> 1
  | Option s, Voption o -> 1 + (match o with Some v -> count_sites s v | None -> 0)
  | List s, Vlist vs -> 1 + List.fold_left (fun acc v -> acc + count_sites s v) 0 vs
  | Array s, Varray vs -> 1 + Array.fold_left (fun acc v -> acc + count_sites s v) 0 vs
  | Pair (a, b), Vpair (x, y) -> count_sites a x + count_sites b y
  | Triple (a, b, c), Vtriple (x, y, z) ->
      count_sites a x + count_sites b y + count_sites c z
  | Tagged cases, Vtagged (tag, p) ->
      (if List.length cases >= 2 then 1 else 0)
      + (match p with
        | Shaped v -> (
            match List.assoc_opt tag cases with Some s -> count_sites s v | None -> 0)
        | Raw _ -> 0)
  | _ -> 0

(* ---------- per-node operators ---------- *)

let mutate_int rng ~node_ids i =
  (* Node-id splicing is one arm of the die: protocol fields holding
     endpoint indices get steered onto *valid but wrong* nodes, the
     mutation most likely to decode cleanly yet change meaning. *)
  let arms = if node_ids = [] then 5 else 6 in
  match Dsim.Rng.int rng arms with
  | 0 -> i + 1
  | 1 -> i - 1
  | 2 -> 0
  | 3 -> -i
  | 4 -> i * 2
  | _ -> Dsim.Rng.pick rng node_ids

let mutate_float rng f =
  let f = if Float.is_finite f then f else 0. in
  match Dsim.Rng.int rng 4 with
  | 0 -> f +. 1.
  | 1 -> f *. 2.
  | 2 -> -.f
  | _ -> 0.

let mutate_string rng s =
  let n = String.length s in
  match Dsim.Rng.int rng 3 with
  | 0 when n > 0 -> String.sub s 0 (n / 2) (* truncate *)
  | 1 -> s ^ s (* duplicate *)
  | _ -> "" (* clear *)

(* Smallest honest inhabitant of a shape, used to grow an empty
   collection or flip a [None] to [Some]. *)
let rec default_view = function
  | Unit -> Vunit
  | Bool -> Vbool false
  | Int -> Vint 0
  | Float -> Vfloat 0.
  | String -> Vstring ""
  | Bytes -> Vbytes Bytes.empty
  | Option _ -> Voption None
  | List _ -> Vlist []
  | Array _ -> Varray [||]
  | Pair (a, b) -> Vpair (default_view a, default_view b)
  | Triple (a, b, c) -> Vtriple (default_view a, default_view b, default_view c)
  | Tagged cases -> (
      match cases with
      | (t, s) :: _ -> Vtagged (t, Shaped (default_view s))
      | [] -> Vtagged (0, Raw ""))

let mutate_list rng s vs =
  let n = List.length vs in
  if n = 0 then [ default_view s ]
  else
    match Dsim.Rng.int rng 3 with
    | 0 -> (* drop a random element *)
        let k = Dsim.Rng.int rng n in
        List.filteri (fun i _ -> i <> k) vs
    | 1 -> (* duplicate a random element in place *)
        let k = Dsim.Rng.int rng n in
        List.concat (List.mapi (fun i v -> if i = k then [ v; v ] else [ v ]) vs)
    | _ ->
        (* swap two positions (the same position when [n = 1]: the list
           survives unchanged and the no-op is caught by the
           mutant-differs check downstream) *)
        let i = Dsim.Rng.int rng n and j = Dsim.Rng.int rng n in
        let arr = Array.of_list vs in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp;
        Array.to_list arr

(* Re-encode a shaped payload to raw bytes so a re-tagged value keeps
   its payload verbatim — whether the sibling case accepts those bytes
   is the re-decode check's job (structurally similar cases usually do,
   which is exactly the interesting mutation). *)
let raw_of_payload cases tag = function
  | Raw s -> s
  | Shaped v -> (
      match List.assoc_opt tag cases with
      | Some s -> encode (view_codec s) v
      | None -> "")

let mutate_tagged rng cases tag p =
  match List.filter (fun t -> t <> tag) (List.map fst cases) with
  | [] -> Vtagged (tag, p)
  | siblings -> Vtagged (Dsim.Rng.pick rng siblings, Raw (raw_of_payload cases tag p))

(* Walk shape and view in parallel, decrementing [target] at each
   mutation site; apply the operator where it hits zero. *)
let apply_at rng ~node_ids sh v ~target =
  let k = ref target in
  let hit () =
    let h = !k = 0 in
    decr k;
    h
  in
  let rec go sh v =
    match (sh, v) with
    | Bool, Vbool b -> if hit () then Vbool (not b) else v
    | Int, Vint i -> if hit () then Vint (mutate_int rng ~node_ids i) else v
    | Float, Vfloat f -> if hit () then Vfloat (mutate_float rng f) else v
    | String, Vstring s -> if hit () then Vstring (mutate_string rng s) else v
    | Bytes, Vbytes b ->
        if hit () then Vbytes (Bytes.of_string (mutate_string rng (Bytes.to_string b))) else v
    | Option s, Voption o ->
        if hit () then
          Voption (match o with Some _ -> None | None -> Some (default_view s))
        else Voption (Option.map (go s) o)
    | List s, Vlist vs ->
        if hit () then Vlist (mutate_list rng s vs) else Vlist (List.map (go s) vs)
    | Array s, Varray vs ->
        if hit () then Varray (Array.of_list (mutate_list rng s (Array.to_list vs)))
        else Varray (Array.map (go s) vs)
    | Pair (a, b), Vpair (x, y) -> Vpair (go a x, go b y)
    | Triple (a, b, c), Vtriple (x, y, z) -> Vtriple (go a x, go b y, go c z)
    | Tagged cases, Vtagged (tag, p) ->
        if List.length cases >= 2 && hit () then mutate_tagged rng cases tag p
        else
          Vtagged
            ( tag,
              match p with
              | Shaped pv -> (
                  match List.assoc_opt tag cases with
                  | Some s -> Shaped (go s pv)
                  | None -> p)
              | Raw _ -> p )
    | _ -> v
  in
  go sh v

(* ---------- entry point ---------- *)

let size_budget original = (2 * String.length original) + 16

let mutate ~rng ?(node_ids = []) ?(attempts = 8) codec bytes =
  let sh = Codec.shape codec in
  let vc = view_codec sh in
  match decode vc bytes with
  | Error _ -> None (* not our encoding — refuse rather than guess *)
  | Ok view ->
      let sites = count_sites sh view in
      if sites = 0 then None
      else begin
        let budget = size_budget bytes in
        let rec try_once n =
          if n = 0 then None
          else begin
            let target = Dsim.Rng.int rng sites in
            let mutated = apply_at rng ~node_ids sh view ~target in
            let bytes' = encode vc mutated in
            if String.length bytes' > budget || String.equal bytes' bytes then try_once (n - 1)
            else
              (* The guarantee: a mutant is only emitted if the real
                 codec — conv validation included — decodes it. *)
              match decode codec bytes' with
              | Ok v -> Some (v, bytes')
              | Error _ -> try_once (n - 1)
          end
        in
        try_once attempts
      end
