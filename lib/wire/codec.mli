(** Composable binary codecs.

    The runtime's checkpoints travel over the (simulated) network, so
    their sizes must be real: applications describe their state with
    these combinators and the runtime charges the measured bytes to the
    emulated access links. The encoding is a compact, deterministic
    binary format (LEB128 varints, length-prefixed strings); every
    codec round-trips, which the property tests verify. *)

type 'a t

(** Structural description of a codec's wire layout, carried alongside
    the encode/decode closures. Generic tooling (the byzantine
    {!Mutator}) walks it to mutate encoded messages field-by-field
    without knowing the value type. [Tagged] lists the per-case payload
    shapes declared through {!tagged}'s [?cases]; undeclared tags still
    decode, their payloads just stay opaque to shape-aware consumers. *)
type shape =
  | Unit
  | Bool
  | Int
  | Float
  | String
  | Bytes
  | Option of shape
  | List of shape
  | Array of shape
  | Pair of shape * shape
  | Triple of shape * shape * shape
  | Tagged of (int * shape) list

val shape : 'a t -> shape
(** [conv] is structure-transparent: a converted codec reports its
    representation's shape. *)

exception Malformed of string
(** Raised by a codec's decoding half on bad wire data; {!decode}
    catches it. Custom {!conv} validators may raise it directly (any
    other exception they raise is converted to it). *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> ('a, string) result
(** [Error] describes the first malformed byte encountered. *)

val size : 'a t -> 'a -> int
(** [size c v] = [String.length (encode c v)] without materialising the
    string (single encoding pass into a counter). *)

(** {1 Primitives} *)

val unit : unit t
val bool : bool t
val int : int t
(** Zig-zag LEB128: small magnitudes (of either sign) stay small. *)

val float : float t
(** IEEE-754 double, 8 bytes. *)

val string : string t
val bytes_ : bytes t

(** {1 Combinators} *)

val option : 'a t -> 'a option t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val conv : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [conv to_repr of_repr repr] encodes ['a] through its
    representation ['b]. *)

val tagged :
  ?cases:(int * shape) list ->
  ('a -> int * string) ->
  (int -> string -> ('a, string) result) ->
  'a t
(** Low-level escape hatch for sum types: map a value to a
    (tag, payload) pair and back; payloads are produced with [encode]
    of the per-case codec. [cases] (default none) declares each tag's
    payload shape so shape-aware tooling can mutate {e inside}
    payloads and re-tag values to sibling cases; it never affects
    encoding or decoding. *)

(** {1 Generic views}

    A {!view} is the structure-preserving decoding of wire bytes under
    a {!shape}: every int, float, string, collection and tagged case
    becomes an inspectable node. The byzantine mutator decodes to a
    view, perturbs typed nodes, and re-encodes. A tagged payload whose
    tag has no declared shape (or whose declared shape mismatches the
    actual bytes) stays [Raw]. *)

type view =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vbytes of bytes
  | Voption of view option
  | Vlist of view list
  | Varray of view array
  | Vpair of view * view
  | Vtriple of view * view * view
  | Vtagged of int * payload

and payload = Raw of string | Shaped of view

val view_codec : shape -> view t
(** Codec over views for the given shape: [decode (view_codec (shape c))]
    accepts exactly what [decode c] accepts structurally (modulo
    [conv]-level validation, which views skip), and encoding a view
    reproduces the wire form byte-for-byte. *)
