(** Composable binary codecs.

    The runtime's checkpoints travel over the (simulated) network, so
    their sizes must be real: applications describe their state with
    these combinators and the runtime charges the measured bytes to the
    emulated access links. The encoding is a compact, deterministic
    binary format (LEB128 varints, length-prefixed strings); every
    codec round-trips, which the property tests verify. *)

type 'a t

exception Malformed of string
(** Raised by a codec's decoding half on bad wire data; {!decode}
    catches it. Custom {!conv} validators may raise it directly (any
    other exception they raise is converted to it). *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> ('a, string) result
(** [Error] describes the first malformed byte encountered. *)

val size : 'a t -> 'a -> int
(** [size c v] = [String.length (encode c v)] without materialising the
    string (single encoding pass into a counter). *)

(** {1 Primitives} *)

val unit : unit t
val bool : bool t
val int : int t
(** Zig-zag LEB128: small magnitudes (of either sign) stay small. *)

val float : float t
(** IEEE-754 double, 8 bytes. *)

val string : string t
val bytes_ : bytes t

(** {1 Combinators} *)

val option : 'a t -> 'a option t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val conv : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [conv to_repr of_repr repr] encodes ['a] through its
    representation ['b]. *)

val tagged : ('a -> int * string) -> (int -> string -> ('a, string) result) -> 'a t
(** Low-level escape hatch for sum types: map a value to a
    (tag, payload) pair and back; payloads are produced with [encode]
    of the per-case codec. *)
