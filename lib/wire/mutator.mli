(** Byzantine message mutation: typed, decodes-clean perturbation of
    wire encodings.

    Where the corruption fault flips raw bits (and is therefore caught
    by the modelled transport checksum before any handler runs), the
    mutator walks the codec's {!Codec.shape} and perturbs {e fields}:
    ints are nudged, negated, zeroed, doubled or spliced with a node
    id; floats are perturbed finitely; bools flip; strings truncate,
    duplicate or clear; list/array elements are dropped, duplicated or
    swapped; options toggle; tagged values are re-tagged to a sibling
    case with their payload carried verbatim.

    The contract that makes this a {e byzantine} fault rather than a
    fuzzer: every emitted mutant re-decodes cleanly through the same
    codec ([conv]-level validation included) and re-encodes within a
    bounded size budget. Candidates that fail either check are
    discarded and retried; after [attempts] failures the caller gets
    [None] and should deliver the original message unchanged (the
    engine counts this as [byz_discarded]). *)

val size_budget : string -> int
(** Max bytes an emitted mutant may occupy: twice the original
    encoding plus a small constant — a mutation may grow a message
    (duplicated elements, doubled strings) but never blow it up. *)

val mutate :
  rng:Dsim.Rng.t ->
  ?node_ids:int list ->
  ?attempts:int ->
  'a Codec.t ->
  string ->
  ('a * string) option
(** [mutate ~rng codec bytes] perturbs one typed field of [bytes]
    (which must be a valid encoding under [codec]) and returns the
    decoded mutant together with its wire form, or [None] if no
    candidate survived the re-decode and size checks within [attempts]
    tries (default 8). [node_ids] (default none) enables the node-id
    splicing arm for int fields. Draws from [rng] only — deterministic
    under a seeded stream. *)
