(* Encoders write through a sink so [size] can run the same pass into a
   counter instead of a buffer; decoders consume a string with a mutable
   cursor and fail with a message rather than an exception. *)

type sink = { put_char : char -> unit; put_string : string -> unit }

type cursor = { data : string; mutable pos : int }

exception Malformed of string

(* Structural description of the wire format, carried alongside the
   encode/decode closures so generic tooling (the byzantine mutator)
   can walk a codec's layout without access to the value type.
   [Tagged] lists the per-case payload shapes an application declared
   via [tagged ~cases]; tags absent from the list still decode — their
   payloads are just opaque to structure-aware consumers. *)
type shape =
  | Unit
  | Bool
  | Int
  | Float
  | String
  | Bytes
  | Option of shape
  | List of shape
  | Array of shape
  | Pair of shape * shape
  | Triple of shape * shape * shape
  | Tagged of (int * shape) list

type 'a t = { enc : sink -> 'a -> unit; dec : cursor -> 'a; sh : shape }

let shape c = c.sh

let buffer_sink buf =
  { put_char = Buffer.add_char buf; put_string = Buffer.add_string buf }

let counting_sink counter =
  {
    put_char = (fun _ -> incr counter);
    put_string = (fun s -> counter := !counter + String.length s);
  }

let encode c v =
  let buf = Buffer.create 64 in
  c.enc (buffer_sink buf) v;
  Buffer.contents buf

let size c v =
  let counter = ref 0 in
  c.enc (counting_sink counter) v;
  !counter

let decode c s =
  let cur = { data = s; pos = 0 } in
  match c.dec cur with
  | v ->
      if cur.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing bytes at offset %d" cur.pos)
  | exception Malformed msg -> Error msg

let read_char cur =
  if cur.pos >= String.length cur.data then raise (Malformed "unexpected end of input");
  let c = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_string cur n =
  (* Compare by subtraction: an adversarial length near [max_int] makes
     [cur.pos + n] wrap negative and slip past an addition-form bound
     check, letting [String.sub] raise [Invalid_argument] instead of
     the [Malformed] that [decode] catches. *)
  if n < 0 || n > String.length cur.data - cur.pos then
    raise (Malformed "unexpected end of input");
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

(* Unsigned LEB128 over the int's bits. *)
let enc_uint sink v =
  let rec go v =
    let low = v land 0x7F in
    let rest = v lsr 7 in
    if rest = 0 then sink.put_char (Char.chr low)
    else begin
      sink.put_char (Char.chr (low lor 0x80));
      go rest
    end
  in
  go v

let dec_uint cur =
  let rec go shift acc =
    if shift > 63 then raise (Malformed "varint too long");
    let b = Char.code (read_char cur) in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let unit = { enc = (fun _ () -> ()); dec = (fun _ -> ()); sh = Unit }

let bool =
  {
    enc = (fun sink b -> sink.put_char (if b then '\001' else '\000'));
    dec =
      (fun cur ->
        match read_char cur with
        | '\000' -> false
        | '\001' -> true
        | c -> raise (Malformed (Printf.sprintf "invalid bool byte %d" (Char.code c))));
    sh = Bool;
  }

(* Zig-zag so negative ints stay short. *)
let int =
  {
    enc = (fun sink v -> enc_uint sink ((v lsl 1) lxor (v asr 62)));
    dec =
      (fun cur ->
        let u = dec_uint cur in
        (u lsr 1) lxor (-(u land 1)));
    sh = Int;
  }

let float =
  {
    enc =
      (fun sink v ->
        let bits = Int64.bits_of_float v in
        for i = 0 to 7 do
          sink.put_char
            (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
        done);
    dec =
      (fun cur ->
        let bits = ref 0L in
        for i = 0 to 7 do
          bits :=
            Int64.logor !bits (Int64.shift_left (Int64.of_int (Char.code (read_char cur))) (8 * i))
        done;
        Int64.float_of_bits !bits);
    sh = Float;
  }

(* [read_string] bounds the claimed length by the remaining input, so a
   mutated length header can neither allocate beyond the message nor
   escape [decode] as anything but [Malformed]. *)
let string =
  {
    enc =
      (fun sink s ->
        enc_uint sink (String.length s);
        sink.put_string s);
    dec =
      (fun cur ->
        let n = dec_uint cur in
        read_string cur n);
    sh = String;
  }

let bytes_ =
  { enc = (fun sink b -> string.enc sink (Bytes.to_string b));
    dec = (fun cur -> Bytes.of_string (string.dec cur));
    sh = Bytes }

let option c =
  {
    enc =
      (fun sink -> function
        | None -> sink.put_char '\000'
        | Some v ->
            sink.put_char '\001';
            c.enc sink v);
    dec =
      (fun cur ->
        match read_char cur with
        | '\000' -> None
        | '\001' -> Some (c.dec cur)
        | ch -> raise (Malformed (Printf.sprintf "invalid option byte %d" (Char.code ch))));
    sh = Option c.sh;
  }

(* Adversarial inputs can claim absurd lengths; since every element
   costs at least one byte on the wire (unit elements excepted, which
   no codec here produces standalone), a claimed length beyond the
   remaining input is malformed — rejecting it up front keeps [decode]
   total instead of attempting a huge allocation. *)
let dec_length cur =
  let n = dec_uint cur in
  (* [dec_uint] can overflow into a negative OCaml int (63-bit) on
     adversarial varints; a negative length is as malformed as an
     oversized one and must not reach [List.init]. *)
  if n < 0 || n > String.length cur.data - cur.pos then
    raise (Malformed (Printf.sprintf "container length %d exceeds remaining input" n));
  n

let list c =
  {
    enc =
      (fun sink xs ->
        enc_uint sink (List.length xs);
        List.iter (c.enc sink) xs);
    dec =
      (fun cur ->
        let n = dec_length cur in
        List.init n (fun _ -> c.dec cur));
    sh = List c.sh;
  }

let array c =
  {
    enc =
      (fun sink xs ->
        enc_uint sink (Array.length xs);
        Array.iter (c.enc sink) xs);
    dec =
      (fun cur ->
        let n = dec_length cur in
        Array.init n (fun _ -> c.dec cur));
    sh = Array c.sh;
  }

let pair a b =
  {
    enc =
      (fun sink (x, y) ->
        a.enc sink x;
        b.enc sink y);
    dec =
      (fun cur ->
        let x = a.dec cur in
        let y = b.dec cur in
        (x, y));
    sh = Pair (a.sh, b.sh);
  }

let triple a b c =
  {
    enc =
      (fun sink (x, y, z) ->
        a.enc sink x;
        b.enc sink y;
        c.enc sink z);
    dec =
      (fun cur ->
        let x = a.dec cur in
        let y = b.dec cur in
        let z = c.dec cur in
        (x, y, z));
    sh = Triple (a.sh, b.sh, c.sh);
  }

let conv to_repr of_repr repr =
  {
    enc = (fun sink v -> repr.enc sink (to_repr v));
    dec =
      (fun cur ->
        let r = repr.dec cur in
        (* A representation that decodes but fails validation (e.g. a
           negative node id from corrupted bytes) is malformed wire
           data, not a crash. *)
        try of_repr r with
        | Malformed _ as e -> raise e
        | e -> raise (Malformed (Printexc.to_string e)));
    sh = repr.sh;
  }

let tagged ?(cases = []) to_case of_case =
  {
    enc =
      (fun sink v ->
        let tag, payload = to_case v in
        enc_uint sink tag;
        string.enc sink payload);
    dec =
      (fun cur ->
        let tag = dec_uint cur in
        let payload = string.dec cur in
        match of_case tag payload with
        | Ok v -> v
        | Error msg -> raise (Malformed msg));
    sh = Tagged cases;
  }

(* ---------- generic views ----------

   A [view] is the structure-preserving decoding of a message under its
   codec's [shape]: the mutator decodes bytes to a view, perturbs typed
   nodes, and re-encodes — never touching raw bytes blindly. A tagged
   payload whose tag has no declared shape stays [Raw]. *)

type view =
  | Vunit
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vbytes of bytes
  | Voption of view option
  | Vlist of view list
  | Varray of view array
  | Vpair of view * view
  | Vtriple of view * view * view
  | Vtagged of int * payload

and payload = Raw of string | Shaped of view

let rec enc_view sh sink v =
  match (sh, v) with
  | Unit, Vunit -> ()
  | Bool, Vbool b -> bool.enc sink b
  | Int, Vint i -> int.enc sink i
  | Float, Vfloat f -> float.enc sink f
  | String, Vstring s -> string.enc sink s
  | Bytes, Vbytes b -> bytes_.enc sink b
  | Option s, Voption o -> (
      match o with
      | None -> sink.put_char '\000'
      | Some v ->
          sink.put_char '\001';
          enc_view s sink v)
  | List s, Vlist vs ->
      enc_uint sink (List.length vs);
      List.iter (enc_view s sink) vs
  | Array s, Varray vs ->
      enc_uint sink (Array.length vs);
      Array.iter (enc_view s sink) vs
  | Pair (a, b), Vpair (x, y) ->
      enc_view a sink x;
      enc_view b sink y
  | Triple (a, b, c), Vtriple (x, y, z) ->
      enc_view a sink x;
      enc_view b sink y;
      enc_view c sink z
  | Tagged cases, Vtagged (tag, p) -> (
      enc_uint sink tag;
      match p with
      | Raw s -> string.enc sink s
      | Shaped v -> (
          match List.assoc_opt tag cases with
          | Some s ->
              (* Payloads are length-prefixed on the wire; render the
                 shaped view to bytes first. *)
              let buf = Buffer.create 32 in
              enc_view s (buffer_sink buf) v;
              string.enc sink (Buffer.contents buf)
          | None -> raise (Malformed "shaped payload for an undeclared tag")))
  | _ -> raise (Malformed "view does not match shape")

let rec dec_view sh cur =
  match sh with
  | Unit -> Vunit
  | Bool -> Vbool (bool.dec cur)
  | Int -> Vint (int.dec cur)
  | Float -> Vfloat (float.dec cur)
  | String -> Vstring (string.dec cur)
  | Bytes -> Vbytes (bytes_.dec cur)
  | Option s -> (
      match read_char cur with
      | '\000' -> Voption None
      | '\001' -> Voption (Some (dec_view s cur))
      | ch -> raise (Malformed (Printf.sprintf "invalid option byte %d" (Char.code ch))))
  | List s ->
      let n = dec_length cur in
      Vlist (List.init n (fun _ -> dec_view s cur))
  | Array s ->
      let n = dec_length cur in
      Varray (Array.init n (fun _ -> dec_view s cur))
  | Pair (a, b) ->
      let x = dec_view a cur in
      let y = dec_view b cur in
      Vpair (x, y)
  | Triple (a, b, c) ->
      let x = dec_view a cur in
      let y = dec_view b cur in
      let z = dec_view c cur in
      Vtriple (x, y, z)
  | Tagged cases -> (
      let tag = dec_uint cur in
      let payload = string.dec cur in
      match List.assoc_opt tag cases with
      | Some s -> (
          let pcur = { data = payload; pos = 0 } in
          match dec_view s pcur with
          | v when pcur.pos = String.length payload -> Vtagged (tag, Shaped v)
          (* Structure mismatched or didn't consume the whole payload:
             keep it raw rather than silently dropping bytes — the
             declared shape is advisory, the codec is the authority. *)
          | _ -> Vtagged (tag, Raw payload)
          | exception Malformed _ -> Vtagged (tag, Raw payload))
      | None -> Vtagged (tag, Raw payload))

let view_codec sh = { enc = (fun sink v -> enc_view sh sink v); dec = dec_view sh; sh }
