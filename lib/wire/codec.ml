(* Encoders write through a sink so [size] can run the same pass into a
   counter instead of a buffer; decoders consume a string with a mutable
   cursor and fail with a message rather than an exception. *)

type sink = { put_char : char -> unit; put_string : string -> unit }

type cursor = { data : string; mutable pos : int }

exception Malformed of string

type 'a t = { enc : sink -> 'a -> unit; dec : cursor -> 'a }

let buffer_sink buf =
  { put_char = Buffer.add_char buf; put_string = Buffer.add_string buf }

let counting_sink counter =
  {
    put_char = (fun _ -> incr counter);
    put_string = (fun s -> counter := !counter + String.length s);
  }

let encode c v =
  let buf = Buffer.create 64 in
  c.enc (buffer_sink buf) v;
  Buffer.contents buf

let size c v =
  let counter = ref 0 in
  c.enc (counting_sink counter) v;
  !counter

let decode c s =
  let cur = { data = s; pos = 0 } in
  match c.dec cur with
  | v ->
      if cur.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing bytes at offset %d" cur.pos)
  | exception Malformed msg -> Error msg

let read_char cur =
  if cur.pos >= String.length cur.data then raise (Malformed "unexpected end of input");
  let c = cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_string cur n =
  if n < 0 || cur.pos + n > String.length cur.data then
    raise (Malformed "unexpected end of input");
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

(* Unsigned LEB128 over the int's bits. *)
let enc_uint sink v =
  let rec go v =
    let low = v land 0x7F in
    let rest = v lsr 7 in
    if rest = 0 then sink.put_char (Char.chr low)
    else begin
      sink.put_char (Char.chr (low lor 0x80));
      go rest
    end
  in
  go v

let dec_uint cur =
  let rec go shift acc =
    if shift > 63 then raise (Malformed "varint too long");
    let b = Char.code (read_char cur) in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let unit = { enc = (fun _ () -> ()); dec = (fun _ -> ()) }

let bool =
  {
    enc = (fun sink b -> sink.put_char (if b then '\001' else '\000'));
    dec =
      (fun cur ->
        match read_char cur with
        | '\000' -> false
        | '\001' -> true
        | c -> raise (Malformed (Printf.sprintf "invalid bool byte %d" (Char.code c))));
  }

(* Zig-zag so negative ints stay short. *)
let int =
  {
    enc = (fun sink v -> enc_uint sink ((v lsl 1) lxor (v asr 62)));
    dec =
      (fun cur ->
        let u = dec_uint cur in
        (u lsr 1) lxor (-(u land 1)));
  }

let float =
  {
    enc =
      (fun sink v ->
        let bits = Int64.bits_of_float v in
        for i = 0 to 7 do
          sink.put_char
            (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
        done);
    dec =
      (fun cur ->
        let bits = ref 0L in
        for i = 0 to 7 do
          bits :=
            Int64.logor !bits (Int64.shift_left (Int64.of_int (Char.code (read_char cur))) (8 * i))
        done;
        Int64.float_of_bits !bits);
  }

let string =
  {
    enc =
      (fun sink s ->
        enc_uint sink (String.length s);
        sink.put_string s);
    dec =
      (fun cur ->
        let n = dec_uint cur in
        read_string cur n);
  }

let bytes_ =
  { enc = (fun sink b -> string.enc sink (Bytes.to_string b));
    dec = (fun cur -> Bytes.of_string (string.dec cur)) }

let option c =
  {
    enc =
      (fun sink -> function
        | None -> sink.put_char '\000'
        | Some v ->
            sink.put_char '\001';
            c.enc sink v);
    dec =
      (fun cur ->
        match read_char cur with
        | '\000' -> None
        | '\001' -> Some (c.dec cur)
        | ch -> raise (Malformed (Printf.sprintf "invalid option byte %d" (Char.code ch))));
  }

(* Adversarial inputs can claim absurd lengths; since every element
   costs at least one byte on the wire (unit elements excepted, which
   no codec here produces standalone), a claimed length beyond the
   remaining input is malformed — rejecting it up front keeps [decode]
   total instead of attempting a huge allocation. *)
let dec_length cur =
  let n = dec_uint cur in
  (* [dec_uint] can overflow into a negative OCaml int (63-bit) on
     adversarial varints; a negative length is as malformed as an
     oversized one and must not reach [List.init]. *)
  if n < 0 || n > String.length cur.data - cur.pos then
    raise (Malformed (Printf.sprintf "container length %d exceeds remaining input" n));
  n

let list c =
  {
    enc =
      (fun sink xs ->
        enc_uint sink (List.length xs);
        List.iter (c.enc sink) xs);
    dec =
      (fun cur ->
        let n = dec_length cur in
        List.init n (fun _ -> c.dec cur));
  }

let array c =
  {
    enc =
      (fun sink xs ->
        enc_uint sink (Array.length xs);
        Array.iter (c.enc sink) xs);
    dec =
      (fun cur ->
        let n = dec_length cur in
        Array.init n (fun _ -> c.dec cur));
  }

let pair a b =
  {
    enc =
      (fun sink (x, y) ->
        a.enc sink x;
        b.enc sink y);
    dec =
      (fun cur ->
        let x = a.dec cur in
        let y = b.dec cur in
        (x, y));
  }

let triple a b c =
  {
    enc =
      (fun sink (x, y, z) ->
        a.enc sink x;
        b.enc sink y;
        c.enc sink z);
    dec =
      (fun cur ->
        let x = a.dec cur in
        let y = b.dec cur in
        let z = c.dec cur in
        (x, y, z));
  }

let conv to_repr of_repr repr =
  {
    enc = (fun sink v -> repr.enc sink (to_repr v));
    dec =
      (fun cur ->
        let r = repr.dec cur in
        (* A representation that decodes but fails validation (e.g. a
           negative node id from corrupted bytes) is malformed wire
           data, not a crash. *)
        try of_repr r with
        | Malformed _ as e -> raise e
        | e -> raise (Malformed (Printexc.to_string e)));
  }

let tagged to_case of_case =
  {
    enc =
      (fun sink v ->
        let tag, payload = to_case v in
        enc_uint sink tag;
        string.enc sink payload);
    dec =
      (fun cur ->
        let tag = dec_uint cur in
        let payload = string.dec cur in
        match of_case tag payload with
        | Ok v -> v
        | Error msg -> raise (Malformed msg));
  }
