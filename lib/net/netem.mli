(** Network emulator: turns a static {!Topology} into per-message
    delivery decisions, with dynamic overrides for experiments
    (degraded links, partitions, crashed endpoints).

    This is the ModelNet substitute: the engine asks it, for each
    outbound message, whether the message arrives and after how long. *)

type t

type verdict =
  | Deliver of float  (** arrives after this many seconds *)
  | Drop of string  (** lost; the string names the cause *)
  | Duplicate of float list
      (** arrives more than once; one delivery per listed delay, the
          first being the original copy *)
  | Corrupt of { delay : float; flip : float }
      (** arrives after [delay] but garbled: each payload byte is
          flipped with probability [flip] (at least one bit always
          flips). The engine applies the flips to the wire encoding,
          so a corrupted message manifests as a decode failure or a
          checksum drop — never as a clean payload. *)
  | Mutate of float
      (** arrives after this many seconds, byzantine-mutated: the
          engine runs the wire encoding through {!Wire.Mutator} and
          delivers a typed, decodes-clean perturbation of the payload
          to the receiving handler (falling back to the clean message
          when no mutant survives the re-decode guarantee). Unlike
          [Corrupt], this is the fault the transport checksum {e
          cannot} catch — it exercises application validators. *)

type faults = {
  duplicate_rate : float;  (** probability a delivered message is duplicated *)
  duplicate_copies : int;  (** ghost copies per duplication (>= 1) *)
  corrupt_rate : float;  (** probability a delivered message is garbled *)
  corrupt_flip : float;  (** per-byte flip probability for garbled messages *)
  reorder_rate : float;  (** probability a message is held back *)
  reorder_window : float;
      (** extra seconds (uniform in [0, window]) a held-back message
          waits — later sends overtake it, inverting delivery order
          beyond what jitter produces *)
  mutate_rate : float;
      (** probability a delivered message is byzantine-mutated; drawn
          after every other fault, so switching it off reproduces the
          pre-mutation RNG stream exactly *)
}

val no_faults : faults
(** All rates zero: the channel behaves exactly as before the
    adversarial layer existed (same RNG draws, same verdicts). *)

val create : ?jitter:float -> ?serialize_access:bool -> rng:Dsim.Rng.t -> Topology.t -> t
(** [jitter] is the standard deviation of multiplicative delay noise
    (default 0.05, i.e. ±5%); set 0. for fully deterministic delays.
    [serialize_access] (default true) models each endpoint's access
    link as a FIFO queue: concurrent transmissions share the uplink
    (and the receiver's downlink) instead of enjoying it in parallel —
    this is what makes a choked seed a real bottleneck. *)

val topology : t -> Topology.t

val copy : t -> t
(** Independent copy (own RNG and override tables) used when forking a
    simulation for lookahead. *)

val judge : t -> now:float -> src:int -> dst:int -> bytes:int -> verdict
(** Delivery decision for one message sent at time [now] (seconds).
    Consults overrides, then the topology path, then queues the
    transmission on both access links, then samples loss and jitter. *)

val path : t -> src:int -> dst:int -> Linkprop.t
(** Effective path after overrides — what a measurement would see. *)

val occupy_access : t -> endpoint:int -> now:float -> bytes:int -> unit
(** Charges background control traffic (e.g. runtime checkpoints) to
    the endpoint's access links: both its uplink and downlink are busy
    for the transmission time of [bytes] at the endpoint's access
    bandwidth, delaying subsequent application messages. No-op when
    access serialization is disabled. *)

val global_faults : t -> faults
(** The fault profile applied to every pair without a per-pair entry. *)

val set_faults : t -> faults -> unit
(** Replaces the global fault profile. Raises [Invalid_argument] on
    rates outside [0,1], [duplicate_copies < 1] or a negative window. *)

val set_pair_faults : t -> src:int -> dst:int -> faults -> unit
(** Pins the directed pair to its own fault profile, shadowing the
    global one. Same validation as {!set_faults}. *)

val clear_pair_faults : t -> src:int -> dst:int -> unit

val faults_of : t -> src:int -> dst:int -> faults
(** Effective fault profile for the directed pair. *)

val reorders : t -> int
(** How many messages the reorder fault has held back so far. The
    verdict for a held-back message is still [Deliver] (with the
    inflated delay), so this counter is the only witness that the
    fault fired — the engine surfaces it as [stats.messages_reordered]. *)

val set_override : t -> src:int -> dst:int -> Linkprop.t -> unit
(** Pins the directed pair to an explicit property. *)

val clear_override : t -> src:int -> dst:int -> unit

val cut : t -> src:int -> dst:int -> unit
(** Makes the directed pair lossy with probability 1 (a partition). *)

val cut_bidirectional : t -> int -> int -> unit

val heal : t -> src:int -> dst:int -> unit
(** Removes any override, restoring the topology path. *)

val isolate : t -> int -> unit
(** Cuts every pair touching the endpoint, both directions. *)

val rejoin : t -> int -> unit
(** Heals every pair touching the endpoint. *)

val is_isolated : t -> int -> bool
