type estimate = {
  value : float;
  confidence : float;
  samples : int;
  last_update : Dsim.Vtime.t option;
}

type cell = { mutable ewma : float; mutable n : int; mutable at : Dsim.Vtime.t }

type t = {
  alpha : float;
  half_life : float;
  latencies : (int * int, cell) Hashtbl.t;
  bandwidths : (int * int, cell) Hashtbl.t;
  losses : (int * int, cell) Hashtbl.t;
}

let create ?(alpha = 0.3) ?(half_life = 30.) () =
  if alpha <= 0. || alpha > 1. then invalid_arg "Netmodel.create: alpha out of (0,1]";
  if half_life <= 0. then invalid_arg "Netmodel.create: half_life must be positive";
  {
    alpha;
    half_life;
    latencies = Hashtbl.create 64;
    bandwidths = Hashtbl.create 64;
    losses = Hashtbl.create 64;
  }

let copy t =
  let deep table =
    let fresh = Hashtbl.create (Hashtbl.length table) in
    Hashtbl.iter (fun k (c : cell) -> Hashtbl.replace fresh k { c with ewma = c.ewma }) table;
    fresh
  in
  {
    t with
    latencies = deep t.latencies;
    bandwidths = deep t.bandwidths;
    losses = deep t.losses;
  }

(* A cell with [n = 0] is a pre-created blank (see {!link}): every
   reader below treats it exactly like an absent key, so blanks are
   observationally invisible. *)
let blank_cell () = { ewma = 0.; n = 0; at = Dsim.Vtime.zero }

let observe_cell t (c : cell) now x =
  if c.n = 0 then begin
    c.ewma <- x;
    c.n <- 1;
    c.at <- now
  end
  else begin
    c.ewma <- ((1. -. t.alpha) *. c.ewma) +. (t.alpha *. x);
    c.n <- c.n + 1;
    c.at <- now
  end

let cell_of table key =
  match Hashtbl.find_opt table key with
  | Some c -> c
  | None ->
      let c = blank_cell () in
      Hashtbl.replace table key c;
      c

let observe t table ~src ~dst now x = observe_cell t (cell_of table (src, dst)) now x

let observe_latency t ~src ~dst now x = observe t t.latencies ~src ~dst now x
let observe_bandwidth t ~src ~dst now x = observe t t.bandwidths ~src ~dst now x

let observe_loss t ~src ~dst now ~delivered =
  observe t t.losses ~src ~dst now (if delivered then 0. else 1.)

type link = { l_latency : cell; l_bandwidth : cell; l_loss : cell }

let link t ~src ~dst =
  let key = (src, dst) in
  {
    l_latency = cell_of t.latencies key;
    l_bandwidth = cell_of t.bandwidths key;
    l_loss = cell_of t.losses key;
  }

let observe_link_latency t l now x = observe_cell t l.l_latency now x
let observe_link_bandwidth t l now x = observe_cell t l.l_bandwidth now x

let observe_link_loss t l now ~delivered =
  observe_cell t l.l_loss now (if delivered then 0. else 1.)

let no_estimate = { value = 0.; confidence = 0.; samples = 0; last_update = None }

let read t table ~src ~dst ~now =
  match Hashtbl.find_opt table (src, dst) with
  | None -> no_estimate
  | Some c when c.n = 0 -> no_estimate
  | Some c ->
      let age = Float.max 0. (Dsim.Vtime.diff now c.at) in
      let confidence = exp (-.age *. log 2. /. t.half_life) in
      { value = c.ewma; confidence; samples = c.n; last_update = Some c.at }

let latency t ~src ~dst ~now = read t t.latencies ~src ~dst ~now
let bandwidth t ~src ~dst ~now = read t t.bandwidths ~src ~dst ~now
let loss t ~src ~dst ~now = read t t.losses ~src ~dst ~now

let predict_path t ~src ~dst ~now =
  let l = latency t ~src ~dst ~now in
  if l.samples = 0 then None
  else
    let bw =
      let b = bandwidth t ~src ~dst ~now in
      if b.samples = 0 then 1_048_576. else Float.max 1. b.value
    in
    let p =
      let x = loss t ~src ~dst ~now in
      if x.samples = 0 then 0. else Float.min 1. (Float.max 0. x.value)
    in
    Some (Linkprop.v ~latency:(Float.max 0. l.value) ~bandwidth:bw ~loss:p)

let predict_transfer_time t ~src ~dst ~now ~bytes =
  match predict_path t ~src ~dst ~now with
  | None -> None
  | Some p ->
      let once = Linkprop.transfer_time p ~bytes in
      (* Expected attempts under independent drops: 1 / (1 - loss). *)
      let retries = if p.Linkprop.loss >= 0.999 then 1000. else 1. /. (1. -. p.Linkprop.loss) in
      Some (once *. retries)

let known_pairs t =
  let keys table = Hashtbl.fold (fun k c acc -> if c.n > 0 then k :: acc else acc) table [] in
  List.sort_uniq compare (keys t.latencies @ keys t.bandwidths @ keys t.losses)

let forget_before t cutoff =
  (* Reset in place rather than remove: a removed key and a blank cell
     are indistinguishable to every reader, and resetting keeps
     outstanding {!link} handles wired to the cell the table holds. *)
  let prune table =
    Hashtbl.iter
      (fun _ c ->
        if c.n > 0 && Dsim.Vtime.(c.at < cutoff) then begin
          c.ewma <- 0.;
          c.n <- 0;
          c.at <- Dsim.Vtime.zero
        end)
      table
  in
  prune t.latencies;
  prune t.bandwidths;
  prune t.losses

let merge_from dst src ~now =
  let merge_table mine theirs =
    Hashtbl.iter
      (fun key (c : cell) ->
        if c.n > 0 then
          (* Imports overwrite the existing cell in place (when there is
             one) so [dst]'s link handles stay valid. *)
          let import (d : cell) =
            d.ewma <- c.ewma;
            d.n <- c.n;
            d.at <- c.at
          in
          match Hashtbl.find_opt mine key with
          | None -> Hashtbl.replace mine key { ewma = c.ewma; n = c.n; at = c.at }
          | Some existing when existing.n = 0 -> import existing
          | Some existing ->
              let conf (cell : cell) =
                let age = Float.max 0. (Dsim.Vtime.diff now cell.at) in
                exp (-.age *. log 2. /. dst.half_life)
              in
              if conf c > conf existing then import existing)
      theirs
  in
  merge_table dst.latencies src.latencies;
  merge_table dst.bandwidths src.bandwidths;
  merge_table dst.losses src.losses
