type verdict =
  | Deliver of float
  | Drop of string
  | Duplicate of float list
  | Corrupt of { delay : float; flip : float }
  | Mutate of float

type faults = {
  duplicate_rate : float;
  duplicate_copies : int;
  corrupt_rate : float;
  corrupt_flip : float;
  reorder_rate : float;
  reorder_window : float;
  mutate_rate : float;
}

let no_faults =
  {
    duplicate_rate = 0.;
    duplicate_copies = 1;
    corrupt_rate = 0.;
    corrupt_flip = 0.02;
    reorder_rate = 0.;
    reorder_window = 0.;
    mutate_rate = 0.;
  }

let validate_faults f =
  let rate name r =
    if not (r >= 0. && r <= 1.) then
      invalid_arg (Printf.sprintf "Netem: %s %g outside [0,1]" name r)
  in
  rate "duplicate_rate" f.duplicate_rate;
  rate "corrupt_rate" f.corrupt_rate;
  rate "corrupt_flip" f.corrupt_flip;
  rate "reorder_rate" f.reorder_rate;
  rate "mutate_rate" f.mutate_rate;
  if f.duplicate_copies < 1 then invalid_arg "Netem: duplicate_copies < 1";
  if f.reorder_window < 0. then invalid_arg "Netem: negative reorder_window"

type t = {
  topo : Topology.t;
  jitter : float;
  serialize_access : bool;
  rng : Dsim.Rng.t;
  overrides : (int * int, Linkprop.t) Hashtbl.t;
  isolated : (int, unit) Hashtbl.t;
  uplink_free : (int, float) Hashtbl.t;  (* endpoint -> time its uplink frees up *)
  downlink_free : (int, float) Hashtbl.t;
  mutable faults : faults;  (* default for every pair *)
  pair_faults : (int * int, faults) Hashtbl.t;  (* directed-pair overrides *)
  mutable reorders : int;  (* messages held back by the reorder fault *)
}

let create ?(jitter = 0.05) ?(serialize_access = true) ~rng topo =
  if jitter < 0. then invalid_arg "Netem.create: negative jitter";
  {
    topo;
    jitter;
    serialize_access;
    rng;
    overrides = Hashtbl.create 64;
    isolated = Hashtbl.create 16;
    uplink_free = Hashtbl.create 64;
    downlink_free = Hashtbl.create 64;
    faults = no_faults;
    pair_faults = Hashtbl.create 16;
    reorders = 0;
  }

let topology t = t.topo

let copy t =
  {
    t with
    rng = Dsim.Rng.copy t.rng;
    overrides = Hashtbl.copy t.overrides;
    isolated = Hashtbl.copy t.isolated;
    uplink_free = Hashtbl.copy t.uplink_free;
    downlink_free = Hashtbl.copy t.downlink_free;
    pair_faults = Hashtbl.copy t.pair_faults;
  }

let reorders t = t.reorders
let global_faults t = t.faults

let set_faults t f =
  validate_faults f;
  t.faults <- f

let set_pair_faults t ~src ~dst f =
  validate_faults f;
  Hashtbl.replace t.pair_faults (src, dst) f

let clear_pair_faults t ~src ~dst = Hashtbl.remove t.pair_faults (src, dst)

let faults_of t ~src ~dst =
  match Hashtbl.find_opt t.pair_faults (src, dst) with Some f -> f | None -> t.faults

let blackhole = Linkprop.v ~latency:0.001 ~bandwidth:1. ~loss:1.

let path t ~src ~dst =
  if Hashtbl.mem t.isolated src || Hashtbl.mem t.isolated dst then blackhole
  else
    match Hashtbl.find_opt t.overrides (src, dst) with
    | Some p -> p
    | None -> Topology.path t.topo src dst

(* Occupies [endpoint]'s link (up or down) for [tx] seconds starting no
   earlier than [now]; returns the extra queueing delay incurred. *)
let enqueue table endpoint ~now ~tx =
  let free_at = Option.value ~default:now (Hashtbl.find_opt table endpoint) in
  let start = Float.max now free_at in
  Hashtbl.replace table endpoint (start +. tx);
  start -. now

let judge t ~now ~src ~dst ~bytes =
  let p = path t ~src ~dst in
  if Dsim.Rng.uniform t.rng < p.Linkprop.loss then Drop "loss"
  else begin
    let tx = float_of_int bytes /. p.Linkprop.bandwidth in
    let queueing =
      if not t.serialize_access then 0.
      else
        let up = enqueue t.uplink_free src ~now ~tx in
        let down = enqueue t.downlink_free dst ~now:(now +. up) ~tx in
        up +. down
    in
    let base = p.Linkprop.latency +. tx +. queueing in
    let noise =
      if t.jitter = 0. then 1.
      else
        (* Clamp multiplicative noise so delays never go negative. *)
        Float.max 0.1 (1. +. (t.jitter *. ((2. *. Dsim.Rng.uniform t.rng) -. 1.)))
    in
    let delay = base *. noise in
    (* Adversarial channel faults. Every draw is guarded by a
       rate-positivity check so that a fault-free configuration consumes
       exactly the same RNG stream as before this layer existed — seeded
       experiments stay bit-identical unless faults are switched on. *)
    let f = faults_of t ~src ~dst in
    let delay =
      if f.reorder_rate > 0. && Dsim.Rng.uniform t.rng < f.reorder_rate then begin
        (* Held back by up to a full window — enough to overtake any
           number of later sends, inverting order beyond what
           multiplicative jitter can produce. *)
        t.reorders <- t.reorders + 1;
        delay +. Dsim.Rng.float t.rng f.reorder_window
      end
      else delay
    in
    if f.corrupt_rate > 0. && Dsim.Rng.uniform t.rng < f.corrupt_rate then
      Corrupt { delay; flip = f.corrupt_flip }
    else if f.duplicate_rate > 0. && Dsim.Rng.uniform t.rng < f.duplicate_rate then begin
      (* Ghost copies trail the original by up to a few RTTs (or the
         reorder window when one is configured), like retransmission
         storms do. *)
      let spread = Float.max f.reorder_window ((4. *. p.Linkprop.latency) +. 0.01) in
      let extras =
        List.init f.duplicate_copies (fun _ -> delay +. Dsim.Rng.float t.rng spread)
      in
      Duplicate (delay :: extras)
    end
    (* The byzantine draw comes after every pre-existing fault so a
       plan with mutation off consumes exactly the historical RNG
       stream — and a message already claimed by corruption or
       duplication is never also mutated. *)
    else if f.mutate_rate > 0. && Dsim.Rng.uniform t.rng < f.mutate_rate then Mutate delay
    else Deliver delay
  end

let occupy_access t ~endpoint ~now ~bytes =
  if t.serialize_access then begin
    (* Access bandwidth approximated by the endpoint's cheapest outgoing
       path (its own access link bounds every path). *)
    let n = Topology.size t.topo in
    let bw = ref infinity in
    for other = 0 to n - 1 do
      if other <> endpoint then begin
        let p = path t ~src:endpoint ~dst:other in
        if p.Linkprop.bandwidth < !bw then bw := p.Linkprop.bandwidth
      end
    done;
    let bw = if Float.is_finite !bw then !bw else 1_000_000. in
    let tx = float_of_int bytes /. bw in
    ignore (enqueue t.uplink_free endpoint ~now ~tx);
    ignore (enqueue t.downlink_free endpoint ~now ~tx)
  end

let set_override t ~src ~dst p = Hashtbl.replace t.overrides (src, dst) p
let clear_override t ~src ~dst = Hashtbl.remove t.overrides (src, dst)
let cut t ~src ~dst = set_override t ~src ~dst blackhole

let cut_bidirectional t a b =
  cut t ~src:a ~dst:b;
  cut t ~src:b ~dst:a

let heal t ~src ~dst = clear_override t ~src ~dst
let isolate t e = Hashtbl.replace t.isolated e ()
let rejoin t e = Hashtbl.remove t.isolated e
let is_isolated t e = Hashtbl.mem t.isolated e
