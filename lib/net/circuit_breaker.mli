(** Per-directed-pair circuit breakers.

    A breaker guards the [src -> dst] direction of a link with the
    classic three-state machine: [Closed] (traffic flows; consecutive
    failures are counted), [Open] (traffic is refused outright after
    [failure_threshold] consecutive failures), and — once [cooldown]
    seconds of virtual time have elapsed since the trip — [Half_open]
    (up to [half_open_probes] probe sends are let through; one success
    closes the breaker, one failure re-opens it and restarts the
    cooldown).

    The module is the sending-side dual of {!Failure_detector}: the
    detector accrues suspicion from the {e absence} of inbound traffic,
    the breaker accrues state from the {e fate} of outbound traffic
    (acks, retransmission timeouts, sheds). Everything here is pure
    arithmetic over the caller's clock — no randomness, no scheduled
    events — so the half-open probe timer is deterministic and
    {!copy} gives speculative forks an independent snapshot. *)

type t

type state = Closed | Open | Half_open

val create : ?failure_threshold:int -> ?cooldown:float -> ?half_open_probes:int -> unit -> t
(** [failure_threshold] (default 3) consecutive failures trip the
    breaker; it stays [Open] for [cooldown] (default 5.0) seconds, then
    admits [half_open_probes] (default 1) probes per half-open round.
    @raise Invalid_argument on a non-positive threshold, cooldown or
    probe budget. *)

val copy : t -> t
(** Independent deep copy, for speculative forks. *)

val record_failure : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> unit
(** Evidence a send from [src] to [dst] failed (retransmission timeout,
    shed, give-up). While [Closed], counts toward the trip threshold;
    while [Half_open], re-opens immediately and restarts the cooldown
    from [now]. *)

val record_success : t -> src:int -> dst:int -> unit
(** Evidence the pair is healthy (an ack came back). Resets the failure
    count and closes the breaker from any state. *)

val trip : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> unit
(** Open the breaker immediately regardless of the failure count — the
    hook for external evidence such as the failure detector crossing
    its phi threshold. Idempotent while already open. *)

val state : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> state
(** Current state as of [now]; an [Open] breaker whose cooldown has
    elapsed reports [Half_open]. Unknown pairs are [Closed]. *)

val allow : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> bool
(** Would a send be admitted now? [Closed]: yes. [Open]: no.
    [Half_open]: yes while the probe budget of the current round is not
    exhausted. Read-only — see {!acquire} for the consuming variant. *)

val acquire : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> bool
(** Like {!allow}, but a [Half_open] admission consumes one probe from
    the round's budget — the engine calls this on the send path so at
    most [half_open_probes] probes are in flight per cooldown round. *)

val open_pairs : t -> now:Dsim.Vtime.t -> int
(** Directed pairs currently [Open] or [Half_open], for observability. *)
