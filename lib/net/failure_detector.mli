(** Phi-accrual failure detection (Hayashibara et al.) fed by passive
    heartbeats: every message the engine delivers is evidence that its
    sender was alive, and the detector learns each directed pair's
    inter-arrival rhythm with the same EWMA idiom as {!Netmodel}.

    Instead of a boolean "up/down" verdict, callers read a continuous
    {!suspicion} level in [0,1] (or the raw {!phi}): suspicion accrues
    with the age of the last arrival measured against the learned
    interval, and collapses the moment the peer is heard again.

    The detector is deterministic — pure arithmetic over virtual-time
    observations, no RNG — so attaching it never perturbs a seeded
    simulation. *)

type t

val create :
  ?alpha:float -> ?threshold:float -> ?bootstrap_interval:float -> ?min_samples:int -> unit -> t
(** [alpha] (default 0.25) is the EWMA weight for inter-arrival
    samples; [threshold] (default 8) is the phi level at which a pair
    counts as {!suspected} — phi 8 means the observed silence had
    probability 10^-8 under the learned rhythm; [bootstrap_interval]
    (default 1 s) stands in for the mean until two arrivals exist and
    also floors the learned mean afterwards — bursty application
    traffic must not teach the detector a sub-second rhythm and turn
    every inter-burst pause into a suspicion (with the defaults,
    suspicion therefore needs at least [threshold / log10 e ~= 18.4] s
    of absolute silence);
    pairs with fewer than [min_samples] (default 3) arrivals always
    report zero suspicion — sparse contact is not evidence of failure.
    @raise Invalid_argument on out-of-range parameters. *)

val copy : t -> t
(** Independent deep copy, used when forking a simulation. *)

val threshold : t -> float

val heartbeat : t -> observer:int -> peer:int -> now:Dsim.Vtime.t -> bool
(** Records an arrival from [peer] observed by [observer]; returns
    [true] when the pair was suspected immediately before this arrival
    (a recovery edge). Interval samples are capped at 3x the learned
    mean so an outage cannot teach the detector that silence is
    normal. *)

val phi : t -> observer:int -> peer:int -> now:Dsim.Vtime.t -> float
(** Raw suspicion accrual; 0 for unknown or under-sampled pairs. *)

val suspicion : t -> observer:int -> peer:int -> now:Dsim.Vtime.t -> float
(** [phi / threshold] clamped to [0,1]: 0 = freshly heard (or no
    evidence), 1 = suspected. *)

val suspected : t -> observer:int -> peer:int -> now:Dsim.Vtime.t -> bool
(** [phi >= threshold]. *)

val samples : t -> observer:int -> peer:int -> int
(** Arrivals recorded for the pair. *)

val known_peers : t -> observer:int -> int list
(** Peers the observer has ever heard from, ascending. *)
