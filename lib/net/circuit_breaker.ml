(* Per-directed-pair circuit breakers: Closed / Open / Half_open over
   the caller's (virtual) clock. Pure arithmetic — no RNG, no events —
   so state transitions are deterministic and copyable. *)

type state = Closed | Open | Half_open

type pair = {
  mutable failures : int;    (* consecutive failures while closed *)
  mutable opened_at : Dsim.Vtime.t; (* trip time; meaningful when is_open *)
  mutable is_open : bool;
  mutable probes : int;      (* probes handed out this half-open round *)
}

type t = {
  failure_threshold : int;
  cooldown : float;
  half_open_probes : int;
  pairs : (int * int, pair) Hashtbl.t;
}

let create ?(failure_threshold = 3) ?(cooldown = 5.0) ?(half_open_probes = 1) () =
  if failure_threshold <= 0 then
    invalid_arg "Circuit_breaker.create: failure_threshold must be positive";
  if not (cooldown > 0.) then
    invalid_arg "Circuit_breaker.create: cooldown must be positive";
  if half_open_probes <= 0 then
    invalid_arg "Circuit_breaker.create: half_open_probes must be positive";
  { failure_threshold; cooldown; half_open_probes; pairs = Hashtbl.create 16 }

let copy t =
  let pairs = Hashtbl.create (Hashtbl.length t.pairs) in
  Hashtbl.iter (fun k p -> Hashtbl.add pairs k { p with failures = p.failures }) t.pairs;
  { t with pairs }

let get t ~src ~dst =
  match Hashtbl.find_opt t.pairs (src, dst) with
  | Some p -> p
  | None ->
      let p = { failures = 0; opened_at = Dsim.Vtime.zero; is_open = false; probes = 0 } in
      Hashtbl.add t.pairs (src, dst) p;
      p

(* Elapsed time since the trip is clamped at zero: a cooldown judged
   against an instant that precedes the trip (a backwards-stepped local
   clock, a reordered observation) must keep the pair open, not wrap
   into a huge negative that half-opens it on float quirks. *)
let half_open t p ~now =
  p.is_open && Float.max 0. (Dsim.Vtime.diff now p.opened_at) >= t.cooldown

let state t ~src ~dst ~now =
  match Hashtbl.find_opt t.pairs (src, dst) with
  | None -> Closed
  | Some p ->
      if not p.is_open then Closed
      else if half_open t p ~now then Half_open
      else Open

let do_open p ~now =
  p.is_open <- true;
  p.opened_at <- now;
  p.probes <- 0;
  p.failures <- 0

let record_failure t ~src ~dst ~now =
  let p = get t ~src ~dst in
  if p.is_open then begin
    (* A failure during half-open re-opens and restarts the cooldown;
       while still cooling down the trip time is left alone so the
       probe schedule stays anchored to the original trip. *)
    if half_open t p ~now then do_open p ~now
  end
  else begin
    p.failures <- p.failures + 1;
    if p.failures >= t.failure_threshold then do_open p ~now
  end

let record_success t ~src ~dst =
  match Hashtbl.find_opt t.pairs (src, dst) with
  | None -> ()
  | Some p ->
      p.failures <- 0;
      p.is_open <- false;
      p.probes <- 0

let trip t ~src ~dst ~now =
  let p = get t ~src ~dst in
  if not p.is_open then do_open p ~now

let allow t ~src ~dst ~now =
  match state t ~src ~dst ~now with
  | Closed -> true
  | Open -> false
  | Half_open ->
      let p = get t ~src ~dst in
      p.probes < t.half_open_probes

let acquire t ~src ~dst ~now =
  match state t ~src ~dst ~now with
  | Closed -> true
  | Open -> false
  | Half_open ->
      let p = get t ~src ~dst in
      if p.probes < t.half_open_probes then begin
        p.probes <- p.probes + 1;
        true
      end
      else false

let open_pairs t ~now:_ =
  Hashtbl.fold (fun _ p acc -> if p.is_open then acc + 1 else acc) t.pairs 0
