(* Phi-accrual failure detection (Hayashibara et al., SRDS'04) over the
   same EWMA/age machinery as {!Netmodel}: every delivery the engine
   observes doubles as an implicit heartbeat for the directed pair, and
   the detector learns the pair's inter-arrival rhythm.  Suspicion is
   then a *level*, not a boolean: phi grows continuously with the age of
   the last arrival measured against the learned interval, exactly the
   "confidence that decays with information age" shape the predictive
   model is built on — Netmodel decays what it *knows*, the detector
   accrues what it *misses*.

   Determinism: the detector is pure arithmetic over virtual-time
   arrival observations.  It owns no RNG and draws nothing, so
   attaching it to an engine changes no seeded run. *)

type cell = {
  mutable mean : float;  (* EWMA of inter-arrival seconds *)
  mutable n : int;  (* arrivals observed *)
  mutable at : Dsim.Vtime.t;  (* last arrival *)
}

type t = {
  alpha : float;
  threshold : float;
  bootstrap_interval : float;
  min_samples : int;
  cells : (int * int, cell) Hashtbl.t;  (* (observer, peer) *)
}

let create ?(alpha = 0.25) ?(threshold = 8.) ?(bootstrap_interval = 1.) ?(min_samples = 3) () =
  if alpha <= 0. || alpha > 1. then invalid_arg "Failure_detector.create: alpha out of (0,1]";
  if threshold <= 0. then invalid_arg "Failure_detector.create: non-positive threshold";
  if bootstrap_interval <= 0. then
    invalid_arg "Failure_detector.create: non-positive bootstrap interval";
  if min_samples < 1 then invalid_arg "Failure_detector.create: min_samples < 1";
  { alpha; threshold; bootstrap_interval; min_samples; cells = Hashtbl.create 64 }

let copy t =
  let cells = Hashtbl.create (Hashtbl.length t.cells) in
  Hashtbl.iter (fun k (c : cell) -> Hashtbl.replace cells k { c with mean = c.mean }) t.cells;
  { t with cells }

let threshold t = t.threshold

(* log10(e): phi = elapsed / mean * this is the exponential-arrival
   simplification of the original normal-CDF formulation (the one
   Cassandra ships); phi = 1 means "this silence had probability 10%
   under the learned rhythm", phi = 8 means 10^-8. *)
let log10_e = 0.4342944819032518

(* The learned mean is floored at the bootstrap interval: application
   traffic arrives in bursts (a paxos round is microseconds of
   back-to-back messages, then silence until the next command), and an
   unfloored EWMA would learn the within-burst gap as the rhythm and
   call every inter-burst pause a failure. The floor makes the detector
   demand at least [threshold / log10_e ~= 18x] bootstrap intervals of
   *absolute* silence — so it reacts to partitions and crashes, not to
   the duty cycle of a healthy protocol. *)
let interval_of t c =
  if c.n < 2 then t.bootstrap_interval else Float.max t.bootstrap_interval c.mean

let phi_of t c ~now =
  if c.n < t.min_samples then 0.
  else
    let elapsed = Float.max 0. (Dsim.Vtime.diff now c.at) in
    elapsed /. interval_of t c *. log10_e

(* [heartbeat] records an arrival from [peer] as seen by [observer] and
   returns [true] when the pair was suspected just before this arrival —
   the recovery edge the engine counts. *)
let heartbeat t ~observer ~peer ~now =
  let key = (observer, peer) in
  match Hashtbl.find_opt t.cells key with
  | None ->
      Hashtbl.replace t.cells key { mean = 0.; n = 1; at = now };
      false
  | Some c ->
      let was_suspected = phi_of t c ~now >= t.threshold in
      let sample = Float.max 0. (Dsim.Vtime.diff now c.at) in
      (* Cap the sample so one long outage does not poison the learned
         interval: a 30 s partition must not teach the detector that
         30 s silences are normal, or it would take another outage to
         re-suspect the peer. *)
      let sample =
        if c.n >= 2 then Float.min sample (3. *. interval_of t c) else sample
      in
      if c.n = 1 then c.mean <- sample
      else c.mean <- ((1. -. t.alpha) *. c.mean) +. (t.alpha *. sample);
      c.n <- c.n + 1;
      c.at <- now;
      was_suspected

let phi t ~observer ~peer ~now =
  match Hashtbl.find_opt t.cells (observer, peer) with
  | None -> 0.
  | Some c -> phi_of t c ~now

let suspicion t ~observer ~peer ~now =
  Float.min 1. (phi t ~observer ~peer ~now /. t.threshold)

let suspected t ~observer ~peer ~now = phi t ~observer ~peer ~now >= t.threshold

let samples t ~observer ~peer =
  match Hashtbl.find_opt t.cells (observer, peer) with None -> 0 | Some c -> c.n

let known_peers t ~observer =
  Hashtbl.fold (fun (o, p) _ acc -> if o = observer then p :: acc else acc) t.cells []
  |> List.sort_uniq compare
