(** Measured network model — the iPlane substitute (paper §3.3).

    Applications and the runtime feed passive observations (per-message
    latency samples, transfer throughputs, losses) into one shared
    store per node; any component may then ask for a prediction. Each
    estimate is an exponentially-weighted moving average tagged with
    the virtual time of its last update; {!confidence} decays with age,
    implementing the paper's "incorporate confidence in the information
    as a function of its age". *)

type t

type estimate = {
  value : float;
  confidence : float;  (** in [0,1]; 0 = never measured or stale *)
  samples : int;
  last_update : Dsim.Vtime.t option;
}

val create : ?alpha:float -> ?half_life:float -> unit -> t
(** [alpha] is the EWMA weight of a new sample (default 0.3);
    [half_life] is the confidence half-life in virtual seconds
    (default 30.). *)

val copy : t -> t
(** Independent copy used when forking a simulation for lookahead, so
    speculative observations never pollute the real model. *)

val observe_latency : t -> src:int -> dst:int -> Dsim.Vtime.t -> float -> unit
(** Records a one-way latency sample, in seconds. *)

val observe_bandwidth : t -> src:int -> dst:int -> Dsim.Vtime.t -> float -> unit
(** Records an achieved-throughput sample, in bytes/second. *)

val observe_loss : t -> src:int -> dst:int -> Dsim.Vtime.t -> delivered:bool -> unit
(** Records a delivery outcome; the loss estimate is an EWMA of the
    0/1 drop indicator. *)

type link
(** Pre-resolved handle on one directed pair's three estimate cells.
    Observing through a link skips the per-sample table lookups — the
    hot-path form for a simulator recording every delivery. A link is
    bound to the [t] that made it: {!copy} deep-copies cells, so links
    made against the original must not be used on the copy. *)

val link : t -> src:int -> dst:int -> link
(** Resolves (creating blank cells as needed — invisible until first
    observation) the pair's cells once. *)

val observe_link_latency : t -> link -> Dsim.Vtime.t -> float -> unit
val observe_link_bandwidth : t -> link -> Dsim.Vtime.t -> float -> unit
val observe_link_loss : t -> link -> Dsim.Vtime.t -> delivered:bool -> unit
(** Exactly {!observe_latency} / {!observe_bandwidth} / {!observe_loss}
    on the link's pair, without the lookups. *)

val latency : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> estimate
val bandwidth : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> estimate
val loss : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> estimate

val predict_path : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> Linkprop.t option
(** Combined path prediction; [None] until a latency sample exists.
    Missing bandwidth defaults to 1 MB/s, missing loss to 0. *)

val predict_transfer_time : t -> src:int -> dst:int -> now:Dsim.Vtime.t -> bytes:int -> float option
(** Expected transfer time for a message of [bytes], inflated by the
    expected number of retries implied by the loss estimate. *)

val known_pairs : t -> (int * int) list
(** Directed pairs with at least one observation of any kind. *)

val forget_before : t -> Dsim.Vtime.t -> unit
(** Drops every estimate last updated strictly before the cutoff. *)

val merge_from : t -> t -> now:Dsim.Vtime.t -> unit
(** [merge_from dst src ~now] imports [src]'s estimates into [dst],
    keeping whichever side has higher confidence at [now] — this is how
    a node benefits from measurements shared by the information
    plane. *)
