(** Simulated per-node durable storage: one snapshot area plus one
    append-only write-ahead log, with a disk model that charges fsync
    latency and write bandwidth for every write.

    The store holds opaque byte strings — applications describe {e
    what} is durable through their {!Proto.Durability} hook and the
    engine moves the encoded bytes here. On-disk WAL layout is a
    concatenation of framed records:

    {v  record := varint(length) ++ payload ++ fnv1a32(payload)  v}

    The checksum is what makes torn writes detectable: {!read} walks
    frames from the front and stops at the first incomplete or
    corrupt one, so a truncated tail degrades into "fewer records",
    never into garbage handed to the application. Snapshots model the
    write-new-then-rename discipline and are therefore atomic: only
    WAL appends can tear.

    Every operation is deterministic; the only randomness ({!tear}'s
    cut point) comes from the caller's seeded RNG. *)

type t

(** What a recovery sees: the snapshot (if any), every complete WAL
    record appended since it (oldest first), and whether a torn or
    corrupt tail was dropped on the way. *)
type recovered = { snapshot : string option; entries : string list; torn : bool }

val create : ?fsync_latency:float -> ?bandwidth:float -> unit -> t
(** A fresh empty store. [fsync_latency] (default 0.5ms) is the fixed
    cost of making one write durable; [bandwidth] (default 50 MB/s)
    divides the written bytes. @raise Invalid_argument on a negative
    latency or non-positive bandwidth. *)

val copy : t -> t
(** Independent deep copy — used when a simulation forks. *)

val is_empty : t -> bool
(** No snapshot and no WAL bytes: a disk that has never been written
    (or was wiped). *)

val append : t -> now:float -> string -> float
(** [append t ~now record] frames and appends one WAL record, then
    returns the completion delay in seconds relative to [now]
    (fsync latency + bytes/bandwidth, queued behind any write still in
    flight). Write-ahead discipline: the caller must withhold effects
    that depend on the record until the delay has elapsed. *)

val install_snapshot : t -> now:float -> string -> float
(** Atomically replaces the snapshot and truncates the WAL, returning
    the completion delay like {!append}. *)

val read : t -> recovered
(** Parses the durable area; never raises. A torn tail is dropped and
    flagged. *)

val wipe : t -> unit
(** Total amnesia: snapshot and WAL are erased (the crash mode where
    the disk itself is lost). Byte/latency accounting survives. *)

val tear : t -> rng:Dsim.Rng.t -> bool
(** Simulates a crash mid-append: truncates the raw WAL at a random
    point inside the last record (possibly eating its frame header).
    Returns [false] when there is no record to tear (empty WAL —
    snapshots are atomic and cannot tear). *)

(** {1 Accounting} *)

val wal_entries : t -> int
(** Complete records currently in the WAL (since the last snapshot). *)

val wal_bytes : t -> int
val snapshot_bytes : t -> int
val bytes_written : t -> int
(** Total bytes ever written to this disk, including overwritten
    snapshots and wiped logs. *)

val write_seconds : t -> float
(** Total seconds the disk has spent servicing writes. *)
