type disk = {
  fsync_latency : float;
  bandwidth : float;
  mutable busy_until : float;
  mutable bytes_written : int;
  mutable write_seconds : float;
}

type recovered = { snapshot : string option; entries : string list; torn : bool }

type t = {
  disk : disk;
  mutable snapshot : string option;
  mutable wal : Buffer.t;
  mutable entries : int;
  mutable last_start : int;  (* offset of the last appended frame; -1 = none *)
}

let create ?(fsync_latency = 0.0005) ?(bandwidth = 50_000_000.) () =
  if fsync_latency < 0. then invalid_arg "Store.create: negative fsync_latency";
  if bandwidth <= 0. then invalid_arg "Store.create: non-positive bandwidth";
  {
    disk = { fsync_latency; bandwidth; busy_until = 0.; bytes_written = 0; write_seconds = 0. };
    snapshot = None;
    wal = Buffer.create 256;
    entries = 0;
    last_start = -1;
  }

let copy t =
  let wal = Buffer.create (Buffer.length t.wal) in
  Buffer.add_buffer wal t.wal;
  { t with disk = { t.disk with busy_until = t.disk.busy_until }; wal }

let is_empty t = t.snapshot = None && Buffer.length t.wal = 0

(* One durable write: starts when the disk frees up, costs one fsync
   plus the transfer time of [bytes]; the returned delay is what the
   caller's effects must wait for (write-ahead discipline). *)
let write d ~now ~bytes =
  let start = Float.max now d.busy_until in
  let dur = d.fsync_latency +. (float_of_int bytes /. d.bandwidth) in
  d.busy_until <- start +. dur;
  d.bytes_written <- d.bytes_written + bytes;
  d.write_seconds <- d.write_seconds +. dur;
  start +. dur -. now

(* ---------- framing: varint(length) ++ payload ++ fnv1a32 ---------- *)

let add_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* Returns (value, next position), or None if the bytes run out. *)
let read_varint s pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len || shift > 56 then None
    else
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then Some (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let fnv1a32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let add_checksum buf payload =
  let h = fnv1a32 payload in
  Buffer.add_char buf (Char.chr (h land 0xff));
  Buffer.add_char buf (Char.chr ((h lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((h lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((h lsr 24) land 0xff))

let checksum_at s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let append t ~now record =
  t.last_start <- Buffer.length t.wal;
  add_varint t.wal (String.length record);
  Buffer.add_string t.wal record;
  add_checksum t.wal record;
  t.entries <- t.entries + 1;
  write t.disk ~now ~bytes:(Buffer.length t.wal - t.last_start)

(* Snapshots model write-new-then-rename: the write is charged, the
   replacement is atomic, and the WAL restarts empty. *)
let install_snapshot t ~now s =
  t.snapshot <- Some s;
  Buffer.clear t.wal;
  t.entries <- 0;
  t.last_start <- -1;
  write t.disk ~now ~bytes:(String.length s + 16)

let read t =
  let raw = Buffer.contents t.wal in
  let len = String.length raw in
  let rec go pos acc =
    if pos = len then (List.rev acc, false)
    else
      match read_varint raw pos with
      | None -> (List.rev acc, true)
      | Some (n, body) ->
          if n < 0 || body + n + 4 > len then (List.rev acc, true)
          else
            let payload = String.sub raw body n in
            if checksum_at raw (body + n) <> fnv1a32 payload then (List.rev acc, true)
            else go (body + n + 4) (payload :: acc)
  in
  let entries, torn = go 0 [] in
  ({ snapshot = t.snapshot; entries; torn } : recovered)

let wipe t =
  t.snapshot <- None;
  Buffer.clear t.wal;
  t.entries <- 0;
  t.last_start <- -1

let tear t ~rng =
  let len = Buffer.length t.wal in
  if t.last_start < 0 || len = 0 then false
  else begin
    (* Cut strictly inside the last frame: at least one of its bytes is
       lost, at most the whole frame. *)
    let cut = t.last_start + Dsim.Rng.int rng (len - t.last_start) in
    Buffer.truncate t.wal cut;
    t.entries <- t.entries - 1;
    t.last_start <- -1;
    true
  end

let wal_entries t = t.entries
let wal_bytes t = Buffer.length t.wal
let snapshot_bytes t = match t.snapshot with None -> 0 | Some s -> String.length s
let bytes_written t = t.disk.bytes_written
let write_seconds t = t.disk.write_seconds
