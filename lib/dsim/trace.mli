(** Bounded in-memory trace of simulation events.

    Each record carries the virtual time at which it was produced, a
    severity, a component tag (e.g. ["engine"], ["steering"]) and a
    message. Traces are consulted by tests and printed by the CLI's
    [--verbose] mode; the simulator itself never reads them back.

    A minimum-level gate makes below-threshold records free: a gated
    {!logf} never runs the formatter, so hot-path [Debug] sites cost a
    comparison rather than a [Format.kasprintf] allocation. *)

type level = Debug | Info | Warn | Error

type record = { time : Vtime.t; level : level; component : string; message : string }

type t

val create : ?capacity:int -> ?min_level:level -> unit -> t
(** [capacity] bounds the number of retained records (default 100_000);
    the oldest records are discarded first.  Records below [min_level]
    (default [Debug], i.e. everything passes) are counted in
    {!suppressed} and otherwise dropped without formatting. *)

val min_level : t -> level
val set_min_level : t -> level -> unit

val enabled : t -> level -> bool
(** Whether a record at this level would currently be retained. *)

val suppressed : t -> int
(** Records dropped by the level gate since creation. *)

val log : t -> Vtime.t -> level -> component:string -> string -> unit

val logf :
  t -> Vtime.t -> level -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!log} but lazy about formatting: when the level is gated the
    format arguments are consumed without being rendered. *)

val records : t -> record list
(** Retained records, oldest first. *)

val count : t -> int
(** Total records ever logged, including discarded ones (but not
    level-suppressed ones). *)

val find : t -> component:string -> substring:string -> record list
(** Retained records from [component] whose message contains
    [substring]. *)

val contains_substring : string -> string -> bool
(** [contains_substring haystack needle] — allocation-free scan; the
    empty needle matches everything.  Exposed for tests and reuse. *)

val level_to_string : level -> string

val pp_record : Format.formatter -> record -> unit
