(** Per-node local clocks for the simulator.

    A clock maps global virtual time ({!Vtime.t}, the engine's event
    order) to the node's own local reading as a piecewise-linear
    function: each segment has a start instant and a rate (local
    seconds per global second), and fault events — a rate change
    (drift), a step (an NTP-style jump, either direction), a heal —
    start a new segment. Only the current segment is stored: the
    simulator advances global time monotonically and all conversions
    look forward, so the segment extends indefinitely until the next
    fault event.

    Conversions are exact per segment. Local readings below the Vtime
    origin (reachable through a large backwards step early in a run)
    clamp to zero, as does the global preimage of a local instant the
    clock has already jumped past — the caller decides what "fires in
    the past" means (the engine clamps such timers to fire now).

    A clock created with [~monotonic:true] additionally never reads
    backwards: {!read} returns at least the highest reading it ever
    handed out, modelling an OS-level monotonic clamp over a stepped
    clock. Monotonicity applies to {!read} only; {!local_of_global}
    stays the raw segment evaluation. *)

type t

val create : ?monotonic:bool -> unit -> t
(** A fresh identity clock (rate 1, zero offset). [monotonic] defaults
    to [false]. *)

val copy : t -> t
(** Independent copy, for speculative engine forks. *)

val is_identity : t -> bool
(** [true] when the current segment is exactly the global clock: rate 1
    and zero offset. A healed clock is the identity. *)

val rate : t -> float
(** Current segment's rate (local seconds per global second). *)

val local_of_global : t -> Vtime.t -> Vtime.t
(** Evaluate the current segment at a global instant, clamped to the
    Vtime origin. Pure — never consults or updates the monotonic
    watermark. *)

val read : t -> global:Vtime.t -> Vtime.t
(** The node-local reading at global instant [global]. Equal to
    {!local_of_global} unless the clock is monotonic, in which case the
    result never decreases across calls (and the watermark advances). *)

val global_of_local : t -> Vtime.t -> Vtime.t
(** Inverse of {!local_of_global} on the current segment, clamped to
    the Vtime origin. Used to place a node-local deadline on the global
    event queue; a deadline the clock has already jumped past maps to a
    global instant in the past, which the engine clamps to "now". *)

val skew : t -> global:Vtime.t -> float
(** [local - global] in seconds at the given global instant (negative
    when the local clock lags). *)

val set_rate : t -> global:Vtime.t -> rate:float -> unit
(** Start a new segment at [global] with the given rate. Local time is
    continuous across the boundary (drift changes speed, not value).
    @raise Invalid_argument unless [rate] is positive and finite. *)

val step : t -> global:Vtime.t -> offset:float -> unit
(** Jump local time by [offset] seconds (either sign) at [global]; the
    rate is kept. @raise Invalid_argument if [offset] is not finite. *)

val heal : t -> global:Vtime.t -> unit
(** Snap back to the global clock: rate 1, zero offset from [global]
    on. A discontinuity, like the step that ends an NTP excursion. *)

val fingerprint : t -> int
(** Cheap structural fingerprint of the clock's forward behaviour,
    for explorer world dedup: 0 iff {!is_identity} (so disabled and
    healed clocks fingerprint alike and can be elided), never 0
    otherwise. Monotonic clocks include the watermark — it shapes
    future reads. *)

val pp : Format.formatter -> t -> unit
