(* Samples live in a growable array (or a fixed-size reservoir when
   [capacity] is given).  Percentile queries sort once into [sorted] and
   reuse that array until the next [add] invalidates it — [pp_summary]
   asks for median, p99 and max back to back, which used to cost three
   full sorts per call. *)

type t = {
  mutable samples : float array;
  mutable len : int;  (** live prefix of [samples] *)
  mutable sorted : float array option;  (** cache; [None] after a mutation *)
  mutable sorts : int;  (** number of sorts performed, for regression tests *)
  capacity : int option;  (** reservoir bound; [None] = unbounded *)
  rng : Rng.t option;  (** reservoir coin-flips; only with [capacity] *)
  mutable n : int;
  mutable total : float;
  mutable total_sq : float;
  mutable lo : float;
  mutable hi : float;
}

let create ?capacity ?(seed = 0x5157) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Stats.create: capacity must be positive"
  | _ -> ());
  {
    samples = [||];
    len = 0;
    sorted = None;
    sorts = 0;
    capacity;
    rng = Option.map (fun _ -> Rng.create seed) capacity;
    n = 0;
    total = 0.;
    total_sq = 0.;
    lo = infinity;
    hi = neg_infinity;
  }

let ensure_room t =
  let cap = Array.length t.samples in
  if t.len >= cap then begin
    let cap' = Stdlib.max 16 (2 * cap) in
    let cap' = match t.capacity with Some c -> Stdlib.min c cap' | None -> cap' in
    let bigger = Array.make cap' 0. in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  t.total_sq <- t.total_sq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  match t.capacity with
  | None ->
      ensure_room t;
      t.samples.(t.len) <- x;
      t.len <- t.len + 1;
      t.sorted <- None
  | Some cap ->
      if t.len < cap then begin
        ensure_room t;
        t.samples.(t.len) <- x;
        t.len <- t.len + 1;
        t.sorted <- None
      end
      else begin
        (* Algorithm R: sample i (0-based) replaces a random slot with
           probability cap/(i+1); the retained set stays uniform. *)
        let j = Rng.int (Option.get t.rng) t.n in
        if j < cap then begin
          t.samples.(j) <- x;
          t.sorted <- None
        end
      end

let count t = t.n
let retained t = t.len
let sum t = t.total
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n

let variance t =
  if t.n < 2 then 0.
  else
    let m = mean t in
    Float.max 0. ((t.total_sq /. float_of_int t.n) -. (m *. m))

let stddev t = sqrt (variance t)

let min t = if t.n = 0 then invalid_arg "Stats.min: empty" else t.lo
let max t = if t.n = 0 then invalid_arg "Stats.max: empty" else t.hi

let sorted_samples t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.samples 0 t.len in
      Array.sort Float.compare a;
      t.sorts <- t.sorts + 1;
      t.sorted <- Some a;
      a

let sorts_performed t = t.sorts

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: out of range";
  let a = sorted_samples t in
  let n = Array.length a in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo_idx = int_of_float (Float.floor rank) in
  let hi_idx = Stdlib.min (n - 1) (lo_idx + 1) in
  let frac = rank -. float_of_int lo_idx in
  a.(lo_idx) +. (frac *. (a.(hi_idx) -. a.(lo_idx)))

let median t = percentile t 50.
let to_list t = Array.to_list (Array.sub t.samples 0 t.len)

let merge a b =
  let t = create () in
  List.iter (add t) (to_list a);
  List.iter (add t) (to_list b);
  t

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.n (mean t)
      (median t) (percentile t 99.) (max t)

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;
    mutable underflow : int;
    mutable overflow : int;
  }

  let create ~lo ~hi ~buckets =
    if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      counts = Array.make buckets 0;
      underflow = 0;
      overflow = 0;
    }

  let add h x =
    (* NaN fails [x >= h.lo] and lands in underflow rather than
       corrupting a bucket index. *)
    if not (x >= h.lo) then h.underflow <- h.underflow + 1
    else if x >= h.hi then h.overflow <- h.overflow + 1
    else begin
      let n = Array.length h.counts in
      let i = Stdlib.min (n - 1) (int_of_float ((x -. h.lo) /. h.width)) in
      h.counts.(i) <- h.counts.(i) + 1
    end

  let counts h = Array.copy h.counts
  let underflow h = h.underflow
  let overflow h = h.overflow

  let bucket_bounds h i =
    let lo = h.lo +. (float_of_int i *. h.width) in
    (lo, lo +. h.width)

  let total h = Array.fold_left ( + ) (h.underflow + h.overflow) h.counts

  let pp ppf h =
    Format.fprintf ppf "@[<v>";
    if h.underflow > 0 then Format.fprintf ppf "underflow (-inf, %g): %d@," h.lo h.underflow;
    Array.iteri
      (fun i c ->
        let blo, bhi = bucket_bounds h i in
        Format.fprintf ppf "[%g, %g): %d@," blo bhi c)
      h.counts;
    if h.overflow > 0 then Format.fprintf ppf "overflow [%g, +inf): %d@," h.hi h.overflow;
    Format.fprintf ppf "@]"
end
