type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else Int.compare a.seq b.seq

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    (* Placeholder slots reuse an existing entry; they are never read
       beyond [size]. *)
    let dummy = t.data.(0) in
    let ndata = Array.make ncap dummy in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp t t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_cmp t t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && entry_cmp t t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t value =
  let e = { value; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 e;
  grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let clear t =
  t.size <- 0;
  t.data <- [||]

let copy t = { t with data = Array.copy t.data }

let drain t =
  let rec loop acc =
    match pop t with None -> List.rev acc | Some v -> loop (v :: acc)
  in
  loop []

let to_list t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) (t.data.(i).value :: acc)
  in
  loop (t.size - 1) []

let iter t f =
  for i = 0 to t.size - 1 do
    f t.data.(i).value
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i).value
  done;
  !acc

let rev_fold t ~init ~f =
  let acc = ref init in
  for i = t.size - 1 downto 0 do
    acc := f !acc t.data.(i).value
  done;
  !acc

let filter_in_place t keep =
  let survivors =
    List.filter (fun e -> keep e.value) (Array.to_list (Array.sub t.data 0 t.size))
  in
  let survivors = List.sort (fun a b -> Int.compare a.seq b.seq) survivors in
  t.size <- 0;
  t.data <- [||];
  List.iter (fun e -> push t e.value) survivors
