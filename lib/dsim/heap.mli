(** Imperative binary min-heap, used as the simulator's event queue.

    Elements are ordered by a comparison supplied at creation time.
    Ties are broken by insertion order (FIFO), which the simulator
    relies on for deterministic processing of simultaneous events. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, [None] if empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val copy : 'a t -> 'a t
(** Independent copy; preserves ordering and FIFO tie-breaks. *)

val drain : 'a t -> 'a list
(** Pops everything, returning elements in ascending order. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order; the heap is unchanged. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Applies the function to every element in [to_list]'s order, without
    materialising the list. The heap must not be modified during
    iteration. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Folds over every element in [to_list]'s order, without
    materialising the list. *)

val rev_fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Like {!fold} but in the reverse of [to_list]'s order — consing in a
    [rev_fold] rebuilds [to_list]'s order directly. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keeps only the elements satisfying the predicate, preserving the
    FIFO tie-break among survivors. *)
