(* Per-node local clock: local time as a piecewise-linear function of
   global virtual time. Only the current segment is stored — the engine
   processes events in non-decreasing global order and every conversion
   looks forward from the segment start, so earlier segments are never
   consulted again. *)

type t = {
  mutable rate : float;  (* local seconds per global second; > 0, finite *)
  mutable g0 : float;  (* global start of the current segment, seconds *)
  mutable l0 : float;  (* local time at [g0], seconds *)
  monotonic : bool;
  mutable watermark : float;  (* highest local reading handed out; only
                                 maintained when [monotonic] *)
}

let create ?(monotonic = false) () =
  { rate = 1.; g0 = 0.; l0 = 0.; monotonic; watermark = 0. }

let copy t = { t with rate = t.rate }
let rate t = t.rate
let is_identity t = t.rate = 1. && t.l0 = t.g0

(* Raw segment evaluation in float seconds; may be negative after a
   large backwards step near the origin — callers clamp before minting
   a Vtime. *)
let raw_local t g = t.l0 +. (t.rate *. (g -. t.g0))

let local_of_global t global =
  Vtime.of_seconds (Float.max 0. (raw_local t (Vtime.to_seconds global)))

let read t ~global =
  let l = Float.max 0. (raw_local t (Vtime.to_seconds global)) in
  if not t.monotonic then Vtime.of_seconds l
  else begin
    let l = Float.max l t.watermark in
    t.watermark <- l;
    Vtime.of_seconds l
  end

let global_of_local t local =
  let l = Vtime.to_seconds local in
  Vtime.of_seconds (Float.max 0. (t.g0 +. ((l -. t.l0) /. t.rate)))

let skew t ~global = raw_local t (Vtime.to_seconds global) -. Vtime.to_seconds global

let set_rate t ~global ~rate =
  if not (Float.is_finite rate && rate > 0.) then
    invalid_arg "Clock.set_rate: rate must be positive and finite";
  let g = Vtime.to_seconds global in
  t.l0 <- Float.max 0. (raw_local t g);
  t.g0 <- g;
  t.rate <- rate

let step t ~global ~offset =
  if not (Float.is_finite offset) then invalid_arg "Clock.step: offset not finite";
  let g = Vtime.to_seconds global in
  t.l0 <- Float.max 0. (raw_local t g +. offset);
  t.g0 <- g

let heal t ~global =
  let g = Vtime.to_seconds global in
  t.rate <- 1.;
  t.g0 <- g;
  t.l0 <- g

let fingerprint t =
  if is_identity t then 0
  else begin
    let h =
      Hashtbl.hash
        ( Int64.bits_of_float t.rate,
          Int64.bits_of_float t.g0,
          Int64.bits_of_float t.l0 )
    in
    let h =
      if t.monotonic then Hashtbl.hash (h, Int64.bits_of_float t.watermark) else h
    in
    if h = 0 then 1 else h
  end

let pp ppf t =
  if is_identity t then Format.fprintf ppf "clock(sync)"
  else
    Format.fprintf ppf "clock(x%g%+gs@%gs)" t.rate (t.l0 -. t.g0) t.g0
