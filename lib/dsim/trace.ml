type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type record = { time : Vtime.t; level : level; component : string; message : string }

type t = {
  capacity : int;
  q : record Queue.t;
  mutable total : int;
  mutable min_level : level;
  mutable suppressed : int;
}

let create ?(capacity = 100_000) ?(min_level = Debug) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; q = Queue.create (); total = 0; min_level; suppressed = 0 }

let min_level t = t.min_level
let set_min_level t level = t.min_level <- level
let enabled t level = level_rank level >= level_rank t.min_level
let suppressed t = t.suppressed

let log t time level ~component message =
  if enabled t level then begin
    Queue.push { time; level; component; message } t.q;
    t.total <- t.total + 1;
    if Queue.length t.q > t.capacity then ignore (Queue.pop t.q)
  end
  else t.suppressed <- t.suppressed + 1

let logf t time level ~component fmt =
  if enabled t level then
    Format.kasprintf (fun message -> log t time level ~component message) fmt
  else begin
    (* Below the gate: consume the format arguments without ever
       formatting them.  [ikfprintf] ignores everything, so a gated
       [logf t v Debug "%a" pp x] costs two branches and no
       allocation — this is what makes Debug sites free on hot paths. *)
    t.suppressed <- t.suppressed + 1;
    Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  end

let records t = List.of_seq (Queue.to_seq t.q)
let count t = t.total

(* Allocation-free substring search: compare characters in place
   instead of carving a [String.sub] out of the haystack at every
   candidate position. *)
let contains_substring haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  if ln = 0 then true
  else if ln > lh then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= lh - ln do
      let j = ref 0 in
      while !j < ln && String.unsafe_get haystack (!i + !j) = String.unsafe_get needle !j do
        incr j
      done;
      if !j = ln then found := true else incr i
    done;
    !found
  end

let find t ~component ~substring =
  List.filter
    (fun r -> String.equal r.component component && contains_substring r.message substring)
    (records t)

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let pp_record ppf r =
  Format.fprintf ppf "[%a] %-5s %s: %s" Vtime.pp r.time (level_to_string r.level) r.component
    r.message
