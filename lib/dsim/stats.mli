(** Streaming summary statistics and simple histograms.

    Used by the benchmark harness, the network model, and the
    observability registry to summarise latency samples, dissemination
    times, and so on.

    Aggregates (count, mean, variance, min, max, sum) are exact over
    every observation.  Percentiles are computed over the retained
    samples: all of them when unbounded, or a uniform reservoir when
    [?capacity] is given.  The sorted view is cached and invalidated on
    [add], so repeated percentile queries (e.g. [pp_summary]) cost one
    sort per mutation epoch rather than one per call. *)

type t
(** Mutable accumulator of float samples. *)

val create : ?capacity:int -> ?seed:int -> unit -> t
(** [create ()] retains every sample — exactly the historical behaviour.
    [create ~capacity ()] retains at most [capacity] samples using
    reservoir sampling (Algorithm R) driven by a private deterministic
    generator seeded from [seed] (default fixed), so long soaks stop
    accumulating O(events) memory and identical runs retain identical
    samples.  @raise Invalid_argument if [capacity <= 0]. *)

val add : t -> float -> unit

val count : t -> int
(** Total observations, including any evicted from a reservoir. *)

val retained : t -> int
(** Samples currently held; [= count] when unbounded. *)

val mean : t -> float
(** 0 if no samples. *)

val variance : t -> float
(** Population variance; 0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument if empty. *)

val max : t -> float
(** @raise Invalid_argument if empty. *)

val sum : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], linear interpolation over
    the retained samples.
    @raise Invalid_argument if empty or [p] out of range. *)

val median : t -> float

val sorts_performed : t -> int
(** Number of full sorts this accumulator has ever done.  Percentile
    queries between two mutations share one sort; this counter lets
    tests assert that. *)

val to_list : t -> float list
(** Retained samples in insertion order (reservoir slots in slot
    order once the capacity has been exceeded). *)

val merge : t -> t -> t
(** Fresh unbounded accumulator containing both retained sample sets. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p99/max] summary. *)

(** Fixed-bucket histogram over a closed-open range.

    Out-of-range samples are never folded into the edge buckets — they
    are counted separately as underflow/overflow so tail buckets keep
    their true shape. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  (** @raise Invalid_argument unless [lo < hi] and [buckets > 0]. *)

  val add : h -> float -> unit
  (** Samples below [lo] count as underflow, samples at or above [hi]
      as overflow (NaN counts as underflow). *)

  val counts : h -> int array
  (** In-range bucket counts only. *)

  val underflow : h -> int
  val overflow : h -> int

  val bucket_bounds : h -> int -> float * float
  (** Closed-open bounds of bucket [i]. *)

  val total : h -> int
  (** In-range + underflow + overflow. *)

  val pp : Format.formatter -> h -> unit
  (** One line per non-empty boundary region and each bucket. *)
end
