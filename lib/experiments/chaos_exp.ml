(** Chaos soaks (robustness; paper §2's "simulation under various
    deployment settings", taken adversarially). Each application runs
    through a seeded random {!Engine.Chaos} storm — crashes,
    partitions, degradations, duplication, corruption, reordering —
    and is judged on the two promises the runtime makes: no safety
    violation ever, and the app's own objective moving again within a
    grace period. One {!report} shape covers every app so tests and
    the CLI print one table. *)

type report = {
  app : string;
  seed : int;
  violations : int;
  recovered : bool;
  self_healed : bool;  (** no node still degraded when grace ran out *)
  heal_time : float option;  (** grace seconds until the last node un-degraded *)
  plan_events : int;
  plan_text : string;
      (** [Faultplan.pp] of the generated plan — the replay witness *)
  delivered : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  reordered : int;
  decode_failures : int;
  byz_emitted : int;  (** byzantine mutants delivered (0 unless the profile mutates) *)
  byz_rejected : int;  (** mutants bounced by the app's validator *)
  byz_accepted : int;  (** mutants the validator let through to a handler *)
  degraded_entries : int;
  degraded_exits : int;
  retransmits : int;  (** reliable-delivery retransmissions (0 unless enabled) *)
  giveups : int;  (** reliable sends abandoned after the retry budget *)
  sheds : int;
      (** messages shed by the overload layer, all causes (0 unless the
          profile runs injection bursts) *)
  max_depth : int;  (** mailbox high-water mark over the whole soak *)
  shed_bounded : bool;  (** queues never exceeded their configured capacity *)
  overload_recovered : bool;  (** every queue drained by the end of grace *)
  elapsed : float;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%-8s seed=%-4d %s %s %s viol=%d dlv=%d drop=%d dup=%d corr=%d badwire=%d \
     byz=%d(-%d/+%d) deg=%d/%d rexmit=%d giveup=%d shed=%d depth<=%d %s %s"
    r.app r.seed
    (if r.violations = 0 then "SAFE  " else "UNSAFE")
    (if r.recovered then "recovered" else "STUCK    ")
    (if r.self_healed then "healed  " else "DEGRADED")
    r.violations r.delivered r.dropped r.duplicated r.corrupted r.decode_failures
    r.byz_emitted r.byz_rejected r.byz_accepted
    r.degraded_entries r.degraded_exits r.retransmits r.giveups r.sheds r.max_depth
    (if r.shed_bounded then "bounded" else "OVERRUN")
    (if r.overload_recovered then "drained" else "BACKLOGGED")

(* Every soak uses one flat LAN-ish topology: the storm supplies the
   adversity, the base network stays out of the way. *)
let topology ~n =
  Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.02 ~bandwidth:200_000. ~loss:0.)

(* ---------- paxos: 5 replicas, commands keep committing ---------- *)

module Paxos_app = Apps.Paxos.Default
module Paxos_soak = Engine.Chaos.Soak (Paxos_app)

let paxos_profile =
  { Engine.Chaos.default_profile with crashes = 2; partitions = 1 }

let paxos_decided eng =
  List.fold_left
    (fun acc (_, st) -> acc + Apps.Paxos.Int_map.cardinal (Paxos_app.decided st))
    0
    (Paxos_soak.E.live_nodes eng)

let soak_paxos ?(profile = paxos_profile) ?(reliable = false) ?obs seed =
  let n = Apps.Paxos.Default_params.population in
  let o =
    Paxos_soak.run ~seed ~topology:(topology ~n) profile
      ~setup:(fun eng ->
        Paxos_soak.E.set_resolver eng (Apps.Paxos.round_robin_resolver ~population:n);
        (* Bursting profiles get bounded mailboxes, priority shedding
           and the circuit breaker; all off otherwise so seeded runs
           stay byte-identical. *)
        (if profile.Engine.Chaos.overload_nodes > 0 then begin
           Paxos_soak.E.set_overload eng
             ~config:
               {
                 Paxos_soak.E.default_overload with
                 Paxos_soak.E.mailbox_capacity = 64;
                 shed = Paxos_soak.E.By_priority;
                 service_time = 5e-4;
               };
           Paxos_soak.E.enable_breaker eng
         end);
        if reliable then Paxos_soak.E.enable_reliable eng;
        Option.iter (fun sink -> Paxos_soak.E.set_obs eng (Some sink)) obs;
        let rng = Dsim.Rng.create (seed + 77) in
        for i = 0 to n - 1 do
          Paxos_soak.E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
        done)
      ~recovered:(fun eng ->
        (* Consensus recovered iff the log keeps growing after the storm. *)
        let before = paxos_decided eng in
        fun () -> paxos_decided eng > before)
  in
  let s = o.Paxos_soak.stats in
  {
    app = "paxos";
    seed;
    violations = List.length o.Paxos_soak.violations;
    recovered = o.Paxos_soak.recovered;
    self_healed = o.Paxos_soak.self_healed;
    heal_time = o.Paxos_soak.heal_time;
    plan_events = List.length (Engine.Faultplan.events o.Paxos_soak.plan);
    plan_text = Format.asprintf "%a" Engine.Faultplan.pp o.Paxos_soak.plan;
    delivered = s.Paxos_soak.E.messages_delivered;
    dropped = s.Paxos_soak.E.messages_dropped;
    duplicated = s.Paxos_soak.E.messages_duplicated;
    corrupted = s.Paxos_soak.E.messages_corrupted;
    reordered = s.Paxos_soak.E.messages_reordered;
    decode_failures = s.Paxos_soak.E.decode_failures;
    byz_emitted = s.Paxos_soak.E.byz_emitted;
    byz_rejected = s.Paxos_soak.E.byz_rejected;
    byz_accepted = s.Paxos_soak.E.byz_accepted;
    degraded_entries = s.Paxos_soak.E.degraded_entries;
    degraded_exits = s.Paxos_soak.E.degraded_exits;
    retransmits = s.Paxos_soak.E.rel_retransmits;
    giveups = s.Paxos_soak.E.rel_giveups;
    sheds =
      s.Paxos_soak.E.sheds_mailbox + s.Paxos_soak.E.sheds_link + s.Paxos_soak.E.sheds_admission
      + s.Paxos_soak.E.sheds_sojourn;
    max_depth = s.Paxos_soak.E.max_mailbox_depth;
    shed_bounded = o.Paxos_soak.shed_bounded;
    overload_recovered = o.Paxos_soak.overload_recovered;
    elapsed = o.Paxos_soak.elapsed;
  }

(* ---------- kvstore: primary protected, replicas catch up ---------- *)

module Kv_app = Apps.Kvstore.Default
module Kv_soak = Engine.Chaos.Soak (Kv_app)

let kvstore_profile =
  (* Clean crashes are survivable now that the store is durable: a
     revived replica recovers its applied log from disk instead of
     re-serving early sequence numbers (the staleness monotonic-reads
     exists to flag). The primary stays protected — its in-flight
     sequencing window is still the system's only copy. *)
  { Engine.Chaos.default_profile with crashes = 2; protect = [ 0 ] }

let soak_kvstore ?(profile = kvstore_profile) ?(reliable = false) ?obs seed =
  let n = Apps.Kvstore.Default_params.population in
  let o =
    Kv_soak.run ~seed ~topology:(topology ~n) profile
      ~setup:(fun eng ->
        Kv_soak.E.set_resolver eng Apps.Kvstore.session_resolver;
        (* Bursting profiles get bounded mailboxes, priority shedding
           and the circuit breaker; all off otherwise so seeded runs
           stay byte-identical. *)
        (if profile.Engine.Chaos.overload_nodes > 0 then begin
           Kv_soak.E.set_overload eng
             ~config:
               {
                 Kv_soak.E.default_overload with
                 Kv_soak.E.mailbox_capacity = 64;
                 shed = Kv_soak.E.By_priority;
                 service_time = 5e-4;
               };
           Kv_soak.E.enable_breaker eng
         end);
        if reliable then Kv_soak.E.enable_reliable eng;
        Option.iter (fun sink -> Kv_soak.E.set_obs eng (Some sink)) obs;
        let rng = Dsim.Rng.create (seed + 77) in
        for i = 0 to n - 1 do
          Kv_soak.E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
        done)
      ~recovered:(fun eng ->
        (* Recovery = anti-entropy closes the gap: every replica reaches
           at least the head the primary had when the storm ended. *)
        let head =
          List.fold_left
            (fun acc (_, st) -> max acc (Kv_app.applied_seq st))
            0 (Kv_soak.E.live_nodes eng)
        in
        fun () ->
          List.for_all
            (fun (_, st) -> Kv_app.applied_seq st >= head)
            (Kv_soak.E.live_nodes eng))
  in
  let s = o.Kv_soak.stats in
  {
    app = "kvstore";
    seed;
    violations = List.length o.Kv_soak.violations;
    recovered = o.Kv_soak.recovered;
    self_healed = o.Kv_soak.self_healed;
    heal_time = o.Kv_soak.heal_time;
    plan_events = List.length (Engine.Faultplan.events o.Kv_soak.plan);
    plan_text = Format.asprintf "%a" Engine.Faultplan.pp o.Kv_soak.plan;
    delivered = s.Kv_soak.E.messages_delivered;
    dropped = s.Kv_soak.E.messages_dropped;
    duplicated = s.Kv_soak.E.messages_duplicated;
    corrupted = s.Kv_soak.E.messages_corrupted;
    reordered = s.Kv_soak.E.messages_reordered;
    decode_failures = s.Kv_soak.E.decode_failures;
    byz_emitted = s.Kv_soak.E.byz_emitted;
    byz_rejected = s.Kv_soak.E.byz_rejected;
    byz_accepted = s.Kv_soak.E.byz_accepted;
    degraded_entries = s.Kv_soak.E.degraded_entries;
    degraded_exits = s.Kv_soak.E.degraded_exits;
    retransmits = s.Kv_soak.E.rel_retransmits;
    giveups = s.Kv_soak.E.rel_giveups;
    sheds =
      s.Kv_soak.E.sheds_mailbox + s.Kv_soak.E.sheds_link + s.Kv_soak.E.sheds_admission
      + s.Kv_soak.E.sheds_sojourn;
    max_depth = s.Kv_soak.E.max_mailbox_depth;
    shed_bounded = o.Kv_soak.shed_bounded;
    overload_recovered = o.Kv_soak.overload_recovered;
    elapsed = o.Kv_soak.elapsed;
  }

(* ---------- flapping partitions: the self-healing storm ---------- *)

(* A pure flap storm sized to the failure detector: each cut must
   outlast the ~18s of silence phi-accrual suspicion needs to enter
   degraded mode, and each heal the ~9s of fresh heartbeats it needs
   to leave it, so a 30s half-period lets every cycle be seen. The
   channel faults stay off — the flapping link is the whole adversity,
   reliable delivery rides along (retransmissions across the cut, acks
   judged through the same emulator), and [self_healed] judges whether
   everyone left degraded mode after the final heal. *)
let flap_profile =
  {
    Engine.Chaos.default_profile with
    crashes = 0;
    partitions = 0;
    degrades = 0;
    duplicate_rate = 0.;
    corrupt_rate = 0.;
    corrupt_flip = 0.;
    reorder_rate = 0.;
    reorder_window = 0.;
    flaps = 2;
    flap_period = 30.;
    storm = 130.;
    grace = 30.;
  }

let soak_paxos_flap ?(profile = flap_profile) ?obs seed =
  { (soak_paxos ~profile ~reliable:true ?obs seed) with app = "paxos-flap" }

let soak_kvstore_flap ?(profile = flap_profile) ?obs seed =
  { (soak_kvstore ~profile ~reliable:true ?obs seed) with app = "kvstore-flap" }

(* ---------- gossip: 12 nodes, rumors survive and respread ---------- *)

module Gossip_app = Apps.Gossip.Make (struct
  let population = 12
  let round_period = 0.5
  let candidate_cap = 8
end)

module Gossip_soak = Engine.Chaos.Soak (Gossip_app)

let gossip_profile = { Engine.Chaos.default_profile with crashes = 3 }
let gossip_rumors = [ 0; 1; 2; 3; 4 ]

let soak_gossip ?(profile = gossip_profile) seed =
  let n = 12 in
  let source = Proto.Node_id.of_int 1 in
  let o =
    Gossip_soak.run ~seed ~topology:(topology ~n) profile
      ~setup:(fun eng ->
        Gossip_soak.E.set_resolver eng Core.Resolver.random;
        (* Bursting profiles get bounded mailboxes, priority shedding
           and the circuit breaker; all off otherwise so seeded runs
           stay byte-identical. *)
        (if profile.Engine.Chaos.overload_nodes > 0 then begin
           Gossip_soak.E.set_overload eng
             ~config:
               {
                 Gossip_soak.E.default_overload with
                 Gossip_soak.E.mailbox_capacity = 64;
                 shed = Gossip_soak.E.By_priority;
                 service_time = 5e-4;
               };
           Gossip_soak.E.enable_breaker eng
         end);
        let rng = Dsim.Rng.create (seed + 77) in
        for i = 0 to n - 1 do
          Gossip_soak.E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
        done;
        Gossip_soak.E.inject eng ~after:0.5 ~src:source ~dst:source
          (Gossip_app.seed_rumors source gossip_rumors))
      ~recovered:(fun eng ->
        (* Recovery = push-pull refills everyone, including nodes that
           restarted with empty rumor sets. *)
        let want = Apps.Gossip.Int_set.of_list gossip_rumors in
        fun () ->
          List.for_all
            (fun (_, st) -> Apps.Gossip.Int_set.subset want (Gossip_app.known st))
            (Gossip_soak.E.live_nodes eng))
  in
  let s = o.Gossip_soak.stats in
  {
    app = "gossip";
    seed;
    violations = List.length o.Gossip_soak.violations;
    recovered = o.Gossip_soak.recovered;
    self_healed = o.Gossip_soak.self_healed;
    heal_time = o.Gossip_soak.heal_time;
    plan_events = List.length (Engine.Faultplan.events o.Gossip_soak.plan);
    plan_text = Format.asprintf "%a" Engine.Faultplan.pp o.Gossip_soak.plan;
    delivered = s.Gossip_soak.E.messages_delivered;
    dropped = s.Gossip_soak.E.messages_dropped;
    duplicated = s.Gossip_soak.E.messages_duplicated;
    corrupted = s.Gossip_soak.E.messages_corrupted;
    reordered = s.Gossip_soak.E.messages_reordered;
    decode_failures = s.Gossip_soak.E.decode_failures;
    byz_emitted = s.Gossip_soak.E.byz_emitted;
    byz_rejected = s.Gossip_soak.E.byz_rejected;
    byz_accepted = s.Gossip_soak.E.byz_accepted;
    degraded_entries = s.Gossip_soak.E.degraded_entries;
    degraded_exits = s.Gossip_soak.E.degraded_exits;
    retransmits = s.Gossip_soak.E.rel_retransmits;
    giveups = s.Gossip_soak.E.rel_giveups;
    sheds =
      s.Gossip_soak.E.sheds_mailbox + s.Gossip_soak.E.sheds_link + s.Gossip_soak.E.sheds_admission
      + s.Gossip_soak.E.sheds_sojourn;
    max_depth = s.Gossip_soak.E.max_mailbox_depth;
    shed_bounded = o.Gossip_soak.shed_bounded;
    overload_recovered = o.Gossip_soak.overload_recovered;
    elapsed = o.Gossip_soak.elapsed;
  }

(* ---------- dht: 16 nodes, lookups keep completing ---------- *)

module Dht_app = Apps.Dht.Make (struct
  let population = 16
  let query_period = 1.0
  let max_hops = 24
end)

module Dht_soak = Engine.Chaos.Soak (Dht_app)

let dht_profile = { Engine.Chaos.default_profile with crashes = 3 }

let dht_completed eng =
  List.fold_left
    (fun acc (_, st) -> acc + List.length (Dht_app.lookups st))
    0 (Dht_soak.E.live_nodes eng)

let soak_dht ?(profile = dht_profile) seed =
  let n = 16 in
  let o =
    Dht_soak.run ~seed ~topology:(topology ~n) profile
      ~setup:(fun eng ->
        Dht_soak.E.set_resolver eng Core.Resolver.random;
        (* Bursting profiles get bounded mailboxes, priority shedding
           and the circuit breaker; all off otherwise so seeded runs
           stay byte-identical. *)
        (if profile.Engine.Chaos.overload_nodes > 0 then begin
           Dht_soak.E.set_overload eng
             ~config:
               {
                 Dht_soak.E.default_overload with
                 Dht_soak.E.mailbox_capacity = 64;
                 shed = Dht_soak.E.By_priority;
                 service_time = 5e-4;
               };
           Dht_soak.E.enable_breaker eng
         end);
        let rng = Dsim.Rng.create (seed + 77) in
        for i = 0 to n - 1 do
          Dht_soak.E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
        done)
      ~recovered:(fun eng ->
        let before = dht_completed eng in
        fun () -> dht_completed eng > before)
  in
  let s = o.Dht_soak.stats in
  {
    app = "dht";
    seed;
    violations = List.length o.Dht_soak.violations;
    recovered = o.Dht_soak.recovered;
    self_healed = o.Dht_soak.self_healed;
    heal_time = o.Dht_soak.heal_time;
    plan_events = List.length (Engine.Faultplan.events o.Dht_soak.plan);
    plan_text = Format.asprintf "%a" Engine.Faultplan.pp o.Dht_soak.plan;
    delivered = s.Dht_soak.E.messages_delivered;
    dropped = s.Dht_soak.E.messages_dropped;
    duplicated = s.Dht_soak.E.messages_duplicated;
    corrupted = s.Dht_soak.E.messages_corrupted;
    reordered = s.Dht_soak.E.messages_reordered;
    decode_failures = s.Dht_soak.E.decode_failures;
    byz_emitted = s.Dht_soak.E.byz_emitted;
    byz_rejected = s.Dht_soak.E.byz_rejected;
    byz_accepted = s.Dht_soak.E.byz_accepted;
    degraded_entries = s.Dht_soak.E.degraded_entries;
    degraded_exits = s.Dht_soak.E.degraded_exits;
    retransmits = s.Dht_soak.E.rel_retransmits;
    giveups = s.Dht_soak.E.rel_giveups;
    sheds =
      s.Dht_soak.E.sheds_mailbox + s.Dht_soak.E.sheds_link + s.Dht_soak.E.sheds_admission
      + s.Dht_soak.E.sheds_sojourn;
    max_depth = s.Dht_soak.E.max_mailbox_depth;
    shed_bounded = o.Dht_soak.shed_bounded;
    overload_recovered = o.Dht_soak.overload_recovered;
    elapsed = o.Dht_soak.elapsed;
  }

(* ---------- randtree: 8 nodes, tree re-forms around the root ---------- *)

module Tree_app = Apps.Randtree_choice.Default
module Tree_soak = Engine.Chaos.Soak (Tree_app)

let randtree_profile =
  (* The root is the tree's identity; protect it like the kvstore
     primary. *)
  { Engine.Chaos.default_profile with crashes = 2; protect = [ 0 ] }

let soak_randtree ?(profile = randtree_profile) seed =
  let n = 8 in
  let o =
    Tree_soak.run ~seed ~topology:(topology ~n) profile
      ~setup:(fun eng ->
        Tree_soak.E.set_resolver eng Core.Resolver.random;
        (* Bursting profiles get bounded mailboxes, priority shedding
           and the circuit breaker; all off otherwise so seeded runs
           stay byte-identical. *)
        (if profile.Engine.Chaos.overload_nodes > 0 then begin
           Tree_soak.E.set_overload eng
             ~config:
               {
                 Tree_soak.E.default_overload with
                 Tree_soak.E.mailbox_capacity = 64;
                 shed = Tree_soak.E.By_priority;
                 service_time = 5e-4;
               };
           Tree_soak.E.enable_breaker eng
         end);
        let rng = Dsim.Rng.create (seed + 77) in
        Tree_soak.E.spawn eng (Proto.Node_id.of_int 0);
        for i = 1 to n - 1 do
          Tree_soak.E.spawn eng
            ~after:(0.3 +. (0.2 *. float_of_int i) +. Dsim.Rng.float rng 0.1)
            (Proto.Node_id.of_int i)
        done)
      ~recovered:(fun eng ->
        fun () ->
          List.for_all
            (fun (_, st) -> Tree_app.is_joined st)
            (Tree_soak.E.live_nodes eng))
  in
  let s = o.Tree_soak.stats in
  {
    app = "randtree";
    seed;
    violations = List.length o.Tree_soak.violations;
    recovered = o.Tree_soak.recovered;
    self_healed = o.Tree_soak.self_healed;
    heal_time = o.Tree_soak.heal_time;
    plan_events = List.length (Engine.Faultplan.events o.Tree_soak.plan);
    plan_text = Format.asprintf "%a" Engine.Faultplan.pp o.Tree_soak.plan;
    delivered = s.Tree_soak.E.messages_delivered;
    dropped = s.Tree_soak.E.messages_dropped;
    duplicated = s.Tree_soak.E.messages_duplicated;
    corrupted = s.Tree_soak.E.messages_corrupted;
    reordered = s.Tree_soak.E.messages_reordered;
    decode_failures = s.Tree_soak.E.decode_failures;
    byz_emitted = s.Tree_soak.E.byz_emitted;
    byz_rejected = s.Tree_soak.E.byz_rejected;
    byz_accepted = s.Tree_soak.E.byz_accepted;
    degraded_entries = s.Tree_soak.E.degraded_entries;
    degraded_exits = s.Tree_soak.E.degraded_exits;
    retransmits = s.Tree_soak.E.rel_retransmits;
    giveups = s.Tree_soak.E.rel_giveups;
    sheds =
      s.Tree_soak.E.sheds_mailbox + s.Tree_soak.E.sheds_link + s.Tree_soak.E.sheds_admission
      + s.Tree_soak.E.sheds_sojourn;
    max_depth = s.Tree_soak.E.max_mailbox_depth;
    shed_bounded = o.Tree_soak.shed_bounded;
    overload_recovered = o.Tree_soak.overload_recovered;
    elapsed = o.Tree_soak.elapsed;
  }

(* ---------- dispatcher ---------- *)

let apps = [ "paxos"; "kvstore"; "gossip"; "dht"; "randtree" ]

(* [scale] stretches a soak beyond its test-sized defaults: the storm
   and grace grow by [factor], crash/partition/degrade counts grow
   with it. Used by the CLI's large-bounds runs. *)
let scale factor (p : Engine.Chaos.profile) =
  if factor <= 0. then invalid_arg "Chaos_exp.scale: non-positive factor";
  let times n = max n (int_of_float (ceil (float_of_int n *. factor))) in
  {
    p with
    Engine.Chaos.crashes = times p.Engine.Chaos.crashes;
    partitions = times p.Engine.Chaos.partitions;
    degrades = times p.Engine.Chaos.degrades;
    storm = p.Engine.Chaos.storm *. factor;
    grace = p.Engine.Chaos.grace *. factor;
  }

(* [with_flaps n] grafts a flapping partition onto any profile,
   stretching the storm so [n] full cycles (sized for the failure
   detector, see {!flap_profile}) fit inside it and leaving a grace
   long enough for the last exit from degraded mode to be observed. *)
let with_flaps flaps (p : Engine.Chaos.profile) =
  if flaps < 0 then invalid_arg "Chaos_exp.with_flaps: negative flap count";
  if flaps = 0 then p
  else
    let needed = 2. *. p.Engine.Chaos.flap_period *. float_of_int flaps /. 0.95 in
    {
      p with
      Engine.Chaos.flaps;
      storm = Float.max p.Engine.Chaos.storm (Float.ceil needed);
      grace = Float.max p.Engine.Chaos.grace 30.;
    }

(* [with_overload n] asks the plan for [n] targeted injection bursts;
   the soak setups react to the knob by bounding mailboxes and turning
   on priority shedding and the circuit breaker. *)
let with_overload overload (p : Engine.Chaos.profile) =
  if overload < 0 then invalid_arg "Chaos_exp.with_overload: negative overload count";
  if overload = 0 then p else { p with Engine.Chaos.overload_nodes = overload }

(* [with_drift n] skews [n] nodes' local clocks (the profile's default
   drift band) and throws in one NTP-style step excursion alongside, so
   a drift soak also crosses a discontinuity. Zero leaves the profile —
   and hence the plan RNG stream — completely untouched. *)
let with_drift drift (p : Engine.Chaos.profile) =
  if drift < 0 then invalid_arg "Chaos_exp.with_drift: negative drift count";
  if drift = 0 then p else { p with Engine.Chaos.drift_nodes = drift; clock_steps = 1 }

(* [with_byz n] turns on byzantine message mutation: [n] directed links
   carry typed decodes-clean mutations for a window each (0 leaves the
   profile — and hence the plan RNG stream — completely untouched; [-1]
   mutates the global channel for the whole storm). Rates are sized to
   the exposure: a few windowed links can run hot (25%), while the
   global channel mutates every message of every pair for the whole
   storm, so it runs at 5% — enough mutants reach the validators to
   matter, low enough that compound forgeries (two mutants conspiring
   on one protocol step, which no unauthenticated protocol survives)
   stay out of a short soak. *)
let with_byz byz (p : Engine.Chaos.profile) =
  if byz < -1 then invalid_arg "Chaos_exp.with_byz: bad byzantine link count";
  if byz = 0 then p
  else if byz < 0 then { p with Engine.Chaos.byz_links = 0; byz_rate = 0.05 }
  else { p with Engine.Chaos.byz_links = byz; byz_rate = 0.25 }

let run ?(factor = 1.) ?(flaps = 0) ?(overload = 0) ?(drift = 0) ?(byz = 0) ~seed app =
  let profile base =
    with_byz byz
      (with_drift drift (with_overload overload (with_flaps flaps (scale factor base))))
  in
  match app with
  | "paxos" -> soak_paxos ~profile:(profile paxos_profile) seed
  | "kvstore" -> soak_kvstore ~profile:(profile kvstore_profile) seed
  | "gossip" -> soak_gossip ~profile:(profile gossip_profile) seed
  | "dht" -> soak_dht ~profile:(profile dht_profile) seed
  | "randtree" -> soak_randtree ~profile:(profile randtree_profile) seed
  | other -> invalid_arg ("Chaos_exp.run: unknown app " ^ other)
