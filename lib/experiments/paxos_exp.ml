(** E6 — consensus proposer choice (paper §3.1). Five replicas spread
    over three WAN areas commit a stream of locally-born commands; we
    compare proposer-assignment policies on commit latency. The paper's
    point: a fixed leader pays forwarding and congestion costs that a
    runtime free to pick the proposer avoids (Mencius hard-codes one
    good answer; the exposed choice subsumes it). *)

module App = Apps.Paxos.Default
module E = Engine.Sim.Make (App)

type policy = Fixed_leader | Rotating | Local | Crystalball | Bandit

let policy_name = function
  | Fixed_leader -> "Fixed-leader"
  | Rotating -> "Rotating"
  | Local -> "Local(Mencius)"
  | Crystalball -> "CrystalBall"
  | Bandit -> "Bandit"

let all_policies = [ Fixed_leader; Rotating; Local; Crystalball; Bandit ]

type scenario = Balanced_wan | Loaded_leader | Partitioned

let scenario_name = function
  | Balanced_wan -> "balanced-wan"
  | Loaded_leader -> "loaded-leader"
  | Partitioned -> "partitioned"

let all_scenarios = [ Balanced_wan; Loaded_leader; Partitioned ]

type outcome = {
  policy : policy;
  scenario : scenario;
  committed : int;
  born : int;
  mean_latency_ms : float;
  p99_latency_ms : float;
  messages : int;
  agreement_violations : int;
}

let population = Apps.Paxos.Default_params.population

(* Replicas 0..4 land in distinct stubs across 3 transit areas. *)
let topology ~seed ~scenario =
  let rng = Dsim.Rng.create (seed + 307) in
  let p =
    {
      Net.Topology.default_transit_stub with
      Net.Topology.transits = 3;
      stubs_per_transit = 2;
      clients_per_stub = 1;
    }
  in
  let base = Net.Topology.transit_stub ~jitter_rng:rng p in
  match scenario with
  | Balanced_wan | Partitioned -> base
  | Loaded_leader ->
      (* The fixed leader's access link is congested: 1/20 bandwidth
         and 5x latency — the "CPU overload or network congestion" the
         paper attributes reduced fixed-leader performance to. *)
      Net.Topology.degrade base (fun a b prop ->
          if a = 0 || b = 0 then
            Net.Linkprop.v
              ~latency:(prop.Net.Linkprop.latency *. 5.)
              ~bandwidth:(prop.Net.Linkprop.bandwidth /. 20.)
              ~loss:prop.Net.Linkprop.loss
          else prop)

let make_engine ~seed ~scenario policy =
  let eng = E.create ~seed ~topology:(topology ~seed ~scenario) () in
  (match policy with
  | Fixed_leader -> E.set_resolver eng (Apps.Paxos.fixed_leader_resolver ~leader:0)
  | Rotating -> E.set_resolver eng (Apps.Paxos.round_robin_resolver ~population)
  | Local -> E.set_resolver eng Apps.Paxos.self_resolver
  | Crystalball ->
      E.set_lookahead eng
        ~fallback:Apps.Paxos.self_resolver
        { E.default_lookahead with horizon = 1.0; max_events = 200; max_candidates = 5 }
  | Bandit ->
      let bandit = Core.Bandit.create () in
      E.set_resolver eng (Core.Bandit.to_resolver bandit);
      E.enable_reward_feedback eng ~window:1.5);
  eng

let run ?(seed = 42) ?(duration = 60.) ?obs ~scenario policy =
  let eng = make_engine ~seed ~scenario policy in
  E.set_obs eng obs;
  let rng = Dsim.Rng.create (seed + 11) in
  for i = 0 to population - 1 do
    E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
  done;
  (match scenario with
  | Balanced_wan | Loaded_leader -> E.run_for eng duration
  | Partitioned ->
      (* Replicas 3 and 4 lose contact with the majority for a quarter
         of the run; their proposals stall (no quorum) and must recover
         through retries after the network heals. *)
      let minority = [ 3; 4 ] and majority = [ 0; 1; 2 ] in
      E.run_for eng (duration /. 3.);
      List.iter
        (fun a -> List.iter (fun b -> Net.Netem.cut_bidirectional (E.netem eng) a b) majority)
        minority;
      E.run_for eng (duration /. 4.);
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              Net.Netem.heal (E.netem eng) ~src:a ~dst:b;
              Net.Netem.heal (E.netem eng) ~src:b ~dst:a)
            majority)
        minority;
      E.run_for eng (duration -. (duration /. 3.) -. (duration /. 4.)));
  let stats = Dsim.Stats.create () in
  let born = ref 0 in
  List.iter
    (fun (_, st) ->
      born := !born + App.born_count st;
      List.iter (fun l -> Dsim.Stats.add stats (l *. 1000.)) (App.latencies st))
    (E.live_nodes eng);
  {
    policy;
    scenario;
    committed = Dsim.Stats.count stats;
    born = !born;
    mean_latency_ms = Dsim.Stats.mean stats;
    p99_latency_ms = (if Dsim.Stats.count stats = 0 then 0. else Dsim.Stats.percentile stats 99.);
    messages = (E.stats eng).messages_delivered;
    agreement_violations =
      List.length
        (List.filter (fun (_, name) -> String.equal name "agreement") (E.violations eng));
  }
