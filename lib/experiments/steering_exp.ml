(** S1/A2 — execution steering (paper §2) on the buggy lease service.

    S1: with the CrystalBall runtime attached, predicted double-grants
    are filtered before they happen; without it, the premature-expiry
    race violates exclusivity. A2 sweeps the checkpoint staleness to
    show prediction quality degrading as the model ages — the paper's
    "how to keep the model up to date" concern, quantified. *)

module App = Apps.Lease.Default
module R = Runtime.Crystal.Make (App)
module E = R.E

type outcome = {
  with_runtime : bool;
  checkpoint_delay : float;
  violations : int;
  grants : int;
  filtered : int;
  vetoes : int;
  worlds_explored : int;  (** worlds actually visited across all steering rounds *)
  outcomes_cached : int;
  fingerprint_collisions : int;
}

let population = Apps.Lease.Default_params.population

(* A slow WAN: messages spend long enough in flight that the controller
   has a real window to predict and veto an offending lease. *)
let topology =
  Net.Topology.uniform ~n:population
    (Net.Linkprop.v ~latency:0.3 ~bandwidth:1_000_000. ~loss:0.)

let neighbors (_ : App.state) = List.init population Proto.Node_id.of_int

let run ?(seed = 42) ?(duration = 120.) ?(checkpoint_delay = 0.05) ?obs ~with_runtime () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_obs eng obs;
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to population - 1 do
    E.spawn eng (Proto.Node_id.of_int i)
  done;
  let cry =
    if with_runtime then
      Some
        (R.attach
           ?obs:(Option.map (fun (s : Obs.Sink.t) -> s.Obs.Sink.registry) obs)
           ~config:
             {
               Runtime.Config.default with
               Runtime.Config.checkpoint_period = 0.1;
               checkpoint_delay;
               steer_period = 0.1;
               steer_depth = 2;
               filter_ttl = 0.5;
             }
           ~neighbors eng)
    else None
  in
  (match cry with Some cry -> R.run_for cry duration | None -> E.run_for eng duration);
  let grants =
    List.fold_left (fun acc (_, st) -> acc + App.grants_made st) 0 (E.live_nodes eng)
  in
  let rep = Option.map R.report cry in
  {
    with_runtime;
    checkpoint_delay;
    violations = List.length (E.violations eng);
    grants;
    filtered = (E.stats eng).messages_filtered;
    vetoes = (match rep with Some r -> r.R.vetoes_installed | None -> 0);
    worlds_explored = (match rep with Some r -> r.R.worlds_explored | None -> 0);
    outcomes_cached = (match rep with Some r -> r.R.outcomes_cached | None -> 0);
    fingerprint_collisions = (match rep with Some r -> r.R.fingerprint_collisions | None -> 0);
  }
