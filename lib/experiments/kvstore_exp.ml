(** E8 — read-replica choice on a replicated KV store (paper §3.2:
    weaker consistency expressed as performance). Five replicas across
    a WAN; every client session reads and writes. Policies trade read
    latency against session guarantees; the monotonic-reads property
    counts the price of over-eager staleness. *)

module App = Apps.Kvstore.Default
module E = Engine.Sim.Make (App)

type policy = Primary_only | Nearest | Random_replica | Session | Crystalball | Bandit

let policy_name = function
  | Primary_only -> "Primary-only"
  | Nearest -> "Nearest"
  | Random_replica -> "Random"
  | Session -> "Session-aware"
  | Crystalball -> "CrystalBall"
  | Bandit -> "Bandit"

let all_policies = [ Primary_only; Nearest; Random_replica; Session; Crystalball; Bandit ]

type outcome = {
  policy : policy;
  reads : int;
  mean_read_ms : float;
  p99_read_ms : float;
  mean_write_ms : float;
  monotonic_violations : int;
  mean_staleness : float;  (** sequence numbers behind the session's freshest evidence *)
}

let population = Apps.Kvstore.Default_params.population

(* Same WAN shape as the Paxos experiment: replicas in distinct stubs
   across three areas, so primary reads cost real round trips. *)
let topology ~seed =
  let rng = Dsim.Rng.create (seed + 509) in
  Net.Topology.transit_stub ~jitter_rng:rng
    {
      Net.Topology.default_transit_stub with
      Net.Topology.transits = 3;
      stubs_per_transit = 2;
      clients_per_stub = 1;
    }

let make_engine ~seed policy =
  let eng = E.create ~seed ~topology:(topology ~seed) () in
  (match policy with
  | Primary_only -> E.set_resolver eng Apps.Kvstore.primary_resolver
  | Nearest -> E.set_resolver eng Apps.Kvstore.nearest_resolver
  | Random_replica -> E.set_resolver eng Core.Resolver.random
  | Session -> E.set_resolver eng Apps.Kvstore.session_resolver
  | Crystalball ->
      E.set_lookahead eng ~fallback:Apps.Kvstore.session_resolver
        { E.default_lookahead with horizon = 1.0; max_events = 200; max_candidates = 5 }
  | Bandit ->
      let bandit = Core.Bandit.create () in
      E.set_resolver eng (Core.Bandit.to_resolver bandit);
      E.enable_reward_feedback eng ~window:1.0);
  eng

let run ?(seed = 42) ?(duration = 60.) ?obs policy =
  let eng = make_engine ~seed policy in
  E.set_obs eng obs;
  let rng = Dsim.Rng.create (seed + 23) in
  for i = 0 to population - 1 do
    E.spawn eng ~after:(Dsim.Rng.float rng 0.3) (Proto.Node_id.of_int i)
  done;
  E.run_for eng duration;
  let reads = Dsim.Stats.create () and writes = Dsim.Stats.create () in
  let violations = ref 0 in
  let staleness = ref 0 in
  List.iter
    (fun (_, st) ->
      violations := !violations + App.monotonic_violations st;
      staleness := !staleness + App.staleness_sum st;
      List.iter (fun l -> Dsim.Stats.add reads (l *. 1000.)) (App.read_latencies st);
      List.iter (fun l -> Dsim.Stats.add writes (l *. 1000.)) (App.write_latencies st))
    (E.live_nodes eng);
  {
    policy;
    reads = Dsim.Stats.count reads;
    mean_read_ms = Dsim.Stats.mean reads;
    p99_read_ms = (if Dsim.Stats.count reads = 0 then 0. else Dsim.Stats.percentile reads 99.);
    mean_write_ms = Dsim.Stats.mean writes;
    monotonic_violations = !violations;
    mean_staleness =
      (if Dsim.Stats.count reads = 0 then 0.
       else float_of_int !staleness /. float_of_int (Dsim.Stats.count reads));
  }
