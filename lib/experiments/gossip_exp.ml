(** E4 — gossip peer choice (paper §3.1). A rumor wave is injected at a
    source node; we measure how long each policy takes to reach full
    coverage, in a uniform WAN and in one where a whole stub sits
    behind a slow access link (the situation the paper says hurts the
    BAR-style restricted schedule). *)

module App = Apps.Gossip.Default
module E = Engine.Sim.Make (App)

type policy =
  | Restricted
  | Random_peer
  | Greedy_rtt
  | Crystalball
  | Bandit
  | Hybrid
  | Playbook  (** offline-trained, frozen; see {!run_playbook} *)

let policy_name = function
  | Restricted -> "Restricted(BAR)"
  | Random_peer -> "Random"
  | Greedy_rtt -> "Greedy-RTT"
  | Crystalball -> "CrystalBall"
  | Bandit -> "Bandit"
  | Hybrid -> "Hybrid(cache)"
  | Playbook -> "Playbook(offline)"

let all_policies = [ Restricted; Random_peer; Greedy_rtt; Crystalball; Bandit; Hybrid ]

type scenario = Uniform | Slow_stub

let scenario_name = function Uniform -> "uniform" | Slow_stub -> "slow-stub"

type outcome = {
  policy : policy;
  scenario : scenario;
  waves : int;
  mean_coverage_s : float;
  max_coverage_s : float;
  messages : int;
  cache : (int * int) option;  (** (hits, misses) when the hybrid cache ran *)
}

let population = Apps.Gossip.Default_params.population

let topology ~seed ~scenario =
  let rng = Dsim.Rng.create (seed + 101) in
  let p =
    {
      Net.Topology.default_transit_stub with
      Net.Topology.transits = 2;
      stubs_per_transit = 2;
      clients_per_stub = population / 4;
    }
  in
  let base = Net.Topology.transit_stub ~jitter_rng:rng p in
  match scenario with
  | Uniform -> base
  | Slow_stub ->
      (* Every path touching the last stub pays 10x latency and 1/10
         bandwidth — a congested access network. *)
      let slow e = e >= population - (population / 4) in
      Net.Topology.degrade base (fun a b prop ->
          if slow a || slow b then
            Net.Linkprop.v
              ~latency:(prop.Net.Linkprop.latency *. 10.)
              ~bandwidth:(prop.Net.Linkprop.bandwidth /. 10.)
              ~loss:prop.Net.Linkprop.loss
          else prop)

let make_engine ~seed ~scenario policy =
  let eng = E.create ~seed ~topology:(topology ~seed ~scenario) () in
  (match policy with
  | Restricted -> E.set_resolver eng (Apps.Gossip.restricted_resolver ~population)
  | Random_peer -> E.set_resolver eng Core.Resolver.random
  | Greedy_rtt -> E.set_resolver eng (Core.Resolver.greedy ~feature:"rtt_ms" ())
  | Crystalball ->
      E.set_lookahead eng
        { E.default_lookahead with horizon = 1.5; max_events = 300; max_candidates = 4 }
  | Bandit ->
      let bandit = Core.Bandit.create () in
      E.set_resolver eng (Core.Bandit.to_resolver bandit);
      E.enable_reward_feedback eng ~window:1.5
  | Hybrid ->
      (* The §3.4 architecture: lookahead off the critical path, cached
         decisions on it. *)
      E.set_lookahead eng
        ~cache:(Core.Bandit.create (), 2)
        { E.default_lookahead with horizon = 1.5; max_events = 300; max_candidates = 4 }
  | Playbook -> invalid_arg "Gossip_exp.make_engine: use run_playbook for the offline policy");
  eng

let source = Proto.Node_id.of_int 1

let coverage eng rumor =
  List.for_all
    (fun (_, st) -> Apps.Gossip.Int_set.mem rumor (App.known st))
    (E.live_nodes eng)

(* Waits (in 100ms slices) until every node knows [rumor]; returns the
   elapsed virtual seconds since [from], or [deadline] on timeout. *)
let wait_coverage eng rumor ~from ~deadline =
  let rec poll () =
    if coverage eng rumor then Dsim.Vtime.diff (E.now eng) from
    else if Dsim.Vtime.diff (E.now eng) from >= deadline then deadline
    else begin
      E.run_for eng 0.1;
      poll ()
    end
  in
  poll ()

(* ---------- offline playbook (paper §3.4 precomputation) ---------- *)

module PB = Runtime.Playbook.Make (App)

(* Trains on different seeds than any evaluation run uses, driving the
   same workload shape: warm-up, then rumor waves from the source. *)
let train_playbook ?(episodes = 2) ?(train_seed = 990) ~scenario ~waves () =
  PB.train
    ~lookahead:{ E.default_lookahead with horizon = 1.5; max_events = 300; max_candidates = 4 }
    ~episodes ~seed:train_seed
    ~topology:(topology ~seed:train_seed ~scenario)
    ~scenario:(fun eng ->
      let rng = Dsim.Rng.create train_seed in
      for i = 0 to population - 1 do
        E.spawn eng ~after:(Dsim.Rng.float rng 0.2) (Proto.Node_id.of_int i)
      done;
      E.run_for eng 3.0;
      for wave = 0 to waves - 1 do
        E.inject eng ~src:source ~dst:source (Apps.Gossip.Push { rumors = [ wave ]; round = 0 });
        E.run_for eng 5.0
      done)
    ()

let measure eng ~policy ~scenario ~seed ~waves =
  let rng = Dsim.Rng.create (seed + 3) in
  for i = 0 to population - 1 do
    E.spawn eng ~after:(Dsim.Rng.float rng 0.2) (Proto.Node_id.of_int i)
  done;
  (* Warm-up: let the first rounds populate the network model. *)
  E.run_for eng 3.0;
  let times = ref [] in
  for wave = 0 to waves - 1 do
    let from = E.now eng in
    E.inject eng ~src:source ~dst:source (Apps.Gossip.Push { rumors = [ wave ]; round = 0 });
    let t = wait_coverage eng wave ~from ~deadline:30.0 in
    times := t :: !times
  done;
  let stats = Dsim.Stats.create () in
  List.iter (Dsim.Stats.add stats) !times;
  {
    policy;
    scenario;
    waves;
    mean_coverage_s = Dsim.Stats.mean stats;
    max_coverage_s = Dsim.Stats.max stats;
    messages = (E.stats eng).messages_delivered;
    cache = E.cache_stats eng;
  }

let run ?(seed = 42) ?(waves = 5) ?obs ~scenario policy =
  let eng = make_engine ~seed ~scenario policy in
  E.set_obs eng obs;
  measure eng ~policy ~scenario ~seed ~waves

(* Train offline (distinct seeds), freeze, evaluate: the precomputation
   architecture of §3.4. Returns the outcome plus training cost. *)
let run_playbook ?(seed = 42) ?(waves = 5) ?(episodes = 2) ~scenario () =
  let pb = train_playbook ~episodes ~scenario ~waves () in
  let eng = E.create ~seed ~topology:(topology ~seed ~scenario) () in
  E.set_resolver eng (PB.resolver pb);
  let outcome = measure eng ~policy:Playbook ~scenario ~seed ~waves in
  (outcome, PB.contexts_learned pb, PB.training_forks pb)
