type profile = {
  crashes : int;
  crash_mode : Faultplan.crash_mode;
  partitions : int;
  degrades : int;
  duplicate_rate : float;
  duplicate_copies : int;
  corrupt_rate : float;
  corrupt_flip : float;
  reorder_rate : float;
  reorder_window : float;
  storm : float;
  grace : float;
  protect : int list;
}

let default_profile =
  {
    crashes = 2;
    crash_mode = Faultplan.Clean;
    partitions = 1;
    degrades = 1;
    duplicate_rate = 0.08;
    duplicate_copies = 1;
    corrupt_rate = 0.05;
    corrupt_flip = 0.02;
    reorder_rate = 0.15;
    reorder_window = 0.3;
    storm = 6.;
    grace = 8.;
    protect = [];
  }

let pp_profile ppf p =
  let mode =
    match p.crash_mode with
    | Faultplan.Clean -> ""
    | Faultplan.Amnesia -> "(amnesia)"
    | Faultplan.Torn -> "(torn)"
  in
  Format.fprintf ppf
    "{crashes=%d%s partitions=%d degrades=%d dup=%.2f corrupt=%.2f reorder=%.2f storm=%.1fs \
     grace=%.1fs}"
    p.crashes mode p.partitions p.degrades p.duplicate_rate p.corrupt_rate p.reorder_rate
    p.storm p.grace

(* Fault windows open in the first 60% of the storm and always close by
   95% of it, so the storm ends with every link healed, every victim
   revived and every channel fault switched off — the grace period
   measures recovery, not leftover faults. *)
let window rng ~storm =
  let opens = Dsim.Rng.float rng (0.6 *. storm) in
  let closes = Float.min (opens +. ((0.1 +. Dsim.Rng.float rng 0.25) *. storm)) (0.95 *. storm) in
  (opens, closes)

let generate ~seed ~nodes profile =
  if nodes <= 0 then invalid_arg "Chaos.generate: no nodes";
  if profile.storm <= 0. then invalid_arg "Chaos.generate: non-positive storm";
  let rng = Dsim.Rng.create seed in
  let storm = profile.storm in
  let events = ref [] in
  let add at e = events := (at, e) :: !events in
  (* Channel faults run for the whole storm. The switch-off events are
     emitted even when the rate is zero so every plan ends on a clean
     channel regardless of how it was composed. *)
  add 0.
    (Faultplan.Set_duplicate
       { rate = profile.duplicate_rate; copies = profile.duplicate_copies });
  add 0. (Faultplan.Set_corrupt { rate = profile.corrupt_rate; flip = profile.corrupt_flip });
  add 0. (Faultplan.Set_reorder { rate = profile.reorder_rate; window = profile.reorder_window });
  add storm (Faultplan.Set_duplicate { rate = 0.; copies = 1 });
  add storm (Faultplan.Set_corrupt { rate = 0.; flip = 0. });
  add storm (Faultplan.Set_reorder { rate = 0.; window = 0. });
  let all = List.init nodes Fun.id in
  (* Crashes: distinct victims (so no schedule ever restarts a node a
     concurrent window already revived), drawn outside [protect]. *)
  let eligible = List.filter (fun i -> not (List.mem i profile.protect)) all in
  let victims =
    Dsim.Rng.sample_without_replacement rng (min profile.crashes (List.length eligible)) eligible
  in
  let crash v =
    match profile.crash_mode with
    | Faultplan.Clean -> Faultplan.Kill v
    | Faultplan.Amnesia -> Faultplan.Kill_amnesia v
    | Faultplan.Torn -> Faultplan.Torn_write v
  in
  List.iter
    (fun v ->
      let opens, closes = window rng ~storm in
      add opens (crash v);
      add closes (Faultplan.Restart v))
    victims;
  for _ = 1 to profile.partitions do
    let k = 1 + Dsim.Rng.int rng (max 1 (nodes / 2)) in
    let a = Dsim.Rng.sample_without_replacement rng k all in
    let b = List.filter (fun i -> not (List.mem i a)) all in
    if b <> [] then begin
      let opens, closes = window rng ~storm in
      add opens (Faultplan.Partition (a, b));
      add closes (Faultplan.Heal_partition (a, b))
    end
  done;
  for _ = 1 to profile.degrades do
    let endpoint = Dsim.Rng.int rng nodes in
    let latency_factor = 2. +. Dsim.Rng.float rng 6. in
    let bandwidth_factor = 0.15 +. Dsim.Rng.float rng 0.45 in
    let opens, closes = window rng ~storm in
    add opens (Faultplan.Degrade { endpoint; latency_factor; bandwidth_factor });
    add closes (Faultplan.Restore endpoint)
  done;
  Faultplan.plan !events

module Soak (App : Proto.App_intf.APP) = struct
  module E = Sim.Make (App)
  module Exec = Faultplan.Run (E)

  type outcome = {
    plan : Faultplan.t;
    violations : (Dsim.Vtime.t * string) list;
    recovered : bool;
    stats : E.stats;
    elapsed : float;
  }

  let run ?(warmup = 2.) ~setup ~recovered ~seed ~topology profile =
    let eng = E.create ~seed ~topology () in
    setup eng;
    E.run_for eng warmup;
    let plan = generate ~seed ~nodes:(Net.Topology.size topology) profile in
    let start = E.now eng in
    Exec.execute eng plan;
    (* A plan whose last event fires early still owns the full storm
       window. *)
    let spent = Dsim.Vtime.diff (E.now eng) start in
    if spent < profile.storm then E.run_for eng (profile.storm -. spent);
    let check = recovered eng in
    E.run_for eng profile.grace;
    {
      plan;
      violations = E.violations eng;
      recovered = check ();
      stats = E.stats eng;
      elapsed = Dsim.Vtime.to_seconds (E.now eng);
    }
end
