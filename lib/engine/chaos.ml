type profile = {
  crashes : int;
  crash_mode : Faultplan.crash_mode;
  partitions : int;
  degrades : int;
  duplicate_rate : float;
  duplicate_copies : int;
  corrupt_rate : float;
  corrupt_flip : float;
  reorder_rate : float;
  reorder_window : float;
  flaps : int;  (* flapping-partition cycles; 0 = no flap *)
  flap_period : float;  (* half-period of each cycle, seconds *)
  gray_links : int;  (* asymmetric lossy links; 0 = none *)
  gray_loss : float;  (* loss rate of each gray direction *)
  overload_nodes : int;  (* targeted injection bursts; 0 = none *)
  overload_rate : float;  (* chaff msgs per virtual second per burst *)
  overload_period : float;  (* burst duration, seconds *)
  drift_nodes : int;  (* nodes whose clocks drift for a window; 0 = none *)
  drift_rate : float;  (* max fractional drift, rate in [1-d, 1+d] *)
  clock_steps : int;  (* NTP-style step excursions; 0 = none *)
  clock_step_max : float;  (* max |offset| of each step, seconds *)
  byz_links : int;  (* byzantine directed links; 0 = mutate globally *)
  byz_rate : float;  (* per-message mutation probability; 0 = off *)
  storm : float;
  grace : float;
  protect : int list;
}

let default_profile =
  {
    crashes = 2;
    crash_mode = Faultplan.Clean;
    partitions = 1;
    degrades = 1;
    duplicate_rate = 0.08;
    duplicate_copies = 1;
    corrupt_rate = 0.05;
    corrupt_flip = 0.02;
    reorder_rate = 0.15;
    reorder_window = 0.3;
    flaps = 0;
    (* The default half-period gives the phi-accrual detector room to
       react: suspicion needs ~18.4 s of silence to enter and ~9 s of
       fresh heartbeats to drop back under the exit threshold, so
       anything much shorter flaps faster than the detector can see. *)
    flap_period = 30.;
    gray_links = 0;
    gray_loss = 0.3;
    overload_nodes = 0;
    (* Sized to actually saturate: at the soak's default service time
       (0.5 ms/queued message) the drain rate tops out well below
       2000/s, so a burst pins the mailbox at capacity and the shed
       policy — not luck — is what keeps the depth bounded. *)
    overload_rate = 2000.;
    overload_period = 2.0;
    drift_nodes = 0;
    (* 20% drift is far beyond real quartz (ppm territory) but small
       enough that timeouts misfire rather than everything detonating
       at once — the interesting regime for timeout-sensitive logic. *)
    drift_rate = 0.2;
    clock_steps = 0;
    clock_step_max = 1.0;
    byz_links = 0;
    (* Off by default: a zero rate emits no mutate events and draws
       nothing from the plan RNG, so pre-byzantine plans stay
       byte-identical. Soaks that opt in typically use 0.2-0.3 — high
       for a real adversary, but over a 6s storm that is what it takes
       to genuinely exercise validators while honest quorums still
       make progress. *)
    byz_rate = 0.;
    storm = 6.;
    grace = 8.;
    protect = [];
  }

let pp_profile ppf p =
  let mode =
    match p.crash_mode with
    | Faultplan.Clean -> ""
    | Faultplan.Amnesia -> "(amnesia)"
    | Faultplan.Torn -> "(torn)"
  in
  Format.fprintf ppf
    "{crashes=%d%s partitions=%d degrades=%d dup=%.2f corrupt=%.2f reorder=%.2f \
     flap=%dx%.0fs gray=%d@%.2f overload=%d@%.0f/s for %.1fs drift=%d@±%.0f%% \
     steps=%d@±%.1fs byz=%d@%.2f storm=%.1fs grace=%.1fs}"
    p.crashes mode p.partitions p.degrades p.duplicate_rate p.corrupt_rate p.reorder_rate
    p.flaps p.flap_period p.gray_links p.gray_loss p.overload_nodes p.overload_rate
    p.overload_period p.drift_nodes (100. *. p.drift_rate) p.clock_steps p.clock_step_max
    p.byz_links p.byz_rate p.storm p.grace

(* Fault windows open in the first 60% of the storm and always close by
   95% of it, so the storm ends with every link healed, every victim
   revived and every channel fault switched off — the grace period
   measures recovery, not leftover faults. *)
let window rng ~storm =
  let opens = Dsim.Rng.float rng (0.6 *. storm) in
  let closes = Float.min (opens +. ((0.1 +. Dsim.Rng.float rng 0.25) *. storm)) (0.95 *. storm) in
  (opens, closes)

(* A NaN rate slips through plain [< 0.] comparisons (every comparison
   with NaN is false) and would otherwise surface as a baffling error
   deep inside [Faultplan.plan] — reject it here, by name. *)
let check_finite_rate what r =
  if Float.is_nan r then invalid_arg (Printf.sprintf "Chaos.generate: %s is NaN" what);
  if r < 0. then invalid_arg (Printf.sprintf "Chaos.generate: negative %s" what)

let generate ~seed ~nodes profile =
  if nodes <= 0 then invalid_arg "Chaos.generate: no nodes";
  if profile.storm <= 0. then invalid_arg "Chaos.generate: non-positive storm";
  if profile.flaps < 0 then invalid_arg "Chaos.generate: negative flap count";
  if profile.flap_period <= 0. then invalid_arg "Chaos.generate: non-positive flap period";
  if profile.gray_links < 0 then invalid_arg "Chaos.generate: negative gray link count";
  if not (profile.gray_loss >= 0. && profile.gray_loss <= 1.) then
    invalid_arg "Chaos.generate: gray loss outside [0,1]";
  check_finite_rate "duplicate rate" profile.duplicate_rate;
  check_finite_rate "corrupt rate" profile.corrupt_rate;
  check_finite_rate "corrupt flip rate" profile.corrupt_flip;
  check_finite_rate "reorder rate" profile.reorder_rate;
  check_finite_rate "overload rate" profile.overload_rate;
  if profile.overload_nodes < 0 then
    invalid_arg "Chaos.generate: negative overload node count";
  if not (profile.overload_period > 0.) then
    invalid_arg "Chaos.generate: overload period must be positive";
  if profile.drift_nodes < 0 then invalid_arg "Chaos.generate: negative drift node count";
  (* Drift below 100%: a rate of [1 - drift_rate] must stay positive. *)
  if not (profile.drift_rate >= 0. && profile.drift_rate < 1.) then
    invalid_arg "Chaos.generate: drift rate outside [0,1)";
  if profile.clock_steps < 0 then invalid_arg "Chaos.generate: negative clock step count";
  if not (Float.is_finite profile.clock_step_max && profile.clock_step_max >= 0.) then
    invalid_arg "Chaos.generate: clock step max must be finite and non-negative";
  if profile.byz_links < 0 then invalid_arg "Chaos.generate: negative byzantine link count";
  if not (profile.byz_rate >= 0. && profile.byz_rate <= 1.) then
    invalid_arg "Chaos.generate: byzantine mutate rate outside [0,1]";
  let rng = Dsim.Rng.create seed in
  let storm = profile.storm in
  let events = ref [] in
  let add at e = events := (at, e) :: !events in
  (* Channel faults run for the whole storm. The switch-off events are
     emitted even when the rate is zero so every plan ends on a clean
     channel regardless of how it was composed. *)
  add 0.
    (Faultplan.Set_duplicate
       { rate = profile.duplicate_rate; copies = profile.duplicate_copies });
  add 0. (Faultplan.Set_corrupt { rate = profile.corrupt_rate; flip = profile.corrupt_flip });
  add 0. (Faultplan.Set_reorder { rate = profile.reorder_rate; window = profile.reorder_window });
  add storm (Faultplan.Set_duplicate { rate = 0.; copies = 1 });
  add storm (Faultplan.Set_corrupt { rate = 0.; flip = 0. });
  add storm (Faultplan.Set_reorder { rate = 0.; window = 0. });
  let all = List.init nodes Fun.id in
  (* Crashes: distinct victims (so no schedule ever restarts a node a
     concurrent window already revived), drawn outside [protect]. *)
  let eligible = List.filter (fun i -> not (List.mem i profile.protect)) all in
  let victims =
    Dsim.Rng.sample_without_replacement rng (min profile.crashes (List.length eligible)) eligible
  in
  let crash v =
    match profile.crash_mode with
    | Faultplan.Clean -> Faultplan.Kill v
    | Faultplan.Amnesia -> Faultplan.Kill_amnesia v
    | Faultplan.Torn -> Faultplan.Torn_write v
  in
  List.iter
    (fun v ->
      let opens, closes = window rng ~storm in
      add opens (crash v);
      add closes (Faultplan.Restart v))
    victims;
  (* Partition windows over the same normalized group pair must not
     overlap in time — [Faultplan.plan] now rejects a re-cut of a pair
     still open. All draws happen regardless so the schedule of every
     other fault is byte-identical whether or not a window collides;
     only colliding windows are dropped. *)
  let emitted = ref [] in
  let key a b =
    let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
    if a <= b then (a, b) else (b, a)
  in
  for _ = 1 to profile.partitions do
    let k = 1 + Dsim.Rng.int rng (max 1 (nodes / 2)) in
    let a = Dsim.Rng.sample_without_replacement rng k all in
    let b = List.filter (fun i -> not (List.mem i a)) all in
    if b <> [] then begin
      let opens, closes = window rng ~storm in
      let kab = key a b in
      let collides =
        List.exists (fun (k', o, c) -> k' = kab && opens <= c && o <= closes) !emitted
      in
      if not collides then begin
        emitted := (kab, opens, closes) :: !emitted;
        add opens (Faultplan.Partition (a, b));
        add closes (Faultplan.Heal_partition (a, b))
      end
    end
  done;
  (* Flapping partition: one event that cuts and heals [flaps] times on
     a fixed cadence, starting at the head of the storm. The cycle
     count is clamped so the flap prefers to fit inside the storm, but
     a profile that asks for flapping always gets at least one cycle
     (long-period flaps against a short storm simply outlive it; the
     event still ends healed). *)
  if profile.flaps > 0 && nodes > 1 then begin
    let k = 1 + Dsim.Rng.int rng (max 1 (nodes / 2)) in
    let a = Dsim.Rng.sample_without_replacement rng k all in
    let b = List.filter (fun i -> not (List.mem i a)) all in
    if b <> [] then begin
      let fits = int_of_float (0.95 *. storm /. (2. *. profile.flap_period)) in
      let cycles = max 1 (min profile.flaps fits) in
      add 0. (Faultplan.Flap { a; b; period = profile.flap_period; cycles })
    end
  end;
  (* Asymmetric gray failures: a directed link silently loses traffic
     for a window; the reverse direction stays clean. The distinct
     endpoint is derived from one draw, not rejection-sampled, so the
     draw count per link is fixed. *)
  if profile.gray_links > 0 && nodes > 1 then
    for _ = 1 to profile.gray_links do
      let src = Dsim.Rng.int rng nodes in
      let dst = (src + 1 + Dsim.Rng.int rng (nodes - 1)) mod nodes in
      let opens, closes = window rng ~storm in
      add opens (Faultplan.Gray_link { src; dst; loss = profile.gray_loss });
      add closes (Faultplan.Heal_gray { src; dst })
    done;
  (* Targeted injection bursts: distinct victims, each flooded for
     [overload_period] seconds (clipped to end inside the storm like
     every other window). Draws happen only when the knob is on, so a
     profile with [overload_nodes = 0] keeps the RNG stream of every
     pre-existing plan byte-identical. *)
  if profile.overload_nodes > 0 then begin
    if not (profile.overload_rate > 0.) then
      invalid_arg "Chaos.generate: overload rate must be positive";
    let victims =
      Dsim.Rng.sample_without_replacement rng (min profile.overload_nodes nodes) all
    in
    List.iter
      (fun v ->
        let opens = Dsim.Rng.float rng (0.6 *. storm) in
        let closes = Float.min (opens +. profile.overload_period) (0.95 *. storm) in
        add opens (Faultplan.Overload { node = v; rate = profile.overload_rate });
        add closes (Faultplan.Heal_overload { node = v }))
      victims
  end;
  for _ = 1 to profile.degrades do
    let endpoint = Dsim.Rng.int rng nodes in
    let latency_factor = 2. +. Dsim.Rng.float rng 6. in
    let bandwidth_factor = 0.15 +. Dsim.Rng.float rng 0.45 in
    let opens, closes = window rng ~storm in
    add opens (Faultplan.Degrade { endpoint; latency_factor; bandwidth_factor });
    add closes (Faultplan.Restore endpoint)
  done;
  (* Clock excursions: distinct drift victims each run fast or slow for
     a window, then heal; step excursions are drawn from the remaining
     nodes so every node has exactly one clock window and exactly one
     matching [Heal_clock] — the plan validator's skew discipline holds
     by construction. Draws happen only when a knob is on, so profiles
     without clock faults keep every pre-existing RNG stream
     byte-identical. *)
  let drift_victims =
    if profile.drift_nodes > 0 then begin
      let victims =
        Dsim.Rng.sample_without_replacement rng (min profile.drift_nodes nodes) all
      in
      List.iter
        (fun v ->
          let rate =
            1. -. profile.drift_rate +. Dsim.Rng.float rng (2. *. profile.drift_rate)
          in
          let opens, closes = window rng ~storm in
          add opens (Faultplan.Set_clock_rate { node = v; rate });
          add closes (Faultplan.Heal_clock { node = v }))
        victims;
      victims
    end
    else []
  in
  if profile.clock_steps > 0 then begin
    let steppable = List.filter (fun i -> not (List.mem i drift_victims)) all in
    let victims =
      Dsim.Rng.sample_without_replacement rng
        (min profile.clock_steps (List.length steppable))
        steppable
    in
    List.iter
      (fun v ->
        let offset =
          Dsim.Rng.float rng (2. *. profile.clock_step_max) -. profile.clock_step_max
        in
        let opens, closes = window rng ~storm in
        add opens (Faultplan.Clock_step { node = v; offset });
        add closes (Faultplan.Heal_clock { node = v }))
      victims
  end;
  (* Byzantine mutation, drawn after every other fault. Unlike the
     channel faults above (whose switch-offs are emitted even at zero
     rate), a zero [byz_rate] emits no events and draws nothing — the
     byte-identity discipline of the later knobs applies: pre-byzantine
     plans reproduce exactly. [byz_links = 0] mutates the global
     channel for the whole storm; a positive count picks that many
     random directed links, each with its own window, skipping (without
     extra draws) windows that would re-open a pair still mutating. *)
  if profile.byz_rate > 0. then begin
    if profile.byz_links = 0 then begin
      add 0. (Faultplan.Set_mutate { rate = profile.byz_rate; links = [] });
      add storm (Faultplan.Heal_mutate { links = [] })
    end
    else if nodes > 1 then begin
      let emitted = ref [] in
      for _ = 1 to profile.byz_links do
        let src = Dsim.Rng.int rng nodes in
        let dst = (src + 1 + Dsim.Rng.int rng (nodes - 1)) mod nodes in
        let opens, closes = window rng ~storm in
        let collides =
          List.exists
            (fun (s, d, o, c) -> s = src && d = dst && opens <= c && o <= closes)
            !emitted
        in
        if not collides then begin
          emitted := (src, dst, opens, closes) :: !emitted;
          add opens (Faultplan.Set_mutate { rate = profile.byz_rate; links = [ (src, dst) ] });
          add closes (Faultplan.Heal_mutate { links = [ (src, dst) ] })
        end
      done
    end
  end;
  Faultplan.plan !events

module Soak (App : Proto.App_intf.APP) = struct
  module E = Sim.Make (App)
  module Exec = Faultplan.Run (E)

  type outcome = {
    plan : Faultplan.t;
    violations : (Dsim.Vtime.t * string) list;
    recovered : bool;
    self_healed : bool;  (* no node still degraded at the end of grace *)
    heal_time : float option;  (* grace seconds until the last node undegraded *)
    shed_bounded : bool;  (* no mailbox ever exceeded its configured capacity *)
    overload_recovered : bool;  (* every queue drained by the end of grace *)
    stats : E.stats;
    elapsed : float;
  }

  let run ?(warmup = 2.) ~setup ~recovered ~seed ~topology profile =
    let eng = E.create ~seed ~topology () in
    setup eng;
    E.run_for eng warmup;
    (* Steady-state queue depth before any fault: the recovery verdict
       compares against this, not against zero — a busy system always
       has a few messages in flight. *)
    let baseline_backlog = E.mailbox_backlog eng in
    let plan = generate ~seed ~nodes:(Net.Topology.size topology) profile in
    let start = E.now eng in
    Exec.execute eng plan;
    (* A plan whose last event fires early still owns the full storm
       window. *)
    let spent = Dsim.Vtime.diff (E.now eng) start in
    if spent < profile.storm then E.run_for eng (profile.storm -. spent);
    let check = recovered eng in
    (* The storm is over and every fault healed; the grace period now
       doubles as the self-healing probe. Run it in slices and record
       when the last degraded node recovers — [self_healed] demands it
       stays that way to the end, not a momentary dip to zero. *)
    let grace_start = E.now eng in
    let heal_time = ref (if E.degraded_nodes eng = 0 then Some 0. else None) in
    let remaining = ref profile.grace in
    while !remaining > 0. do
      let dt = Float.min 0.25 !remaining in
      E.run_for eng dt;
      remaining := !remaining -. dt;
      match !heal_time with
      | None when E.degraded_nodes eng = 0 ->
          heal_time := Some (Dsim.Vtime.diff (E.now eng) grace_start)
      | Some _ when E.degraded_nodes eng > 0 -> heal_time := None
      | _ -> ()
    done;
    let self_healed = E.degraded_nodes eng = 0 in
    (* Overload verdicts. [shed_bounded]: the shed policy held the line
       — the high-water mark never broke the configured capacity
       (vacuously true while mailboxes are unbounded). [overload_recovered]:
       the burst backlog has drained back to the neighbourhood of the
       pre-storm steady state (double it, to absorb timing jitter), so
       post-burst latency is baseline again — nothing still waits
       behind a pile of chaff. *)
    let shed_bounded =
      match E.overload_limits eng with
      | Some cfg when cfg.E.mailbox_capacity > 0 ->
          (E.stats eng).E.max_mailbox_depth <= cfg.E.mailbox_capacity
      | Some _ | None -> true
    in
    {
      plan;
      violations = E.violations eng;
      recovered = check ();
      self_healed;
      heal_time = (if self_healed then !heal_time else None);
      shed_bounded;
      overload_recovered = E.mailbox_backlog eng <= Int.max 2 (2 * baseline_backlog);
      stats = E.stats eng;
      elapsed = Dsim.Vtime.to_seconds (E.now eng);
    }
end
