module Make (App : Proto.App_intf.APP) = struct
  module Smap = Map.Make (String)

  type node = { state : App.state; alive : bool; timer_gens : int Smap.t }

  type ev =
    | Boot of Proto.Node_id.t
    | Deliver of { src : Proto.Node_id.t; dst : Proto.Node_id.t; msg : App.msg; sent_at : Dsim.Vtime.t }
    | Timer_fire of { node : Proto.Node_id.t; id : string; gen : int }

  type scheduled = { at : Dsim.Vtime.t; ev : ev }

  type stats = {
    events_processed : int;
    messages_delivered : int;
    messages_dropped : int;
    messages_filtered : int;
    messages_duplicated : int;
    messages_corrupted : int;
    decode_failures : int;
    decisions : int;
    lookahead_forks : int;
  }

  type lookahead = {
    horizon : float;
    max_events : int;
    violation_penalty : float;
    max_candidates : int;
    scope :
      (Proto.Node_id.t -> (App.state, App.msg) Proto.View.t -> (App.state, App.msg) Proto.View.t)
      option;
        (* restricts what a speculative branch's objective evaluation
           may see, keyed by the deciding node — [None] = global
           knowledge; a neighbourhood restriction reproduces the
           paper's partial-information regime *)
  }

  let default_lookahead =
    { horizon = 2.0; max_events = 400; violation_penalty = 1000.; max_candidates = 8; scope = None }

  (* Hybrid fast path (paper §3.4): a bandit cache answers sites whose
     context has absorbed enough training; cache misses run the full
     lookahead, whose per-alternative scores train the cache. *)
  type cache = { bandit : Core.Bandit.t; min_pulls : int; mutable hits : int; mutable misses : int }

  type mode =
    | Plain of Core.Resolver.t
    | Predictive of lookahead * Core.Resolver.t * cache option  (* config, fallback *)
    | Replay of (int * int) list * Core.Resolver.t  (* (occurrence, index) forcings *)

  type filter = { f_name : string; drop : kind:string -> src:Proto.Node_id.t -> dst:Proto.Node_id.t -> bool }

  type pending_reward = {
    pr_site : Core.Choice.site;
    pr_chosen : int;
    pr_at : Dsim.Vtime.t;
    pr_score : float;
    pr_resolver : Core.Resolver.t;
  }

  type t = {
    mutable now : Dsim.Vtime.t;
    queue : scheduled Dsim.Heap.t;
    mutable nodes : node Proto.Node_id.Map.t;
    rng : Dsim.Rng.t;
    netem : Net.Netem.t;
    netmodel : Net.Netmodel.t;
    trace : Dsim.Trace.t;
    check_properties : bool;
    mutable mode : mode;
    mutable speculative : bool;
    mutable violations : (Dsim.Vtime.t * string) list;
    mutable violated_now : string list;  (* properties currently violated *)
    mutable filters : filter list;
    mutable decision_log : (Dsim.Vtime.t * Core.Choice.site * int) list;
    mutable event_decisions : (int * int) list;  (* within the event being processed *)
    mutable event_occurrence : int;
    mutable processing : scheduled option;
    mutable spawned : Proto.Node_id.Set.t;
    mutable reward_window : float option;
    mutable pending_rewards : pending_reward list;
    kind_counts : (string, int) Hashtbl.t;
    mutable message_log : (Dsim.Vtime.t * Proto.Node_id.t * Proto.Node_id.t * string) list option;
        (* newest first when enabled; [None] = disabled (the default) *)
    mutable n_events : int;
    mutable n_delivered : int;
    mutable n_dropped : int;
    mutable n_filtered : int;
    mutable n_duplicated : int;
    mutable n_corrupted : int;
    mutable n_decode_failures : int;
    mutable n_decisions : int;
    mutable n_forks : int;
  }

  let create ?(seed = 1) ?(jitter = 0.05) ?(check_properties = true) ?(trace_capacity = 100_000)
      ~topology () =
    let rng = Dsim.Rng.create seed in
    let netem_rng = Dsim.Rng.split rng in
    {
      now = Dsim.Vtime.zero;
      queue = Dsim.Heap.create ~cmp:(fun a b -> Dsim.Vtime.compare a.at b.at);
      nodes = Proto.Node_id.Map.empty;
      rng;
      netem = Net.Netem.create ~jitter ~rng:netem_rng topology;
      netmodel = Net.Netmodel.create ();
      trace = Dsim.Trace.create ~capacity:trace_capacity ();
      check_properties;
      mode = Plain Core.Resolver.first;
      speculative = false;
      violations = [];
      violated_now = [];
      filters = [];
      decision_log = [];
      event_decisions = [];
      event_occurrence = 0;
      processing = None;
      spawned = Proto.Node_id.Set.empty;
      reward_window = None;
      pending_rewards = [];
      kind_counts = Hashtbl.create 16;
      message_log = None;
      n_events = 0;
      n_delivered = 0;
      n_dropped = 0;
      n_filtered = 0;
      n_duplicated = 0;
      n_corrupted = 0;
      n_decode_failures = 0;
      n_decisions = 0;
      n_forks = 0;
    }

  let now t = t.now
  let trace t = t.trace
  let netem t = t.netem
  let netmodel t = t.netmodel
  let violations t = List.rev t.violations
  let decision_sites t = t.decision_log

  let stats t =
    {
      events_processed = t.n_events;
      messages_delivered = t.n_delivered;
      messages_dropped = t.n_dropped;
      messages_filtered = t.n_filtered;
      messages_duplicated = t.n_duplicated;
      messages_corrupted = t.n_corrupted;
      decode_failures = t.n_decode_failures;
      decisions = t.n_decisions;
      lookahead_forks = t.n_forks;
    }

  let set_resolver t r = t.mode <- Plain r

  let set_lookahead t ?(fallback = Core.Resolver.random) ?cache (cfg : lookahead) =
    if cfg.horizon <= 0. then invalid_arg "Sim.set_lookahead: horizon must be positive";
    if cfg.max_events <= 0 then invalid_arg "Sim.set_lookahead: max_events must be positive";
    if cfg.max_candidates <= 0 then invalid_arg "Sim.set_lookahead: max_candidates must be positive";
    let cache =
      Option.map
        (fun (bandit, min_pulls) ->
          if min_pulls <= 0 then invalid_arg "Sim.set_lookahead: min_pulls must be positive";
          { bandit; min_pulls; hits = 0; misses = 0 })
        cache
    in
    t.mode <- Predictive (cfg, fallback, cache)

  let resolver_name t =
    match t.mode with
    | Plain r -> r.Core.Resolver.name
    | Predictive (_, fb, None) -> "lookahead/" ^ fb.Core.Resolver.name
    | Predictive (_, fb, Some _) -> "lookahead+cache/" ^ fb.Core.Resolver.name
    | Replay (_, fb) -> "replay/" ^ fb.Core.Resolver.name

  let cache_stats t =
    match t.mode with
    | Predictive (_, _, Some c) -> Some (c.hits, c.misses)
    | Predictive (_, _, None) | Plain _ | Replay _ -> None

  let enable_reward_feedback t ~window =
    if window <= 0. then invalid_arg "Sim.enable_reward_feedback: window must be positive";
    t.reward_window <- Some window

  let alive t id =
    match Proto.Node_id.Map.find_opt id t.nodes with Some n -> n.alive | None -> false

  let state_of t id =
    match Proto.Node_id.Map.find_opt id t.nodes with
    | Some n when n.alive -> Some n.state
    | Some _ | None -> None

  let live_nodes t =
    Proto.Node_id.Map.fold (fun id n acc -> if n.alive then (id, n.state) :: acc else acc) t.nodes []
    |> List.rev

  let inflight t =
    List.filter_map
      (fun s -> match s.ev with Deliver { src; dst; msg; _ } -> Some (src, dst, msg) | Boot _ | Timer_fire _ -> None)
      (Dsim.Heap.to_list t.queue)

  let global_view t : (App.state, App.msg) Proto.View.t =
    { time = t.now; nodes = live_nodes t; inflight = inflight t }

  let objective_score t = Core.Objective.total App.objectives (global_view t)

  let delivered_of_kind t kind = Option.value ~default:0 (Hashtbl.find_opt t.kind_counts kind)

  let enable_message_log t = if t.message_log = None then t.message_log <- Some []

  let message_log t = List.rev (Option.value ~default:[] t.message_log)

  let fork_with t fallback =
    {
      t with
      queue = Dsim.Heap.copy t.queue;
      kind_counts = Hashtbl.copy t.kind_counts;
      rng = Dsim.Rng.copy t.rng;
      netem = Net.Netem.copy t.netem;
      netmodel = Net.Netmodel.copy t.netmodel;
      trace = Dsim.Trace.create ~capacity:16 ();
      message_log = None;
      mode = Plain fallback;
      speculative = true;
      reward_window = None;
      pending_rewards = [];
    }

  let fork t =
    let fallback = match t.mode with Predictive (_, fb, _) | Replay (_, fb) -> fb | Plain _ -> Core.Resolver.random in
    fork_with t fallback

  (* ---------- scheduling ---------- *)

  let schedule t ~after ev =
    if after < 0. then invalid_arg "Sim.schedule: negative delay";
    Dsim.Heap.push t.queue { at = Dsim.Vtime.add t.now after; ev }

  let check_endpoint t id =
    let e = Proto.Node_id.to_int id in
    if e >= Net.Topology.size (Net.Netem.topology t.netem) then
      invalid_arg "Sim: node id exceeds topology size"

  let spawn t ?(after = 0.) id =
    check_endpoint t id;
    if Proto.Node_id.Set.mem id t.spawned || Proto.Node_id.Map.mem id t.nodes then
      invalid_arg "Sim.spawn: node already exists";
    t.spawned <- Proto.Node_id.Set.add id t.spawned;
    schedule t ~after (Boot id)

  let kill t id =
    match Proto.Node_id.Map.find_opt id t.nodes with
    | None -> ()
    | Some n ->
        t.nodes <- Proto.Node_id.Map.add id { n with alive = false } t.nodes;
        Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine" "%a killed"
          Proto.Node_id.pp id

  let restart t ?(after = 0.) id =
    (match Proto.Node_id.Map.find_opt id t.nodes with
    | Some n when n.alive -> invalid_arg "Sim.restart: node is alive"
    | Some _ | None -> ());
    check_endpoint t id;
    schedule t ~after (Boot id)

  (* Garbles a wire encoding: each byte has one bit flipped with
     probability [flip]; if the dice spare every byte, one byte is
     forced — a [Corrupt] verdict always yields a genuinely altered
     payload. *)
  let garble t ~flip s =
    let b = Bytes.of_string s in
    let len = Bytes.length b in
    let flipped = ref false in
    let flip_at i =
      let bit = 1 lsl Dsim.Rng.int t.rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
      flipped := true
    in
    for i = 0 to len - 1 do
      if Dsim.Rng.uniform t.rng < flip then flip_at i
    done;
    if (not !flipped) && len > 0 then flip_at (Dsim.Rng.int t.rng len);
    Bytes.to_string b

  let drop t ~src ~dst ~cause pp_payload =
    let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
    t.n_dropped <- t.n_dropped + 1;
    Net.Netmodel.observe_loss t.netmodel ~src:se ~dst:de t.now ~delivered:false;
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"net" "drop(%s) %a->%a %t" cause
      Proto.Node_id.pp src Proto.Node_id.pp dst pp_payload

  let route t ~src ~dst msg =
    let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
    let deliver delay =
      Dsim.Heap.push t.queue
        { at = Dsim.Vtime.add t.now delay; ev = Deliver { src; dst; msg; sent_at = t.now } }
    in
    let pp_msg out = App.pp_msg out msg in
    match
      Net.Netem.judge t.netem ~now:(Dsim.Vtime.to_seconds t.now) ~src:se ~dst:de
        ~bytes:(App.msg_bytes msg)
    with
    | Net.Netem.Drop cause -> drop t ~src ~dst ~cause pp_msg
    | Net.Netem.Deliver delay -> deliver delay
    | Net.Netem.Duplicate delays ->
        t.n_duplicated <- t.n_duplicated + Int.max 0 (List.length delays - 1);
        List.iter deliver delays
    | Net.Netem.Corrupt { delay; flip } -> (
        t.n_corrupted <- t.n_corrupted + 1;
        (* The fault acts on the wire form: encode, flip bytes, try to
           decode what a receiver would see. A decode failure surfaces
           as a drop (and is counted); a flip that still parses is
           caught by the transport checksum every real deployment runs
           under, so it too surfaces as a drop — handlers never see a
           garbled payload, and nothing escapes the engine. *)
        match App.msg_codec with
        | None -> drop t ~src ~dst ~cause:"corrupt" pp_msg
        | Some codec -> (
            ignore delay;
            let garbled = garble t ~flip (Wire.Codec.encode codec msg) in
            match Wire.Codec.decode codec garbled with
            | Error e | (exception Wire.Codec.Malformed e) ->
                t.n_decode_failures <- t.n_decode_failures + 1;
                drop t ~src ~dst ~cause:("corrupt: " ^ e) pp_msg
            | Ok _ -> drop t ~src ~dst ~cause:"corrupt: checksum mismatch" pp_msg))

  let inject t ?(after = 0.) ~src ~dst msg =
    check_endpoint t src;
    check_endpoint t dst;
    if after = 0. then route t ~src ~dst msg
    else schedule t ~after (Deliver { src; dst; msg; sent_at = t.now })

  let add_filter t ~name drop = t.filters <- { f_name = name; drop } :: t.filters
  let clear_filters t = t.filters <- []

  (* ---------- choice resolution ---------- *)

  (* Lookahead: for each candidate, fork the simulation, replay the
     in-flight event with that branch forced (and all earlier choices of
     the same event pinned to what was actually decided), run the fork
     [horizon] seconds, and score the resulting view. *)
  let rec predict_branch t (cfg : lookahead) fallback ~node sched ~forced =
    let f = fork_with t fallback in
    f.mode <- Replay (forced, fallback);
    t.n_forks <- t.n_forks + 1;
    let before_violations = List.length f.violations in
    process_scheduled f sched;
    f.mode <- Plain fallback;
    run_budgeted f ~until:(Dsim.Vtime.add t.now cfg.horizon) ~budget:cfg.max_events;
    let fresh_violations = List.length f.violations - before_violations in
    let view =
      match cfg.scope with None -> global_view f | Some scope -> scope node (global_view f)
    in
    Core.Objective.total App.objectives view
    -. (cfg.violation_penalty *. float_of_int fresh_violations)

  and resolve_index : type a. t -> Proto.Node_id.t -> a Core.Choice.t -> int =
   fun t node choice ->
    let occurrence = t.event_occurrence in
    t.event_occurrence <- occurrence + 1;
    let site = Core.Choice.site ~node:(Proto.Node_id.to_int node) ~occurrence choice in
    let arity = site.Core.Choice.site_arity in
    let index =
      match t.mode with
      | Plain r -> r.Core.Resolver.choose t.rng site
      | Replay (forced, fb) -> (
          match List.assoc_opt occurrence forced with
          | Some i -> min i (arity - 1)
          | None -> fb.Core.Resolver.choose t.rng site)
      | Predictive (cfg, fb, cache) -> (
          match t.processing with
          | None -> fb.Core.Resolver.choose t.rng site
          | Some sched ->
              if arity = 1 then 0
              else begin
                let cached =
                  match cache with
                  | Some c
                    when Core.Bandit.context_pulls c.bandit site >= c.min_pulls * arity ->
                      c.hits <- c.hits + 1;
                      Some (Core.Bandit.select c.bandit t.rng site)
                  | Some c ->
                      c.misses <- c.misses + 1;
                      None
                  | None -> None
                in
                match cached with
                | Some i -> i
                | None ->
                    let n = min arity cfg.max_candidates in
                    let prior = t.event_decisions in
                    let scores =
                      Array.init n (fun i ->
                          predict_branch t cfg fb ~node sched
                            ~forced:(prior @ [ (occurrence, i) ]))
                    in
                    let best_score = Array.fold_left Float.max neg_infinity scores in
                    (* Train the cache with normalised predicted scores so
                       a later hit reproduces the lookahead's ranking. *)
                    (match cache with
                    | Some c ->
                        let worst = Array.fold_left Float.min infinity scores in
                        let span = Float.max 1e-9 (best_score -. worst) in
                        Array.iteri
                          (fun i s ->
                            Core.Bandit.update c.bandit site ~arm:i
                              ~reward:((s -. worst) /. span))
                          scores
                    | None -> ());
                    (* Ties are broken randomly: deterministic index-0 bias
                       would make every node steer the same way and
                       unbalance the system. *)
                    let eps = 1e-9 *. (1. +. Float.abs best_score) in
                    let tied = ref [] in
                    for i = n - 1 downto 0 do
                      if scores.(i) >= best_score -. eps then tied := i :: !tied
                    done;
                    Dsim.Rng.pick t.rng !tied
              end)
    in
    let index =
      if index < 0 || index >= arity then
        invalid_arg
          (Printf.sprintf "Sim: resolver answered %d for arity %d at %s" index arity
             site.Core.Choice.site_label)
      else index
    in
    t.event_decisions <- t.event_decisions @ [ (occurrence, index) ];
    t.n_decisions <- t.n_decisions + 1;
    if not t.speculative then begin
      t.decision_log <- (t.now, site, index) :: t.decision_log;
      match (t.reward_window, t.mode) with
      | Some _, Plain r ->
          t.pending_rewards <-
            { pr_site = site; pr_chosen = index; pr_at = t.now; pr_score = objective_score t; pr_resolver = r }
            :: t.pending_rewards
      | _ -> ()
    end;
    index

  and make_ctx t node : Proto.Ctx.t =
    {
      self = node;
      now = t.now;
      rng = t.rng;
      net = t.netmodel;
      choose =
        (fun choice ->
          let i = resolve_index t node choice in
          Core.Choice.nth choice i);
    }

  (* ---------- actions ---------- *)

  and perform_action t node actions =
    List.iter
      (fun action ->
        match action with
        | Proto.Action.Send { dst; msg } -> route t ~src:node ~dst msg
        | Proto.Action.Set_timer { id; after } ->
            let n = Proto.Node_id.Map.find node t.nodes in
            let gen = 1 + Option.value ~default:0 (Smap.find_opt id n.timer_gens) in
            t.nodes <-
              Proto.Node_id.Map.add node { n with timer_gens = Smap.add id gen n.timer_gens } t.nodes;
            schedule t ~after (Timer_fire { node; id; gen })
        | Proto.Action.Cancel_timer id ->
            let n = Proto.Node_id.Map.find node t.nodes in
            let gen = 1 + Option.value ~default:0 (Smap.find_opt id n.timer_gens) in
            t.nodes <-
              Proto.Node_id.Map.add node { n with timer_gens = Smap.add id gen n.timer_gens } t.nodes
        | Proto.Action.Note s ->
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:App.name "%a: %s"
              Proto.Node_id.pp node s)
      actions

  and apply_handler_result t node (state, actions) =
    (match Proto.Node_id.Map.find_opt node t.nodes with
    | Some n -> t.nodes <- Proto.Node_id.Map.add node { n with state } t.nodes
    | None -> ());
    perform_action t node actions

  (* ---------- event processing ---------- *)

  and process_scheduled t sched =
    t.now <- Dsim.Vtime.max t.now sched.at;
    t.n_events <- t.n_events + 1;
    t.event_occurrence <- 0;
    let saved_decisions = t.event_decisions in
    t.event_decisions <- [];
    let saved_processing = t.processing in
    t.processing <- Some sched;
    (match sched.ev with
    | Boot id ->
        let ctx = make_ctx t id in
        let state, actions = App.init ctx in
        (* Bump every inherited timer generation so timers armed by a
           previous incarnation of this node can no longer fire, while
           generations the new incarnation hands out stay distinct from
           the old ones. *)
        let timer_gens =
          match Proto.Node_id.Map.find_opt id t.nodes with
          | Some prev -> Smap.map (fun g -> g + 1) prev.timer_gens
          | None -> Smap.empty
        in
        t.nodes <- Proto.Node_id.Map.add id { state; alive = true; timer_gens } t.nodes;
        perform_action t id actions;
        Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine" "%a booted"
          Proto.Node_id.pp id
    | Deliver { src; dst; msg; sent_at } -> (
        match Proto.Node_id.Map.find_opt dst t.nodes with
        | Some n when n.alive ->
            let kind = App.msg_kind msg in
            if List.exists (fun f -> f.drop ~kind ~src ~dst) t.filters then begin
              t.n_filtered <- t.n_filtered + 1;
              Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"steering"
                "filtered %s %a->%a" kind Proto.Node_id.pp src Proto.Node_id.pp dst
            end
            else begin
              let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
              let latency = Dsim.Vtime.diff t.now sent_at in
              Net.Netmodel.observe_latency t.netmodel ~src:se ~dst:de t.now latency;
              Net.Netmodel.observe_loss t.netmodel ~src:se ~dst:de t.now ~delivered:true;
              if latency > 0. then
                Net.Netmodel.observe_bandwidth t.netmodel ~src:se ~dst:de t.now
                  (float_of_int (App.msg_bytes msg) /. latency);
              t.n_delivered <- t.n_delivered + 1;
              Hashtbl.replace t.kind_counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt t.kind_counts kind));
              (match t.message_log with
              | Some log -> t.message_log <- Some ((t.now, src, dst, kind) :: log)
              | None -> ());
              let applicable = Proto.Handler.applicable App.receive n.state ~src msg in
              match applicable with
              | [] ->
                  Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:App.name
                    "%a: no handler for %a" Proto.Node_id.pp dst App.pp_msg msg
              | [ h ] ->
                  let ctx = make_ctx t dst in
                  apply_handler_result t dst (h.handle ctx n.state ~src msg)
              | several ->
                  (* NFA ambiguity: which handler runs is itself a choice. *)
                  let ctx = make_ctx t dst in
                  let choice =
                    Core.Choice.make ~label:("handler:" ^ kind)
                      (List.map
                         (fun (h : _ Proto.Handler.t) -> Core.Choice.alt ~describe:h.name h)
                         several)
                  in
                  let h = ctx.choose choice in
                  apply_handler_result t dst (h.handle ctx n.state ~src msg)
            end
        | Some _ | None ->
            t.n_dropped <- t.n_dropped + 1;
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"engine"
              "%a dead, dropping %a" Proto.Node_id.pp dst App.pp_msg msg)
    | Timer_fire { node; id; gen } -> (
        match Proto.Node_id.Map.find_opt node t.nodes with
        | Some n when n.alive && Smap.find_opt id n.timer_gens = Some gen ->
            let ctx = make_ctx t node in
            apply_handler_result t node (App.on_timer ctx n.state id)
        | Some _ | None -> ()));
    t.processing <- saved_processing;
    t.event_decisions <- saved_decisions;
    if t.check_properties then begin
      let view = global_view t in
      let now_violated =
        List.map (fun (p : _ Core.Property.t) -> p.name) (Core.Property.check App.properties view)
      in
      (* Edge-detect: one recorded violation per incident, not one per
         event while the bad state persists. *)
      List.iter
        (fun name ->
          if not (List.mem name t.violated_now) then begin
            t.violations <- (t.now, name) :: t.violations;
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Error ~component:"property" "violated: %s"
              name
          end)
        now_violated;
      t.violated_now <- now_violated
    end;
    if not t.speculative then settle_rewards t

  and settle_rewards t =
    match t.reward_window with
    | None -> ()
    | Some window ->
        let due, waiting =
          List.partition (fun pr -> Dsim.Vtime.diff t.now pr.pr_at >= window) t.pending_rewards
        in
        t.pending_rewards <- waiting;
        (match due with
        | [] -> ()
        | _ :: _ ->
            let score_now = objective_score t in
            List.iter
              (fun pr ->
                pr.pr_resolver.Core.Resolver.feedback ~site:pr.pr_site ~chosen:pr.pr_chosen
                  ~reward:(score_now -. pr.pr_score))
              due)

  and run_budgeted t ~until ~budget =
    let remaining = ref budget in
    let continue = ref true in
    while !continue && !remaining > 0 do
      match Dsim.Heap.peek t.queue with
      | Some sched when Dsim.Vtime.(sched.at <= until) ->
          ignore (Dsim.Heap.pop t.queue);
          process_scheduled t sched;
          decr remaining
      | Some _ | None -> continue := false
    done;
    if Dsim.Vtime.(t.now < until) then t.now <- until

  let step t =
    match Dsim.Heap.pop t.queue with
    | None -> false
    | Some sched ->
        process_scheduled t sched;
        true

  let run_until t until = run_budgeted t ~until ~budget:max_int
  let run_for t dt = run_until t (Dsim.Vtime.add t.now dt)

  let run_until_quiescent ?(max_events = 1_000_000) t =
    let remaining = ref max_events in
    let continue = ref true in
    while !continue && !remaining > 0 do
      if not (step t) then continue := false else decr remaining
    done
end
