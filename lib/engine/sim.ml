module Make (App : Proto.App_intf.APP) = struct
  module Smap = Map.Make (String)

  type node = { state : App.state; alive : bool; timer_gens : int Smap.t; incarnation : int }

  (* Every event carries the trace id of the causal chain it belongs
     to: minted at each root (a boot, an injected message), inherited by
     everything a handler does in response.  [Boot] needs none — the
     trace is minted when it is processed. *)
  type ev =
    | Boot of Proto.Node_id.t
    | Deliver of {
        src : Proto.Node_id.t;
        dst : Proto.Node_id.t;
        msg : App.msg;
        sent_at : Dsim.Vtime.t;
        trace : int;
        rel : int option;
            (* reliable-delivery sequence number when the send is
               tracked; shared by every retransmission and Netem
               duplicate of the same logical send, so the receiver can
               dedup both with one seen-set *)
        did : int;
            (* queue ticket under bounded mailboxes: a key into the
               overload layer's live-set so a message shed while queued
               is skipped when its Deliver fires. -1 = untracked (the
               unbounded default — zero bookkeeping) *)
        byz : bool;
            (* the payload is a byzantine mutant (Netem [Mutate] verdict
               survived the re-decode guarantee); drives the
               byz_rejected/byz_accepted split at validation time *)
      }
    | Timer_fire of {
        node : Proto.Node_id.t;
        id : string;
        gen : int;
        deadline : Dsim.Vtime.t;
            (* the node-local instant the timer targets; equals the
               global fire time while the node's clock is the identity.
               Kept on the event so a clock fault landing mid-flight can
               re-anchor the global fire time from the local deadline. *)
        trace : int;
      }
    | Outbound of {
        node : Proto.Node_id.t;
        incarnation : int;
        actions : App.msg Proto.Action.t list;
        trace : int;
      }
        (* sends withheld until the WAL record they depend on is durable
           (write-ahead discipline); dropped if the node crashed or was
           reborn in the interim — those messages were never sent *)
    | Rel_ack of { seq : int; trace : int }
        (* acknowledgment travelling back to the sender; judged by the
           same Netem the payload crossed, so a partition kills acks too *)
    | Rel_retransmit of { seq : int; trace : int }
        (* sender-side timeout: if [seq] is still unacked, send again *)
    | Chaff of { dst : Proto.Node_id.t; did : int }
        (* synthetic overload-burst arrival: occupies queue bookkeeping
           like a real message but carries no payload and wakes no
           handler — modelling external offered load converging on a
           victim without touching any application's message type *)
    | Overload_tick of { dst : Proto.Node_id.t; gen : int }
        (* generator heartbeat of an active overload burst; a stale
           generation (the burst was healed) dies silently *)

  type scheduled = { at : Dsim.Vtime.t; ev : ev }

  (* ---------- reliable delivery ---------- *)

  type reliable_config = {
    base_timeout : float;  (** first retransmit fires after this *)
    backoff : float;  (** timeout multiplier per retry (>= 1) *)
    max_retries : int;  (** retransmissions before giving up *)
    jitter : float;  (** fraction of random spread added to each timeout *)
    ack_bytes : int;  (** wire size of an ack, for Netem's delay model *)
    suspect_cap : int;
        (** while the failure detector suspects the destination, at most
            this many sends may sit pending per directed pair — the
            excess is shed (with a ["rel.shed:<kind>"] notification)
            instead of growing an unbounded retransmit queue toward a
            silent peer. 0 = unbounded (the historical behaviour). *)
  }

  let default_reliable =
    {
      base_timeout = 0.25;
      backoff = 2.0;
      max_retries = 5;
      jitter = 0.1;
      ack_bytes = 24;
      suspect_cap = 0;
    }

  type rel_entry = {
    re_src : Proto.Node_id.t;
    re_dst : Proto.Node_id.t;
    re_msg : App.msg;
    re_tries : int;  (* retransmissions performed so far *)
  }

  type rel = {
    r_cfg : reliable_config;
    r_kinds : (string, unit) Hashtbl.t option;  (* [None] = every kind *)
    mutable r_next_seq : int;
    r_pending : (int, rel_entry) Hashtbl.t;  (* sender side: unacked sends *)
    r_seen : (int, unit) Hashtbl.t;  (* receiver side: seqs already handled *)
    r_pair : (int * int, int) Hashtbl.t;
        (* pending count per directed pair, for the suspect cap and the
           circuit breaker's pressure signal *)
  }

  (* ---------- overload layer ---------- *)

  type shed_policy =
    | Drop_newest  (** refuse the incoming message *)
    | Drop_oldest  (** evict the oldest queued message to make room *)
    | By_priority
        (** evict the lowest-[App.priority] queued message (ties broken
            oldest-first); the incoming message is refused instead when
            it ranks strictly below everything queued *)

  type overload_config = {
    mailbox_capacity : int;  (** in-flight bound per destination node; 0 = unbounded *)
    link_capacity : int;  (** in-flight bound per directed pair; 0 = unbounded *)
    shed : shed_policy;
    service_time : float;
        (** seconds of extra delivery delay per message already queued
            at the destination — the backlog model that makes queues
            cost latency; 0 = free (historical behaviour) *)
    admit_rate : float;  (** token-bucket injects/second at the inject boundary; 0 = unlimited *)
    admit_burst : int;  (** token-bucket depth *)
    sojourn_threshold : float;
        (** CoDel-style admission gate: refuse injects while the oldest
            message queued at the destination has waited longer than
            this; 0 = off *)
  }

  let default_overload =
    {
      mailbox_capacity = 0;
      link_capacity = 0;
      shed = Drop_newest;
      service_time = 0.;
      admit_rate = 0.;
      admit_burst = 1;
      sojourn_threshold = 0.;
    }

  type ov_entry = { oe_src : int; oe_dst : int; oe_prio : int; oe_at : Dsim.Vtime.t }

  type ov = {
    ov_cfg : overload_config;
    ov_live : (int, ov_entry) Hashtbl.t;  (* did -> queued arrival *)
    ov_mbox : (int, int) Hashtbl.t;  (* dst -> live depth *)
    ov_link : (int * int, int) Hashtbl.t;  (* (src, dst) -> live depth *)
    ov_by_dst : (int, int list ref) Hashtbl.t;
        (* dst -> dids newest-first; compacted lazily on victim scans *)
    ov_shed_set : (int, unit) Hashtbl.t;
        (* tombstones: dids shed while queued, consumed when their
           Deliver fires (the heap has no keyed removal) *)
    ov_bursts : (int, int * float) Hashtbl.t;  (* dst -> (generation, rate) *)
    mutable ov_next_did : int;
    mutable ov_next_gen : int;
    mutable ov_tokens : float;
    mutable ov_refill_at : Dsim.Vtime.t;
    mutable ov_max_depth : int;  (* high-water mailbox depth ever seen *)
  }

  let ov_copy ov =
    let by_dst = Hashtbl.create (Int.max 16 (Hashtbl.length ov.ov_by_dst)) in
    Hashtbl.iter (fun k l -> Hashtbl.add by_dst k (ref !l)) ov.ov_by_dst;
    {
      ov with
      ov_live = Hashtbl.copy ov.ov_live;
      ov_mbox = Hashtbl.copy ov.ov_mbox;
      ov_link = Hashtbl.copy ov.ov_link;
      ov_by_dst = by_dst;
      ov_shed_set = Hashtbl.copy ov.ov_shed_set;
      ov_bursts = Hashtbl.copy ov.ov_bursts;
    }

  (* Synthetic burst arrivals: fixed transfer latency (no RNG — the
     burst machinery must not perturb seeded streams) and the lowest
     possible priority, so [By_priority] sheds chaff before anything
     an application actually sent. *)
  let chaff_latency = 0.02
  let chaff_prio = min_int

  let ov_prio = match App.priority with Some f -> f | None -> fun _ -> 0

  let tbl_incr tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

  let tbl_decr tbl k =
    match Hashtbl.find_opt tbl k with
    | Some n when n > 1 -> Hashtbl.replace tbl k (n - 1)
    | Some _ -> Hashtbl.remove tbl k
    | None -> ()

  let ov_depth ov de = Option.value ~default:0 (Hashtbl.find_opt ov.ov_mbox de)
  let ov_link_depth ov se de = Option.value ~default:0 (Hashtbl.find_opt ov.ov_link (se, de))

  type stats = {
    events_processed : int;
    messages_delivered : int;
    messages_dropped : int;
    messages_filtered : int;
    messages_duplicated : int;
    messages_corrupted : int;
    messages_reordered : int;
    decode_failures : int;
    decisions : int;
    lookahead_forks : int;
    wal_appends : int;
    snapshots : int;
    recoveries : int;
    torn_recoveries : int;
    amnesia_wipes : int;
    torn_writes : int;
    store_bytes_written : int;
    rel_retransmits : int;
    rel_acked : int;
    rel_dup_dropped : int;
    rel_giveups : int;
    fd_recoveries : int;
    degraded_entries : int;
    degraded_exits : int;
    sheds_mailbox : int;
    sheds_link : int;
    sheds_admission : int;
    sheds_sojourn : int;
    rel_sheds : int;
    breaker_skips : int;
    chaff_sent : int;
    max_mailbox_depth : int;
    clock_clamped : int;
        (* timer deadlines whose global preimage fell in the past (a
           forward clock step jumped over them) and were clamped to
           fire immediately instead of raising *)
    byz_emitted : int;
    byz_discarded : int;
    byz_rejected : int;
    byz_accepted : int;
  }

  type lookahead = {
    horizon : float;
    max_events : int;
    violation_penalty : float;
    max_candidates : int;
    scope :
      (Proto.Node_id.t -> (App.state, App.msg) Proto.View.t -> (App.state, App.msg) Proto.View.t)
      option;
        (* restricts what a speculative branch's objective evaluation
           may see, keyed by the deciding node — [None] = global
           knowledge; a neighbourhood restriction reproduces the
           paper's partial-information regime *)
  }

  let default_lookahead =
    { horizon = 2.0; max_events = 400; violation_penalty = 1000.; max_candidates = 8; scope = None }

  (* Hybrid fast path (paper §3.4): a bandit cache answers sites whose
     context has absorbed enough training; cache misses run the full
     lookahead, whose per-alternative scores train the cache. *)
  type cache = { bandit : Core.Bandit.t; min_pulls : int; mutable hits : int; mutable misses : int }

  type mode =
    | Plain of Core.Resolver.t
    | Predictive of lookahead * Core.Resolver.t * cache option  (* config, fallback *)
    | Replay of (int * int) list * Core.Resolver.t  (* (occurrence, index) forcings *)

  type filter = { f_name : string; drop : kind:string -> src:Proto.Node_id.t -> dst:Proto.Node_id.t -> bool }

  (* Metric handles the hot path would otherwise re-intern per event.
     Keys are raw endpoint ints; values are registry handles created on
     first use. *)
  (* The three handles every successful delivery touches, bundled so
     the hot path pays one cache lookup instead of three. *)
  type link_obs = {
    lo_node_deliveries : Obs.Registry.counter;
    lo_link_deliveries : Obs.Registry.counter;
    lo_link_latency : Obs.Registry.histogram;
  }

  type obs = {
    o_sink : Obs.Sink.t;
    o_queue_depth : Obs.Registry.gauge;
    o_deliver : (int * int, link_obs) Hashtbl.t;
    o_node_deliveries : (int, Obs.Registry.counter) Hashtbl.t;
    o_link_deliveries : (int * int, Obs.Registry.counter) Hashtbl.t;
    o_link_latency : (int * int, Obs.Registry.histogram) Hashtbl.t;
    o_drops : (string * int * int, Obs.Registry.counter) Hashtbl.t;
    o_timer_fires : (int, Obs.Registry.counter) Hashtbl.t;
    o_rel_retransmits : Obs.Registry.counter;
    o_rel_acked : Obs.Registry.counter;
    o_rel_dup_dropped : Obs.Registry.counter;
    o_rel_giveups : Obs.Registry.counter;
    o_degraded : (int * string, Obs.Registry.counter) Hashtbl.t;
    o_fd_recoveries : (int, Obs.Registry.counter) Hashtbl.t;
    o_sheds : (string, Obs.Registry.counter) Hashtbl.t;
    o_mailbox_depth : (int, Obs.Registry.gauge) Hashtbl.t;
    o_clock_clamped : Obs.Registry.counter;
    o_byz : (string, Obs.Registry.counter) Hashtbl.t;
        (* keyed by outcome (emitted/discarded/rejected/accepted);
           created lazily so byz-free runs export no new metrics *)
  }

  type pending_reward = {
    pr_site : Core.Choice.site;
    pr_chosen : int;
    pr_at : Dsim.Vtime.t;
    pr_score : float;
    pr_resolver : Core.Resolver.t;
  }

  type t = {
    mutable now : Dsim.Vtime.t;
    queue : scheduled Dsim.Heap.t;
    mutable nodes : node Proto.Node_id.Map.t;
    rng : Dsim.Rng.t;
    netem : Net.Netem.t;
    netmodel : Net.Netmodel.t;
    nm_links : (int * int, Net.Netmodel.link) Hashtbl.t;
        (* per-(src,dst) netmodel handles so each delivery does one
           lookup here instead of three inside the model; bound to
           [netmodel]'s cells, so forks get a fresh empty table *)
    fd : Net.Failure_detector.t;
    mutable fd_enabled : bool;
    mutable rel : rel option;  (* [None] = reliable delivery off (default) *)
    mutable ov : ov option;  (* [None] = unbounded queues (default) *)
    mutable cb : Net.Circuit_breaker.t;
    mutable breaker_enabled : bool;
        (* when off (default) the breaker is never consulted nor fed, so
           existing reliable-delivery runs stay byte-identical *)
    mutable clocks : (int, Dsim.Clock.t) Hashtbl.t option;
        (* per-node local clocks, keyed by node id; [None] (the
           default) = every node reads the global clock and the whole
           layer costs one option check per context — seeded runs stay
           byte-identical. Created lazily by the first clock fault. *)
    trace : Dsim.Trace.t;
    check_properties : bool;
    mutable mode : mode;
    mutable speculative : bool;
    mutable violations : (Dsim.Vtime.t * string) list;
    mutable n_violations : int;
        (* = List.length violations, maintained so lookahead forks can
           diff violation counts without O(n) walks per branch *)
    mutable violated_now : string list;  (* properties currently violated *)
    mutable filters : filter list;
    mutable decision_log : (Dsim.Vtime.t * Core.Choice.site * int) list;
    mutable event_decisions : (int * int) list;
        (* within the event being processed; newest first — only ever
           consulted through [List.assoc_opt] on unique occurrence
           numbers, so order is irrelevant and consing beats the
           quadratic append this used to do *)
    mutable event_occurrence : int;
    mutable processing : scheduled option;
    mutable spawned : Proto.Node_id.Set.t;
    mutable reward_window : float option;
    mutable pending_rewards : pending_reward list;
    kind_counts : (string, int) Hashtbl.t;
    mutable message_log : (Dsim.Vtime.t * Proto.Node_id.t * Proto.Node_id.t * string) list option;
        (* newest first when enabled; [None] = disabled (the default) *)
    mutable log_capacity : int;  (* 0 = unbounded *)
    mutable log_length : int;
    mutable stores : Store.t Proto.Node_id.Map.t;
        (* per-node durable storage, created lazily at first boot;
           empty forever when [App.durable = None] — the zero-cost path *)
    fsync_latency : float;
    disk_bandwidth : float;
    mutable n_events : int;
    mutable n_delivered : int;
    mutable n_dropped : int;
    mutable n_filtered : int;
    mutable n_duplicated : int;
    mutable n_corrupted : int;
    mutable n_decode_failures : int;
    mutable n_decisions : int;
    mutable n_forks : int;
    mutable n_wal_appends : int;
    mutable n_snapshots : int;
    mutable n_recoveries : int;
    mutable n_torn_recoveries : int;
    mutable n_amnesia_wipes : int;
    mutable n_torn_writes : int;
    mutable n_rel_retransmits : int;
    mutable n_rel_acked : int;
    mutable n_rel_dup_dropped : int;
    mutable n_rel_giveups : int;
    mutable n_sheds_mailbox : int;
    mutable n_sheds_link : int;
    mutable n_sheds_admission : int;
    mutable n_sheds_sojourn : int;
    mutable n_rel_sheds : int;
    mutable n_breaker_skips : int;
    mutable n_chaff : int;
    mutable n_fd_recoveries : int;
    mutable n_degraded_entries : int;
    mutable n_degraded_exits : int;
    mutable n_clock_clamped : int;
    mutable n_byz_emitted : int;
    mutable n_byz_discarded : int;
    mutable n_byz_rejected : int;
    mutable n_byz_accepted : int;
    mutable obs : obs option;
    mutable next_trace : int;
    mutable current_trace : int;  (** trace id of the event being processed *)
  }

  let create ?(seed = 1) ?(jitter = 0.05) ?(check_properties = true) ?(trace_capacity = 100_000)
      ?(fsync_latency = 0.0005) ?(disk_bandwidth = 50_000_000.) ~topology () =
    let rng = Dsim.Rng.create seed in
    let netem_rng = Dsim.Rng.split rng in
    {
      now = Dsim.Vtime.zero;
      queue = Dsim.Heap.create ~cmp:(fun a b -> Dsim.Vtime.compare a.at b.at);
      nodes = Proto.Node_id.Map.empty;
      rng;
      netem = Net.Netem.create ~jitter ~rng:netem_rng topology;
      netmodel = Net.Netmodel.create ();
      nm_links = Hashtbl.create 64;
      fd = Net.Failure_detector.create ();
      fd_enabled = true;
      rel = None;
      ov = None;
      cb = Net.Circuit_breaker.create ();
      breaker_enabled = false;
      clocks = None;
      trace = Dsim.Trace.create ~capacity:trace_capacity ();
      check_properties;
      mode = Plain Core.Resolver.first;
      speculative = false;
      violations = [];
      n_violations = 0;
      violated_now = [];
      filters = [];
      decision_log = [];
      event_decisions = [];
      event_occurrence = 0;
      processing = None;
      spawned = Proto.Node_id.Set.empty;
      reward_window = None;
      pending_rewards = [];
      kind_counts = Hashtbl.create 16;
      message_log = None;
      log_capacity = 0;
      log_length = 0;
      stores = Proto.Node_id.Map.empty;
      fsync_latency;
      disk_bandwidth;
      n_events = 0;
      n_delivered = 0;
      n_dropped = 0;
      n_filtered = 0;
      n_duplicated = 0;
      n_corrupted = 0;
      n_decode_failures = 0;
      n_decisions = 0;
      n_forks = 0;
      n_wal_appends = 0;
      n_snapshots = 0;
      n_recoveries = 0;
      n_torn_recoveries = 0;
      n_amnesia_wipes = 0;
      n_torn_writes = 0;
      n_rel_retransmits = 0;
      n_rel_acked = 0;
      n_rel_dup_dropped = 0;
      n_rel_giveups = 0;
      n_sheds_mailbox = 0;
      n_sheds_link = 0;
      n_sheds_admission = 0;
      n_sheds_sojourn = 0;
      n_rel_sheds = 0;
      n_breaker_skips = 0;
      n_chaff = 0;
      n_fd_recoveries = 0;
      n_degraded_entries = 0;
      n_degraded_exits = 0;
      n_clock_clamped = 0;
      n_byz_emitted = 0;
      n_byz_discarded = 0;
      n_byz_rejected = 0;
      n_byz_accepted = 0;
      obs = None;
      next_trace = 0;
      current_trace = 0;
    }

  let set_obs t sink =
    match sink with
    | None -> t.obs <- None
    | Some o_sink ->
        let reg = o_sink.Obs.Sink.registry in
        let c name = Obs.Registry.counter reg ~name ~labels:[] in
        t.obs <-
          Some
            {
              o_sink;
              o_queue_depth = Obs.Registry.gauge reg ~name:"engine_queue_depth" ~labels:[];
              o_deliver = Hashtbl.create 64;
              o_node_deliveries = Hashtbl.create 32;
              o_link_deliveries = Hashtbl.create 64;
              o_link_latency = Hashtbl.create 64;
              o_drops = Hashtbl.create 32;
              o_timer_fires = Hashtbl.create 32;
              o_rel_retransmits = c "engine_rel_retransmits";
              o_rel_acked = c "engine_rel_acked";
              o_rel_dup_dropped = c "engine_rel_dup_dropped";
              o_rel_giveups = c "engine_rel_giveups";
              o_degraded = Hashtbl.create 16;
              o_fd_recoveries = Hashtbl.create 16;
              o_sheds = Hashtbl.create 8;
              o_mailbox_depth = Hashtbl.create 16;
              o_clock_clamped = c "clock.clamped";
              o_byz = Hashtbl.create 4;
            }

  let obs_sink t = Option.map (fun o -> o.o_sink) t.obs

  let obs_handle tbl key mk =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
        let h = mk () in
        Hashtbl.add tbl key h;
        h

  let mint_trace t =
    let id = t.next_trace in
    t.next_trace <- id + 1;
    id

  let now t = t.now
  let trace t = t.trace
  let netem t = t.netem
  let netmodel t = t.netmodel
  let violations t = List.rev t.violations
  let decision_sites t = t.decision_log

  let stats t =
    {
      events_processed = t.n_events;
      messages_delivered = t.n_delivered;
      messages_dropped = t.n_dropped;
      messages_filtered = t.n_filtered;
      messages_duplicated = t.n_duplicated;
      messages_corrupted = t.n_corrupted;
      messages_reordered = Net.Netem.reorders t.netem;
      decode_failures = t.n_decode_failures;
      decisions = t.n_decisions;
      lookahead_forks = t.n_forks;
      wal_appends = t.n_wal_appends;
      snapshots = t.n_snapshots;
      recoveries = t.n_recoveries;
      torn_recoveries = t.n_torn_recoveries;
      amnesia_wipes = t.n_amnesia_wipes;
      torn_writes = t.n_torn_writes;
      store_bytes_written =
        Proto.Node_id.Map.fold (fun _ s acc -> acc + Store.bytes_written s) t.stores 0;
      rel_retransmits = t.n_rel_retransmits;
      rel_acked = t.n_rel_acked;
      rel_dup_dropped = t.n_rel_dup_dropped;
      rel_giveups = t.n_rel_giveups;
      fd_recoveries = t.n_fd_recoveries;
      degraded_entries = t.n_degraded_entries;
      degraded_exits = t.n_degraded_exits;
      sheds_mailbox = t.n_sheds_mailbox;
      sheds_link = t.n_sheds_link;
      sheds_admission = t.n_sheds_admission;
      sheds_sojourn = t.n_sheds_sojourn;
      rel_sheds = t.n_rel_sheds;
      breaker_skips = t.n_breaker_skips;
      chaff_sent = t.n_chaff;
      max_mailbox_depth = (match t.ov with None -> 0 | Some ov -> ov.ov_max_depth);
      clock_clamped = t.n_clock_clamped;
      byz_emitted = t.n_byz_emitted;
      byz_discarded = t.n_byz_discarded;
      byz_rejected = t.n_byz_rejected;
      byz_accepted = t.n_byz_accepted;
    }

  let set_resolver t r = t.mode <- Plain r

  let set_lookahead t ?(fallback = Core.Resolver.random) ?cache (cfg : lookahead) =
    if cfg.horizon <= 0. then invalid_arg "Sim.set_lookahead: horizon must be positive";
    if cfg.max_events <= 0 then invalid_arg "Sim.set_lookahead: max_events must be positive";
    if cfg.max_candidates <= 0 then invalid_arg "Sim.set_lookahead: max_candidates must be positive";
    let cache =
      Option.map
        (fun (bandit, min_pulls) ->
          if min_pulls <= 0 then invalid_arg "Sim.set_lookahead: min_pulls must be positive";
          { bandit; min_pulls; hits = 0; misses = 0 })
        cache
    in
    t.mode <- Predictive (cfg, fallback, cache)

  let resolver_name t =
    match t.mode with
    | Plain r -> r.Core.Resolver.name
    | Predictive (_, fb, None) -> "lookahead/" ^ fb.Core.Resolver.name
    | Predictive (_, fb, Some _) -> "lookahead+cache/" ^ fb.Core.Resolver.name
    | Replay (_, fb) -> "replay/" ^ fb.Core.Resolver.name

  let cache_stats t =
    match t.mode with
    | Predictive (_, _, Some c) -> Some (c.hits, c.misses)
    | Predictive (_, _, None) | Plain _ | Replay _ -> None

  let enable_reward_feedback t ~window =
    if window <= 0. then invalid_arg "Sim.enable_reward_feedback: window must be positive";
    t.reward_window <- Some window

  let failure_detector t = t.fd
  let set_fd_enabled t on = t.fd_enabled <- on

  let enable_reliable ?(config = default_reliable) ?kinds t =
    if config.base_timeout <= 0. then
      invalid_arg "Sim.enable_reliable: base_timeout must be positive";
    if config.backoff < 1. then invalid_arg "Sim.enable_reliable: backoff must be >= 1";
    if config.max_retries < 0 then invalid_arg "Sim.enable_reliable: negative max_retries";
    if config.jitter < 0. then invalid_arg "Sim.enable_reliable: negative jitter";
    if config.ack_bytes <= 0 then invalid_arg "Sim.enable_reliable: ack_bytes must be positive";
    if config.suspect_cap < 0 then invalid_arg "Sim.enable_reliable: negative suspect_cap";
    let r_kinds =
      Option.map
        (fun ks ->
          let h = Hashtbl.create 8 in
          List.iter (fun k -> Hashtbl.replace h k ()) ks;
          h)
        kinds
    in
    t.rel <-
      Some
        {
          r_cfg = config;
          r_kinds;
          r_next_seq = 0;
          r_pending = Hashtbl.create 64;
          r_seen = Hashtbl.create 256;
          r_pair = Hashtbl.create 64;
        }

  let rel_tracked r kind =
    match r.r_kinds with None -> true | Some h -> Hashtbl.mem h kind

  (* Remove a pending reliable send, keeping the per-pair count honest.
     Every removal path (ack, give-up, shed, dead sender) goes through
     here. *)
  let rel_remove (r : rel) seq (e : rel_entry) =
    Hashtbl.remove r.r_pending seq;
    tbl_decr r.r_pair (Proto.Node_id.to_int e.re_src, Proto.Node_id.to_int e.re_dst)

  (* ---------- overload API ---------- *)

  let set_overload ?(config = default_overload) t =
    if config.mailbox_capacity < 0 then
      invalid_arg "Sim.set_overload: negative mailbox_capacity";
    if config.link_capacity < 0 then invalid_arg "Sim.set_overload: negative link_capacity";
    if Float.is_nan config.service_time || config.service_time < 0. then
      invalid_arg "Sim.set_overload: service_time must be >= 0";
    if Float.is_nan config.admit_rate || config.admit_rate < 0. then
      invalid_arg "Sim.set_overload: admit_rate must be >= 0";
    if config.admit_burst <= 0 then invalid_arg "Sim.set_overload: admit_burst must be positive";
    if Float.is_nan config.sojourn_threshold || config.sojourn_threshold < 0. then
      invalid_arg "Sim.set_overload: sojourn_threshold must be >= 0";
    t.ov <-
      Some
        {
          ov_cfg = config;
          ov_live = Hashtbl.create 256;
          ov_mbox = Hashtbl.create 16;
          ov_link = Hashtbl.create 64;
          ov_by_dst = Hashtbl.create 16;
          ov_shed_set = Hashtbl.create 64;
          ov_bursts = Hashtbl.create 4;
          ov_next_did = 0;
          ov_next_gen = 0;
          ov_tokens = float_of_int config.admit_burst;
          ov_refill_at = t.now;
          ov_max_depth = 0;
        }

  let ensure_ov t =
    match t.ov with
    | Some ov -> ov
    | None ->
        set_overload t;
        Option.get t.ov

  let overload_limits t = Option.map (fun ov -> ov.ov_cfg) t.ov

  let mailbox_depth t node =
    match t.ov with None -> 0 | Some ov -> ov_depth ov (Proto.Node_id.to_int node)

  let mailbox_backlog t =
    match t.ov with
    | None -> 0
    | Some ov -> Hashtbl.fold (fun _ d acc -> Int.max d acc) ov.ov_mbox 0

  (* Queue pressure in [0,1]: depth over capacity. Identically 0 under
     unbounded mailboxes, so pressure-reactive protocol code is inert on
     default configurations. *)
  let pressure t node =
    match t.ov with
    | None -> 0.
    | Some ov ->
        let cap = ov.ov_cfg.mailbox_capacity in
        if cap <= 0 then 0.
        else
          Float.min 1.
            (float_of_int (ov_depth ov (Proto.Node_id.to_int node)) /. float_of_int cap)

  let enable_breaker ?failure_threshold ?cooldown ?half_open_probes t =
    t.cb <- Net.Circuit_breaker.create ?failure_threshold ?cooldown ?half_open_probes ();
    t.breaker_enabled <- true

  let circuit_breaker t = t.cb

  let degraded_nodes t =
    match App.degraded with
    | None -> 0
    | Some f ->
        Proto.Node_id.Map.fold
          (fun _ n acc -> if n.alive && f n.state then acc + 1 else acc)
          t.nodes 0

  let alive t id =
    match Proto.Node_id.Map.find_opt id t.nodes with Some n -> n.alive | None -> false

  let state_of t id =
    match Proto.Node_id.Map.find_opt id t.nodes with
    | Some n when n.alive -> Some n.state
    | Some _ | None -> None

  let live_nodes t =
    Proto.Node_id.Map.fold (fun id n acc -> if n.alive then (id, n.state) :: acc else acc) t.nodes []
    |> List.rev

  let inflight t =
    (* A shed-while-queued delivery is a tombstone: still in the heap,
       but no longer part of the observable world. This runs once per
       property check, so it folds over the heap's backing array
       directly (consing in a rev_fold yields [to_list]'s order)
       rather than materialising the scheduled list first, and the
       [t.ov] dispatch is hoisted out of the per-entry loop. *)
    let keep =
      match t.ov with
      | Some ov -> fun did -> did < 0 || not (Hashtbl.mem ov.ov_shed_set did)
      | None -> fun _ -> true
    in
    Dsim.Heap.rev_fold t.queue ~init:[] ~f:(fun acc s ->
        match s.ev with
        | Deliver { src; dst; msg; did; _ } when keep did -> (src, dst, msg) :: acc
        | Deliver _ | Chaff _ | Overload_tick _ | Boot _ | Timer_fire _ | Outbound _
        | Rel_ack _ | Rel_retransmit _ ->
            acc)

  let global_view t : (App.state, App.msg) Proto.View.t =
    { time = t.now; nodes = live_nodes t; inflight = inflight t }

  let objective_score t = Core.Objective.total App.objectives (global_view t)

  let delivered_of_kind t kind = Option.value ~default:0 (Hashtbl.find_opt t.kind_counts kind)

  let store t id = Proto.Node_id.Map.find_opt id t.stores

  let enable_message_log ?(capacity = 0) t =
    if capacity < 0 then invalid_arg "Sim.enable_message_log: negative capacity";
    t.log_capacity <- capacity;
    if t.message_log = None then t.message_log <- Some []

  let take n l = List.filteri (fun i _ -> i < n) l

  let message_log t =
    match t.message_log with
    | None -> []
    | Some l -> List.rev (if t.log_capacity > 0 then take t.log_capacity l else l)

  let log_message t ~src ~dst kind =
    match t.message_log with
    | None -> ()
    | Some log ->
        let log = (t.now, src, dst, kind) :: log in
        t.log_length <- t.log_length + 1;
        (* Amortised O(1) bounding: let the list run to twice the cap,
           then chop back to the [capacity] newest entries. *)
        if t.log_capacity > 0 && t.log_length >= 2 * t.log_capacity then begin
          t.message_log <- Some (take t.log_capacity log);
          t.log_length <- t.log_capacity
        end
        else t.message_log <- Some log

  let fork_with t fallback =
    {
      t with
      queue = Dsim.Heap.copy t.queue;
      kind_counts = Hashtbl.copy t.kind_counts;
      rng = Dsim.Rng.copy t.rng;
      netem = Net.Netem.copy t.netem;
      netmodel = Net.Netmodel.copy t.netmodel;
      (* the copy has its own cells; inherited handles would silently
         mutate the parent's model *)
      nm_links = Hashtbl.create 16;
      fd = Net.Failure_detector.copy t.fd;
      rel =
        Option.map
          (fun r ->
            {
              r with
              r_pending = Hashtbl.copy r.r_pending;
              r_seen = Hashtbl.copy r.r_seen;
              r_pair = Hashtbl.copy r.r_pair;
            })
          t.rel;
      ov = Option.map ov_copy t.ov;
      cb = Net.Circuit_breaker.copy t.cb;
      clocks =
        Option.map
          (fun tbl ->
            let h = Hashtbl.create (Int.max 8 (Hashtbl.length tbl)) in
            Hashtbl.iter (fun k ck -> Hashtbl.add h k (Dsim.Clock.copy ck)) tbl;
            h)
          t.clocks;
      trace = Dsim.Trace.create ~capacity:16 ();
      message_log = None;
      obs = None;
      (* speculative branches must not pollute the real world's metrics *)
      stores = Proto.Node_id.Map.map Store.copy t.stores;
      mode = Plain fallback;
      speculative = true;
      reward_window = None;
      pending_rewards = [];
    }

  let fork t =
    let fallback = match t.mode with Predictive (_, fb, _) | Replay (_, fb) -> fb | Plain _ -> Core.Resolver.random in
    fork_with t fallback

  (* ---------- scheduling ---------- *)

  let schedule t ~after ev =
    if after < 0. then invalid_arg "Sim.schedule: negative delay";
    Dsim.Heap.push t.queue { at = Dsim.Vtime.add t.now after; ev }

  let check_endpoint t id =
    let e = Proto.Node_id.to_int id in
    if e >= Net.Topology.size (Net.Netem.topology t.netem) then
      invalid_arg "Sim: node id exceeds topology size"

  let spawn t ?(after = 0.) id =
    check_endpoint t id;
    if Proto.Node_id.Set.mem id t.spawned || Proto.Node_id.Map.mem id t.nodes then
      invalid_arg "Sim.spawn: node already exists";
    t.spawned <- Proto.Node_id.Set.add id t.spawned;
    schedule t ~after (Boot id)

  let kill t id =
    match Proto.Node_id.Map.find_opt id t.nodes with
    | None -> ()
    | Some n ->
        t.nodes <- Proto.Node_id.Map.add id { n with alive = false } t.nodes;
        Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine" "%a killed"
          Proto.Node_id.pp id

  let kill_amnesia t id =
    (match Proto.Node_id.Map.find_opt id t.stores with
    | Some s ->
        Store.wipe s;
        t.n_amnesia_wipes <- t.n_amnesia_wipes + 1;
        Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"store" "%a disk wiped"
          Proto.Node_id.pp id
    | None -> ());
    kill t id

  let torn_write t id =
    (match Proto.Node_id.Map.find_opt id t.stores with
    | Some s ->
        if Store.tear s ~rng:t.rng then begin
          t.n_torn_writes <- t.n_torn_writes + 1;
          Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"store" "%a WAL tail torn"
            Proto.Node_id.pp id
        end
    | None -> ());
    kill t id

  (* Idempotent: restarting a live node is a no-op, and a stale Boot
     that fires after something else already revived the node is
     ignored (see the Boot branch of [process_scheduled]). *)
  let restart t ?(after = 0.) id =
    check_endpoint t id;
    match Proto.Node_id.Map.find_opt id t.nodes with
    | Some n when n.alive -> ()
    | Some _ | None -> schedule t ~after (Boot id)

  (* ---------- per-node clocks ---------- *)

  let clock_of t node =
    match t.clocks with
    | None -> None
    | Some tbl -> Hashtbl.find_opt tbl (Proto.Node_id.to_int node)

  (* The node's local reading of the current instant. [t.now] exactly
     while the node has no clock entry — the knobs-off fast path is one
     option check. *)
  let local_now t node =
    match clock_of t node with None -> t.now | Some ck -> Dsim.Clock.read ck ~global:t.now

  let clock_skew t node =
    match clock_of t node with None -> 0. | Some ck -> Dsim.Clock.skew ck ~global:t.now

  (* Non-identity clocks only, sorted by node: the explorer mixes these
     into world fingerprints so two worlds that differ only in clock
     state never dedup into one (timer interleavings downstream of the
     skew differ). Empty whenever the layer is off or fully healed. *)
  let clock_fingerprints t =
    match t.clocks with
    | None -> []
    | Some tbl ->
        Hashtbl.fold
          (fun k ck acc ->
            let fp = Dsim.Clock.fingerprint ck in
            if fp = 0 then acc else (Proto.Node_id.of_int k, fp) :: acc)
          tbl []
        |> List.sort (fun (a, _) (b, _) -> Proto.Node_id.compare a b)

  let note_clock_clamped t node =
    t.n_clock_clamped <- t.n_clock_clamped + 1;
    (match t.obs with None -> () | Some o -> Obs.Registry.incr o.o_clock_clamped);
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"engine"
      "%a timer deadline clamped to now (clock jumped past it)" Proto.Node_id.pp node

  (* Global instant of a node-local deadline, clamped so it never
     precedes the engine's current instant: a forward step that jumps
     the local clock over a pending deadline makes the timer fire
     immediately (counted in [clock_clamped]) instead of crashing the
     engine with [Vtime]'s negative-delta guard. *)
  let global_of_deadline t node ck deadline =
    let g = Dsim.Clock.global_of_local ck deadline in
    if Dsim.Vtime.(g < t.now) then begin
      note_clock_clamped t node;
      t.now
    end
    else g

  let ensure_clock t node =
    let tbl =
      match t.clocks with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          t.clocks <- Some tbl;
          tbl
    in
    let key = Proto.Node_id.to_int node in
    match Hashtbl.find_opt tbl key with
    | Some ck -> ck
    | None ->
        let ck = Dsim.Clock.create () in
        Hashtbl.add tbl key ck;
        ck

  (* Pending timers carry their node-local deadline; a clock fault
     moves the global instants those deadlines map to, so rebuild this
     node's timer entries. Draining and re-pushing in ascending order
     preserves the FIFO tie-break among untouched events. Clock events
     are rare, so the O(n log n) rebuild never taxes the hot path. *)
  let reanchor_timers t node ck =
    let entries = Dsim.Heap.drain t.queue in
    List.iter
      (fun s ->
        match s.ev with
        | Timer_fire f when Proto.Node_id.equal f.node node ->
            Dsim.Heap.push t.queue { s with at = global_of_deadline t node ck f.deadline }
        | _ -> Dsim.Heap.push t.queue s)
      entries

  let set_clock_rate t node ~rate =
    check_endpoint t node;
    if not (Float.is_finite rate && rate > 0.) then
      invalid_arg "Sim.set_clock_rate: rate must be positive and finite";
    let ck = ensure_clock t node in
    Dsim.Clock.set_rate ck ~global:t.now ~rate;
    reanchor_timers t node ck;
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine" "%a clock rate x%g"
      Proto.Node_id.pp node rate

  let clock_step t node ~offset =
    check_endpoint t node;
    if not (Float.is_finite offset) then invalid_arg "Sim.clock_step: offset not finite";
    let ck = ensure_clock t node in
    Dsim.Clock.step ck ~global:t.now ~offset;
    reanchor_timers t node ck;
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine" "%a clock step %+gs"
      Proto.Node_id.pp node offset

  (* Snap the node back onto the global clock. The entry is removed —
     an identity clock and no clock are indistinguishable, and keeping
     the table minimal keeps [clock_fingerprints] clean. Idempotent. *)
  let heal_clock t node =
    match t.clocks with
    | None -> ()
    | Some tbl -> (
        let key = Proto.Node_id.to_int node in
        match Hashtbl.find_opt tbl key with
        | None -> ()
        | Some ck ->
            Dsim.Clock.heal ck ~global:t.now;
            Hashtbl.remove tbl key;
            reanchor_timers t node ck;
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine"
              "%a clock healed" Proto.Node_id.pp node)

  (* Start an overload burst at [node]: [rate] synthetic arrivals per
     second converge on its mailbox until [heal_overload]. Creates the
     overload layer in its tracking-only default configuration if none
     was set, so depth gauges and pressure work even without bounds.
     Draws no randomness — chaff timing is fully deterministic. *)
  let overload t ?(rate = 200.) node =
    check_endpoint t node;
    if Float.is_nan rate || rate <= 0. then invalid_arg "Sim.overload: rate must be positive";
    let ov = ensure_ov t in
    let de = Proto.Node_id.to_int node in
    let gen = ov.ov_next_gen in
    ov.ov_next_gen <- gen + 1;
    Hashtbl.replace ov.ov_bursts de (gen, rate);
    schedule t ~after:0. (Overload_tick { dst = node; gen });
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine"
      "%a overload burst started (%.0f/s)" Proto.Node_id.pp node rate

  (* Stop the burst; a stale generator tick dies when it fires. Chaff
     already queued drains normally. Idempotent. *)
  let heal_overload t node =
    match t.ov with
    | None -> ()
    | Some ov ->
        let de = Proto.Node_id.to_int node in
        if Hashtbl.mem ov.ov_bursts de then begin
          Hashtbl.remove ov.ov_bursts de;
          Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine"
            "%a overload burst healed" Proto.Node_id.pp node
        end

  (* Garbles a wire encoding: each byte has one bit flipped with
     probability [flip]; if the dice spare every byte, one byte is
     forced — a [Corrupt] verdict always yields a genuinely altered
     payload. *)
  let garble t ~flip s =
    let b = Bytes.of_string s in
    let len = Bytes.length b in
    let flipped = ref false in
    let flip_at i =
      let bit = 1 lsl Dsim.Rng.int t.rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
      flipped := true
    in
    for i = 0 to len - 1 do
      if Dsim.Rng.uniform t.rng < flip then flip_at i
    done;
    if (not !flipped) && len > 0 then flip_at (Dsim.Rng.int t.rng len);
    Bytes.to_string b

  let nm_link t ~se ~de =
    let key = (se, de) in
    match Hashtbl.find_opt t.nm_links key with
    | Some l -> l
    | None ->
        let l = Net.Netmodel.link t.netmodel ~src:se ~dst:de in
        Hashtbl.replace t.nm_links key l;
        l

  let drop t ~src ~dst ~cause pp_payload =
    let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
    t.n_dropped <- t.n_dropped + 1;
    Net.Netmodel.observe_link_loss t.netmodel (nm_link t ~se ~de) t.now ~delivered:false;
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"net" "drop(%s) %a->%a %t" cause
      Proto.Node_id.pp src Proto.Node_id.pp dst pp_payload

  let root_cause cause =
    match String.index_opt cause ':' with
    | Some i -> String.sub cause 0 i
    | None -> cause

  let obs_drop o ~cause ~se ~de =
    Obs.Registry.incr
      (obs_handle o.o_drops (cause, se, de) (fun () ->
           Obs.Registry.counter o.o_sink.Obs.Sink.registry ~name:"engine_drops"
             ~labels:
               [ ("cause", cause); ("src", string_of_int se); ("dst", string_of_int de) ]))

  let note_byz t outcome =
    match t.obs with
    | None -> ()
    | Some o ->
        Obs.Registry.incr
          (obs_handle o.o_byz outcome (fun () ->
               Obs.Registry.counter o.o_sink.Obs.Sink.registry ~name:"engine_byz"
                 ~labels:[ ("outcome", outcome) ]))

  (* Edge-detect the app's self-reported degraded mode across a state
     transition. Counted per incident (enter/exit), not per event spent
     inside the mode; [None] before a first boot counts as healthy. *)
  let note_degraded t node ~prev ~next =
    match App.degraded with
    | None -> ()
    | Some f ->
        let was = match prev with Some s -> f s | None -> false in
        let is_now = f next in
        if was <> is_now then begin
          let dir = if is_now then "enter" else "exit" in
          if is_now then t.n_degraded_entries <- t.n_degraded_entries + 1
          else t.n_degraded_exits <- t.n_degraded_exits + 1;
          (match t.obs with
          | None -> ()
          | Some o ->
              let ni = Proto.Node_id.to_int node in
              Obs.Registry.incr
                (obs_handle o.o_degraded (ni, dir) (fun () ->
                     Obs.Registry.counter o.o_sink.Obs.Sink.registry
                       ~name:"engine_degraded_transitions"
                       ~labels:[ ("node", string_of_int ni); ("dir", dir) ])));
          Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine"
            "%a %s degraded mode" Proto.Node_id.pp node
            (if is_now then "entered" else "exited")
        end

  (* Retransmission timeout for a send on its [tries]-th retry:
     exponential backoff, plus a random spread so a burst of sends lost
     to one partition does not retransmit in lockstep. The draw happens
     only when reliable delivery is enabled — disabled, the engine's
     RNG stream is untouched. *)
  let rel_timeout t (r : rel) ~tries =
    let base = r.r_cfg.base_timeout *. (r.r_cfg.backoff ** float_of_int tries) in
    if r.r_cfg.jitter > 0. then base *. (1. +. (r.r_cfg.jitter *. Dsim.Rng.uniform t.rng))
    else base

  (* ---------- overload machinery ---------- *)

  let shed_cause_label = function
    | `Mailbox -> "mailbox"
    | `Link -> "link"
    | `Admission -> "admission"
    | `Sojourn -> "sojourn"
    | `Rel -> "rel"
    | `Breaker -> "breaker"

  let note_shed t ~cause ~se ~de =
    (match cause with
    | `Mailbox -> t.n_sheds_mailbox <- t.n_sheds_mailbox + 1
    | `Link -> t.n_sheds_link <- t.n_sheds_link + 1
    | `Admission -> t.n_sheds_admission <- t.n_sheds_admission + 1
    | `Sojourn -> t.n_sheds_sojourn <- t.n_sheds_sojourn + 1
    | `Rel -> t.n_rel_sheds <- t.n_rel_sheds + 1
    | `Breaker -> t.n_breaker_skips <- t.n_breaker_skips + 1);
    let label = shed_cause_label cause in
    (match t.obs with
    | None -> ()
    | Some o ->
        Obs.Registry.incr
          (obs_handle o.o_sheds label (fun () ->
               Obs.Registry.counter o.o_sink.Obs.Sink.registry ~name:"engine_sheds"
                 ~labels:[ ("cause", label) ])));
    Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"engine" "shed(%s) %d->%d" label
      se de

  let ov_set_depth_gauge t ov de =
    match t.obs with
    | None -> ()
    | Some o ->
        Obs.Registry.set
          (obs_handle o.o_mailbox_depth de (fun () ->
               Obs.Registry.gauge o.o_sink.Obs.Sink.registry ~name:"engine_mailbox_depth"
                 ~labels:[ ("node", string_of_int de) ]))
          (float_of_int (ov_depth ov de))

  (* Victim search over the destination's queue, newest-first list: the
     last live element is the oldest, so a plain replace-on-match fold
     finds the oldest ([by_prio:false]) or the oldest among the
     lowest-priority entries ([by_prio:true]). The list is compacted of
     dead dids on the way — sheds only happen at capacity, so the O(n)
     walk is bounded by the configured capacity. *)
  let ov_scan_victim ov ~de ~restrict_src ~by_prio =
    match Hashtbl.find_opt ov.ov_by_dst de with
    | None -> None
    | Some l ->
        (* Compaction and victim selection share one pass: the filter
           visits dids left-to-right exactly as the old separate scan
           did, so replace-on-match picks the same victim. *)
        let best = ref None in
        l :=
          List.filter
            (fun did ->
              match Hashtbl.find_opt ov.ov_live did with
              | None -> false
              | Some e ->
                  let considered =
                    match restrict_src with None -> true | Some s -> e.oe_src = s
                  in
                  (if considered then
                     match !best with
                     | None -> best := Some (did, e)
                     | Some (_, b) ->
                         if (not by_prio) || e.oe_prio <= b.oe_prio then best := Some (did, e));
                  true)
            !l;
        !best

  let ov_tombstone t ov did (v : ov_entry) ~cause =
    Hashtbl.remove ov.ov_live did;
    tbl_decr ov.ov_mbox v.oe_dst;
    tbl_decr ov.ov_link (v.oe_src, v.oe_dst);
    Hashtbl.replace ov.ov_shed_set did ();
    ov_set_depth_gauge t ov v.oe_dst;
    note_shed t ~cause ~se:v.oe_src ~de:v.oe_dst

  (* Enforce one bound: true = the incoming message may be enqueued
     (possibly after evicting a queued victim), false = it was shed. *)
  let ov_check_bound t ov ~se ~de ~prio ~cap ~depth ~restrict_src ~cause =
    if cap <= 0 || depth < cap then true
    else
      match ov.ov_cfg.shed with
      | Drop_newest ->
          note_shed t ~cause ~se ~de;
          false
      | Drop_oldest -> (
          match ov_scan_victim ov ~de ~restrict_src ~by_prio:false with
          | Some (did, v) ->
              ov_tombstone t ov did v ~cause;
              true
          | None ->
              note_shed t ~cause ~se ~de;
              false)
      | By_priority -> (
          match ov_scan_victim ov ~de ~restrict_src ~by_prio:true with
          | Some (did, v) when v.oe_prio <= prio ->
              ov_tombstone t ov did v ~cause;
              true
          | Some _ | None ->
              (* everything queued outranks the newcomer *)
              note_shed t ~cause ~se ~de;
              false)

  let ov_make_room t ov ~se ~de ~prio =
    ov_check_bound t ov ~se ~de ~prio ~cap:ov.ov_cfg.link_capacity
      ~depth:(ov_link_depth ov se de) ~restrict_src:(Some se) ~cause:`Link
    && ov_check_bound t ov ~se ~de ~prio ~cap:ov.ov_cfg.mailbox_capacity
         ~depth:(ov_depth ov de) ~restrict_src:None ~cause:`Mailbox

  let ov_register t ov ~se ~de ~prio =
    let did = ov.ov_next_did in
    ov.ov_next_did <- did + 1;
    Hashtbl.replace ov.ov_live did { oe_src = se; oe_dst = de; oe_prio = prio; oe_at = t.now };
    tbl_incr ov.ov_mbox de;
    tbl_incr ov.ov_link (se, de);
    (match Hashtbl.find_opt ov.ov_by_dst de with
    | Some l -> l := did :: !l
    | None -> Hashtbl.add ov.ov_by_dst de (ref [ did ]));
    let depth = ov_depth ov de in
    if depth > ov.ov_max_depth then ov.ov_max_depth <- depth;
    ov_set_depth_gauge t ov de;
    did

  (* A queued arrival reached its Deliver (or Chaff) event: release the
     bookkeeping. Returns false when the message was shed while queued —
     the event is then a tombstone and must not touch the node. *)
  let ov_note_processed t ov did =
    if Hashtbl.mem ov.ov_shed_set did then begin
      Hashtbl.remove ov.ov_shed_set did;
      false
    end
    else begin
      (match Hashtbl.find_opt ov.ov_live did with
      | Some e ->
          Hashtbl.remove ov.ov_live did;
          tbl_decr ov.ov_mbox e.oe_dst;
          tbl_decr ov.ov_link (e.oe_src, e.oe_dst);
          ov_set_depth_gauge t ov e.oe_dst
      | None -> ());
      true
    end

  let ov_oldest_age ov ~de now =
    match Hashtbl.find_opt ov.ov_by_dst de with
    | None -> 0.
    | Some l ->
        let oldest =
          List.fold_left
            (fun acc did ->
              match Hashtbl.find_opt ov.ov_live did with Some e -> Some e | None -> acc)
            None !l
        in
        (* Clamped: an observation taken against an instant that
           precedes the arrival (reordered observation, backwards local
           reading) must report "just arrived", not a negative age that
           defeats the sojourn gate. *)
        (match oldest with None -> 0. | Some e -> Float.max 0. (Dsim.Vtime.diff now e.oe_at))

  (* Admission control at the inject boundary: a deterministic token
     bucket, then the CoDel-style sojourn gate — refuse new work while
     the destination's oldest queued message has already waited longer
     than the threshold, shedding *before* the queue saturates. *)
  let admit t ~src ~dst =
    match t.ov with
    | None -> true
    | Some ov ->
        let cfg = ov.ov_cfg in
        let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
        let rate_ok =
          if cfg.admit_rate <= 0. then true
          else begin
            (* Clamped at the source: a negative elapsed (the refill
               anchor somehow ahead of now) must not mint tokens. *)
            let dt = Float.max 0. (Dsim.Vtime.diff t.now ov.ov_refill_at) in
            if dt > 0. then begin
              ov.ov_tokens <-
                Float.min
                  (float_of_int cfg.admit_burst)
                  (ov.ov_tokens +. (dt *. cfg.admit_rate));
              ov.ov_refill_at <- t.now
            end;
            if ov.ov_tokens >= 1. then begin
              ov.ov_tokens <- ov.ov_tokens -. 1.;
              true
            end
            else false
          end
        in
        if not rate_ok then begin
          note_shed t ~cause:`Admission ~se ~de;
          false
        end
        else if
          cfg.sojourn_threshold > 0. && ov_oldest_age ov ~de t.now > cfg.sojourn_threshold
        then begin
          note_shed t ~cause:`Sojourn ~se ~de;
          false
        end
        else true

  (* Every Deliver push funnels through here. Unbounded (the default):
     one option check, then exactly the historical push. Bounded: the
     arrival must clear the link and mailbox bounds, takes a queue
     ticket, and pays the backlog's service delay — the model that
     makes deep queues cost latency, which a discrete-event delivery
     otherwise would not. *)
  let push_deliver t ?(byz = false) ~src ~dst ~sent_at ~trace ~rel ~delay msg =
    match t.ov with
    | None ->
        Dsim.Heap.push t.queue
          {
            at = Dsim.Vtime.add t.now delay;
            ev = Deliver { src; dst; msg; sent_at; trace; rel; did = -1; byz };
          }
    | Some ov ->
        let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
        let prio = ov_prio msg in
        if ov_make_room t ov ~se ~de ~prio then begin
          let extra = float_of_int (ov_depth ov de) *. ov.ov_cfg.service_time in
          let did = ov_register t ov ~se ~de ~prio in
          Dsim.Heap.push t.queue
            {
              at = Dsim.Vtime.add t.now (delay +. extra);
              ev = Deliver { src; dst; msg; sent_at; trace; rel; did; byz };
            }
        end

  let transmit t ~src ~dst ~rel msg =
    let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
    let trace = t.current_trace in
    let now_s = Dsim.Vtime.to_seconds t.now in
    let span verdict ~deliver_at =
      match t.obs with
      | None -> ()
      | Some o ->
          Obs.Span.record o.o_sink.Obs.Sink.spans ~trace ~src:se ~dst:de
            ~kind:(App.msg_kind msg) ~enqueue:now_s ~deliver:deliver_at ~verdict
    in
    let deliver delay = push_deliver t ~src ~dst ~sent_at:t.now ~trace ~rel ~delay msg in
    let pp_msg out = App.pp_msg out msg in
    let dropped cause =
      drop t ~src ~dst ~cause pp_msg;
      match t.obs with
      | None -> ()
      | Some o ->
          let cause = root_cause cause in
          obs_drop o ~cause ~se ~de;
          span ("drop:" ^ cause) ~deliver_at:now_s
    in
    (* A reorder verdict is invisible in [judge]'s return value — it
       only inflates the delivery delay and bumps the netem counter, so
       detect it by the counter's delta. *)
    let reorders0 = Net.Netem.reorders t.netem in
    match
      Net.Netem.judge t.netem ~now:now_s ~src:se ~dst:de ~bytes:(App.msg_bytes msg)
    with
    | Net.Netem.Drop cause -> dropped cause
    | Net.Netem.Deliver delay ->
        deliver delay;
        let verdict = if Net.Netem.reorders t.netem > reorders0 then "reorder" else "deliver" in
        span verdict ~deliver_at:(now_s +. delay)
    | Net.Netem.Duplicate delays ->
        (* Count the extra copies while scheduling them — one walk of
           [delays], not a [List.length] plus a [List.iter]. *)
        List.iteri (fun i d -> (if i > 0 then t.n_duplicated <- t.n_duplicated + 1); deliver d) delays;
        if t.obs <> None then begin
          let reordered = Net.Netem.reorders t.netem > reorders0 in
          List.iteri
            (fun i d ->
              let verdict =
                if i > 0 then "duplicate" else if reordered then "reorder" else "deliver"
              in
              span verdict ~deliver_at:(now_s +. d))
            delays
        end
    | Net.Netem.Corrupt { delay; flip } -> (
        t.n_corrupted <- t.n_corrupted + 1;
        (* The fault acts on the wire form: encode, flip bytes, try to
           decode what a receiver would see. A decode failure surfaces
           as a drop (and is counted); a flip that still parses is
           caught by the transport checksum every real deployment runs
           under, so it too surfaces as a drop — handlers never see a
           garbled payload, and nothing escapes the engine. *)
        match App.msg_codec with
        | None -> dropped "corrupt"
        | Some codec -> (
            ignore delay;
            let garbled = garble t ~flip (Wire.Codec.encode codec msg) in
            match Wire.Codec.decode codec garbled with
            | Error e | (exception Wire.Codec.Malformed e) ->
                t.n_decode_failures <- t.n_decode_failures + 1;
                dropped ("corrupt: " ^ e)
            | Ok _ -> dropped "corrupt: checksum mismatch"))
    | Net.Netem.Mutate delay -> (
        match App.msg_codec with
        | None ->
            (* No wire form to mutate — the message sails through clean. *)
            deliver delay;
            span "deliver" ~deliver_at:(now_s +. delay)
        | Some codec -> (
            let node_ids =
              List.init (Net.Topology.size (Net.Netem.topology t.netem)) Fun.id
            in
            match
              Wire.Mutator.mutate ~rng:t.rng ~node_ids codec (Wire.Codec.encode codec msg)
            with
            | Some (mutant, _bytes) ->
                (* The mutant decodes cleanly by construction — it is
                   delivered as a well-formed message and flagged so the
                   receive side can attribute the validator's verdict. *)
                t.n_byz_emitted <- t.n_byz_emitted + 1;
                note_byz t "emitted";
                push_deliver t ~byz:true ~src ~dst ~sent_at:t.now ~trace ~rel ~delay mutant;
                span "mutate" ~deliver_at:(now_s +. delay)
            | None ->
                (* No candidate survived the re-decode guarantee:
                   counted, and the original travels unharmed — a
                   mutation fault never degenerates into loss. *)
                t.n_byz_discarded <- t.n_byz_discarded + 1;
                note_byz t "discarded";
                deliver delay;
                span "deliver" ~deliver_at:(now_s +. delay)))

  (* A send: when reliable delivery covers this message kind, register
     it as pending and arm the first retransmit timer before handing the
     payload to Netem — the tracking must survive whatever verdict the
     network passes. *)
  let route t ~src ~dst msg =
    let rel =
      match t.rel with
      | Some r when rel_tracked r (App.msg_kind msg) ->
          let seq = r.r_next_seq in
          r.r_next_seq <- seq + 1;
          Hashtbl.replace r.r_pending seq
            { re_src = src; re_dst = dst; re_msg = msg; re_tries = 0 };
          tbl_incr r.r_pair (Proto.Node_id.to_int src, Proto.Node_id.to_int dst);
          schedule t ~after:(rel_timeout t r ~tries:0)
            (Rel_retransmit { seq; trace = t.current_trace });
          Some seq
      | Some _ | None -> None
    in
    transmit t ~src ~dst ~rel msg

  (* The ack crosses the same emulated network as the payload — judged
     for loss, latency and duplication — so a partition that eats the
     payload's direction or the reverse one breaks the handshake
     realistically. A lost ack is recovered by the retransmit timer and
     absorbed by the receiver's seen-set. *)
  let send_ack t ~receiver ~sender ~seq =
    match t.rel with
    | None -> ()
    | Some r -> (
        let se = Proto.Node_id.to_int receiver and de = Proto.Node_id.to_int sender in
        let push delay =
          Dsim.Heap.push t.queue
            { at = Dsim.Vtime.add t.now delay; ev = Rel_ack { seq; trace = t.current_trace } }
        in
        match
          Net.Netem.judge t.netem ~now:(Dsim.Vtime.to_seconds t.now) ~src:se ~dst:de
            ~bytes:r.r_cfg.ack_bytes
        with
        | Net.Netem.Drop _ -> ()
        | Net.Netem.Deliver delay -> push delay
        | Net.Netem.Duplicate delays -> List.iter push delays
        | Net.Netem.Corrupt _ -> ()
        (* An ack carries no application payload to mutate; it arrives
           intact. *)
        | Net.Netem.Mutate delay -> push delay)

  let inject t ?(after = 0.) ~src ~dst msg =
    (* same guard (and message) the pre-overload [schedule] path gave *)
    if after < 0. then invalid_arg "Sim.schedule: negative delay";
    check_endpoint t src;
    check_endpoint t dst;
    (* An injection is a root send: it starts a fresh causal chain. It
       is also the admission boundary — the token bucket and the
       sojourn gate shed offered load here, before it costs anything. *)
    t.current_trace <- mint_trace t;
    if admit t ~src ~dst then
      if after = 0. then route t ~src ~dst msg
      else
        push_deliver t ~src ~dst ~sent_at:t.now ~trace:t.current_trace ~rel:None ~delay:after
          msg

  let add_filter t ~name drop = t.filters <- { f_name = name; drop } :: t.filters
  let clear_filters t = t.filters <- []

  (* ---------- choice resolution ---------- *)

  (* Lookahead: for each candidate, fork the simulation, replay the
     in-flight event with that branch forced (and all earlier choices of
     the same event pinned to what was actually decided), run the fork
     [horizon] seconds, and score the resulting view. *)
  let rec predict_branch t (cfg : lookahead) fallback ~node sched ~forced =
    let f = fork_with t fallback in
    f.mode <- Replay (forced, fallback);
    t.n_forks <- t.n_forks + 1;
    let before_violations = f.n_violations in
    process_scheduled f sched;
    f.mode <- Plain fallback;
    run_budgeted f ~until:(Dsim.Vtime.add t.now cfg.horizon) ~budget:cfg.max_events;
    let fresh_violations = f.n_violations - before_violations in
    let view =
      match cfg.scope with None -> global_view f | Some scope -> scope node (global_view f)
    in
    Core.Objective.total App.objectives view
    -. (cfg.violation_penalty *. float_of_int fresh_violations)

  and resolve_index : type a. t -> Proto.Node_id.t -> a Core.Choice.t -> int =
   fun t node choice ->
    let occurrence = t.event_occurrence in
    t.event_occurrence <- occurrence + 1;
    let site = Core.Choice.site ~node:(Proto.Node_id.to_int node) ~occurrence choice in
    let arity = site.Core.Choice.site_arity in
    let index =
      match t.mode with
      | Plain r -> r.Core.Resolver.choose t.rng site
      | Replay (forced, fb) -> (
          match List.assoc_opt occurrence forced with
          | Some i -> min i (arity - 1)
          | None -> fb.Core.Resolver.choose t.rng site)
      | Predictive (cfg, fb, cache) -> (
          match t.processing with
          | None -> fb.Core.Resolver.choose t.rng site
          | Some sched ->
              if arity = 1 then 0
              else begin
                let cached =
                  match cache with
                  | Some c
                    when Core.Bandit.context_pulls c.bandit site >= c.min_pulls * arity ->
                      c.hits <- c.hits + 1;
                      Some (Core.Bandit.select c.bandit t.rng site)
                  | Some c ->
                      c.misses <- c.misses + 1;
                      None
                  | None -> None
                in
                match cached with
                | Some i -> i
                | None ->
                    let n = min arity cfg.max_candidates in
                    let prior = t.event_decisions in
                    let scores =
                      Array.init n (fun i ->
                          predict_branch t cfg fb ~node sched
                            ~forced:((occurrence, i) :: prior))
                    in
                    let best_score = Array.fold_left Float.max neg_infinity scores in
                    (* Train the cache with normalised predicted scores so
                       a later hit reproduces the lookahead's ranking. *)
                    (match cache with
                    | Some c ->
                        let worst = Array.fold_left Float.min infinity scores in
                        let span = Float.max 1e-9 (best_score -. worst) in
                        Array.iteri
                          (fun i s ->
                            Core.Bandit.update c.bandit site ~arm:i
                              ~reward:((s -. worst) /. span))
                          scores
                    | None -> ());
                    (* Ties are broken randomly: deterministic index-0 bias
                       would make every node steer the same way and
                       unbalance the system. *)
                    let eps = 1e-9 *. (1. +. Float.abs best_score) in
                    let tied = ref [] in
                    for i = n - 1 downto 0 do
                      if scores.(i) >= best_score -. eps then tied := i :: !tied
                    done;
                    Dsim.Rng.pick t.rng !tied
              end)
    in
    let index =
      if index < 0 || index >= arity then
        invalid_arg
          (Printf.sprintf "Sim: resolver answered %d for arity %d at %s" index arity
             site.Core.Choice.site_label)
      else index
    in
    t.event_decisions <- (occurrence, index) :: t.event_decisions;
    t.n_decisions <- t.n_decisions + 1;
    if not t.speculative then begin
      t.decision_log <- (t.now, site, index) :: t.decision_log;
      match (t.reward_window, t.mode) with
      | Some _, Plain r ->
          t.pending_rewards <-
            { pr_site = site; pr_chosen = index; pr_at = t.now; pr_score = objective_score t; pr_resolver = r }
            :: t.pending_rewards
      | _ -> ()
    end;
    index

  and make_ctx t node : Proto.Ctx.t =
    {
      self = node;
      (* node-local: a skewed node's handlers see their own clock, so
         every ctx-driven timeout comparison (failure-detector
         suspicion, breaker cooldown, app timestamps) runs in the
         node's frame of reference *)
      now = local_now t node;
      rng = t.rng;
      net = t.netmodel;
      fd = t.fd;
      cb = t.cb;
      pressure = (fun () -> pressure t node);
      choose =
        (fun choice ->
          let i = resolve_index t node choice in
          Core.Choice.nth choice i);
    }

  (* ---------- actions ---------- *)

  and perform_action t node actions =
    List.iter
      (fun action ->
        match action with
        | Proto.Action.Send { dst; msg } -> route t ~src:node ~dst msg
        | Proto.Action.Set_timer { id; after } -> (
            let n = Proto.Node_id.Map.find node t.nodes in
            let gen = 1 + Option.value ~default:0 (Smap.find_opt id n.timer_gens) in
            t.nodes <-
              Proto.Node_id.Map.add node { n with timer_gens = Smap.add id gen n.timer_gens } t.nodes;
            (* same guard (and message) [schedule] gives *)
            if after < 0. then invalid_arg "Sim.schedule: negative delay";
            match clock_of t node with
            | None ->
                let at = Dsim.Vtime.add t.now after in
                Dsim.Heap.push t.queue
                  { at; ev = Timer_fire { node; id; gen; deadline = at; trace = t.current_trace } }
            | Some ck ->
                (* [after] is a duration on the node's own clock: the
                   deadline lives in local time and its global fire
                   instant follows from the clock's current segment — a
                   fast clock fires early in global time. *)
                let deadline = Dsim.Vtime.add (Dsim.Clock.read ck ~global:t.now) after in
                let at = global_of_deadline t node ck deadline in
                Dsim.Heap.push t.queue
                  { at; ev = Timer_fire { node; id; gen; deadline; trace = t.current_trace } })
        | Proto.Action.Cancel_timer id ->
            let n = Proto.Node_id.Map.find node t.nodes in
            let gen = 1 + Option.value ~default:0 (Smap.find_opt id n.timer_gens) in
            t.nodes <-
              Proto.Node_id.Map.add node { n with timer_gens = Smap.add id gen n.timer_gens } t.nodes
        | Proto.Action.Note s ->
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:App.name "%a: %s"
              Proto.Node_id.pp node s)
      actions

  (* Send actions that must wait for a durable write leave through a
     deferred [Outbound] event; everything else (timers, notes) is
     internal to the node and applies immediately. [delay = 0] is the
     fast path — no event, no reordering, bit-identical to a world
     without the persistence layer. *)
  and defer_sends t node ~delay actions =
    if delay <= 0. then perform_action t node actions
    else begin
      let sends, internal =
        List.partition (function Proto.Action.Send _ -> true | _ -> false) actions
      in
      perform_action t node internal;
      match sends with
      | [] -> ()
      | _ ->
          let incarnation = (Proto.Node_id.Map.find node t.nodes).incarnation in
          schedule t ~after:delay
            (Outbound { node; incarnation; actions = sends; trace = t.current_trace })
    end

  and store_of t node =
    match Proto.Node_id.Map.find_opt node t.stores with
    | Some s -> s
    | None ->
        let s = Store.create ~fsync_latency:t.fsync_latency ~bandwidth:t.disk_bandwidth () in
        t.stores <- Proto.Node_id.Map.add node s t.stores;
        s

  (* Write-ahead step for one transition: ask the app what (if
     anything) this transition must persist, append it, and return the
     disk's completion delay so the caller can withhold the sends. *)
  and persist t node ~prev ~next (d : (App.state, App.msg) Proto.Durability.t) =
    match d.log ~prev ~next with
    | None -> 0.
    | Some record ->
        let store = store_of t node in
        let now = Dsim.Vtime.to_seconds t.now in
        let delay = Store.append store ~now record in
        t.n_wal_appends <- t.n_wal_appends + 1;
        if Store.wal_entries store >= d.snapshot_every then begin
          (* Compaction queues behind the append on the same disk, so
             its completion delay subsumes the append's. *)
          let delay' =
            Store.install_snapshot store ~now (Wire.Codec.encode d.codec next)
          in
          t.n_snapshots <- t.n_snapshots + 1;
          Float.max delay delay'
        end
        else delay

  and apply_handler_result t node (state, actions) =
    match Proto.Node_id.Map.find_opt node t.nodes with
    | None -> perform_action t node actions
    | Some n ->
        note_degraded t node ~prev:(Some n.state) ~next:state;
        let delay =
          match App.durable with
          | None -> 0.
          | Some d -> persist t node ~prev:n.state ~next:state d
        in
        t.nodes <- Proto.Node_id.Map.add node { n with state } t.nodes;
        defer_sends t node ~delay actions

  (* Recovery (never raises — see {!Proto.Durability}): decode the
     snapshot, fold every complete WAL record through [replay]
     (stopping at the first failure), merge into the boot state, and
     compact the result into a fresh snapshot. An empty store seeds an
     initial snapshot; an unreadable one degrades to amnesia. *)
  and recover t id (d : (App.state, App.msg) Proto.Durability.t) boot =
    let store = store_of t id in
    let now = Dsim.Vtime.to_seconds t.now in
    let seed_snapshot st =
      let delay = Store.install_snapshot store ~now (Wire.Codec.encode d.codec st) in
      t.n_snapshots <- t.n_snapshots + 1;
      delay
    in
    if Store.is_empty store then (boot, seed_snapshot boot)
    else begin
      let { Store.snapshot; entries; torn } = Store.read store in
      if torn then begin
        t.n_torn_recoveries <- t.n_torn_recoveries + 1;
        Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"store"
          "%a recovery dropped a torn WAL tail" Proto.Node_id.pp id
      end;
      let durable =
        match snapshot with
        | None -> None
        | Some s -> (
            match Wire.Codec.decode d.codec s with
            | Ok st ->
                let rec fold st = function
                  | [] -> st
                  | r :: rest -> (
                      match d.replay st r with
                      | Ok st' -> fold st' rest
                      | Error _ | (exception _) -> st)
                in
                Some (fold st entries)
            | Error _ | (exception _) -> None)
      in
      match durable with
      | None ->
          (* Snapshot unreadable: the disk is worthless, fall back to
             amnesia rather than poison the application. *)
          Store.wipe store;
          (boot, seed_snapshot boot)
      | Some durable ->
          let state = d.restore ~boot ~durable in
          t.n_recoveries <- t.n_recoveries + 1;
          Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"store"
            "%a recovered (%d WAL records)" Proto.Node_id.pp id (List.length entries);
          (state, seed_snapshot state)
    end

  (* ---------- event processing ---------- *)

  and process_scheduled t sched =
    t.now <- Dsim.Vtime.max t.now sched.at;
    t.n_events <- t.n_events + 1;
    t.event_occurrence <- 0;
    let saved_decisions = t.event_decisions in
    t.event_decisions <- [];
    let saved_processing = t.processing in
    t.processing <- Some sched;
    (* Everything a handler does while this event is in flight — sends,
       timers, deferred outbound batches — inherits its trace id. *)
    (match sched.ev with
    | Boot _ -> t.current_trace <- mint_trace t
    | Chaff _ | Overload_tick _ -> t.current_trace <- mint_trace t
    | Deliver { trace; _ }
    | Timer_fire { trace; _ }
    | Outbound { trace; _ }
    | Rel_ack { trace; _ }
    | Rel_retransmit { trace; _ } ->
        t.current_trace <- trace);
    (match t.obs with
    | None -> ()
    | Some o ->
        Obs.Registry.set o.o_queue_depth (float_of_int (Dsim.Heap.length t.queue)));
    (match sched.ev with
    | Boot id -> (
        match Proto.Node_id.Map.find_opt id t.nodes with
        | Some n when n.alive ->
            (* A stale Boot — something else already revived the node
               since this restart was scheduled. Idempotence says the
               later revival is a no-op. *)
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"engine"
              "%a already alive, ignoring boot" Proto.Node_id.pp id
        | prev ->
            let ctx = make_ctx t id in
            let boot, actions = App.init ctx in
            (* Bump every inherited timer generation so timers armed by a
               previous incarnation of this node can no longer fire, while
               generations the new incarnation hands out stay distinct from
               the old ones. *)
            let timer_gens =
              match prev with
              | Some p -> Smap.map (fun g -> g + 1) p.timer_gens
              | None -> Smap.empty
            in
            let incarnation = match prev with Some p -> p.incarnation + 1 | None -> 0 in
            let state, delay =
              match App.durable with None -> (boot, 0.) | Some d -> recover t id d boot
            in
            note_degraded t id ~prev:(Option.map (fun (p : node) -> p.state) prev) ~next:state;
            t.nodes <- Proto.Node_id.Map.add id { state; alive = true; timer_gens; incarnation } t.nodes;
            defer_sends t id ~delay actions;
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"engine" "%a booted"
              Proto.Node_id.pp id)
    | Deliver { src; dst; msg; sent_at; trace; rel; did; byz } -> (
        let shed_in_queue =
          match t.ov with
          | Some ov when did >= 0 -> not (ov_note_processed t ov did)
          | Some _ | None -> false
        in
        if shed_in_queue then
          (* Evicted from a bounded queue while in flight — counted (by
             cause) at shed time; the node never sees it. *)
          Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"engine"
            "delivery shed while queued %a->%a" Proto.Node_id.pp src Proto.Node_id.pp dst
        else
        match Proto.Node_id.Map.find_opt dst t.nodes with
        | Some n when n.alive ->
            let kind = App.msg_kind msg in
            if List.exists (fun f -> f.drop ~kind ~src ~dst) t.filters then begin
              t.n_filtered <- t.n_filtered + 1;
              (match t.obs with
              | None -> ()
              | Some o ->
                  let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
                  obs_drop o ~cause:"filtered" ~se ~de;
                  Obs.Span.record o.o_sink.Obs.Sink.spans ~trace ~src:se ~dst:de ~kind
                    ~enqueue:(Dsim.Vtime.to_seconds sent_at)
                    ~deliver:(Dsim.Vtime.to_seconds t.now) ~verdict:"drop:filtered");
              Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"steering"
                "filtered %s %a->%a" kind Proto.Node_id.pp src Proto.Node_id.pp dst
            end
            else begin
              let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
              (* Passive heartbeat: every arrival is evidence the sender
                 is up, feeding the phi-accrual detector. Pure
                 arithmetic — no RNG, no events — so benign runs are
                 bit-identical with the detector on or off. Stamped with
                 the observer's local reading: a drifting destination
                 mis-measures heartbeat intervals exactly as a real
                 skewed box would. *)
              (if t.fd_enabled then
                 let recovered =
                   Net.Failure_detector.heartbeat t.fd ~observer:de ~peer:se
                     ~now:(local_now t dst)
                 in
                 if recovered then begin
                   t.n_fd_recoveries <- t.n_fd_recoveries + 1;
                   match t.obs with
                   | None -> ()
                   | Some o ->
                       Obs.Registry.incr
                         (obs_handle o.o_fd_recoveries de (fun () ->
                              Obs.Registry.counter o.o_sink.Obs.Sink.registry
                                ~name:"engine_fd_recoveries"
                                ~labels:[ ("node", string_of_int de) ]))
                 end);
              let dup =
                match (rel, t.rel) with
                | Some seq, Some r ->
                    if Hashtbl.mem r.r_seen seq then true
                    else begin
                      Hashtbl.replace r.r_seen seq ();
                      false
                    end
                | (Some _ | None), _ -> false
              in
              (* Ack every tracked arrival, duplicates included — the
                 sender may have missed the first ack. *)
              (match (rel, t.rel) with
              | Some seq, Some _ -> send_ack t ~receiver:dst ~sender:src ~seq
              | (Some _ | None), _ -> ());
              if dup then begin
                (* A retransmission (or Netem duplicate) of a payload
                   already handled: acked above, but the app must not
                   see it twice. *)
                t.n_rel_dup_dropped <- t.n_rel_dup_dropped + 1;
                (match t.obs with
                | None -> ()
                | Some o -> Obs.Registry.incr o.o_rel_dup_dropped);
                Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"net"
                  "rel dedup %s %a->%a" kind Proto.Node_id.pp src Proto.Node_id.pp dst
              end
              else
              (* Application-level admission: the validator sees every
                 delivery (it must accept all honest traffic, so clean
                 runs are unchanged); a rejection is a drop, attributed
                 to the byzantine layer when the payload was a mutant.
                 Pure — consumes no randomness either way. *)
              match
                match App.validate with Some check -> check msg | None -> Ok ()
              with
              | Error reason ->
                  if byz then begin
                    t.n_byz_rejected <- t.n_byz_rejected + 1;
                    note_byz t "rejected"
                  end;
                  drop t ~src ~dst ~cause:("invalid: " ^ reason) (fun out -> App.pp_msg out msg);
                  (match t.obs with
                  | None -> ()
                  | Some o ->
                      obs_drop o ~cause:"invalid" ~se ~de;
                      Obs.Span.record o.o_sink.Obs.Sink.spans ~trace ~src:se ~dst:de ~kind
                        ~enqueue:(Dsim.Vtime.to_seconds sent_at)
                        ~deliver:(Dsim.Vtime.to_seconds t.now) ~verdict:"drop:invalid")
              | Ok () -> begin
              if byz then begin
                t.n_byz_accepted <- t.n_byz_accepted + 1;
                note_byz t "accepted"
              end;
              let latency = Dsim.Vtime.diff t.now sent_at in
              let nml = nm_link t ~se ~de in
              Net.Netmodel.observe_link_latency t.netmodel nml t.now latency;
              Net.Netmodel.observe_link_loss t.netmodel nml t.now ~delivered:true;
              if latency > 0. then
                Net.Netmodel.observe_link_bandwidth t.netmodel nml t.now
                  (float_of_int (App.msg_bytes msg) /. latency);
              t.n_delivered <- t.n_delivered + 1;
              Hashtbl.replace t.kind_counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt t.kind_counts kind));
              log_message t ~src ~dst kind;
              (match t.obs with
              | None -> ()
              | Some o ->
                  let lh =
                    obs_handle o.o_deliver (se, de) (fun () ->
                        let reg = o.o_sink.Obs.Sink.registry in
                        {
                          lo_node_deliveries =
                            obs_handle o.o_node_deliveries de (fun () ->
                                Obs.Registry.counter reg ~name:"engine_deliveries"
                                  ~labels:[ ("node", string_of_int de) ]);
                          lo_link_deliveries =
                            obs_handle o.o_link_deliveries (se, de) (fun () ->
                                Obs.Registry.counter reg ~name:"engine_link_deliveries"
                                  ~labels:
                                    [ ("src", string_of_int se); ("dst", string_of_int de) ]);
                          lo_link_latency =
                            obs_handle o.o_link_latency (se, de) (fun () ->
                                Obs.Registry.histogram reg ~name:"engine_delivery_latency_ms"
                                  ~labels:
                                    [ ("src", string_of_int se); ("dst", string_of_int de) ]
                                  ~lo:0. ~hi:2000. ~buckets:20);
                        })
                  in
                  Obs.Registry.incr lh.lo_node_deliveries;
                  Obs.Registry.incr lh.lo_link_deliveries;
                  Obs.Registry.observe lh.lo_link_latency (latency *. 1000.));
              let applicable = Proto.Handler.applicable App.receive n.state ~src msg in
              match applicable with
              | [] ->
                  Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:App.name
                    "%a: no handler for %a" Proto.Node_id.pp dst App.pp_msg msg
              | [ h ] ->
                  let ctx = make_ctx t dst in
                  apply_handler_result t dst (h.handle ctx n.state ~src msg)
              | several ->
                  (* NFA ambiguity: which handler runs is itself a choice. *)
                  let ctx = make_ctx t dst in
                  let choice =
                    Core.Choice.make ~label:("handler:" ^ kind)
                      (List.map
                         (fun (h : _ Proto.Handler.t) -> Core.Choice.alt ~describe:h.name h)
                         several)
                  in
                  let h = ctx.choose choice in
                  apply_handler_result t dst (h.handle ctx n.state ~src msg)
              end
            end
        | Some _ | None ->
            t.n_dropped <- t.n_dropped + 1;
            (match t.obs with
            | None -> ()
            | Some o ->
                let se = Proto.Node_id.to_int src and de = Proto.Node_id.to_int dst in
                obs_drop o ~cause:"dead" ~se ~de;
                Obs.Span.record o.o_sink.Obs.Sink.spans ~trace ~src:se ~dst:de
                  ~kind:(App.msg_kind msg) ~enqueue:(Dsim.Vtime.to_seconds sent_at)
                  ~deliver:(Dsim.Vtime.to_seconds t.now) ~verdict:"drop:dead");
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Debug ~component:"engine"
              "%a dead, dropping %a" Proto.Node_id.pp dst App.pp_msg msg)
    | Timer_fire { node; id; gen; deadline = _; trace } -> (
        match Proto.Node_id.Map.find_opt node t.nodes with
        | Some n when n.alive && Smap.find_opt id n.timer_gens = Some gen ->
            (match t.obs with
            | None -> ()
            | Some o ->
                let ni = Proto.Node_id.to_int node in
                Obs.Registry.incr
                  (obs_handle o.o_timer_fires ni (fun () ->
                       Obs.Registry.counter o.o_sink.Obs.Sink.registry
                         ~name:"engine_timer_fires" ~labels:[ ("node", string_of_int ni) ]));
                let at = Dsim.Vtime.to_seconds t.now in
                Obs.Span.record o.o_sink.Obs.Sink.spans ~trace ~src:ni ~dst:ni
                  ~kind:("timer:" ^ id) ~enqueue:at ~deliver:at ~verdict:"fire");
            let ctx = make_ctx t node in
            apply_handler_result t node (App.on_timer ctx n.state id)
        | Some _ | None -> ())
    | Outbound { node; incarnation; actions; trace = _ } -> (
        match Proto.Node_id.Map.find_opt node t.nodes with
        | Some n when n.alive && n.incarnation = incarnation -> perform_action t node actions
        | Some _ | None ->
            (* The node crashed (or was reborn) before its write
               completed: the withheld messages were never sent. *)
            ())
    | Rel_ack { seq; trace = _ } -> (
        match t.rel with
        | None -> ()
        | Some r -> (
            match Hashtbl.find_opt r.r_pending seq with
            | None -> ()
            | Some e ->
                rel_remove r seq e;
                t.n_rel_acked <- t.n_rel_acked + 1;
                (* an ack is the strongest health evidence the sending
                   side gets: it closes the breaker toward the pair *)
                if t.breaker_enabled then
                  Net.Circuit_breaker.record_success t.cb
                    ~src:(Proto.Node_id.to_int e.re_src) ~dst:(Proto.Node_id.to_int e.re_dst);
                (match t.obs with None -> () | Some o -> Obs.Registry.incr o.o_rel_acked)))
    | Rel_retransmit { seq; trace = _ } -> (
        match t.rel with
        | None -> ()
        | Some r -> (
            match Hashtbl.find_opt r.r_pending seq with
            | None -> ()  (* acked in the meantime: the common case *)
            | Some e -> (
                match Proto.Node_id.Map.find_opt e.re_src t.nodes with
                | Some n when n.alive ->
                    let se = Proto.Node_id.to_int e.re_src
                    and de = Proto.Node_id.to_int e.re_dst in
                    (* The sender is the observer here: its suspicion
                       levels and breaker cooldowns are judged on its
                       own clock. *)
                    let lnow = local_now t e.re_src in
                    let suspected_dst () =
                      t.fd_enabled
                      && Net.Failure_detector.suspected t.fd ~observer:se ~peer:de ~now:lnow
                    in
                    (* Bounded retransmit queue toward a suspected peer:
                       past the cap, shed instead of growing without
                       limit — the peer is silent, every pending send
                       is already being retried, and the app is told
                       through the same synthetic-timer channel as
                       give-ups so it can react. *)
                    if
                      r.r_cfg.suspect_cap > 0
                      && Option.value ~default:0 (Hashtbl.find_opt r.r_pair (se, de))
                         > r.r_cfg.suspect_cap
                      && suspected_dst ()
                    then begin
                      rel_remove r seq e;
                      note_shed t ~cause:`Rel ~se ~de;
                      Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"net"
                        "rel shed %s %a->%a (suspected peer, %d pending)"
                        (App.msg_kind e.re_msg) Proto.Node_id.pp e.re_src Proto.Node_id.pp
                        e.re_dst
                        (Option.value ~default:0 (Hashtbl.find_opt r.r_pair (se, de)));
                      let ctx = make_ctx t e.re_src in
                      apply_handler_result t e.re_src
                        (App.on_timer ctx n.state ("rel.shed:" ^ App.msg_kind e.re_msg))
                    end
                    else begin
                      (* The timeout itself is failure evidence; the
                         detector's word upgrades it to an instant trip. *)
                      (if t.breaker_enabled then begin
                         Net.Circuit_breaker.record_failure t.cb ~src:se ~dst:de ~now:lnow;
                         if suspected_dst () then
                           Net.Circuit_breaker.trip t.cb ~src:se ~dst:de ~now:lnow
                       end);
                      (* Adaptive retry budget: halve it while the
                         breaker refuses the pair or the sender's own
                         mailbox is under pressure; it recovers to the
                         full budget the moment the breaker closes. *)
                      let budget =
                        if
                          t.breaker_enabled
                          && (not (Net.Circuit_breaker.allow t.cb ~src:se ~dst:de ~now:lnow)
                             || pressure t e.re_src >= 0.5)
                        then Int.max 1 (r.r_cfg.max_retries / 2)
                        else r.r_cfg.max_retries
                      in
                      if e.re_tries >= budget then begin
                        (* Retry budget exhausted: stop, and tell the
                           sending app through a synthetic timer id so it
                           can react (or ignore it — the default catch-all
                           timer arm makes the notification opt-in). *)
                        rel_remove r seq e;
                        t.n_rel_giveups <- t.n_rel_giveups + 1;
                        (match t.obs with
                        | None -> ()
                        | Some o -> Obs.Registry.incr o.o_rel_giveups);
                        Dsim.Trace.logf t.trace t.now Dsim.Trace.Info ~component:"net"
                          "rel give-up %s %a->%a after %d retries"
                          (App.msg_kind e.re_msg) Proto.Node_id.pp e.re_src Proto.Node_id.pp
                          e.re_dst e.re_tries;
                        let ctx = make_ctx t e.re_src in
                        apply_handler_result t e.re_src
                          (App.on_timer ctx n.state ("rel.giveup:" ^ App.msg_kind e.re_msg))
                      end
                      else begin
                        let e = { e with re_tries = e.re_tries + 1 } in
                        Hashtbl.replace r.r_pending seq e;
                        (* Consult the breaker before putting bytes on
                           the wire. A refused attempt still re-arms the
                           timer, so the pending entry resolves one way
                           or the other (ack of an earlier copy, a probe
                           getting through, or give-up). *)
                        if
                          (not t.breaker_enabled)
                          || Net.Circuit_breaker.acquire t.cb ~src:se ~dst:de ~now:lnow
                        then begin
                          t.n_rel_retransmits <- t.n_rel_retransmits + 1;
                          (match t.obs with
                          | None -> ()
                          | Some o -> Obs.Registry.incr o.o_rel_retransmits);
                          transmit t ~src:e.re_src ~dst:e.re_dst ~rel:(Some seq) e.re_msg
                        end
                        else note_shed t ~cause:`Breaker ~se ~de;
                        schedule t ~after:(rel_timeout t r ~tries:e.re_tries)
                          (Rel_retransmit { seq; trace = t.current_trace })
                      end
                    end
                | Some _ | None ->
                    (* Sender died with the send outstanding — nobody is
                       left to retransmit. *)
                    rel_remove r seq e)))
    | Overload_tick { dst; gen } -> (
        match t.ov with
        | None -> ()
        | Some ov -> (
            let de = Proto.Node_id.to_int dst in
            match Hashtbl.find_opt ov.ov_bursts de with
            | Some (g, rate) when g = gen ->
                t.n_chaff <- t.n_chaff + 1;
                (* chaff source -1: a fictitious external client, so it
                   never pollutes a real link's accounting *)
                (if ov_make_room t ov ~se:(-1) ~de ~prio:chaff_prio then begin
                   let extra = float_of_int (ov_depth ov de) *. ov.ov_cfg.service_time in
                   let did = ov_register t ov ~se:(-1) ~de ~prio:chaff_prio in
                   Dsim.Heap.push t.queue
                     { at = Dsim.Vtime.add t.now (chaff_latency +. extra); ev = Chaff { dst; did } }
                 end);
                schedule t ~after:(1. /. rate) (Overload_tick { dst; gen })
            | Some _ | None -> ()  (* healed, or superseded by a newer burst *)))
    | Chaff { dst = _; did } -> (
        match t.ov with
        | None -> ()
        | Some ov -> ignore (ov_note_processed t ov did)));
    t.processing <- saved_processing;
    t.event_decisions <- saved_decisions;
    if t.check_properties then begin
      let view = global_view t in
      let now_violated =
        List.map (fun (p : _ Core.Property.t) -> p.name) (Core.Property.check App.properties view)
      in
      (* Edge-detect: one recorded violation per incident, not one per
         event while the bad state persists. *)
      List.iter
        (fun name ->
          if not (List.mem name t.violated_now) then begin
            t.violations <- (t.now, name) :: t.violations;
            t.n_violations <- t.n_violations + 1;
            Dsim.Trace.logf t.trace t.now Dsim.Trace.Error ~component:"property" "violated: %s"
              name
          end)
        now_violated;
      t.violated_now <- now_violated
    end;
    if not t.speculative then settle_rewards t

  and settle_rewards t =
    match t.reward_window with
    | None -> ()
    | Some window ->
        let due, waiting =
          List.partition (fun pr -> Dsim.Vtime.diff t.now pr.pr_at >= window) t.pending_rewards
        in
        t.pending_rewards <- waiting;
        (match due with
        | [] -> ()
        | _ :: _ ->
            let score_now = objective_score t in
            List.iter
              (fun pr ->
                pr.pr_resolver.Core.Resolver.feedback ~site:pr.pr_site ~chosen:pr.pr_chosen
                  ~reward:(score_now -. pr.pr_score))
              due)

  and run_budgeted t ~until ~budget =
    let remaining = ref budget in
    let continue = ref true in
    while !continue && !remaining > 0 do
      match Dsim.Heap.peek t.queue with
      | Some sched when Dsim.Vtime.(sched.at <= until) ->
          ignore (Dsim.Heap.pop t.queue);
          process_scheduled t sched;
          decr remaining
      | Some _ | None -> continue := false
    done;
    if Dsim.Vtime.(t.now < until) then t.now <- until

  let step t =
    match Dsim.Heap.pop t.queue with
    | None -> false
    | Some sched ->
        process_scheduled t sched;
        true

  let run_until t until = run_budgeted t ~until ~budget:max_int
  let run_for t dt = run_until t (Dsim.Vtime.add t.now dt)

  let run_until_quiescent ?(max_events = 1_000_000) t =
    let remaining = ref max_events in
    let continue = ref true in
    while !continue && !remaining > 0 do
      if not (step t) then continue := false else decr remaining
    done
end
