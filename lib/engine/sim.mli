(** The simulation engine: runs an {!Proto.App_intf.APP} over the
    discrete-event substrate and the network emulator.

    One engine instance is one deployment. Nodes are spawned, killed
    and restarted explicitly; virtual time advances only through
    {!run_until} / {!run_for} / {!step}. All randomness derives from
    the creation seed, so runs are bit-reproducible.

    The engine owns choice resolution: handlers call
    [ctx.choose] and the installed policy answers. Three families are
    built in — plain resolvers ({!set_resolver}), the fork-based
    predictive lookahead of the paper ({!set_lookahead}), and scripted
    replay used internally by the lookahead itself. *)

module Make (App : Proto.App_intf.APP) : sig
  type t

  (** Aggregate counters since creation. *)
  type stats = {
    events_processed : int;
    messages_delivered : int;
    messages_dropped : int;
    messages_filtered : int;  (** dropped by steering event filters *)
    messages_duplicated : int;  (** ghost copies injected by the fault layer *)
    messages_corrupted : int;  (** messages garbled by the fault layer *)
    decode_failures : int;
        (** corrupted messages whose wire form no longer decoded; a
            subset of [messages_corrupted] (the rest were caught by the
            modelled transport checksum), all surfaced as drops *)
    decisions : int;  (** choice points resolved *)
    lookahead_forks : int;  (** speculative branches simulated *)
  }

  (** Configuration of the predictive lookahead (paper §3.4): for each
      alternative the engine forks the simulation, forces that branch,
      runs the fork [horizon] virtual seconds (at most [max_events]
      events), and scores the resulting view with the application's
      objectives; safety violations subtract [violation_penalty].
      [scope] (default [None] = global knowledge) restricts the view the
      objectives see, keyed by the deciding node — supplying a
      neighbourhood restriction reproduces the partial-information
      regime the paper's runtime actually operates in. *)
  type lookahead = {
    horizon : float;
    max_events : int;
    violation_penalty : float;
    max_candidates : int;  (** alternatives beyond this many are not explored *)
    scope :
      (Proto.Node_id.t -> (App.state, App.msg) Proto.View.t -> (App.state, App.msg) Proto.View.t)
      option;
  }

  val default_lookahead : lookahead
  (** [{horizon = 2.0; max_events = 400; violation_penalty = 1000.;
      max_candidates = 8; scope = None}] *)

  val create :
    ?seed:int ->
    ?jitter:float ->
    ?check_properties:bool ->
    ?trace_capacity:int ->
    topology:Net.Topology.t ->
    unit ->
    t
  (** [jitter] is forwarded to {!Net.Netem.create}; [check_properties]
      (default true) evaluates the app's safety properties after every
      event. *)

  (** {1 Choice policy} *)

  val set_resolver : t -> Core.Resolver.t -> unit
  (** Installs a plain resolver (e.g. {!Core.Resolver.random}). *)

  val set_lookahead :
    t -> ?fallback:Core.Resolver.t -> ?cache:Core.Bandit.t * int -> lookahead -> unit
  (** Installs predictive resolution; [fallback] (default
      {!Core.Resolver.random}) answers nested choices inside
      speculative branches and is also used when a branch cannot be
      explored. [cache = (bandit, min_pulls)] enables the hybrid fast
      path of paper §3.4: once a site's context has absorbed
      [min_pulls * arity] training updates, the bandit answers
      directly (microseconds) instead of forking; cache misses run the
      full lookahead and train the bandit with its normalised
      per-alternative scores. *)

  val resolver_name : t -> string

  val cache_stats : t -> (int * int) option
  (** [(hits, misses)] of the hybrid cache, when one is installed. *)

  val enable_reward_feedback : t -> window:float -> unit
  (** After [window] virtual seconds, each decision is scored by the
      change in total objective since it was taken and reported to the
      resolver's [feedback] — this trains bandit resolvers online. *)

  (** {1 Deployment control} *)

  val spawn : t -> ?after:float -> Proto.Node_id.t -> unit
  (** Schedules the node's boot ([after] seconds from now, default 0).
      @raise Invalid_argument if the id exceeds the topology size or
      the node already exists. *)

  val kill : t -> Proto.Node_id.t -> unit
  (** Immediate crash: pending timers die, queued messages to the node
      will be dropped on arrival. Unknown ids are ignored. *)

  val restart : t -> ?after:float -> Proto.Node_id.t -> unit
  (** Reboots a dead node with a fresh [App.init] state. *)

  val inject : t -> ?after:float -> src:Proto.Node_id.t -> dst:Proto.Node_id.t -> App.msg -> unit
  (** Feeds an external message into the system through the emulator —
      used by workload generators. *)

  (** {1 Execution} *)

  val now : t -> Dsim.Vtime.t
  val step : t -> bool
  (** Processes one event; [false] if the queue was empty. *)

  val run_until : t -> Dsim.Vtime.t -> unit
  val run_for : t -> float -> unit
  val run_until_quiescent : ?max_events:int -> t -> unit

  (** {1 Observation} *)

  val alive : t -> Proto.Node_id.t -> bool
  val state_of : t -> Proto.Node_id.t -> App.state option
  val live_nodes : t -> (Proto.Node_id.t * App.state) list
  val global_view : t -> (App.state, App.msg) Proto.View.t
  val objective_score : t -> float
  val violations : t -> (Dsim.Vtime.t * string) list
  val stats : t -> stats

  (** [delivered_of_kind t kind] is how many messages of one
      [App.msg_kind] have been delivered so far. *)
  val delivered_of_kind : t -> string -> int

  val enable_message_log : t -> unit
  (** Starts recording every delivery as (time, src, dst, kind) — feed
      the result to {!Metrics.Seqdiag.render} for a sequence diagram.
      Off by default (it retains one entry per delivery); forks never
      log. *)

  (** Recorded deliveries, oldest first; empty when logging is off. *)
  val message_log : t -> (Dsim.Vtime.t * Proto.Node_id.t * Proto.Node_id.t * string) list
  val trace : t -> Dsim.Trace.t
  val netem : t -> Net.Netem.t
  val netmodel : t -> Net.Netmodel.t
  val decision_sites : t -> (Dsim.Vtime.t * Core.Choice.site * int) list
  (** Every resolved choice: when, where, which index — newest first. *)

  (** {1 Steering and speculation} *)

  val add_filter : t -> name:string -> (kind:string -> src:Proto.Node_id.t -> dst:Proto.Node_id.t -> bool) -> unit
  (** Installs an execution-steering event filter; a message is dropped
      when any filter returns [true] for it. *)

  val clear_filters : t -> unit

  val fork : t -> t
  (** Deep copy with an independent RNG position, a silent trace, and
      the fallback resolver installed; the original is untouched. The
      model checker and the runtime build consequence prediction on
      this. *)
end
