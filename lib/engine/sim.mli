(** The simulation engine: runs an {!Proto.App_intf.APP} over the
    discrete-event substrate and the network emulator.

    One engine instance is one deployment. Nodes are spawned, killed
    and restarted explicitly; virtual time advances only through
    {!run_until} / {!run_for} / {!step}. All randomness derives from
    the creation seed, so runs are bit-reproducible.

    The engine owns choice resolution: handlers call
    [ctx.choose] and the installed policy answers. Three families are
    built in — plain resolvers ({!set_resolver}), the fork-based
    predictive lookahead of the paper ({!set_lookahead}), and scripted
    replay used internally by the lookahead itself. *)

module Make (App : Proto.App_intf.APP) : sig
  type t

  (** Aggregate counters since creation. *)
  type stats = {
    events_processed : int;
    messages_delivered : int;
    messages_dropped : int;
    messages_filtered : int;  (** dropped by steering event filters *)
    messages_duplicated : int;  (** ghost copies injected by the fault layer *)
    messages_corrupted : int;  (** messages garbled by the fault layer *)
    messages_reordered : int;
        (** messages held back by the reorder fault (they still arrive,
            late — this counter is the only witness) *)
    decode_failures : int;
        (** corrupted messages whose wire form no longer decoded; a
            subset of [messages_corrupted] (the rest were caught by the
            modelled transport checksum), all surfaced as drops *)
    decisions : int;  (** choice points resolved *)
    lookahead_forks : int;  (** speculative branches simulated *)
    wal_appends : int;  (** write-ahead records made durable *)
    snapshots : int;  (** snapshot compactions (including boot seeds) *)
    recoveries : int;  (** boots that restored state from a disk *)
    torn_recoveries : int;  (** recoveries that dropped a torn WAL tail *)
    amnesia_wipes : int;  (** {!kill_amnesia} crashes that erased a disk *)
    torn_writes : int;  (** {!torn_write} crashes that truncated a WAL *)
    store_bytes_written : int;  (** total bytes charged to all disks *)
    rel_retransmits : int;  (** reliable-delivery retransmissions performed *)
    rel_acked : int;  (** tracked sends confirmed by an ack *)
    rel_dup_dropped : int;
        (** arrivals suppressed by the receiver's seen-set — covers both
            our own retransmissions and Netem's duplicate fault, which
            share a sequence number *)
    rel_giveups : int;  (** tracked sends abandoned after the retry budget *)
    fd_recoveries : int;
        (** heartbeats that un-suspected a peer — the failure detector's
            count of observed recoveries *)
    degraded_entries : int;  (** app-reported entries into degraded mode *)
    degraded_exits : int;  (** app-reported exits from degraded mode *)
    sheds_mailbox : int;  (** messages shed by a full bounded mailbox *)
    sheds_link : int;  (** messages shed by a full bounded link queue *)
    sheds_admission : int;  (** injects refused by the token bucket *)
    sheds_sojourn : int;
        (** injects refused by the CoDel-style sojourn gate — the oldest
            queued message had waited past the threshold *)
    rel_sheds : int;
        (** pending retransmissions shed by the suspected-peer cap
            ([reliable_config.suspect_cap]) *)
    breaker_skips : int;  (** retransmission attempts refused by an open breaker *)
    chaff_sent : int;  (** synthetic messages injected by {!overload} bursts *)
    max_mailbox_depth : int;
        (** high-water mark of any node's mailbox since creation
            (0 until {!set_overload}) *)
    clock_clamped : int;
        (** timer deadlines whose global fire instant fell in the past
            (a forward {!clock_step} jumped the node's clock over them)
            and were clamped to fire immediately — also published as
            the ["clock.clamped"] obs counter. 0 while clocks are off. *)
    byz_emitted : int;
        (** byzantine mutants delivered decodes-clean (Netem [Mutate]
            verdicts whose {!Wire.Mutator} candidate survived the
            re-decode guarantee) *)
    byz_discarded : int;
        (** [Mutate] verdicts where no candidate survived — the
            original message was delivered unchanged instead *)
    byz_rejected : int;
        (** delivered mutants bounced by the app's [validate] hook
            (surfaced as drops with cause ["invalid:<reason>"]) *)
    byz_accepted : int;
        (** delivered mutants the validator let through to a handler —
            the traffic soak invariants must survive. All four are also
            published as the ["engine_byz"] obs counter, labelled by
            outcome, lazily (byz-free runs export no new metrics). *)
  }

  (** Reliable-delivery tuning: retransmissions start after
      [base_timeout] seconds, each retry multiplies the timeout by
      [backoff] (plus up to [jitter] fraction of random spread so
      retransmissions desynchronise), and after [max_retries]
      unacknowledged attempts the send is abandoned and the sending app
      is notified through [on_timer] with the synthetic id
      ["rel.giveup:<kind>"]. Acks are [ack_bytes] on the emulated
      wire.

      [suspect_cap] bounds the retransmit queue toward a {e suspected}
      peer: when the failure detector suspects the destination and more
      than [suspect_cap] sends are already pending on that directed
      pair, further retransmission timers shed their send instead of
      retrying (counted in [stats.rel_sheds]) and notify the sender via
      the synthetic timer id ["rel.shed:<kind>"]. [0] (the default)
      disables the cap. *)
  type reliable_config = {
    base_timeout : float;
    backoff : float;
    max_retries : int;
    jitter : float;
    ack_bytes : int;
    suspect_cap : int;
  }

  val default_reliable : reliable_config
  (** [{base_timeout = 0.25; backoff = 2.0; max_retries = 5;
      jitter = 0.1; ack_bytes = 24; suspect_cap = 0}] *)

  (** Configuration of the predictive lookahead (paper §3.4): for each
      alternative the engine forks the simulation, forces that branch,
      runs the fork [horizon] virtual seconds (at most [max_events]
      events), and scores the resulting view with the application's
      objectives; safety violations subtract [violation_penalty].
      [scope] (default [None] = global knowledge) restricts the view the
      objectives see, keyed by the deciding node — supplying a
      neighbourhood restriction reproduces the partial-information
      regime the paper's runtime actually operates in. *)
  type lookahead = {
    horizon : float;
    max_events : int;
    violation_penalty : float;
    max_candidates : int;  (** alternatives beyond this many are not explored *)
    scope :
      (Proto.Node_id.t -> (App.state, App.msg) Proto.View.t -> (App.state, App.msg) Proto.View.t)
      option;
  }

  val default_lookahead : lookahead
  (** [{horizon = 2.0; max_events = 400; violation_penalty = 1000.;
      max_candidates = 8; scope = None}] *)

  val create :
    ?seed:int ->
    ?jitter:float ->
    ?check_properties:bool ->
    ?trace_capacity:int ->
    ?fsync_latency:float ->
    ?disk_bandwidth:float ->
    topology:Net.Topology.t ->
    unit ->
    t
  (** [jitter] is forwarded to {!Net.Netem.create}; [check_properties]
      (default true) evaluates the app's safety properties after every
      event. [fsync_latency] (default 0.5 ms) and [disk_bandwidth]
      (default 50 MB/s) parameterise the per-node disks backing
      {!Proto.Durability} — irrelevant when [App.durable = None]. *)

  (** {1 Choice policy} *)

  val set_resolver : t -> Core.Resolver.t -> unit
  (** Installs a plain resolver (e.g. {!Core.Resolver.random}). *)

  val set_lookahead :
    t -> ?fallback:Core.Resolver.t -> ?cache:Core.Bandit.t * int -> lookahead -> unit
  (** Installs predictive resolution; [fallback] (default
      {!Core.Resolver.random}) answers nested choices inside
      speculative branches and is also used when a branch cannot be
      explored. [cache = (bandit, min_pulls)] enables the hybrid fast
      path of paper §3.4: once a site's context has absorbed
      [min_pulls * arity] training updates, the bandit answers
      directly (microseconds) instead of forking; cache misses run the
      full lookahead and train the bandit with its normalised
      per-alternative scores. *)

  val resolver_name : t -> string

  val cache_stats : t -> (int * int) option
  (** [(hits, misses)] of the hybrid cache, when one is installed. *)

  val enable_reward_feedback : t -> window:float -> unit
  (** After [window] virtual seconds, each decision is scored by the
      change in total objective since it was taken and reported to the
      resolver's [feedback] — this trains bandit resolvers online. *)

  (** {1 Self-healing: failure detection, reliable delivery, degradation} *)

  val failure_detector : t -> Net.Failure_detector.t
  (** The shared phi-accrual detector, fed passively by every delivered
      message (observer = receiver, peer = sender). Handlers read it
      through {!Proto.Ctx.suspicion} / {!Proto.Ctx.suspected}. *)

  val set_fd_enabled : t -> bool -> unit
  (** Stops (or resumes) feeding the detector. On by default; the
      detector consumes no randomness and schedules no events, so
      toggling it never changes message behaviour — only what
      [Ctx.suspicion] reports. *)

  val enable_reliable : ?config:reliable_config -> ?kinds:string list -> t -> unit
  (** Opt-in at-least-once delivery with receiver-side dedup: every
      tracked send is retransmitted with exponential backoff until an
      ack arrives or the retry budget runs out. [kinds] restricts
      tracking to the listed [App.msg_kind]s (default: every kind).
      Retransmissions and Netem duplicates share one sequence number,
      so the receiver's seen-set suppresses both — apps observe
      each logical send at most once even under the duplication fault.
      Disabled (the default), the layer costs nothing and consumes no
      randomness.
      @raise Invalid_argument on non-positive [base_timeout] or
      [ack_bytes], [backoff < 1], or negative
      [max_retries]/[jitter]/[suspect_cap]. *)

  val degraded_nodes : t -> int
  (** Live nodes currently reporting [true] through [App.degraded];
      [0] when the app has no degraded mode. The chaos soak polls this
      to assert the system healed after the last fault cleared. *)

  (** {1 Overload robustness: bounded queues, shedding, admission} *)

  (** What to evict when a bounded queue is full. [By_priority] sheds
      the lowest [App.priority] message first (ties oldest-first, so an
      incoming message displaces the oldest queued victim of equal rank
      and is refused only when everything queued ranks strictly
      higher); with [App.priority = None] it behaves as
      [Drop_oldest]. *)
  type shed_policy = Drop_newest | Drop_oldest | By_priority

  (** Overload configuration, all knobs off by default:

      - [mailbox_capacity]: max in-flight deliveries per destination
        node (0 = unbounded). Overflow invokes [shed].
      - [link_capacity]: max in-flight deliveries per directed (src,
        dst) pair (0 = unbounded). Checked before the mailbox bound.
      - [shed]: eviction policy for both bounds.
      - [service_time]: per-queued-message processing delay in seconds;
        an admitted arrival is delayed by [depth * service_time] beyond
        its network latency, modelling a backlogged receiver (0 = free).
      - [admit_rate] / [admit_burst]: token-bucket admission control at
        the {!inject} boundary — at most [admit_rate] injects per
        virtual second sustained, bursts up to [admit_burst]
        ([admit_rate = 0.] disables the bucket).
      - [sojourn_threshold]: CoDel-style gate, also at the inject
        boundary — when the oldest message queued at the destination has
        already waited longer than this many seconds, the inject is
        shed before the queue saturates (0. disables).

      Every shed is counted by cause in {!stats} and, when a sink is
      attached, in the [engine_sheds] Obs counter labelled by cause. *)
  type overload_config = {
    mailbox_capacity : int;
    link_capacity : int;
    shed : shed_policy;
    service_time : float;
    admit_rate : float;
    admit_burst : int;
    sojourn_threshold : float;
  }

  val default_overload : overload_config
  (** [{mailbox_capacity = 0; link_capacity = 0; shed = Drop_newest;
      service_time = 0.; admit_rate = 0.; admit_burst = 1;
      sojourn_threshold = 0.}] — everything off; with this value the
      layer allocates bookkeeping but changes no behaviour and draws no
      randomness, so seeded runs stay byte-identical. *)

  val set_overload : ?config:overload_config -> t -> unit
  (** Installs (or reconfigures) the overload layer.
      @raise Invalid_argument on negative capacities, negative or NaN
      [service_time]/[admit_rate]/[sojourn_threshold], or non-positive
      [admit_burst]. *)

  val overload_limits : t -> overload_config option
  (** The installed configuration, when the layer is on. *)

  val mailbox_depth : t -> Proto.Node_id.t -> int
  (** Current queued (in-flight toward) count for one node; [0] when the
      overload layer is off. *)

  val mailbox_backlog : t -> int
  (** Max {!mailbox_depth} over all nodes right now — the soak's
      "has the system drained?" probe. [0] when the layer is off. *)

  val pressure : t -> Proto.Node_id.t -> float
  (** Queue pressure in [0, 1]: mailbox depth over capacity, clamped.
      [0.] while the layer is off or the mailbox unbounded. This is what
      handlers read through [Proto.Ctx.pressure]. *)

  val overload : t -> ?rate:float -> Proto.Node_id.t -> unit
  (** Starts a targeted injection burst: synthetic chaff messages
      arrive at the node at [rate] per virtual second (default 200.)
      until {!heal_overload}. Chaff flows through the same bounded
      queues as real traffic (at the lowest possible priority) but is
      never handed to the app. A second call replaces the running
      burst. Draws no randomness — chaff spacing and latency are
      deterministic. Installs the overload layer if missing.
      @raise Invalid_argument on a non-positive or non-finite rate. *)

  val heal_overload : t -> Proto.Node_id.t -> unit
  (** Stops the node's injection burst; idempotent. *)

  (** {1 Circuit breaker} *)

  val enable_breaker :
    ?failure_threshold:int -> ?cooldown:float -> ?half_open_probes:int -> t -> unit
  (** Turns on the per-directed-pair circuit breaker (see
      {!Net.Circuit_breaker}): retransmission timeouts record failures,
      acks record successes, and a failure-detector suspicion trips the
      pair open instantly. While a pair is open, reliable delivery
      skips the wire (counted in [stats.breaker_skips], the pending
      entry kept alive for the next timer), the retry budget halves,
      and apps can consult {!Proto.Ctx.send_allowed}. Off by default at
      zero cost. Parameters are forwarded to
      {!Net.Circuit_breaker.create}. *)

  val circuit_breaker : t -> Net.Circuit_breaker.t
  (** The engine's breaker instance (meaningful once {!enable_breaker}
      ran — before that it exists but receives no evidence). *)

  (** {1 Deployment control} *)

  val spawn : t -> ?after:float -> Proto.Node_id.t -> unit
  (** Schedules the node's boot ([after] seconds from now, default 0).
      @raise Invalid_argument if the id exceeds the topology size or
      the node already exists. *)

  val kill : t -> Proto.Node_id.t -> unit
  (** Immediate clean crash: pending timers die, queued messages to the
      node will be dropped on arrival. The node's disk survives intact,
      so a durable app recovers on restart. Unknown ids are ignored. *)

  val kill_amnesia : t -> Proto.Node_id.t -> unit
  (** Crash that also loses the disk: the node's store is wiped before
      the kill, so the next boot starts from [App.init] alone — the
      failure mode durable protocols must {e not} be asked to survive,
      kept here to demonstrate what durability buys. *)

  val torn_write : t -> Proto.Node_id.t -> unit
  (** Crash mid-append: the raw WAL is truncated at a random point
      inside its last record, then the node is killed. Recovery detects
      the torn tail by checksum, drops it, and resumes from the last
      complete record ([stats.torn_recoveries] counts this). *)

  val restart : t -> ?after:float -> Proto.Node_id.t -> unit
  (** Reboots a dead node: [App.init] runs, then (for durable apps) the
      recovery contract of {!Proto.Durability} merges what the disk
      remembers. Idempotent — restarting a live node, or racing two
      restarts of the same node, is a no-op. *)

  (** {1 Per-node clocks}

      By default every node reads the engine's global virtual clock and
      the layer is entirely off: no table exists, seeded runs are
      byte-identical to an engine without it. The first fault call
      below creates a {!Dsim.Clock} for the node; from then on that
      node's handlers see local time through [Proto.Ctx.now], its
      [Set_timer] durations are measured on its own clock (a fast clock
      fires early in global time), its failure-detector heartbeats and
      circuit-breaker cooldowns are stamped with its local reading, and
      pending timers are re-anchored whenever a later fault moves the
      clock. *)

  val set_clock_rate : t -> Proto.Node_id.t -> rate:float -> unit
  (** Drift: from now on the node's clock advances [rate] local seconds
      per global second (continuous at the switch point). [rate = 1.]
      keeps an explicit synchronized clock entry.
      @raise Invalid_argument unless [rate] is positive and finite. *)

  val clock_step : t -> Proto.Node_id.t -> offset:float -> unit
  (** Jump: the node's clock moves [offset] seconds (either sign) at
      this instant, keeping its rate. A forward step can jump over
      pending timer deadlines — those fire immediately and are counted
      in [stats.clock_clamped].
      @raise Invalid_argument if [offset] is not finite. *)

  val heal_clock : t -> Proto.Node_id.t -> unit
  (** Snap the node back onto the global clock (rate 1, zero offset)
      and drop its clock entry; pending timers re-anchor to their local
      deadlines read as global instants. Idempotent. *)

  val local_now : t -> Proto.Node_id.t -> Dsim.Vtime.t
  (** The node's local reading of the current instant; exactly {!now}
      for nodes without a clock entry. *)

  val clock_skew : t -> Proto.Node_id.t -> float
  (** [local - global] seconds for the node right now; [0.] without a
      clock entry. *)

  val clock_fingerprints : t -> (Proto.Node_id.t * int) list
  (** Fingerprints of every non-identity clock, sorted by node — the
      clock state a dedup-sound explorer world key must include. Empty
      whenever the layer is off or every clock healed. *)

  val inject : t -> ?after:float -> src:Proto.Node_id.t -> dst:Proto.Node_id.t -> App.msg -> unit
  (** Feeds an external message into the system through the emulator —
      used by workload generators. *)

  (** {1 Execution} *)

  val now : t -> Dsim.Vtime.t
  val step : t -> bool
  (** Processes one event; [false] if the queue was empty. *)

  val run_until : t -> Dsim.Vtime.t -> unit
  val run_for : t -> float -> unit
  val run_until_quiescent : ?max_events:int -> t -> unit

  (** {1 Observation} *)

  val alive : t -> Proto.Node_id.t -> bool
  val state_of : t -> Proto.Node_id.t -> App.state option
  val live_nodes : t -> (Proto.Node_id.t * App.state) list
  val global_view : t -> (App.state, App.msg) Proto.View.t
  val objective_score : t -> float
  val violations : t -> (Dsim.Vtime.t * string) list
  val stats : t -> stats

  (** [delivered_of_kind t kind] is how many messages of one
      [App.msg_kind] have been delivered so far. *)
  val delivered_of_kind : t -> string -> int

  val enable_message_log : ?capacity:int -> t -> unit
  (** Starts recording every delivery as (time, src, dst, kind) — feed
      the result to {!Metrics.Seqdiag.render} for a sequence diagram.
      Off by default. [capacity] bounds retention to the newest entries
      (default 0 = unbounded); long soaks should set it so the log
      cannot grow without bound. Forks never log.
      @raise Invalid_argument on a negative capacity. *)

  (** Recorded deliveries, oldest first (at most [capacity] of them
      when a bound is set); empty when logging is off. *)
  val message_log : t -> (Dsim.Vtime.t * Proto.Node_id.t * Proto.Node_id.t * string) list

  (** The node's simulated disk, for inspection — [None] until a
      durable app first boots there. *)
  val store : t -> Proto.Node_id.t -> Store.t option

  val trace : t -> Dsim.Trace.t

  val set_obs : t -> Obs.Sink.t option -> unit
  (** Attach (or detach) an observability sink.  While attached, the
      engine exports per-node/per-link delivery counters, drops by
      cause, a queue-depth gauge and delivery-latency histograms into
      the sink's registry, and records one causal span per message hop
      and timer fire: spans carry a trace id minted at each root send
      (boot, {!inject}) and inherited by everything a handler does in
      response — including duplicated, reordered and deferred
      deliveries.  Speculative forks never observe: {!fork} detaches
      the sink in the copy. *)

  val obs_sink : t -> Obs.Sink.t option

  val netem : t -> Net.Netem.t
  val netmodel : t -> Net.Netmodel.t
  val decision_sites : t -> (Dsim.Vtime.t * Core.Choice.site * int) list
  (** Every resolved choice: when, where, which index — newest first. *)

  (** {1 Steering and speculation} *)

  val add_filter : t -> name:string -> (kind:string -> src:Proto.Node_id.t -> dst:Proto.Node_id.t -> bool) -> unit
  (** Installs an execution-steering event filter; a message is dropped
      when any filter returns [true] for it. *)

  val clear_filters : t -> unit

  val fork : t -> t
  (** Deep copy with an independent RNG position, a silent trace, and
      the fallback resolver installed; the original is untouched. The
      model checker and the runtime build consequence prediction on
      this. *)
end
