(** Randomized chaos soaks: seeded adversarial fault schedules plus the
    harness that runs an app through one and judges the outcome.

    A {!profile} says how hostile the deployment is (how many crashes,
    partitions and degradations; how much duplication, corruption and
    reordering on every channel); {!generate} turns a seed and a
    profile into a concrete reproducible {!Faultplan.t} — same seed,
    same plan, bit for bit. {!Soak} runs an app under the plan and
    checks the two things the paper's runtime promises: safety holds
    {e during} the storm, and the app's objective recovers within a
    grace period {e after} it. *)

type profile = {
  crashes : int;  (** crash/restart pairs, distinct victims *)
  crash_mode : Faultplan.crash_mode;
      (** what each crash does to the victim's disk — {!Faultplan.Clean}
          (default) preserves it, [Amnesia] wipes it, [Torn] truncates
          the WAL mid-record; irrelevant for non-durable apps *)
  partitions : int;  (** partition/heal pairs (random split) *)
  degrades : int;  (** degrade/restore pairs (random endpoint) *)
  duplicate_rate : float;
  duplicate_copies : int;
  corrupt_rate : float;
  corrupt_flip : float;
  reorder_rate : float;
  reorder_window : float;
  flaps : int;
      (** cycles of one flapping partition (cut / heal on a cadence);
          0 (default) disables it and draws nothing from the plan RNG *)
  flap_period : float;
      (** half-period of each flap cycle in seconds. The default (30s)
          is sized to the failure detector: phi-accrual suspicion needs
          ~18s of silence to trigger, so shorter periods flap beneath
          the detector's reaction time *)
  gray_links : int;
      (** asymmetric gray failures — directed links that silently lose
          [gray_loss] of their traffic for a window while the reverse
          direction stays clean; 0 (default) disables *)
  gray_loss : float;  (** loss rate of each gray direction *)
  overload_nodes : int;
      (** targeted injection bursts — distinct victim nodes flooded
          with synthetic chaff through the engine's bounded queues;
          0 (default) disables and draws nothing from the plan RNG *)
  overload_rate : float;  (** chaff messages per virtual second per burst *)
  overload_period : float;
      (** duration of each burst in seconds (clipped to end inside the
          storm, like every other fault window) *)
  drift_nodes : int;
      (** distinct victim nodes whose local clocks run fast or slow
          (rate drawn in [1 - drift_rate, 1 + drift_rate]) for a window
          and then heal; 0 (default) disables and draws nothing from
          the plan RNG *)
  drift_rate : float;
      (** maximum fractional drift; must lie in [0, 1) so a slow clock
          still moves forward. Default 0.2 — absurd for real quartz but
          right for exercising timeout-sensitive logic *)
  clock_steps : int;
      (** NTP-style step excursions — victim nodes (distinct from the
          drift victims) whose clocks jump by a signed offset drawn in
          [±clock_step_max] and later heal; 0 (default) disables and
          draws nothing from the plan RNG *)
  clock_step_max : float;  (** maximum |offset| of each step, seconds *)
  byz_links : int;
      (** byzantine directed links: when [byz_rate > 0], this many
          random directed links each get a windowed {!Faultplan.Set_mutate}
          / [Heal_mutate] pair; 0 (the default) instead mutates the
          global channel for the whole storm *)
  byz_rate : float;
      (** probability each delivered message on a byzantine channel is
          replaced by a typed, decodes-clean mutation (see
          {!Wire.Mutator}); 0 (default) disables byzantine mutation
          entirely, emits no plan events and draws nothing from the
          plan RNG — pre-byzantine plans stay byte-identical *)
  storm : float;  (** seconds of active chaos *)
  grace : float;  (** seconds allowed for recovery after the storm *)
  protect : int list;
      (** node ids never crashed (e.g. a store's primary whose
          in-memory log is the system's only copy) *)
}

val default_profile : profile
(** Moderate hostility: 2 crashes, 1 partition, 1 degradation, 8%
    duplication, 5% corruption, 15% reordering over a 6s storm with an
    8s grace. *)

val pp_profile : Format.formatter -> profile -> unit

val generate : seed:int -> nodes:int -> profile -> Faultplan.t
(** A reproducible random plan over node ids [0 .. nodes-1]: channel
    faults switch on at t=0 and off at [storm]; every kill is
    restarted, every partition healed and every degradation restored
    by 95% of the storm, so the plan ends with the system nominally
    whole. Partition windows that would re-cut a pair still open (now
    rejected by {!Faultplan.plan}) are skipped without consuming extra
    randomness, so every other fault keeps its schedule. A flap always
    gets at least one cycle even when [2 * flap_period] exceeds the
    storm — the flap simply outlives it, still ending healed.
    @raise Invalid_argument on [nodes <= 0], a non-positive storm or
    flap period, a negative flap/gray/overload/drift/step count, a
    gray loss outside [0,1], a negative or NaN channel-fault rate
    (duplicate/corrupt/flip/reorder) or overload rate, a non-positive
    overload period, an overload burst asked for at zero rate, a drift
    rate outside [0,1), a non-finite or negative clock step max, a
    negative byzantine link count, or a byzantine mutate rate outside
    [0,1] — each with an error naming the offending knob. *)

module Soak (App : Proto.App_intf.APP) : sig
  module E : module type of Sim.Make (App)

  type outcome = {
    plan : Faultplan.t;
    violations : (Dsim.Vtime.t * string) list;
        (** safety violations observed at any point (storm or grace) *)
    recovered : bool;  (** the caller's recovery check passed *)
    self_healed : bool;
        (** no live node was still reporting [App.degraded] at the end
            of the grace period (vacuously true for apps without a
            degraded mode) *)
    heal_time : float option;
        (** grace seconds until the last degraded node recovered —
            and stayed recovered; [None] when the system never fully
            un-degraded. Sampled on a 0.25s grid *)
    shed_bounded : bool;
        (** the mailbox high-water mark never exceeded the configured
            [mailbox_capacity] — the shed policy held under the bursts
            (vacuously true while mailboxes are unbounded) *)
    overload_recovered : bool;
        (** by the end of grace the deepest queue was back within the
            backlog measured after warmup (a busy system always has a
            few messages in flight — "drained" means back to baseline,
            not empty) *)
    stats : E.stats;
    elapsed : float;  (** total virtual seconds simulated *)
  }

  val run :
    ?warmup:float ->
    setup:(E.t -> unit) ->
    recovered:(E.t -> unit -> bool) ->
    seed:int ->
    topology:Net.Topology.t ->
    profile ->
    outcome
  (** [run ~setup ~recovered ~seed ~topology profile]: [setup] spawns
      nodes and seeds workload on the fresh engine; after [warmup]
      (default 2s) the generated plan executes, the rest of the storm
      runs out, then [recovered eng] snapshots whatever baseline it
      needs and the returned thunk is asked for the verdict after
      [grace] more seconds. The engine seed equals the plan seed, so
      the whole soak is bit-reproducible. *)
end
