(** Declarative fault schedules.

    Experiments and tests describe {e what} goes wrong and {e when} —
    crashes, reboots, partitions, link degradations — as data; the plan
    is then executed against any engine while it runs. This keeps
    failure scenarios reproducible, printable, and reusable across
    protocols ("robustness to various deployment settings" needs the
    settings to be first-class). *)

(** What happens to a crashing node's disk. [Clean] keeps it intact
    (a durable app recovers on restart); [Amnesia] loses it entirely;
    [Torn] truncates the WAL mid-record, as a power cut during an
    append would. All three are identical for apps without a
    {!Proto.Durability} hook. *)
type crash_mode = Clean | Amnesia | Torn

type event =
  | Kill of int  (** crash the node with this id; its disk survives *)
  | Kill_amnesia of int  (** crash the node and wipe its disk *)
  | Torn_write of int  (** crash the node mid-append, tearing its WAL tail *)
  | Restart of int
  | Partition of int list * int list
      (** cut every link between the two groups, both directions *)
  | Heal_partition of int list * int list
  | Flap of { a : int list; b : int list; period : float; cycles : int }
      (** flapping partition: cut every link between the groups, run
          [period] seconds, heal, run [period] more — [cycles] times
          over. Ends healed; occupies [2 * period * cycles] seconds of
          the schedule, like {!Crash_storm} occupies its rounds. *)
  | Gray_link of { src : int; dst : int; loss : float }
      (** asymmetric gray failure: the [src -> dst] direction of one
          link silently drops [loss] of its traffic (latency and
          bandwidth keep their current effective values); the reverse
          direction is untouched *)
  | Heal_gray of { src : int; dst : int }
      (** undo {!Gray_link} on the directed link *)
  | Degrade of { endpoint : int; latency_factor : float; bandwidth_factor : float }
      (** multiply every path touching [endpoint] *)
  | Restore of int  (** undo {!Degrade} on the endpoint *)
  | Set_duplicate of { rate : float; copies : int }
      (** from now on, duplicate each delivered message with
          probability [rate], [copies] ghost copies each; rate 0 turns
          duplication back off *)
  | Set_corrupt of { rate : float; flip : float }
      (** from now on, garble each delivered message's wire encoding
          with probability [rate] (per-byte flip probability [flip]);
          rate 0 turns corruption back off *)
  | Set_reorder of { rate : float; window : float }
      (** from now on, hold back each message with probability [rate]
          for up to [window] extra seconds, letting later sends
          overtake it; rate 0 turns reordering back off *)
  | Crash_storm of { victims : int; period : float; rounds : int; mode : crash_mode }
      (** [rounds] rolling rounds: crash a rotation of [victims]
          nodes (in [mode]), run [period] seconds, revive them, move
          to the next rotation. Occupies [rounds * period] seconds of
          the schedule. *)
  | Overload of { node : int; rate : float }
      (** start a targeted injection burst: synthetic chaff arrives at
          [node] at [rate] messages per virtual second until the
          matching {!Heal_overload} — the engine's bounded queues and
          shed policy absorb it *)
  | Heal_overload of { node : int }  (** stop the node's injection burst *)
  | Set_clock_rate of { node : int; rate : float }
      (** from now on, [node]'s local clock runs at [rate] local
          seconds per global second (1.0 is nominal; 1.05 drifts 50ms
          ahead per second). Local time is continuous across the
          change; pending timers on the node re-anchor to the new
          rate. *)
  | Clock_step of { node : int; offset : float }
      (** jump [node]'s local clock by [offset] seconds, either
          direction — an NTP-style step. The rate is kept; timers whose
          local deadline the clock jumped past fire immediately. *)
  | Heal_clock of { node : int }
      (** snap [node]'s local clock back to global time (rate 1, zero
          offset) — the excursion ends with a discontinuity *)
  | Set_mutate of { rate : float; links : (int * int) list }
      (** from now on, byzantine-mutate each delivered message with
          probability [rate] (typed, decodes-clean perturbations via
          {!Wire.Mutator}). [links = []] applies to the global channel;
          a non-empty list pins the listed directed pairs, each riding
          on top of its current effective fault profile *)
  | Heal_mutate of { links : (int * int) list }
      (** undo the matching {!Set_mutate}: [links = []] zeroes the
          global mutate rate; a non-empty list clears the per-pair
          profiles, restoring whatever the pairs inherited before *)

type t
(** A finite schedule of timed fault events. *)

val plan : (float * event) list -> t
(** [plan events] with times in virtual seconds relative to execution
    start; events fire in time order regardless of list order.
    @raise Invalid_argument on a negative time, a [Degrade] with a
    non-positive factor, a [Partition] or [Flap] whose groups overlap,
    a fault rate outside [0,1], an [Overload] whose rate is not
    positive and finite, or a degenerate [Crash_storm] or
    [Flap]. Partition windows are also checked as a whole: a
    [Heal_partition] whose group pair was not cut earlier in the plan,
    or a second [Partition] (or [Flap]) of a pair still open, is
    rejected — group pairs are compared up to ordering, so
    [Heal_partition ([1;0], [2])] closes [Partition ([0;1], [2])].
    Overload windows get the same discipline per target node: no
    second [Overload] of a node still bursting, no [Heal_overload] of
    a node never overloaded. Clock excursions are checked per node:
    [Set_clock_rate] and [Clock_step] mark the node skewed (re-skewing
    an already-skewed node is allowed — drift-then-step is one
    excursion), and a [Heal_clock] of a node never skewed is rejected.
    A [Set_clock_rate] with a non-positive or non-finite rate, or a
    [Clock_step] with a non-finite offset, is rejected per event.
    Mutate windows are checked per scope (the sorted, deduplicated
    [links] list; [[]] is the global scope): a second [Set_mutate] of a
    scope still open, or a [Heal_mutate] of a scope never set, is
    rejected, as is a mutate event listing a self-link. *)

val events : t -> (float * event) list
(** The schedule, sorted by time. *)

val duration : t -> float
(** Time of the last event; 0 for an empty plan. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** Executors are engine-specific because engines are app-specific;
    [Run] builds one from the primitives every engine offers. *)
module Run (E : sig
  type t

  val now : t -> Dsim.Vtime.t
  val run_for : t -> float -> unit
  val kill : t -> Proto.Node_id.t -> unit
  val kill_amnesia : t -> Proto.Node_id.t -> unit
  val torn_write : t -> Proto.Node_id.t -> unit
  val restart : t -> ?after:float -> Proto.Node_id.t -> unit
  val alive : t -> Proto.Node_id.t -> bool
  val netem : t -> Net.Netem.t
  val overload : t -> ?rate:float -> Proto.Node_id.t -> unit
  val heal_overload : t -> Proto.Node_id.t -> unit
  val set_clock_rate : t -> Proto.Node_id.t -> rate:float -> unit
  val clock_step : t -> Proto.Node_id.t -> offset:float -> unit
  val heal_clock : t -> Proto.Node_id.t -> unit
end) : sig
  val execute : ?and_then:float -> E.t -> t -> unit
  (** Runs the engine through the whole plan, firing each event at its
      offset, then keeps running for [and_then] extra seconds (default
      0). Degradations are applied as link overrides relative to the
      topology's current effective paths. [Restart] events (and crash
      storm revivals) lean on the engine's idempotent restart: a node
      already alive is left alone, so composed schedules cannot crash
      the executor. *)
end
