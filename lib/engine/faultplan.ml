type crash_mode = Clean | Amnesia | Torn

type event =
  | Kill of int
  | Kill_amnesia of int
  | Torn_write of int
  | Restart of int
  | Partition of int list * int list
  | Heal_partition of int list * int list
  | Flap of { a : int list; b : int list; period : float; cycles : int }
  | Gray_link of { src : int; dst : int; loss : float }
  | Heal_gray of { src : int; dst : int }
  | Degrade of { endpoint : int; latency_factor : float; bandwidth_factor : float }
  | Restore of int
  | Set_duplicate of { rate : float; copies : int }
  | Set_corrupt of { rate : float; flip : float }
  | Set_reorder of { rate : float; window : float }
  | Crash_storm of { victims : int; period : float; rounds : int; mode : crash_mode }
  | Overload of { node : int; rate : float }
  | Heal_overload of { node : int }
  | Set_clock_rate of { node : int; rate : float }
  | Clock_step of { node : int; offset : float }
  | Heal_clock of { node : int }
  | Set_mutate of { rate : float; links : (int * int) list }
  | Heal_mutate of { links : (int * int) list }

type t = { schedule : (float * event) list }

let check_rate what r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Faultplan.plan: %s %g outside [0,1]" what r)

let validate_event = function
  | Kill _ | Kill_amnesia _ | Torn_write _ | Restart _ | Heal_partition _ | Restore _
  | Heal_gray _ -> ()
  | Partition (a, b) ->
      if List.exists (fun x -> List.mem x b) a then
        invalid_arg "Faultplan.plan: partition groups overlap"
  | Flap { a; b; period; cycles } ->
      if List.exists (fun x -> List.mem x b) a then
        invalid_arg "Faultplan.plan: flap groups overlap";
      if period <= 0. then invalid_arg "Faultplan.plan: non-positive flap period";
      if cycles <= 0 then invalid_arg "Faultplan.plan: empty flap"
  | Gray_link { src; dst; loss } ->
      if src = dst then invalid_arg "Faultplan.plan: gray link to self";
      check_rate "gray loss" loss
  | Degrade { latency_factor; bandwidth_factor; _ } ->
      if latency_factor <= 0. || bandwidth_factor <= 0. then
        invalid_arg "Faultplan.plan: non-positive degrade factor"
  | Set_duplicate { rate; copies } ->
      check_rate "duplicate rate" rate;
      if copies < 1 then invalid_arg "Faultplan.plan: duplicate copies < 1"
  | Set_corrupt { rate; flip } ->
      check_rate "corrupt rate" rate;
      check_rate "corrupt flip rate" flip
  | Set_reorder { rate; window } ->
      check_rate "reorder rate" rate;
      if window < 0. then invalid_arg "Faultplan.plan: negative reorder window"
  | Crash_storm { victims; period; rounds; mode = _ } ->
      if victims <= 0 || rounds <= 0 then invalid_arg "Faultplan.plan: empty crash storm";
      if period <= 0. then invalid_arg "Faultplan.plan: non-positive storm period"
  | Overload { node = _; rate } ->
      if not (rate > 0. && Float.is_finite rate) then
        invalid_arg "Faultplan.plan: overload rate must be positive and finite"
  | Heal_overload _ -> ()
  | Set_clock_rate { node = _; rate } ->
      if not (rate > 0. && Float.is_finite rate) then
        invalid_arg "Faultplan.plan: clock rate must be positive and finite"
  | Clock_step { node = _; offset } ->
      if not (Float.is_finite offset) then
        invalid_arg "Faultplan.plan: clock step offset not finite"
  | Heal_clock _ -> ()
  | Set_mutate { rate; links } ->
      check_rate "mutate rate" rate;
      if List.exists (fun (s, d) -> s = d) links then
        invalid_arg "Faultplan.plan: mutate link to self"
  | Heal_mutate { links } ->
      if List.exists (fun (s, d) -> s = d) links then
        invalid_arg "Faultplan.plan: mutate link to self"

(* Partitions are identified by their normalized group pair so the
   cross-event check matches a heal to its cut regardless of element
   order inside the groups or which side was listed first. *)
let partition_key a b =
  let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
  if a <= b then (a, b) else (b, a)

(* Walk the time-sorted schedule tracking which partitions are open:
   a second cut of an already-open pair would make the matching heal
   ambiguous, and a heal of a pair that was never cut is a typo in the
   plan (it silently did nothing before this check existed). Overload
   bursts get the same window discipline, keyed by target node. Clock
   faults track which nodes are currently skewed: re-skewing a skewed
   node is fine (drift then step is a legitimate excursion), but a
   [Heal_clock] of a node whose clock was never touched is a typo.
   Mutate windows get the same discipline, keyed by their (sorted) link
   scope — the empty scope being the global channel. *)
let mutate_key links = List.sort_uniq compare links

let validate_schedule schedule =
  ignore
    (List.fold_left
       (fun (opened, bursting, skewed, mutating) (_, e) ->
         match e with
         | Partition (a, b) ->
             let k = partition_key a b in
             if List.mem k opened then
               invalid_arg "Faultplan.plan: overlapping partition windows";
             (k :: opened, bursting, skewed, mutating)
         | Flap { a; b; _ } ->
             (* A flap ends healed, but while it runs the pair is cut,
                so it may not share its groups with an open partition. *)
             if List.mem (partition_key a b) opened then
               invalid_arg "Faultplan.plan: overlapping partition windows";
             (opened, bursting, skewed, mutating)
         | Heal_partition (a, b) ->
             let k = partition_key a b in
             if not (List.mem k opened) then
               invalid_arg "Faultplan.plan: heal of a partition never opened";
             (List.filter (fun k' -> k' <> k) opened, bursting, skewed, mutating)
         | Overload { node; _ } ->
             if List.mem node bursting then
               invalid_arg "Faultplan.plan: overlapping overload windows";
             (opened, node :: bursting, skewed, mutating)
         | Heal_overload { node } ->
             if not (List.mem node bursting) then
               invalid_arg "Faultplan.plan: heal of an overload never started";
             (opened, List.filter (fun n -> n <> node) bursting, skewed, mutating)
         | Set_clock_rate { node; _ } | Clock_step { node; _ } ->
             (opened, bursting, (if List.mem node skewed then skewed else node :: skewed), mutating)
         | Heal_clock { node } ->
             if not (List.mem node skewed) then
               invalid_arg "Faultplan.plan: heal of a clock never skewed";
             (opened, bursting, List.filter (fun n -> n <> node) skewed, mutating)
         | Set_mutate { links; _ } ->
             let k = mutate_key links in
             if List.mem k mutating then
               invalid_arg "Faultplan.plan: overlapping mutate windows";
             (opened, bursting, skewed, k :: mutating)
         | Heal_mutate { links } ->
             let k = mutate_key links in
             if not (List.mem k mutating) then
               invalid_arg "Faultplan.plan: heal of a mutate never set";
             (opened, bursting, skewed, List.filter (fun k' -> k' <> k) mutating)
         | _ -> (opened, bursting, skewed, mutating))
       ([], [], [], []) schedule)

let plan events =
  List.iter
    (fun (at, e) ->
      if at < 0. then invalid_arg "Faultplan.plan: negative time";
      validate_event e)
    events;
  let schedule = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) events in
  validate_schedule schedule;
  { schedule }

let events t = t.schedule
let duration t = List.fold_left (fun acc (at, _) -> Float.max acc at) 0. t.schedule

let pp_group ppf g =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    g

let pp_links ppf links =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    (fun ppf (s, d) -> Format.fprintf ppf "%d->%d" s d)
    ppf links

let pp_mode ppf = function
  | Clean -> ()
  | Amnesia -> Format.fprintf ppf ", amnesia"
  | Torn -> Format.fprintf ppf ", torn"

let pp_event ppf = function
  | Kill n -> Format.fprintf ppf "kill(%d)" n
  | Kill_amnesia n -> Format.fprintf ppf "kill_amnesia(%d)" n
  | Torn_write n -> Format.fprintf ppf "torn_write(%d)" n
  | Restart n -> Format.fprintf ppf "restart(%d)" n
  | Partition (a, b) -> Format.fprintf ppf "partition(%a | %a)" pp_group a pp_group b
  | Heal_partition (a, b) -> Format.fprintf ppf "heal(%a | %a)" pp_group a pp_group b
  | Flap { a; b; period; cycles } ->
      Format.fprintf ppf "flap(%a | %a, %.1fs half-period, x%d)" pp_group a pp_group b period
        cycles
  | Gray_link { src; dst; loss } -> Format.fprintf ppf "gray(%d->%d, loss=%.2f)" src dst loss
  | Heal_gray { src; dst } -> Format.fprintf ppf "heal_gray(%d->%d)" src dst
  | Degrade { endpoint; latency_factor; bandwidth_factor } ->
      Format.fprintf ppf "degrade(%d, lat x%.1f, bw /%.1f)" endpoint latency_factor
        (1. /. bandwidth_factor)
  | Restore n -> Format.fprintf ppf "restore(%d)" n
  | Set_duplicate { rate; copies } -> Format.fprintf ppf "duplicate(p=%.3f, x%d)" rate copies
  | Set_corrupt { rate; flip } -> Format.fprintf ppf "corrupt(p=%.3f, flip=%.3f)" rate flip
  | Set_reorder { rate; window } -> Format.fprintf ppf "reorder(p=%.3f, w=%.2fs)" rate window
  | Crash_storm { victims; period; rounds; mode } ->
      Format.fprintf ppf "crash_storm(%d victims, %.2fs period, %d rounds%a)" victims period
        rounds pp_mode mode
  | Overload { node; rate } -> Format.fprintf ppf "overload(%d, %.0f/s)" node rate
  | Heal_overload { node } -> Format.fprintf ppf "heal_overload(%d)" node
  | Set_clock_rate { node; rate } -> Format.fprintf ppf "clock_rate(%d, x%g)" node rate
  | Clock_step { node; offset } -> Format.fprintf ppf "clock_step(%d, %+gs)" node offset
  | Heal_clock { node } -> Format.fprintf ppf "heal_clock(%d)" node
  | Set_mutate { rate; links = [] } -> Format.fprintf ppf "mutate(p=%.3f)" rate
  | Heal_mutate { links = [] } -> Format.fprintf ppf "heal_mutate()"
  | Set_mutate { rate; links } ->
      Format.fprintf ppf "mutate(p=%.3f, %a)" rate pp_links links
  | Heal_mutate { links } -> Format.fprintf ppf "heal_mutate(%a)" pp_links links

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    (fun ppf (at, e) -> Format.fprintf ppf "@[%.2fs: %a@]" at pp_event e)
    ppf t.schedule

module Run (E : sig
  type t

  val now : t -> Dsim.Vtime.t
  val run_for : t -> float -> unit
  val kill : t -> Proto.Node_id.t -> unit
  val kill_amnesia : t -> Proto.Node_id.t -> unit
  val torn_write : t -> Proto.Node_id.t -> unit
  val restart : t -> ?after:float -> Proto.Node_id.t -> unit
  val alive : t -> Proto.Node_id.t -> bool
  val netem : t -> Net.Netem.t
  val overload : t -> ?rate:float -> Proto.Node_id.t -> unit
  val heal_overload : t -> Proto.Node_id.t -> unit
  val set_clock_rate : t -> Proto.Node_id.t -> rate:float -> unit
  val clock_step : t -> Proto.Node_id.t -> offset:float -> unit
  val heal_clock : t -> Proto.Node_id.t -> unit
end) =
struct
  let cross f a b =
    List.iter (fun x -> List.iter (fun y -> if x <> y then f x y) b) a

  let crash_of = function Clean -> E.kill | Amnesia -> E.kill_amnesia | Torn -> E.torn_write

  let set_faults eng f =
    let nem = E.netem eng in
    Net.Netem.set_faults nem (f (Net.Netem.global_faults nem))

  let apply eng = function
    | Kill n -> E.kill eng (Proto.Node_id.of_int n)
    | Kill_amnesia n -> E.kill_amnesia eng (Proto.Node_id.of_int n)
    | Torn_write n -> E.torn_write eng (Proto.Node_id.of_int n)
    (* Chaos plans compose schedules that may race with each other (a
       crash storm can already have revived a node a later [Restart]
       names); the engine's restart is idempotent, so racing revivals
       are harmless. *)
    | Restart n -> E.restart eng (Proto.Node_id.of_int n)
    | Partition (a, b) -> cross (fun x y -> Net.Netem.cut_bidirectional (E.netem eng) x y) a b
    | Heal_partition (a, b) ->
        cross
          (fun x y ->
            Net.Netem.heal (E.netem eng) ~src:x ~dst:y;
            Net.Netem.heal (E.netem eng) ~src:y ~dst:x)
          a b
    | Flap { a; b; period; cycles } ->
        (* A flapping partition: cut, run a half-period, heal, run a
           half-period, [cycles] times over. The link is healthy when
           the event completes; it occupies [2 * period * cycles]
           seconds of the schedule. *)
        for _ = 1 to cycles do
          cross (fun x y -> Net.Netem.cut_bidirectional (E.netem eng) x y) a b;
          E.run_for eng period;
          cross
            (fun x y ->
              Net.Netem.heal (E.netem eng) ~src:x ~dst:y;
              Net.Netem.heal (E.netem eng) ~src:y ~dst:x)
            a b;
          E.run_for eng period
        done
    | Gray_link { src; dst; loss } ->
        (* Asymmetric gray failure: one direction of one link silently
           loses [loss] of its traffic; latency and bandwidth keep
           their current effective values so nothing else changes. *)
        let nem = E.netem eng in
        let p = Net.Netem.path nem ~src ~dst in
        Net.Netem.set_override nem ~src ~dst
          (Net.Linkprop.v ~latency:p.Net.Linkprop.latency ~bandwidth:p.Net.Linkprop.bandwidth
             ~loss)
    | Heal_gray { src; dst } -> Net.Netem.clear_override (E.netem eng) ~src ~dst
    | Degrade { endpoint; latency_factor; bandwidth_factor } ->
        let nem = E.netem eng in
        let n = Net.Topology.size (Net.Netem.topology nem) in
        for other = 0 to n - 1 do
          if other <> endpoint then begin
            let slow (p : Net.Linkprop.t) =
              Net.Linkprop.v
                ~latency:(p.Net.Linkprop.latency *. latency_factor)
                ~bandwidth:(Float.max 1. (p.Net.Linkprop.bandwidth *. bandwidth_factor))
                ~loss:p.Net.Linkprop.loss
            in
            Net.Netem.set_override nem ~src:endpoint ~dst:other
              (slow (Net.Netem.path nem ~src:endpoint ~dst:other));
            Net.Netem.set_override nem ~src:other ~dst:endpoint
              (slow (Net.Netem.path nem ~src:other ~dst:endpoint))
          end
        done
    | Restore endpoint ->
        let nem = E.netem eng in
        let n = Net.Topology.size (Net.Netem.topology nem) in
        for other = 0 to n - 1 do
          if other <> endpoint then begin
            Net.Netem.clear_override nem ~src:endpoint ~dst:other;
            Net.Netem.clear_override nem ~src:other ~dst:endpoint
          end
        done
    | Set_duplicate { rate; copies } ->
        set_faults eng (fun f ->
            { f with Net.Netem.duplicate_rate = rate; duplicate_copies = copies })
    | Set_corrupt { rate; flip } ->
        set_faults eng (fun f -> { f with Net.Netem.corrupt_rate = rate; corrupt_flip = flip })
    | Set_reorder { rate; window } ->
        set_faults eng (fun f -> { f with Net.Netem.reorder_rate = rate; reorder_window = window })
    | Crash_storm { victims; period; rounds; mode } ->
        (* Rolling outage: each round crashes a deterministic rotation
           of [victims] nodes (in [mode] — cleanly, with disk loss, or
           mid-append), lets the survivors run one period, then revives
           the casualties before the next round hits. *)
        let crash = crash_of mode eng in
        let n = Net.Topology.size (Net.Netem.topology (E.netem eng)) in
        for r = 0 to rounds - 1 do
          let ids =
            List.sort_uniq compare
              (List.init (min victims n) (fun i -> ((r * victims) + i) mod n))
          in
          let killed =
            List.filter_map
              (fun i ->
                let id = Proto.Node_id.of_int i in
                if E.alive eng id then begin
                  crash id;
                  Some id
                end
                else None)
              ids
          in
          E.run_for eng period;
          List.iter (fun id -> E.restart eng id) killed;
          (* Reboots are scheduled events; process them before the next
             round decides who is alive. *)
          E.run_for eng 0.
        done
    | Overload { node; rate } -> E.overload eng ~rate (Proto.Node_id.of_int node)
    | Heal_overload { node } -> E.heal_overload eng (Proto.Node_id.of_int node)
    | Set_mutate { rate; links = [] } ->
        set_faults eng (fun f -> { f with Net.Netem.mutate_rate = rate })
    | Heal_mutate { links = [] } ->
        set_faults eng (fun f -> { f with Net.Netem.mutate_rate = 0. })
    | Set_mutate { rate; links } ->
        (* Per-pair byzantine channel: each directed link gets its own
           fault profile, inheriting whatever the pair currently sees so
           the mutation rides on top of global duplicate/corrupt/reorder
           settings instead of erasing them. *)
        let nem = E.netem eng in
        List.iter
          (fun (src, dst) ->
            let f = Net.Netem.faults_of nem ~src ~dst in
            Net.Netem.set_pair_faults nem ~src ~dst { f with Net.Netem.mutate_rate = rate })
          links
    | Heal_mutate { links } ->
        let nem = E.netem eng in
        List.iter (fun (src, dst) -> Net.Netem.clear_pair_faults nem ~src ~dst) links
    | Set_clock_rate { node; rate } -> E.set_clock_rate eng (Proto.Node_id.of_int node) ~rate
    | Clock_step { node; offset } -> E.clock_step eng (Proto.Node_id.of_int node) ~offset
    | Heal_clock { node } -> E.heal_clock eng (Proto.Node_id.of_int node)

  let execute ?(and_then = 0.) eng t =
    let start = E.now eng in
    List.iter
      (fun (at, event) ->
        let elapsed = Dsim.Vtime.diff (E.now eng) start in
        if at > elapsed then E.run_for eng (at -. elapsed);
        apply eng event)
      t.schedule;
    (* Run even when [and_then] is 0: a schedule ending in a restart
       has just queued the reboot at the current instant. *)
    E.run_for eng and_then
end
