type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* owner -> workers: new job, or shutdown *)
  finished : Condition.t;  (* workers -> owner: last worker done *)
  mutable job : (int -> unit) option;
  mutable gen : int;  (* bumped once per job; workers latch on it *)
  mutable pending : int;  (* workers still inside the current job *)
  mutable failures : (int * exn) list;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Worker [k]: sleep until the generation moves (a new job) or the pool
   closes; run the job with exceptions captured, never escaping into
   the domain (an escaped exception would kill the domain and hang
   every later join); report completion under the lock. *)
let worker_loop t k =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.closed) && t.gen = !seen do
      Condition.wait t.work t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.gen;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      let failure = try job k; None with e -> Some e in
      Mutex.lock t.mutex;
      (match failure with None -> () | Some e -> t.failures <- (k, e) :: t.failures);
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      gen = 0;
      pending = 0;
      failures = [];
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun j -> Domain.spawn (fun () -> worker_loop t (j + 1)));
  t

let size t = t.size

let run t f =
  if t.closed then invalid_arg "Pool.run: pool is shut down";
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.failures <- [];
    t.pending <- t.size - 1;
    t.gen <- t.gen + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    let own = try f 0; None with e -> Some e in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let failures = t.failures in
    t.failures <- [];
    Mutex.unlock t.mutex;
    (* Re-raise deterministically: the owner's own failure (worker 0)
       outranks, then the lowest failing worker id. *)
    match own with
    | Some e -> raise e
    | None -> (
        match List.sort (fun (a, _) (b, _) -> Int.compare a b) failures with
        | (_, e) :: _ -> raise e
        | [] -> ())
  end

let run_chunks t ~n ?chunk f =
  if n < 0 then invalid_arg "Pool.run_chunks: negative n";
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> if c < 1 then invalid_arg "Pool.run_chunks: chunk must be >= 1" else c
      | None -> max 1 ((n + (4 * t.size) - 1) / (4 * t.size))
    in
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks <= 1 then begin
      if t.closed then invalid_arg "Pool.run: pool is shut down";
      f ~worker:0 ~lo:0 ~hi:n
    end
    else
      run t (fun k ->
          let c = ref k in
          while !c < nchunks do
            let lo = !c * chunk in
            f ~worker:k ~lo ~hi:(min n (lo + chunk));
            c := !c + t.size
          done)
  end

let shutdown t =
  if not t.closed then begin
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
