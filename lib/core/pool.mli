(** A persistent domain pool for data-parallel loops.

    [Domain.spawn] costs around a millisecond — far more than a typical
    exploration level's worth of work — so spawning per loop is a net
    slowdown (the regression recorded by the first BENCH_explorer.json).
    A pool spawns its worker domains once and reuses them for every
    subsequent [run]/[run_chunks], so the per-loop cost is one
    mutex/condvar handshake.

    Discipline: one owner. [run], [run_chunks] and [shutdown] must be
    called from the thread that created the pool, never concurrently,
    and never from inside a running job. Worker bodies may share state
    only at disjoint indices (e.g. each worker writes its own slots of
    an output array); the handshake around each job provides the
    happens-before edges that make those writes visible to the owner. *)

type t

val create : domains:int -> t
(** Spawns [domains - 1] worker domains (the owner is worker [0]).
    [domains = 1] spawns nothing and makes [run] a plain call.
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Total workers, including the owner. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f k] once per worker [k] in [0 .. size-1] ([f 0]
    on the owner) and returns when all have finished. If any [f k]
    raised, the exception of the lowest such [k] is re-raised here —
    deterministically — and the pool remains usable.
    @raise Invalid_argument after [shutdown]. *)

val run_chunks : t -> n:int -> ?chunk:int -> (worker:int -> lo:int -> hi:int -> unit) -> unit
(** [run_chunks t ~n f] covers indices [0 .. n-1] with contiguous chunks
    of [chunk] indices (default: [n] split into about 4 chunks per
    worker, so a straggler chunk costs at most a quarter of one
    worker's share), dealt block-strided: worker [k] processes chunks
    [k, k+size, k+2*size, …] in order. The assignment is a pure
    function of [(n, chunk, size)] — never of timing — so any
    per-worker state (e.g. a cache shard) sees a deterministic item
    sequence. Exceptions propagate as in [run]. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; [run] afterwards raises. *)
