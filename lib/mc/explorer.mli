(** Consequence prediction (paper §2, CrystalBall): depth-bounded
    exploration of the executions reachable from a snapshot.

    A {!Make.world} is a set of node states plus in-flight messages and
    armed timers. From a world, every enabled action branches: deliver
    any pending message, drop it (modelling loss/TCP reset, when
    enabled), fire any armed timer, or inject a message from the
    under-specified {e generic node}. Choice points encountered inside
    handlers branch too — every alternative is explored, which is
    exactly how the original nondeterministic algorithm (not one
    resolved policy) gets checked.

    Exploration is untimed: it follows causally related chains of
    events, as consequence prediction does, rather than timestamps.
    Worlds are deduplicated by a two-lane structural fingerprint
    (first-lane collisions are detected via the second lane and the
    worlds kept apart); the search runs level-synchronously over an
    explicit worklist, memoizes handler outcomes in a transposition
    cache, and can fan a level out across Domains without changing any
    verdict. See DESIGN.md §"The exploration engine". *)

module Make (App : Proto.App_intf.APP) : sig
  type world = {
    states : App.state Proto.Node_id.Map.t;
    pending : (Proto.Node_id.t * Proto.Node_id.t * App.msg) list;
    timers : (Proto.Node_id.t * string) list;
    clocks : (Proto.Node_id.t * int) list;
        (** clock fingerprints of nodes whose local clocks are skewed
            (empty when all clocks track global time). Exploration is
            untimed, so the clocks never change along a path — but they
            enter the dedup fingerprint, keeping snapshots that differ
            only in clock state in separate equivalence classes. *)
  }

  (** One step along an explored path, in application terms — concrete
      enough for the steering module to build an event filter from. *)
  type step =
    | Deliver_step of { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }
    | Drop_step of { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }
    | Timer_step of { node : Proto.Node_id.t; id : string }
    | Generic_step of { dst : Proto.Node_id.t; kind : string }

  type violation = { property : string; path : step list; at_depth : int }

  type result = {
    violations : violation list;
    worlds_explored : int;
    worlds_deduped : int;
    liveness_unmet : string list;
        (** liveness properties satisfied by no explored world *)
    truncated : bool;  (** hit [max_worlds] before exhausting depth *)
    outcomes_cached : int;
        (** handler outcomes served from the transposition cache (a
            per-partition statistic: it may vary with [domains] or a
            shared [cache], unlike every other field) *)
    fingerprint_collisions : int;
        (** distinct worlds whose first-lane fingerprints collided;
            detected via the second lane and kept apart *)
  }

  (** A transposition cache memoizing handler outcomes, reusable across
      {!explore} calls (steering re-explores near-identical
      neighbourhoods every round). Entries are exact — keyed on real
      state/message equality — so sharing one never changes verdicts,
      only [outcomes_cached]. Internally sharded: worker [k] of a
      parallel phase owns shard [k] exclusively, and the shards persist
      inside this value, so every worker's memoized outcomes survive
      across calls — not just the sequential caller's. Share one cache
      with at most one explore at a time. *)
  type cache

  val create_cache : unit -> cache

  val world_of_view :
    ?timers:(Proto.Node_id.t * string) list ->
    ?clocks:(Proto.Node_id.t * int) list ->
    (App.state, App.msg) Proto.View.t ->
    world

  val explore :
    ?max_worlds:int ->
    ?include_drops:bool ->
    ?generic_node:bool ->
    ?seed:int ->
    ?cache:cache ->
    ?pool:Core.Pool.t ->
    ?domains:int ->
    ?obs:Obs.Registry.t ->
    ?obs_phase:string ->
    depth:int ->
    world ->
    result
  (** [max_worlds] (default 20_000) bounds total work. [include_drops]
      (default false) also branches on losing each pending message.
      [generic_node] (default false) injects [App.generic_msgs].
      [seed] feeds the context RNG handlers see (default 7) — handler
      randomness is explored as-is, not branched. [cache] carries
      memoized handler outcomes across calls. [pool] fans each large
      level out across the pool's persistent worker domains (small
      levels stay on the caller's thread); without it, [domains]
      (default 1) > 1 spawns a transient pool for this one call. Either
      way, any worker count yields identical results — verdicts,
      counters and representative paths — only timing and
      [outcomes_cached] (a partition statistic) change. [obs] records
      per-call profiling (worlds explored/deduped, cache hit rate, wall
      time and worlds/s — the latter two volatile) labelled with
      [obs_phase] (default ["explore"]). *)

  val iterative :
    ?max_worlds:int ->
    ?include_drops:bool ->
    ?generic_node:bool ->
    ?seed:int ->
    ?cache:cache ->
    ?pool:Core.Pool.t ->
    ?domains:int ->
    ?obs:Obs.Registry.t ->
    ?obs_phase:string ->
    max_depth:int ->
    world ->
    int * result
  (** Iterative deepening: stops at the first depth that surfaces a
      violation (so the reported paths are minimal causes — the best
      input for steering), or at [max_depth]. Returns the stopping
      depth with its result. Implemented as a single level-synchronous
      pass that halts at the end of the first violating level, rather
      than one restart per depth. *)

  val first_steps_to_violation : result -> step list
  (** Deduplicated first steps of all violating paths — the actions
      execution steering would veto. *)

  val pp_step : Format.formatter -> step -> unit
end
