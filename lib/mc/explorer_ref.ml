(* Reference implementation of consequence prediction, kept verbatim
   from before the fingerprinted worklist rewrite of {!Explorer}.

   It digests every world by pretty-printing it through [Format] into
   an MD5 and explores by recursive DFS with restart-per-depth
   iterative deepening. It exists only as an oracle: the differential
   suite ([test_mc_diff]) pins the rewritten explorer's verdicts
   against it, and the explorer benchmark reports speedups relative to
   it. Do not use it from production paths. *)

module Make (App : Proto.App_intf.APP) = struct
  type world = {
    states : App.state Proto.Node_id.Map.t;
    pending : (Proto.Node_id.t * Proto.Node_id.t * App.msg) list;
    timers : (Proto.Node_id.t * string) list;
  }

  type step =
    | Deliver_step of { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }
    | Drop_step of { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }
    | Timer_step of { node : Proto.Node_id.t; id : string }
    | Generic_step of { dst : Proto.Node_id.t; kind : string }

  type violation = { property : string; path : step list; at_depth : int }

  type result = {
    violations : violation list;
    worlds_explored : int;
    worlds_deduped : int;
    liveness_unmet : string list;
    truncated : bool;
  }

  let pp_step ppf = function
    | Deliver_step { src; dst; kind } ->
        Format.fprintf ppf "deliver(%s %a->%a)" kind Proto.Node_id.pp src Proto.Node_id.pp dst
    | Drop_step { src; dst; kind } ->
        Format.fprintf ppf "drop(%s %a->%a)" kind Proto.Node_id.pp src Proto.Node_id.pp dst
    | Timer_step { node; id } -> Format.fprintf ppf "timer(%a.%s)" Proto.Node_id.pp node id
    | Generic_step { dst; kind } -> Format.fprintf ppf "generic(%s ->%a)" kind Proto.Node_id.pp dst

  let world_of_view ?(timers = []) (view : (App.state, App.msg) Proto.View.t) =
    {
      states =
        List.fold_left (fun m (id, s) -> Proto.Node_id.Map.add id s m) Proto.Node_id.Map.empty
          view.nodes;
      pending = view.inflight;
      timers;
    }

  let view_of_world w : (App.state, App.msg) Proto.View.t =
    {
      time = Dsim.Vtime.zero;
      nodes = Proto.Node_id.Map.bindings w.states;
      inflight = w.pending;
    }

  let digest w =
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Proto.Node_id.Map.iter
      (fun id s -> Format.fprintf ppf "%a=%a;" Proto.Node_id.pp id App.pp_state s)
      w.states;
    List.iter
      (fun (a, b, m) ->
        Format.fprintf ppf "%a>%a:%a;" Proto.Node_id.pp a Proto.Node_id.pp b App.pp_msg m)
      w.pending;
    List.iter (fun (n, id) -> Format.fprintf ppf "T%a.%s;" Proto.Node_id.pp n id) w.timers;
    Format.pp_print_flush ppf ();
    Digest.string (Buffer.contents buf)

  (* Runs a handler body under a decision script: choice occurrence [o]
     answers [script(o)], defaulting to alternative 0. Returns the
     result plus the (occurrence, arity) pairs encountered, so the
     caller can enumerate the remaining branches. *)
  let run_scripted ~seed ~self script body =
    let arities = ref [] in
    let occurrence = ref 0 in
    let choose : type a. a Core.Choice.t -> a =
     fun c ->
      let o = !occurrence in
      incr occurrence;
      let arity = Core.Choice.arity c in
      arities := (o, arity) :: !arities;
      let i =
        match List.assoc_opt o script with Some i -> min i (arity - 1) | None -> 0
      in
      Core.Choice.nth c i
    in
    let ctx : Proto.Ctx.t =
      {
        self;
        now = Dsim.Vtime.zero;
        rng = Dsim.Rng.create seed;
        net = Net.Netmodel.create ();
        fd = Net.Failure_detector.create ();
        cb = Net.Circuit_breaker.create ();
        pressure = (fun () -> 0.);
        choose;
      }
    in
    let result = body ctx in
    (result, List.rev !arities)

  (* All outcomes of a handler body over every combination of choice
     alternatives, enumerated without duplicates: after running one
     script, branch on each later occurrence's non-default alternatives,
     and in the recursion only branch beyond that occurrence. *)
  let all_outcomes ~seed ~self body =
    let acc = ref [] in
    let rec go script frontier =
      let result, arities = run_scripted ~seed ~self script body in
      acc := result :: !acc;
      List.iter
        (fun (occ, arity) ->
          if occ >= frontier && arity > 1 then
            for i = 1 to arity - 1 do
              go (script @ [ (occ, i) ]) (occ + 1)
            done)
        arities
    in
    go [] 0;
    List.rev !acc

  let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

  let apply_actions w node actions =
    List.fold_left
      (fun w action ->
        match action with
        | Proto.Action.Send { dst; msg } -> { w with pending = w.pending @ [ (node, dst, msg) ] }
        | Proto.Action.Set_timer { id; _ } ->
            if List.mem (node, id) w.timers then w
            else { w with timers = w.timers @ [ (node, id) ] }
        | Proto.Action.Cancel_timer id ->
            { w with timers = List.filter (fun e -> e <> (node, id)) w.timers }
        | Proto.Action.Note _ -> w)
      w actions

  (* Outcomes of delivering [msg] from [src] at [dst] in [w] (with the
     message already removed): one world per (handler, choice-combo). *)
  let deliver_outcomes ~seed w ~src ~dst msg =
    match Proto.Node_id.Map.find_opt dst w.states with
    | None -> [ w ]
    | Some state -> (
        match Proto.Handler.applicable App.receive state ~src msg with
        | [] -> [ w ]
        | handlers ->
            List.concat_map
              (fun (h : _ Proto.Handler.t) ->
                all_outcomes ~seed ~self:dst (fun ctx -> h.handle ctx state ~src msg)
                |> List.map (fun (state', actions) ->
                       apply_actions
                         { w with states = Proto.Node_id.Map.add dst state' w.states }
                         dst actions))
              handlers)

  let timer_outcomes ~seed w ~node ~id =
    match Proto.Node_id.Map.find_opt node w.states with
    | None -> [ w ]
    | Some state ->
        all_outcomes ~seed ~self:node (fun ctx -> App.on_timer ctx state id)
        |> List.map (fun (state', actions) ->
               apply_actions { w with states = Proto.Node_id.Map.add node state' w.states } node
                 actions)

  let rec iterative_from ~explore ~max_depth depth world =
    let result = explore ~depth world in
    if result.violations <> [] || depth >= max_depth then (depth, result)
    else iterative_from ~explore ~max_depth (depth + 1) world

  let first_steps_to_violation result =
    List.sort_uniq compare
      (List.filter_map
         (fun v -> match v.path with [] -> None | s :: _ -> Some s)
         result.violations)

  let explore ?(max_worlds = 20_000) ?(include_drops = false) ?(generic_node = false) ?(seed = 7)
      ~depth root =
    if depth < 0 then invalid_arg "Explorer.explore: negative depth";
    let visited : (Digest.t, unit) Hashtbl.t = Hashtbl.create 1024 in
    let violations = ref [] in
    let explored = ref 0 in
    let deduped = ref 0 in
    let truncated = ref false in
    let liveness = List.filter (fun (p : _ Core.Property.t) -> p.kind = Core.Property.Liveness) App.properties in
    let liveness_sat : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let rec go w path d =
      if !explored >= max_worlds then truncated := true
      else begin
        let dg = digest w in
        if Hashtbl.mem visited dg then incr deduped
        else begin
          Hashtbl.replace visited dg ();
          incr explored;
          let view = view_of_world w in
          List.iter
            (fun (p : _ Core.Property.t) ->
              violations :=
                { property = p.name; path = List.rev path; at_depth = d } :: !violations)
            (Core.Property.check App.properties view);
          List.iter
            (fun (p : _ Core.Property.t) ->
              if p.holds view then Hashtbl.replace liveness_sat p.name ())
            liveness;
          if d < depth then begin
            (* Deliveries (and optionally drops) of each pending message. *)
            List.iteri
              (fun i (src, dst, msg) ->
                let kind = App.msg_kind msg in
                let without = { w with pending = remove_nth i w.pending } in
                List.iter
                  (fun w' -> go w' (Deliver_step { src; dst; kind } :: path) (d + 1))
                  (deliver_outcomes ~seed without ~src ~dst msg);
                if include_drops then go without (Drop_step { src; dst; kind } :: path) (d + 1))
              w.pending;
            (* Armed timers. *)
            List.iter
              (fun (node, id) ->
                List.iter
                  (fun w' -> go w' (Timer_step { node; id } :: path) (d + 1))
                  (timer_outcomes ~seed w ~node ~id))
              w.timers;
            (* The generic node sends anything from the app's alphabet. *)
            if generic_node then
              Proto.Node_id.Map.iter
                (fun dst state ->
                  List.iter
                    (fun (sender, msg) ->
                      let kind = App.msg_kind msg in
                      List.iter
                        (fun w' -> go w' (Generic_step { dst; kind } :: path) (d + 1))
                        (deliver_outcomes ~seed w ~src:sender ~dst msg))
                    (App.generic_msgs state))
                w.states
          end
        end
      end
    in
    go root [] 0;
    let liveness_unmet =
      List.filter_map
        (fun (p : _ Core.Property.t) ->
          if Hashtbl.mem liveness_sat p.name then None else Some p.name)
        liveness
    in
    {
      violations = List.rev !violations;
      worlds_explored = !explored;
      worlds_deduped = !deduped;
      liveness_unmet;
      truncated = !truncated;
    }

  let iterative ?max_worlds ?include_drops ?generic_node ?seed ~max_depth world =
    if max_depth < 1 then invalid_arg "Explorer.iterative: max_depth must be >= 1";
    iterative_from
      ~explore:(fun ~depth w -> explore ?max_worlds ?include_drops ?generic_node ?seed ~depth w)
      ~max_depth 1 world
end
