(** Execution steering (paper §2): decide, from a snapshot, whether an
    imminent action leads to a safety violation and whether vetoing it
    is itself safe.

    The verdict is computed purely on explorer worlds; installing the
    resulting event filters into a live engine is the runtime's job.
    An action is only vetoed if re-exploring the world {e without} it
    surfaces no violation of a property that was not already doomed —
    the paper's "if consequence prediction does not find any new
    inconsistencies due to execution steering". *)

module Make (App : Proto.App_intf.APP) : sig
  module Ex : module type of Explorer.Make (App)

  (** A filter to install: drop deliveries matching this triple. *)
  type veto = { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }

  type verdict =
    | No_violation
    | Steer of veto list  (** safe filters covering offending first steps *)
    | Cannot_steer of string list
        (** violations predicted, but every candidate filter introduced
            new ones; the property names are reported *)

  (** Exploration work behind one verdict, summed over the base
      explore and every candidate-veto re-explore — the number the
      runtime should account steering budgets against. *)
  type stats = {
    worlds_explored : int;
    worlds_deduped : int;
    outcomes_cached : int;
    fingerprint_collisions : int;
  }

  val decide :
    ?max_worlds:int ->
    ?include_drops:bool ->
    ?generic_node:bool ->
    ?seed:int ->
    ?cache:Ex.cache ->
    ?pool:Core.Pool.t ->
    ?domains:int ->
    ?obs:Obs.Registry.t ->
    depth:int ->
    Ex.world ->
    verdict

  val decide_with_stats :
    ?max_worlds:int ->
    ?include_drops:bool ->
    ?generic_node:bool ->
    ?seed:int ->
    ?cache:Ex.cache ->
    ?pool:Core.Pool.t ->
    ?domains:int ->
    ?obs:Obs.Registry.t ->
    depth:int ->
    Ex.world ->
    verdict * stats
  (** Like {!decide}, also reporting the exploration work done. A
      supplied [cache] (or one created internally) is shared across
      the base and per-veto explores; pass a persistent one to reuse
      outcomes across steering rounds. [pool] (or, without one,
      [domains] > 1 with a transient pool) fans each explore's large
      levels out across persistent worker domains; verdicts never
      depend on either. [obs] profiles each underlying explore (phases
      ["steer-base"] / ["steer-veto"]) plus per-round verdict counters
      and volatile round wall time. *)

  val pp_veto : Format.formatter -> veto -> unit
end
