module Make (App : Proto.App_intf.APP) = struct
  module Nm = Proto.Node_id.Map

  type world = {
    states : App.state Proto.Node_id.Map.t;
    pending : (Proto.Node_id.t * Proto.Node_id.t * App.msg) list;
    timers : (Proto.Node_id.t * string) list;
    clocks : (Proto.Node_id.t * int) list;
  }

  type step =
    | Deliver_step of { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }
    | Drop_step of { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }
    | Timer_step of { node : Proto.Node_id.t; id : string }
    | Generic_step of { dst : Proto.Node_id.t; kind : string }

  type violation = { property : string; path : step list; at_depth : int }

  type result = {
    violations : violation list;
    worlds_explored : int;
    worlds_deduped : int;
    liveness_unmet : string list;
    truncated : bool;
    outcomes_cached : int;
    fingerprint_collisions : int;
  }

  let pp_step ppf = function
    | Deliver_step { src; dst; kind } ->
        Format.fprintf ppf "deliver(%s %a->%a)" kind Proto.Node_id.pp src Proto.Node_id.pp dst
    | Drop_step { src; dst; kind } ->
        Format.fprintf ppf "drop(%s %a->%a)" kind Proto.Node_id.pp src Proto.Node_id.pp dst
    | Timer_step { node; id } -> Format.fprintf ppf "timer(%a.%s)" Proto.Node_id.pp node id
    | Generic_step { dst; kind } -> Format.fprintf ppf "generic(%s ->%a)" kind Proto.Node_id.pp dst

  let world_of_view ?(timers = []) ?(clocks = []) (view : (App.state, App.msg) Proto.View.t) =
    {
      states =
        List.fold_left (fun m (id, s) -> Proto.Node_id.Map.add id s m) Proto.Node_id.Map.empty
          view.nodes;
      pending = view.inflight;
      timers;
      clocks;
    }

  (* ---------- Fingerprints ----------

     Dedup keys worlds by a pair of independent 63-bit lanes instead of
     an MD5 of the pretty-printed world. The first lane indexes the
     visited table; the second is stored and checked, so a first-lane
     collision between structurally distinct worlds is {e detected}
     (counted in [fingerprint_collisions]) and the worlds kept apart,
     reproducing the effectively collision-free behavior of the old
     digest. Per-element fingerprints (one per node state, one per
     pending message) are cached in the internal world representation
     and combined with a cheap mixer, so deriving a successor world
     only hashes what changed. *)

  let mix h k =
    let h = h lxor ((k + 0x9e3779b9) * 0x2545F4914F6CDD1D) in
    let h = (h lsl 13) lor ((h land max_int) lsr 50) in
    (h * 5) + 0x38495ab5

  let render pp v =
    let buf = Buffer.create 64 in
    let ppf = Format.formatter_of_buffer buf in
    pp ppf v;
    Format.pp_print_flush ppf ();
    Buffer.contents buf

  (* Per-node state fingerprint pair. The app hook, when present, must
     match [pp_state]'s equivalence classes (see {!App_intf.APP}); the
     fallback hashes the [pp_state] rendering itself, which is exact by
     construction and done once per distinct reached state rather than
     once per world. *)
  let state_fp =
    match App.fingerprint with
    | Some f -> fun st ->
        let h = f st in
        (mix 0x12345 h, mix 0x6789a (h lxor 0x0F0F0F0F))
    | None ->
        fun st ->
          let s = render App.pp_state st in
          (Hashtbl.hash s, Hashtbl.seeded_hash 0x3ade68b1 s)

  let msg_fp m =
    let s = render App.pp_msg m in
    (Hashtbl.hash s, Hashtbl.seeded_hash 0x3ade68b1 s)

  (* Internal world: the public shape plus cached per-element
     fingerprints, so world keys are an integer fold, not a render. *)
  type pmsg = {
    p_src : Proto.Node_id.t;
    p_dst : Proto.Node_id.t;
    p_msg : App.msg;
    p_fp1 : int;
    p_fp2 : int;
  }

  type iworld = {
    i_states : App.state Nm.t;
    i_sfp : (int * int) Nm.t;
    i_pending : pmsg list;
    i_timers : (Proto.Node_id.t * string) list;
    i_clocks : (Proto.Node_id.t * int) list;
        (* clock fingerprints of skewed nodes, fixed for the whole
           explore — exploration is untimed, but two snapshots that
           differ only in clock state must not dedup to one world *)
  }

  let iworld_of_world (w : world) =
    {
      i_states = w.states;
      i_sfp = Nm.map state_fp w.states;
      i_pending =
        List.map
          (fun (src, dst, msg) ->
            let f1, f2 = msg_fp msg in
            { p_src = src; p_dst = dst; p_msg = msg; p_fp1 = f1; p_fp2 = f2 })
          w.pending;
      i_timers = w.timers;
      i_clocks = w.clocks;
    }

  let view_of_iworld iw : (App.state, App.msg) Proto.View.t =
    {
      time = Dsim.Vtime.zero;
      nodes = Nm.bindings iw.i_states;
      inflight = List.map (fun p -> (p.p_src, p.p_dst, p.p_msg)) iw.i_pending;
    }

  let world_key iw =
    let h1 = ref 0x42 and h2 = ref 0x1337 in
    Nm.iter
      (fun id (f1, f2) ->
        let n = Proto.Node_id.to_int id in
        h1 := mix (mix !h1 n) f1;
        h2 := mix (mix !h2 (n + 1)) f2)
      iw.i_sfp;
    List.iter
      (fun p ->
        let s = Proto.Node_id.to_int p.p_src and d = Proto.Node_id.to_int p.p_dst in
        h1 := mix (mix (mix !h1 s) d) p.p_fp1;
        h2 := mix (mix (mix !h2 (s + 1)) (d + 1)) p.p_fp2)
      iw.i_pending;
    List.iter
      (fun (n, id) ->
        let i = Proto.Node_id.to_int n in
        h1 := mix (mix !h1 i) (Hashtbl.hash id);
        h2 := mix (mix !h2 (i + 1)) (Hashtbl.seeded_hash 0x3ade68b1 id))
      iw.i_timers;
    List.iter
      (fun (n, fp) ->
        let i = Proto.Node_id.to_int n in
        h1 := mix (mix !h1 (i + 2)) fp;
        h2 := mix (mix !h2 (i + 3)) (fp lxor 0x5ca1ab1e))
      iw.i_clocks;
    (!h1, !h2)

  (* Runs a handler body under a decision script: choice occurrence [o]
     answers [script(o)], defaulting to alternative 0. Returns the
     result plus the (occurrence, arity) pairs encountered, so the
     caller can enumerate the remaining branches. *)
  let run_scripted ~seed ~self script body =
    let arities = ref [] in
    let occurrence = ref 0 in
    let choose : type a. a Core.Choice.t -> a =
     fun c ->
      let o = !occurrence in
      incr occurrence;
      let arity = Core.Choice.arity c in
      arities := (o, arity) :: !arities;
      let i =
        match List.assoc_opt o script with Some i -> min i (arity - 1) | None -> 0
      in
      Core.Choice.nth c i
    in
    let ctx : Proto.Ctx.t =
      {
        self;
        now = Dsim.Vtime.zero;
        rng = Dsim.Rng.create seed;
        net = Net.Netmodel.create ();
        fd = Net.Failure_detector.create ();
        cb = Net.Circuit_breaker.create ();
        pressure = (fun () -> 0.);
        choose;
      }
    in
    let result = body ctx in
    (result, List.rev !arities)

  (* All outcomes of a handler body over every combination of choice
     alternatives, enumerated without duplicates: after running one
     script, branch on each later occurrence's non-default alternatives,
     and in the recursion only branch beyond that occurrence. *)
  let all_outcomes ~seed ~self body =
    let acc = ref [] in
    let rec go script frontier =
      let result, arities = run_scripted ~seed ~self script body in
      acc := result :: !acc;
      List.iter
        (fun (occ, arity) ->
          if occ >= frontier && arity > 1 then
            for i = 1 to arity - 1 do
              go (script @ [ (occ, i) ]) (occ + 1)
            done)
        arities
    in
    go [] 0;
    List.rev !acc

  let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

  (* ---------- Transposition cache ----------

     Handler outcomes are pure functions of (state, src, msg, seed) —
     each scripted run builds a fresh RNG and net model — so they can
     be memoized across worlds and across explore calls. Keys compare
     with real state/message equality (fingerprints only speed up
     hashing), so a cache hit is exact, never a hash-collision guess.
     Cached entries hold the successor state's fingerprint and each
     sent message's fingerprint, so replaying a hit does no rendering
     at all. *)

  type pact =
    | P_send of { dst : Proto.Node_id.t; msg : App.msg; fp1 : int; fp2 : int }
    | P_set of string
    | P_cancel of string

  type outcome = { o_state : App.state; o_fp : int * int; o_acts : pact list }

  type dkey = {
    dk_state : App.state;
    dk_sfp : int;
    dk_src : int;
    dk_msg : App.msg;
    dk_mh : int;
    dk_seed : int;
  }

  module Dcache = Hashtbl.Make (struct
    type t = dkey

    let equal a b =
      a.dk_sfp = b.dk_sfp && a.dk_src = b.dk_src && a.dk_mh = b.dk_mh && a.dk_seed = b.dk_seed
      && App.equal_state a.dk_state b.dk_state
      && a.dk_msg = b.dk_msg

    let hash k = Hashtbl.hash (k.dk_sfp, k.dk_src, k.dk_mh, k.dk_seed)
  end)

  type tkey = { tk_state : App.state; tk_sfp : int; tk_id : string; tk_seed : int }

  module Tcache = Hashtbl.Make (struct
    type t = tkey

    let equal a b =
      a.tk_sfp = b.tk_sfp && a.tk_seed = b.tk_seed && String.equal a.tk_id b.tk_id
      && App.equal_state a.tk_state b.tk_state

    let hash k = Hashtbl.hash (k.tk_sfp, k.tk_id, k.tk_seed)
  end)

  type shard = {
    c_deliver : outcome list Dcache.t;  (* [] encodes "no applicable handler" *)
    c_timer : outcome list Tcache.t;
    mutable c_hits : int;
    mutable c_lookups : int;  (* hits + misses, for hit-rate profiling *)
  }

  (* The public cache is an array of independent shards: worker [k] of a
     parallel phase owns shard [k] exclusively, so no lock is needed,
     and because the whole array persists inside the caller's [cache],
     every worker's memoized outcomes survive across explore calls and
     steering rounds — not just worker 0's. Shards are only ever added
     (on the owning thread, between parallel phases) when a pool wants
     more workers than the cache has seen before. *)
  type cache = { mutable shards : shard array }

  let create_shard () =
    { c_deliver = Dcache.create 4096; c_timer = Tcache.create 256; c_hits = 0; c_lookups = 0 }

  let create_cache () = { shards = [| create_shard () |] }

  let ensure_shards cache w =
    let have = Array.length cache.shards in
    if have < w then
      cache.shards <-
        Array.init w (fun k -> if k < have then cache.shards.(k) else create_shard ())

  let cache_hits cache = Array.fold_left (fun a s -> a + s.c_hits) 0 cache.shards
  let cache_lookups cache = Array.fold_left (fun a s -> a + s.c_lookups) 0 cache.shards

  (* Bound memory on pathological workloads; steering neighbourhoods
     stay far below this. *)
  let cache_cap = 200_000

  let precompute (state', actions) =
    let o_acts =
      List.filter_map
        (function
          | Proto.Action.Send { dst; msg } ->
              let fp1, fp2 = msg_fp msg in
              Some (P_send { dst; msg; fp1; fp2 })
          | Proto.Action.Set_timer { id; _ } -> Some (P_set id)
          | Proto.Action.Cancel_timer id -> Some (P_cancel id)
          | Proto.Action.Note _ -> None)
        actions
    in
    { o_state = state'; o_fp = state_fp state'; o_acts }

  (* Outcomes of delivering [msg] from [src] at [dst] — one per
     (handler, choice-combo), [] when no handler applies — memoized in
     the worker's cache shard. *)
  let cached_deliver shard ~seed iw ~src ~dst msg =
    match Nm.find_opt dst iw.i_states with
    | None -> `Unchanged
    | Some state -> (
        let sfp = fst (Nm.find dst iw.i_sfp) in
        let key =
          {
            dk_state = state;
            dk_sfp = sfp;
            dk_src = Proto.Node_id.to_int src;
            dk_msg = msg;
            dk_mh = Hashtbl.hash msg;
            dk_seed = seed;
          }
        in
        shard.c_lookups <- shard.c_lookups + 1;
        match Dcache.find_opt shard.c_deliver key with
        | Some outs ->
            shard.c_hits <- shard.c_hits + 1;
            if outs = [] then `Unchanged else `Outcomes (dst, outs)
        | None ->
            let outs =
              match Proto.Handler.applicable App.receive state ~src msg with
              | [] -> []
              | handlers ->
                  List.concat_map
                    (fun (h : _ Proto.Handler.t) ->
                      all_outcomes ~seed ~self:dst (fun ctx -> h.handle ctx state ~src msg)
                      |> List.map precompute)
                    handlers
            in
            if Dcache.length shard.c_deliver >= cache_cap then Dcache.reset shard.c_deliver;
            Dcache.add shard.c_deliver key outs;
            if outs = [] then `Unchanged else `Outcomes (dst, outs))

  let cached_timer shard ~seed iw ~node ~id =
    match Nm.find_opt node iw.i_states with
    | None -> `Unchanged
    | Some state -> (
        let sfp = fst (Nm.find node iw.i_sfp) in
        let key = { tk_state = state; tk_sfp = sfp; tk_id = id; tk_seed = seed } in
        shard.c_lookups <- shard.c_lookups + 1;
        match Tcache.find_opt shard.c_timer key with
        | Some outs ->
            shard.c_hits <- shard.c_hits + 1;
            `Outcomes (node, outs)
        | None ->
            let outs =
              all_outcomes ~seed ~self:node (fun ctx -> App.on_timer ctx state id)
              |> List.map precompute
            in
            if Tcache.length shard.c_timer >= cache_cap then Tcache.reset shard.c_timer;
            Tcache.add shard.c_timer key outs;
            `Outcomes (node, outs))

  (* Rebuild a world around one node's outcome. Sends append to pending
     in action order through a reversed accumulator (the old
     implementation appended one element per Send, quadratically);
     timers keep the historical insertion-ordered-unique list — the
     digest was order-sensitive, so canonicalizing into a set here
     would coarsen dedup classes, and timer lists are tiny anyway. *)
  let apply_outcome iw node (o : outcome) =
    let i_states = Nm.add node o.o_state iw.i_states in
    let i_sfp = Nm.add node o.o_fp iw.i_sfp in
    let sends_rev, i_timers =
      List.fold_left
        (fun (sends, timers) -> function
          | P_send { dst; msg; fp1; fp2 } ->
              ({ p_src = node; p_dst = dst; p_msg = msg; p_fp1 = fp1; p_fp2 = fp2 } :: sends,
               timers)
          | P_set id ->
              (sends, if List.mem (node, id) timers then timers else timers @ [ (node, id) ])
          | P_cancel id -> (sends, List.filter (fun e -> e <> (node, id)) timers))
        ([], iw.i_timers) o.o_acts
    in
    let i_pending =
      match sends_rev with [] -> iw.i_pending | _ -> iw.i_pending @ List.rev sends_rev
    in
    { iw with i_states; i_sfp; i_pending; i_timers }

  (* All successor worlds of [iw], as (step, world) pairs, in exactly
     the old recursive branching order: deliveries (then the optional
     drop) of each pending message in order, then armed timers, then
     generic-node injections. *)
  let successors shard ~seed ~include_drops ~generic_node iw =
    let acc = ref [] in
    let add step w = acc := (step, w) :: !acc in
    List.iteri
      (fun i p ->
        let kind = App.msg_kind p.p_msg in
        let without = { iw with i_pending = remove_nth i iw.i_pending } in
        let step = Deliver_step { src = p.p_src; dst = p.p_dst; kind } in
        (match cached_deliver shard ~seed without ~src:p.p_src ~dst:p.p_dst p.p_msg with
        | `Unchanged -> add step without
        | `Outcomes (node, outs) ->
            List.iter (fun o -> add step (apply_outcome without node o)) outs);
        if include_drops then add (Drop_step { src = p.p_src; dst = p.p_dst; kind }) without)
      iw.i_pending;
    List.iter
      (fun (node, id) ->
        let step = Timer_step { node; id } in
        match cached_timer shard ~seed iw ~node ~id with
        | `Unchanged -> add step iw
        | `Outcomes (node, outs) -> List.iter (fun o -> add step (apply_outcome iw node o)) outs)
      iw.i_timers;
    if generic_node then
      Nm.iter
        (fun dst state ->
          List.iter
            (fun (sender, msg) ->
              let kind = App.msg_kind msg in
              let step = Generic_step { dst; kind } in
              match cached_deliver shard ~seed iw ~src:sender ~dst msg with
              | `Unchanged -> add step iw
              | `Outcomes (node, outs) ->
                  List.iter (fun o -> add step (apply_outcome iw node o)) outs)
            (App.generic_msgs state))
        iw.i_states;
    List.rev !acc

  (* ---------- Worklist exploration ---------- *)

  type frontier_item = { fw : iworld; fpath : step list (* reversed *) }

  type analysis = {
    a_viols : string list;
    a_live : string list;
    a_succs : (step * iworld) list;
  }

  (* Dedup verdicts, precomputed in parallel and consumed by the
     sequential budget merge. *)
  let v_new = 0
  and v_dup = 1
  and v_collision = 2

  (* Frontiers below this size run on the owning thread even when a
     pool is attached: one pool handshake costs a few microseconds, so
     fan-out only pays once a level carries at least a comparable
     amount of per-item work. Steering-sized neighbourhood explores
     (tens of worlds per level) stay sequential. *)
  let par_threshold = 128

  let explore_levels ~max_worlds ~include_drops ~generic_node ~seed ~cache ~pool ~domains
      ~depth ~early_stop root =
    if depth < 0 then invalid_arg "Explorer.explore: negative depth";
    if domains < 1 then invalid_arg "Explorer.explore: domains must be >= 1";
    if max_worlds < 0 then invalid_arg "Explorer.explore: negative max_worlds";
    (* Without a caller-supplied pool, [domains > 1] gets a transient
       one — spawned once per call, not once per level. *)
    let owned_pool =
      match (pool, domains) with
      | None, d when d > 1 -> Some (Core.Pool.create ~domains:d)
      | _ -> None
    in
    let pool = match pool with Some p -> Some p | None -> owned_pool in
    Fun.protect ~finally:(fun () -> Option.iter Core.Pool.shutdown owned_pool) @@ fun () ->
    let w = match pool with Some p -> Core.Pool.size p | None -> 1 in
    let parallel n =
      match pool with Some p -> Core.Pool.size p > 1 && n >= par_threshold | None -> false
    in
    let cache = match cache with Some c -> c | None -> create_cache () in
    ensure_shards cache w;
    let hits0 = cache_hits cache in
    let lookups0 = cache_lookups cache in
    (* The visited table is sharded by first-lane hash: in a parallel
       dedup pass each worker owns exactly the keys that route to its
       shard, so shards are written lock-free. Routing depends only on
       the key, never on [w]'s partitioning of the frontier, and the
       budget is applied afterwards by a sequential in-order merge —
       see DESIGN.md §8 for why verdicts stay byte-identical to
       [domains = 1]. *)
    let visited : (int, int list ref) Hashtbl.t array =
      Array.init w (fun _ -> Hashtbl.create 1024)
    in
    let shard_of k1 = (k1 land max_int) mod w in
    let collisions = ref 0 in
    let violations = ref [] in
    let explored = ref 0 in
    let deduped = ref 0 in
    let truncated = ref false in
    let liveness =
      List.filter (fun (p : _ Core.Property.t) -> p.kind = Core.Property.Liveness) App.properties
    in
    let liveness_sat : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let frontier = ref [| { fw = iworld_of_world root; fpath = [] } |] in
    let level = ref 0 in
    let stop_level = ref 0 in
    let continue = ref true in
    let no_analysis = { a_viols = []; a_live = []; a_succs = [] } in
    while !continue do
      let d = !level in
      let items = !frontier in
      let n = Array.length items in
      (* Phase A1: world keys, pure per item (chunked when large). *)
      let keys = Array.make n (0, 0) in
      let key_range lo hi =
        for i = lo to hi - 1 do
          keys.(i) <- world_key items.(i).fw
        done
      in
      (match pool with
      | Some p when parallel n ->
          Core.Pool.run_chunks p ~n (fun ~worker:_ ~lo ~hi -> key_range lo hi)
      | Some _ | None -> key_range 0 n);
      (* Phase A2: dedup verdicts. Worker [k] scans the whole key array
         but touches only the keys its shard owns, in frontier order —
         so each verdict depends only on earlier same-shard keys and is
         independent of both [w] and the budget. *)
      let verdicts = Array.make n v_new in
      let dedup_key k i =
        let k1, k2 = keys.(i) in
        let tbl = visited.(k) in
        match Hashtbl.find_opt tbl k1 with
        | Some lane2 when List.mem k2 !lane2 -> verdicts.(i) <- v_dup
        | Some lane2 ->
            verdicts.(i) <- v_collision;
            lane2 := k2 :: !lane2
        | None ->
            Hashtbl.add tbl k1 (ref [ k2 ]);
            verdicts.(i) <- v_new
      in
      (match pool with
      | Some p when parallel n ->
          Core.Pool.run p (fun k ->
              for i = 0 to n - 1 do
                if shard_of (fst keys.(i)) = k then dedup_key k i
              done)
      | Some _ | None ->
          for i = 0 to n - 1 do
            dedup_key (shard_of (fst keys.(i))) i
          done);
      (* Phase A3 (sequential): the budget-and-count merge, in frontier
         order, replaying exactly the old per-candidate check order.
         Entries inserted by A2 for items the budget then rejects are
         unobservable: truncation is a one-way latch, so no later item
         of any level consults the table again. *)
      let survivors = ref [] in
      Array.iteri
        (fun i item ->
          if !explored >= max_worlds then truncated := true
          else begin
            let v = verdicts.(i) in
            if v = v_dup then incr deduped
            else begin
              if v = v_collision then incr collisions;
              incr explored;
              survivors := item :: !survivors
            end
          end)
        items;
      let survivors = Array.of_list (List.rev !survivors) in
      (* Phase B: property checks and successor generation, pure per
         item, fanned out in block-strided chunks; worker [k] memoizes
         into cache shard [k]. *)
      let expand = d < depth in
      let m = Array.length survivors in
      let analyses = Array.make m no_analysis in
      let analyze shard item =
        let view = view_of_iworld item.fw in
        let a_viols =
          List.map
            (fun (p : _ Core.Property.t) -> p.name)
            (Core.Property.check App.properties view)
        in
        let a_live =
          List.filter_map
            (fun (p : _ Core.Property.t) -> if p.holds view then Some p.name else None)
            liveness
        in
        let a_succs =
          if expand then successors shard ~seed ~include_drops ~generic_node item.fw else []
        in
        { a_viols; a_live; a_succs }
      in
      (match pool with
      | Some p when parallel m ->
          Core.Pool.run_chunks p ~n:m (fun ~worker ~lo ~hi ->
              let shard = cache.shards.(worker) in
              for i = lo to hi - 1 do
                analyses.(i) <- analyze shard survivors.(i)
              done)
      | Some _ | None ->
          let shard = cache.shards.(0) in
          for i = 0 to m - 1 do
            analyses.(i) <- analyze shard survivors.(i)
          done);
      (* Phase C (sequential): merge in frontier order. *)
      let next = ref [] in
      Array.iteri
        (fun i item ->
          let a = analyses.(i) in
          List.iter
            (fun property ->
              violations := { property; path = List.rev item.fpath; at_depth = d } :: !violations)
            a.a_viols;
          List.iter (fun name -> Hashtbl.replace liveness_sat name ()) a.a_live;
          List.iter
            (fun (step, w') -> next := { fw = w'; fpath = step :: item.fpath } :: !next)
            a.a_succs)
        survivors;
      frontier := Array.of_list (List.rev !next);
      stop_level := d;
      if early_stop && d >= 1 && !violations <> [] then continue := false
      else if d >= depth || Array.length !frontier = 0 then continue := false
      else incr level
    done;
    let liveness_unmet =
      List.filter_map
        (fun (p : _ Core.Property.t) ->
          if Hashtbl.mem liveness_sat p.name then None else Some p.name)
        liveness
    in
    let hits = cache_hits cache - hits0 in
    let lookups = cache_lookups cache - lookups0 in
    ( !stop_level,
      {
        violations = List.rev !violations;
        worlds_explored = !explored;
        worlds_deduped = !deduped;
        liveness_unmet;
        truncated = !truncated;
        outcomes_cached = hits;
        fingerprint_collisions = !collisions;
      },
      lookups )

  (* Per-call profiling into a metrics registry.  Counters are
     deterministic per seed; anything derived from the wall clock
     (phase timing, worlds/s) is registered volatile so it never leaks
     into a deterministic export. *)
  let record_obs reg ~phase ~wall (r : result) ~lookups =
    let labels = [ ("phase", phase) ] in
    let c name = Obs.Registry.counter reg ~name ~labels in
    Obs.Registry.incr (c "mc_explores");
    Obs.Registry.incr ~by:r.worlds_explored (c "mc_worlds_explored");
    Obs.Registry.incr ~by:r.worlds_deduped (c "mc_worlds_deduped");
    Obs.Registry.incr ~by:r.outcomes_cached (c "mc_outcomes_cached");
    Obs.Registry.incr ~by:r.fingerprint_collisions (c "mc_fingerprint_collisions");
    if lookups > 0 then
      Obs.Registry.set
        (Obs.Registry.gauge reg ~name:"mc_cache_hit_rate" ~labels)
        (float_of_int r.outcomes_cached /. float_of_int lookups);
    Obs.Registry.observe
      (Obs.Registry.histogram ~volatile:true reg ~name:"mc_explore_wall_ms" ~labels ~lo:0.
         ~hi:10_000. ~buckets:20)
      (wall *. 1000.);
    if wall > 0. then
      Obs.Registry.set
        (Obs.Registry.gauge ~volatile:true reg ~name:"mc_worlds_per_sec" ~labels)
        (float_of_int r.worlds_explored /. wall)

  let explore ?(max_worlds = 20_000) ?(include_drops = false) ?(generic_node = false) ?(seed = 7)
      ?cache ?pool ?(domains = 1) ?obs ?(obs_phase = "explore") ~depth root =
    let t0 = if obs = None then 0. else Unix.gettimeofday () in
    let _, result, lookups =
      explore_levels ~max_worlds ~include_drops ~generic_node ~seed ~cache ~pool ~domains ~depth
        ~early_stop:false root
    in
    (match obs with
    | None -> ()
    | Some reg ->
        record_obs reg ~phase:obs_phase ~wall:(Unix.gettimeofday () -. t0) result ~lookups);
    result

  (* Single-pass replacement for restart-per-depth iterative deepening:
     level-synchronous search stops at the end of the first level (>= 1)
     that has surfaced a violation, which is exactly the state the old
     implementation reached by re-exploring at depth 1, 2, … *)
  let iterative ?(max_worlds = 20_000) ?(include_drops = false) ?(generic_node = false)
      ?(seed = 7) ?cache ?pool ?(domains = 1) ?obs ?(obs_phase = "iterative") ~max_depth world =
    if max_depth < 1 then invalid_arg "Explorer.iterative: max_depth must be >= 1";
    let t0 = if obs = None then 0. else Unix.gettimeofday () in
    let stop_level, result, lookups =
      explore_levels ~max_worlds ~include_drops ~generic_node ~seed ~cache ~pool ~domains
        ~depth:max_depth ~early_stop:true world
    in
    (match obs with
    | None -> ()
    | Some reg ->
        record_obs reg ~phase:obs_phase ~wall:(Unix.gettimeofday () -. t0) result ~lookups);
    let depth = if result.violations <> [] then max 1 stop_level else max_depth in
    (depth, result)

  let first_steps_to_violation result =
    List.sort_uniq compare
      (List.filter_map
         (fun v -> match v.path with [] -> None | s :: _ -> Some s)
         result.violations)
end
