module Make (App : Proto.App_intf.APP) = struct
  module Ex = Explorer.Make (App)

  type veto = { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }

  type verdict = No_violation | Steer of veto list | Cannot_steer of string list

  let pp_veto ppf v =
    Format.fprintf ppf "veto(%s %a->%a)" v.kind Proto.Node_id.pp v.src Proto.Node_id.pp v.dst

  let property_set result =
    List.sort_uniq String.compare
      (List.map (fun (v : Ex.violation) -> v.property) result.Ex.violations)

  let without_delivery (w : Ex.world) veto =
    let dropped = ref false in
    let pending =
      List.filter
        (fun (src, dst, msg) ->
          let matches =
            (not !dropped)
            && Proto.Node_id.equal src veto.src
            && Proto.Node_id.equal dst veto.dst
            && String.equal (App.msg_kind msg) veto.kind
          in
          if matches then dropped := true;
          not matches)
        w.Ex.pending
    in
    { w with Ex.pending }

  type stats = {
    worlds_explored : int;
    worlds_deduped : int;
    outcomes_cached : int;
    fingerprint_collisions : int;
  }

  let decide_with_stats ?max_worlds ?include_drops ?generic_node ?seed ?cache ?pool ?domains
      ?obs ~depth world =
    (* One transposition cache spans the base explore and every
       candidate-veto re-explore: steered worlds differ from the base
       by a single removed delivery, so almost every handler outcome
       repeats. *)
    let cache = match cache with Some c -> c | None -> Ex.create_cache () in
    let t0 = if obs = None then 0. else Unix.gettimeofday () in
    let phase = ref "steer-base" in
    let stats =
      ref
        { worlds_explored = 0; worlds_deduped = 0; outcomes_cached = 0; fingerprint_collisions = 0 }
    in
    let explore w =
      let r =
        Ex.explore ?max_worlds ?include_drops ?generic_node ?seed ~cache ?pool ?domains ?obs
          ~obs_phase:!phase ~depth w
      in
      stats :=
        {
          worlds_explored = !stats.worlds_explored + r.Ex.worlds_explored;
          worlds_deduped = !stats.worlds_deduped + r.Ex.worlds_deduped;
          outcomes_cached = !stats.outcomes_cached + r.Ex.outcomes_cached;
          fingerprint_collisions = !stats.fingerprint_collisions + r.Ex.fingerprint_collisions;
        };
      r
    in
    let base = explore world in
    phase := "steer-veto";
    let verdict =
      match base.Ex.violations with
      | [] -> No_violation
      | _ :: _ ->
          let doomed = property_set base in
          let candidates =
            List.filter_map
              (fun step ->
                match step with
                | Ex.Deliver_step { src; dst; kind } -> Some { src; dst; kind }
                | Ex.Drop_step _ | Ex.Timer_step _ | Ex.Generic_step _ -> None)
              (Ex.first_steps_to_violation base)
          in
          let safe =
            List.filter
              (fun veto ->
                let steered = explore (without_delivery world veto) in
                (* Safe iff steering surfaces no property beyond those the
                   un-steered future already violates. *)
                List.for_all (fun p -> List.mem p doomed) (property_set steered))
              candidates
          in
          (match safe with [] -> Cannot_steer doomed | _ :: _ -> Steer safe)
    in
    (match obs with
    | None -> ()
    | Some reg ->
        Obs.Registry.incr (Obs.Registry.counter reg ~name:"mc_steer_rounds" ~labels:[]);
        let name =
          match verdict with
          | No_violation -> "no_violation"
          | Steer _ -> "steer"
          | Cannot_steer _ -> "cannot_steer"
        in
        Obs.Registry.incr
          (Obs.Registry.counter reg ~name:"mc_steer_verdicts" ~labels:[ ("verdict", name) ]);
        Obs.Registry.observe
          (Obs.Registry.histogram ~volatile:true reg ~name:"mc_steer_wall_ms" ~labels:[]
             ~lo:0. ~hi:10_000. ~buckets:20)
          ((Unix.gettimeofday () -. t0) *. 1000.));
    (verdict, !stats)

  let decide ?max_worlds ?include_drops ?generic_node ?seed ?cache ?pool ?domains ?obs ~depth
      world =
    fst
      (decide_with_stats ?max_worlds ?include_drops ?generic_node ?seed ?cache ?pool ?domains
         ?obs ~depth world)
end
