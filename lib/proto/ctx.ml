(** Per-invocation handler context.

    The context is the only channel through which a handler touches the
    runtime: the current virtual time, a deterministic random stream,
    the shared network model (read-only, for building features), and —
    centrally — [choose], which submits a {!Core.Choice.t} to the
    installed resolver. The [choose] field is polymorphic so one
    context serves choices over any value type. *)

type t = {
  self : Node_id.t;
  now : Dsim.Vtime.t;
  rng : Dsim.Rng.t;
  net : Net.Netmodel.t;
  fd : Net.Failure_detector.t;
      (** shared failure detector (read-only): suspicion levels the
          engine has accrued from passive heartbeats *)
  cb : Net.Circuit_breaker.t;
      (** shared per-pair circuit breakers (read-only): outbound-path
          health the engine has accrued from acks, retransmission
          timeouts and sheds *)
  pressure : unit -> float;
      (** queue pressure at this node in [0,1]: current mailbox depth
          over its capacity; 0 when queues are unbounded *)
  choose : 'a. 'a Core.Choice.t -> 'a;
}

(** Convenience: expected transfer time in milliseconds to [dst] for a
    [bytes]-sized message according to the network model; [default_ms]
    when the model has no data. Handlers use this to build choice
    features such as [("rtt_ms", …)]. *)
let predicted_ms ?(bytes = 512) ?(default_ms = 50.) t dst =
  match
    Net.Netmodel.predict_transfer_time t.net ~src:(Node_id.to_int t.self)
      ~dst:(Node_id.to_int dst) ~now:t.now ~bytes
  with
  | Some s -> s *. 1000.
  | None -> default_ms

(** Confidence of the latency estimate towards [dst] (0 when unknown). *)
let link_confidence t dst =
  (Net.Netmodel.latency t.net ~src:(Node_id.to_int t.self) ~dst:(Node_id.to_int dst)
     ~now:t.now)
    .Net.Netmodel.confidence

(** Suspicion level for [peer] in [0,1]: 0 = freshly heard (or no
    evidence yet), 1 = the silence has crossed the detector's phi
    threshold. The dual of {!link_confidence}: confidence decays with
    the age of what we know, suspicion accrues with the age of what we
    miss. *)
let suspicion t peer =
  Net.Failure_detector.suspicion t.fd ~observer:(Node_id.to_int t.self)
    ~peer:(Node_id.to_int peer) ~now:t.now

(** [suspicion >= 1], i.e. phi has crossed the detector threshold. *)
let suspected t peer =
  Net.Failure_detector.suspected t.fd ~observer:(Node_id.to_int t.self)
    ~peer:(Node_id.to_int peer) ~now:t.now

(** Queue pressure at this node in [0,1]: current in-flight mailbox
    depth over the configured capacity. 0 when the engine runs with
    unbounded queues, so pressure-reactive protocol branches are dead
    code on the default configuration. *)
let pressure t = t.pressure ()

(** Would the circuit breaker admit a send from this node to [dst] right
    now? [true] when the breaker towards [dst] is closed, or half-open
    with probe budget remaining. Read-only: consulting it never consumes
    a half-open probe (the engine's reliable-delivery path does that). *)
let send_allowed t dst =
  Net.Circuit_breaker.allow t.cb ~src:(Node_id.to_int t.self)
    ~dst:(Node_id.to_int dst) ~now:t.now
