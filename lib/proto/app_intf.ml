(** The application signature — what a protocol must provide to run on
    the engine (the Mace-framework substitute).

    A node is a state machine: [init] produces the boot state, guarded
    {!Handler.t}s consume messages, [on_timer] consumes timer fires.
    Handlers are pure ([state] must be immutable); all effects travel
    through the returned {!Action.t} list. This purity is load-bearing:
    it makes checkpoints O(1) and lets the model checker and the
    lookahead machinery clone and replay executions freely. *)

module type APP = sig
  type state
  type msg

  val name : string

  val equal_state : state -> state -> bool
  (** Structural equality; used by the explorer to deduplicate visited
      global states. *)

  val pp_state : Format.formatter -> state -> unit
  val pp_msg : Format.formatter -> msg -> unit

  val msg_kind : msg -> string
  (** Coarse message class, e.g. ["join"]. Names the implicit handler
      choice and keys event filters installed by execution steering. *)

  val msg_bytes : msg -> int
  (** Wire size used by the network emulator for transmission delay. *)

  val msg_codec : msg Wire.Codec.t option
  (** Real wire encoding, when the app has one. The engine's
      corruption fault acts on this encoding — flipped bytes are run
      back through [decode], so codec error paths are exercised by
      genuinely garbled inputs. [None] opts out: corrupted messages
      are then dropped without a decode attempt. *)

  val validate : (msg -> (unit, string) result) option
  (** Application-level admission check, run on every delivered message
      before any handler. [Error reason] drops the message (surfaced as
      a drop with cause ["invalid:<reason>"]); byzantine-mutated
      deliveries that fail it count as [stats.byz_rejected], ones that
      pass as [byz_accepted]. The check must be pure, total and cheap
      (it runs on the delivery hot path), and must accept {e every}
      message an honest node can produce — it exists to bounce
      semantically-mutated traffic (out-of-range ballots, foreign key
      ranges, impossible digests), not to second-guess the protocol.
      [None] skips the check at zero cost. *)

  val fingerprint : (state -> int) option
  (** Cheap structural fingerprint used by the explorer to deduplicate
      visited worlds without rendering states through [pp_state].

      Contract: the fingerprint must induce {e the same} equivalence
      classes as the [pp_state] rendering on reachable states — states
      with equal prints must hash equal (or dedup misses worlds it used
      to merge), and states with distinct prints should hash distinct
      (or dedup merges worlds it used to keep apart). When [pp_state]
      prints a lossy summary, mirror exactly the fields it prints.
      [None] falls back to hashing the [pp_state] rendering itself,
      which is always class-exact and, thanks to per-state caching in
      the explorer, already far cheaper than the historical
      whole-world digest. *)

  val durable : (state, msg) Durability.t option
  (** What this protocol must persist to survive a crash, and how to
      recover it (see {!Durability}). [None] means total amnesia on
      restart — the engine then reboots the node through [init] alone,
      exactly as before the persistence layer existed, at zero cost. *)

  val degraded : (state -> bool) option
  (** Self-reported degraded mode: [Some f] when the protocol can enter
      a reduced-service mode under suspected failures (a kv store going
      read-only, a paxos proposer stepping down). The engine
      edge-detects transitions of [f] across every state change and
      counts them ([stats.degraded_entries] / [degraded_exits], plus
      per-node [Obs.Registry] counters), and the chaos soak asserts
      every node has exited the mode after the final heal. [None] means
      the protocol has no such mode — nothing is tracked. *)

  val priority : (msg -> int) option
  (** Relative shed priority of a message, higher = more important.
      Consulted only by the engine's [By_priority] shed policy when a
      bounded mailbox or link queue overflows: the lowest-priority
      queued message is shed first (ties broken oldest-first). [None]
      means all messages rank equal — [By_priority] then degrades to
      [Drop_oldest]. Must be cheap and total; it runs on the delivery
      hot path for every queued message of an overflowing node. *)

  val init : Ctx.t -> state * msg Action.t list
  (** Boot: runs once when the node joins the system. *)

  val receive : (state, msg) Handler.t list
  (** Guarded handlers; several may apply to one message (NFA style). *)

  val on_timer : Ctx.t -> state -> string -> state * msg Action.t list

  val properties : (state, msg) View.t Core.Property.t list
  (** Exposed safety/liveness properties (§3.2). *)

  val objectives : (state, msg) View.t Core.Objective.t list
  (** Exposed performance objectives (§3.2); higher is better. *)

  val generic_msgs : state -> (Node_id.t * msg) list
  (** Messages an under-specified {e generic node} (§3.3.2) could
      plausibly send to a node in [state], as (sender, message) pairs
      with a fictitious sender id. Bounded and typically small; the
      explorer injects these to look beyond the collected
      neighbourhood. Return [[]] to disable. *)
end
