(** The persistence contract between an application and the engine.

    An app that opts in (via {!App_intf.APP.durable}) describes what
    survives a crash and how: [codec] is the snapshot encoding of its
    durable projection (non-durable fields — timers, sessions,
    in-flight bookkeeping — may encode as anything; [restore] decides
    what is believed), [log] turns one state transition into at most
    one write-ahead record, [replay] applies a record during recovery,
    and [restore] merges the recovered durable state into the state a
    fresh boot produced.

    The engine enforces the write-ahead discipline: a transition whose
    [log] returns a record has its outbound messages withheld until
    the simulated disk reports the record durable, so no node ever
    tells a peer something its disk could still forget. Recovery is
    total: a torn or corrupt WAL tail is dropped (and counted by the
    engine), a snapshot that no longer decodes falls back to amnesia —
    recovery never raises into the engine.

    Recovery contract, in order:
    + the engine runs [App.init] normally, producing [boot];
    + an empty store seeds an initial snapshot of [boot] and recovery
      ends there;
    + otherwise the snapshot is decoded with [codec] and every
      complete WAL record is folded through [replay] (stopping at the
      first failure), yielding [durable];
    + the node resumes with [restore ~boot ~durable], which is also
      compacted into a fresh snapshot.

    The ['msg] parameter ties the hook to its app signature; it keeps
    room for durability of in-flight messages without another
    signature change. *)

type ('state, 'msg) t = {
  codec : 'state Wire.Codec.t;
      (** snapshot codec for the durable projection of the state *)
  log : prev:'state -> next:'state -> string option;
      (** the WAL record this transition must make durable, if any *)
  replay : 'state -> string -> ('state, string) result;
      (** fold one WAL record into a recovering state *)
  restore : boot:'state -> durable:'state -> 'state;
      (** merge recovered durable fields into a freshly booted state *)
  snapshot_every : int;
      (** compact the WAL into a snapshot after this many records *)
}

(** [v codec] builds the naive strategy: every changed state appends a
    full snapshot record, recovery believes the durable state
    wholesale. [equal] (default structural equality) suppresses
    records for transitions that left the state unchanged — supply a
    real equality when the state contains sets or maps whose internal
    shape is insertion-order dependent. Apps with cheaper deltas
    supply their own [log]/[replay]; apps whose durable part is a
    projection supply [restore]. *)
let v ?(snapshot_every = 32) ?equal ?log ?replay ?restore codec =
  if snapshot_every <= 0 then invalid_arg "Durability.v: snapshot_every must be positive";
  let equal = match equal with Some e -> e | None -> Stdlib.( = ) in
  let log =
    match log with
    | Some l -> l
    | None ->
        fun ~prev ~next -> if equal prev next then None else Some (Wire.Codec.encode codec next)
  in
  let replay =
    match replay with Some r -> r | None -> fun _st record -> Wire.Codec.decode codec record
  in
  let restore =
    match restore with Some r -> r | None -> fun ~boot:_ ~durable -> durable
  in
  { codec; log; replay; restore; snapshot_every }
