(** A Chord-style DHT with the routing choice exposed (paper §3.1:
    "choosing the node to forward a message to").

    Nodes sit on a 256-position ring with static finger tables; lookups
    are forwarded until they reach the key's owner, who replies to the
    origin. Classic Chord hard-codes {e greedy-by-progress} forwarding
    (halve the remaining distance); proximity-aware variants (PNS)
    hard-code {e greedy-by-RTT}. Here every hop exposes the candidate
    fingers that make progress (label {!route_label}) with both
    progress and predicted-RTT features, and the policy is whichever
    resolver the runtime installs. *)

module Int_map = Map.Make (Int)

let ring_bits = 8
let ring_size = 1 lsl ring_bits

type msg =
  | Lookup of { key : int; origin : Proto.Node_id.t; born : float; hops : int }
  | Found of { key : int; owner : Proto.Node_id.t; born : float; hops : int }

let msg_kind = function Lookup _ -> "lookup" | Found _ -> "found"
let msg_bytes = function Lookup _ -> 64 | Found _ -> 64

let pp_msg ppf = function
  | Lookup { key; hops; _ } -> Format.fprintf ppf "lookup(%d,h%d)" key hops
  | Found { key; hops; _ } -> Format.fprintf ppf "found(%d,h%d)" key hops

let msg_codec =
  let open Wire.Codec in
  let node = conv Proto.Node_id.to_int Proto.Node_id.of_int int in
  let query = pair (pair int node) (pair float int) in
  tagged
    ~cases:[ (0, shape query); (1, shape query) ]
    (function
      | Lookup { key; origin; born; hops } -> (0, encode query ((key, origin), (born, hops)))
      | Found { key; owner; born; hops } -> (1, encode query ((key, owner), (born, hops))))
    (fun tag payload ->
      match tag with
      | 0 ->
          Result.map
            (fun ((key, origin), (born, hops)) -> Lookup { key; origin; born; hops })
            (decode query payload)
      | 1 ->
          Result.map
            (fun ((key, owner), (born, hops)) -> Found { key; owner; born; hops })
            (decode query payload)
      | t -> Error (Printf.sprintf "unknown dht tag %d" t))

let route_label = "route.next"

(* Clockwise distance from [a] to [b] on the ring. *)
let distance a b = (b - a + ring_size) mod ring_size

module type PARAMS = sig
  val population : int

  val query_period : float
  (** seconds between lookups issued per node; 0. disables *)

  val max_hops : int
  (** routing sanity bound; exceeding it is a safety violation *)
end

module Default_params = struct
  let population = 32
  let query_period = 1.0
  let max_hops = 24
end

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = msg

  val position_of : int -> int
  (** Ring position of node index [i]. *)

  val owner_of : int -> Proto.Node_id.t
  (** The node owning a key. *)

  val lookups : state -> (float * int) list
  (** Completed lookups at this origin: (latency seconds, hops). *)

  val issued : state -> int
  val hop_violations : state -> int
end = struct
  type nonrec msg = msg

  (* Nodes are spread evenly; a real deployment would hash, but even
     spacing keeps owner arithmetic obvious and the routing identical. *)
  let position_of i = i * ring_size / P.population

  let node_positions = List.init P.population (fun i -> (i, position_of i))

  let owner_of key =
    (* The owner is the first node at or clockwise-after the key. *)
    let best =
      List.fold_left
        (fun best (i, pos) ->
          let d = distance key pos in
          match best with Some (_, bd) when bd <= d -> best | _ -> Some (i, d))
        None node_positions
    in
    match best with Some (i, _) -> Proto.Node_id.of_int i | None -> assert false

  (* Chord fingers: successors of self_pos + 2^k, deduplicated. *)
  let fingers_of i =
    let self_pos = position_of i in
    List.sort_uniq compare
      (List.filter_map
         (fun k ->
           let target = (self_pos + (1 lsl k)) mod ring_size in
           let f = owner_of target in
           if Proto.Node_id.to_int f = i then None
           else Some (f, position_of (Proto.Node_id.to_int f)))
         (List.init ring_bits Fun.id))

  type state = {
    self : Proto.Node_id.t;
    pos : int;
    fingers : (Proto.Node_id.t * int) list;
    issued : int;
    completed : (float * int) list;  (* latency, hops *)
    hop_violations : int;
  }

  let name = "dht"
  let equal_state (a : state) b = a = b
  let msg_kind = msg_kind
  let msg_bytes = msg_bytes
  let pp_msg = pp_msg
  let msg_codec = Some msg_codec
  let durable = None
  let degraded = None
  let priority = None

  (* Byzantine admission check (see {!Proto.App_intf.APP.validate}).
     Keys live on the ring, node ids name real nodes, born timestamps
     are finite simulation times, and no honest route lasts anywhere
     near [ring_size] hops (greedy progress halves the distance, so
     [ring_bits] is the nominal ceiling and [max_hops] the safety
     bound; the admission cap is deliberately looser than both so it
     never preempts the app's own hop-violation accounting). *)
  let valid_query ~who key peer born hops =
    if key < 0 || key >= ring_size then Error "key off the ring"
    else if Proto.Node_id.to_int peer >= P.population then Error (who ^ " outside population")
    else if not (Float.is_finite born && born >= 0.) then Error "born not a timestamp"
    else if hops < 0 || hops > ring_size then Error "hop count off the ring"
    else Ok ()

  let validate =
    Some
      (fun m ->
        match m with
        | Lookup { key; origin; born; hops } -> valid_query ~who:"origin" key origin born hops
        | Found { key; owner; born; hops } -> valid_query ~who:"owner" key owner born hops)

  let pp_state ppf st =
    Format.fprintf ppf "{pos=%d done=%d}" st.pos (List.length st.completed)

  (* Same equivalence classes as [pp_state] above, without formatting. *)
  let fingerprint = Some (fun st -> Hashtbl.hash (st.pos, List.length st.completed))

  let lookups st = st.completed
  let issued st = st.issued
  let hop_violations st = st.hop_violations

  let init (ctx : Proto.Ctx.t) =
    let i = Proto.Node_id.to_int ctx.self in
    ( {
        self = ctx.self;
        pos = position_of i;
        fingers = fingers_of i;
        issued = 0;
        completed = [];
        hop_violations = 0;
      },
      if P.query_period > 0. then
        [ Proto.Action.set_timer ~id:"query" ~after:P.query_period ]
      else [] )

  let owns st key =
    Proto.Node_id.equal (owner_of key) st.self

  (* The exposed routing choice: any finger that strictly reduces the
     clockwise distance to the key is a legal next hop. Classic Chord
     is [greedy ~feature:"remaining"]; proximity routing is
     [greedy ~feature:"rtt_ms"]. *)
  let forward (ctx : Proto.Ctx.t) st ~key ~origin ~born ~hops =
    let here = distance st.pos key in
    let candidates =
      (* Most-promising first, so resolvers that cap how many
         alternatives they examine always see the big strides. *)
      List.sort
        (fun (_, a) (_, b) -> Int.compare (distance a key) (distance b key))
        (List.filter (fun (_, fpos) -> distance fpos key < here) st.fingers)
    in
    match candidates with
    | [] ->
        (* No finger improves on us, so the key's owner is our direct
           successor region; deliver there. *)
        let succ = owner_of key in
        [ Proto.Action.send ~dst:succ (Lookup { key; origin; born; hops = hops + 1 }) ]
    | _ :: _ ->
        let alternative (finger, fpos) =
          Core.Choice.alt
            ~features:
              [
                ("remaining", float_of_int (distance fpos key));
                ("rtt_ms", Proto.Ctx.predicted_ms ctx finger);
              ]
            ~describe:(Format.asprintf "%a" Proto.Node_id.pp finger)
            finger
        in
        let next =
          ctx.choose (Core.Choice.make ~label:route_label (List.map alternative candidates))
        in
        [ Proto.Action.send ~dst:next (Lookup { key; origin; born; hops = hops + 1 }) ]

  let h_lookup =
    Proto.Handler.v ~name:"lookup"
      ~guard:(fun _ ~src:_ m -> match m with Lookup _ -> true | Found _ -> false)
      (fun ctx st ~src:_ m ->
        match m with
        | Lookup { key; origin; born; hops } ->
            if hops > P.max_hops then
              ({ st with hop_violations = st.hop_violations + 1 }, [])
            else if owns st key then
              (st, [ Proto.Action.send ~dst:origin (Found { key; owner = st.self; born; hops }) ])
            else (st, forward ctx st ~key ~origin ~born ~hops)
        | Found _ -> (st, []))

  let h_found =
    Proto.Handler.v ~name:"found"
      ~guard:(fun _ ~src:_ m -> match m with Found _ -> true | Lookup _ -> false)
      (fun ctx st ~src:_ m ->
        match m with
        | Found { born; hops; _ } ->
            let latency = Dsim.Vtime.to_seconds ctx.now -. born in
            ({ st with completed = (latency, hops) :: st.completed }, [])
        | Lookup _ -> (st, []))

  let receive = [ h_lookup; h_found ]

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "query" ->
        let key = Dsim.Rng.int ctx.rng ring_size in
        let born = Dsim.Vtime.to_seconds ctx.now in
        let st = { st with issued = st.issued + 1 } in
        let actions =
          if owns st key then
            [ Proto.Action.send ~dst:st.self (Found { key; owner = st.self; born; hops = 0 }) ]
          else forward ctx st ~key ~origin:st.self ~born ~hops:0
        in
        (st, actions @ [ Proto.Action.set_timer ~id:"query" ~after:P.query_period ])
    | _ -> (st, [])

  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"lookup-speed" (fun view ->
          Proto.View.fold
            (fun acc _ st ->
              acc
              +. float_of_int (List.length st.completed)
              -. List.fold_left (fun a (l, _) -> a +. l) 0. st.completed)
            0. view);
    ]

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.safety ~name:"bounded-hops" (fun view ->
          Proto.View.fold (fun ok _ st -> ok && st.hop_violations = 0) true view);
      Core.Property.liveness ~name:"lookups-complete" (fun view ->
          Proto.View.fold
            (fun ok _ st -> ok && List.length st.completed = st.issued)
            true view);
    ]

  let generic_msgs st : (Proto.Node_id.t * msg) list =
    if st.issued = 0 then []
    else
      let ghost = Proto.Node_id.of_int 93 in
      [ (ghost, Lookup { key = 0; origin = ghost; born = 0.; hops = 0 }) ]
end

module Default = Make (Default_params)

(** The classic proximity-neighbour-selection compromise, as a
    resolver: among fingers whose remaining distance is within 2x of
    the best stride, take the lowest predicted RTT. Both of the
    hard-coded worlds (pure progress, pure proximity) are special cases
    the runtime can now interpolate between. *)
let pns_resolver =
  Core.Resolver.make ~name:"pns" (fun rng site ->
      let remaining i =
        Option.value ~default:infinity (Core.Choice.feature site ~alt:i "remaining")
      in
      let rtt i = Option.value ~default:infinity (Core.Choice.feature site ~alt:i "rtt_ms") in
      let n = site.Core.Choice.site_arity in
      let best_remaining = ref infinity in
      for i = 0 to n - 1 do
        if remaining i < !best_remaining then best_remaining := remaining i
      done;
      let eligible = ref [] in
      for i = n - 1 downto 0 do
        if remaining i <= (2. *. !best_remaining) +. 1. then eligible := i :: !eligible
      done;
      match !eligible with
      | [] -> Dsim.Rng.int rng n
      | alts ->
          List.fold_left
            (fun best i -> if rtt i < rtt best then i else best)
            (List.hd alts) (List.tl alts))
