(** Epidemic dissemination with an exposed peer choice (paper §3.1,
    "Gossip Protocols").

    Every round a node picks one peer and push-pulls its rumor set with
    it. {e Which} peer is the choice the paper discusses: BAR Gossip
    restricts it to a deterministic schedule (good against Byzantine
    partners, bad when the scheduled target sits behind a slow link);
    plain epidemics pick uniformly; FlightPath relaxes the restriction
    for performance. Here the protocol exposes the choice (label
    {!peer_label}) and the policy is whichever resolver the runtime
    installs — {!restricted_resolver} reproduces the BAR-style
    schedule. *)

module Int_set = Set.Make (Int)

type msg =
  | Push of { rumors : int list; round : int }
  | Push_back of { rumors : int list }

let msg_kind = function Push _ -> "push" | Push_back _ -> "push_back"

(* A rumor is ~1 KB of payload in flight; headers cost 64 bytes. *)
let msg_bytes = function
  | Push { rumors; _ } -> 64 + (1024 * List.length rumors)
  | Push_back { rumors } -> 64 + (1024 * List.length rumors)

let pp_msg ppf = function
  | Push { rumors; round } -> Format.fprintf ppf "push(%d rumors, r%d)" (List.length rumors) round
  | Push_back { rumors } -> Format.fprintf ppf "push_back(%d rumors)" (List.length rumors)

let msg_codec =
  let open Wire.Codec in
  tagged
    ~cases:[ (0, shape (pair (list int) int)); (1, shape (list int)) ]
    (function
      | Push { rumors; round } -> (0, encode (pair (list int) int) (rumors, round))
      | Push_back { rumors } -> (1, encode (list int) rumors))
    (fun tag payload ->
      match tag with
      | 0 ->
          Result.map
            (fun (rumors, round) -> Push { rumors; round })
            (decode (pair (list int) int) payload)
      | 1 -> Result.map (fun rumors -> Push_back { rumors }) (decode (list int) payload)
      | t -> Error (Printf.sprintf "unknown gossip tag %d" t))

let peer_label = "gossip.peer"

(* Byzantine admission check (see {!Proto.App_intf.APP.validate}),
   shared with the baseline variant. Honest rumor digests come out of
   [Int_set.elements], so they are strictly sorted, duplicate-free and
   non-negative (seeded waves use small non-negative ids); rounds count
   up from 0. A mutated push that duplicates, reorders or negates
   entries is bounced here before it can pollute the membership digest. *)
let valid_rumors rumors =
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        if a < b then sorted rest else Error "rumor digest not strictly sorted"
    | [ _ ] | [] -> Ok ()
  in
  match rumors with r :: _ when r < 0 -> Error "negative rumor id" | rs -> sorted rs

let validate =
  Some
    (function
      | Push { rumors; round } ->
          if round < 0 then Error "negative round" else valid_rumors rumors
      | Push_back { rumors } -> valid_rumors rumors)

module type PARAMS = sig
  val population : int
  (** node ids are [0 .. population-1] *)

  val round_period : float
  val candidate_cap : int
  (** at most this many peers offered to the resolver per round *)
end

module Default_params = struct
  let population = 32
  let round_period = 0.5
  let candidate_cap = 8
end

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = msg

  val known : state -> Int_set.t
  val round_of : state -> int

  val degraded_entries : state -> int
  (** Times this node entered degraded mode (a majority of its peers
      simultaneously suspected by the failure detector). *)

  val degraded_exits : state -> int
  val seed_rumors : Proto.Node_id.t -> int list -> msg
  (** Build an injectable [Push] carrying fresh rumors (use with
      [Sim.inject] to originate content at a node). *)
end = struct
  type nonrec msg = msg

  type state = {
    self : Proto.Node_id.t;
    known : Int_set.t;
    round : int;
    last_exchange : (Proto.Node_id.t * float) list;  (* peer, vtime seconds *)
    degraded : bool;  (* a majority of peers is currently suspected *)
    deg_entries : int;
    deg_exits : int;
  }

  let name = "gossip"
  let equal_state (a : state) b = a = b
  let msg_kind = msg_kind
  let msg_bytes = msg_bytes
  let pp_msg = pp_msg
  let msg_codec = Some msg_codec
  let validate = validate
  let durable = None

  let pp_state ppf st =
    Format.fprintf ppf "{r%d known=%d}" st.round (Int_set.cardinal st.known)

  (* Same equivalence classes as [pp_state] above, without formatting. *)
  let fingerprint = Some (fun st -> Hashtbl.hash (st.round, Int_set.cardinal st.known))

  let known st = st.known
  let round_of st = st.round
  let degraded_entries st = st.deg_entries
  let degraded_exits st = st.deg_exits
  let degraded = Some (fun st -> st.degraded)
  let priority = None
  let seed_rumors _origin rumors = Push { rumors; round = 0 }

  let peers st =
    let self = Proto.Node_id.to_int st.self in
    List.filter_map
      (fun i -> if i = self then None else Some (Proto.Node_id.of_int i))
      (List.init P.population Fun.id)

  let init (ctx : Proto.Ctx.t) =
    ( {
        self = ctx.self;
        known = Int_set.empty;
        round = 0;
        last_exchange = [];
        degraded = false;
        deg_entries = 0;
        deg_exits = 0;
      },
      [ Proto.Action.set_timer ~id:"round" ~after:P.round_period ] )

  let touch st peer now =
    {
      st with
      last_exchange =
        (peer, now) :: List.filter (fun (p, _) -> not (Proto.Node_id.equal p peer)) st.last_exchange;
    }

  let last_seen st peer =
    List.assoc_opt peer st.last_exchange

  let merge st rumors =
    { st with known = Int_set.union st.known (Int_set.of_list rumors) }

  let h_push =
    Proto.Handler.v ~name:"push"
      ~guard:(fun _ ~src:_ m -> match m with Push _ -> true | Push_back _ -> false)
      (fun ctx st ~src m ->
        match m with
        | Push { rumors; _ } ->
            let st = merge st rumors in
            let st = touch st src (Dsim.Vtime.to_seconds ctx.now) in
            (* Push-pull: return what the sender appears to be missing. *)
            let missing =
              Int_set.elements (Int_set.diff st.known (Int_set.of_list rumors))
            in
            let reply =
              if missing = [] then []
              else [ Proto.Action.send ~dst:src (Push_back { rumors = missing }) ]
            in
            (st, reply)
        | Push_back _ -> (st, []))

  let h_push_back =
    Proto.Handler.v ~name:"push_back"
      ~guard:(fun _ ~src:_ m -> match m with Push_back _ -> true | Push _ -> false)
      (fun ctx st ~src m ->
        match m with
        | Push_back { rumors } ->
            (merge st rumors |> fun st -> touch st src (Dsim.Vtime.to_seconds ctx.now)), []
        | Push _ -> (st, []))

  let receive = [ h_push; h_push_back ]

  (* Hysteresis on the failure-detector view: enter degraded mode when a
     majority of peers has crossed the phi threshold (suspicion = 1),
     leave only once a majority has dropped back below 0.5. Reads the
     shared detector only — no RNG, so benign runs are untouched. *)
  let suspicious_majority (ctx : Proto.Ctx.t) st ~cutoff =
    let suspected =
      List.length (List.filter (fun p -> Proto.Ctx.suspicion ctx p >= cutoff) (peers st))
    in
    2 * suspected > P.population - 1

  let update_degraded ctx st =
    if st.degraded then
      if suspicious_majority ctx st ~cutoff:0.5 then st
      else { st with degraded = false; deg_exits = st.deg_exits + 1 }
    else if suspicious_majority ctx st ~cutoff:1.0 then
      { st with degraded = true; deg_entries = st.deg_entries + 1 }
    else st

  (* The gossip round: expose the peer choice with features the
     resolver families need — identity (for the restricted schedule),
     predicted rtt (for network-aware policies), staleness of the last
     exchange (for coverage-aware policies). *)
  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "round" ->
        let st = { st with round = st.round + 1 } in
        let st = update_degraded ctx st in
        let rearm = Proto.Action.set_timer ~id:"round" ~after:P.round_period in
        if Int_set.is_empty st.known then (st, [ rearm ])
        else begin
          let now = Dsim.Vtime.to_seconds ctx.now in
          let candidates =
            Dsim.Rng.sample_without_replacement ctx.rng P.candidate_cap (peers st)
          in
          (* Skip peers the detector currently suspects: pushes to them
             are wasted bandwidth while they are silent. The sample draw
             above stays unconditional so the RNG stream is identical
             whether or not anyone is suspected. *)
          let candidates =
            List.filter (fun peer -> not (Proto.Ctx.suspected ctx peer)) candidates
          in
          (* Halve fanout under queue pressure: gossip is the most
             redundant traffic in the system, so it backs off first —
             every other round is skipped outright and the surviving
             rounds consider half the sampled peers. Pressure is 0
             under unbounded queues, keeping the sample/filter RNG
             stream untouched on default configurations. *)
          let pressured = Proto.Ctx.pressure ctx >= 0.5 in
          if pressured && st.round mod 2 = 1 then (st, [ rearm ])
          else begin
          let candidates =
            if pressured then
              let keep = max 1 ((List.length candidates + 1) / 2) in
              List.filteri (fun i _ -> i < keep) candidates
            else candidates
          in
          let alternative peer =
            Core.Choice.alt
              ~features:
                [
                  ("peer_id", float_of_int (Proto.Node_id.to_int peer));
                  ("round", float_of_int st.round);
                  ("rtt_ms", Proto.Ctx.predicted_ms ctx peer);
                  ( "age_s",
                    match last_seen st peer with Some t -> now -. t | None -> 1e6 );
                ]
              ~describe:(Format.asprintf "%a" Proto.Node_id.pp peer)
              peer
          in
          match candidates with
          | [] -> (st, [ rearm ])  (* whole sample suspected: hold this round *)
          | _ :: _ ->
              let target =
                ctx.choose
                  (Core.Choice.make ~label:peer_label (List.map alternative candidates))
              in
              ( st,
                [
                  Proto.Action.send ~dst:target
                    (Push { rumors = Int_set.elements st.known; round = st.round });
                  rearm;
                ] )
          end
        end
    | _ -> (st, [])

  (* Coverage objective: total knowledge across the system; higher is
     better. Normalised per node so the value is comparable across
     population sizes. *)
  let objectives =
    [
      Core.Objective.v ~name:"coverage" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int (Int_set.cardinal st.known)) 0. view);
    ]

  let properties =
    [
      (* Rumor sets only grow, so any rumor known anywhere should
         eventually be known everywhere. *)
      Core.Property.liveness ~name:"uniform-knowledge" (fun view ->
          let union, inter =
            Proto.View.fold
              (fun (u, i) _ st ->
                (Int_set.union u st.known, match i with None -> Some st.known | Some i -> Some (Int_set.inter i st.known)))
              (Int_set.empty, None) view
          in
          match inter with None -> true | Some i -> Int_set.equal union i);
    ]

  let generic_msgs st =
    if Int_set.is_empty st.known then []
    else
      let ghost = Proto.Node_id.of_int 96 in
      [ (ghost, Push { rumors = [ 1_000_000 ]; round = st.round }) ]
end

module Default = Make (Default_params)

(** BAR-style restricted peer selection: each round has exactly one
    legal partner, derived deterministically from the node's identity
    and the round number. Implemented as a resolver over the exposed
    choice — restriction is a policy, not a protocol change. *)
let restricted_resolver ~population =
  Core.Resolver.make ~name:"restricted" (fun _rng site ->
      let feature i name = Core.Choice.feature site ~alt:i name in
      let round =
        match feature 0 "round" with Some r -> int_of_float r | None -> 0
      in
      let node = site.Core.Choice.site_node in
      (* The pseudo-random schedule both partners could verify. *)
      let target = (((node * 7919) + (round * 104729)) mod population + population) mod population in
      let distance i =
        match feature i "peer_id" with
        | Some id -> abs (int_of_float id - target)
        | None -> max_int
      in
      let best = ref 0 and best_d = ref (distance 0) in
      for i = 1 to site.Core.Choice.site_arity - 1 do
        let d = distance i in
        if d < !best_d then begin
          best := i;
          best_d := d
        end
      done;
      !best)
