(** Swarm content distribution with an exposed block choice (paper
    §3.1, "Content Distribution").

    A seed holds all blocks of a file; peers exchange blocks over a
    static random mesh, BitTorrent/BulletPrime style: neighbours
    advertise bitmaps, a peer keeps at most one outstanding request per
    neighbour, and every request must decide {e which block to ask
    for}. BitTorrent and BulletPrime hard-code (different!) strategies
    — random vs rarest-random — and the paper notes neither dominates.
    Here the decision is the exposed choice {!block_label}: random,
    rarest (greedy on the ["rarity"] feature), lookahead and bandit
    policies are all just resolvers. *)

module Int_set = Set.Make (Int)

type msg =
  | Have of { blocks : int list }  (** bitmap advertisement *)
  | Request of { block : int }
  | Piece of { block : int }

let msg_kind = function Have _ -> "have" | Request _ -> "request" | Piece _ -> "piece"

let pp_msg ppf = function
  | Have { blocks } -> Format.fprintf ppf "have(%d)" (List.length blocks)
  | Request { block } -> Format.fprintf ppf "request(#%d)" block
  | Piece { block } -> Format.fprintf ppf "piece(#%d)" block

let block_label = "block.select"

module type PARAMS = sig
  val population : int
  (** peers [0 .. population-1]; node 0 is the seed *)

  val blocks : int
  val block_bytes : int

  val degree : int
  (** mesh neighbours per peer *)

  val tick_period : float
  val request_timeout : float
  val candidate_cap : int
end

module Default_params = struct
  let population = 16
  let blocks = 64
  let block_bytes = 16_384
  let degree = 4
  let tick_period = 0.2
  let request_timeout = 3.0
  let candidate_cap = 8
end

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = msg

  val have : state -> Int_set.t
  val complete : state -> bool
  val self_of : state -> Proto.Node_id.t

  val neighbors_of_id : int -> int list
  (** The static mesh, exposed for tests and experiments. *)

  val state_codec : state Wire.Codec.t
  (** Wire encoding of a peer's state (its bitmap, its view of the
      neighbours' bitmaps, outstanding requests) — what a runtime
      checkpoint of this protocol actually costs on the wire. This is
      the BulletPrime "file map" state the paper's §3.3 wants exported
      to the runtime. *)
end = struct
  type nonrec msg = msg

  let seed_id = Proto.Node_id.of_int 0

  (* Static random mesh: a ring (guaranteeing connectivity) plus
     deterministic chords. Both endpoints agree on the edge set because
     it depends only on ids. *)
  let neighbors_of_id i =
    let n = P.population in
    let ring = [ (i + 1) mod n; (i + n - 1) mod n ] in
    let chords =
      let rng = Dsim.Rng.create ((i * 31) + 17) in
      List.init (max 0 (P.degree - 2)) (fun _ -> Dsim.Rng.int rng n)
    in
    List.sort_uniq Int.compare (List.filter (fun j -> j <> i) (ring @ chords))

  type state = {
    self : Proto.Node_id.t;
    have : Int_set.t;
    neighbor_have : (Proto.Node_id.t * Int_set.t) list;
    outstanding : (Proto.Node_id.t * int * float) list;  (* peer, block, sent-at seconds *)
  }

  let name = "dissem"

  (* Semantic equality: two [Int_set.t]s with equal elements may have
     different internal tree shapes (e.g. one rebuilt from a decoded
     checkpoint), so polymorphic (=) would be wrong here. *)
  let equal_state (a : state) b =
    Proto.Node_id.equal a.self b.self
    && Int_set.equal a.have b.have
    && List.length a.neighbor_have = List.length b.neighbor_have
    && List.for_all2
         (fun (p, s) (q, t) -> Proto.Node_id.equal p q && Int_set.equal s t)
         a.neighbor_have b.neighbor_have
    && a.outstanding = b.outstanding

  let msg_kind = msg_kind
  let pp_msg = pp_msg
  let msg_codec = None
  let validate = None

  let msg_bytes = function
    | Have { blocks } -> 32 + (4 * List.length blocks)
    | Request _ -> 32
    | Piece _ -> 64 + P.block_bytes

  let pp_state ppf st =
    Format.fprintf ppf "{have=%d out=%d}" (Int_set.cardinal st.have) (List.length st.outstanding)

  (* Same equivalence classes as [pp_state] above, without formatting. *)
  let fingerprint =
    Some (fun st -> Hashtbl.hash (Int_set.cardinal st.have, List.length st.outstanding))

  let have st = st.have
  let complete st = Int_set.cardinal st.have = P.blocks
  let self_of st = st.self

  let neighbors st =
    List.map Proto.Node_id.of_int (neighbors_of_id (Proto.Node_id.to_int st.self))

  let full_set = Int_set.of_list (List.init P.blocks Fun.id)

  let init (ctx : Proto.Ctx.t) =
    let is_seed = Proto.Node_id.equal ctx.self seed_id in
    let st =
      {
        self = ctx.self;
        have = (if is_seed then full_set else Int_set.empty);
        neighbor_have = [];
        outstanding = [];
      }
    in
    let announce =
      if is_seed then
        List.map
          (fun peer -> Proto.Action.send ~dst:peer (Have { blocks = Int_set.elements st.have }))
          (neighbors st)
      else []
    in
    (st, announce @ [ Proto.Action.set_timer ~id:"tick" ~after:P.tick_period ])

  let neighbor_set st peer =
    Option.value ~default:Int_set.empty (List.assoc_opt peer st.neighbor_have)

  let update_neighbor st peer blocks =
    {
      st with
      neighbor_have =
        (peer, Int_set.union (neighbor_set st peer) (Int_set.of_list blocks))
        :: List.remove_assoc peer st.neighbor_have;
    }

  let h_have =
    Proto.Handler.v ~name:"have"
      ~guard:(fun _ ~src:_ m -> match m with Have _ -> true | Request _ | Piece _ -> false)
      (fun _ctx st ~src m ->
        match m with
        | Have { blocks } -> (update_neighbor st src blocks, [])
        | Request _ | Piece _ -> (st, []))

  let h_request =
    Proto.Handler.v ~name:"request"
      ~guard:(fun _ ~src:_ m -> match m with Request _ -> true | Have _ | Piece _ -> false)
      (fun _ctx st ~src m ->
        match m with
        | Request { block } ->
            if Int_set.mem block st.have then
              (st, [ Proto.Action.send ~dst:src (Piece { block }) ])
            else (st, [])
        | Have _ | Piece _ -> (st, []))

  let h_piece =
    Proto.Handler.v ~name:"piece"
      ~guard:(fun _ ~src:_ m -> match m with Piece _ -> true | Have _ | Request _ -> false)
      (fun _ctx st ~src:_ m ->
        match m with
        | Piece { block } ->
            if Int_set.mem block st.have then
              (* Duplicate download — pure waste, the cost of a poor
                 earlier block choice. *)
              ({ st with outstanding = List.filter (fun (_, b, _) -> b <> block) st.outstanding }, [])
            else
              let st =
                {
                  st with
                  have = Int_set.add block st.have;
                  outstanding = List.filter (fun (_, b, _) -> b <> block) st.outstanding;
                }
              in
              ( st,
                List.map
                  (fun peer -> Proto.Action.send ~dst:peer (Have { blocks = [ block ] }))
                  (neighbors st) )
        | Have _ | Request _ -> (st, []))

  let receive = [ h_have; h_request; h_piece ]

  (* How many of my neighbours (and I) hold [block] — the classic local
     rarity estimate driving rarest-first. *)
  let rarity st block =
    let mine = if Int_set.mem block st.have then 1 else 0 in
    List.fold_left
      (fun acc (_, s) -> if Int_set.mem block s then acc + 1 else acc)
      mine st.neighbor_have

  let pick_requests (ctx : Proto.Ctx.t) st =
    let now = Dsim.Vtime.to_seconds ctx.now in
    (* Expire stale outstanding requests so lost pieces are retried. *)
    let outstanding =
      List.filter (fun (_, _, at) -> now -. at <= P.request_timeout) st.outstanding
    in
    let st = { st with outstanding } in
    let requested = List.map (fun (_, b, _) -> b) st.outstanding in
    List.fold_left
      (fun (st, actions) peer ->
        if List.exists (fun (p, _, _) -> Proto.Node_id.equal p peer) st.outstanding then
          (st, actions)
        else begin
          let wanted =
            Int_set.elements
              (Int_set.diff (neighbor_set st peer)
                 (Int_set.union st.have (Int_set.of_list requested)))
          in
          match wanted with
          | [] -> (st, actions)
          | _ :: _ ->
              let candidates =
                Dsim.Rng.sample_without_replacement ctx.rng P.candidate_cap wanted
              in
              let alternative block =
                Core.Choice.alt
                  ~features:
                    [
                      ("block_id", float_of_int block);
                      ("rarity", float_of_int (rarity st block));
                    ]
                  ~describe:(string_of_int block) block
              in
              let block =
                ctx.choose (Core.Choice.make ~label:block_label (List.map alternative candidates))
              in
              ( { st with outstanding = (peer, block, now) :: st.outstanding },
                Proto.Action.send ~dst:peer (Request { block }) :: actions )
        end)
      (st, []) (neighbors st)

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "tick" ->
        let rearm = Proto.Action.set_timer ~id:"tick" ~after:P.tick_period in
        if complete st then (st, [ rearm ])
        else
          let st, requests = pick_requests ctx st in
          (st, requests @ [ rearm ])
    | _ -> (st, [])

  let objectives =
    [
      Core.Objective.v ~name:"swarm-progress" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int (Int_set.cardinal st.have)) 0. view);
      (* Concave reward on per-block replication: copying a rare block
         pays more than another copy of a common one. This is the
         diversity goal rarest-first hard-codes, exposed as an
         objective so predictive resolvers can see it. *)
      Core.Objective.v ~name:"block-diversity" ~weight:2.0 (fun view ->
          let counts = Array.make P.blocks 0 in
          Proto.View.fold
            (fun () _ st -> Int_set.iter (fun b -> if b < P.blocks then counts.(b) <- counts.(b) + 1) st.have)
            () view;
          Array.fold_left (fun acc c -> acc +. sqrt (float_of_int c)) 0. counts);
    ]

  let properties =
    [
      Core.Property.safety ~name:"valid-blocks" (fun view ->
          Proto.View.fold
            (fun ok _ st -> ok && Int_set.subset st.have full_set)
            true view);
      Core.Property.liveness ~name:"all-complete" (fun view ->
          Proto.View.fold (fun ok _ st -> ok && complete st) true view);
    ]

  let generic_msgs st =
    if complete st then []
    else
      let ghost = Proto.Node_id.of_int 95 in
      [ (ghost, Have { blocks = [ 0 ] }) ]

  let state_codec =
    let open Wire.Codec in
    let node = conv Proto.Node_id.to_int Proto.Node_id.of_int int in
    let blockset = conv Int_set.elements Int_set.of_list (list int) in
    conv
      (fun st -> (st.self, (st.have, (st.neighbor_have, st.outstanding))))
      (fun (self, (have, (neighbor_have, outstanding))) ->
        { self; have; neighbor_have; outstanding })
      (pair node
         (pair blockset
            (pair (list (pair node blockset)) (list (triple node int float)))))

  (* The checkpoint codec doubles as the durability codec: a restarted
     node resumes with the blocks it had already fetched instead of
     re-downloading the file. [equal_state] (not polymorphic (=))
     suppresses no-op records — a decoded state's set shapes differ. *)
  let durable = Some (Proto.Durability.v ~equal:equal_state state_codec)
  let degraded = None
  let priority = None
end

module Default = Make (Default_params)
