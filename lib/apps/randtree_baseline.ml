(** RandTree, baseline variant: the random overlay tree as released.

    All policy is hard-coded inside the handlers, entangled with the
    machinery every deployed implementation grows: a hand-rolled RTT
    estimator over its own heartbeats (the per-application "network
    model" the paper's §3.3 wants hoisted into the runtime), join-retry
    backoff, join-thrash protection, staleness strike-counters and
    slow-parent self-healing. The choice-exposed rewrite
    ({!Randtree_choice}) needs none of it — the runtime's shared model
    and resolver replace it — which is exactly the LoC/complexity
    contrast the paper's §4 measures (487 -> 280 LoC, 1.94 -> 0.28
    if-else per handler in their Mace sources). *)

module C = Randtree_common

module type PARAMS = sig
  val root : Proto.Node_id.t
  val max_children : int
end

module Default_params = struct
  let root = Proto.Node_id.of_int 0
  let max_children = 2
end

(* Hard-coded tuning constants of the inline policy machinery. *)
let rtt_alpha = 0.3
let slow_parent_rtt = 1.5 (* seconds; above this, strike the parent *)
let parent_strike_limit = 3
let thrash_window = 10.0 (* seconds of join-forward memory *)
let thrash_limit = 6 (* forwards of one origin before emergency adopt *)
let backoff_cap = 3 (* retry delay doubles at most this many times *)

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = C.msg

  val parent_of : state -> Proto.Node_id.t option
  val depth_field : state -> int
  val is_joined : state -> bool
  val children_of : state -> Proto.Node_id.t list
  val rtt_to_parent : state -> float option
end = struct
  type msg = C.msg

  type state = {
    self : Proto.Node_id.t;
    parent : Proto.Node_id.t option;
    parent_seen : float;
    parent_rtt : float option;  (* hand-rolled EWMA over ping/ack pairs *)
    parent_strikes : int;
    ping_sent : float option;  (* when the outstanding parent ping left *)
    depth : int;  (* 1 at the root, 0 while unjoined *)
    children : (Proto.Node_id.t * float) list;  (* child, last heartbeat *)
    joined : bool;
    join_attempts : int;
    last_forwarded : Proto.Node_id.t option;
    stale_strikes : int;
    recent_joins : (Proto.Node_id.t * int * float) list;  (* origin, forwards, last *)
  }

  let name = "randtree-baseline"
  let equal_state (a : state) b = a = b
  let msg_kind = C.msg_kind
  let msg_bytes = C.msg_bytes
  let pp_msg = C.pp_msg
  let msg_codec = Some C.msg_codec
  let validate = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_state ppf st =
    Format.fprintf ppf "{p=%a d=%d c=[%a] j=%b}"
      (Format.pp_print_option Proto.Node_id.pp ~none:(fun ppf () -> Format.fprintf ppf "-"))
      st.parent st.depth
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Proto.Node_id.pp)
      (List.map fst st.children)
      st.joined

  (* Same equivalence classes as [pp_state] above, without formatting.
     [hash_param] with generous bounds so long child lists are not
     truncated into accidental hash-equality. *)
  let fingerprint =
    Some
      (fun st ->
        Hashtbl.hash_param 64 256 (st.parent, st.depth, List.map fst st.children, st.joined))

  let parent_of st = st.parent
  let depth_field st = st.depth
  let is_joined st = st.joined
  let children_of st = List.map fst st.children
  let rtt_to_parent st = st.parent_rtt

  let is_root st = Proto.Node_id.equal st.self P.root
  let now_s (ctx : Proto.Ctx.t) = Dsim.Vtime.to_seconds ctx.now
  let child_mem st id = List.mem_assoc id st.children

  let base_timers =
    [
      Proto.Action.set_timer ~id:"ping" ~after:C.Timing.ping_period;
      Proto.Action.set_timer ~id:"sweep" ~after:C.Timing.sweep_period;
    ]

  let fresh_state self now =
    {
      self;
      parent = None;
      parent_seen = now;
      parent_rtt = None;
      parent_strikes = 0;
      ping_sent = None;
      depth = (if Proto.Node_id.equal self P.root then 1 else 0);
      children = [];
      joined = Proto.Node_id.equal self P.root;
      join_attempts = 0;
      last_forwarded = None;
      stale_strikes = 0;
      recent_joins = [];
    }

  let init (ctx : Proto.Ctx.t) =
    let st = fresh_state ctx.self (now_s ctx) in
    if is_root st then (st, base_timers)
    else
      ( { st with join_attempts = 1 },
        Proto.Action.send ~dst:P.root (C.Join { origin = ctx.self })
        :: Proto.Action.set_timer ~id:"retry" ~after:C.Timing.join_retry
        :: base_timers )

  (* Inline bookkeeping of which origins we keep forwarding — thrash
     detection needs it, and it must be pruned by hand. *)
  let note_forward st origin now =
    let kept =
      List.filter (fun (_, _, at) -> now -. at <= thrash_window) st.recent_joins
    in
    match List.find_opt (fun (o, _, _) -> Proto.Node_id.equal o origin) kept with
    | Some (_, n, _) ->
        ( (origin, n + 1, now)
          :: List.filter (fun (o, _, _) -> not (Proto.Node_id.equal o origin)) kept,
          n + 1 )
    | None -> ((origin, 1, now) :: kept, 1)

  (* The monolithic join handler: membership dedup, capacity check,
     thrash protection, staleness heuristics and random descent are all
     interleaved — exactly the style §3.1 argues against. *)
  let handle_join (ctx : Proto.Ctx.t) st ~src:_ origin =
    if Proto.Node_id.equal origin st.self then (st, [])
    else if not st.joined then
      if is_root st then (st, [])
      else
        (* Not serving yet: bounce the request back to the root. *)
        (st, [ Proto.Action.send ~dst:P.root (C.Join { origin }) ])
    else if child_mem st origin then begin
      (* Duplicate join (retransmit): refresh and re-accept. *)
      let children =
        List.map
          (fun (c, seen) -> if Proto.Node_id.equal c origin then (c, now_s ctx) else (c, seen))
          st.children
      in
      ( { st with children },
        [ Proto.Action.send ~dst:origin (C.Join_reply { depth = st.depth + 1 }) ] )
    end
    else if List.length st.children < P.max_children then
      (* Capacity available: accept immediately. *)
      ( { st with children = (origin, now_s ctx) :: st.children },
        [
          Proto.Action.send ~dst:origin (C.Join_reply { depth = st.depth + 1 });
          Proto.Action.note "accepted %d" (Proto.Node_id.to_int origin);
        ] )
    else begin
      let now = now_s ctx in
      let recent_joins, forwards = note_forward st origin now in
      let st = { st with recent_joins } in
      if forwards > thrash_limit then begin
        (* Emergency adoption: this origin keeps coming back, so the
           subtree below is probably not serving it. Evict the stalest
           child and take the origin in its place. *)
        let stalest, _ =
          List.fold_left
            (fun (best, seen) (c, s) -> if s < seen then (c, s) else (best, seen))
            (List.hd st.children) (List.tl st.children)
        in
        let children =
          (origin, now)
          :: List.filter (fun (c, _) -> not (Proto.Node_id.equal c stalest)) st.children
        in
        ( { st with children },
          [
            Proto.Action.send ~dst:origin (C.Join_reply { depth = st.depth + 1 });
            Proto.Action.note "thrash-adopted %d, evicted %d" (Proto.Node_id.to_int origin)
              (Proto.Node_id.to_int stalest);
          ] )
      end
      else begin
        (* Full: forward down. Prefer children heard from recently; if
           every child looks stale, fall back to all of them rather
           than dropping the join on the floor. *)
        let fresh, stale =
          List.partition (fun (_, seen) -> now -. seen <= C.Timing.peer_timeout) st.children
        in
        let pool = if fresh <> [] then fresh else stale in
        let pool = if pool = [] then st.children else pool in
        let pick =
          if List.length pool = 1 then fst (List.hd pool)
          else begin
            (* Uniform random descent — RandTree's namesake policy. *)
            let arr = Array.of_list pool in
            fst arr.(Dsim.Rng.int ctx.rng (Array.length arr))
          end
        in
        let strikes = if fresh = [] then st.stale_strikes + 1 else 0 in
        ( { st with last_forwarded = Some pick; stale_strikes = strikes },
          [ Proto.Action.send ~dst:pick (C.Join { origin }) ] )
      end
    end

  let handle_join_reply (ctx : Proto.Ctx.t) st ~src depth =
    if st.joined && st.parent <> None then
      (* Already attached elsewhere; ignore the late acceptance. *)
      (st, [])
    else
      ( {
          st with
          parent = Some src;
          parent_seen = now_s ctx;
          parent_rtt = None;
          parent_strikes = 0;
          depth;
          joined = true;
          join_attempts = 0;
        },
        [ Proto.Action.cancel_timer "retry"; Proto.Action.note "joined at depth %d" depth ] )

  let handle_ping (ctx : Proto.Ctx.t) st ~src =
    if child_mem st src then begin
      let children =
        List.map
          (fun (c, seen) -> if Proto.Node_id.equal c src then (c, now_s ctx) else (c, seen))
          st.children
      in
      ({ st with children }, [ Proto.Action.send ~dst:src (C.Ping_ack { depth = st.depth }) ])
    end
    else if st.joined && List.length st.children < P.max_children then
      (* Orphan heartbeat: the pinger believes we are its parent
         (we probably restarted); quietly re-adopt it. *)
      ( { st with children = (src, now_s ctx) :: st.children },
        [ Proto.Action.send ~dst:src (C.Ping_ack { depth = st.depth }) ] )
    else (st, [])

  (* Ping acks double as RTT probes for the hand-rolled estimator; a
     persistently slow parent is struck and eventually abandoned — the
     kind of inline adaptation logic the runtime subsumes. *)
  let handle_ping_ack (ctx : Proto.Ctx.t) st ~src depth =
    match st.parent with
    | Some p when Proto.Node_id.equal p src ->
        let now = now_s ctx in
        let st =
          match st.ping_sent with
          | None -> st
          | Some sent ->
              let sample = now -. sent in
              let rtt =
                match st.parent_rtt with
                | None -> sample
                | Some old -> ((1. -. rtt_alpha) *. old) +. (rtt_alpha *. sample)
              in
              let strikes =
                if rtt > slow_parent_rtt then st.parent_strikes + 1 else 0
              in
              { st with parent_rtt = Some rtt; parent_strikes = strikes; ping_sent = None }
        in
        if st.parent_strikes > parent_strike_limit && not (is_root st) then
          (* The parent answers but too slowly: detach and rejoin. *)
          ( {
              st with
              parent = None;
              parent_rtt = None;
              parent_strikes = 0;
              joined = false;
              depth = 0;
              join_attempts = 1;
            },
            [
              Proto.Action.send ~dst:P.root (C.Join { origin = st.self });
              Proto.Action.set_timer ~id:"retry" ~after:C.Timing.join_retry;
              Proto.Action.note "abandoned slow parent %d" (Proto.Node_id.to_int src);
            ] )
        else ({ st with parent_seen = now; depth = depth + 1 }, [])
    | Some _ | None -> (st, [])

  let receive =
    [
      Proto.Handler.v ~name:"join"
        ~guard:(fun _ ~src:_ msg -> match msg with C.Join _ -> true | _ -> false)
        (fun ctx st ~src msg ->
          match msg with
          | C.Join { origin } -> handle_join ctx st ~src origin
          | C.Join_reply _ | C.Ping | C.Ping_ack _ -> (st, []));
      Proto.Handler.v ~name:"join_reply"
        ~guard:(fun _ ~src:_ msg -> match msg with C.Join_reply _ -> true | _ -> false)
        (fun ctx st ~src msg ->
          match msg with
          | C.Join_reply { depth } -> handle_join_reply ctx st ~src depth
          | C.Join _ | C.Ping | C.Ping_ack _ -> (st, []));
      Proto.Handler.v ~name:"ping"
        ~guard:(fun _ ~src:_ msg -> match msg with C.Ping -> true | _ -> false)
        (fun ctx st ~src msg ->
          match msg with
          | C.Ping -> handle_ping ctx st ~src
          | C.Join _ | C.Join_reply _ | C.Ping_ack _ -> (st, []));
      Proto.Handler.v ~name:"ping_ack"
        ~guard:(fun _ ~src:_ msg -> match msg with C.Ping_ack _ -> true | _ -> false)
        (fun ctx st ~src msg ->
          match msg with
          | C.Ping_ack { depth } -> handle_ping_ack ctx st ~src depth
          | C.Join _ | C.Join_reply _ | C.Ping -> (st, []));
    ]

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "retry" ->
        if st.joined then (st, [])
        else begin
          (* Exponential backoff, capped — yet more inline policy. *)
          let attempts = st.join_attempts + 1 in
          let exponent = min (max (attempts - 2) 0) backoff_cap in
          let delay = C.Timing.join_retry *. float_of_int (1 lsl exponent) in
          ( { st with join_attempts = attempts },
            [
              Proto.Action.send ~dst:P.root (C.Join { origin = st.self });
              Proto.Action.set_timer ~id:"retry" ~after:delay;
            ] )
        end
    | "ping" ->
        let st, pings =
          match st.parent with
          | Some p ->
              if st.ping_sent = None then
                ({ st with ping_sent = Some (now_s ctx) }, [ Proto.Action.send ~dst:p C.Ping ])
              else
                (* Previous probe still outstanding; keep its timestamp
                   so the RTT sample reflects the real wait. *)
                (st, [ Proto.Action.send ~dst:p C.Ping ])
          | None -> (st, [])
        in
        (st, pings @ [ Proto.Action.set_timer ~id:"ping" ~after:C.Timing.ping_period ])
    | "sweep" ->
        let now = now_s ctx in
        let children, evicted =
          List.partition (fun (_, seen) -> now -. seen <= C.Timing.peer_timeout) st.children
        in
        let st = { st with children } in
        let st, actions =
          match st.parent with
          | Some _ when (not (is_root st)) && now -. st.parent_seen > C.Timing.peer_timeout ->
              (* Parent is gone: detach and rejoin through the root. *)
              ( {
                  st with
                  parent = None;
                  parent_rtt = None;
                  parent_strikes = 0;
                  joined = false;
                  depth = 0;
                  join_attempts = 1;
                },
                [
                  Proto.Action.send ~dst:P.root (C.Join { origin = st.self });
                  Proto.Action.set_timer ~id:"retry" ~after:C.Timing.join_retry;
                ] )
          | Some _ | None -> (st, [])
        in
        let notes =
          List.map (fun (c, _) -> Proto.Action.note "evicted %d" (Proto.Node_id.to_int c)) evicted
        in
        (st, notes @ actions @ [ Proto.Action.set_timer ~id:"sweep" ~after:C.Timing.sweep_period ])
    | _ -> (st, [])

  let objectives = C.objectives ~parent:parent_of ~joined:is_joined
  let properties = C.properties ~parent:parent_of ~joined:is_joined

  let generic_msgs st =
    if st.joined then
      let ghost = Proto.Node_id.of_int 97 in
      [ (ghost, C.Join { origin = ghost }) ]
    else []
end

module Default = Make (Default_params)
