(** Gossip, baseline variant: the same push-pull wire protocol as
    {!Gossip}, with the peer-selection policy hard-coded in the round
    handler — a second data point for the paper's E1 code-metrics
    claim, on a second protocol.

    Like every tuned epidemic implementation, it accretes: a hand-rolled
    RTT estimator fed by push/push-back timing, freshness aging, a
    weighted sampler mixing the two, forced exploration every few
    rounds, and avoid-the-last-partner bookkeeping. The choice-exposed
    variant carries none of this; its resolver does. *)

module C = Gossip
module Int_set = Set.Make (Int)

(* Hard-coded tuning constants of the inline policy. *)
let rtt_alpha = 0.3
let default_rtt = 0.05
let explore_every = 8 (* every Nth round ignores the heuristic *)
let freshness_weight = 0.5
let proximity_weight = 1.0
let suspect_enter = 1.0 (* suspicion level at which a peer is written off *)
let suspect_exit = 0.5 (* level below which it is trusted again *)

module type PARAMS = Gossip.PARAMS

module Default_params = Gossip.Default_params

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = C.msg

  val known : state -> Int_set.t
  val round_of : state -> int
  val rtt_estimate : state -> Proto.Node_id.t -> float option
  val degraded_entries : state -> int
  val degraded_exits : state -> int
end = struct
  type msg = C.msg

  type state = {
    self : Proto.Node_id.t;
    known : Int_set.t;
    round : int;
    last_exchange : (Proto.Node_id.t * float) list;
    rtt_est : (Proto.Node_id.t * float) list;  (* hand-rolled EWMA *)
    push_sent : (Proto.Node_id.t * float) list;  (* outstanding probes *)
    last_target : Proto.Node_id.t option;
    written_off : Proto.Node_id.t list;  (* peers currently avoided as dead *)
    degraded : bool;  (* a majority of peers written off *)
    deg_entries : int;
    deg_exits : int;
  }

  let name = "gossip-baseline"
  let equal_state (a : state) b =
    Proto.Node_id.equal a.self b.self
    && Int_set.equal a.known b.known
    && a.round = b.round
    && a.last_exchange = b.last_exchange
    && a.rtt_est = b.rtt_est
    && a.push_sent = b.push_sent
    && a.last_target = b.last_target
    && a.written_off = b.written_off
    && a.degraded = b.degraded
    && a.deg_entries = b.deg_entries
    && a.deg_exits = b.deg_exits

  let msg_kind = C.msg_kind
  let msg_bytes = C.msg_bytes
  let pp_msg = C.pp_msg
  let msg_codec = Some C.msg_codec
  (* Same admission rules as the choice-exposed variant (shared
     [C.valid_rumors]), assembled against this module's own message
     view of the wire protocol. *)
  let validate =
    Some
      (function
        | C.Push { rumors; round } ->
            if round < 0 then Error "negative round" else C.valid_rumors rumors
        | C.Push_back { rumors } -> C.valid_rumors rumors)
  let durable = None
  let degraded = Some (fun st -> st.degraded)
  let priority = None

  let pp_state ppf st =
    Format.fprintf ppf "{r%d known=%d}" st.round (Int_set.cardinal st.known)

  (* Same equivalence classes as [pp_state] above, without formatting. *)
  let fingerprint = Some (fun st -> Hashtbl.hash (st.round, Int_set.cardinal st.known))

  let known st = st.known
  let round_of st = st.round
  let rtt_estimate st peer = List.assoc_opt peer st.rtt_est
  let degraded_entries st = st.deg_entries
  let degraded_exits st = st.deg_exits

  let peers st =
    let self = Proto.Node_id.to_int st.self in
    List.filter_map
      (fun i -> if i = self then None else Some (Proto.Node_id.of_int i))
      (List.init P.population Fun.id)

  let init (ctx : Proto.Ctx.t) =
    ( {
        self = ctx.self;
        known = Int_set.empty;
        round = 0;
        last_exchange = [];
        rtt_est = [];
        push_sent = [];
        last_target = None;
        written_off = [];
        degraded = false;
        deg_entries = 0;
        deg_exits = 0;
      },
      [ Proto.Action.set_timer ~id:"round" ~after:P.round_period ] )

  let touch st peer now =
    {
      st with
      last_exchange =
        (peer, now)
        :: List.filter (fun (p, _) -> not (Proto.Node_id.equal p peer)) st.last_exchange;
    }

  let merge st rumors = { st with known = Int_set.union st.known (Int_set.of_list rumors) }

  (* Push-backs double as RTT probes for the inline estimator. *)
  let note_rtt st peer now =
    match List.assoc_opt peer st.push_sent with
    | None -> st
    | Some sent ->
        let sample = now -. sent in
        let est =
          match List.assoc_opt peer st.rtt_est with
          | None -> sample
          | Some old -> ((1. -. rtt_alpha) *. old) +. (rtt_alpha *. sample)
        in
        {
          st with
          rtt_est =
            (peer, est)
            :: List.filter (fun (p, _) -> not (Proto.Node_id.equal p peer)) st.rtt_est;
          push_sent =
            List.filter (fun (p, _) -> not (Proto.Node_id.equal p peer)) st.push_sent;
        }

  let h_push =
    Proto.Handler.v ~name:"push"
      ~guard:(fun _ ~src:_ m -> match m with C.Push _ -> true | C.Push_back _ -> false)
      (fun ctx st ~src m ->
        match m with
        | C.Push { rumors; _ } ->
            let now = Dsim.Vtime.to_seconds ctx.now in
            let st = touch (merge st rumors) src now in
            let missing = Int_set.elements (Int_set.diff st.known (Int_set.of_list rumors)) in
            let reply =
              if missing = [] then []
              else [ Proto.Action.send ~dst:src (C.Push_back { rumors = missing }) ]
            in
            (st, reply)
        | C.Push_back _ -> (st, []))

  let h_push_back =
    Proto.Handler.v ~name:"push_back"
      ~guard:(fun _ ~src:_ m -> match m with C.Push_back _ -> true | C.Push _ -> false)
      (fun ctx st ~src m ->
        match m with
        | C.Push_back { rumors } ->
            let now = Dsim.Vtime.to_seconds ctx.now in
            (note_rtt (touch (merge st rumors) src now) src now, [])
        | C.Push _ -> (st, []))

  let receive = [ h_push; h_push_back ]

  (* The monolithic round handler: estimator lookups, freshness aging,
     weighted sampling, exploration escapes and last-partner avoidance
     all interleaved — the code shape §3.1 wants gone. *)
  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "round" ->
        let st = { st with round = st.round + 1 } in
        let rearm = Proto.Action.set_timer ~id:"round" ~after:P.round_period in
        (* Inline failure handling, the accreted way: re-derive the
           written-off list with its own two thresholds, then maintain
           the degraded flag and its entry/exit counters by hand. *)
        let written_off =
          List.filter
            (fun p ->
              let s = Proto.Ctx.suspicion ctx p in
              if List.exists (Proto.Node_id.equal p) st.written_off then s >= suspect_exit
              else s >= suspect_enter)
            (peers st)
        in
        let st = { st with written_off } in
        let degraded_now = 2 * List.length written_off > P.population - 1 in
        let st =
          if degraded_now && not st.degraded then
            { st with degraded = true; deg_entries = st.deg_entries + 1 }
          else if (not degraded_now) && st.degraded then
            { st with degraded = false; deg_exits = st.deg_exits + 1 }
          else st
        in
        if Int_set.is_empty st.known then (st, [ rearm ])
        else begin
          let now = Dsim.Vtime.to_seconds ctx.now in
          let candidates =
            List.filter
              (fun p -> not (List.exists (Proto.Node_id.equal p) st.written_off))
              (peers st)
          in
          if candidates = [] then (st, [ rearm ])
          else begin
          let target =
            if st.round mod explore_every = 0 then begin
              (* Forced exploration so the estimator keeps learning. *)
              let arr = Array.of_list candidates in
              arr.(Dsim.Rng.int ctx.rng (Array.length arr))
            end
            else begin
              let score peer =
                let rtt =
                  match List.assoc_opt peer st.rtt_est with
                  | Some r -> Float.max 0.001 r
                  | None -> default_rtt
                in
                let age =
                  match List.assoc_opt peer st.last_exchange with
                  | Some t -> Float.min 30. (now -. t)
                  | None -> 30.
                in
                let base = (proximity_weight /. rtt) +. (freshness_weight *. age) in
                if st.last_target = Some peer then base *. 0.25 else base
              in
              let weighted = List.map (fun p -> (p, score p)) candidates in
              let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weighted in
              if total <= 0. then
                let arr = Array.of_list candidates in
                arr.(Dsim.Rng.int ctx.rng (Array.length arr))
              else begin
                let roll = Dsim.Rng.float ctx.rng total in
                let rec pick acc = function
                  | [] -> List.hd candidates
                  | (p, w) :: rest -> if acc +. w >= roll then p else pick (acc +. w) rest
                in
                pick 0. weighted
              end
            end
          in
          let st =
            {
              st with
              last_target = Some target;
              push_sent =
                (target, now)
                :: List.filter
                     (fun (p, _) -> not (Proto.Node_id.equal p target))
                     st.push_sent;
            }
          in
          ( st,
            [
              Proto.Action.send ~dst:target
                (C.Push { rumors = Int_set.elements st.known; round = st.round });
              rearm;
            ] )
          end
        end
    | _ -> (st, [])

  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"coverage" (fun view ->
          Proto.View.fold
            (fun acc _ st -> acc +. float_of_int (Int_set.cardinal st.known))
            0. view);
    ]

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.liveness ~name:"uniform-knowledge" (fun view ->
          let union, inter =
            Proto.View.fold
              (fun (u, i) _ st ->
                ( Int_set.union u st.known,
                  match i with None -> Some st.known | Some i -> Some (Int_set.inter i st.known)
                ))
              (Int_set.empty, None) view
          in
          match inter with None -> true | Some i -> Int_set.equal union i);
    ]

  let generic_msgs st : (Proto.Node_id.t * msg) list =
    if Int_set.is_empty st.known then []
    else [ (Proto.Node_id.of_int 96, C.Push { rumors = [ 1_000_000 ]; round = st.round }) ]
end

module Default = Make (Default_params)
