(** Shared vocabulary of the two RandTree implementations: the wire
    protocol, tree measurements over global views, and the properties
    and objectives both variants expose. Keeping this out of the
    variant modules makes the paper's E1 code-metrics comparison read
    on exactly the code that differs: the policy logic. *)

type msg =
  | Join of { origin : Proto.Node_id.t }
      (** joining request; [origin] survives forwarding hops *)
  | Join_reply of { depth : int }  (** acceptance: sender is the parent *)
  | Ping  (** child -> parent heartbeat *)
  | Ping_ack of { depth : int }  (** parent -> child, carries parent depth *)

let msg_kind = function
  | Join _ -> "join"
  | Join_reply _ -> "join_reply"
  | Ping -> "ping"
  | Ping_ack _ -> "ping_ack"

let msg_bytes = function
  | Join _ -> 48
  | Join_reply _ -> 32
  | Ping -> 16
  | Ping_ack _ -> 24

let pp_msg ppf = function
  | Join { origin } -> Format.fprintf ppf "join(%a)" Proto.Node_id.pp origin
  | Join_reply { depth } -> Format.fprintf ppf "join_reply(d=%d)" depth
  | Ping -> Format.fprintf ppf "ping"
  | Ping_ack { depth } -> Format.fprintf ppf "ping_ack(d=%d)" depth

let msg_codec =
  let open Wire.Codec in
  let node = conv Proto.Node_id.to_int Proto.Node_id.of_int int in
  tagged
    (function
      | Join { origin } -> (0, encode node origin)
      | Join_reply { depth } -> (1, encode int depth)
      | Ping -> (2, "")
      | Ping_ack { depth } -> (3, encode int depth))
    (fun tag payload ->
      match tag with
      | 0 -> Result.map (fun origin -> Join { origin }) (decode node payload)
      | 1 -> Result.map (fun depth -> Join_reply { depth }) (decode int payload)
      | 2 -> if String.equal payload "" then Ok Ping else Error "ping carries a payload"
      | 3 -> Result.map (fun depth -> Ping_ack { depth }) (decode int payload)
      | t -> Error (Printf.sprintf "unknown randtree tag %d" t))

(** Protocol timing shared by both variants. *)
module Timing = struct
  let join_retry = 2.0
  let ping_period = 1.0
  let sweep_period = 2.0
  let peer_timeout = 4.5
end

(** Tree measurements, parametric in how to read a node's parent link
    so they work on either variant's state type. *)
module Measure = struct
  type chain = Depth of int | Left_view | Cycle

  (* Walks [id]'s parent links. [Depth d] when the chain reaches a
     parentless node (the root, at depth 1); [Left_view] when it exits
     the view (e.g. the parent crashed); [Cycle] when it loops. *)
  let chain_of ~parent view id =
    let n = Proto.View.node_count view in
    let rec climb id hops =
      if hops > n then Cycle
      else
        match Proto.View.find view id with
        | None -> Left_view
        | Some st -> (
            match parent st with None -> Depth (hops + 1) | Some p -> climb p (hops + 1))
    in
    climb id 0

  let depth_of ~parent view id =
    match chain_of ~parent view id with Depth d -> Some d | Left_view | Cycle -> None

  (* Maximum depth over nodes with a complete chain to a root; 0 for an
     empty view. *)
  let max_depth ~parent view =
    List.fold_left
      (fun acc (id, _) ->
        match depth_of ~parent view id with Some d -> max acc d | None -> acc)
      0 view.Proto.View.nodes

  let has_cycle ~parent view =
    List.exists
      (fun (id, _) -> chain_of ~parent view id = Cycle)
      view.Proto.View.nodes

  let joined_count ~joined view =
    List.length (List.filter (fun (_, st) -> joined st) view.Proto.View.nodes)

  (* Mean depth over nodes with complete chains; 0 for an empty view.
     Differentiates futures whose maximum depth ties. *)
  let mean_depth ~parent view =
    let total, count =
      List.fold_left
        (fun (total, count) (id, _) ->
          match depth_of ~parent view id with
          | Some d -> (total + d, count + 1)
          | None -> (total, count))
        (0, 0) view.Proto.View.nodes
    in
    if count = 0 then 0. else float_of_int total /. float_of_int count
end

(** The objectives and properties both variants expose (§3.2): keep the
    tree shallow and connected; never form a cycle; eventually everyone
    joins. *)
let objectives ~parent ~joined =
  [
    Core.Objective.v ~name:"shallow-tree" ~weight:1.0 (fun view ->
        -.float_of_int (Measure.max_depth ~parent view));
    Core.Objective.v ~name:"compact-tree" ~weight:0.3 (fun view ->
        -.(Measure.mean_depth ~parent view));
    Core.Objective.v ~name:"membership" ~weight:0.5 (fun view ->
        float_of_int (Measure.joined_count ~joined view));
  ]

let properties ~parent ~joined =
  [
    Core.Property.safety ~name:"no-cycle" (fun view ->
        not (Measure.has_cycle ~parent view));
    Core.Property.liveness ~name:"all-joined" (fun view ->
        List.for_all (fun (_, st) -> joined st) view.Proto.View.nodes);
  ]
