(** Multi-instance Paxos with an exposed proposer choice (paper §3.1,
    "Consensus").

    Every replica is acceptor, learner, and potential proposer. Each
    command born at a replica must be assigned to a proposer — {e that}
    assignment is the choice the paper discusses: classic deployments
    hard-code a fixed leader; Mencius [OSDI'08] hard-codes round-robin;
    here the protocol exposes it (label {!proposer_label}) and the
    policy is a resolver: {!fixed_leader_resolver},
    {!round_robin_resolver}, random, greedy-RTT, lookahead or bandit.

    Instances are partitioned by proposer ([k * n + self]), so the
    optimistic fast path (skip phase 1 on owned instances, as in
    Multi-Paxos/Mencius) never conflicts; the full
    prepare/promise/accept protocol still runs on retry after loss. *)

type cmd = { origin : int; seq : int; born : float }

let pp_cmd ppf c = Format.fprintf ppf "%d.%d" c.origin c.seq

type msg =
  | Submit of { cmd : cmd }  (** forward a client command to its proposer *)
  | Prepare of { inst : int; bal : int }
  | Promise of { inst : int; bal : int; accepted : (int * cmd) option }
  | Accept_req of { inst : int; bal : int; cmd : cmd }
  | Accepted of { inst : int; bal : int; cmd : cmd }
  | Decided of { inst : int; cmd : cmd }

let msg_kind = function
  | Submit _ -> "submit"
  | Prepare _ -> "prepare"
  | Promise _ -> "promise"
  | Accept_req _ -> "accept"
  | Accepted _ -> "accepted"
  | Decided _ -> "decided"

let msg_bytes = function
  | Submit _ -> 128
  | Prepare _ -> 48
  | Promise _ -> 96
  | Accept_req _ -> 160
  | Accepted _ -> 160
  | Decided _ -> 144

let pp_msg ppf = function
  | Submit { cmd } -> Format.fprintf ppf "submit(%a)" pp_cmd cmd
  | Prepare { inst; bal } -> Format.fprintf ppf "prepare(i%d b%d)" inst bal
  | Promise { inst; bal; accepted } ->
      Format.fprintf ppf "promise(i%d b%d%s)" inst bal
        (match accepted with None -> "" | Some _ -> " acc")
  | Accept_req { inst; bal; cmd } -> Format.fprintf ppf "accept(i%d b%d %a)" inst bal pp_cmd cmd
  | Accepted { inst; bal; cmd } -> Format.fprintf ppf "accepted(i%d b%d %a)" inst bal pp_cmd cmd
  | Decided { inst; cmd } -> Format.fprintf ppf "decided(i%d %a)" inst pp_cmd cmd

let cmd_codec =
  let open Wire.Codec in
  conv
    (fun c -> (c.origin, c.seq, c.born))
    (fun (origin, seq, born) -> { origin; seq; born })
    (triple int int float)

let msg_codec =
  let open Wire.Codec in
  let cmd_c = cmd_codec in
  let ballot = pair int int in
  let ballot_cmd = triple int int cmd_c in
  let promise_c = triple int int (option (pair int cmd_c)) in
  let decided_c = pair int cmd_c in
  tagged
    ~cases:
      [
        (0, shape cmd_c);
        (1, shape ballot);
        (2, shape promise_c);
        (3, shape ballot_cmd);
        (4, shape ballot_cmd);
        (5, shape decided_c);
      ]
    (function
      | Submit { cmd } -> (0, encode cmd_c cmd)
      | Prepare { inst; bal } -> (1, encode ballot (inst, bal))
      | Promise { inst; bal; accepted } ->
          (2, encode (triple int int (option (pair int cmd_c))) (inst, bal, accepted))
      | Accept_req { inst; bal; cmd } -> (3, encode ballot_cmd (inst, bal, cmd))
      | Accepted { inst; bal; cmd } -> (4, encode ballot_cmd (inst, bal, cmd))
      | Decided { inst; cmd } -> (5, encode (pair int cmd_c) (inst, cmd)))
    (fun tag payload ->
      match tag with
      | 0 -> Result.map (fun cmd -> Submit { cmd }) (decode cmd_c payload)
      | 1 -> Result.map (fun (inst, bal) -> Prepare { inst; bal }) (decode ballot payload)
      | 2 ->
          Result.map
            (fun (inst, bal, accepted) -> Promise { inst; bal; accepted })
            (decode (triple int int (option (pair int cmd_c))) payload)
      | 3 ->
          Result.map
            (fun (inst, bal, cmd) -> Accept_req { inst; bal; cmd })
            (decode ballot_cmd payload)
      | 4 ->
          Result.map (fun (inst, bal, cmd) -> Accepted { inst; bal; cmd }) (decode ballot_cmd payload)
      | 5 -> Result.map (fun (inst, cmd) -> Decided { inst; cmd }) (decode (pair int cmd_c) payload)
      | t -> Error (Printf.sprintf "unknown paxos tag %d" t))

let proposer_label = "paxos.proposer"

module type PARAMS = sig
  val population : int
  val client_period : float
  (** seconds between locally-born commands; 0. disables the local
      client *)

  val retry_timeout : float
end

module Default_params = struct
  let population = 5
  let client_period = 1.0
  let retry_timeout = 2.0
end

module Int_map = Map.Make (Int)

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = msg

  val decided : state -> cmd Int_map.t
  val latencies : state -> float list
  (** Commit latencies (seconds) of commands born at this replica,
      newest first. *)

  val born_count : state -> int

  val degraded_entries : state -> int
  (** Times this replica stepped down (entered degraded mode) because
      it suspected it could no longer reach a majority. *)

  val degraded_exits : state -> int
end = struct
  type nonrec msg = msg

  type acceptor_slot = { promised : int; accepted : (int * cmd) option }

  type proposal = {
    p_cmd : cmd;
    p_bal : int;
    p_promises : (int * (int * cmd) option) list;  (* acceptor, their accepted *)
    p_accepts : int list;
    p_phase2 : bool;  (* true once accept_req is out *)
    p_started : float;
  }

  type state = {
    self : Proto.Node_id.t;
    next_seq : int;  (* client sequence numbers *)
    next_slot : int;  (* own instance counter: inst = slot * n + self *)
    queue : cmd list;  (* commands awaiting an instance *)
    acceptor : acceptor_slot Int_map.t;
    proposals : proposal Int_map.t;
    decided : cmd Int_map.t;
    latencies : float list;
    born : int;
    degraded : bool;  (* stepped down: suspected quorum unreachable *)
    deg_entries : int;
    deg_exits : int;
  }

  let name = "paxos"
  let equal_state (a : state) b = a = b
  let msg_kind = msg_kind
  let msg_bytes = msg_bytes
  let pp_msg = pp_msg
  let msg_codec = Some msg_codec

  (* Byzantine admission check (see {!Proto.App_intf.APP.validate}).
     Every bound below is one an honest replica can never violate:
     commands are born at a real replica with a non-negative sequence
     and a finite timestamp; ballots start at [bal_of ~round:0], which
     is at least 1; instances count up from 0; and a promise only ever
     relays an acceptance from a strictly lower ballot than the one it
     promises. *)
  let valid_cmd c =
    if c.origin < 0 || c.origin >= P.population then Error "cmd origin outside population"
    else if c.seq < 0 then Error "negative cmd seq"
    else if not (Float.is_finite c.born && c.born >= 0.) then Error "cmd born not a timestamp"
    else Ok ()

  let valid_slot inst bal =
    if inst < 0 then Error "negative instance"
    else if bal < 1 then Error "ballot below 1"
    else Ok ()

  let validate =
    Some
      (fun m ->
        let ( let* ) = Result.bind in
        match m with
        | Submit { cmd } -> valid_cmd cmd
        | Prepare { inst; bal } -> valid_slot inst bal
        | Promise { inst; bal; accepted } -> (
            let* () = valid_slot inst bal in
            match accepted with
            | None -> Ok ()
            | Some (b, c) ->
                if b < 1 || b >= bal then Error "accepted ballot not below promised"
                else valid_cmd c)
        | Accept_req { inst; bal; cmd } | Accepted { inst; bal; cmd } ->
            let* () = valid_slot inst bal in
            valid_cmd cmd
        | Decided { inst; cmd } ->
            let* () = if inst < 0 then Error "negative instance" else Ok () in
            valid_cmd cmd)

  let pp_state ppf st =
    Format.fprintf ppf "{q=%d props=%d dec=%d}" (List.length st.queue)
      (Int_map.cardinal st.proposals) (Int_map.cardinal st.decided)

  (* Same equivalence classes as [pp_state] above, without formatting. *)
  let fingerprint =
    Some
      (fun st ->
        Hashtbl.hash
          (List.length st.queue, Int_map.cardinal st.proposals, Int_map.cardinal st.decided))

  let decided st = st.decided
  let latencies st = st.latencies
  let born_count st = st.born
  let degraded_entries st = st.deg_entries
  let degraded_exits st = st.deg_exits
  let degraded = Some (fun st -> st.degraded)

  (* Prioritise accepts over client proposals: phase-2 traffic commits
     in-flight instances, new Submits only add load, so under overflow
     the consensus core keeps making progress while intake is shed. *)
  let priority =
    Some
      (function
      | Accept_req _ | Accepted _ -> 3
      | Prepare _ | Promise _ -> 2
      | Decided _ -> 1
      | Submit _ -> 0)

  (* ---------- durability ----------

     What Paxos must never forget is exactly what the acceptor and
     learner roles have externalised: promises made, values accepted,
     decisions learned — plus the instance/sequence counters that stop
     a reborn proposer from reusing an instance its previous life
     already spent. Proposer scratch state ([queue], [proposals]) and
     telemetry are rebuilt or abandoned; a lost in-flight command is a
     liveness wart, a reused instance is an agreement violation. *)

  let slot_c =
    let open Wire.Codec in
    conv
      (fun (s : acceptor_slot) -> (s.promised, s.accepted))
      (fun (promised, accepted) -> { promised; accepted })
      (pair int (option (pair int cmd_codec)))

  let bindings_c value_c = Wire.Codec.(list (pair int value_c))

  (* Snapshots and WAL deltas share one shape: the counters (absolute)
     and two binding lists — the whole maps in a snapshot, only the
     changed entries in a delta. *)
  let durable_c = Wire.Codec.(pair (pair int int) (pair (bindings_c slot_c) (bindings_c cmd_codec)))

  let projection_c =
    Wire.Codec.conv
      (fun st ->
        ( (st.next_seq, st.next_slot),
          (Int_map.bindings st.acceptor, Int_map.bindings st.decided) ))
      (fun ((next_seq, next_slot), (acc, dec)) ->
        {
          self = Proto.Node_id.of_int 0;
          (* placeholder: [restore] keeps the booted self *)
          next_seq;
          next_slot;
          queue = [];
          acceptor = Int_map.of_seq (List.to_seq acc);
          proposals = Int_map.empty;
          decided = Int_map.of_seq (List.to_seq dec);
          latencies = [];
          born = 0;
          degraded = false;
          deg_entries = 0;
          deg_exits = 0;
        })
      durable_c

  let changed_bindings prev next =
    Int_map.fold
      (fun k v acc ->
        match Int_map.find_opt k prev with Some v' when v' = v -> acc | _ -> (k, v) :: acc)
      next []

  let durable =
    let log ~prev ~next =
      let slots = changed_bindings prev.acceptor next.acceptor in
      let dec = changed_bindings prev.decided next.decided in
      if
        slots = [] && dec = [] && prev.next_seq = next.next_seq
        && prev.next_slot = next.next_slot
      then None
      else Some (Wire.Codec.encode durable_c ((next.next_seq, next.next_slot), (slots, dec)))
    in
    let replay st record =
      Result.map
        (fun ((next_seq, next_slot), (slots, dec)) ->
          let add m (k, v) = Int_map.add k v m in
          {
            st with
            next_seq = Int.max st.next_seq next_seq;
            next_slot = Int.max st.next_slot next_slot;
            acceptor = List.fold_left add st.acceptor slots;
            decided = List.fold_left add st.decided dec;
          })
        (Wire.Codec.decode durable_c record)
    in
    let restore ~boot ~durable =
      {
        boot with
        next_seq = durable.next_seq;
        next_slot = durable.next_slot;
        acceptor = durable.acceptor;
        decided = durable.decided;
      }
    in
    Some (Proto.Durability.v ~snapshot_every:64 ~log ~replay ~restore projection_c)

  let n = P.population
  let majority = (n / 2) + 1
  let replicas = List.init n Proto.Node_id.of_int
  let others st = List.filter (fun r -> not (Proto.Node_id.equal r st.self)) replicas
  let bal_of ~round ~id = (round * n) + id + 1
  let self_int st = Proto.Node_id.to_int st.self

  let init (ctx : Proto.Ctx.t) =
    (* A reborn proposer must never reuse an instance from its previous
       life. The durable [next_slot], recovered through [restore], is
       what remembers how far the old life got — which makes losing the
       disk (an amnesia crash) exactly the failure this protocol cannot
       survive, and the durability layer load-bearing for agreement. *)
    let st =
      {
        self = ctx.self;
        next_seq = 0;
        next_slot = 0;
        queue = [];
        acceptor = Int_map.empty;
        proposals = Int_map.empty;
        decided = Int_map.empty;
        latencies = [];
        born = 0;
        degraded = false;
        deg_entries = 0;
        deg_exits = 0;
      }
    in
    let timers =
      [ Proto.Action.set_timer ~id:"retry" ~after:P.retry_timeout ]
      @
      if P.client_period > 0. then
        [ Proto.Action.set_timer ~id:"client" ~after:P.client_period ]
      else []
    in
    (st, timers)

  let slot st inst =
    Option.value ~default:{ promised = 0; accepted = None } (Int_map.find_opt inst st.acceptor)

  let broadcast st msg = List.map (fun r -> Proto.Action.send ~dst:r msg) (others st)

  (* Start phase 2 for [cmd] on a fresh owned instance with the
     optimistic round-0 ballot; owned instances never conflict, so this
     normally decides in one round trip. *)
  let propose_owned (ctx : Proto.Ctx.t) st cmd =
    let inst = (st.next_slot * n) + self_int st in
    let bal = bal_of ~round:0 ~id:(self_int st) in
    let now = Dsim.Vtime.to_seconds ctx.now in
    let prop =
      { p_cmd = cmd; p_bal = bal; p_promises = []; p_accepts = [ self_int st ]; p_phase2 = true; p_started = now }
    in
    (* Accept our own proposal locally. *)
    let acceptor = Int_map.add inst { promised = bal; accepted = Some (bal, cmd) } st.acceptor in
    let st =
      {
        st with
        next_slot = st.next_slot + 1;
        proposals = Int_map.add inst prop st.proposals;
        acceptor;
      }
    in
    (st, broadcast st (Accept_req { inst; bal; cmd }))

  let record_decision (ctx : Proto.Ctx.t) st inst cmd =
    if Int_map.mem inst st.decided then st
    else begin
      let st = { st with decided = Int_map.add inst cmd st.decided } in
      if cmd.origin = self_int st then
        { st with latencies = (Dsim.Vtime.to_seconds ctx.now -. cmd.born) :: st.latencies }
      else st
    end

  let h_submit =
    Proto.Handler.v ~name:"submit"
      ~guard:(fun _ ~src:_ m -> match m with Submit _ -> true | _ -> false)
      (fun ctx st ~src:_ m ->
        match m with
        | Submit { cmd } -> propose_owned ctx st cmd
        | _ -> (st, []))

  let h_prepare =
    Proto.Handler.v ~name:"prepare"
      ~guard:(fun _ ~src:_ m -> match m with Prepare _ -> true | _ -> false)
      (fun _ctx st ~src m ->
        match m with
        | Prepare { inst; bal } ->
            let s = slot st inst in
            if bal > s.promised then
              ( { st with acceptor = Int_map.add inst { s with promised = bal } st.acceptor },
                [ Proto.Action.send ~dst:src (Promise { inst; bal; accepted = s.accepted }) ] )
            else (st, [])
        | _ -> (st, []))

  let h_promise =
    Proto.Handler.v ~name:"promise"
      ~guard:(fun _ ~src:_ m -> match m with Promise _ -> true | _ -> false)
      (fun _ctx st ~src m ->
        match m with
        | Promise { inst; bal; accepted } -> (
            match Int_map.find_opt inst st.proposals with
            | Some prop when prop.p_bal = bal && not prop.p_phase2 ->
                let sender = Proto.Node_id.to_int src in
                if List.mem_assoc sender prop.p_promises then (st, [])
                else begin
                  let prop =
                    { prop with p_promises = (sender, accepted) :: prop.p_promises }
                  in
                  (* Count our own implicit promise. *)
                  if List.length prop.p_promises + 1 >= majority then begin
                    (* Phase 1 done: adopt the highest accepted value if
                       any acceptor reported one, else our command. *)
                    let adopted =
                      List.fold_left
                        (fun best (_, acc) ->
                          match (best, acc) with
                          | None, x -> x
                          | Some (b, _), Some (b', v') when b' > b -> Some (b', v')
                          | Some _, _ -> best)
                        None prop.p_promises
                    in
                    let value = match adopted with Some (_, v) -> v | None -> prop.p_cmd in
                    let prop = { prop with p_phase2 = true; p_accepts = [ self_int st ] } in
                    let acceptor =
                      Int_map.add inst
                        { promised = bal; accepted = Some (bal, value) }
                        st.acceptor
                    in
                    ( { st with proposals = Int_map.add inst prop st.proposals; acceptor },
                      broadcast st (Accept_req { inst; bal; cmd = value }) )
                  end
                  else ({ st with proposals = Int_map.add inst prop st.proposals }, [])
                end
            | Some _ | None -> (st, []))
        | _ -> (st, []))

  let h_accept_req =
    Proto.Handler.v ~name:"accept_req"
      ~guard:(fun _ ~src:_ m -> match m with Accept_req _ -> true | _ -> false)
      (fun _ctx st ~src m ->
        match m with
        | Accept_req { inst; bal; cmd } ->
            let s = slot st inst in
            (* One ballot carries one value: re-accepting the same
               ballot is idempotent, but a *different* value at an
               already-accepted ballot (an amnesiac proposer reusing
               its ballot) must be refused or agreement dies. *)
            let value_consistent =
              match s.accepted with
              | Some (b, c) when b = bal -> c = cmd
              | Some _ | None -> true
            in
            if bal >= s.promised && value_consistent then
              ( {
                  st with
                  acceptor = Int_map.add inst { promised = bal; accepted = Some (bal, cmd) } st.acceptor;
                },
                [ Proto.Action.send ~dst:src (Accepted { inst; bal; cmd }) ] )
            else (st, [])
        | _ -> (st, []))

  let h_accepted =
    Proto.Handler.v ~name:"accepted"
      ~guard:(fun _ ~src:_ m -> match m with Accepted _ -> true | _ -> false)
      (fun ctx st ~src m ->
        match m with
        | Accepted { inst; bal; cmd } -> (
            match Int_map.find_opt inst st.proposals with
            | Some prop when prop.p_bal = bal && prop.p_phase2 ->
                let sender = Proto.Node_id.to_int src in
                if List.mem sender prop.p_accepts then (st, [])
                else begin
                  let prop = { prop with p_accepts = sender :: prop.p_accepts } in
                  if List.length prop.p_accepts >= majority then begin
                    let st = record_decision ctx st inst cmd in
                    let st = { st with proposals = Int_map.remove inst st.proposals } in
                    (st, broadcast st (Decided { inst; cmd }))
                  end
                  else ({ st with proposals = Int_map.add inst prop st.proposals }, [])
                end
            | Some _ | None -> (st, []))
        | _ -> (st, []))

  let h_decided =
    Proto.Handler.v ~name:"decided"
      ~guard:(fun _ ~src:_ m -> match m with Decided _ -> true | _ -> false)
      (fun ctx st ~src m ->
        match m with
        | Decided { inst; cmd } ->
            (* Byzantine hardening, vacuous on honest traffic: instances
               are partitioned by proposer, so a decision for [inst] is
               only ever announced by its owner ([inst mod n]), and it
               can never contradict a value this replica itself accepted
               for the instance (a single-owner instance keeps one value
               across ballots). A mutated [Decided] failing either check
               is ignored — the honest announcement still arrives. *)
            let from_owner = Proto.Node_id.to_int src = inst mod n in
            let consistent =
              match Int_map.find_opt inst st.acceptor with
              | Some { accepted = Some (_, c); _ } -> c = cmd
              | _ -> true
            in
            if from_owner && consistent then
              ( { (record_decision ctx st inst cmd) with proposals = Int_map.remove inst st.proposals },
                [] )
            else (st, [])
        | _ -> (st, []))

  let receive = [ h_submit; h_prepare; h_promise; h_accept_req; h_accepted; h_decided ]

  (* The exposed choice: which replica proposes this freshly-born
     command? Self-delivery is free; remote proposers cost one
     forwarding hop but may sit closer to the quorum or be less
     loaded. *)
  let assign_proposer (ctx : Proto.Ctx.t) st cmd =
    let alternative replica =
      let rid = Proto.Node_id.to_int replica in
      Core.Choice.alt
        ~features:
          [
            ("replica_id", float_of_int rid);
            ("seq", float_of_int cmd.seq);
            ("is_self", if rid = self_int st then 1. else 0.);
            ( "rtt_ms",
              if rid = self_int st then 0. else Proto.Ctx.predicted_ms ctx replica );
          ]
        ~describe:(Format.asprintf "%a" Proto.Node_id.pp replica)
        replica
    in
    ctx.choose (Core.Choice.make ~label:proposer_label (List.map alternative replicas))

  (* Step-down rule: a proposer that suspects it cannot reach a
     majority (itself included) stops proposing — broadcasting prepares
     into a partition wins nothing and floods the minority side. Enter
     when the unsuspected peers plus self no longer form a majority;
     exit with hysteresis, once a majority of peers has dropped back
     below half suspicion. By symmetry of a partition this is the
     locally computable dual of "suspected by a majority": the nodes
     the majority side suspects are exactly those that cannot see a
     majority themselves. *)
  let quorum_reachable (ctx : Proto.Ctx.t) st ~cutoff =
    let reachable =
      1 + List.length (List.filter (fun r -> Proto.Ctx.suspicion ctx r < cutoff) (others st))
    in
    reachable >= majority

  let update_degraded ctx st =
    if st.degraded then
      if quorum_reachable ctx st ~cutoff:0.5 then
        { st with degraded = false; deg_exits = st.deg_exits + 1 }
      else st
    else if not (quorum_reachable ctx st ~cutoff:1.0) then
      { st with degraded = true; deg_entries = st.deg_entries + 1 }
    else st

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "client" ->
        let now = Dsim.Vtime.to_seconds ctx.now in
        let cmd = { origin = self_int st; seq = st.next_seq; born = now } in
        let st = { st with next_seq = st.next_seq + 1; born = st.born + 1 } in
        let rearm = Proto.Action.set_timer ~id:"client" ~after:P.client_period in
        let st = update_degraded ctx st in
        if st.degraded || Proto.Ctx.pressure ctx >= 0.75 then
          (* Stepped down, or our own mailbox is nearly full: park the
             command instead of proposing — new client intake only adds
             load while phase-2 traffic is what commits instances. The
             backlog is flushed once healthy. (Pressure is 0 under
             unbounded queues, so only the step-down case fires then.) *)
          ({ st with queue = cmd :: st.queue }, [ rearm ])
        else begin
          (* Flush anything parked while stepped down, oldest first. *)
          let backlog = List.rev st.queue in
          let st, flushed =
            List.fold_left
              (fun (st, acc) c ->
                let st, actions = propose_owned ctx st c in
                (st, acc @ actions))
              ({ st with queue = [] }, [])
              backlog
          in
          let proposer = assign_proposer ctx st cmd in
          if Proto.Node_id.equal proposer st.self then
            let st, actions = propose_owned ctx st cmd in
            (st, flushed @ actions @ [ rearm ])
          else (st, flushed @ [ Proto.Action.send ~dst:proposer (Submit { cmd }); rearm ])
        end
    | "retry" ->
        let st = update_degraded ctx st in
        let rearm = Proto.Action.set_timer ~id:"retry" ~after:P.retry_timeout in
        if st.degraded then (st, [ rearm ])
        else begin
        (* Re-run full Paxos (phase 1, higher ballot) for stuck
           proposals — lost messages or contention. *)
        let now = Dsim.Vtime.to_seconds ctx.now in
        let st, actions =
          Int_map.fold
            (fun inst prop (st, actions) ->
              if now -. prop.p_started <= P.retry_timeout then (st, actions)
              else begin
                let round = (prop.p_bal / n) + 1 in
                let bal = bal_of ~round ~id:(self_int st) in
                let prop =
                  { prop with p_bal = bal; p_promises = []; p_accepts = []; p_phase2 = false; p_started = now }
                in
                let s = slot st inst in
                let acceptor =
                  if bal > s.promised then
                    Int_map.add inst { s with promised = bal } st.acceptor
                  else st.acceptor
                in
                ( { st with proposals = Int_map.add inst prop st.proposals; acceptor },
                  actions @ broadcast st (Prepare { inst; bal }) )
              end)
            st.proposals (st, [])
        in
        (st, actions @ [ rearm ])
        end
    | _ -> (st, [])

  (* Agreement: no two replicas decide different commands for one
     instance — the safety property Paxos exists to provide. *)
  let agreement_uncached view =
    let decisions = Hashtbl.create 64 in
    Proto.View.fold
      (fun ok _ st ->
        Int_map.fold
          (fun inst cmd ok ->
            match Hashtbl.find_opt decisions inst with
            | None ->
                Hashtbl.replace decisions inst cmd;
                ok
            | Some cmd' -> ok && cmd = cmd')
          st.decided ok)
      true view

  (* The engine checks agreement after every event and the explorer
     after every expanded world, but [decided] maps are immutable and
     only ever replaced when a decision lands — most checks see the
     exact same maps as the previous one. Memoize on the physical
     identity of each node's [decided] (plus its id), which is sound
     because the fold above reads nothing else. One cache per domain
     (DLS): explorer workers check properties concurrently, and a
     shared cell would race; a per-domain miss just recomputes. *)
  let agreement_memo = Domain.DLS.new_key (fun () -> ref ([], true))

  let agreement view =
    let key = Proto.View.fold (fun acc id st -> (id, st.decided) :: acc) [] view in
    let memo = Domain.DLS.get agreement_memo in
    let prev_key, prev_result = !memo in
    let rec same a b =
      match (a, b) with
      | [], [] -> true
      | (id1, d1) :: ra, (id2, d2) :: rb -> Proto.Node_id.equal id1 id2 && d1 == d2 && same ra rb
      | ([], _ :: _ | _ :: _, []) -> false
    in
    if same prev_key key then prev_result
    else begin
      let result = agreement_uncached view in
      memo := (key, result);
      result
    end

  let properties =
    [
      Core.Property.safety ~name:"agreement" agreement;
      Core.Property.liveness ~name:"all-committed" (fun view ->
          Proto.View.fold
            (fun ok _ st -> ok && List.length st.latencies = st.born)
            true view);
    ]

  (* Objectives: commit as much as possible, as fast as possible. The
     cumulative-latency term is what lets a lookahead (or a bandit
     comparing reward deltas) tell two futures apart when both commit
     the command within the horizon but one takes an extra WAN hop. *)
  let objectives =
    [
      Core.Objective.v ~name:"commit-progress" (fun view ->
          Proto.View.fold
            (fun acc _ st ->
              acc
              +. float_of_int (Int_map.cardinal st.decided)
              -. (0.25 *. float_of_int (List.length st.queue + Int_map.cardinal st.proposals)))
            0. view);
      Core.Objective.v ~name:"commit-latency" ~weight:2.0 (fun view ->
          Proto.View.fold
            (fun acc _ st -> acc -. List.fold_left ( +. ) 0. st.latencies)
            0. view);
    ]

  let generic_msgs st =
    if Int_map.is_empty st.decided then []
    else
      let ghost = 94 in
      [
        ( Proto.Node_id.of_int ghost,
          Accept_req
            {
              inst = 0;
              bal = bal_of ~round:9 ~id:(ghost mod n);
              cmd = { origin = ghost; seq = 0; born = 0. };
            } );
      ]
end

module Default = Make (Default_params)

(** Classic deployment: node 0 proposes everything. *)
let fixed_leader_resolver ~leader =
  Core.Resolver.make ~name:"fixed-leader" (fun _rng site ->
      let best = ref 0 in
      for i = 0 to site.Core.Choice.site_arity - 1 do
        match Core.Choice.feature site ~alt:i "replica_id" with
        | Some id when int_of_float id = leader -> best := i
        | Some _ | None -> ()
      done;
      !best)

(** Mencius-style rotation: command [seq] born at replica [r] goes to
    replica [(r + seq) mod n] — every replica proposes in turn. *)
let round_robin_resolver ~population =
  Core.Resolver.make ~name:"round-robin" (fun _rng site ->
      let seq =
        match Core.Choice.feature site ~alt:0 "seq" with
        | Some s -> int_of_float s
        | None -> 0
      in
      let target = ((site.Core.Choice.site_node + seq) mod population + population) mod population in
      let best = ref 0 in
      for i = 0 to site.Core.Choice.site_arity - 1 do
        match Core.Choice.feature site ~alt:i "replica_id" with
        | Some id when int_of_float id = target -> best := i
        | Some _ | None -> ()
      done;
      !best)

(** Always propose locally — zero forwarding cost, the latency-greedy
    policy an RTT-aware resolver converges to. *)
let self_resolver =
  Core.Resolver.make ~name:"self" (fun _rng site ->
      let best = ref 0 in
      for i = 0 to site.Core.Choice.site_arity - 1 do
        match Core.Choice.feature site ~alt:i "is_self" with
        | Some x when x > 0.5 -> best := i
        | Some _ | None -> ()
      done;
      !best)
