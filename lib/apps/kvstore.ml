(** A primary-backup replicated key-value store whose {e read-replica
    selection} is the exposed choice (paper §3.2: "weaker consistency
    guarantees ... are often best expressed in terms of performance").

    Writes flow through the primary (node 0), which sequences them and
    broadcasts applies; replicas apply in order. Reads may be served by
    {e any} replica — the primary is always fresh but possibly far; a
    nearby replica is fast but possibly behind. The exposed choice
    {!read_label} carries exactly the features that tension needs
    (proximity, the freshest sequence number each replica was last seen
    at, the reader's own session floor), and the safety property
    [monotonic-reads] says what must never happen: a session observing
    the log run backwards. Hard-coded policies (always-primary,
    always-nearest) sit at the two ends of the tradeoff; resolvers can
    live anywhere on it. *)

module Int_map = Map.Make (Int)

type msg =
  | Write of { key : int; origin : Proto.Node_id.t }
  | Write_done of { seq : int; born : float }
  | Apply of { seq : int; key : int; value : int }
  | Read_req of { rid : int; key : int; origin : Proto.Node_id.t; born : float }
  | Read_reply of { rid : int; key : int; value : int; applied_seq : int; born : float }
  | Sync_req of { have : int }
      (** replica -> primary anti-entropy: "my applied_seq is [have],
          re-send what I'm missing" *)
  | Read_reject of { rid : int; retryable : bool }
      (** replica -> session: the read was shed under queue pressure;
          [retryable] says the session may re-issue it elsewhere *)

let msg_kind = function
  | Write _ -> "write"
  | Write_done _ -> "write_done"
  | Apply _ -> "apply"
  | Read_req _ -> "read_req"
  | Read_reply _ -> "read_reply"
  | Sync_req _ -> "sync"
  | Read_reject _ -> "read_reject"

let msg_bytes = function
  | Write _ -> 96
  | Write_done _ -> 48
  | Apply _ -> 128
  | Read_req _ -> 64
  | Read_reply _ -> 128
  | Sync_req _ -> 32
  | Read_reject _ -> 40

let pp_msg ppf = function
  | Write { key; _ } -> Format.fprintf ppf "write(k%d)" key
  | Write_done { seq; _ } -> Format.fprintf ppf "write_done(s%d)" seq
  | Apply { seq; key; _ } -> Format.fprintf ppf "apply(s%d k%d)" seq key
  | Read_req { key; _ } -> Format.fprintf ppf "read(k%d)" key
  | Read_reply { key; applied_seq; _ } -> Format.fprintf ppf "reply(k%d s%d)" key applied_seq
  | Sync_req { have } -> Format.fprintf ppf "sync(s%d)" have
  | Read_reject { rid; _ } -> Format.fprintf ppf "reject(r%d)" rid

let msg_codec =
  let open Wire.Codec in
  let node = conv Proto.Node_id.to_int Proto.Node_id.of_int int in
  tagged
    ~cases:
      [
        (0, shape (pair int node));
        (1, shape (pair int float));
        (2, shape (triple int int int));
        (3, shape (pair (pair int int) (pair node float)));
        (4, shape (pair (triple int int int) (pair int float)));
        (5, shape int);
        (6, shape (pair int bool));
      ]
    (function
      | Write { key; origin } -> (0, encode (pair int node) (key, origin))
      | Write_done { seq; born } -> (1, encode (pair int float) (seq, born))
      | Apply { seq; key; value } -> (2, encode (triple int int int) (seq, key, value))
      | Read_req { rid; key; origin; born } ->
          (3, encode (pair (pair int int) (pair node float)) ((rid, key), (origin, born)))
      | Read_reply { rid; key; value; applied_seq; born } ->
          (4, encode (pair (triple int int int) (pair int float)) ((rid, key, value), (applied_seq, born)))
      | Sync_req { have } -> (5, encode int have)
      | Read_reject { rid; retryable } -> (6, encode (pair int bool) (rid, retryable)))
    (fun tag payload ->
      match tag with
      | 0 -> Result.map (fun (key, origin) -> Write { key; origin }) (decode (pair int node) payload)
      | 1 -> Result.map (fun (seq, born) -> Write_done { seq; born }) (decode (pair int float) payload)
      | 2 ->
          Result.map
            (fun (seq, key, value) -> Apply { seq; key; value })
            (decode (triple int int int) payload)
      | 3 ->
          Result.map
            (fun ((rid, key), (origin, born)) -> Read_req { rid; key; origin; born })
            (decode (pair (pair int int) (pair node float)) payload)
      | 4 ->
          Result.map
            (fun ((rid, key, value), (applied_seq, born)) ->
              Read_reply { rid; key; value; applied_seq; born })
            (decode (pair (triple int int int) (pair int float)) payload)
      | 5 -> Result.map (fun have -> Sync_req { have }) (decode int payload)
      | 6 ->
          Result.map
            (fun (rid, retryable) -> Read_reject { rid; retryable })
            (decode (pair int bool) payload)
      | t -> Error (Printf.sprintf "unknown kvstore tag %d" t))

let read_label = "read.replica"

module type PARAMS = sig
  val population : int
  val keys : int

  val write_period : float
  (** per-client write interval; 0. disables *)

  val read_period : float
  (** per-client read interval; 0. disables *)
end

module Default_params = struct
  let population = 5
  let keys = 16
  let write_period = 0.4
  let read_period = 0.3
end

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = msg

  val applied_seq : state -> int
  val read_latencies : state -> float list
  val write_latencies : state -> float list
  val monotonic_violations : state -> int
  val reads_done : state -> int
  val staleness_sum : state -> int

  val degraded_entries : state -> int
  (** Times this node entered read-only degraded mode (a replica
      suspecting the primary, or the primary suspecting quorum loss). *)

  val degraded_exits : state -> int

  val reads_rejected : state -> int
  (** Reads this session saw shed under queue pressure (retryable
      {!Read_reject} replies). *)
end = struct
  type nonrec msg = msg

  type state = {
    self : Proto.Node_id.t;
    store : int Int_map.t;  (* key -> last writer sequence *)
    applied_seq : int;
    buffer : (int * int) Int_map.t;  (* out-of-order applies: seq -> (key, value) *)
    head_seq : int;  (* primary only *)
    write_origins : (int * (Proto.Node_id.t * float)) list;  (* seq -> origin, born *)
    read_floor : int;  (* freshest applied_seq any read reply showed us *)
    write_floor : int;  (* freshest of our own acked writes *)
    staleness_sum : int;  (* total seqs-behind-freshest across reads *)
    known_seq : (Proto.Node_id.t * int) list;  (* last applied_seq seen per replica *)
    next_rid : int;  (* read-request ids issued by this session *)
    last_rid : int;  (* newest reply this session has processed *)
    history : (int * int) Int_map.t;  (* primary: seq -> (key, value), for anti-entropy *)
    read_lat : float list;
    write_lat : float list;
    mono_violations : int;
    reads : int;
    degraded : bool;  (* read-only: writes are shed, reads keep working *)
    deg_entries : int;
    deg_exits : int;
    reads_rejected : int;  (* replies shed under pressure, seen by this session *)
  }

  let name = "kvstore"

  let equal_state (a : state) b =
    Proto.Node_id.equal a.self b.self
    && Int_map.equal Int.equal a.store b.store
    && a.applied_seq = b.applied_seq
    && Int_map.equal ( = ) a.buffer b.buffer
    && a.head_seq = b.head_seq
    && a.write_origins = b.write_origins
    && a.read_floor = b.read_floor
    && a.write_floor = b.write_floor
    && a.staleness_sum = b.staleness_sum
    && a.known_seq = b.known_seq
    && a.next_rid = b.next_rid
    && a.last_rid = b.last_rid
    && Int_map.equal ( = ) a.history b.history
    && a.read_lat = b.read_lat
    && a.write_lat = b.write_lat
    && a.mono_violations = b.mono_violations
    && a.reads = b.reads
    && a.degraded = b.degraded
    && a.deg_entries = b.deg_entries
    && a.deg_exits = b.deg_exits
    && a.reads_rejected = b.reads_rejected

  let msg_kind = msg_kind
  let msg_bytes = msg_bytes
  let pp_msg = pp_msg
  let msg_codec = Some msg_codec

  (* Byzantine admission check (see {!Proto.App_intf.APP.validate}).
     Honest traffic can never trip these: keys are drawn in
     [0, P.keys), every node id names a real replica, read ids and
     sequence numbers count up from 0 (the primary's log from 1), and
     born timestamps are finite simulation times. *)
  let valid_key key = if key < 0 || key >= P.keys then Error "key outside keyspace" else Ok ()

  let valid_node who origin =
    if Proto.Node_id.to_int origin >= P.population then
      Error (who ^ " outside population")
    else Ok ()

  let valid_born born =
    if not (Float.is_finite born && born >= 0.) then Error "born not a timestamp" else Ok ()

  let validate =
    Some
      (fun m ->
        let ( let* ) = Result.bind in
        match m with
        | Write { key; origin } ->
            let* () = valid_key key in
            valid_node "write origin" origin
        | Write_done { seq; born } ->
            let* () = if seq < 1 then Error "write seq below 1" else Ok () in
            valid_born born
        | Apply { seq; key; value } ->
            let* () = if seq < 1 then Error "apply seq below 1" else Ok () in
            let* () = valid_key key in
            (* The store maps a key to its last writer's sequence
               number, so an honest apply always carries [value = seq]
               — a mutation of either field breaks the equality. *)
            if value <> seq then Error "apply value/seq mismatch" else Ok ()
        | Read_req { rid; key; origin; born } ->
            let* () = if rid < 0 then Error "negative read id" else Ok () in
            let* () = valid_key key in
            let* () = valid_node "read origin" origin in
            valid_born born
        | Read_reply { rid; key; value; applied_seq; born } ->
            let* () = if rid < 0 then Error "negative read id" else Ok () in
            let* () = valid_key key in
            let* () = if value < 0 then Error "negative reply value" else Ok () in
            let* () = if applied_seq < 0 then Error "negative applied seq" else Ok () in
            (* A stored value is the sequence number of some applied
               write, so it can never exceed the replica's applied
               position. *)
            let* () =
              if value > applied_seq then Error "reply value ahead of applied seq" else Ok ()
            in
            valid_born born
        | Sync_req { have } -> if have < 0 then Error "negative sync floor" else Ok ()
        | Read_reject { rid; retryable = _ } ->
            if rid < 0 then Error "negative read id" else Ok ())

  (* ---------- durability ----------

     What must survive a crash is the committed data path: the store
     itself, how far it has applied, and (on the primary) the write
     sequencer and the anti-entropy history — losing [head_seq] would
     let a reborn primary re-issue sequence numbers and fork the log.
     Session state (read/write floors, rids) and the out-of-order
     [buffer] are deliberately transient: a reborn session starts a
     fresh one, and anti-entropy refetches whatever the buffer held. *)

  let bindings_c value_c = Wire.Codec.(list (pair int value_c))

  let durable_c =
    Wire.Codec.(
      pair (pair int int) (pair (bindings_c int) (bindings_c (pair int int))))

  let projection_c =
    Wire.Codec.conv
      (fun st ->
        ( (st.applied_seq, st.head_seq),
          (Int_map.bindings st.store, Int_map.bindings st.history) ))
      (fun ((applied_seq, head_seq), (store, history)) ->
        {
          self = Proto.Node_id.of_int 0;
          (* placeholder: [restore] keeps the booted self *)
          store = Int_map.of_seq (List.to_seq store);
          applied_seq;
          buffer = Int_map.empty;
          head_seq;
          write_origins = [];
          read_floor = 0;
          write_floor = 0;
          staleness_sum = 0;
          known_seq = [];
          next_rid = 0;
          last_rid = 0;
          history = Int_map.of_seq (List.to_seq history);
          read_lat = [];
          write_lat = [];
          mono_violations = 0;
          reads = 0;
          degraded = false;
          deg_entries = 0;
          deg_exits = 0;
          reads_rejected = 0;
        })
      durable_c

  let changed_bindings prev next =
    Int_map.fold
      (fun k v acc ->
        match Int_map.find_opt k prev with Some v' when v' = v -> acc | _ -> (k, v) :: acc)
      next []

  let durable =
    let log ~prev ~next =
      let store = changed_bindings prev.store next.store in
      let history = changed_bindings prev.history next.history in
      if
        store = [] && history = [] && prev.applied_seq = next.applied_seq
        && prev.head_seq = next.head_seq
      then None
      else
        Some
          (Wire.Codec.encode durable_c
             ((next.applied_seq, next.head_seq), (store, history)))
    in
    let replay st record =
      Result.map
        (fun ((applied_seq, head_seq), (store, history)) ->
          let add m (k, v) = Int_map.add k v m in
          {
            st with
            applied_seq = Int.max st.applied_seq applied_seq;
            head_seq = Int.max st.head_seq head_seq;
            store = List.fold_left add st.store store;
            history = List.fold_left add st.history history;
          })
        (Wire.Codec.decode durable_c record)
    in
    let restore ~boot ~durable =
      {
        boot with
        store = durable.store;
        applied_seq = durable.applied_seq;
        head_seq = durable.head_seq;
        history = durable.history;
      }
    in
    Some (Proto.Durability.v ~snapshot_every:64 ~log ~replay ~restore projection_c)

  let pp_state ppf st =
    Format.fprintf ppf "{applied=%d reads=%d viol=%d}" st.applied_seq st.reads st.mono_violations

  (* Same equivalence classes as [pp_state] above, without formatting. *)
  let fingerprint =
    Some (fun st -> Hashtbl.hash (st.applied_seq, st.reads, st.mono_violations))

  let applied_seq st = st.applied_seq
  let read_latencies st = st.read_lat
  let write_latencies st = st.write_lat
  let monotonic_violations st = st.mono_violations
  let reads_done st = st.reads
  let staleness_sum st = st.staleness_sum
  let degraded_entries st = st.deg_entries
  let degraded_exits st = st.deg_exits
  let reads_rejected st = st.reads_rejected
  let degraded = Some (fun st -> st.degraded)

  (* Shed reads before writes: replication traffic (writes and their
     acks/apply fan-out, anti-entropy) outranks the read path, so a
     By_priority overflow sacrifices read service, not durability. *)
  let priority =
    Some
      (function
      | Write _ | Write_done _ | Apply _ -> 2
      | Sync_req _ -> 1
      | Read_req _ | Read_reply _ | Read_reject _ -> 0)

  let primary_id = Proto.Node_id.of_int 0
  let is_primary st = Proto.Node_id.equal st.self primary_id

  let replicas =
    List.init P.population Proto.Node_id.of_int

  let majority = (P.population / 2) + 1

  (* Anti-entropy: every node periodically tells the primary how far it
     has applied; the primary re-sends what the channel ate. Without
     this a single lost [Apply] wedges a replica forever — under benign
     loss that window is short, under chaos storms it is the norm. *)
  let sync_period = 1.0
  let sync_batch = 32

  let init (ctx : Proto.Ctx.t) =
    let timers =
      (if P.write_period > 0. then
         [ Proto.Action.set_timer ~id:"write" ~after:(P.write_period *. (0.5 +. Dsim.Rng.uniform ctx.rng)) ]
       else [])
      @
      (if P.read_period > 0. then
         [ Proto.Action.set_timer ~id:"read" ~after:(P.read_period *. (0.5 +. Dsim.Rng.uniform ctx.rng)) ]
       else [])
      @ [
          Proto.Action.set_timer ~id:"sync"
            ~after:(sync_period +. (0.13 *. float_of_int (Proto.Node_id.to_int ctx.self)));
        ]
    in
    ( {
        self = ctx.self;
        store = Int_map.empty;
        applied_seq = 0;
        buffer = Int_map.empty;
        head_seq = 0;
        write_origins = [];
        read_floor = 0;
        write_floor = 0;
        staleness_sum = 0;
        known_seq = [];
        next_rid = 0;
        last_rid = 0;
        history = Int_map.empty;
        read_lat = [];
        write_lat = [];
        mono_violations = 0;
        reads = 0;
        degraded = false;
        deg_entries = 0;
        deg_exits = 0;
        reads_rejected = 0;
      },
      timers )

  (* Apply everything contiguous from the buffer. *)
  let rec drain st =
    match Int_map.find_opt (st.applied_seq + 1) st.buffer with
    | None -> st
    | Some (key, value) ->
        drain
          {
            st with
            applied_seq = st.applied_seq + 1;
            buffer = Int_map.remove (st.applied_seq + 1) st.buffer;
            store = Int_map.add key value st.store;
          }

  (* Read-only degradation on the failure detector's word. The primary
     goes read-only when it cannot see a majority of the replica group
     (its sequenced writes could no longer reach a quorum); a replica
     goes read-only when it suspects the primary (its submitted writes
     would vanish into silence). Hysteresis — enter at suspicion 1.0,
     leave below 0.5 — keeps a link hovering at the threshold from
     flapping the mode every sync tick. Pure detector reads: no RNG, so
     benign runs are bit-identical with the pre-degradation engine. *)
  let update_degraded (ctx : Proto.Ctx.t) st =
    let impaired ~cutoff =
      if is_primary st then
        let reachable =
          1
          + List.length
              (List.filter
                 (fun r ->
                   (not (Proto.Node_id.equal r st.self))
                   && Proto.Ctx.suspicion ctx r < cutoff)
                 replicas)
        in
        reachable < majority
      else Proto.Ctx.suspicion ctx primary_id >= cutoff
    in
    if st.degraded then
      if impaired ~cutoff:0.5 then st
      else { st with degraded = false; deg_exits = st.deg_exits + 1 }
    else if impaired ~cutoff:1.0 then
      { st with degraded = true; deg_entries = st.deg_entries + 1 }
    else st

  let h_write =
    Proto.Handler.v ~name:"write"
      ~guard:(fun st ~src:_ m ->
        (match m with Write _ -> true | _ -> false) && is_primary st && not st.degraded)
      (fun ctx st ~src:_ m ->
        match m with
        | Write { key; origin } ->
            let seq = st.head_seq + 1 in
            let born = Dsim.Vtime.to_seconds ctx.now in
            let st =
              {
                st with
                head_seq = seq;
                write_origins = (seq, (origin, born)) :: st.write_origins;
                history = Int_map.add seq (key, seq) st.history;
              }
            in
            (* The primary is its own first replica: it applies
               synchronously rather than round-tripping an [Apply]
               through the (possibly lossy, reordering) network to
               itself — the sequencer must never lag its own log, or a
               session whose floor came from a faster replica would
               read the primary and watch the log run backwards. *)
            let st = drain { st with buffer = Int_map.add seq (key, seq) st.buffer } in
            let done_, waiting =
              List.partition (fun (s, _) -> s <= st.applied_seq) st.write_origins
            in
            let acks =
              List.map
                (fun (s, (origin, born)) ->
                  Proto.Action.send ~dst:origin (Write_done { seq = s; born }))
                done_
            in
            let applies =
              List.filter_map
                (fun r ->
                  if Proto.Node_id.equal r st.self then None
                  else Some (Proto.Action.send ~dst:r (Apply { seq; key; value = seq })))
                replicas
            in
            ({ st with write_origins = waiting }, applies @ acks)
        | _ -> (st, []))

  let h_apply =
    Proto.Handler.v ~name:"apply"
      ~guard:(fun _ ~src:_ m -> match m with Apply _ -> true | _ -> false)
      (fun _ctx st ~src:_ m ->
        match m with
        | Apply { seq; key; value } ->
            if seq <= st.applied_seq then (st, [])
            else begin
              let st = drain { st with buffer = Int_map.add seq (key, value) st.buffer } in
              (* The primary acknowledges a write once it has applied
                 it itself. *)
              if is_primary st then begin
                let done_, waiting =
                  List.partition (fun (s, _) -> s <= st.applied_seq) st.write_origins
                in
                let acks =
                  List.map
                    (fun (s, (origin, born)) ->
                      Proto.Action.send ~dst:origin (Write_done { seq = s; born }))
                    done_
                in
                ({ st with write_origins = waiting }, acks)
              end
              else (st, [])
            end
        | _ -> (st, []))

  let h_write_done =
    Proto.Handler.v ~name:"write_done"
      ~guard:(fun _ ~src:_ m -> match m with Write_done _ -> true | _ -> false)
      (fun ctx st ~src:_ m ->
        match m with
        | Write_done { seq; born } ->
            let lat = Dsim.Vtime.to_seconds ctx.now -. born in
            ( {
                st with
                write_lat = lat :: st.write_lat;
                write_floor = max st.write_floor seq;
              },
              [] )
        | _ -> (st, []))

  let h_read_req =
    Proto.Handler.v ~name:"read_req"
      ~guard:(fun _ ~src:_ m -> match m with Read_req _ -> true | _ -> false)
      (fun ctx st ~src:_ m ->
        match m with
        | Read_req { rid; key; origin; born } ->
            (* Under queue pressure the read path is shed first (reads
               are retryable elsewhere, replication is not): answer with
               a cheap retryable rejection instead of a full reply.
               [pressure] is 0 unless the engine runs bounded mailboxes,
               so the branch is dead on default configurations. *)
            if Proto.Ctx.pressure ctx >= 0.5 then
              (st, [ Proto.Action.send ~dst:origin (Read_reject { rid; retryable = true }) ])
            else
              let value = Option.value ~default:0 (Int_map.find_opt key st.store) in
              ( st,
                [
                  Proto.Action.send ~dst:origin
                    (Read_reply { rid; key; value; applied_seq = st.applied_seq; born });
                ] )
        | _ -> (st, []))

  let h_read_reject =
    Proto.Handler.v ~name:"read_reject"
      ~guard:(fun _ ~src:_ m -> match m with Read_reject _ -> true | _ -> false)
      (fun _ctx st ~src:_ m ->
        match m with
        | Read_reject { rid; _ } when rid > st.last_rid && rid <= st.next_rid ->
            (* Count the shed and retire the rid; the periodic read
               timer is the retry loop, so no immediate re-issue. A rid
               this session never issued ([> next_rid]) is a byzantine
               forgery and is ignored. *)
            ({ st with last_rid = rid; reads_rejected = st.reads_rejected + 1 }, [])
        | _ -> (st, []))

  let h_read_reply =
    Proto.Handler.v ~name:"read_reply"
      ~guard:(fun _ ~src:_ m -> match m with Read_reply _ -> true | _ -> false)
      (fun ctx st ~src m ->
        match m with
        | Read_reply { rid; applied_seq; born; _ }
          when rid > st.last_rid
               (* Byzantine hardening, vacuous on honest traffic: this
                  session issued read ids up to [next_rid], and a
                  replica's applied position never regresses — a reply
                  for a never-issued rid, or one claiming the replica
                  moved backwards from what this session already saw of
                  it, is a forgery and is ignored. *)
               && rid <= st.next_rid
               && applied_seq >= Option.value ~default:0 (List.assoc_opt src st.known_seq) ->
            let st = { st with last_rid = rid } in
            let lat = Dsim.Vtime.to_seconds ctx.now -. born in
            (* Monotonic reads: within one session the log must never
               appear to run backwards across successive reads. *)
            let violation = applied_seq < st.read_floor in
            (* Staleness: how far behind the freshest state this
               session has evidence of (its own acked writes included)
               the reply was. *)
            let staleness = max 0 (max st.read_floor st.write_floor - applied_seq) in
            ( {
                st with
                reads = st.reads + 1;
                read_lat = lat :: st.read_lat;
                mono_violations = (st.mono_violations + if violation then 1 else 0);
                staleness_sum = st.staleness_sum + staleness;
                read_floor = max st.read_floor applied_seq;
                known_seq =
                  (src, applied_seq)
                  :: List.filter (fun (p, _) -> not (Proto.Node_id.equal p src)) st.known_seq;
              },
              [] )
        | _ -> (st, []))

  let h_sync =
    Proto.Handler.v ~name:"sync"
      ~guard:(fun st ~src:_ m -> (match m with Sync_req _ -> true | _ -> false) && is_primary st)
      (fun _ctx st ~src m ->
        match m with
        | Sync_req { have } ->
            let upto = min st.head_seq (have + sync_batch) in
            let resend = ref [] in
            for seq = upto downto have + 1 do
              match Int_map.find_opt seq st.history with
              | Some (key, value) ->
                  resend := Proto.Action.send ~dst:src (Apply { seq; key; value }) :: !resend
              | None -> ()
            done;
            (st, !resend)
        | _ -> (st, []))

  let receive =
    [ h_write; h_apply; h_write_done; h_read_req; h_read_reply; h_sync; h_read_reject ]

  (* The exposed choice: which *other* replica serves this read? (The
     local store is a cache, not a quorum member; sessions consult the
     replica group.) *)
  let choose_replica (ctx : Proto.Ctx.t) st =
    let candidates =
      List.filter (fun r -> not (Proto.Node_id.equal r st.self)) replicas
    in
    let alternative r =
      let rid = Proto.Node_id.to_int r in
      Core.Choice.alt
        ~features:
          [
            ("replica_id", float_of_int rid);
            ("is_primary", if rid = 0 then 1. else 0.);
            ("rtt_ms", Proto.Ctx.predicted_ms ctx r);
            ( "known_seq",
              float_of_int (Option.value ~default:0 (List.assoc_opt r st.known_seq)) );
            ("floor", float_of_int (max st.read_floor st.write_floor));
          ]
        ~describe:(Format.asprintf "%a" Proto.Node_id.pp r)
        r
    in
    ctx.choose (Core.Choice.make ~label:read_label (List.map alternative candidates))

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "write" ->
        let rearm = Proto.Action.set_timer ~id:"write" ~after:P.write_period in
        if st.degraded then (st, [ rearm ])  (* read-only: shed the write *)
        else
          let key = Dsim.Rng.int ctx.rng P.keys in
          (st, [ Proto.Action.send ~dst:primary_id (Write { key; origin = st.self }); rearm ])
    | "read" ->
        let rearm = Proto.Action.set_timer ~id:"read" ~after:P.read_period in
        (* Self-throttle: when our own mailbox is nearly full, issuing
           more reads only feeds the overload. Shed at the source and
           try again next period. Dead branch under unbounded queues. *)
        if Proto.Ctx.pressure ctx >= 0.75 then (st, [ rearm ])
        else
          let key = Dsim.Rng.int ctx.rng P.keys in
          let born = Dsim.Vtime.to_seconds ctx.now in
          let target = choose_replica ctx st in
          let rid = st.next_rid + 1 in
          let read_actions =
            [ Proto.Action.send ~dst:target (Read_req { rid; key; origin = st.self; born }) ]
          in
          ({ st with next_rid = rid }, read_actions @ [ rearm ])
    | "sync" ->
        let st = update_degraded ctx st in
        let rearm = Proto.Action.set_timer ~id:"sync" ~after:sync_period in
        if is_primary st then (st, [ rearm ])
        else
          ( st,
            [ Proto.Action.send ~dst:primary_id (Sync_req { have = st.applied_seq }); rearm ] )
    | _ -> (st, [])

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.safety ~name:"monotonic-reads" (fun view ->
          Proto.View.fold (fun ok _ st -> ok && st.mono_violations = 0) true view);
      Core.Property.liveness ~name:"replicas-converge" (fun view ->
          let head =
            Proto.View.fold (fun h _ st -> max h st.head_seq) 0 view
          in
          Proto.View.fold (fun ok _ st -> ok && st.applied_seq = head) true view);
    ]

  (* Reads completed fast, no staleness regressions: the §3.2 "weaker
     consistency expressed as performance" objective. *)
  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"read-throughput" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int st.reads) 0. view);
      Core.Objective.v ~name:"read-latency" ~weight:2.0 (fun view ->
          Proto.View.fold
            (fun acc _ st -> acc -. List.fold_left ( +. ) 0. st.read_lat)
            0. view);
      Core.Objective.v ~name:"session-integrity" ~weight:50.0 (fun view ->
          Proto.View.fold
            (fun acc _ st -> acc -. float_of_int st.mono_violations)
            0. view);
      Core.Objective.v ~name:"freshness" ~weight:0.5 (fun view ->
          Proto.View.fold
            (fun acc _ st -> acc -. float_of_int st.staleness_sum)
            0. view);
    ]

  let generic_msgs st : (Proto.Node_id.t * msg) list =
    if st.applied_seq = 0 then []
    else
      [
        ( Proto.Node_id.of_int 92,
          Read_reply { rid = 0; key = 0; value = 0; applied_seq = 0; born = 0. } );
      ]
end

module Default = Make (Default_params)

(** Always read from the primary: linearizable and slow. *)
let primary_resolver =
  Core.Resolver.make ~name:"primary" (fun _rng site ->
      let best = ref 0 in
      for i = 0 to site.Core.Choice.site_arity - 1 do
        match Core.Choice.feature site ~alt:i "is_primary" with
        | Some x when x > 0.5 -> best := i
        | Some _ | None -> ()
      done;
      !best)

(** Always read locally: instant and as stale as it gets. *)
let nearest_resolver =
  Core.Resolver.make ~name:"nearest" (fun _rng site ->
      let rtt i =
        Option.value ~default:infinity (Core.Choice.feature site ~alt:i "rtt_ms")
      in
      let best = ref 0 in
      for i = 1 to site.Core.Choice.site_arity - 1 do
        if rtt i < rtt !best then best := i
      done;
      !best)

(** The session-aware compromise: cheapest replica not known to be
    behind this session's floor; the primary as the safe fallback. *)
let session_resolver =
  Core.Resolver.make ~name:"session" (fun _rng site ->
      let feature name i =
        Option.value ~default:0. (Core.Choice.feature site ~alt:i name)
      in
      let floor = feature "floor" 0 in
      let fresh_enough i =
        feature "known_seq" i >= floor || feature "is_primary" i > 0.5
      in
      let best = ref None in
      for i = 0 to site.Core.Choice.site_arity - 1 do
        if fresh_enough i then
          match !best with
          | Some j when feature "rtt_ms" j <= feature "rtt_ms" i -> ()
          | Some _ | None -> best := Some i
      done;
      match !best with
      | Some i -> i
      | None ->
          let p = ref 0 in
          for i = 0 to site.Core.Choice.site_arity - 1 do
            if feature "is_primary" i > 0.5 then p := i
          done;
          !p)
