(** A small lease service with a realistic race — the steering
    demonstrator (paper §2).

    Node 0 grants an exclusive lease; clients request, hold, and
    release it. The granter also expires leases on a timer so a crashed
    client cannot wedge the service. The bug is the classic one: the
    expiry timer is too eager relative to client hold times, so the
    granter can hand the lease to a second client while the first still
    holds it — but only under particular message timings. Consequence
    prediction spots the imminent double-grant from a snapshot (a
    pending [Lease] plus a current holder) and execution steering drops
    the offending message; the client simply retries later, by which
    time the lease is genuinely free. *)

type msg =
  | Request  (** client -> granter *)
  | Lease  (** granter -> client: you hold it now *)
  | Release  (** client -> granter *)
  | Denied  (** granter -> client: busy, retry later *)

let msg_kind = function
  | Request -> "request"
  | Lease -> "lease"
  | Release -> "release"
  | Denied -> "denied"

let msg_bytes _ = 32

let pp_msg ppf m = Format.fprintf ppf "%s" (msg_kind m)

module type PARAMS = sig
  val population : int
  (** node 0 is the granter, 1..population-1 are clients *)

  val want_period : float
  (** how often an idle client asks *)

  val hold_time : float
  (** how long a client keeps the lease *)

  val expiry : float
  (** granter-side expiry; the bug is [expiry < hold_time + rtt] *)
end

module Default_params = struct
  let population = 4
  let want_period = 2.0
  let hold_time = 1.5
  let expiry = 1.0
end

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = msg

  val holding : state -> bool
  val grants_made : state -> int
end = struct
  type nonrec msg = msg

  type role =
    | Granter of { holder : Proto.Node_id.t option; grants : int }
    | Client of { holding : bool }

  type state = { self : Proto.Node_id.t; role : role }

  let name = "lease"
  let equal_state (a : state) b = a = b
  let msg_kind = msg_kind
  let msg_bytes = msg_bytes
  let pp_msg = pp_msg
  let msg_codec = None
  let validate = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_state ppf st =
    match st.role with
    | Granter { holder; grants } ->
        Format.fprintf ppf "{granter h=%a g=%d}"
          (Format.pp_print_option Proto.Node_id.pp ~none:(fun ppf () -> Format.fprintf ppf "-"))
          holder grants
    | Client { holding } -> Format.fprintf ppf "{client h=%b}" holding

  (* [pp_state] prints the whole role, so hashing it matches exactly. *)
  let fingerprint = Some (fun st -> Hashtbl.hash st.role)

  let holding st = match st.role with Client { holding } -> holding | Granter _ -> false
  let grants_made st = match st.role with Granter { grants; _ } -> grants | Client _ -> 0

  let granter_id = Proto.Node_id.of_int 0
  let is_granter st = Proto.Node_id.equal st.self granter_id

  let init (ctx : Proto.Ctx.t) =
    if Proto.Node_id.equal ctx.self granter_id then
      ({ self = ctx.self; role = Granter { holder = None; grants = 0 } }, [])
    else
      ( { self = ctx.self; role = Client { holding = false } },
        [ Proto.Action.set_timer ~id:"want" ~after:P.want_period ] )

  let h_request =
    Proto.Handler.v ~name:"request"
      ~guard:(fun st ~src:_ m -> m = Request && is_granter st)
      (fun _ st ~src m ->
        match (m, st.role) with
        | Request, Granter { holder = None; grants } ->
            ( { st with role = Granter { holder = Some src; grants = grants + 1 } },
              [
                Proto.Action.send ~dst:src Lease;
                (* The buggy eagerness: the lease is reclaimed after
                   P.expiry regardless of the client's hold time. *)
                Proto.Action.set_timer ~id:"expire" ~after:P.expiry;
              ] )
        | Request, Granter { holder = Some _; _ } ->
            (st, [ Proto.Action.send ~dst:src Denied ])
        | _ -> (st, []))

  let h_release =
    Proto.Handler.v ~name:"release"
      ~guard:(fun st ~src:_ m -> m = Release && is_granter st)
      (fun _ st ~src m ->
        match (m, st.role) with
        | Release, Granter { holder = Some h; grants } when Proto.Node_id.equal h src ->
            ( { st with role = Granter { holder = None; grants } },
              [ Proto.Action.cancel_timer "expire" ] )
        | _ -> (st, []))

  let h_lease =
    Proto.Handler.v ~name:"lease"
      ~guard:(fun st ~src:_ m -> m = Lease && not (is_granter st))
      (fun _ st ~src:_ m ->
        match (m, st.role) with
        | Lease, Client _ ->
            ( { st with role = Client { holding = true } },
              [ Proto.Action.set_timer ~id:"done" ~after:P.hold_time ] )
        | _ -> (st, []))

  let h_denied =
    Proto.Handler.v ~name:"denied"
      ~guard:(fun st ~src:_ m -> m = Denied && not (is_granter st))
      (fun _ st ~src:_ _ -> (st, []))

  let receive = [ h_request; h_release; h_lease; h_denied ]

  let on_timer (ctx : Proto.Ctx.t) st id =
    match (id, st.role) with
    | "want", Client { holding = false } ->
        (* Jitter requests a little so clients do not synchronise. *)
        let delay = P.want_period *. (0.8 +. (0.4 *. Dsim.Rng.uniform ctx.rng)) in
        (st, [ Proto.Action.send ~dst:granter_id Request; Proto.Action.set_timer ~id:"want" ~after:delay ])
    | "want", Client { holding = true } ->
        (st, [ Proto.Action.set_timer ~id:"want" ~after:P.want_period ])
    | "done", Client { holding = true } ->
        ( { st with role = Client { holding = false } },
          [
            Proto.Action.send ~dst:granter_id Release;
            Proto.Action.set_timer ~id:"want" ~after:P.want_period;
          ] )
    | "expire", Granter { holder = Some _; grants } ->
        (* The premature reclaim at the heart of the bug. *)
        ({ st with role = Granter { holder = None; grants } }, [])
    | ("want" | "done" | "expire"), _ -> (st, [])
    | _, _ -> (st, [])

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.safety ~name:"exclusive-lease" (fun view ->
          Proto.View.fold (fun n _ st -> if holding st then n + 1 else n) 0 view <= 1);
      Core.Property.liveness ~name:"lease-circulates" (fun view ->
          Proto.View.fold (fun g _ st -> g + grants_made st) 0 view > 0);
    ]

  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"grants" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int (grants_made st)) 0. view);
    ]

  let generic_msgs st : (Proto.Node_id.t * msg) list =
    match st.role with
    | Client { holding = false } -> [ (granter_id, Lease) ]
    | Client _ | Granter _ -> []
end

module Default = Make (Default_params)
