(** RandTree, choice-exposed variant (paper §3.1, §4): the same wire
    protocol as {!Randtree_baseline}, but the join-forwarding policy is
    gone. The join logic is split into four small guarded handlers —
    the NFA style — and the only genuinely unresolved decision, {e
    which child to forward a join to}, is exposed to the runtime as a
    labelled choice with network-model features. *)

module C = Randtree_common

module type PARAMS = Randtree_baseline.PARAMS

module Default_params = Randtree_baseline.Default_params

module Make (P : PARAMS) : sig
  include Proto.App_intf.APP with type msg = C.msg

  val parent_of : state -> Proto.Node_id.t option
  val depth_field : state -> int
  val is_joined : state -> bool
  val children_of : state -> Proto.Node_id.t list

  val forward_label : string
  (** The label of the exposed forwarding choice, for resolvers and
      tests. *)
end = struct
  type msg = C.msg

  type state = {
    self : Proto.Node_id.t;
    parent : Proto.Node_id.t option;
    parent_seen : float;
    depth : int;
    children : (Proto.Node_id.t * float) list;
    joined : bool;
  }

  let name = "randtree-choice"
  let forward_label = "join.forward"
  let equal_state (a : state) b = a = b
  let msg_kind = C.msg_kind
  let msg_bytes = C.msg_bytes
  let pp_msg = C.pp_msg
  let msg_codec = Some C.msg_codec
  let validate = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_state ppf st =
    Format.fprintf ppf "{p=%a d=%d c=[%a] j=%b}"
      (Format.pp_print_option Proto.Node_id.pp ~none:(fun ppf () -> Format.fprintf ppf "-"))
      st.parent st.depth
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Proto.Node_id.pp)
      (List.map fst st.children)
      st.joined

  (* Same equivalence classes as [pp_state] above, without formatting.
     [hash_param] with generous bounds so long child lists are not
     truncated into accidental hash-equality. *)
  let fingerprint =
    Some
      (fun st ->
        Hashtbl.hash_param 64 256 (st.parent, st.depth, List.map fst st.children, st.joined))

  let parent_of st = st.parent
  let depth_field st = st.depth
  let is_joined st = st.joined
  let children_of st = List.map fst st.children
  let is_root st = Proto.Node_id.equal st.self P.root
  let now_s (ctx : Proto.Ctx.t) = Dsim.Vtime.to_seconds ctx.now
  let child_mem st id = List.mem_assoc id st.children

  let is_parent st id =
    match st.parent with Some p -> Proto.Node_id.equal p id | None -> false

  let touch_child ctx st id =
    List.map
      (fun (c, seen) -> if Proto.Node_id.equal c id then (c, now_s ctx) else (c, seen))
      st.children

  let base_timers =
    [
      Proto.Action.set_timer ~id:"ping" ~after:C.Timing.ping_period;
      Proto.Action.set_timer ~id:"sweep" ~after:C.Timing.sweep_period;
    ]

  let init (ctx : Proto.Ctx.t) =
    let root = Proto.Node_id.equal ctx.self P.root in
    let st =
      {
        self = ctx.self;
        parent = None;
        parent_seen = now_s ctx;
        depth = (if root then 1 else 0);
        children = [];
        joined = root;
      }
    in
    if root then (st, base_timers)
    else
      ( st,
        Proto.Action.send ~dst:P.root (C.Join { origin = ctx.self })
        :: Proto.Action.set_timer ~id:"retry" ~after:C.Timing.join_retry
        :: base_timers )

  (* --- four small join handlers instead of one monolith --- *)

  let join_origin msg = match msg with C.Join { origin } -> Some origin | _ -> None

  let h_join_relay =
    Proto.Handler.v ~name:"join/relay"
      ~guard:(fun st ~src:_ msg -> join_origin msg <> None && not st.joined)
      (fun _ctx st ~src:_ msg ->
        match join_origin msg with
        | Some origin when not (Proto.Node_id.equal origin st.self) ->
            (st, [ Proto.Action.send ~dst:P.root (C.Join { origin }) ])
        | Some _ | None -> (st, []))

  let h_join_duplicate =
    Proto.Handler.v ~name:"join/duplicate"
      ~guard:(fun st ~src:_ msg ->
        match join_origin msg with
        | Some o -> st.joined && child_mem st o && not (is_parent st o)
        | None -> false)
      (fun ctx st ~src:_ msg ->
        match join_origin msg with
        | Some origin ->
            ( { st with children = touch_child ctx st origin },
              [ Proto.Action.send ~dst:origin (C.Join_reply { depth = st.depth + 1 }) ] )
        | None -> (st, []))

  let h_join_accept =
    Proto.Handler.v ~name:"join/accept"
      ~guard:(fun st ~src:_ msg ->
        match join_origin msg with
        | Some o ->
            st.joined && (not (child_mem st o))
            && (not (is_parent st o))
            && (not (Proto.Node_id.equal o st.self))
            && List.length st.children < P.max_children
        | None -> false)
      (fun ctx st ~src:_ msg ->
        match join_origin msg with
        | Some origin ->
            ( { st with children = (origin, now_s ctx) :: st.children },
              [ Proto.Action.send ~dst:origin (C.Join_reply { depth = st.depth + 1 }) ] )
        | None -> (st, []))

  (* The exposed choice: which child should serve this join? Features
     give the runtime freshness and predicted network cost; the
     resolver — random, greedy, bandit or CrystalBall lookahead —
     supplies the policy the baseline hard-codes. *)
  let h_join_forward =
    Proto.Handler.v ~name:"join/forward"
      ~guard:(fun st ~src:_ msg ->
        match join_origin msg with
        | Some o ->
            st.joined && (not (child_mem st o))
            && (not (is_parent st o))
            && (not (Proto.Node_id.equal o st.self))
            && List.length st.children >= P.max_children
        | None -> false)
      (fun ctx st ~src:_ msg ->
        match join_origin msg with
        | Some origin ->
            let now = now_s ctx in
            let alternative (child, seen) =
              Core.Choice.alt
                ~features:
                  [
                    ("age_s", now -. seen);
                    ("rtt_ms", Proto.Ctx.predicted_ms ctx child);
                  ]
                ~describe:(Format.asprintf "%a" Proto.Node_id.pp child)
                child
            in
            let target =
              ctx.choose
                (Core.Choice.make ~label:forward_label (List.map alternative st.children))
            in
            (st, [ Proto.Action.send ~dst:target (C.Join { origin }) ])
        | None -> (st, []))

  let h_join_reply =
    Proto.Handler.v ~name:"join_reply"
      ~guard:(fun _ ~src:_ msg -> match msg with C.Join_reply _ -> true | _ -> false)
      (fun ctx st ~src msg ->
        match msg with
        | C.Join_reply { depth } when (not st.joined) && not (child_mem st src) ->
            ( { st with parent = Some src; parent_seen = now_s ctx; depth; joined = true },
              [ Proto.Action.cancel_timer "retry" ] )
        | C.Join_reply _ | C.Join _ | C.Ping | C.Ping_ack _ -> (st, []))

  let h_ping_known =
    Proto.Handler.v ~name:"ping/known"
      ~guard:(fun st ~src msg -> msg = C.Ping && child_mem st src)
      (fun ctx st ~src _msg ->
        ( { st with children = touch_child ctx st src },
          [ Proto.Action.send ~dst:src (C.Ping_ack { depth = st.depth }) ] ))

  let h_ping_orphan =
    Proto.Handler.v ~name:"ping/orphan"
      ~guard:(fun st ~src msg ->
        msg = C.Ping && (not (child_mem st src)) && st.joined
        && List.length st.children < P.max_children)
      (fun ctx st ~src _msg ->
        ( { st with children = (src, now_s ctx) :: st.children },
          [ Proto.Action.send ~dst:src (C.Ping_ack { depth = st.depth }) ] ))

  let h_ping_ack =
    Proto.Handler.v ~name:"ping_ack"
      ~guard:(fun st ~src msg ->
        match msg with
        | C.Ping_ack _ -> (
            match st.parent with Some p -> Proto.Node_id.equal p src | None -> false)
        | C.Join _ | C.Join_reply _ | C.Ping -> false)
      (fun ctx st ~src:_ msg ->
        match msg with
        | C.Ping_ack { depth } -> ({ st with parent_seen = now_s ctx; depth = depth + 1 }, [])
        | C.Join _ | C.Join_reply _ | C.Ping -> (st, []))

  let receive =
    [
      h_join_relay;
      h_join_duplicate;
      h_join_accept;
      h_join_forward;
      h_join_reply;
      h_ping_known;
      h_ping_orphan;
      h_ping_ack;
    ]

  let on_timer (ctx : Proto.Ctx.t) st id =
    match id with
    | "retry" ->
        if st.joined then (st, [])
        else
          ( st,
            [
              Proto.Action.send ~dst:P.root (C.Join { origin = st.self });
              Proto.Action.set_timer ~id:"retry" ~after:C.Timing.join_retry;
            ] )
    | "ping" ->
        let pings =
          match st.parent with Some p -> [ Proto.Action.send ~dst:p C.Ping ] | None -> []
        in
        (st, pings @ [ Proto.Action.set_timer ~id:"ping" ~after:C.Timing.ping_period ])
    | "sweep" ->
        let now = now_s ctx in
        let children =
          List.filter (fun (_, seen) -> now -. seen <= C.Timing.peer_timeout) st.children
        in
        let st = { st with children } in
        let st, actions =
          match st.parent with
          | Some _ when (not (is_root st)) && now -. st.parent_seen > C.Timing.peer_timeout ->
              ( { st with parent = None; joined = false; depth = 0 },
                [
                  Proto.Action.send ~dst:P.root (C.Join { origin = st.self });
                  Proto.Action.set_timer ~id:"retry" ~after:C.Timing.join_retry;
                ] )
          | Some _ | None -> (st, [])
        in
        (st, actions @ [ Proto.Action.set_timer ~id:"sweep" ~after:C.Timing.sweep_period ])
    | _ -> (st, [])

  let objectives = C.objectives ~parent:parent_of ~joined:is_joined
  let properties = C.properties ~parent:parent_of ~joined:is_joined

  let generic_msgs st =
    if st.joined then
      let ghost = Proto.Node_id.of_int 97 in
      [ (ghost, C.Join { origin = ghost }) ]
    else []
end

module Default = Make (Default_params)
