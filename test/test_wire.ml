(* Tests for the binary codec library: round-trips, size accounting,
   malformed-input handling, and the application codecs built on it. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module C = Wire.Codec

let roundtrip codec v = C.decode codec (C.encode codec v)

let check_roundtrip name codec testable v =
  match roundtrip codec v with
  | Ok v' -> Alcotest.check testable name v v'
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

(* ---------- primitives ---------- *)

let test_int_roundtrips () =
  List.iter
    (fun v -> check_roundtrip "int" C.int Alcotest.int v)
    [ 0; 1; -1; 63; -64; 64; 1000; -1000; max_int; min_int; 0x7FFFFFFF ]

let test_int_compactness () =
  checki "small ints are 1 byte" 1 (C.size C.int 0);
  checki "small negatives too" 1 (C.size C.int (-5));
  checkb "bigger ints grow" true (C.size C.int 1_000_000 > 1);
  checkb "zig-zag beats sign-extension" true (C.size C.int (-3) <= 2)

let test_float_roundtrips () =
  List.iter
    (fun v -> check_roundtrip "float" C.float (Alcotest.float 0.) v)
    [ 0.; 1.5; -3.25; Float.max_float; Float.min_float; infinity; neg_infinity ];
  (match roundtrip C.float Float.nan with
  | Ok v -> checkb "nan survives" true (Float.is_nan v)
  | Error e -> Alcotest.fail e);
  checki "floats are 8 bytes" 8 (C.size C.float 3.14)

let test_bool_string () =
  check_roundtrip "true" C.bool Alcotest.bool true;
  check_roundtrip "false" C.bool Alcotest.bool false;
  check_roundtrip "string" C.string Alcotest.string "hello \x00 world";
  check_roundtrip "empty string" C.string Alcotest.string "";
  check_roundtrip "unit" C.unit Alcotest.unit ()

(* ---------- combinators ---------- *)

let test_containers () =
  check_roundtrip "option some" (C.option C.int) Alcotest.(option int) (Some 42);
  check_roundtrip "option none" (C.option C.int) Alcotest.(option int) None;
  check_roundtrip "list" (C.list C.int) Alcotest.(list int) [ 1; -2; 300 ];
  check_roundtrip "empty list" (C.list C.int) Alcotest.(list int) [];
  check_roundtrip "pair" (C.pair C.int C.string) Alcotest.(pair int string) (7, "x");
  check_roundtrip "nested"
    (C.list (C.pair C.bool (C.option C.string)))
    Alcotest.(list (pair bool (option string)))
    [ (true, Some "a"); (false, None) ]

let test_conv () =
  let set_codec = C.conv (fun s -> List.of_seq (Seq.map Fun.id (List.to_seq s))) Fun.id (C.list C.int) in
  check_roundtrip "conv" set_codec Alcotest.(list int) [ 5; 6 ]

type shape = Circle of float | Square of float

let shape_codec =
  C.tagged
    (function
      | Circle r -> (0, C.encode C.float r)
      | Square s -> (1, C.encode C.float s))
    (fun tag payload ->
      match tag with
      | 0 -> Result.map (fun r -> Circle r) (C.decode C.float payload)
      | 1 -> Result.map (fun s -> Square s) (C.decode C.float payload)
      | t -> Error (Printf.sprintf "unknown shape tag %d" t))

let test_tagged_sum_type () =
  (match roundtrip shape_codec (Circle 2.5) with
  | Ok (Circle r) -> Alcotest.check (Alcotest.float 0.) "circle" 2.5 r
  | Ok (Square _) -> Alcotest.fail "wrong case"
  | Error e -> Alcotest.fail e);
  (match roundtrip shape_codec (Square 4.) with
  | Ok (Square s) -> Alcotest.check (Alcotest.float 0.) "square" 4. s
  | Ok (Circle _) -> Alcotest.fail "wrong case"
  | Error e -> Alcotest.fail e);
  (* An unknown tag decodes to a clean error, not an exception. *)
  let bogus = C.encode (C.pair C.int C.string) (9, "") in
  ignore bogus;
  match C.decode shape_codec "\018\000" with
  | Error e -> checkb "unknown tag reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let test_malformed () =
  (match C.decode C.bool "\007" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bool accepted garbage");
  (match C.decode C.int "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "int accepted empty");
  (match C.decode C.string "\255\255" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "string accepted truncated length");
  match C.decode C.bool "\001\000" with
  | Error e -> checkb "trailing bytes reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

(* Adversarial length prefixes: a count or byte-length far beyond the
   buffer (or negative, via zig-zag) must produce a clean error without
   allocating for the claimed size — a crafted 2-byte message must not
   reserve gigabytes. *)
let test_adversarial_length_prefixes () =
  let reject name codec prefix =
    match C.decode codec prefix with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ " accepted an adversarial length")
  in
  let huge = C.encode C.int 1_000_000_000 in
  let negative = C.encode C.int (-7) in
  List.iter
    (fun (name, prefix) ->
      reject ("string " ^ name) C.string prefix;
      reject ("bytes " ^ name) C.bytes_ prefix;
      reject ("int list " ^ name) (C.list C.int) prefix;
      reject ("int array " ^ name) (C.array C.int) prefix;
      reject ("string list " ^ name) (C.list C.string) prefix)
    [ ("huge", huge); ("negative", negative); ("huge+junk", huge ^ "xyz") ];
  (* A plausible count whose elements then run out must also error. *)
  reject "truncated elements" (C.list C.string) (C.encode C.int 3 ^ C.encode C.string "a")

let test_size_matches_encode () =
  let codec = C.list (C.pair C.string C.float) in
  let v = [ ("alpha", 1.5); ("", -2.) ] in
  checki "size = |encode|" (String.length (C.encode codec v)) (C.size codec v)

(* ---------- application codec ---------- *)

let test_dissem_state_codec () =
  (* Round-trip a state through the engine: run briefly, serialize
     every node's state, decode, compare. *)
  let module App = Apps.Dissem.Default in
  let module E = Engine.Sim.Make (App) in
  let topology =
    Net.Topology.uniform ~n:16 (Net.Linkprop.v ~latency:0.005 ~bandwidth:10_000_000. ~loss:0.)
  in
  let eng = E.create ~seed:4 ~jitter:0. ~topology () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to 15 do
    E.spawn eng (Proto.Node_id.of_int i)
  done;
  E.run_for eng 3.;
  List.iter
    (fun (_, st) ->
      match roundtrip App.state_codec st with
      | Ok st' -> checkb "state round-trips" true (App.equal_state st st')
      | Error e -> Alcotest.fail e)
    (E.live_nodes eng);
  (* The seed's full bitmap must dominate an empty peer's encoding. *)
  let size_of id =
    match E.state_of eng (Proto.Node_id.of_int id) with
    | Some st -> C.size App.state_codec st
    | None -> Alcotest.fail "node missing"
  in
  checkb "seed state bigger than fresh peer state" true (size_of 0 > 32)

(* ---------- properties ---------- *)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int round-trips" ~count:500 QCheck.int (fun v ->
      roundtrip C.int v = Ok v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string round-trips" ~count:200 QCheck.string (fun v ->
      roundtrip C.string v = Ok v)

let prop_list_roundtrip =
  QCheck.Test.make ~name:"int list round-trips" ~count:200
    QCheck.(list int)
    (fun v -> roundtrip (C.list C.int) v = Ok v)

let prop_pair_roundtrip =
  QCheck.Test.make ~name:"pairs round-trip" ~count:200
    QCheck.(pair int (pair string bool))
    (fun v -> roundtrip (C.pair C.int (C.pair C.string C.bool)) v = Ok v)

let prop_size_consistent =
  QCheck.Test.make ~name:"size equals encoded length" ~count:200
    QCheck.(list (pair int string))
    (fun v ->
      let codec = C.list (C.pair C.int C.string) in
      C.size codec v = String.length (C.encode codec v))

let prop_decode_never_raises =
  QCheck.Test.make ~name:"decode totals on arbitrary bytes" ~count:500 QCheck.string
    (fun junk ->
      match C.decode (C.list (C.pair C.int C.float)) junk with
      | Ok _ | Error _ -> true)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "wire"
    [
      ( "primitives",
        [
          Alcotest.test_case "ints" `Quick test_int_roundtrips;
          Alcotest.test_case "int compactness" `Quick test_int_compactness;
          Alcotest.test_case "floats" `Quick test_float_roundtrips;
          Alcotest.test_case "bool/string/unit" `Quick test_bool_string;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "containers" `Quick test_containers;
          Alcotest.test_case "conv" `Quick test_conv;
          Alcotest.test_case "tagged sums" `Quick test_tagged_sum_type;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "adversarial lengths" `Quick test_adversarial_length_prefixes;
          Alcotest.test_case "size" `Quick test_size_matches_encode;
        ] );
      ("apps", [ Alcotest.test_case "dissem state codec" `Quick test_dissem_state_codec ]);
      ( "properties",
        qcheck
          [
            prop_int_roundtrip;
            prop_string_roundtrip;
            prop_list_roundtrip;
            prop_pair_roundtrip;
            prop_size_consistent;
            prop_decode_never_raises;
          ] );
    ]
