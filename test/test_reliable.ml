(* The opt-in reliable-delivery layer: ack/retransmit with exponential
   backoff, receiver-side dedup (covering Netem's duplication fault,
   which shares the retransmission sequence number), a bounded retry
   budget, and an explicit give-up notification to the sending app. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

(* A counting app: every ping payload is recorded on arrival, so
   at-most-once delivery is directly observable; give-up notifications
   land in [giveups] through the synthetic timer id. *)
module Count_app = struct
  type msg = Ping of int | Pong of int

  type state = {
    self : Proto.Node_id.t;
    got : int list;
    pongs : int list;
    giveups : int;
    sheds : int;
  }

  let name = "counter"
  let equal_state (a : state) b = a = b
  let msg_kind = function Ping _ -> "ping" | Pong _ -> "pong"
  let msg_bytes _ = 32
  let msg_codec = None
  let validate = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_msg ppf = function
    | Ping n -> Format.fprintf ppf "ping(%d)" n
    | Pong n -> Format.fprintf ppf "pong(%d)" n

  let pp_state ppf st = Format.fprintf ppf "{got=%d}" (List.length st.got)
  let fingerprint = None
  let init (ctx : Proto.Ctx.t) =
    ({ self = ctx.self; got = []; pongs = []; giveups = 0; sheds = 0 }, [])

  let receive =
    [
      Proto.Handler.v ~name:"ping"
        ~guard:(fun _ ~src:_ m -> match m with Ping _ -> true | Pong _ -> false)
        (fun _ st ~src:_ m ->
          match m with Ping n -> ({ st with got = n :: st.got }, []) | Pong _ -> (st, []));
      Proto.Handler.v ~name:"pong"
        ~guard:(fun _ ~src:_ m -> match m with Pong _ -> true | Ping _ -> false)
        (fun _ st ~src:_ m ->
          match m with Pong n -> ({ st with pongs = n :: st.pongs }, []) | Ping _ -> (st, []));
    ]

  let on_timer _ st id : state * msg Proto.Action.t list =
    if String.starts_with ~prefix:"rel.giveup:" id then
      ({ st with giveups = st.giveups + 1 }, [])
    else if String.starts_with ~prefix:"rel.shed:" id then ({ st with sheds = st.sheds + 1 }, [])
    else (st, [])

  let properties : (state, msg) Proto.View.t Core.Property.t list = []
  let objectives : (state, msg) Proto.View.t Core.Objective.t list = []
  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Count_app)

let topology ?(loss = 0.) n =
  Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss)

let make ?loss ?(seed = 3) ?(n = 2) () =
  let eng = E.create ~seed ~jitter:0. ~topology:(topology ?loss n) () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to n - 1 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 0.1;
  eng

let got eng node =
  match E.state_of eng (nid node) with Some st -> List.rev st.Count_app.got | None -> []

let giveups_of eng node =
  match E.state_of eng (nid node) with Some st -> st.Count_app.giveups | None -> 0

let sheds_of eng node =
  match E.state_of eng (nid node) with Some st -> st.Count_app.sheds | None -> 0

(* ---------- recovery from loss ---------- *)

let test_retransmit_through_loss () =
  (* A 50%-lossy link: some of the 20 tracked pings need several tries,
     but the retry budget (5 tries beyond the first) pushes the odds of
     total loss per ping to 0.5^6 ~= 1.5%; seed 9 delivers and acks all
     of them. Unreliable, the same link loses several. *)
  let eng = make ~loss:0.5 ~seed:9 () in
  E.enable_reliable eng;
  for i = 1 to 20 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 30.;
  let s = E.stats eng in
  checki "all pings arrived" 20 (List.length (got eng 1));
  checkb "needed retransmissions" true (s.E.rel_retransmits > 0);
  checkb "sends acked" true (s.E.rel_acked > 0);
  checki "every send eventually acked" 0 s.E.rel_giveups

let test_unreliable_baseline_loses () =
  let eng = make ~loss:0.6 () in
  for i = 1 to 20 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 30.;
  checkb "lossy link loses fire-and-forget sends" true (List.length (got eng 1) < 20)

(* ---------- dedup: retransmissions and Netem duplicates ---------- *)

let test_at_most_once_under_duplication () =
  (* Duplication fault at full blast: every delivery spawns 2 ghost
     copies. They carry the same sequence number as the original, so
     the receiver's seen-set drops them and the app observes each
     payload exactly once. *)
  let eng = make () in
  E.enable_reliable eng;
  Net.Netem.set_faults (E.netem eng)
    { (Net.Netem.global_faults (E.netem eng)) with Net.Netem.duplicate_rate = 1.; duplicate_copies = 2 };
  for i = 1 to 10 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 10.;
  let arrived = got eng 1 in
  checki "every payload exactly once" 10 (List.length arrived);
  checki "no payload twice" 10 (List.length (List.sort_uniq compare arrived));
  let s = E.stats eng in
  checkb "ghost copies were suppressed" true (s.E.rel_dup_dropped > 0);
  checkb "the fault layer really duplicated" true (s.E.messages_duplicated > 0)

let test_lossy_retransmit_still_at_most_once () =
  (* Loss and duplication together: retransmissions race ghost copies,
     yet each payload still lands at most once. *)
  let eng = make ~loss:0.4 ~seed:5 () in
  E.enable_reliable eng;
  Net.Netem.set_faults (E.netem eng)
    { (Net.Netem.global_faults (E.netem eng)) with Net.Netem.duplicate_rate = 0.5; duplicate_copies = 1 };
  for i = 1 to 15 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 30.;
  let arrived = got eng 1 in
  checki "no payload delivered twice" (List.length arrived)
    (List.length (List.sort_uniq compare arrived))

(* ---------- retry budget and give-up ---------- *)

let test_giveup_notifies_sender () =
  let eng = make () in
  E.enable_reliable eng;
  (* Sever the link both ways: data cannot arrive, acks cannot return. *)
  Net.Netem.cut_bidirectional (E.netem eng) 0 1;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping 1);
  (* Budget: 0.25 + 0.5 + 1 + 2 + 4 + 8 (+10% jitter each) < 20s. *)
  E.run_for eng 25.;
  let s = E.stats eng in
  checki "gave up once" 1 s.E.rel_giveups;
  checki "spent the whole budget" E.default_reliable.E.max_retries s.E.rel_retransmits;
  checki "sender was told" 1 (giveups_of eng 0);
  checki "nothing arrived" 0 (List.length (got eng 1))

let test_custom_budget () =
  let eng = make () in
  E.enable_reliable eng
    ~config:{ E.default_reliable with E.max_retries = 2; jitter = 0. };
  Net.Netem.cut_bidirectional (E.netem eng) 0 1;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping 1);
  E.run_for eng 10.;
  let s = E.stats eng in
  checki "two retries then give up" 2 s.E.rel_retransmits;
  checki "one give-up" 1 s.E.rel_giveups

let test_kinds_filter () =
  (* Tracking restricted to pings: pongs stay fire-and-forget. *)
  let eng = make () in
  E.enable_reliable eng ~kinds:[ "ping" ];
  Net.Netem.cut_bidirectional (E.netem eng) 0 1;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Pong 1);
  E.run_for eng 25.;
  checki "untracked kind never retransmits" 0 (E.stats eng).E.rel_retransmits;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping 1);
  E.run_for eng 25.;
  checkb "tracked kind does" true ((E.stats eng).E.rel_retransmits > 0)

let test_config_validation () =
  let eng = make () in
  let raises msg cfg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> E.enable_reliable eng ~config:cfg)
  in
  raises "Sim.enable_reliable: base_timeout must be positive"
    { E.default_reliable with E.base_timeout = 0. };
  raises "Sim.enable_reliable: backoff must be >= 1" { E.default_reliable with E.backoff = 0.5 };
  raises "Sim.enable_reliable: negative max_retries" { E.default_reliable with E.max_retries = -1 };
  raises "Sim.enable_reliable: negative jitter" { E.default_reliable with E.jitter = -0.1 };
  raises "Sim.enable_reliable: ack_bytes must be positive"
    { E.default_reliable with E.ack_bytes = 0 };
  raises "Sim.enable_reliable: negative suspect_cap"
    { E.default_reliable with E.suspect_cap = -1 }

(* ---------- suspected-peer retransmit cap ---------- *)

let test_suspect_cap_sheds_pending () =
  (* A long ping exchange teaches the failure detector the peer's
     cadence; then the link is severed and ten more sends pile up as
     pending retransmissions. Once phi-accrual suspicion fires (~18s of
     silence) the cap of 3 takes effect: retransmission timers past the
     cap shed their send instead of retrying, the sender hears
     "rel.shed:ping" for each, and exactly cap entries stay alive to
     burn the rest of their budget. *)
  let eng = make ~seed:7 () in
  E.enable_reliable eng
    ~config:{ E.default_reliable with E.max_retries = 12; jitter = 0.; suspect_cap = 3 };
  (* The detector is fed by app deliveries (observer = receiver), so
     node 0's picture of node 1 is built from traffic arriving 1 -> 0. *)
  for i = 1 to 20 do
    E.inject eng ~src:(nid 1) ~dst:(nid 0) (Count_app.Ping i);
    E.run_for eng 0.25
  done;
  Net.Netem.cut_bidirectional (E.netem eng) 0 1;
  for i = 100 to 109 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 60.;
  let s = E.stats eng in
  checki "pending above the cap was shed, the cap kept alive" 7 s.E.rel_sheds;
  checki "each shed notified the sender" s.E.rel_sheds (sheds_of eng 0);
  checki "survivors are still inside their budget, not given up" 0 s.E.rel_giveups

let test_suspect_cap_off_by_default () =
  (* Same scenario, default config: nothing sheds, every pending send
     burns its full budget and gives up. *)
  let eng = make ~seed:7 () in
  E.enable_reliable eng ~config:{ E.default_reliable with E.jitter = 0. };
  Net.Netem.cut_bidirectional (E.netem eng) 0 1;
  for i = 100 to 109 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 60.;
  let s = E.stats eng in
  checki "no sheds without a cap" 0 s.E.rel_sheds;
  checki "all ten give up instead" 10 s.E.rel_giveups

(* ---------- crash during the retry window ---------- *)

let crash_mid_retry_run () =
  (* The receiver dies while retransmissions toward it are still in
     flight, then comes back inside the retry budget. Pending sends keep
     retrying across the outage, late retransmissions of pre-crash
     deliveries race the restart, and dedup must still hold. *)
  let eng = make ~loss:0.3 ~seed:13 () in
  E.enable_reliable eng ~config:{ E.default_reliable with E.max_retries = 8 };
  for i = 1 to 10 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Count_app.Ping i)
  done;
  E.run_for eng 0.6;
  E.kill eng (nid 1);
  E.run_for eng 1.5;
  E.restart eng (nid 1);
  E.run_for eng 60.;
  let s = E.stats eng in
  ( got eng 1,
    s.E.rel_retransmits,
    s.E.rel_acked,
    s.E.rel_giveups,
    s.E.rel_dup_dropped,
    s.E.messages_delivered )

let test_crash_during_retransmit () =
  let ((arrived, retransmits, acked, _, _, _) as a) = crash_mid_retry_run () in
  checkb "retransmissions spanned the crash" true (retransmits > 0);
  checkb "sends completed after the restart" true (acked > 0);
  checki "at most once despite the outage" (List.length arrived)
    (List.length (List.sort_uniq compare arrived));
  checkb "crash-recovery replay is bit-identical" true (a = crash_mid_retry_run ())

(* ---------- determinism ---------- *)

let lossy_run () =
  let eng = make ~loss:0.5 ~seed:11 ~n:3 () in
  E.enable_reliable eng;
  Net.Netem.set_faults (E.netem eng)
    { (Net.Netem.global_faults (E.netem eng)) with Net.Netem.duplicate_rate = 0.3; duplicate_copies = 1 };
  for i = 1 to 12 do
    E.inject eng ~src:(nid 0) ~dst:(nid (1 + (i mod 2))) (Count_app.Ping i)
  done;
  E.run_for eng 40.;
  let s = E.stats eng in
  ( got eng 1,
    got eng 2,
    s.E.rel_retransmits,
    s.E.rel_acked,
    s.E.rel_dup_dropped,
    s.E.rel_giveups,
    s.E.messages_delivered )

let test_deterministic_replay () =
  let a = lossy_run () and b = lossy_run () in
  checkb "same seed, same reliable-delivery trajectory" true (a = b)

let () =
  Alcotest.run "reliable"
    [
      ( "loss",
        [
          Alcotest.test_case "retransmits through loss" `Quick test_retransmit_through_loss;
          Alcotest.test_case "fire-and-forget baseline loses" `Quick
            test_unreliable_baseline_loses;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "at most once under duplication" `Quick
            test_at_most_once_under_duplication;
          Alcotest.test_case "loss + duplication still at most once" `Quick
            test_lossy_retransmit_still_at_most_once;
        ] );
      ( "budget",
        [
          Alcotest.test_case "give-up notifies the sender" `Quick test_giveup_notifies_sender;
          Alcotest.test_case "custom retry budget" `Quick test_custom_budget;
          Alcotest.test_case "kinds filter" `Quick test_kinds_filter;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "suspect cap",
        [
          Alcotest.test_case "sheds pending toward a suspected peer" `Quick
            test_suspect_cap_sheds_pending;
          Alcotest.test_case "off by default" `Quick test_suspect_cap_off_by_default;
        ] );
      ( "crash",
        [ Alcotest.test_case "crash during retransmit" `Quick test_crash_during_retransmit ] );
      ( "determinism",
        [ Alcotest.test_case "bit-identical replay" `Quick test_deterministic_replay ] );
    ]
