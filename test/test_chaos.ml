(* Chaos soaks: every application rides out seeded random storms —
   crashes, partitions, degradations, duplication, corruption,
   reordering — with zero safety violations and post-storm recovery,
   reproducibly. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

module C = Engine.Chaos
module X = Experiments.Chaos_exp

let seeds = [ 1; 2; 3 ]

(* Every report is produced once and shared across test cases. *)
let reports =
  lazy
    (List.concat_map (fun app -> List.map (fun seed -> X.run ~seed app) seeds) X.apps)

let soak_case app =
  Alcotest.test_case app `Slow (fun () ->
      List.iter
        (fun (r : X.report) ->
          if String.equal r.X.app app then begin
            checki (Printf.sprintf "%s seed %d: no safety violation" app r.X.seed) 0
              r.X.violations;
            checkb (Printf.sprintf "%s seed %d: recovered" app r.X.seed) true r.X.recovered;
            checkb (Printf.sprintf "%s seed %d: storm was real" app r.X.seed) true
              (r.X.dropped > 0 || r.X.duplicated > 0 || r.X.corrupted > 0)
          end)
        (Lazy.force reports))

(* The corruption path must genuinely reach the decoder: across the
   soaks, some garbled message fails to parse (and is dropped, counted,
   with no exception escaping — the soaks above would have died
   otherwise). *)
let test_decode_failures_exercised () =
  let total =
    List.fold_left (fun acc (r : X.report) -> acc + r.X.decode_failures) 0 (Lazy.force reports)
  in
  checkb "some corrupted message failed decode" true (total > 0);
  let corrupted =
    List.fold_left (fun acc (r : X.report) -> acc + r.X.corrupted) 0 (Lazy.force reports)
  in
  checkb "decode failures are a subset of corruptions" true (total <= corrupted)

(* The reorder fault must genuinely shuffle deliveries: across the
   soaks (every profile schedules reorder windows), some message
   overtakes another and the engine counts it. *)
let test_reordering_exercised () =
  let total =
    List.fold_left (fun acc (r : X.report) -> acc + r.X.reordered) 0 (Lazy.force reports)
  in
  checkb "some message was reordered" true (total > 0)

(* ---------- determinism ---------- *)

let test_generate_deterministic () =
  let p = { C.default_profile with C.crashes = 3; partitions = 2; degrades = 2 } in
  let show plan = Format.asprintf "%a" Engine.Faultplan.pp plan in
  checks "same seed, same plan" (show (C.generate ~seed:42 ~nodes:10 p))
    (show (C.generate ~seed:42 ~nodes:10 p));
  checkb "different seed, different plan" true
    (not (String.equal (show (C.generate ~seed:42 ~nodes:10 p))
            (show (C.generate ~seed:43 ~nodes:10 p))))

let test_generate_respects_protect () =
  let p = { C.default_profile with C.crashes = 5; protect = [ 0; 1 ] } in
  List.iter
    (fun seed ->
      List.iter
        (function
          | _, Engine.Faultplan.Kill v ->
              checkb (Printf.sprintf "seed %d never kills protected %d" seed v) true (v > 1)
          | _ -> ())
        (Engine.Faultplan.events (C.generate ~seed ~nodes:6 p)))
    [ 1; 2; 3; 4; 5 ]

let test_generate_validation () =
  Alcotest.check_raises "no nodes" (Invalid_argument "Chaos.generate: no nodes") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:0 C.default_profile));
  Alcotest.check_raises "bad storm" (Invalid_argument "Chaos.generate: non-positive storm")
    (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.storm = 0. }))

(* Same seed + profile -> the identical storm, the identical verdict,
   the identical traffic: the whole soak is a replayable witness. *)
let test_replay_bit_identical () =
  let a = X.run ~seed:7 "kvstore" and b = X.run ~seed:7 "kvstore" in
  checks "identical plan" a.X.plan_text b.X.plan_text;
  checki "identical violation count" a.X.violations b.X.violations;
  checki "identical deliveries" a.X.delivered b.X.delivered;
  checki "identical corruptions" a.X.corrupted b.X.corrupted;
  checkb "identical verdict" true (Bool.equal a.X.recovered b.X.recovered)

let test_scale_grows_profile () =
  let p = X.scale 2. C.default_profile in
  checkb "longer storm" true (p.C.storm > C.default_profile.C.storm);
  checkb "more crashes" true (p.C.crashes >= C.default_profile.C.crashes);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Chaos_exp.scale: non-positive factor") (fun () ->
      ignore (X.scale 0. C.default_profile))

let () =
  Alcotest.run "chaos"
    [
      ("soak", List.map soak_case X.apps);
      ( "engine",
        [
          Alcotest.test_case "decode failures exercised" `Slow test_decode_failures_exercised;
          Alcotest.test_case "reordering exercised" `Slow test_reordering_exercised;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "generate is seed-deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "protect respected" `Quick test_generate_respects_protect;
          Alcotest.test_case "generate validation" `Quick test_generate_validation;
          Alcotest.test_case "replay is bit-identical" `Slow test_replay_bit_identical;
          Alcotest.test_case "profile scaling" `Quick test_scale_grows_profile;
        ] );
    ]
