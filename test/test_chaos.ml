(* Chaos soaks: every application rides out seeded random storms —
   crashes, partitions, degradations, duplication, corruption,
   reordering — with zero safety violations and post-storm recovery,
   reproducibly. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

module C = Engine.Chaos
module X = Experiments.Chaos_exp

let seeds = [ 1; 2; 3 ]

(* Every report is produced once and shared across test cases. *)
let reports =
  lazy
    (List.concat_map (fun app -> List.map (fun seed -> X.run ~seed app) seeds) X.apps)

let soak_case app =
  Alcotest.test_case app `Slow (fun () ->
      List.iter
        (fun (r : X.report) ->
          if String.equal r.X.app app then begin
            checki (Printf.sprintf "%s seed %d: no safety violation" app r.X.seed) 0
              r.X.violations;
            checkb (Printf.sprintf "%s seed %d: recovered" app r.X.seed) true r.X.recovered;
            checkb (Printf.sprintf "%s seed %d: storm was real" app r.X.seed) true
              (r.X.dropped > 0 || r.X.duplicated > 0 || r.X.corrupted > 0)
          end)
        (Lazy.force reports))

(* The corruption path must genuinely reach the decoder: across the
   soaks, some garbled message fails to parse (and is dropped, counted,
   with no exception escaping — the soaks above would have died
   otherwise). *)
let test_decode_failures_exercised () =
  let total =
    List.fold_left (fun acc (r : X.report) -> acc + r.X.decode_failures) 0 (Lazy.force reports)
  in
  checkb "some corrupted message failed decode" true (total > 0);
  let corrupted =
    List.fold_left (fun acc (r : X.report) -> acc + r.X.corrupted) 0 (Lazy.force reports)
  in
  checkb "decode failures are a subset of corruptions" true (total <= corrupted)

(* The reorder fault must genuinely shuffle deliveries: across the
   soaks (every profile schedules reorder windows), some message
   overtakes another and the engine counts it. *)
let test_reordering_exercised () =
  let total =
    List.fold_left (fun acc (r : X.report) -> acc + r.X.reordered) 0 (Lazy.force reports)
  in
  checkb "some message was reordered" true (total > 0)

(* ---------- self-healing under flapping partitions ---------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* Two 30s-half-period flap cycles against seed 1 cut off a 2-node
   minority twice; each cut lasts long enough for phi-accrual suspicion
   to fire (~18s of silence) and each heal long enough to clear it, so
   the expected degraded-mode trajectory is exact: both minority nodes
   enter and exit twice — 4 entries, 4 exits — and nobody is left
   degraded after the final heal. *)
let flap_soak name soak =
  Alcotest.test_case (name ^ " flap storm self-heals") `Slow (fun () ->
      let r : X.report = soak 1 in
      checki (name ^ ": safe through the flaps") 0 r.X.violations;
      checkb (name ^ ": recovered") true r.X.recovered;
      checkb (name ^ ": self-healed") true r.X.self_healed;
      checkb (name ^ ": heal observed") true (r.X.heal_time <> None);
      checki (name ^ ": degraded entries") 4 r.X.degraded_entries;
      checki (name ^ ": every entry exited") r.X.degraded_entries r.X.degraded_exits;
      checkb (name ^ ": reliable layer exercised") true (r.X.retransmits > 0);
      checkb (name ^ ": some sends exhausted their budget") true (r.X.giveups > 0))

(* The whole self-healing trajectory is a replayable witness: same
   seed, same suspicion counters, same retransmissions, byte-identical
   observability export. *)
let test_flap_obs_export_reproducible () =
  let export () =
    let sink = Obs.Sink.create () in
    let r = X.soak_paxos_flap ~obs:sink 2 in
    (r, String.concat "\n" (Obs.Registry.to_json_lines sink.Obs.Sink.registry))
  in
  let ra, ea = export () in
  let rb, eb = export () in
  checks "byte-identical obs export" ea eb;
  checki "same retransmit count" ra.X.retransmits rb.X.retransmits;
  checki "same degradation trajectory" ra.X.degraded_entries rb.X.degraded_entries;
  checkb "export carries retransmit counters" true (contains ea "engine_rel_retransmits");
  checkb "export carries degradation transitions" true
    (contains ea "engine_degraded_transitions");
  checkb "export carries detector recoveries" true (contains ea "engine_fd_recoveries")

(* ---------- determinism ---------- *)

let test_generate_deterministic () =
  let p = { C.default_profile with C.crashes = 3; partitions = 2; degrades = 2 } in
  let show plan = Format.asprintf "%a" Engine.Faultplan.pp plan in
  checks "same seed, same plan" (show (C.generate ~seed:42 ~nodes:10 p))
    (show (C.generate ~seed:42 ~nodes:10 p));
  checkb "different seed, different plan" true
    (not (String.equal (show (C.generate ~seed:42 ~nodes:10 p))
            (show (C.generate ~seed:43 ~nodes:10 p))))

let test_generate_respects_protect () =
  let p = { C.default_profile with C.crashes = 5; protect = [ 0; 1 ] } in
  List.iter
    (fun seed ->
      List.iter
        (function
          | _, Engine.Faultplan.Kill v ->
              checkb (Printf.sprintf "seed %d never kills protected %d" seed v) true (v > 1)
          | _ -> ())
        (Engine.Faultplan.events (C.generate ~seed ~nodes:6 p)))
    [ 1; 2; 3; 4; 5 ]

let test_generate_validation () =
  Alcotest.check_raises "no nodes" (Invalid_argument "Chaos.generate: no nodes") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:0 C.default_profile));
  Alcotest.check_raises "bad storm" (Invalid_argument "Chaos.generate: non-positive storm")
    (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.storm = 0. }));
  Alcotest.check_raises "negative flaps"
    (Invalid_argument "Chaos.generate: negative flap count") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.flaps = -1 }));
  Alcotest.check_raises "bad flap period"
    (Invalid_argument "Chaos.generate: non-positive flap period") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.flap_period = 0. }));
  Alcotest.check_raises "negative gray links"
    (Invalid_argument "Chaos.generate: negative gray link count") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.gray_links = -1 }));
  Alcotest.check_raises "bad gray loss"
    (Invalid_argument "Chaos.generate: gray loss outside [0,1]") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.gray_loss = 1.5 }));
  (* Channel-fault rates are rejected by name: a NaN rate silently
     disables the fault (every comparison with NaN is false), a negative
     one would surface as a baffling error deep inside Faultplan. *)
  Alcotest.check_raises "NaN duplicate rate"
    (Invalid_argument "Chaos.generate: duplicate rate is NaN") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.duplicate_rate = Float.nan }));
  Alcotest.check_raises "negative corrupt rate"
    (Invalid_argument "Chaos.generate: negative corrupt rate") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.corrupt_rate = -0.1 }));
  Alcotest.check_raises "negative reorder rate"
    (Invalid_argument "Chaos.generate: negative reorder rate") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.reorder_rate = -1. }));
  Alcotest.check_raises "NaN overload rate"
    (Invalid_argument "Chaos.generate: overload rate is NaN") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.overload_rate = Float.nan }));
  Alcotest.check_raises "negative overload nodes"
    (Invalid_argument "Chaos.generate: negative overload node count") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.overload_nodes = -1 }));
  Alcotest.check_raises "bad overload period"
    (Invalid_argument "Chaos.generate: overload period must be positive") (fun () ->
      ignore (C.generate ~seed:1 ~nodes:4 { C.default_profile with C.overload_period = 0. }));
  Alcotest.check_raises "overload burst at zero rate"
    (Invalid_argument "Chaos.generate: overload rate must be positive") (fun () ->
      ignore
        (C.generate ~seed:1 ~nodes:4
           { C.default_profile with C.overload_nodes = 1; overload_rate = 0. }))

let test_generate_overload_bursts () =
  let p =
    { C.default_profile with C.overload_nodes = 2; overload_rate = 800.; overload_period = 1.5 }
  in
  let evs = List.map snd (Engine.Faultplan.events (C.generate ~seed:5 ~nodes:6 p)) in
  let count f = List.length (List.filter f evs) in
  checki "every burst opened" 2
    (count (function Engine.Faultplan.Overload _ -> true | _ -> false));
  checki "every burst healed" 2
    (count (function Engine.Faultplan.Heal_overload _ -> true | _ -> false));
  List.iter
    (function
      | Engine.Faultplan.Overload { rate; _ } ->
          Alcotest.check (Alcotest.float 0.) "rate as configured" 800. rate
      | _ -> ())
    evs;
  (* Bursts off: not a single overload event, and the rest of the plan
     is untouched (the knob draws no randomness when disabled). *)
  let off = List.map snd (Engine.Faultplan.events (C.generate ~seed:5 ~nodes:6 C.default_profile)) in
  checki "no bursts when disabled" 0
    (List.length
       (List.filter (function Engine.Faultplan.Overload _ -> true | _ -> false) off))

let test_generate_flap_and_gray () =
  let p =
    {
      C.default_profile with
      C.flaps = 2;
      flap_period = 10.;
      gray_links = 2;
      gray_loss = 0.4;
      storm = 60.;
    }
  in
  let evs = List.map snd (Engine.Faultplan.events (C.generate ~seed:5 ~nodes:6 p)) in
  let count f = List.length (List.filter f evs) in
  checki "one flap event" 1
    (count (function Engine.Faultplan.Flap _ -> true | _ -> false));
  List.iter
    (function
      | Engine.Faultplan.Flap { period; cycles; _ } ->
          Alcotest.check (Alcotest.float 0.) "period as configured" 10. period;
          checkb "cycles clamped to fit the storm" true (cycles >= 1 && cycles <= 2)
      | Engine.Faultplan.Gray_link { loss; _ } ->
          Alcotest.check (Alcotest.float 0.) "gray loss as configured" 0.4 loss
      | _ -> ())
    evs;
  checki "every gray link opened" 2
    (count (function Engine.Faultplan.Gray_link _ -> true | _ -> false));
  checki "every gray link healed" 2
    (count (function Engine.Faultplan.Heal_gray _ -> true | _ -> false))

let test_pp_profile_shows_new_knobs () =
  let p = { C.default_profile with C.flaps = 3; gray_links = 1; overload_nodes = 2 } in
  let s = Format.asprintf "%a" C.pp_profile p in
  checkb "flap knob printed" true (contains s "flap=3");
  checkb "gray knob printed" true (contains s "gray=1");
  checkb "overload knob printed" true (contains s "overload=2")

(* A soak with injection bursts: the bounded queues installed by the
   harness must hold their high-water mark at capacity, and the backlog
   must be gone by the end of grace. *)
let overload_soak name run_it =
  Alcotest.test_case (name ^ " overload soak sheds bounded and recovers") `Slow (fun () ->
      let r = run_it 11 in
      checki (name ^ " safe under overload") 0 r.X.violations;
      checkb (name ^ " shed something") true (r.X.sheds > 0);
      checkb (name ^ " never exceeded capacity") true r.X.shed_bounded;
      checkb (name ^ " drained after the bursts") true r.X.overload_recovered)

(* Same seed + profile -> the identical storm, the identical verdict,
   the identical traffic: the whole soak is a replayable witness. *)
let test_replay_bit_identical () =
  let a = X.run ~seed:7 "kvstore" and b = X.run ~seed:7 "kvstore" in
  checks "identical plan" a.X.plan_text b.X.plan_text;
  checki "identical violation count" a.X.violations b.X.violations;
  checki "identical deliveries" a.X.delivered b.X.delivered;
  checki "identical corruptions" a.X.corrupted b.X.corrupted;
  checkb "identical verdict" true (Bool.equal a.X.recovered b.X.recovered)

let test_scale_grows_profile () =
  let p = X.scale 2. C.default_profile in
  checkb "longer storm" true (p.C.storm > C.default_profile.C.storm);
  checkb "more crashes" true (p.C.crashes >= C.default_profile.C.crashes);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Chaos_exp.scale: non-positive factor") (fun () ->
      ignore (X.scale 0. C.default_profile))

let () =
  Alcotest.run "chaos"
    [
      ("soak", List.map soak_case X.apps);
      ( "self-healing",
        [
          flap_soak "paxos" (fun seed -> X.soak_paxos_flap seed);
          flap_soak "kvstore" (fun seed -> X.soak_kvstore_flap seed);
          Alcotest.test_case "obs export is reproducible" `Slow
            test_flap_obs_export_reproducible;
        ] );
      ( "overload",
        [
          overload_soak "kvstore" (fun seed -> X.run ~overload:2 ~seed "kvstore");
          overload_soak "paxos" (fun seed -> X.run ~overload:2 ~seed "paxos");
        ] );
      ( "engine",
        [
          Alcotest.test_case "decode failures exercised" `Slow test_decode_failures_exercised;
          Alcotest.test_case "reordering exercised" `Slow test_reordering_exercised;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "generate is seed-deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "protect respected" `Quick test_generate_respects_protect;
          Alcotest.test_case "generate validation" `Quick test_generate_validation;
          Alcotest.test_case "flap and gray generation" `Quick test_generate_flap_and_gray;
          Alcotest.test_case "overload burst generation" `Quick test_generate_overload_bursts;
          Alcotest.test_case "profile pp shows new knobs" `Quick
            test_pp_profile_shows_new_knobs;
          Alcotest.test_case "replay is bit-identical" `Slow test_replay_bit_identical;
          Alcotest.test_case "profile scaling" `Quick test_scale_grows_profile;
        ] );
    ]
