(* Unit tests for the simulated persistence layer: WAL framing,
   snapshot compaction, torn-write detection, disk-cost accounting. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let test_empty () =
  let s = Store.create () in
  checkb "fresh store is empty" true (Store.is_empty s);
  let r = Store.read s in
  checkb "no snapshot" true (r.Store.snapshot = None);
  checki "no entries" 0 (List.length r.Store.entries);
  checkb "not torn" false r.Store.torn

let test_append_read_roundtrip () =
  let s = Store.create () in
  let records = [ "alpha"; ""; "a longer record with spaces"; "\x00\xffbinary\x01" ] in
  List.iter (fun r -> ignore (Store.append s ~now:0. r)) records;
  let r = Store.read s in
  checkb "not torn" false r.Store.torn;
  Alcotest.(check (list string)) "records in order" records r.Store.entries;
  checki "entry count" (List.length records) (Store.wal_entries s)

let test_snapshot_truncates_wal () =
  let s = Store.create () in
  ignore (Store.append s ~now:0. "old");
  ignore (Store.install_snapshot s ~now:0. "snap-state");
  ignore (Store.append s ~now:0. "new");
  let r = Store.read s in
  checks "snapshot" "snap-state" (Option.get r.Store.snapshot);
  Alcotest.(check (list string)) "only post-snapshot records" [ "new" ] r.Store.entries

let test_wipe () =
  let s = Store.create () in
  ignore (Store.append s ~now:0. "x");
  ignore (Store.install_snapshot s ~now:0. "y");
  let written = Store.bytes_written s in
  Store.wipe s;
  checkb "empty after wipe" true (Store.is_empty s);
  checki "accounting survives the wipe" written (Store.bytes_written s)

let test_write_costs () =
  let s = Store.create ~fsync_latency:0.001 ~bandwidth:1000. () in
  (* 100-byte record + frame overhead at 1 kB/s: transfer dominates. *)
  let d = Store.append s ~now:0. (String.make 100 'x') in
  checkb "delay covers fsync" true (d >= 0.001);
  checkb "delay covers transfer" true (d >= 0.1);
  (* A second write queues behind the first on the same disk. *)
  let d2 = Store.append s ~now:0. "y" in
  checkb "second write queues" true (d2 > d);
  checkb "seconds accounted" true (Store.write_seconds s > 0.)

let test_tear_detected () =
  let s = Store.create () in
  ignore (Store.append s ~now:0. "keep-me");
  ignore (Store.append s ~now:0. "tear-me");
  let rng = Dsim.Rng.create 42 in
  checkb "tear applies" true (Store.tear s ~rng);
  let r = Store.read s in
  checkb "tear detected" true r.Store.torn;
  Alcotest.(check (list string)) "complete prefix survives" [ "keep-me" ] r.Store.entries

let test_tear_never_corrupts_earlier_records () =
  (* Whatever the cut point, read never returns garbage: only the last
     record is at risk and every earlier one survives intact. *)
  for seed = 1 to 50 do
    let s = Store.create () in
    ignore (Store.append s ~now:0. "first");
    ignore (Store.append s ~now:0. "second");
    ignore (Store.append s ~now:0. "last-record-padding-padding");
    ignore (Store.tear s ~rng:(Dsim.Rng.create seed));
    let r = Store.read s in
    checkb (Printf.sprintf "torn flagged (seed %d)" seed) true r.Store.torn;
    Alcotest.(check (list string))
      (Printf.sprintf "prefix intact (seed %d)" seed)
      [ "first"; "second" ] r.Store.entries
  done

let test_tear_empty_wal_refused () =
  let s = Store.create () in
  checkb "nothing to tear" false (Store.tear s ~rng:(Dsim.Rng.create 1));
  ignore (Store.install_snapshot s ~now:0. "snap");
  checkb "snapshots cannot tear" false (Store.tear s ~rng:(Dsim.Rng.create 1))

let test_copy_independent () =
  let s = Store.create () in
  ignore (Store.append s ~now:0. "shared");
  let c = Store.copy s in
  ignore (Store.append c ~now:0. "only-in-copy");
  checki "original untouched" 1 (Store.wal_entries s);
  checki "copy extended" 2 (Store.wal_entries c);
  Store.wipe c;
  checkb "original survives copy wipe" false (Store.is_empty s)

let test_invalid_args () =
  Alcotest.check_raises "negative fsync"
    (Invalid_argument "Store.create: negative fsync_latency") (fun () ->
      ignore (Store.create ~fsync_latency:(-1.) ()));
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Store.create: non-positive bandwidth") (fun () ->
      ignore (Store.create ~bandwidth:0. ()))

let () =
  Alcotest.run "store"
    [
      ( "wal",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "append/read roundtrip" `Quick test_append_read_roundtrip;
          Alcotest.test_case "snapshot truncates wal" `Quick test_snapshot_truncates_wal;
          Alcotest.test_case "wipe" `Quick test_wipe;
        ] );
      ( "disk",
        [
          Alcotest.test_case "write costs" `Quick test_write_costs;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
        ] );
      ( "torn writes",
        [
          Alcotest.test_case "tear detected" `Quick test_tear_detected;
          Alcotest.test_case "prefix always intact" `Quick test_tear_never_corrupts_earlier_records;
          Alcotest.test_case "empty wal refused" `Quick test_tear_empty_wal_refused;
        ] );
    ]
