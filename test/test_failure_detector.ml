(* Unit tests for the phi-accrual failure detector: pure arithmetic
   over virtual-time arrivals, so every trajectory here is exact. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)

module Fd = Net.Failure_detector

let at = Dsim.Vtime.of_seconds

(* Feed [n] arrivals on a fixed cadence starting at [start]. *)
let feed ?(observer = 0) ?(peer = 1) ?(start = 0.) ~cadence fd n =
  for i = 0 to n - 1 do
    ignore (Fd.heartbeat fd ~observer ~peer ~now:(at (start +. (cadence *. float_of_int i))))
  done

(* ---------- bootstrap and basic accrual ---------- *)

let test_under_sampled_is_silent () =
  let fd = Fd.create () in
  checkf "no evidence, no phi" 0. (Fd.phi fd ~observer:0 ~peer:1 ~now:(at 100.));
  feed fd ~cadence:1. 2;
  (* Two arrivals are below min_samples: even a huge silence reports
     nothing — sparse contact is not evidence of failure. *)
  checkf "under-sampled" 0. (Fd.suspicion fd ~observer:0 ~peer:1 ~now:(at 1000.));
  checki "samples counted" 2 (Fd.samples fd ~observer:0 ~peer:1)

let test_suspicion_accrues_with_silence () =
  let fd = Fd.create () in
  feed fd ~cadence:1. 5 (* last arrival at t=4, learned interval 1s *);
  let s t = Fd.suspicion fd ~observer:0 ~peer:1 ~now:(at t) in
  checkf "fresh arrival, zero suspicion" 0. (s 4.);
  checkb "suspicion grows" true (s 10. > s 6. && s 6. > s 4.);
  checkb "not yet suspected at 10s" false (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at 10.));
  (* With a 1s rhythm and threshold 8, suspicion needs
     8 / log10(e) ~= 18.42s of silence. *)
  checkb "suspected after 18.5s" true (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at (4. +. 18.5)));
  checkf "suspicion clamps at 1" 1. (s 1000.)

let test_heartbeat_collapses_suspicion () =
  let fd = Fd.create () in
  feed fd ~cadence:1. 5;
  checkb "suspected" true (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at 40.));
  (* The arrival at t=40 is the recovery edge, and afterwards the pair
     reads fresh again. *)
  checkb "recovery edge reported" true (Fd.heartbeat fd ~observer:0 ~peer:1 ~now:(at 40.));
  checkf "collapsed" 0. (Fd.suspicion fd ~observer:0 ~peer:1 ~now:(at 40.));
  checkb "no second edge" false (Fd.heartbeat fd ~observer:0 ~peer:1 ~now:(at 41.))

(* ---------- the interval floor ---------- *)

let test_bursty_traffic_does_not_teach_fast_rhythm () =
  let fd = Fd.create () in
  (* A paxos-style burst: 50 messages 1ms apart. Unfloored, the learned
     mean would be ~1ms and a 150ms pause would look like phi ~65. *)
  feed fd ~cadence:0.001 50;
  let last = 49. *. 0.001 in
  checkb "150ms pause, phi well under threshold" true
    (Fd.phi fd ~observer:0 ~peer:1 ~now:(at (last +. 0.15)) < 0.1);
  checkb "still needs ~18.4s absolute silence" false
    (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at (last +. 18.0)));
  checkb "suspected at 18.5s" true (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at (last +. 18.5)))

let test_slow_rhythm_is_respected () =
  let fd = Fd.create () in
  (* A genuinely slow peer (5s cadence) gets a proportionally longer
     leash: the floor only ever raises the interval, never lowers it. *)
  feed fd ~cadence:5. 6;
  let last = 25. in
  checkb "20s silence fine for a 5s rhythm" false
    (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at (last +. 20.)));
  checkb "suspected once silence dwarfs the rhythm" true
    (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at (last +. 5. *. 19.)))

let test_outage_sample_is_capped () =
  let fd = Fd.create () in
  feed fd ~cadence:1. 5;
  (* A 60s outage ends with one arrival; the 60s sample is capped at
     3x the learned interval, so the detector still re-suspects the
     peer on the old timescale instead of having learned that minute
     silences are normal. *)
  ignore (Fd.heartbeat fd ~observer:0 ~peer:1 ~now:(at 64.));
  checkb "re-suspects well before 60s" true
    (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at (64. +. 40.)))

(* ---------- bookkeeping ---------- *)

let test_pairs_are_directed_and_independent () =
  let fd = Fd.create () in
  feed fd ~observer:0 ~peer:1 ~cadence:1. 5;
  feed fd ~observer:2 ~peer:3 ~cadence:1. 5;
  checkb "0 suspects 1" true (Fd.suspected fd ~observer:0 ~peer:1 ~now:(at 30.));
  checkf "1 never observed 0" 0. (Fd.suspicion fd ~observer:1 ~peer:0 ~now:(at 30.));
  Alcotest.check (Alcotest.list Alcotest.int) "known peers" [ 1 ]
    (Fd.known_peers fd ~observer:0);
  Alcotest.check (Alcotest.list Alcotest.int) "no peers for 5" [] (Fd.known_peers fd ~observer:5)

let test_copy_is_independent () =
  let fd = Fd.create () in
  feed fd ~cadence:1. 5;
  let snap = Fd.copy fd in
  ignore (Fd.heartbeat fd ~observer:0 ~peer:1 ~now:(at 30.));
  checkf "original collapsed" 0. (Fd.suspicion fd ~observer:0 ~peer:1 ~now:(at 30.));
  checkb "copy still suspicious" true (Fd.suspected snap ~observer:0 ~peer:1 ~now:(at 30.))

let test_create_validation () =
  let raises msg f =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  raises "Failure_detector.create: alpha out of (0,1]" (fun () -> Fd.create ~alpha:0. ());
  raises "Failure_detector.create: non-positive threshold" (fun () ->
      Fd.create ~threshold:0. ());
  raises "Failure_detector.create: non-positive bootstrap interval" (fun () ->
      Fd.create ~bootstrap_interval:0. ());
  raises "Failure_detector.create: min_samples < 1" (fun () -> Fd.create ~min_samples:0 ())

(* ---------- determinism ---------- *)

(* The detector is pure arithmetic: replaying the same arrival schedule
   must reproduce the suspicion trajectory byte for byte. *)
let trajectory () =
  let fd = Fd.create () in
  let buf = Buffer.create 256 in
  let arrivals = [ 0.; 1.1; 1.9; 3.0; 4.2; 5.0; 30.; 31.; 32.; 60. ] in
  List.iter
    (fun t ->
      let edge = Fd.heartbeat fd ~observer:0 ~peer:1 ~now:(at t) in
      Buffer.add_string buf
        (Printf.sprintf "%.3f:%b:%.17g\n" t edge
           (Fd.suspicion fd ~observer:0 ~peer:1 ~now:(at (t +. 10.)))))
    arrivals;
  Buffer.contents buf

let test_trajectory_byte_identical () =
  Alcotest.check Alcotest.string "same schedule, same bytes" (trajectory ()) (trajectory ())

let () =
  Alcotest.run "failure_detector"
    [
      ( "accrual",
        [
          Alcotest.test_case "under-sampled pairs are silent" `Quick test_under_sampled_is_silent;
          Alcotest.test_case "suspicion accrues with silence" `Quick
            test_suspicion_accrues_with_silence;
          Alcotest.test_case "heartbeat collapses suspicion" `Quick
            test_heartbeat_collapses_suspicion;
        ] );
      ( "interval floor",
        [
          Alcotest.test_case "bursts don't teach a fast rhythm" `Quick
            test_bursty_traffic_does_not_teach_fast_rhythm;
          Alcotest.test_case "slow rhythms keep their leash" `Quick test_slow_rhythm_is_respected;
          Alcotest.test_case "outage samples are capped" `Quick test_outage_sample_is_capped;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "pairs are directed" `Quick test_pairs_are_directed_and_independent;
          Alcotest.test_case "copy is independent" `Quick test_copy_is_independent;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "determinism",
        [ Alcotest.test_case "byte-identical trajectory" `Quick test_trajectory_byte_identical ] );
    ]
