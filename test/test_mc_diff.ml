(* Differential tests for the rewritten explorer: the fingerprinted
   worklist implementation (Mc.Explorer) is pinned against the
   digest-based reference (Mc.Explorer_ref) on seeded lock, paxos and
   randtree worlds, across include_drops and generic_node modes.

   Two comparison strengths, chosen per scenario:

   - [check_same]: byte-exact — same worlds_explored/worlds_deduped,
     same violation multiset with first depths and path lengths, same
     liveness and veto-candidate sets. This holds wherever every path
     to a world has the same length, which is the case for purely
     message-consuming scenarios.

   - [check_verdict] + [check_steering]: where a world is reachable at
     different depths (generic-node injections consume nothing; some
     handler cycles regenerate earlier worlds), the old bounded DFS
     first-visits such worlds deeper and then prunes them at the depth
     bound, while the worklist search visits them at their minimal
     depth and keeps expanding — strictly better coverage, and
     violation first-depths that are never worse. For these scenarios
     we pin what consequence prediction actually feeds steering:
     identical violated-property sets, identical veto candidates,
     identical liveness, first depths no deeper than the reference's —
     and byte-identical steering verdicts against a reference
     steering decision procedure run over the old explorer.

   A second group checks that [domains] parallelism and shared
   transposition caches never change any verdict. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_strings = Alcotest.(check (list string))
let nid = Proto.Node_id.of_int

module Diff (App : Proto.App_intf.APP) = struct
  module Ex = Mc.Explorer.Make (App)
  module Ref = Mc.Explorer_ref.Make (App)
  module Sn = Mc.Steering.Make (App)

  let ref_world_of (w : Ex.world) : Ref.world =
    { Ref.states = w.states; pending = w.pending; timers = w.timers }

  (* Violations as sorted strings: property, first depth and path
     length pin the verdict; the concrete representative path is
     traversal-order-defined, so DFS and BFS may legally differ. *)
  let new_viols (r : Ex.result) =
    List.sort compare
      (List.map
         (fun (v : Ex.violation) ->
           Printf.sprintf "%s@%d/%d" v.property v.at_depth (List.length v.path))
         r.violations)

  let ref_viols (r : Ref.result) =
    List.sort compare
      (List.map
         (fun (v : Ref.violation) ->
           Printf.sprintf "%s@%d/%d" v.property v.at_depth (List.length v.path))
         r.violations)

  let check_same name ?max_worlds ?include_drops ?generic_node ~depth (w : Ex.world) =
    let r_new = Ex.explore ?max_worlds ?include_drops ?generic_node ~depth w in
    let r_old = Ref.explore ?max_worlds ?include_drops ?generic_node ~depth (ref_world_of w) in
    (* Under truncation the budget admits different worlds per
       traversal order, so differential scenarios must stay inside it. *)
    checkb (name ^ ": reference not truncated") false r_old.Ref.truncated;
    checkb (name ^ ": rewrite not truncated") false r_new.Ex.truncated;
    checki (name ^ ": worlds_explored") r_old.Ref.worlds_explored r_new.Ex.worlds_explored;
    checki (name ^ ": worlds_deduped") r_old.Ref.worlds_deduped r_new.Ex.worlds_deduped;
    check_strings (name ^ ": violations") (ref_viols r_old) (new_viols r_new);
    check_strings (name ^ ": liveness_unmet")
      (List.sort compare r_old.Ref.liveness_unmet)
      (List.sort compare r_new.Ex.liveness_unmet);
    check_strings (name ^ ": veto candidates")
      (List.map (Format.asprintf "%a" Ref.pp_step) (Ref.first_steps_to_violation r_old))
      (List.map (Format.asprintf "%a" Ex.pp_step) (Ex.first_steps_to_violation r_new))

  (* Semantic comparison for scenarios where visit depths legally
     differ (see the header comment): what steering consumes must
     still be identical, and the rewrite's first depths must never be
     deeper than the reference's. *)
  let check_verdict name ?max_worlds ?include_drops ?generic_node ~depth (w : Ex.world) =
    let r_new = Ex.explore ?max_worlds ?include_drops ?generic_node ~depth w in
    let r_old = Ref.explore ?max_worlds ?include_drops ?generic_node ~depth (ref_world_of w) in
    checkb (name ^ ": reference not truncated") false r_old.Ref.truncated;
    checkb (name ^ ": rewrite not truncated") false r_new.Ex.truncated;
    let pset_new =
      List.sort_uniq compare (List.map (fun (v : Ex.violation) -> v.property) r_new.Ex.violations)
    in
    let pset_old =
      List.sort_uniq compare
        (List.map (fun (v : Ref.violation) -> v.property) r_old.Ref.violations)
    in
    check_strings (name ^ ": violated properties") pset_old pset_new;
    check_strings (name ^ ": liveness_unmet")
      (List.sort compare r_old.Ref.liveness_unmet)
      (List.sort compare r_new.Ex.liveness_unmet);
    (* No veto-candidate comparison here: first steps belong to
       first-visit representative paths, which are traversal-defined
       in these scenarios; [check_steering] pins the verdict built
       from them instead. *)
    let min_depth viols prop =
      List.fold_left (fun acc (p, d) -> if p = prop then min acc d else acc) max_int viols
    in
    let new_pd = List.map (fun (v : Ex.violation) -> (v.property, v.at_depth)) r_new.Ex.violations in
    let old_pd =
      List.map (fun (v : Ref.violation) -> (v.property, v.at_depth)) r_old.Ref.violations
    in
    List.iter
      (fun prop ->
        checkb
          (Printf.sprintf "%s: first depth of %s not worse" name prop)
          true
          (min_depth new_pd prop <= min_depth old_pd prop))
      pset_new

  (* Reference steering: the decision procedure of Mc.Steering run
     verbatim over the reference explorer, rendered comparably. *)
  let veto_str (src, dst, kind) =
    Printf.sprintf "%s:%d->%d" kind (Proto.Node_id.to_int src) (Proto.Node_id.to_int dst)

  let ref_decide ?max_worlds ?include_drops ?generic_node ~depth (w : Ref.world) =
    let explore w = Ref.explore ?max_worlds ?include_drops ?generic_node ~depth w in
    let pset (r : Ref.result) =
      List.sort_uniq String.compare
        (List.map (fun (v : Ref.violation) -> v.property) r.violations)
    in
    let base = explore w in
    match base.Ref.violations with
    | [] -> [ "no-violation" ]
    | _ :: _ ->
        let doomed = pset base in
        let candidates =
          List.filter_map
            (function
              | Ref.Deliver_step { src; dst; kind } -> Some (src, dst, kind)
              | Ref.Drop_step _ | Ref.Timer_step _ | Ref.Generic_step _ -> None)
            (Ref.first_steps_to_violation base)
        in
        let without (src, dst, kind) =
          let dropped = ref false in
          {
            w with
            Ref.pending =
              List.filter
                (fun (s, d, m) ->
                  let matches =
                    (not !dropped)
                    && Proto.Node_id.equal s src && Proto.Node_id.equal d dst
                    && String.equal (App.msg_kind m) kind
                  in
                  if matches then dropped := true;
                  not matches)
                w.Ref.pending;
          }
        in
        let safe =
          List.filter
            (fun c ->
              let steered = explore (without c) in
              List.for_all (fun p -> List.mem p doomed) (pset steered))
            candidates
        in
        (match safe with
        | [] -> "cannot-steer" :: doomed
        | _ :: _ -> "steer" :: List.sort compare (List.map veto_str safe))

  let new_decide ?max_worlds ?include_drops ?generic_node ~depth (w : Ex.world) =
    match Sn.decide ?max_worlds ?include_drops ?generic_node ~depth w with
    | Sn.No_violation -> [ "no-violation" ]
    | Sn.Steer vetoes ->
        "steer"
        :: List.sort compare
             (List.map (fun (v : Sn.veto) -> veto_str (v.src, v.dst, v.kind)) vetoes)
    | Sn.Cannot_steer doomed -> "cannot-steer" :: doomed

  let check_steering name ?max_worlds ?include_drops ?generic_node ~depth (w : Ex.world) =
    check_strings
      (name ^ ": steering verdict")
      (ref_decide ?max_worlds ?include_drops ?generic_node ~depth (ref_world_of w))
      (new_decide ?max_worlds ?include_drops ?generic_node ~depth w)

  let check_iterative ?(strict = true) name ?include_drops ?generic_node ~max_depth
      (w : Ex.world) =
    let d_new, r_new = Ex.iterative ?include_drops ?generic_node ~max_depth w in
    let d_old, r_old = Ref.iterative ?include_drops ?generic_node ~max_depth (ref_world_of w) in
    checki (name ^ ": stop depth") d_old d_new;
    if strict then begin
      checki (name ^ ": worlds_explored") r_old.Ref.worlds_explored r_new.Ex.worlds_explored;
      checki (name ^ ": worlds_deduped") r_old.Ref.worlds_deduped r_new.Ex.worlds_deduped;
      check_strings (name ^ ": violations") (ref_viols r_old) (new_viols r_new)
    end
    else
      check_strings (name ^ ": violated properties")
        (List.sort_uniq compare
           (List.map (fun (v : Ref.violation) -> v.property) r_old.Ref.violations))
        (List.sort_uniq compare
           (List.map (fun (v : Ex.violation) -> v.property) r_new.Ex.violations))

  (* Everything except outcomes_cached (a partition statistic) must be
     invariant in [domains] — including representative paths. *)
  let full_sig (r : Ex.result) =
    List.map
      (fun (v : Ex.violation) ->
        Format.asprintf "%s@%d:%a" v.property v.at_depth
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Ex.pp_step)
          v.path)
      r.violations

  let check_domains name ?max_worlds ?include_drops ?generic_node ~depth (w : Ex.world) =
    let r1 = Ex.explore ?max_worlds ?include_drops ?generic_node ~domains:1 ~depth w in
    let r4 = Ex.explore ?max_worlds ?include_drops ?generic_node ~domains:4 ~depth w in
    check_strings (name ^ ": violations") (full_sig r1) (full_sig r4);
    checki (name ^ ": worlds_explored") r1.Ex.worlds_explored r4.Ex.worlds_explored;
    checki (name ^ ": worlds_deduped") r1.Ex.worlds_deduped r4.Ex.worlds_deduped;
    checki (name ^ ": collisions") r1.Ex.fingerprint_collisions r4.Ex.fingerprint_collisions;
    checkb (name ^ ": truncated") r1.Ex.truncated r4.Ex.truncated;
    check_strings (name ^ ": liveness_unmet") r1.Ex.liveness_unmet r4.Ex.liveness_unmet

  let check_cache_reuse name ?include_drops ?generic_node ~depth (w : Ex.world) =
    let cache = Ex.create_cache () in
    let r1 = Ex.explore ?include_drops ?generic_node ~cache ~depth w in
    let r2 = Ex.explore ?include_drops ?generic_node ~cache ~depth w in
    check_strings (name ^ ": warm cache, same violations") (full_sig r1) (full_sig r2);
    checki (name ^ ": warm cache, same worlds") r1.Ex.worlds_explored r2.Ex.worlds_explored;
    checkb (name ^ ": second run hits the cache") true (r2.Ex.outcomes_cached > 0)
end

(* ---------- lock: handcrafted worlds covering every branch kind ---------- *)

module Lock = Test_support.Lock_app
module DL = Diff (Lock)

let lock_world ?(timers = []) states pending : DL.Ex.world =
  {
    states =
      List.fold_left
        (fun m (i, holding) -> Proto.Node_id.Map.add (nid i) { Lock.self = nid i; holding } m)
        Proto.Node_id.Map.empty states;
    pending = List.map (fun (a, b, m) -> (nid a, nid b, m)) pending;
    timers = List.map (fun (i, id) -> (nid i, id)) timers;
    clocks = [];
  }

let lock_worlds =
  [
    ("safe", lock_world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant) ]);
    ( "double-grant",
      lock_world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Grant) ] );
    ("flip-choice", lock_world [ (0, true); (1, false) ] [ (0, 1, Lock.Flip) ]);
    ( "timer-and-msgs",
      lock_world ~timers:[ (1, "grab"); (0, "grab") ]
        [ (0, true); (1, false) ]
        [ (1, 0, Lock.Release); (0, 1, Lock.Flip) ] );
  ]

let test_lock_differential () =
  List.iter
    (fun (name, w) ->
      (* Timer fires do not disarm the timer, so timer worlds contain
         self-loops — length-divergent paths to the same world — and
         only qualify for the semantic comparison beyond depth 1. *)
      let strict = name <> "timer-and-msgs" in
      if strict then begin
        DL.check_same (name ^ "/plain") ~depth:3 w;
        DL.check_same (name ^ "/drops") ~include_drops:true ~depth:3 w
      end
      else begin
        DL.check_same (name ^ "/depth1") ~include_drops:true ~depth:1 w;
        DL.check_verdict (name ^ "/plain") ~depth:3 w;
        DL.check_verdict (name ^ "/drops") ~include_drops:true ~depth:3 w
      end;
      DL.check_verdict (name ^ "/generic") ~generic_node:true ~depth:3 w;
      DL.check_verdict (name ^ "/drops+generic") ~include_drops:true ~generic_node:true ~depth:4
        w;
      DL.check_steering (name ^ "/steer") ~depth:3 w;
      DL.check_steering (name ^ "/steer+generic") ~generic_node:true ~depth:3 w)
    lock_worlds

let test_lock_iterative () =
  List.iter
    (fun (name, w) ->
      DL.check_iterative (name ^ "/iter") ~max_depth:3 w;
      DL.check_iterative (name ^ "/iter+drops") ~include_drops:true ~max_depth:3 w)
    lock_worlds

(* ---------- paxos: worlds frozen out of a live engine run ---------- *)

module P = Apps.Paxos

module Paxos_params = struct
  let population = 3
  let client_period = 0.  (* tests inject commands themselves *)
  let retry_timeout = 1.0
end

module PApp = P.Make (Paxos_params)
module PE = Engine.Sim.Make (PApp)
module DP = Diff (PApp)

let paxos_world ~seed =
  let topology =
    Net.Topology.uniform ~n:3 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = PE.create ~seed ~jitter:0. ~topology () in
  PE.set_resolver eng P.self_resolver;
  for i = 0 to 2 do
    PE.spawn eng (nid i)
  done;
  PE.run_for eng 0.05;
  PE.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Submit { cmd = { P.origin = 1; seq = 0; born = 0. } });
  PE.inject eng ~src:(nid 2) ~dst:(nid 1) (P.Submit { cmd = { P.origin = 2; seq = 1; born = 0. } });
  PE.run_for eng 0.015;
  let view = PE.global_view eng in
  DP.Ex.world_of_view view

let test_paxos_differential () =
  List.iter
    (fun seed ->
      let w = paxos_world ~seed in
      let name = Printf.sprintf "paxos/seed%d" seed in
      DP.check_same (name ^ "/plain") ~depth:3 w;
      DP.check_verdict (name ^ "/drops") ~include_drops:true ~depth:3 w;
      DP.check_verdict (name ^ "/drops+generic") ~include_drops:true ~generic_node:true ~depth:2
        w;
      DP.check_steering (name ^ "/steer") ~depth:3 w;
      DP.check_steering (name ^ "/steer+drops") ~include_drops:true ~depth:3 w)
    [ 3; 11 ]

let test_paxos_iterative () =
  let w = paxos_world ~seed:3 in
  DP.check_iterative "paxos/iter" ~max_depth:3 w;
  DP.check_iterative ~strict:false "paxos/iter+drops" ~include_drops:true ~max_depth:2 w

(* ---------- randtree: joins frozen mid-flight ---------- *)

module RT = Apps.Randtree_choice.Default
module RE = Engine.Sim.Make (RT)
module DR = Diff (RT)

let randtree_world ~seed ~n ~horizon =
  let topology =
    Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = RE.create ~seed ~jitter:0. ~topology () in
  for i = 0 to n - 1 do
    RE.spawn eng ~after:(0.05 *. float_of_int i) (nid i)
  done;
  RE.run_for eng horizon;
  DR.Ex.world_of_view (RE.global_view eng)

let test_randtree_differential () =
  let w = randtree_world ~seed:5 ~n:6 ~horizon:0.4 in
  DR.check_same "randtree/plain" ~depth:2 w;
  DR.check_same "randtree/drops" ~include_drops:true ~depth:2 w;
  DR.check_verdict "randtree/generic" ~generic_node:true ~depth:2 w;
  DR.check_steering "randtree/steer" ~depth:2 w

(* ---------- byzantine mutants in the explorer ---------- *)

(* A decodes-clean mutant of a pending message is a different protocol
   value, and the dedup fingerprint must treat it as one: a world
   carrying honest + mutant copies of a message explores strictly more
   than a world carrying honest twins (whose two deliveries alias), and
   exploring the mutated world stays invariant in [domains]. *)
let mutant_of m =
  let codec = Option.get PApp.msg_codec in
  let rng = Dsim.Rng.create 13 in
  let rec go tries =
    if tries = 0 then Alcotest.fail "mutator never changed the message"
    else
      match Wire.Mutator.mutate ~rng ~node_ids:[ 0; 1; 2 ] codec (Wire.Codec.encode codec m) with
      | Some (m', _) when m' <> m -> m'
      | Some _ | None -> go (tries - 1)
  in
  go 100

let test_mutant_worlds_never_alias () =
  let w = paxos_world ~seed:3 in
  match w.DP.Ex.pending with
  | [] -> Alcotest.fail "frozen world has no pending messages"
  | (src, dst, m) :: rest ->
      let m' = mutant_of m in
      let twins = { w with DP.Ex.pending = (src, dst, m) :: (src, dst, m) :: rest } in
      let mixed = { w with DP.Ex.pending = (src, dst, m) :: (src, dst, m') :: rest } in
      let r_twins = DP.Ex.explore ~depth:1 twins in
      let r_mixed = DP.Ex.explore ~depth:1 mixed in
      (* Delivering either honest twin reaches the same world; the
         mutant's delivery (and the residual pending lists) must not. *)
      checki "mutant adds one distinct successor" (r_twins.DP.Ex.worlds_explored + 1)
        r_mixed.DP.Ex.worlds_explored;
      checki "honest twins alias, mutant does not" (r_mixed.DP.Ex.worlds_deduped + 1)
        r_twins.DP.Ex.worlds_deduped

let test_mutant_domains_determinism () =
  let w = paxos_world ~seed:3 in
  match w.DP.Ex.pending with
  | [] -> Alcotest.fail "frozen world has no pending messages"
  | (src, dst, m) :: rest ->
      let mixed = { w with DP.Ex.pending = (src, dst, mutant_of m) :: (src, dst, m) :: rest } in
      DP.check_domains "paxos-mutant/domains" ~include_drops:true ~depth:3 mixed

(* ---------- domains and cache invariance ---------- *)

let test_domains_determinism () =
  List.iter
    (fun (name, w) ->
      DL.check_domains (name ^ "/domains") ~include_drops:true ~generic_node:true ~depth:4 w)
    lock_worlds;
  DP.check_domains "paxos/domains" ~include_drops:true ~depth:3 (paxos_world ~seed:3);
  DR.check_domains "randtree/domains" ~depth:2 (randtree_world ~seed:5 ~n:6 ~horizon:0.4)

let test_domains_iterative () =
  let w = paxos_world ~seed:3 in
  let d1, r1 = DP.Ex.iterative ~include_drops:true ~domains:1 ~max_depth:3 w in
  let d4, r4 = DP.Ex.iterative ~include_drops:true ~domains:4 ~max_depth:3 w in
  checki "iterative stop depth invariant in domains" d1 d4;
  check_strings "iterative violations invariant in domains" (DP.full_sig r1) (DP.full_sig r4);
  checki "iterative worlds invariant in domains" r1.DP.Ex.worlds_explored r4.DP.Ex.worlds_explored

let test_cache_reuse () =
  DL.check_cache_reuse "lock/cache"
    ~include_drops:true ~depth:3
    (lock_world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Grant) ]);
  DP.check_cache_reuse "paxos/cache" ~depth:3 (paxos_world ~seed:3)

let () =
  Alcotest.run "mc-diff"
    [
      ( "differential",
        [
          Alcotest.test_case "lock worlds" `Quick test_lock_differential;
          Alcotest.test_case "lock iterative" `Quick test_lock_iterative;
          Alcotest.test_case "paxos worlds" `Quick test_paxos_differential;
          Alcotest.test_case "paxos iterative" `Quick test_paxos_iterative;
          Alcotest.test_case "randtree worlds" `Quick test_randtree_differential;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "mutant worlds never alias" `Quick test_mutant_worlds_never_alias;
          Alcotest.test_case "mutant domains determinism" `Quick test_mutant_domains_determinism;
          Alcotest.test_case "domains determinism" `Quick test_domains_determinism;
          Alcotest.test_case "domains iterative" `Quick test_domains_iterative;
          Alcotest.test_case "cache reuse" `Quick test_cache_reuse;
        ] );
    ]
