(* Unit and property tests for the discrete-event substrate. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---------- Vtime ---------- *)

let test_vtime_roundtrip () =
  checkf "seconds" 1.5 Dsim.Vtime.(to_seconds (of_seconds 1.5));
  checkf "ms" 1500. Dsim.Vtime.(to_ms (of_seconds 1.5));
  checkf "of_ms" 0.25 Dsim.Vtime.(to_seconds (of_ms 250.))

let test_vtime_add_diff () =
  let t = Dsim.Vtime.of_seconds 2. in
  let u = Dsim.Vtime.add t 3. in
  checkf "add" 5. (Dsim.Vtime.to_seconds u);
  checkf "diff" 3. (Dsim.Vtime.diff u t);
  checkf "diff-neg" (-3.) (Dsim.Vtime.diff t u)

let test_vtime_ordering () =
  let a = Dsim.Vtime.of_seconds 1. and b = Dsim.Vtime.of_seconds 2. in
  checkb "lt" true Dsim.Vtime.(a < b);
  checkb "le-eq" true Dsim.Vtime.(a <= a);
  checkb "not-lt" false Dsim.Vtime.(b < a);
  checkf "min" 1. (Dsim.Vtime.to_seconds (Dsim.Vtime.min a b));
  checkf "max" 2. (Dsim.Vtime.to_seconds (Dsim.Vtime.max a b))

let test_vtime_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Vtime.of_seconds: negative") (fun () ->
      ignore (Dsim.Vtime.of_seconds (-1.)));
  Alcotest.check_raises "nan" (Invalid_argument "Vtime.of_seconds: not finite") (fun () ->
      ignore (Dsim.Vtime.of_seconds Float.nan));
  Alcotest.check_raises "neg-add" (Invalid_argument "Vtime.add: negative delta") (fun () ->
      ignore (Dsim.Vtime.add Dsim.Vtime.zero (-0.1)))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Dsim.Rng.create 7 and b = Dsim.Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Dsim.Rng.bits64 a) (Dsim.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Dsim.Rng.create 1 and b = Dsim.Rng.create 2 in
  checkb "different streams" false (Dsim.Rng.bits64 a = Dsim.Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Dsim.Rng.create 3 in
  let b = Dsim.Rng.copy a in
  let xa = Dsim.Rng.bits64 a in
  let xb = Dsim.Rng.bits64 b in
  check Alcotest.int64 "copy continues identically" xa xb;
  ignore (Dsim.Rng.bits64 a);
  let ya = Dsim.Rng.bits64 a and yb = Dsim.Rng.bits64 b in
  checkb "desynchronised after extra draw" false (ya = yb)

let test_rng_split_independent () =
  let parent = Dsim.Rng.create 11 in
  let child = Dsim.Rng.split parent in
  let xs = List.init 32 (fun _ -> Dsim.Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Dsim.Rng.bits64 child) in
  checkb "streams differ" false (xs = ys)

let test_rng_int_bounds () =
  let rng = Dsim.Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Dsim.Rng.int rng 7 in
    checkb "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dsim.Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Dsim.Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Dsim.Rng.uniform rng in
    checkb "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_pick_and_shuffle () =
  let rng = Dsim.Rng.create 13 in
  let xs = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    checkb "pick member" true (List.mem (Dsim.Rng.pick rng xs) xs)
  done;
  let shuffled = Dsim.Rng.shuffle rng xs in
  checki "same length" (List.length xs) (List.length shuffled);
  check (Alcotest.list Alcotest.int) "same multiset" (List.sort compare xs)
    (List.sort compare shuffled);
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty") (fun () ->
      ignore (Dsim.Rng.pick rng []))

let test_rng_sample () =
  let rng = Dsim.Rng.create 17 in
  let xs = List.init 10 Fun.id in
  let s = Dsim.Rng.sample_without_replacement rng 4 xs in
  checki "k elements" 4 (List.length s);
  checki "distinct" 4 (List.length (List.sort_uniq compare s));
  let all = Dsim.Rng.sample_without_replacement rng 99 xs in
  checki "clamped to population" 10 (List.length all)

let test_rng_exponential_mean () =
  let rng = Dsim.Rng.create 23 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Dsim.Rng.exponential rng 2.0
  done;
  let mean = !total /. float_of_int n in
  checkb "mean near 2.0" true (Float.abs (mean -. 2.0) < 0.1)

(* ---------- Heap ---------- *)

let int_heap () = Dsim.Heap.create ~cmp:Int.compare

let test_heap_ordering () =
  let h = int_heap () in
  List.iter (Dsim.Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 5; 8; 9 ] (Dsim.Heap.drain h);
  checkb "empty after drain" true (Dsim.Heap.is_empty h)

let test_heap_fifo_ties () =
  (* Elements comparing equal must pop in insertion order. *)
  let h = Dsim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Dsim.Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "fifo ties"
    [ (0, "z"); (1, "a"); (1, "b"); (1, "c") ]
    (Dsim.Heap.drain h)

let test_heap_peek_pop () =
  let h = int_heap () in
  checkb "peek empty" true (Dsim.Heap.peek h = None);
  checkb "pop empty" true (Dsim.Heap.pop h = None);
  Dsim.Heap.push h 4;
  checkb "peek" true (Dsim.Heap.peek h = Some 4);
  checki "length" 1 (Dsim.Heap.length h)

let test_heap_copy_independent () =
  let h = int_heap () in
  List.iter (Dsim.Heap.push h) [ 3; 1; 2 ];
  let c = Dsim.Heap.copy h in
  ignore (Dsim.Heap.pop h);
  checki "copy unaffected" 3 (Dsim.Heap.length c);
  check (Alcotest.list Alcotest.int) "copy drains fully" [ 1; 2; 3 ] (Dsim.Heap.drain c)

let test_heap_filter () =
  let h = int_heap () in
  List.iter (Dsim.Heap.push h) [ 5; 2; 7; 4; 1 ];
  Dsim.Heap.filter_in_place h (fun x -> x mod 2 = 1);
  check (Alcotest.list Alcotest.int) "odds survive" [ 1; 5; 7 ] (Dsim.Heap.drain h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Dsim.Heap.push h) xs;
      Dsim.Heap.drain h = List.sort Int.compare xs)

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks pushes and pops" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iteri
        (fun i x ->
          Dsim.Heap.push h x;
          if i mod 3 = 2 then ignore (Dsim.Heap.pop h))
        xs;
      Dsim.Heap.length h >= 0 && Dsim.Heap.length h <= List.length xs)

(* ---------- Stats ---------- *)

let test_stats_basic () =
  let s = Dsim.Stats.create () in
  List.iter (Dsim.Stats.add s) [ 1.; 2.; 3.; 4. ];
  checki "count" 4 (Dsim.Stats.count s);
  checkf "mean" 2.5 (Dsim.Stats.mean s);
  checkf "sum" 10. (Dsim.Stats.sum s);
  checkf "min" 1. (Dsim.Stats.min s);
  checkf "max" 4. (Dsim.Stats.max s);
  checkf "median" 2.5 (Dsim.Stats.median s)

let test_stats_percentile () =
  let s = Dsim.Stats.create () in
  List.iter (Dsim.Stats.add s) (List.init 101 float_of_int);
  checkf "p0" 0. (Dsim.Stats.percentile s 0.);
  checkf "p50" 50. (Dsim.Stats.percentile s 50.);
  checkf "p100" 100. (Dsim.Stats.percentile s 100.);
  checkf "p25" 25. (Dsim.Stats.percentile s 25.)

let test_stats_variance () =
  let s = Dsim.Stats.create () in
  List.iter (Dsim.Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checkf "variance" 4. (Dsim.Stats.variance s);
  checkf "stddev" 2. (Dsim.Stats.stddev s)

let test_stats_empty () =
  let s = Dsim.Stats.create () in
  checkf "mean empty" 0. (Dsim.Stats.mean s);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.min: empty") (fun () ->
      ignore (Dsim.Stats.min s))

let test_stats_merge () =
  let a = Dsim.Stats.create () and b = Dsim.Stats.create () in
  Dsim.Stats.add a 1.;
  Dsim.Stats.add b 3.;
  let m = Dsim.Stats.merge a b in
  checki "merged count" 2 (Dsim.Stats.count m);
  checkf "merged mean" 2. (Dsim.Stats.mean m)

let test_histogram () =
  let h = Dsim.Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  List.iter (Dsim.Stats.Histogram.add h) [ 0.5; 1.; 3.; 9.9; 42.; -1. ];
  let counts = Dsim.Stats.Histogram.counts h in
  (* Out-of-range samples no longer pollute the edge buckets: they are
     counted separately, and [total] still sees every observation. *)
  checki "bucket0" 2 counts.(0);
  checki "bucket4" 1 counts.(4);
  checki "underflow" 1 (Dsim.Stats.Histogram.underflow h);
  checki "overflow" 1 (Dsim.Stats.Histogram.overflow h);
  checki "total" 6 (Dsim.Stats.Histogram.total h);
  let lo, hi = Dsim.Stats.Histogram.bucket_bounds h 1 in
  checkf "bounds lo" 2. lo;
  checkf "bounds hi" 4. hi

let test_histogram_pp_shows_outliers () =
  let h = Dsim.Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:2 in
  List.iter (Dsim.Stats.Histogram.add h) [ -1.; 5.; 99. ];
  let s = Format.asprintf "%a" Dsim.Stats.Histogram.pp h in
  checkb "pp mentions underflow" true (Dsim.Trace.contains_substring s "underflow");
  checkb "pp mentions overflow" true (Dsim.Trace.contains_substring s "overflow")

let test_stats_sort_cache () =
  (* The regression this guards: percentile used to re-sort per query,
     so summarising a 100k-sample series cost a sort per percentile.
     The sorted view is now cached until the next mutation. *)
  let s = Dsim.Stats.create () in
  for i = 1 to 100_000 do
    Dsim.Stats.add s (float_of_int (i * 7919 mod 100_000))
  done;
  checki "no sort before a query" 0 (Dsim.Stats.sorts_performed s);
  ignore (Format.asprintf "%a" Dsim.Stats.pp_summary s);
  checki "summary costs one sort" 1 (Dsim.Stats.sorts_performed s);
  ignore (Dsim.Stats.percentile s 99.);
  ignore (Dsim.Stats.median s);
  checki "queries reuse the cache" 1 (Dsim.Stats.sorts_performed s);
  Dsim.Stats.add s 1.;
  ignore (Dsim.Stats.percentile s 50.);
  checki "mutation invalidates" 2 (Dsim.Stats.sorts_performed s)

let test_stats_reservoir () =
  let s = Dsim.Stats.create ~capacity:100 () in
  for i = 1 to 10_000 do
    Dsim.Stats.add s (float_of_int i)
  done;
  checki "count sees everything" 10_000 (Dsim.Stats.count s);
  checki "retention is bounded" 100 (Dsim.Stats.retained s);
  (* Exact aggregates are unaffected by sampling. *)
  checkf "sum exact" 50_005_000. (Dsim.Stats.sum s);
  checkf "min exact" 1. (Dsim.Stats.min s);
  checkf "max exact" 10_000. (Dsim.Stats.max s);
  (* Without a capacity, nothing is ever evicted. *)
  let u = Dsim.Stats.create () in
  for i = 1 to 10_000 do
    Dsim.Stats.add u (float_of_int i)
  done;
  checki "unbounded retains all" 10_000 (Dsim.Stats.retained u);
  Alcotest.check (Alcotest.float 1e-6) "unbounded percentile exact" 9900.01
    (Dsim.Stats.percentile u 99.)

let test_stats_reservoir_deterministic () =
  let fill seed =
    let s = Dsim.Stats.create ~capacity:64 ~seed () in
    for i = 1 to 5_000 do
      Dsim.Stats.add s (float_of_int (i * 31 mod 5_000))
    done;
    Dsim.Stats.to_list s
  in
  check (Alcotest.list (Alcotest.float 0.)) "same seed, same reservoir" (fill 9) (fill 9);
  checkb "different seed, different reservoir" true (fill 9 <> fill 10)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Dsim.Stats.create () in
      List.iter (Dsim.Stats.add s) xs;
      let m = Dsim.Stats.mean s in
      m >= Dsim.Stats.min s -. 1e-9 && m <= Dsim.Stats.max s +. 1e-9)

(* ---------- Trace ---------- *)

let test_trace_basic () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.log t Dsim.Vtime.zero Dsim.Trace.Info ~component:"x" "hello";
  Dsim.Trace.logf t Dsim.Vtime.zero Dsim.Trace.Warn ~component:"y" "n=%d" 42;
  checki "count" 2 (Dsim.Trace.count t);
  checki "records" 2 (List.length (Dsim.Trace.records t));
  checki "find" 1 (List.length (Dsim.Trace.find t ~component:"y" ~substring:"n=42"))

let test_trace_capacity () =
  let t = Dsim.Trace.create ~capacity:3 () in
  for i = 1 to 10 do
    Dsim.Trace.logf t Dsim.Vtime.zero Dsim.Trace.Debug ~component:"c" "%d" i
  done;
  checki "total count" 10 (Dsim.Trace.count t);
  let kept = Dsim.Trace.records t in
  checki "bounded" 3 (List.length kept);
  check Alcotest.string "oldest kept" "8" (List.hd kept).Dsim.Trace.message

let test_trace_level_gate () =
  let t = Dsim.Trace.create ~min_level:Dsim.Trace.Info () in
  checkb "info enabled" true (Dsim.Trace.enabled t Dsim.Trace.Info);
  checkb "debug gated" false (Dsim.Trace.enabled t Dsim.Trace.Debug);
  (* The whole point of the gate: a suppressed logf must not run its
     formatting.  %t takes a closure the formatter would call — if the
     gate works, the closure never fires. *)
  let formatted = ref false in
  Dsim.Trace.logf t Dsim.Vtime.zero Dsim.Trace.Debug ~component:"c" "x=%t" (fun _ ->
      formatted := true);
  checkb "suppressed logf never formats" false !formatted;
  checki "nothing recorded" 0 (Dsim.Trace.count t);
  checki "suppression counted" 1 (Dsim.Trace.suppressed t);
  Dsim.Trace.logf t Dsim.Vtime.zero Dsim.Trace.Info ~component:"c" "y=%t" (fun _ ->
      formatted := true);
  checkb "passing logf formats" true !formatted;
  checki "recorded" 1 (Dsim.Trace.count t);
  Dsim.Trace.set_min_level t Dsim.Trace.Debug;
  checkb "gate is dynamic" true (Dsim.Trace.enabled t Dsim.Trace.Debug)

let test_contains_substring () =
  let c = Dsim.Trace.contains_substring in
  checkb "empty needle always matches" true (c "" "");
  checkb "empty needle in text" true (c "abc" "");
  checkb "needle longer than text" false (c "ab" "abc");
  checkb "simple hit" true (c "hello world" "o w");
  checkb "prefix" true (c "hello" "he");
  checkb "suffix" true (c "hello" "lo");
  checkb "miss" false (c "hello" "z");
  (* Overlapping candidate positions: a naive scan that advances past a
     partial match would miss the real one starting inside it. *)
  checkb "overlap" true (c "aaab" "aab");
  checkb "overlap long" true (c "ababac" "abac");
  checkb "repeated miss" false (c "aaaa" "ab")

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dsim"
    [
      ( "vtime",
        [
          Alcotest.test_case "roundtrip" `Quick test_vtime_roundtrip;
          Alcotest.test_case "add/diff" `Quick test_vtime_add_diff;
          Alcotest.test_case "ordering" `Quick test_vtime_ordering;
          Alcotest.test_case "invalid" `Quick test_vtime_invalid;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "pick/shuffle" `Quick test_rng_pick_and_shuffle;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
        ] );
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_ordering
        :: Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties
        :: Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop
        :: Alcotest.test_case "copy" `Quick test_heap_copy_independent
        :: Alcotest.test_case "filter" `Quick test_heap_filter
        :: qcheck [ prop_heap_sorts; prop_heap_length ] );
      ( "stats",
        Alcotest.test_case "basic" `Quick test_stats_basic
        :: Alcotest.test_case "percentile" `Quick test_stats_percentile
        :: Alcotest.test_case "variance" `Quick test_stats_variance
        :: Alcotest.test_case "empty" `Quick test_stats_empty
        :: Alcotest.test_case "merge" `Quick test_stats_merge
        :: Alcotest.test_case "histogram" `Quick test_histogram
        :: Alcotest.test_case "histogram outliers in pp" `Quick test_histogram_pp_shows_outliers
        :: Alcotest.test_case "sort cache" `Quick test_stats_sort_cache
        :: Alcotest.test_case "reservoir" `Quick test_stats_reservoir
        :: Alcotest.test_case "reservoir determinism" `Quick test_stats_reservoir_deterministic
        :: qcheck [ prop_stats_mean_bounded ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
          Alcotest.test_case "level gate" `Quick test_trace_level_gate;
          Alcotest.test_case "contains_substring" `Quick test_contains_substring;
        ] );
    ]
