(* Crash-recovery semantics end to end: durable paxos keeps agreement
   through crash storms that amnesiac paxos provably cannot; torn
   writes recover without raising; durability is deterministic and
   zero-cost for apps that don't opt in. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

(* A small consensus group keeps the quorum-intersection argument
   sharp: majority is 2 of 3, so one amnesiac acceptor plus the reborn
   proposer can outvote the survivor's memory. *)
module P = Apps.Paxos.Make (struct
  let population = 3
  let client_period = 0.5
  let retry_timeout = 1.5
end)

module E = Engine.Sim.Make (P)
module F = Engine.Faultplan
module Run = F.Run (E)

let topology =
  Net.Topology.uniform ~n:3 (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

(* Decide some instances, then crash nodes 0 and 1 in turn (in [mode])
   and let the group settle. Node 2 is never crashed: it survives as a
   witness of every pre-storm decision, so an amnesiac rebirth that
   re-decides an old instance disagrees with a *live* replica. Same
   seed + same mode = same run. *)
let storm ~mode ~seed =
  let eng = E.create ~seed ~topology () in
  E.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 2 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 2.0;
  Run.execute ~and_then:4.0 eng
    (F.plan [ (0., F.Crash_storm { victims = 1; period = 2.0; rounds = 2; mode }) ]);
  eng

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

(* The headline: with intact disks, every crash in the storm is
   survivable — promises, accepted values and the instance counter come
   back, so agreement holds on every seed. *)
let test_durable_agreement_holds () =
  List.iter
    (fun seed ->
      let eng = storm ~mode:F.Clean ~seed in
      checki (Printf.sprintf "clean storm keeps agreement (seed %d)" seed) 0
        (List.length (E.violations eng));
      let s = E.stats eng in
      checkb (Printf.sprintf "recoveries happened (seed %d)" seed) true (s.E.recoveries > 0);
      checkb (Printf.sprintf "wal written (seed %d)" seed) true (s.E.wal_appends > 0))
    seeds

(* The counterfactual on the same seeds: wipe the disks at each crash
   and the reborn proposer reuses instances its previous life already
   decided — somewhere across these storms two replicas must decide
   differently. This is the forgotten-promise violation durable state
   exists to prevent. *)
let test_amnesia_violates_agreement () =
  let violated =
    List.exists (fun seed -> E.violations (storm ~mode:F.Amnesia ~seed) <> []) seeds
  in
  checkb "some amnesia storm violates agreement" true violated;
  (* And the wipes really happened — the engine counted them. *)
  let s = E.stats (storm ~mode:F.Amnesia ~seed:1) in
  checkb "amnesia wipes counted" true (s.E.amnesia_wipes > 0)

(* Torn writes: every crash truncates the WAL mid-record. Recovery must
   never raise — the checksum detects the torn tail, drops it, and the
   node resumes from a valid (possibly older) state. *)
let test_torn_write_recovery_never_raises () =
  let torn_seen = ref false and recovered_seen = ref false in
  List.iter
    (fun seed ->
      let eng = storm ~mode:F.Torn ~seed in
      let s = E.stats eng in
      if s.E.torn_writes > 0 then torn_seen := true;
      if s.E.torn_recoveries > 0 then recovered_seen := true;
      (* The state every node resumed with is a real paxos state. *)
      List.iter
        (fun (_, st) -> ignore (Apps.Paxos.Int_map.cardinal (P.decided st)))
        (E.live_nodes eng))
    seeds;
  checkb "some WAL actually tore" true !torn_seen;
  checkb "torn tails were detected and dropped" true !recovered_seen

(* Bit-determinism with durability in the loop: same seed, same plan,
   same everything out. *)
let test_deterministic () =
  let observe () =
    let eng = storm ~mode:F.Amnesia ~seed:5 in
    ( E.stats eng,
      E.violations eng,
      List.map
        (fun (id, st) -> (Proto.Node_id.to_int id, Apps.Paxos.Int_map.bindings (P.decided st)))
        (E.live_nodes eng) )
  in
  checkb "identical runs" true (observe () = observe ())

(* Zero-cost opt-out: an app without a durability hook creates no
   store, writes no bytes, defers no sends — even across crashes. *)
module L = Test_support.Lock_app
module EL = Engine.Sim.Make (L)

let test_zero_cost_without_hook () =
  let topo = Net.Topology.uniform ~n:2 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1e6 ~loss:0.) in
  let eng = EL.create ~seed:3 ~topology:topo () in
  EL.spawn eng (nid 0);
  EL.spawn eng (nid 1);
  EL.run_for eng 1.;
  EL.kill eng (nid 0);
  EL.restart eng (nid 0);
  EL.kill_amnesia eng (nid 1);
  EL.restart eng (nid 1);
  EL.run_for eng 1.;
  let s = EL.stats eng in
  checki "no wal appends" 0 s.EL.wal_appends;
  checki "no snapshots" 0 s.EL.snapshots;
  checki "no bytes written" 0 s.EL.store_bytes_written;
  checkb "no store materialized" true (EL.store eng (nid 0) = None)

(* Dissem rides the same hook with its checkpoint codec: a cleanly
   crashed peer comes back owning the blocks it had already fetched. *)
module D = Apps.Dissem.Make (struct
  let population = 6
  let blocks = 16
  let block_bytes = 1024
  let degree = 3
  let tick_period = 0.2
  let request_timeout = 3.0
  let candidate_cap = 8
end)

module ED = Engine.Sim.Make (D)

let test_dissem_keeps_blocks () =
  let topo =
    Net.Topology.uniform ~n:6 (Net.Linkprop.v ~latency:0.02 ~bandwidth:500_000. ~loss:0.)
  in
  let eng = ED.create ~seed:2 ~topology:topo () in
  ED.set_resolver eng Core.Resolver.random;
  for i = 0 to 5 do
    ED.spawn eng (nid i)
  done;
  ED.run_for eng 4.;
  let before =
    match ED.state_of eng (nid 3) with
    | Some st -> Apps.Dissem.Int_set.cardinal (D.have st)
    | None -> 0
  in
  checkb "peer fetched something before the crash" true (before > 0);
  ED.kill eng (nid 3);
  ED.restart eng (nid 3);
  ED.run_for eng 0.01;
  let after =
    match ED.state_of eng (nid 3) with
    | Some st -> Apps.Dissem.Int_set.cardinal (D.have st)
    | None -> 0
  in
  checkb "blocks survived the crash" true (after >= before);
  (* The amnesiac variant really loses them — the hook is load-bearing. *)
  ED.kill_amnesia eng (nid 3);
  ED.restart eng (nid 3);
  ED.run_for eng 0.01;
  let wiped =
    match ED.state_of eng (nid 3) with
    | Some st -> Apps.Dissem.Int_set.cardinal (D.have st)
    | None -> max_int
  in
  checki "amnesia restarts empty" 0 wiped

let () =
  Alcotest.run "durability"
    [
      ( "paxos crash storms",
        [
          Alcotest.test_case "durable agreement holds" `Quick test_durable_agreement_holds;
          Alcotest.test_case "amnesia violates agreement" `Quick test_amnesia_violates_agreement;
          Alcotest.test_case "torn-write recovery" `Quick test_torn_write_recovery_never_raises;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "opt-in boundary",
        [
          Alcotest.test_case "zero-cost without hook" `Quick test_zero_cost_without_hook;
          Alcotest.test_case "dissem keeps blocks" `Quick test_dissem_keeps_blocks;
        ] );
    ]
