(* Unit and property tests for the network substrate. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf3 = Alcotest.check (Alcotest.float 1e-3)

let prop ~latency ~bandwidth ~loss = Net.Linkprop.v ~latency ~bandwidth ~loss

(* ---------- Linkprop ---------- *)

let test_linkprop_compose () =
  let a = prop ~latency:0.01 ~bandwidth:1000. ~loss:0.1 in
  let b = prop ~latency:0.02 ~bandwidth:500. ~loss:0.2 in
  let c = Net.Linkprop.compose a b in
  checkf "latency adds" 0.03 c.Net.Linkprop.latency;
  checkf "bandwidth bottleneck" 500. c.Net.Linkprop.bandwidth;
  checkf3 "loss composes" (1. -. (0.9 *. 0.8)) c.Net.Linkprop.loss

let test_linkprop_transfer_time () =
  let p = prop ~latency:0.1 ~bandwidth:1000. ~loss:0. in
  checkf "prop + tx" 0.6 (Net.Linkprop.transfer_time p ~bytes:500)

let test_linkprop_invalid () =
  Alcotest.check_raises "neg latency" (Invalid_argument "Linkprop.v: negative latency")
    (fun () -> ignore (prop ~latency:(-1.) ~bandwidth:1. ~loss:0.));
  Alcotest.check_raises "zero bw" (Invalid_argument "Linkprop.v: bandwidth must be positive")
    (fun () -> ignore (prop ~latency:0. ~bandwidth:0. ~loss:0.));
  Alcotest.check_raises "loss range" (Invalid_argument "Linkprop.v: loss out of [0,1]")
    (fun () -> ignore (prop ~latency:0. ~bandwidth:1. ~loss:1.5))

let prop_compose_assoc_latency =
  QCheck.Test.make ~name:"compose latency is associative" ~count:200
    QCheck.(triple (float_bound_exclusive 1.) (float_bound_exclusive 1.) (float_bound_exclusive 1.))
    (fun (a, b, c) ->
      let p x = prop ~latency:x ~bandwidth:1000. ~loss:0. in
      let left = Net.Linkprop.compose (Net.Linkprop.compose (p a) (p b)) (p c) in
      let right = Net.Linkprop.compose (p a) (Net.Linkprop.compose (p b) (p c)) in
      Float.abs (left.Net.Linkprop.latency -. right.Net.Linkprop.latency) < 1e-9)

(* ---------- Topology ---------- *)

let test_topology_uniform () =
  let t = Net.Topology.uniform ~n:4 (prop ~latency:0.01 ~bandwidth:100. ~loss:0.) in
  checki "size" 4 (Net.Topology.size t);
  checkf "self ideal" 0. (Net.Topology.path t 2 2).Net.Linkprop.latency;
  checkf "pair" 0.01 (Net.Topology.path t 0 3).Net.Linkprop.latency;
  Alcotest.check_raises "oob" (Invalid_argument "Topology.path: dst out of range") (fun () ->
      ignore (Net.Topology.path t 0 9))

let test_topology_star () =
  let hub_spoke = prop ~latency:0.01 ~bandwidth:100. ~loss:0. in
  let t = Net.Topology.star ~n:5 ~hub_spoke in
  checkf "hub-spoke" 0.01 (Net.Topology.path t 0 3).Net.Linkprop.latency;
  checkf "spoke-spoke relays" 0.02 (Net.Topology.path t 1 3).Net.Linkprop.latency

let test_topology_matrix () =
  let p01 = prop ~latency:0.001 ~bandwidth:10. ~loss:0. in
  let p10 = prop ~latency:0.002 ~bandwidth:20. ~loss:0. in
  let m = [| [| Net.Linkprop.ideal; p01 |]; [| p10; Net.Linkprop.ideal |] |] in
  let t = Net.Topology.of_matrix m in
  checkf "asymmetric a->b" 0.001 (Net.Topology.path t 0 1).Net.Linkprop.latency;
  checkf "asymmetric b->a" 0.002 (Net.Topology.path t 1 0).Net.Linkprop.latency

let ts_params =
  {
    Net.Topology.default_transit_stub with
    Net.Topology.transits = 3;
    stubs_per_transit = 2;
    clients_per_stub = 2;
  }

let test_transit_stub_structure () =
  let t = Net.Topology.transit_stub ts_params in
  checki "size" 12 (Net.Topology.size t);
  (* Same stub is cheaper than cross-transit. *)
  let local = (Net.Topology.path t 0 1).Net.Linkprop.latency in
  let far = (Net.Topology.path t 0 11).Net.Linkprop.latency in
  checkb "locality" true (local < far);
  checkb "stub map" true (Net.Topology.stub_of ts_params 3 = 1)

let test_transit_stub_jitter_deterministic () =
  let mk seed =
    Net.Topology.transit_stub ~jitter_rng:(Dsim.Rng.create seed) ts_params
  in
  let a = mk 1 and b = mk 1 and c = mk 2 in
  checkf "same seed same latency" (Net.Topology.path a 0 5).Net.Linkprop.latency
    (Net.Topology.path b 0 5).Net.Linkprop.latency;
  checkb "different seed differs" true
    ((Net.Topology.path a 0 5).Net.Linkprop.latency
    <> (Net.Topology.path c 0 5).Net.Linkprop.latency)

let test_topology_degrade () =
  let t = Net.Topology.uniform ~n:3 (prop ~latency:0.01 ~bandwidth:100. ~loss:0.) in
  let slow =
    Net.Topology.degrade t (fun a _ p ->
        if a = 0 then Net.Linkprop.v ~latency:(p.Net.Linkprop.latency *. 10.) ~bandwidth:p.Net.Linkprop.bandwidth ~loss:p.Net.Linkprop.loss
        else p)
  in
  checkf "degraded" 0.1 (Net.Topology.path slow 0 1).Net.Linkprop.latency;
  checkf "untouched" 0.01 (Net.Topology.path slow 1 2).Net.Linkprop.latency

let test_waxman_total () =
  let rng = Dsim.Rng.create 5 in
  let t = Net.Topology.random_waxman ~rng ~n:10 () in
  for a = 0 to 9 do
    for b = 0 to 9 do
      let p = Net.Topology.path t a b in
      checkb "finite latency" true (Float.is_finite p.Net.Linkprop.latency)
    done
  done

let prop_transit_stub_symmetric_locality =
  QCheck.Test.make ~name:"transit-stub: intra-stub cheaper than inter-transit" ~count:50
    QCheck.(pair (int_bound 1) (int_bound 1))
    (fun (i, j) ->
      let t = Net.Topology.transit_stub ts_params in
      let intra = (Net.Topology.path t i j).Net.Linkprop.latency in
      let inter = (Net.Topology.path t i (10 + j)).Net.Linkprop.latency in
      i = j || intra < inter)

(* ---------- Netem ---------- *)

let mk_netem ?(jitter = 0.) ?(serialize_access = false) () =
  Net.Netem.create ~jitter ~serialize_access ~rng:(Dsim.Rng.create 3)
    (Net.Topology.uniform ~n:4 (prop ~latency:0.01 ~bandwidth:1000. ~loss:0.))

let test_netem_deliver () =
  let nem = mk_netem () in
  (match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:1000 with
  | Net.Netem.Deliver d -> checkf "prop + tx" 1.01 d
  | _ -> Alcotest.fail "unexpected verdict");
  ()

let test_netem_loss () =
  let nem =
    Net.Netem.create ~jitter:0. ~rng:(Dsim.Rng.create 3)
      (Net.Topology.uniform ~n:2 (prop ~latency:0.01 ~bandwidth:1000. ~loss:1.))
  in
  match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Drop cause -> Alcotest.check Alcotest.string "cause" "loss" cause
  | _ -> Alcotest.fail "expected drop"

let test_netem_cut_heal () =
  let nem = mk_netem () in
  Net.Netem.cut nem ~src:0 ~dst:1;
  (match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Drop _ -> ()
  | _ -> Alcotest.fail "cut link delivered");
  (match Net.Netem.judge nem ~now:0. ~src:1 ~dst:0 ~bytes:10 with
  | Net.Netem.Deliver _ -> ()
  | _ -> Alcotest.fail "reverse direction should work");
  Net.Netem.heal nem ~src:0 ~dst:1;
  match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Deliver _ -> ()
  | _ -> Alcotest.fail "healed link dropped"

let test_netem_isolate () =
  let nem = mk_netem () in
  Net.Netem.isolate nem 2;
  checkb "isolated" true (Net.Netem.is_isolated nem 2);
  (match Net.Netem.judge nem ~now:0. ~src:3 ~dst:2 ~bytes:10 with
  | Net.Netem.Drop _ -> ()
  | _ -> Alcotest.fail "message reached isolated node");
  Net.Netem.rejoin nem 2;
  checkb "rejoined" false (Net.Netem.is_isolated nem 2)

let test_netem_override () =
  let nem = mk_netem () in
  Net.Netem.set_override nem ~src:0 ~dst:1 (prop ~latency:0.5 ~bandwidth:1000. ~loss:0.);
  checkf "override path" 0.5 (Net.Netem.path nem ~src:0 ~dst:1).Net.Linkprop.latency;
  Net.Netem.clear_override nem ~src:0 ~dst:1;
  checkf "cleared" 0.01 (Net.Netem.path nem ~src:0 ~dst:1).Net.Linkprop.latency

(* Overrides are a layer over the topology, never a mutation of it: any
   sequence of cut / degrade ending in heal leaves the pair exactly
   where it started. *)
let prop_cut_degrade_heal_roundtrip =
  QCheck.Test.make ~name:"cut -> degrade -> heal restores the exact path" ~count:100
    QCheck.(triple (int_bound 3) (int_bound 3) (float_range 1.5 20.))
    (fun (src, dst, factor) ->
      QCheck.assume (src <> dst);
      let nem = mk_netem () in
      let base = Net.Netem.path nem ~src ~dst in
      Net.Netem.cut nem ~src ~dst;
      Net.Netem.set_override nem ~src ~dst
        (prop
           ~latency:(base.Net.Linkprop.latency *. factor)
           ~bandwidth:(base.Net.Linkprop.bandwidth /. factor)
           ~loss:base.Net.Linkprop.loss);
      Net.Netem.heal nem ~src ~dst;
      let back = Net.Netem.path nem ~src ~dst in
      back.Net.Linkprop.latency = base.Net.Linkprop.latency
      && back.Net.Linkprop.bandwidth = base.Net.Linkprop.bandwidth
      && back.Net.Linkprop.loss = base.Net.Linkprop.loss)

let test_netem_duplicate_verdict () =
  let nem = mk_netem () in
  Net.Netem.set_faults nem
    { Net.Netem.no_faults with Net.Netem.duplicate_rate = 1.; duplicate_copies = 2 };
  match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Duplicate delays ->
      checki "original + copies" 3 (List.length delays);
      checkb "copies arrive no earlier" true
        (List.for_all (fun d -> d >= List.hd delays) delays)
  | _ -> Alcotest.fail "expected duplicate verdict"

let test_netem_corrupt_verdict () =
  let nem = mk_netem () in
  Net.Netem.set_faults nem
    { Net.Netem.no_faults with Net.Netem.corrupt_rate = 1.; corrupt_flip = 0.5 };
  match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Corrupt { flip; delay } ->
      checkf "flip rate carried" 0.5 flip;
      checkb "positive delay" true (delay > 0.)
  | _ -> Alcotest.fail "expected corrupt verdict"

let test_netem_pair_faults () =
  let nem = mk_netem () in
  Net.Netem.set_pair_faults nem ~src:0 ~dst:1
    { Net.Netem.no_faults with Net.Netem.corrupt_rate = 1. };
  (match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Corrupt _ -> ()
  | _ -> Alcotest.fail "pair fault ignored");
  (match Net.Netem.judge nem ~now:0. ~src:2 ~dst:3 ~bytes:10 with
  | Net.Netem.Deliver _ -> ()
  | _ -> Alcotest.fail "pair fault leaked to other pairs");
  Net.Netem.clear_pair_faults nem ~src:0 ~dst:1;
  match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Deliver _ -> ()
  | _ -> Alcotest.fail "cleared pair fault still active"

let test_netem_faults_validated () =
  Alcotest.check_raises "rate outside [0,1]"
    (Invalid_argument "Netem: duplicate_rate 1.5 outside [0,1]") (fun () ->
      Net.Netem.set_faults (mk_netem ())
        { Net.Netem.no_faults with Net.Netem.duplicate_rate = 1.5 })

let test_netem_serialization () =
  let nem = mk_netem ~serialize_access:true () in
  (* Two back-to-back 1000-byte sends at t=0 on a 1000 B/s uplink: the
     second queues behind the first. *)
  let d1 =
    match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes:1000 with
    | Net.Netem.Deliver d -> d
    | _ -> Alcotest.fail "drop"
  in
  let d2 =
    match Net.Netem.judge nem ~now:0. ~src:0 ~dst:2 ~bytes:1000 with
    | Net.Netem.Deliver d -> d
    | _ -> Alcotest.fail "drop"
  in
  checkf "first unqueued" 1.01 d1;
  checkf "second queued behind first" 2.01 d2

let test_netem_copy_independent () =
  let nem = mk_netem () in
  let c = Net.Netem.copy nem in
  Net.Netem.cut nem ~src:0 ~dst:1;
  match Net.Netem.judge c ~now:0. ~src:0 ~dst:1 ~bytes:10 with
  | Net.Netem.Deliver _ -> ()
  | _ -> Alcotest.fail "copy shares override table"

(* ---------- Netmodel ---------- *)

let vt = Dsim.Vtime.of_seconds

let test_netmodel_latency_estimate () =
  let m = Net.Netmodel.create ~alpha:0.5 () in
  Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 1.) 0.1;
  Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 2.) 0.2;
  let e = Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt 2.) in
  checkf3 "ewma" 0.15 e.Net.Netmodel.value;
  checki "samples" 2 e.Net.Netmodel.samples;
  checkf "fresh confidence" 1. e.Net.Netmodel.confidence

let test_netmodel_confidence_decay () =
  let m = Net.Netmodel.create ~half_life:10. () in
  Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 0.) 0.1;
  let e = Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt 10.) in
  checkf3 "half life" 0.5 e.Net.Netmodel.confidence;
  let e20 = Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt 20.) in
  checkf3 "two half lives" 0.25 e20.Net.Netmodel.confidence

let test_netmodel_unknown () =
  let m = Net.Netmodel.create () in
  let e = Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt 0.) in
  checki "no samples" 0 e.Net.Netmodel.samples;
  checkf "no confidence" 0. e.Net.Netmodel.confidence;
  checkb "no path prediction" true (Net.Netmodel.predict_path m ~src:0 ~dst:1 ~now:(vt 0.) = None)

let test_netmodel_predict_transfer () =
  let m = Net.Netmodel.create () in
  Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 1.) 0.1;
  Net.Netmodel.observe_bandwidth m ~src:0 ~dst:1 (vt 1.) 1000.;
  (match Net.Netmodel.predict_transfer_time m ~src:0 ~dst:1 ~now:(vt 1.) ~bytes:1000 with
  | Some t -> checkf3 "prop + tx" 1.1 t
  | None -> Alcotest.fail "expected prediction");
  (* Loss inflates the expectation by expected retries. *)
  Net.Netmodel.observe_loss m ~src:0 ~dst:1 (vt 1.) ~delivered:false;
  match Net.Netmodel.predict_transfer_time m ~src:0 ~dst:1 ~now:(vt 1.) ~bytes:1000 with
  | Some t -> checkb "retries inflate" true (t > 1.1)
  | None -> Alcotest.fail "expected prediction"

let test_netmodel_forget () =
  let m = Net.Netmodel.create () in
  Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 1.) 0.1;
  Net.Netmodel.observe_latency m ~src:2 ~dst:3 (vt 5.) 0.1;
  Net.Netmodel.forget_before m (vt 3.);
  checki "one pair left" 1 (List.length (Net.Netmodel.known_pairs m))

let test_netmodel_merge () =
  let a = Net.Netmodel.create () and b = Net.Netmodel.create () in
  Net.Netmodel.observe_latency a ~src:0 ~dst:1 (vt 0.) 0.5;
  Net.Netmodel.observe_latency b ~src:0 ~dst:1 (vt 9.) 0.1;
  Net.Netmodel.observe_latency b ~src:5 ~dst:6 (vt 9.) 0.2;
  Net.Netmodel.merge_from a b ~now:(vt 10.);
  let e = Net.Netmodel.latency a ~src:0 ~dst:1 ~now:(vt 10.) in
  checkf3 "fresher import wins" 0.1 e.Net.Netmodel.value;
  checki "new pair imported" 2 (List.length (Net.Netmodel.known_pairs a))

let test_netmodel_copy () =
  let m = Net.Netmodel.create () in
  Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 0.) 0.5;
  let c = Net.Netmodel.copy m in
  Net.Netmodel.observe_latency c ~src:0 ~dst:1 (vt 1.) 50.;
  let e = Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt 1.) in
  checkf3 "original unpolluted" 0.5 e.Net.Netmodel.value

let prop_confidence_monotone =
  QCheck.Test.make ~name:"confidence decays monotonically with age" ~count:100
    QCheck.(pair (float_bound_exclusive 50.) (float_bound_exclusive 50.))
    (fun (a, b) ->
      let m = Net.Netmodel.create () in
      Net.Netmodel.observe_latency m ~src:0 ~dst:1 (vt 0.) 0.1;
      let early = Float.min a b and late = Float.max a b in
      let ce = (Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt early)).Net.Netmodel.confidence in
      let cl = (Net.Netmodel.latency m ~src:0 ~dst:1 ~now:(vt late)).Net.Netmodel.confidence in
      cl <= ce +. 1e-12)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "linkprop",
        Alcotest.test_case "compose" `Quick test_linkprop_compose
        :: Alcotest.test_case "transfer time" `Quick test_linkprop_transfer_time
        :: Alcotest.test_case "invalid" `Quick test_linkprop_invalid
        :: qcheck [ prop_compose_assoc_latency ] );
      ( "topology",
        Alcotest.test_case "uniform" `Quick test_topology_uniform
        :: Alcotest.test_case "star" `Quick test_topology_star
        :: Alcotest.test_case "matrix" `Quick test_topology_matrix
        :: Alcotest.test_case "transit-stub structure" `Quick test_transit_stub_structure
        :: Alcotest.test_case "jitter determinism" `Quick test_transit_stub_jitter_deterministic
        :: Alcotest.test_case "degrade" `Quick test_topology_degrade
        :: Alcotest.test_case "waxman total" `Quick test_waxman_total
        :: qcheck [ prop_transit_stub_symmetric_locality ] );
      ( "netem",
        Alcotest.test_case "deliver" `Quick test_netem_deliver
        :: Alcotest.test_case "loss" `Quick test_netem_loss
        :: Alcotest.test_case "cut/heal" `Quick test_netem_cut_heal
        :: Alcotest.test_case "isolate" `Quick test_netem_isolate
        :: Alcotest.test_case "override" `Quick test_netem_override
        :: Alcotest.test_case "duplicate verdict" `Quick test_netem_duplicate_verdict
        :: Alcotest.test_case "corrupt verdict" `Quick test_netem_corrupt_verdict
        :: Alcotest.test_case "per-pair faults" `Quick test_netem_pair_faults
        :: Alcotest.test_case "fault validation" `Quick test_netem_faults_validated
        :: Alcotest.test_case "access serialization" `Quick test_netem_serialization
        :: Alcotest.test_case "copy" `Quick test_netem_copy_independent
        :: qcheck [ prop_cut_degrade_heal_roundtrip ] );
      ( "netmodel",
        Alcotest.test_case "latency ewma" `Quick test_netmodel_latency_estimate
        :: Alcotest.test_case "confidence decay" `Quick test_netmodel_confidence_decay
        :: Alcotest.test_case "unknown pair" `Quick test_netmodel_unknown
        :: Alcotest.test_case "predict transfer" `Quick test_netmodel_predict_transfer
        :: Alcotest.test_case "forget" `Quick test_netmodel_forget
        :: Alcotest.test_case "merge" `Quick test_netmodel_merge
        :: Alcotest.test_case "copy" `Quick test_netmodel_copy
        :: qcheck [ prop_confidence_monotone ] );
    ]
