(* Per-node clock skew: the Dsim.Clock segment arithmetic, the engine's
   local-time timer semantics (re-anchoring, clamping, FD/breaker
   feeds), clock faults in plans and chaos profiles, and the soundness
   of explorer dedup under skewed snapshots. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let nid = Proto.Node_id.of_int
let vt = Dsim.Vtime.of_seconds
let secs = Dsim.Vtime.to_seconds

module C = Dsim.Clock

(* ---------- Clock segment arithmetic ---------- *)

let test_identity () =
  let c = C.create () in
  checkb "identity" true (C.is_identity c);
  checkf "rate" 1. (C.rate c);
  checkf "read = global" 7.25 (secs (C.read c ~global:(vt 7.25)));
  checkf "skew 0" 0. (C.skew c ~global:(vt 100.));
  checki "fingerprint 0" 0 (C.fingerprint c)

let test_rate_continuity_and_inverse () =
  let c = C.create () in
  C.set_rate c ~global:(vt 10.) ~rate:1.5;
  (* Continuous at the boundary: local(10) is still 10. *)
  checkf "continuous at boundary" 10. (secs (C.local_of_global c (vt 10.)));
  checkf "runs fast after" 25. (secs (C.local_of_global c (vt 20.)));
  checkf "skew grows" 5. (C.skew c ~global:(vt 20.));
  (* global_of_local inverts the segment exactly. *)
  checkf "inverse" 20. (secs (C.global_of_local c (vt 25.)));
  checkf "inverse mid-segment" 14. (secs (C.global_of_local c (vt 16.)));
  (* Slowing down later stays continuous from the new anchor. *)
  C.set_rate c ~global:(vt 20.) ~rate:0.5;
  checkf "still continuous" 25. (secs (C.local_of_global c (vt 20.)));
  checkf "now runs slow" 30. (secs (C.local_of_global c (vt 30.)))

let test_step_and_heal () =
  let c = C.create () in
  C.step c ~global:(vt 5.) ~offset:2.;
  checkf "jumped forward" 9. (secs (C.local_of_global c (vt 7.)));
  checkb "skewed" true (not (C.is_identity c));
  checkb "fingerprint nonzero" true (C.fingerprint c <> 0);
  C.heal c ~global:(vt 7.);
  checkb "healed to identity" true (C.is_identity c);
  checki "healed fingerprint 0" 0 (C.fingerprint c);
  checkf "reads global again" 8. (secs (C.read c ~global:(vt 8.)))

let test_backwards_step_clamps_at_origin () =
  let c = C.create () in
  C.step c ~global:(vt 1.) ~offset:(-5.);
  (* Local time cannot precede the Vtime origin. *)
  checkf "clamped to zero" 0. (secs (C.local_of_global c (vt 1.)));
  checkf "resumes from zero" 2. (secs (C.local_of_global c (vt 3.)))

let test_monotonic_read () =
  let c = C.create ~monotonic:true () in
  checkf "reads forward" 10. (secs (C.read c ~global:(vt 10.)));
  C.step c ~global:(vt 10.) ~offset:(-4.);
  (* The raw segment went backwards; the monotonic read holds the
     watermark until raw local catches back up. *)
  checkf "raw segment dropped" 8. (secs (C.local_of_global c (vt 12.)));
  checkf "read held at watermark" 10. (secs (C.read c ~global:(vt 12.)));
  checkf "catches up" 11. (secs (C.read c ~global:(vt 15.)))

let test_fingerprints_distinguish () =
  let a = C.create () and b = C.create () in
  C.set_rate a ~global:(vt 0.) ~rate:1.25;
  C.set_rate b ~global:(vt 0.) ~rate:0.75;
  checkb "distinct rates, distinct fingerprints" true (C.fingerprint a <> C.fingerprint b);
  let c = C.copy a in
  checki "copy fingerprints alike" (C.fingerprint a) (C.fingerprint c);
  C.step c ~global:(vt 1.) ~offset:0.5;
  checkb "copy diverges independently" true
    (C.fingerprint a <> C.fingerprint c && C.is_identity a = false)

(* ---------- Engine: a two-node heartbeat app ---------- *)

module Beat = struct
  type msg = Ping

  type state = { self : Proto.Node_id.t; ticks : int; pings : int }

  let name = "beat"
  let equal_state (a : state) b = a = b
  let msg_kind Ping = "ping"
  let msg_bytes Ping = 32
  let msg_codec = None
  let validate = None
  let fingerprint = None
  let durable = None
  let degraded = None
  let priority = None
  let pp_msg ppf Ping = Format.fprintf ppf "ping"
  let pp_state ppf st = Format.fprintf ppf "{ticks=%d pings=%d}" st.ticks st.pings

  let peer self = nid (1 - Proto.Node_id.to_int self)

  let init (ctx : Proto.Ctx.t) =
    ( { self = ctx.self; ticks = 0; pings = 0 },
      [ Proto.Action.set_timer ~id:"beat" ~after:0.5 ] )

  let receive =
    [
      Proto.Handler.v ~name:"ping"
        ~guard:(fun _ ~src:_ _ -> true)
        (fun _ st ~src:_ Ping -> ({ st with pings = st.pings + 1 }, []));
    ]

  let on_timer _ctx st id : state * msg Proto.Action.t list =
    match id with
    | "beat" ->
        ( { st with ticks = st.ticks + 1 },
          [
            Proto.Action.send ~dst:(peer st.self) Ping;
            Proto.Action.set_timer ~id:"beat" ~after:0.5;
          ] )
    | _ -> (st, [])

  let properties : (state, msg) Proto.View.t Core.Property.t list = []
  let objectives : (state, msg) Proto.View.t Core.Objective.t list = []
  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Beat)

let topology = Net.Topology.uniform ~n:2 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)

let make ?(seed = 11) () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.spawn eng (nid 0);
  E.spawn eng (nid 1);
  eng

let ticks eng i =
  match E.state_of eng (nid i) with
  | Some s -> s.Beat.ticks
  | None -> Alcotest.fail "node missing"

(* With every clock at the identity — whether because the table was
   never created or because an entry was explicitly set to rate 1 — a
   seeded run is byte-identical to one without the clock layer. *)
let test_identity_entries_change_nothing () =
  let plain = make () in
  E.run_for plain 20.;
  let instrumented = make () in
  E.set_clock_rate instrumented (nid 0) ~rate:1.0;
  E.set_clock_rate instrumented (nid 1) ~rate:1.0;
  E.run_for instrumented 20.;
  checkb "stats byte-identical" true (E.stats plain = E.stats instrumented);
  checkf "same virtual now" (secs (E.now plain)) (secs (E.now instrumented));
  checki "same ticks node0" (ticks plain 0) (ticks instrumented 0);
  checki "same ticks node1" (ticks plain 1) (ticks instrumented 1);
  checkb "identity clocks publish no fingerprints" true
    (E.clock_fingerprints instrumented = [])

(* A fast clock's timers fire early in global time: 25% drift turns a
   0.5s-local beat into 0.4s of global time, pinning the trajectory. *)
let test_drift_trajectory_pinned () =
  let eng = make () in
  E.set_clock_rate eng (nid 0) ~rate:1.25;
  E.run_for eng 10.;
  checkf "skew after 10s" 2.5 (E.clock_skew eng (nid 0));
  checkf "local now" 12.5 (secs (E.local_now eng (nid 0)));
  checkf "peer stays in sync" 0. (E.clock_skew eng (nid 1));
  checki "fast node beat 25 times" 25 (ticks eng 0);
  checki "sync node beat 20 times" 20 (ticks eng 1);
  checkb "skew is fingerprinted" true
    (List.mem_assoc (nid 0) (E.clock_fingerprints eng)
    && not (List.mem_assoc (nid 1) (E.clock_fingerprints eng)));
  (* Healing ends the excursion with a discontinuity: local time snaps
     back from 12.5 to 10.0, so the pending beat (local deadline 13.0)
     is suddenly 3 seconds away instead of half a second. *)
  E.heal_clock eng (nid 0);
  checkf "healed skew" 0. (E.clock_skew eng (nid 0));
  checkb "healed fingerprint gone" true (E.clock_fingerprints eng = []);
  E.run_for eng 2.;
  checki "backward snap delayed the pending beat" 25 (ticks eng 0);
  E.run_for eng 1.2;
  checki "resumes on the global cadence" 26 (ticks eng 0)

(* A rate change mid-flight re-anchors pending timers: 3 remaining
   local seconds at rate 2 are 1.5 global seconds. *)
let test_rate_change_reanchors_pending_timer () =
  let eng = make () in
  (* Let both nodes arm their 0.5s beats, then slow node 0 sharply:
     its next beat (0.25s of local time away at the moment of the
     change) now takes 2.5s of global time. *)
  E.run_for eng 0.25;
  E.set_clock_rate eng (nid 0) ~rate:0.1;
  checki "not yet" 0 (ticks eng 0);
  E.run_for eng 2.;
  checki "slowed timer still pending" 0 (ticks eng 0);
  checki "sync node unaffected" 4 (ticks eng 1);
  E.run_for eng 1.;
  checki "fires once re-anchored" 1 (ticks eng 0)

(* A forward step that jumps over a pending local deadline clamps the
   timer to fire now and counts it. *)
let test_forward_step_clamps_pending_timer () =
  let eng = make () in
  E.run_for eng 0.25;
  checki "no clamps yet" 0 (E.stats eng).E.clock_clamped;
  E.clock_step eng (nid 0) ~offset:10.;
  (* The 0.5s beat deadline is now far in the node's past. *)
  checkb "clamp counted" true ((E.stats eng).E.clock_clamped >= 1);
  let before = ticks eng 0 in
  E.run_for eng 0.01;
  checkb "clamped timer fired immediately" true (ticks eng 0 > before)

let test_clock_fault_validation () =
  let eng = make () in
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Sim.set_clock_rate: rate must be positive and finite") (fun () ->
      E.set_clock_rate eng (nid 0) ~rate:0.);
  Alcotest.check_raises "nan offset" (Invalid_argument "Sim.clock_step: offset not finite")
    (fun () -> E.clock_step eng (nid 0) ~offset:Float.nan);
  (* Healing an untouched clock is idempotent, not an error. *)
  E.heal_clock eng (nid 0);
  checkb "idempotent heal" true (E.clock_fingerprints eng = [])

(* ---------- Failure detector under skew ---------- *)

(* A forward step on the observer manufactures apparent silence: its
   local clock says the peer has been quiet for 30s. Suspicion spikes
   toward a drifting-but-alive peer, then collapses after the clock
   heals and fresh heartbeats arrive. *)
let test_phi_accrual_skew_and_recovery () =
  let eng = make () in
  E.run_for eng 20.;
  let fd = E.failure_detector eng in
  let susp () =
    Net.Failure_detector.suspicion fd ~observer:0 ~peer:1
      ~now:(E.local_now eng (nid 0))
  in
  checkb "steady traffic, no suspicion" true (susp () < 0.1);
  E.clock_step eng (nid 0) ~offset:30.;
  checkb "stepped observer suspects live peer" true (susp () > 0.9);
  E.heal_clock eng (nid 0);
  E.run_for eng 10.;
  checkb "healed clock, suspicion collapses" true (susp () < 0.1)

(* ---------- Lease race under drift ---------- *)

(* The lease race is armed exactly when [expiry < hold_time + rtt] in
   {e real} (global) time. With expiry tuned just above that line the
   service is violation-free in sync — but a fast granter clock shrinks
   the effective expiry below the line, so the seeded bug fires
   strictly more often under drift, and more drift fires it more. *)
module Tight_params = struct
  let population = 4
  let want_period = 2.0
  let hold_time = 1.5

  (* hold + rtt = 1.6 at 0.05s latency: a 0.1s safety margin that 30%
     granter drift (effective expiry 1.31) eats straight through. *)
  let expiry = 1.7
end

module Tight = Apps.Lease.Make (Tight_params)
module TE = Engine.Sim.Make (Tight)

let test_nearly_safe_lease_fires_under_drift () =
  let run rate =
    let topology =
      Net.Topology.uniform ~n:4 (Net.Linkprop.v ~latency:0.05 ~bandwidth:1_000_000. ~loss:0.)
    in
    let eng = TE.create ~seed:3 ~jitter:0. ~topology () in
    TE.set_resolver eng Core.Resolver.random;
    for i = 0 to 3 do
      TE.spawn eng (nid i)
    done;
    if rate <> 1.0 then TE.set_clock_rate eng (nid 0) ~rate;
    TE.run_for eng 120.;
    List.length (TE.violations eng)
  in
  let sync = run 1.0 and drifted = run 1.3 and faster = run 1.5 in
  checki "safe while clocks agree" 0 sync;
  checkb "drift arms the latent race" true (drifted > 0);
  checkb "more drift, more double-grants" true (faster > drifted)

(* ---------- Circuit breaker time unification ---------- *)

(* [opened_at] is a Vtime instant now; a query clocked before the trip
   (a backwards-stepped local clock) must keep the pair open rather
   than wrap the elapsed time negative. *)
let test_breaker_backwards_now_stays_open () =
  let cb = Net.Circuit_breaker.create ~cooldown:5.0 () in
  Net.Circuit_breaker.trip cb ~src:0 ~dst:1 ~now:(vt 10.);
  checkb "open at trip time" false (Net.Circuit_breaker.allow cb ~src:0 ~dst:1 ~now:(vt 10.));
  checkb "still open when asked about the past" false
    (Net.Circuit_breaker.allow cb ~src:0 ~dst:1 ~now:(vt 2.));
  checkb "state reads Open in the past" true
    (Net.Circuit_breaker.state cb ~src:0 ~dst:1 ~now:(vt 2.) = Net.Circuit_breaker.Open);
  checkb "half-opens after a real cooldown" true
    (Net.Circuit_breaker.allow cb ~src:0 ~dst:1 ~now:(vt 15.))

(* ---------- Fault plans and chaos profiles ---------- *)

let test_faultplan_clock_validation () =
  let module F = Engine.Faultplan in
  ignore
    (F.plan
       [
         (0., F.Set_clock_rate { node = 0; rate = 1.2 });
         (1., F.Clock_step { node = 0; offset = -0.5 });
         (2., F.Heal_clock { node = 0 });
       ]);
  Alcotest.check_raises "heal of never-skewed clock"
    (Invalid_argument "Faultplan.plan: heal of a clock never skewed") (fun () ->
      ignore (F.plan [ (0., F.Heal_clock { node = 3 }) ]));
  Alcotest.check_raises "non-positive rate"
    (Invalid_argument "Faultplan.plan: clock rate must be positive and finite") (fun () ->
      ignore (F.plan [ (0., F.Set_clock_rate { node = 0; rate = 0. }) ]));
  Alcotest.check_raises "non-finite offset"
    (Invalid_argument "Faultplan.plan: clock step offset not finite") (fun () ->
      ignore (F.plan [ (0., F.Clock_step { node = 0; offset = Float.infinity }) ]))

(* Clock knobs draw from the plan RNG only when on: switching them on
   adds clock events without perturbing any other fault's schedule. *)
let test_chaos_drift_knobs_preserve_rng_stream () =
  let module Ch = Engine.Chaos in
  let module F = Engine.Faultplan in
  let base = Ch.default_profile in
  let drifty = { base with Ch.drift_nodes = 2; clock_steps = 1 } in
  let is_clock_event = function
    | F.Set_clock_rate _ | F.Clock_step _ | F.Heal_clock _ -> true
    | _ -> false
  in
  let p0 = F.events (Ch.generate ~seed:5 ~nodes:5 base) in
  let p1 = F.events (Ch.generate ~seed:5 ~nodes:5 drifty) in
  checkb "no clock events while off" true (not (List.exists (fun (_, e) -> is_clock_event e) p0));
  let p1_rest = List.filter (fun (_, e) -> not (is_clock_event e)) p1 in
  checkb "other faults byte-identical" true (p0 = p1_rest);
  let skews = List.filter (fun (_, e) -> is_clock_event e) p1 in
  checki "two drifts and one step, each healed" 6 (List.length skews)

let test_chaos_validates_clock_knobs () =
  let module Ch = Engine.Chaos in
  Alcotest.check_raises "drift rate of 1 would stop a clock"
    (Invalid_argument "Chaos.generate: drift rate outside [0,1)") (fun () ->
      ignore
        (Ch.generate ~seed:1 ~nodes:3
           { Ch.default_profile with Ch.drift_nodes = 1; drift_rate = 1. }));
  Alcotest.check_raises "negative step max"
    (Invalid_argument "Chaos.generate: clock step max must be finite and non-negative")
    (fun () ->
      ignore
        (Ch.generate ~seed:1 ~nodes:3
           { Ch.default_profile with Ch.clock_steps = 1; clock_step_max = -1. }))

(* ---------- Explorer dedup under skewed snapshots ---------- *)

module Lock = Test_support.Lock_app
module Ex = Mc.Explorer.Make (Lock)

let lock_world ?(clocks = []) states pending : Ex.world =
  {
    states =
      List.fold_left
        (fun m (i, holding) -> Proto.Node_id.Map.add (nid i) { Lock.self = nid i; holding } m)
        Proto.Node_id.Map.empty states;
    pending = List.map (fun (a, b, m) -> (nid a, nid b, m)) pending;
    timers = [];
    clocks = List.map (fun (i, fp) -> (nid i, fp)) clocks;
  }

(* Two snapshots that differ only in clock state land in different
   dedup classes: exploring their union from a shared frontier must
   not collapse them. Verdicts themselves are clock-independent
   (exploration is untimed), so results agree — only identity
   differs. *)
let test_explorer_keeps_skewed_worlds_apart () =
  let states = [ (0, true); (1, false) ] in
  let pending = [ (0, 1, Lock.Grant) ] in
  let sync = lock_world states pending in
  let skewed = lock_world ~clocks:[ (0, 0xbeef) ] states pending in
  let r_sync = Ex.explore ~depth:2 sync in
  let r_skew = Ex.explore ~depth:2 skewed in
  checki "same worlds explored" r_sync.Ex.worlds_explored r_skew.Ex.worlds_explored;
  checki "same violations" (List.length r_sync.Ex.violations) (List.length r_skew.Ex.violations)

(* The clock lane of the fingerprint survives parallel dedup: pool
   sizes 1 and 4 agree on every verdict and counter for a skewed
   world, as the determinism contract demands. *)
let test_explorer_pool_sizes_agree_on_skewed_world () =
  let w =
    lock_world
      ~clocks:[ (0, 0x1234); (1, 0x5678) ]
      [ (0, false); (1, false); (2, false) ]
      [ (0, 1, Lock.Grant); (1, 2, Lock.Grant); (2, 0, Lock.Flip) ]
  in
  let r1 = Ex.explore ~domains:1 ~depth:4 w in
  let r4 = Ex.explore ~domains:4 ~depth:4 w in
  checki "worlds explored agree" r1.Ex.worlds_explored r4.Ex.worlds_explored;
  checki "worlds deduped agree" r1.Ex.worlds_deduped r4.Ex.worlds_deduped;
  checkb "violations agree" true (r1.Ex.violations = r4.Ex.violations);
  checkb "truncation agrees" true (r1.Ex.truncated = r4.Ex.truncated)

let () =
  Alcotest.run "clock"
    [
      ( "segments",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "rate continuity and inverse" `Quick
            test_rate_continuity_and_inverse;
          Alcotest.test_case "step and heal" `Quick test_step_and_heal;
          Alcotest.test_case "backwards step clamps" `Quick test_backwards_step_clamps_at_origin;
          Alcotest.test_case "monotonic read" `Quick test_monotonic_read;
          Alcotest.test_case "fingerprints distinguish" `Quick test_fingerprints_distinguish;
        ] );
      ( "engine",
        [
          Alcotest.test_case "identity entries change nothing" `Quick
            test_identity_entries_change_nothing;
          Alcotest.test_case "drift trajectory pinned" `Quick test_drift_trajectory_pinned;
          Alcotest.test_case "rate change re-anchors" `Quick
            test_rate_change_reanchors_pending_timer;
          Alcotest.test_case "forward step clamps timer" `Quick
            test_forward_step_clamps_pending_timer;
          Alcotest.test_case "fault validation" `Quick test_clock_fault_validation;
        ] );
      ( "timeouts",
        [
          Alcotest.test_case "phi-accrual skew and recovery" `Quick
            test_phi_accrual_skew_and_recovery;
          Alcotest.test_case "lease bug fires more under drift" `Quick
            test_nearly_safe_lease_fires_under_drift;
          Alcotest.test_case "breaker survives backwards now" `Quick
            test_breaker_backwards_now_stays_open;
        ] );
      ( "plans",
        [
          Alcotest.test_case "faultplan clock validation" `Quick test_faultplan_clock_validation;
          Alcotest.test_case "chaos knobs preserve RNG stream" `Quick
            test_chaos_drift_knobs_preserve_rng_stream;
          Alcotest.test_case "chaos validates clock knobs" `Quick
            test_chaos_validates_clock_knobs;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "skewed worlds kept apart" `Quick
            test_explorer_keeps_skewed_worlds_apart;
          Alcotest.test_case "pool sizes agree" `Quick
            test_explorer_pool_sizes_agree_on_skewed_world;
        ] );
    ]
