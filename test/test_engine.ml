(* Behavioural tests of the simulation engine, driven through a small
   ping/pong/choice application. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module Toy = struct
  type msg = Ping of int | Pong of int | Kick

  type state = { self : Proto.Node_id.t; pings : int; pongs : int list; score : int; ticks : int }

  let name = "toy"
  let equal_state (a : state) b = a = b

  let msg_kind = function Ping _ -> "ping" | Pong _ -> "pong" | Kick -> "kick"
  let msg_bytes = function Ping _ | Pong _ -> 64 | Kick -> 16
  let msg_codec = None
  let validate = None
  let fingerprint = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_msg ppf = function
    | Ping n -> Format.fprintf ppf "ping(%d)" n
    | Pong n -> Format.fprintf ppf "pong(%d)" n
    | Kick -> Format.fprintf ppf "kick"

  let pp_state ppf st =
    Format.fprintf ppf "{pings=%d pongs=%d score=%d ticks=%d}" st.pings (List.length st.pongs)
      st.score st.ticks

  let init (ctx : Proto.Ctx.t) =
    ( { self = ctx.self; pings = 0; pongs = []; score = 0; ticks = 0 },
      [ Proto.Action.set_timer ~id:"tick" ~after:1.0 ] )

  let receive =
    [
      Proto.Handler.v ~name:"ping"
        ~guard:(fun _ ~src:_ m -> match m with Ping _ -> true | Pong _ | Kick -> false)
        (fun _ st ~src m ->
          match m with
          | Ping n -> ({ st with pings = st.pings + 1 }, [ Proto.Action.send ~dst:src (Pong n) ])
          | Pong _ | Kick -> (st, []));
      Proto.Handler.v ~name:"pong"
        ~guard:(fun _ ~src:_ m -> match m with Pong _ -> true | Ping _ | Kick -> false)
        (fun _ st ~src:_ m ->
          match m with
          | Pong n -> ({ st with pongs = n :: st.pongs }, [])
          | Ping _ | Kick -> (st, []));
      Proto.Handler.v ~name:"kick"
        ~guard:(fun _ ~src:_ m -> match m with Kick -> true | Ping _ | Pong _ -> false)
        (fun ctx st ~src:_ _ ->
          (* Alternative 0 is harmful, alternative 1 beneficial: a
             lookahead (or a trained bandit) must prefer index 1, while
             the "first" resolver walks into the bad branch. *)
          let delta =
            ctx.choose
              (Core.Choice.make ~label:"path"
                 [
                   Core.Choice.alt ~features:[ ("good", 0.) ] (-1);
                   Core.Choice.alt ~features:[ ("good", 1.) ] 1;
                 ])
          in
          ({ st with score = st.score + delta }, []));
    ]

  let on_timer _ctx st id : state * msg Proto.Action.t list =
    match id with "tick" -> ({ st with ticks = st.ticks + 1 }, []) | _ -> (st, [])

  let properties : (state, msg) Proto.View.t Core.Property.t list =
    [
      Core.Property.safety ~name:"score-floor" (fun view ->
          Proto.View.fold (fun ok _ st -> ok && st.score > -3) true view);
    ]

  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"score" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int st.score) 0. view);
    ]

  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Toy)

let topology = Net.Topology.uniform ~n:4 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)

let make ?(seed = 1) () =
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_resolver eng Core.Resolver.first;
  eng

let spawn_all eng k =
  for i = 0 to k - 1 do
    E.spawn eng (nid i)
  done

let state_exn eng i =
  match E.state_of eng (nid i) with Some s -> s | None -> Alcotest.fail "node missing"

let test_boot_and_timer () =
  let eng = make () in
  spawn_all eng 2;
  E.run_for eng 0.5;
  checkb "alive" true (E.alive eng (nid 0));
  checki "no tick yet" 0 (state_exn eng 0).Toy.ticks;
  E.run_for eng 1.0;
  checki "tick fired once" 1 (state_exn eng 0).Toy.ticks;
  E.run_for eng 5.0;
  checki "one-shot timer" 1 (state_exn eng 0).Toy.ticks

let test_message_roundtrip () =
  let eng = make () in
  spawn_all eng 2;
  E.run_for eng 0.1;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 7);
  E.run_for eng 1.0;
  checki "ping received" 1 (state_exn eng 1).Toy.pings;
  Alcotest.check (Alcotest.list Alcotest.int) "pong returned" [ 7 ] (state_exn eng 0).Toy.pongs;
  checki "two deliveries" 2 (E.stats eng).messages_delivered;
  checki "kind counter ping" 1 (E.delivered_of_kind eng "ping");
  checki "kind counter pong" 1 (E.delivered_of_kind eng "pong")

let test_kill_and_restart () =
  let eng = make () in
  spawn_all eng 2;
  E.run_for eng 0.1;
  E.kill eng (nid 1);
  checkb "dead" false (E.alive eng (nid 1));
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 1);
  E.run_for eng 1.0;
  checki "dropped to dead node" 1 (E.stats eng).messages_dropped;
  E.restart eng (nid 1);
  E.run_for eng 1.5;
  let st = state_exn eng 1 in
  checki "fresh state" 0 st.Toy.pings;
  checki "fresh timer fired" 1 st.Toy.ticks

let test_restart_invalidates_old_timers () =
  let eng = make () in
  spawn_all eng 1;
  (* Kill just before the tick fires, restart immediately: the old
     timer generation must not tick the new incarnation twice. *)
  E.run_for eng 0.9;
  E.kill eng (nid 0);
  E.restart eng (nid 0);
  E.run_for eng 2.0;
  checki "only the new timer ticked" 1 (state_exn eng 0).Toy.ticks

let test_injection_and_schedule_edges () =
  let eng = make () in
  spawn_all eng 2;
  E.run_for eng 0.1;
  Alcotest.check_raises "negative inject delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> E.inject eng ~after:(-1.) ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 1));
  Alcotest.check_raises "negative run_for" (Invalid_argument "Vtime.add: negative delta")
    (fun () -> E.run_for eng (-1.));
  (* Injecting at exactly now routes immediately through the emulator. *)
  E.inject eng ~after:0. ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 5);
  E.run_for eng 1.;
  checki "immediate inject delivered" 1 (state_exn eng 1).Toy.pings

let test_spawn_on_killed_node_rejected () =
  let eng = make () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  E.kill eng (nid 0);
  (* A killed node is still a known identity: spawn refuses, restart is
     the way back. *)
  Alcotest.check_raises "spawn on corpse" (Invalid_argument "Sim.spawn: node already exists")
    (fun () -> E.spawn eng (nid 0));
  E.restart eng (nid 0);
  E.run_for eng 0.1;
  checkb "restart works" true (E.alive eng (nid 0))

let test_spawn_errors () =
  let eng = make () in
  E.spawn eng (nid 0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Sim.spawn: node already exists") (fun () ->
      E.spawn eng (nid 0));
  Alcotest.check_raises "beyond topology" (Invalid_argument "Sim: node id exceeds topology size")
    (fun () -> E.spawn eng (nid 99));
  E.run_for eng 0.1;
  (* Restart is idempotent: on a live node it is a no-op, not an error. *)
  E.restart eng (nid 0);
  E.run_for eng 0.1;
  Alcotest.(check bool) "restart alive is a no-op" true (E.alive eng (nid 0))

let test_determinism () =
  let run () =
    let eng = make ~seed:7 () in
    spawn_all eng 4;
    for i = 0 to 20 do
      E.inject eng ~after:(0.1 *. float_of_int i) ~src:(nid 0) ~dst:(nid (1 + (i mod 3)))
        (Toy.Ping i)
    done;
    E.run_for eng 10.;
    ((E.stats eng).messages_delivered, (state_exn eng 1).Toy.pings, Dsim.Vtime.to_seconds (E.now eng))
  in
  checkb "bit-identical runs" true (run () = run ())

let test_filters () =
  let eng = make () in
  spawn_all eng 2;
  E.run_for eng 0.1;
  E.add_filter eng ~name:"no-pings" (fun ~kind ~src:_ ~dst:_ -> String.equal kind "ping");
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 1);
  E.run_for eng 1.0;
  checki "filtered" 1 (E.stats eng).messages_filtered;
  checki "not handled" 0 (state_exn eng 1).Toy.pings;
  E.clear_filters eng;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 2);
  E.run_for eng 1.0;
  checki "delivered after clear" 1 (state_exn eng 1).Toy.pings

let test_resolver_choice_and_log () =
  let eng = make () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  E.set_resolver eng (Core.Resolver.greedy ~feature:"good" ~maximize:true ());
  E.inject eng ~src:(nid 0) ~dst:(nid 0) Toy.Kick;
  E.run_for eng 1.0;
  checki "greedy picked good" 1 (state_exn eng 0).Toy.score;
  let log = E.decision_sites eng in
  checki "one decision" 1 (List.length log);
  let _, site, idx = List.hd log in
  Alcotest.check Alcotest.string "label" "path" site.Core.Choice.site_label;
  checki "index" 1 idx;
  checki "stats decisions" 1 (E.stats eng).decisions

let test_violation_detection () =
  let eng = make () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  (* 'first' resolver always picks the harmful branch; score-floor
     breaks once the score reaches -3. *)
  for i = 1 to 4 do
    E.inject eng ~after:(0.1 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
  done;
  E.run_for eng 2.0;
  checkb "violated" true (List.length (E.violations eng) >= 1);
  checkb "named" true
    (List.for_all (fun (_, n) -> String.equal n "score-floor") (E.violations eng))

let test_lookahead_avoids_bad_branch () =
  let eng = make () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  E.set_lookahead eng { E.default_lookahead with horizon = 0.5; max_events = 50 };
  for i = 1 to 5 do
    E.inject eng ~after:(0.2 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
  done;
  E.run_for eng 3.0;
  checki "all five choices good" 5 (state_exn eng 0).Toy.score;
  checkb "forked" true ((E.stats eng).lookahead_forks >= 10)

let test_bandit_learns_online () =
  let eng = make () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  let bandit = Core.Bandit.create () in
  E.set_resolver eng (Core.Bandit.to_resolver bandit);
  E.enable_reward_feedback eng ~window:0.5;
  for i = 1 to 40 do
    E.inject eng ~after:(float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
  done;
  E.run_for eng 60.;
  checkb "bandit went positive" true ((state_exn eng 0).Toy.score > 10)

let test_hybrid_cache () =
  let eng = make () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  let bandit = Core.Bandit.create () in
  E.set_lookahead eng ~cache:(bandit, 2)
    { E.default_lookahead with horizon = 0.5; max_events = 50 };
  for i = 1 to 20 do
    E.inject eng ~after:(0.5 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
  done;
  E.run_for eng 15.;
  checki "all decisions good (lookahead + trained cache agree)" 20 (state_exn eng 0).Toy.score;
  (match E.cache_stats eng with
  | Some (hits, misses) ->
      checkb "cache eventually hit" true (hits > 0);
      checkb "early misses trained it" true (misses >= 2);
      checki "every decision accounted" 20 (hits + misses)
  | None -> Alcotest.fail "cache stats missing");
  Alcotest.check Alcotest.string "name" "lookahead+cache/random" (E.resolver_name eng)

let test_playbook_offline_training () =
  let module PB = Runtime.Playbook.Make (Toy) in
  let pb =
    PB.train
      ~lookahead:{ PB.E.default_lookahead with horizon = 0.5; max_events = 50 }
      ~episodes:2 ~topology
      ~scenario:(fun eng ->
        PB.E.spawn eng (nid 0);
        PB.E.run_for eng 0.1;
        for i = 1 to 10 do
          PB.E.inject eng ~after:(0.5 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
        done;
        PB.E.run_for eng 10.)
      ()
  in
  checkb "training explored" true (PB.training_forks pb > 0);
  checkb "contexts learned" true (PB.contexts_learned pb > 0);
  (* Deploy the frozen policy on a fresh engine: it must pick the good
     branch without any forking. *)
  let eng = make ~seed:99 () in
  spawn_all eng 1;
  E.run_for eng 0.1;
  E.set_resolver eng (PB.resolver pb);
  for i = 1 to 10 do
    E.inject eng ~after:(0.5 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
  done;
  E.run_for eng 10.;
  checki "frozen policy picks good" 10 (state_exn eng 0).Toy.score;
  checki "no runtime forks" 0 (E.stats eng).lookahead_forks

let test_fork_independence () =
  let eng = make () in
  spawn_all eng 2;
  E.run_for eng 0.1;
  E.inject eng ~after:0.5 ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 1);
  let fork = E.fork eng in
  E.run_for fork 5.0;
  checki "fork processed" 1 (state_exn fork 1).Toy.pings;
  checki "original untouched" 0 (state_exn eng 1).Toy.pings;
  checkb "times diverged" true Dsim.Vtime.(E.now eng < E.now fork)

let test_global_view_and_objective () =
  let eng = make () in
  spawn_all eng 3;
  E.run_for eng 0.1;
  let view = E.global_view eng in
  checki "view nodes" 3 (Proto.View.node_count view);
  E.set_resolver eng (Core.Resolver.greedy ~feature:"good" ~maximize:true ());
  E.inject eng ~src:(nid 0) ~dst:(nid 0) Toy.Kick;
  E.run_for eng 0.5;
  Alcotest.check (Alcotest.float 1e-9) "objective" 1. (E.objective_score eng)

let test_run_until_quiescent () =
  let eng = make () in
  spawn_all eng 2;
  E.run_until_quiescent eng;
  (* Everything (boots, one-shot ticks) has fired; nothing remains. *)
  checki "ticked" 1 (state_exn eng 0).Toy.ticks;
  checkb "no more events" false (E.step eng)

(* NFA-style handler ambiguity: when several guarded handlers apply to
   one message, which one runs is itself a choice. *)
module Nfa = struct
  type msg = Datum

  type state = { self : Proto.Node_id.t; stored : int; forwarded : int }

  let name = "nfa"
  let equal_state (a : state) b = a = b
  let msg_kind Datum = "datum"
  let msg_bytes Datum = 32
  let msg_codec = None
  let validate = None
  let fingerprint = None
  let durable = None
  let degraded = None
  let priority = None
  let pp_msg ppf Datum = Format.fprintf ppf "datum"
  let pp_state ppf st = Format.fprintf ppf "{s=%d f=%d}" st.stored st.forwarded
  let init (ctx : Proto.Ctx.t) = ({ self = ctx.self; stored = 0; forwarded = 0 }, [])

  let receive =
    [
      Proto.Handler.v ~name:"store" (fun _ st ~src:_ Datum ->
          ({ st with stored = st.stored + 1 }, []));
      Proto.Handler.v ~name:"forward" (fun _ st ~src:_ Datum ->
          ({ st with forwarded = st.forwarded + 1 }, []));
    ]

  let on_timer _ st _ : state * msg Proto.Action.t list = (st, [])
  let properties : (state, msg) Proto.View.t Core.Property.t list = []

  let objectives : (state, msg) Proto.View.t Core.Objective.t list =
    [
      Core.Objective.v ~name:"stored" (fun view ->
          Proto.View.fold (fun acc _ st -> acc +. float_of_int st.stored) 0. view);
    ]

  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module NE = Engine.Sim.Make (Nfa)

let test_nfa_handler_ambiguity () =
  let run resolver =
    let eng = NE.create ~seed:2 ~jitter:0. ~topology () in
    NE.set_resolver eng resolver;
    NE.spawn eng (nid 0);
    NE.run_for eng 0.05;
    for i = 1 to 10 do
      NE.inject eng ~after:(0.1 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Nfa.Datum
    done;
    NE.run_for eng 3.;
    let st = Option.get (NE.state_of eng (nid 0)) in
    (st.Nfa.stored, st.Nfa.forwarded, NE.decision_sites eng)
  in
  let stored, forwarded, log = run Core.Resolver.first in
  checki "first resolver always stores" 10 stored;
  checki "never forwards" 0 forwarded;
  checkb "ambiguity logged as handler choice" true
    (List.for_all
       (fun (_, site, _) -> String.equal site.Core.Choice.site_label "handler:datum")
       log);
  checki "one decision per datum" 10 (List.length log);
  let stored_r, forwarded_r, _ = run Core.Resolver.random in
  checkb "random splits between handlers" true (stored_r > 0 && forwarded_r > 0);
  (* Lookahead maximises the 'stored' objective, so it picks store. *)
  let eng = NE.create ~seed:2 ~jitter:0. ~topology () in
  NE.set_lookahead eng { NE.default_lookahead with horizon = 0.3; max_events = 20 };
  NE.spawn eng (nid 0);
  NE.run_for eng 0.05;
  for i = 1 to 10 do
    NE.inject eng ~after:(0.1 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Nfa.Datum
  done;
  NE.run_for eng 3.;
  let st = Option.get (NE.state_of eng (nid 0)) in
  checki "lookahead picks the objective-maximising handler" 10 st.Nfa.stored

let test_lookahead_scope_blinds_prediction () =
  (* With the objective evaluated on an empty view, every branch scores
     the same and the lookahead degrades to random tie-breaking; with
     global knowledge it always picks the good branch. The contrast
     proves the scope hook actually gates what prediction sees. *)
  let run scope =
    let eng = make () in
    spawn_all eng 1;
    E.run_for eng 0.1;
    E.set_lookahead eng { E.default_lookahead with horizon = 0.5; max_events = 50; scope };
    for i = 1 to 20 do
      E.inject eng ~after:(0.3 *. float_of_int i) ~src:(nid 0) ~dst:(nid 0) Toy.Kick
    done;
    E.run_for eng 10.;
    (state_exn eng 0).Toy.score
  in
  checki "global knowledge: perfect" 20 (run None);
  let blind =
    run
      (Some
         (fun _node view ->
           Proto.View.restrict view Proto.Node_id.Set.empty))
  in
  checkb "blind prediction is a coin flip" true (blind > -20 && blind < 20)

let test_message_log_and_seqdiag () =
  let eng = make () in
  spawn_all eng 3;
  E.run_for eng 0.1;
  checkb "off by default" true (E.message_log eng = []);
  E.enable_message_log eng;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 1);
  E.inject eng ~after:0.2 ~src:(nid 2) ~dst:(nid 1) (Toy.Ping 2);
  E.run_for eng 1.;
  let log = E.message_log eng in
  (* 2 pings + 2 pongs. *)
  checki "all deliveries logged" 4 (List.length log);
  (match log with
  | (t0, src, dst, kind) :: _ ->
      checkb "oldest first" true (Dsim.Vtime.to_seconds t0 < 0.3);
      checki "first src" 0 (Proto.Node_id.to_int src);
      checki "first dst" 1 (Proto.Node_id.to_int dst);
      Alcotest.check Alcotest.string "kind" "ping" kind
  | [] -> Alcotest.fail "empty log");
  let diagram =
    Metrics.Seqdiag.render
      (List.map
         (fun (t, src, dst, kind) ->
           {
             Metrics.Seqdiag.at_ms = Dsim.Vtime.to_ms t;
             src = Proto.Node_id.to_int src;
             dst = Proto.Node_id.to_int dst;
             kind;
           })
         log)
  in
  checkb "diagram mentions the kind" true
    (let rec contains i =
       i + 4 <= String.length diagram
       && (String.sub diagram i 4 = "ping" || contains (i + 1))
     in
     contains 0);
  (* Truncation note appears when capped. *)
  let many =
    List.init 7 (fun i -> { Metrics.Seqdiag.at_ms = float_of_int i; src = 0; dst = 1; kind = "m" })
  in
  let capped = Metrics.Seqdiag.render ~max_messages:3 many in
  checkb "truncation reported" true
    (let rec contains i =
       i + 4 <= String.length capped && (String.sub capped i 4 = "more" || contains (i + 1))
     in
     contains 0);
  Alcotest.check Alcotest.string "empty diagram" "(no messages)\n" (Metrics.Seqdiag.render [])

let test_message_log_bounded () =
  let eng = make () in
  spawn_all eng 3;
  E.run_for eng 0.1;
  E.enable_message_log ~capacity:3 eng;
  for i = 1 to 5 do
    E.inject eng ~after:(0.1 *. float_of_int i) ~src:(nid 0) ~dst:(nid 1) (Toy.Ping i)
  done;
  E.run_for eng 1.;
  (* 5 pings + 5 pongs delivered, but only the newest 3 are retained. *)
  let log = E.message_log eng in
  checki "log capped" 3 (List.length log);
  (match (List.rev log, log) with
  | (newest, _, _, _) :: _, (oldest, _, _, _) :: _ ->
      checkb "newest entries retained" true
        (Dsim.Vtime.to_seconds newest > 0.5 && Dsim.Vtime.to_seconds oldest > 0.2);
      checkb "still oldest-first" true Dsim.Vtime.(oldest <= newest)
  | _ -> Alcotest.fail "empty log");
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Sim.enable_message_log: negative capacity") (fun () ->
      E.enable_message_log ~capacity:(-1) eng)

let test_resolver_name () =
  let eng = make () in
  Alcotest.check Alcotest.string "plain" "first" (E.resolver_name eng);
  E.set_lookahead eng E.default_lookahead;
  Alcotest.check Alcotest.string "lookahead" "lookahead/random" (E.resolver_name eng)

let () =
  Alcotest.run "engine"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "boot and timer" `Quick test_boot_and_timer;
          Alcotest.test_case "kill/restart" `Quick test_kill_and_restart;
          Alcotest.test_case "restart invalidates timers" `Quick test_restart_invalidates_old_timers;
          Alcotest.test_case "spawn errors" `Quick test_spawn_errors;
          Alcotest.test_case "injection edges" `Quick test_injection_and_schedule_edges;
          Alcotest.test_case "spawn on corpse" `Quick test_spawn_on_killed_node_rejected;
        ] );
      ( "messaging",
        [
          Alcotest.test_case "roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "filters" `Quick test_filters;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "choices",
        [
          Alcotest.test_case "resolver + decision log" `Quick test_resolver_choice_and_log;
          Alcotest.test_case "violations" `Quick test_violation_detection;
          Alcotest.test_case "lookahead avoids bad branch" `Quick test_lookahead_avoids_bad_branch;
          Alcotest.test_case "bandit learns online" `Slow test_bandit_learns_online;
          Alcotest.test_case "hybrid cache" `Quick test_hybrid_cache;
          Alcotest.test_case "playbook offline" `Quick test_playbook_offline_training;
          Alcotest.test_case "nfa handler ambiguity" `Quick test_nfa_handler_ambiguity;
          Alcotest.test_case "lookahead scope" `Quick test_lookahead_scope_blinds_prediction;
          Alcotest.test_case "message log + seqdiag" `Quick test_message_log_and_seqdiag;
          Alcotest.test_case "message log bounded" `Quick test_message_log_bounded;
          Alcotest.test_case "resolver name" `Quick test_resolver_name;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "fork independence" `Quick test_fork_independence;
          Alcotest.test_case "view + objective" `Quick test_global_view_and_objective;
          Alcotest.test_case "quiescence" `Quick test_run_until_quiescent;
        ] );
    ]
