(* A toy mutual-exclusion protocol used by the model-checker and
   runtime test suites: violations (two holders) are easy to stage and
   easy for consequence prediction to find. *)

type msg = Grant | Release | Flip

type state = { self : Proto.Node_id.t; holding : bool }

let name = "lock"
let equal_state (a : state) b = a = b
let msg_kind = function Grant -> "grant" | Release -> "release" | Flip -> "flip"
let msg_bytes _ = 16
let msg_codec = None
let validate = None
let durable = None
let degraded = None
let priority = None

let pp_msg ppf m =
  Format.fprintf ppf "%s" (match m with Grant -> "grant" | Release -> "release" | Flip -> "flip")

let pp_state ppf st = Format.fprintf ppf "{h=%b}" st.holding

(* [pp_state] prints only [holding]; match that granularity exactly. *)
let fingerprint = Some (fun st -> Hashtbl.hash st.holding)

let init (ctx : Proto.Ctx.t) = ({ self = ctx.self; holding = false }, [])

let receive =
  [
    Proto.Handler.v ~name:"grant"
      ~guard:(fun _ ~src:_ m -> m = Grant)
      (fun _ st ~src:_ _ -> ({ st with holding = true }, []));
    Proto.Handler.v ~name:"release"
      ~guard:(fun _ ~src:_ m -> m = Release)
      (fun _ st ~src:_ _ -> ({ st with holding = false }, []));
    Proto.Handler.v ~name:"flip"
      ~guard:(fun _ ~src:_ m -> m = Flip)
      (fun ctx st ~src:_ _ ->
        (* A choice: alternative 0 is harmless, alternative 1 takes the
           lock. Exploration must branch into both. *)
        let take = ctx.choose (Core.Choice.of_values ~label:"flip" [ false; true ]) in
        if take then ({ st with holding = true }, []) else (st, []));
  ]

let on_timer _ st id : state * msg Proto.Action.t list =
  match id with "grab" -> ({ st with holding = true }, []) | _ -> (st, [])

let properties : (state, msg) Proto.View.t Core.Property.t list =
  [
    Core.Property.safety ~name:"mutex" (fun view ->
        Proto.View.fold (fun n _ st -> if st.holding then n + 1 else n) 0 view <= 1);
    Core.Property.liveness ~name:"someone-holds" (fun view ->
        Proto.View.fold (fun any _ st -> any || st.holding) false view);
  ]

let objectives : (state, msg) Proto.View.t Core.Objective.t list = []

let generic_msgs st : (Proto.Node_id.t * msg) list =
  if st.holding then [] else [ (Proto.Node_id.of_int 9, Grant) ]
