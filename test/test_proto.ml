(* Unit tests for the state-machine programming model. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let nid = Proto.Node_id.of_int

(* ---------- Node_id ---------- *)

let test_node_id_basics () =
  checki "roundtrip" 5 (Proto.Node_id.to_int (nid 5));
  checkb "equal" true (Proto.Node_id.equal (nid 1) (nid 1));
  checkb "not equal" false (Proto.Node_id.equal (nid 1) (nid 2));
  checkb "ordering" true (Proto.Node_id.compare (nid 1) (nid 2) < 0);
  checks "pp" "n7" (Format.asprintf "%a" Proto.Node_id.pp (nid 7));
  Alcotest.check_raises "negative" (Invalid_argument "Node_id.of_int: negative") (fun () ->
      ignore (nid (-1)))

let test_node_id_collections () =
  let s = Proto.Node_id.Set.of_list [ nid 3; nid 1; nid 3 ] in
  checki "set dedups" 2 (Proto.Node_id.Set.cardinal s);
  let m = Proto.Node_id.Map.(add (nid 1) "a" empty) in
  checkb "map find" true (Proto.Node_id.Map.find_opt (nid 1) m = Some "a")

(* ---------- Action ---------- *)

let test_action_constructors () =
  (match Proto.Action.send ~dst:(nid 2) "m" with
  | Proto.Action.Send { dst; msg } ->
      checki "dst" 2 (Proto.Node_id.to_int dst);
      checks "msg" "m" msg
  | _ -> Alcotest.fail "expected Send");
  (match Proto.Action.set_timer ~id:"t" ~after:1.5 with
  | Proto.Action.Set_timer { id; after } ->
      checks "id" "t" id;
      Alcotest.check (Alcotest.float 0.) "after" 1.5 after
  | _ -> Alcotest.fail "expected Set_timer");
  match Proto.Action.note "x=%d" 3 with
  | Proto.Action.Note s -> checks "formatted" "x=3" s
  | _ -> Alcotest.fail "expected Note"

let test_action_pp () =
  let pp_msg ppf s = Format.fprintf ppf "%s" s in
  checks "send" "send(n2, hello)"
    (Format.asprintf "%a" (Proto.Action.pp pp_msg) (Proto.Action.send ~dst:(nid 2) "hello"));
  checks "cancel" "cancel_timer(t)"
    (Format.asprintf "%a" (Proto.Action.pp pp_msg) (Proto.Action.cancel_timer "t"))

(* ---------- Handler ---------- *)

let test_handler_guards () =
  let h1 =
    Proto.Handler.v ~name:"even"
      ~guard:(fun st ~src:_ m -> st = 0 && m mod 2 = 0)
      (fun _ st ~src:_ _ -> (st, []))
  in
  let h2 = Proto.Handler.v ~name:"always" (fun _ st ~src:_ _ -> (st, [])) in
  let applicable st m = Proto.Handler.applicable [ h1; h2 ] st ~src:(nid 0) m in
  checki "both apply" 2 (List.length (applicable 0 4));
  checki "guard filters" 1 (List.length (applicable 0 3));
  checki "state-dependent" 1 (List.length (applicable 9 4));
  checks "surviving handler" "always" (List.hd (applicable 0 3)).Proto.Handler.name

(* ---------- View ---------- *)

let view nodes inflight : (string, int) Proto.View.t =
  {
    time = Dsim.Vtime.zero;
    nodes = List.map (fun (i, s) -> (nid i, s)) nodes;
    inflight = List.map (fun (a, b, m) -> (nid a, nid b, m)) inflight;
  }

let test_view_accessors () =
  let v = view [ (0, "a"); (1, "b") ] [ (0, 1, 42) ] in
  checki "node count" 2 (Proto.View.node_count v);
  checki "inflight" 1 (Proto.View.inflight_count v);
  checkb "find" true (Proto.View.find v (nid 1) = Some "b");
  checkb "find missing" true (Proto.View.find v (nid 9) = None);
  checki "ids" 2 (List.length (Proto.View.ids v))

let test_view_fold () =
  let v = view [ (0, "x"); (1, "yy") ] [] in
  checki "fold lengths" 3 (Proto.View.fold (fun acc _ s -> acc + String.length s) 0 v)

let test_view_restrict () =
  let v = view [ (0, "a"); (1, "b"); (2, "c") ] [ (0, 1, 1); (1, 2, 2) ] in
  let keep = Proto.Node_id.Set.of_list [ nid 0; nid 1 ] in
  let r = Proto.View.restrict v keep in
  checki "nodes restricted" 2 (Proto.View.node_count r);
  checki "inflight restricted" 1 (Proto.View.inflight_count r)

(* ---------- Ctx helpers ---------- *)

let test_ctx_predicted_ms () =
  let net = Net.Netmodel.create () in
  let ctx : Proto.Ctx.t =
    {
      self = nid 0;
      now = Dsim.Vtime.of_seconds 1.;
      rng = Dsim.Rng.create 1;
      net;
      fd = Net.Failure_detector.create ();
      cb = Net.Circuit_breaker.create ();
      pressure = (fun () -> 0.);
      choose = (fun c -> Core.Choice.nth c 0);
    }
  in
  Alcotest.check (Alcotest.float 1e-6) "default when unknown" 50.
    (Proto.Ctx.predicted_ms ctx (nid 1));
  Net.Netmodel.observe_latency net ~src:0 ~dst:1 (Dsim.Vtime.of_seconds 1.) 0.1;
  Net.Netmodel.observe_bandwidth net ~src:0 ~dst:1 (Dsim.Vtime.of_seconds 1.) 1_000_000.;
  checkb "predicted from model" true (Proto.Ctx.predicted_ms ctx (nid 1) > 99.);
  checkb "confidence known" true (Proto.Ctx.link_confidence ctx (nid 1) > 0.9);
  Alcotest.check (Alcotest.float 0.) "confidence unknown" 0. (Proto.Ctx.link_confidence ctx (nid 2))

let test_ctx_choose_dispatches () =
  let ctx : Proto.Ctx.t =
    {
      self = nid 0;
      now = Dsim.Vtime.zero;
      rng = Dsim.Rng.create 1;
      net = Net.Netmodel.create ();
      fd = Net.Failure_detector.create ();
      cb = Net.Circuit_breaker.create ();
      pressure = (fun () -> 0.);
      choose = (fun c -> Core.Choice.nth c (Core.Choice.arity c - 1));
    }
  in
  checks "polymorphic choose" "last"
    (ctx.choose (Core.Choice.of_values ~label:"l" [ "first"; "mid"; "last" ]));
  checki "works at other types" 3 (ctx.choose (Core.Choice.of_values ~label:"l" [ 1; 2; 3 ]))

let () =
  Alcotest.run "proto"
    [
      ( "node_id",
        [
          Alcotest.test_case "basics" `Quick test_node_id_basics;
          Alcotest.test_case "collections" `Quick test_node_id_collections;
        ] );
      ( "action",
        [
          Alcotest.test_case "constructors" `Quick test_action_constructors;
          Alcotest.test_case "pp" `Quick test_action_pp;
        ] );
      ("handler", [ Alcotest.test_case "guards" `Quick test_handler_guards ]);
      ( "view",
        [
          Alcotest.test_case "accessors" `Quick test_view_accessors;
          Alcotest.test_case "fold" `Quick test_view_fold;
          Alcotest.test_case "restrict" `Quick test_view_restrict;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "predicted_ms" `Quick test_ctx_predicted_ms;
          Alcotest.test_case "choose dispatches" `Quick test_ctx_choose_dispatches;
        ] );
    ]
