(* Observability layer: registry semantics, causal span propagation
   through the engine's fault paths, JSON round-trips, and per-seed
   determinism of the exports. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let nid = Proto.Node_id.of_int

(* ---------- registry ---------- *)

let test_counter_interning () =
  let r = Obs.Registry.create () in
  let a = Obs.Registry.counter r ~name:"c" ~labels:[ ("node", "1"); ("kind", "x") ] in
  (* Same key, labels in a different order: must be the same series. *)
  let b = Obs.Registry.counter r ~name:"c" ~labels:[ ("kind", "x"); ("node", "1") ] in
  Obs.Registry.incr a;
  Obs.Registry.incr ~by:2 b;
  checki "shared series" 3 (Obs.Registry.counter_value a);
  checki "one series interned" 1 (Obs.Registry.cardinality r);
  let other = Obs.Registry.counter r ~name:"c" ~labels:[ ("node", "2"); ("kind", "x") ] in
  Obs.Registry.incr other;
  checki "distinct labels, distinct series" 1 (Obs.Registry.counter_value other);
  checki "two series now" 2 (Obs.Registry.cardinality r)

let test_kind_clash () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r ~name:"m" ~labels:[]);
  checkb "kind clash raises" true
    (try
       ignore (Obs.Registry.gauge r ~name:"m" ~labels:[]);
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  let r = Obs.Registry.create () in
  let g = Obs.Registry.gauge r ~name:"depth" ~labels:[ ("node", "0") ] in
  Obs.Registry.set g 4.;
  Obs.Registry.set g 2.;
  Alcotest.check (Alcotest.float 0.) "last write wins" 2. (Obs.Registry.gauge_value g)

let member_exn key j =
  match Obs.Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" key (Obs.Json.to_string j)

let test_histogram_export () =
  let r = Obs.Registry.create () in
  let h =
    Obs.Registry.histogram r ~name:"lat" ~labels:[] ~lo:0. ~hi:100. ~buckets:10
  in
  List.iter (Obs.Registry.observe h) [ -5.; 10.; 50.; 150.; 99.; 100. ];
  checki "all observations counted" 6 (Obs.Registry.histogram_count h);
  match Obs.Registry.to_json r with
  | [ j ] ->
      checks "type" "histogram" (match member_exn "type" j with Str s -> s | _ -> "?");
      checki "count" 6 (match member_exn "count" j with Int n -> n | _ -> -1);
      checki "underflow" 1 (match member_exn "underflow" j with Int n -> n | _ -> -1);
      (* 150 and the exact upper bound 100 both overflow (buckets are
         half-open, [lo, hi) overall). *)
      checki "overflow" 2 (match member_exn "overflow" j with Int n -> n | _ -> -1)
  | l -> Alcotest.failf "expected 1 metric, got %d" (List.length l)

let test_volatile_excluded () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r ~name:"stable" ~labels:[]);
  ignore (Obs.Registry.gauge ~volatile:true r ~name:"wallclock" ~labels:[]);
  checki "default export hides volatile" 1 (List.length (Obs.Registry.to_json r));
  checki "opt-in export shows it" 2
    (List.length (Obs.Registry.to_json ~include_volatile:true r))

(* ---------- JSON round-trips ---------- *)

let test_span_json_roundtrip () =
  let ring = Obs.Span.ring ~capacity:8 () in
  Obs.Span.record ring ~trace:3 ~src:0 ~dst:1 ~kind:"ping" ~enqueue:0.5 ~deliver:0.75
    ~verdict:"deliver";
  match Obs.Span.spans ring with
  | [ s ] -> (
      let j = Obs.Span.to_json s in
      let line = Obs.Json.to_string j in
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok j' -> (
          checkb "json round-trip" true (Obs.Json.equal j j');
          match Obs.Span.of_json j' with
          | Error e -> Alcotest.failf "span decode failed: %s" e
          | Ok s' ->
              checkb "span round-trip" true (s = s');
              (* Rendering must be byte-stable through a parse cycle. *)
              checks "byte-stable" line (Obs.Json.to_string j')))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_metrics_json_stable () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r ~name:"c" ~labels:[ ("node", "0") ] in
  Obs.Registry.incr c;
  let h = Obs.Registry.histogram r ~name:"h" ~labels:[] ~lo:0. ~hi:10. ~buckets:2 in
  Obs.Registry.observe h 3.5;
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "metrics line unparseable (%s): %s" e line
      | Ok j -> checks "render-parse-render stable" line (Obs.Json.to_string j))
    (Obs.Registry.to_json_lines r)

let test_ring_eviction () =
  let ring = Obs.Span.ring ~capacity:2 () in
  for i = 0 to 4 do
    Obs.Span.record ring ~trace:i ~src:0 ~dst:1 ~kind:"m" ~enqueue:0. ~deliver:0.
      ~verdict:"deliver"
  done;
  checki "recorded keeps counting" 5 (Obs.Span.recorded ring);
  checki "evictions visible" 3 (Obs.Span.dropped ring);
  match Obs.Span.spans ring with
  | [ a; b ] ->
      checki "oldest retained" 3 a.Obs.Span.trace;
      checki "newest retained" 4 b.Obs.Span.trace
  | l -> Alcotest.failf "expected 2 retained spans, got %d" (List.length l)

(* ---------- engine integration: trace propagation under faults ---------- *)

module Toy = struct
  type msg = Ping of int | Pong of int

  type state = { self : Proto.Node_id.t; pings : int; pongs : int }

  let name = "obstoy"
  let equal_state (a : state) b = a = b
  let msg_kind = function Ping _ -> "ping" | Pong _ -> "pong"
  let msg_bytes _ = 64
  let msg_codec = None
  let validate = None
  let fingerprint = None
  let durable = None
  let degraded = None
  let priority = None

  let pp_msg ppf = function
    | Ping n -> Format.fprintf ppf "ping(%d)" n
    | Pong n -> Format.fprintf ppf "pong(%d)" n

  let pp_state ppf st = Format.fprintf ppf "{pings=%d pongs=%d}" st.pings st.pongs

  let init (ctx : Proto.Ctx.t) = ({ self = ctx.self; pings = 0; pongs = 0 }, [])

  let receive =
    [
      Proto.Handler.v ~name:"ping"
        ~guard:(fun _ ~src:_ m -> match m with Ping _ -> true | Pong _ -> false)
        (fun _ st ~src m ->
          match m with
          | Ping n -> ({ st with pings = st.pings + 1 }, [ Proto.Action.send ~dst:src (Pong n) ])
          | Pong _ -> (st, []));
      Proto.Handler.v ~name:"pong"
        ~guard:(fun _ ~src:_ m -> match m with Pong _ -> true | Ping _ -> false)
        (fun _ st ~src:_ _ -> ({ st with pongs = st.pongs + 1 }, []));
    ]

  let on_timer _ctx st _id : state * msg Proto.Action.t list = (st, [])
  let properties = []
  let objectives = []
  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Toy)

let topology =
  Net.Topology.uniform ~n:2 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)

let run_pingpong ~seed =
  let sink = Obs.Sink.create () in
  let eng = E.create ~seed ~jitter:0. ~topology () in
  E.set_obs eng (Some sink);
  E.spawn eng (nid 0);
  E.spawn eng (nid 1);
  E.run_for eng 0.1;
  (* Force both fault paths: every message is held back (reorder) and
     ghosted once (duplicate). *)
  Net.Netem.set_faults (E.netem eng)
    {
      Net.Netem.no_faults with
      Net.Netem.duplicate_rate = 1.0;
      duplicate_copies = 1;
      reorder_rate = 1.0;
      reorder_window = 0.05;
    };
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Toy.Ping 7);
  E.run_for eng 2.0;
  (eng, sink)

let test_span_propagation () =
  let eng, sink = run_pingpong ~seed:11 in
  (match E.state_of eng (nid 0) with
  | Some st -> checkb "pong(s) arrived" true (st.Toy.pongs >= 1)
  | None -> Alcotest.fail "node 0 missing");
  let spans = Obs.Span.spans sink.Obs.Sink.spans in
  let by_kind k = List.filter (fun (s : Obs.Span.span) -> String.equal s.kind k) spans in
  let pings = by_kind "ping" and pongs = by_kind "pong" in
  checkb "ping spans recorded" true (pings <> []);
  checkb "pong spans recorded" true (pongs <> []);
  checkb "duplicate verdict recorded" true
    (List.exists (fun (s : Obs.Span.span) -> String.equal s.verdict "duplicate") spans);
  checkb "reorder verdict recorded" true
    (List.exists (fun (s : Obs.Span.span) -> String.equal s.verdict "reorder") spans);
  (* One root send: every ping hop (held-back original and ghost copy)
     carries the trace minted at inject, and the pong replies — fired
     from the ping's delivery — inherit the same id.  That is the
     causal chain the layer exists to reconstruct. *)
  let root = (List.hd pings).Obs.Span.trace in
  List.iter
    (fun (s : Obs.Span.span) -> checki "ping hop shares root trace" root s.Obs.Span.trace)
    pings;
  List.iter
    (fun (s : Obs.Span.span) -> checki "pong inherits ping trace" root s.Obs.Span.trace)
    pongs

let test_engine_metrics () =
  let _, sink = run_pingpong ~seed:11 in
  let r = sink.Obs.Sink.registry in
  let deliveries node =
    Obs.Registry.counter_value
      (Obs.Registry.counter r ~name:"engine_deliveries" ~labels:[ ("node", node) ])
  in
  (* Node 1 got the ping plus its ghost copy; node 0 got pongs back. *)
  checkb "node 1 delivered" true (deliveries "1" >= 2);
  checkb "node 0 delivered" true (deliveries "0" >= 1);
  checkb "per-link latency histogram populated" true
    (Obs.Registry.histogram_count
       (Obs.Registry.histogram r ~name:"engine_delivery_latency_ms"
          ~labels:[ ("src", "0"); ("dst", "1") ]
          ~lo:0. ~hi:2000. ~buckets:20)
     >= 1)

let test_export_deterministic () =
  let _, s1 = run_pingpong ~seed:42 in
  let _, s2 = run_pingpong ~seed:42 in
  let _, s3 = run_pingpong ~seed:43 in
  Alcotest.check (Alcotest.list Alcotest.string) "metrics byte-identical per seed"
    (Obs.Registry.to_json_lines s1.Obs.Sink.registry)
    (Obs.Registry.to_json_lines s2.Obs.Sink.registry);
  Alcotest.check (Alcotest.list Alcotest.string) "spans byte-identical per seed"
    (Obs.Span.to_json_lines s1.Obs.Sink.spans)
    (Obs.Span.to_json_lines s2.Obs.Sink.spans);
  checkb "different seed, different spans" true
    (Obs.Span.to_json_lines s1.Obs.Sink.spans
    <> Obs.Span.to_json_lines s3.Obs.Sink.spans)

(* ---------- sink files ---------- *)

let test_validate_file () =
  let _, sink = run_pingpong ~seed:7 in
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let written = Obs.Sink.write_metrics sink ~path in
      (match Obs.Sink.validate_file path with
      | Ok n -> checki "validates what was written" written n
      | Error e -> Alcotest.failf "valid file rejected: %s" e);
      (* An empty file must fail the check — that is what CI relies on. *)
      let oc = open_out path in
      close_out oc;
      match Obs.Sink.validate_file path with
      | Ok _ -> Alcotest.fail "empty file accepted"
      | Error _ -> ());
  let garbled = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove garbled)
    (fun () ->
      let oc = open_out garbled in
      output_string oc "{\"type\":\"counter\"}\nnot json at all\n";
      close_out oc;
      match Obs.Sink.validate_file garbled with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error _ -> ())

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter interning" `Quick test_counter_interning;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram export" `Quick test_histogram_export;
          Alcotest.test_case "volatile excluded" `Quick test_volatile_excluded;
        ] );
      ( "json",
        [
          Alcotest.test_case "span round-trip" `Quick test_span_json_roundtrip;
          Alcotest.test_case "metrics lines stable" `Quick test_metrics_json_stable;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
        ] );
      ( "engine",
        [
          Alcotest.test_case "span propagation under faults" `Quick test_span_propagation;
          Alcotest.test_case "engine metrics" `Quick test_engine_metrics;
          Alcotest.test_case "deterministic export" `Quick test_export_deterministic;
        ] );
      ( "sink",
        [ Alcotest.test_case "validate file" `Quick test_validate_file ] );
    ]
