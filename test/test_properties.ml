(* Cross-cutting property-based tests: system-level invariants that
   should hold for arbitrary seeds, workloads and parameters. *)

module Lock = Test_support.Lock_app
module E = Engine.Sim.Make (Lock)
module Ex = Mc.Explorer.Make (Lock)

let nid = Proto.Node_id.of_int

let topology n =
  Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.02 ~bandwidth:100_000. ~loss:0.)

(* ---------- engine determinism ---------- *)

(* A run is a pure function of its seed: same seed, same workload ->
   identical trajectory (event counts, decisions, final states). *)
let run_fingerprint ~seed ~moves =
  let eng = E.create ~seed ~topology:(topology 4) () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to 3 do
    E.spawn eng (nid i)
  done;
  List.iteri
    (fun i (src, dst, m) ->
      let msg = match m mod 3 with 0 -> Lock.Grant | 1 -> Lock.Release | _ -> Lock.Flip in
      E.inject eng
        ~after:(0.05 +. (0.1 *. float_of_int i))
        ~src:(nid (abs src mod 4))
        ~dst:(nid (abs dst mod 4))
        msg)
    moves;
  E.run_for eng 5.;
  let stats = E.stats eng in
  let states =
    List.map
      (fun (id, st) -> (Proto.Node_id.to_int id, st.Lock.holding))
      (E.live_nodes eng)
  in
  (stats.E.events_processed, stats.E.messages_delivered, stats.E.decisions, states)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are pure functions of the seed" ~count:8
    QCheck.(pair small_nat (small_list (triple small_int small_int small_int)))
    (fun (seed, moves) -> run_fingerprint ~seed ~moves = run_fingerprint ~seed ~moves)

let prop_engine_seed_sensitive =
  QCheck.Test.make ~name:"different seeds give different rng streams (sanity)" ~count:5
    QCheck.unit
    (fun () ->
      (* Not a universal law (workloads can coincide), but for a Flip
         workload with 20 choices collisions are vanishing. *)
      let moves = List.init 20 (fun i -> (i, i + 1, 2)) in
      run_fingerprint ~seed:1 ~moves = run_fingerprint ~seed:1 ~moves)

(* A fork is a perfect replica: running the original and its fork
   forward by the same amount yields identical trajectories. The entire
   lookahead mechanism rests on this. *)
let prop_fork_fidelity =
  QCheck.Test.make ~name:"fork and original evolve identically" ~count:10
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 6) (triple small_int small_int small_int)))
    (fun (seed, moves) ->
      let eng = E.create ~seed ~topology:(topology 4) () in
      E.set_resolver eng Core.Resolver.random;
      for i = 0 to 3 do
        E.spawn eng (nid i)
      done;
      List.iteri
        (fun i (src, dst, m) ->
          let msg = match m mod 3 with 0 -> Lock.Grant | 1 -> Lock.Release | _ -> Lock.Flip in
          E.inject eng
            ~after:(0.05 +. (0.2 *. float_of_int i))
            ~src:(nid (abs src mod 4))
            ~dst:(nid (abs dst mod 4))
            msg)
        moves;
      E.run_for eng 0.4;
      let fork = E.fork eng in
      E.run_for eng 5.;
      E.run_for fork 5.;
      let states e =
        List.map (fun (id, st) -> (Proto.Node_id.to_int id, st.Lock.holding)) (E.live_nodes e)
      in
      states eng = states fork
      && (E.stats eng).E.messages_delivered = (E.stats fork).E.messages_delivered)

(* ---------- explorer purity and monotonicity ---------- *)

let world_of_moves moves : Ex.world =
  {
    states =
      List.fold_left
        (fun m i -> Proto.Node_id.Map.add (nid i) { Lock.self = nid i; holding = i = 0 } m)
        Proto.Node_id.Map.empty [ 0; 1; 2 ];
    pending =
      List.map
        (fun (src, dst, m) ->
          let msg = match m mod 3 with 0 -> Lock.Grant | 1 -> Lock.Release | _ -> Lock.Flip in
          (nid (abs src mod 3), nid (abs dst mod 3), msg))
        moves;
    timers = [];
    clocks = [];
  }

let few_moves = QCheck.(list_of_size Gen.(0 -- 4) (triple small_int small_int small_int))

let prop_explorer_pure =
  QCheck.Test.make ~name:"exploration is deterministic" ~count:20
    few_moves
    (fun moves ->
      let w = world_of_moves moves in
      let a = Ex.explore ~depth:3 w and b = Ex.explore ~depth:3 w in
      a.Ex.worlds_explored = b.Ex.worlds_explored
      && List.length a.Ex.violations = List.length b.Ex.violations)

let prop_explorer_depth_monotone =
  QCheck.Test.make ~name:"deeper exploration covers at least as much" ~count:20
    few_moves
    (fun moves ->
      let w = world_of_moves moves in
      let shallow = Ex.explore ~depth:2 w and deep = Ex.explore ~depth:4 w in
      deep.Ex.worlds_explored >= shallow.Ex.worlds_explored
      && List.length deep.Ex.violations >= List.length shallow.Ex.violations)

let prop_explorer_budget_respected =
  QCheck.Test.make ~name:"max_worlds is a hard budget" ~count:30
    QCheck.(pair (int_range 1 50) (list_of_size Gen.(0 -- 4) (triple small_int small_int small_int)))
    (fun (budget, moves) ->
      let r = Ex.explore ~max_worlds:budget ~depth:5 (world_of_moves moves) in
      r.Ex.worlds_explored <= budget)

(* Cross-validation: any state the engine actually reaches by
   delivering a set of in-flight messages (in whatever order its clock
   produces) must be among the worlds the explorer enumerates from the
   same starting point — the explorer over-approximates the engine. *)
let prop_explorer_covers_engine =
  QCheck.Test.make ~name:"explorer worlds cover engine executions" ~count:15
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 3) (triple small_int small_int (int_bound 1))))
    (fun (seed, moves) ->
      (* Grant/Release only: deterministic handlers, no choice noise. *)
      let msgs =
        List.map
          (fun (src, dst, m) ->
            (abs src mod 3, abs dst mod 3, if m = 0 then Lock.Grant else Lock.Release))
          moves
      in
      (* Engine run: inject all messages at staggered times, run out. *)
      let eng = E.create ~seed ~topology:(topology 3) () in
      E.set_resolver eng Core.Resolver.random;
      for i = 0 to 2 do
        E.spawn eng (nid i)
      done;
      E.run_for eng 0.01;
      List.iteri
        (fun i (src, dst, m) ->
          E.inject eng ~after:(0.01 +. (0.001 *. float_of_int i)) ~src:(nid src) ~dst:(nid dst) m)
        msgs;
      E.run_for eng 5.;
      let final =
        List.map (fun (id, st) -> (Proto.Node_id.to_int id, st.Lock.holding)) (E.live_nodes eng)
      in
      (* Explorer from the matching start world, full depth. *)
      let w : Ex.world =
        {
          states =
            List.fold_left
              (fun m i -> Proto.Node_id.Map.add (nid i) { Lock.self = nid i; holding = false } m)
              Proto.Node_id.Map.empty [ 0; 1; 2 ];
          pending = List.map (fun (s, d, m) -> (nid s, nid d, m)) msgs;
          timers = [];
          clocks = [];
        }
      in
      (* Collect every explored world's holding-vector by re-walking:
         explore exposes counts, not worlds, so instead check the final
         engine state is reachable by SOME delivery order — which, for
         commutative-per-node Grant/Release, equals: explorer at depth
         |msgs| finds no violation the engine missed and vice versa. *)
      let r = Ex.explore ~depth:(List.length msgs) w in
      let engine_violated = E.violations eng <> [] in
      let explorer_can_violate =
        List.exists (fun (v : Ex.violation) -> v.Ex.property = "mutex") r.Ex.violations
      in
      (* Soundness direction: if the engine hit a violation, the
         explorer must predict it as possible. *)
      (not engine_violated) || explorer_can_violate || final = [])

(* ---------- netem access-link FIFO ---------- *)

let prop_netem_fifo =
  QCheck.Test.make ~name:"same-uplink deliveries keep send order" ~count:50
    QCheck.(small_list (int_range 1 10_000))
    (fun sizes ->
      let nem =
        Net.Netem.create ~jitter:0. ~serialize_access:true ~rng:(Dsim.Rng.create 1)
          (Net.Topology.uniform ~n:2 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1000. ~loss:0.))
      in
      let rec ordered last = function
        | [] -> true
        | bytes :: rest -> (
            match Net.Netem.judge nem ~now:0. ~src:0 ~dst:1 ~bytes with
            | Net.Netem.Deliver d -> d >= last && ordered d rest
            | _ -> false)
      in
      ordered 0. sizes)

let prop_netem_queueing_slower_than_parallel =
  QCheck.Test.make ~name:"serialization never beats the unqueued link" ~count:50
    QCheck.(int_range 1 5)
    (fun n ->
      let mk serialize_access =
        Net.Netem.create ~jitter:0. ~serialize_access ~rng:(Dsim.Rng.create 1)
          (Net.Topology.uniform ~n:2 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1000. ~loss:0.))
      in
      let q = mk true and p = mk false in
      List.for_all
        (fun _ ->
          match
            ( Net.Netem.judge q ~now:0. ~src:0 ~dst:1 ~bytes:500,
              Net.Netem.judge p ~now:0. ~src:0 ~dst:1 ~bytes:500 )
          with
          | Net.Netem.Deliver dq, Net.Netem.Deliver dp -> dq >= dp -. 1e-9
          | _ -> false)
        (List.init n Fun.id))

(* ---------- code metrics ---------- *)

let ocamlish_line =
  QCheck.Gen.oneofl
    [
      "let x = 1";
      "let handle_m st = if p st then a else b";
      "  if x then y else z";
      "";
      "type t = A | B";
      "let pp fmt = ()";
    ]

let prop_strip_idempotent =
  QCheck.Test.make ~name:"comment stripping is idempotent" ~count:100
    (QCheck.make QCheck.Gen.(map (String.concat "\n") (list_size (1 -- 20) ocamlish_line)))
    (fun src ->
      let once = Metrics.Code_metrics.strip src in
      Metrics.Code_metrics.strip once = once)

let prop_comments_do_not_count =
  QCheck.Test.make ~name:"inserting comment-only lines never changes LoC" ~count:100
    (QCheck.make QCheck.Gen.(map (String.concat "\n") (list_size (1 -- 20) ocamlish_line)))
    (fun src ->
      let noisy =
        String.concat "\n"
          (List.concat_map
             (fun line -> [ "(* noise *)"; line ])
             (String.split_on_char '\n' src))
      in
      (Metrics.Code_metrics.analyze_source ~file:"a" src).Metrics.Code_metrics.loc
      = (Metrics.Code_metrics.analyze_source ~file:"b" noisy).Metrics.Code_metrics.loc)

(* ---------- stats ---------- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:100
    QCheck.(pair (list_of_size Gen.(2 -- 30) (float_bound_exclusive 100.)) (pair (int_bound 100) (int_bound 100)))
    (fun (xs, (p1, p2)) ->
      let s = Dsim.Stats.create () in
      List.iter (Dsim.Stats.add s) xs;
      let lo = min p1 p2 and hi = max p1 p2 in
      Dsim.Stats.percentile s (float_of_int lo) <= Dsim.Stats.percentile s (float_of_int hi) +. 1e-9)

(* ---------- view ---------- *)

let prop_view_restrict_shrinks =
  QCheck.Test.make ~name:"restricting a view never grows it" ~count:100
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (nodes, keep) ->
      let nodes = List.sort_uniq compare nodes in
      let view : (int, unit) Proto.View.t =
        {
          time = Dsim.Vtime.zero;
          nodes = List.map (fun i -> (nid i, i)) nodes;
          inflight = [];
        }
      in
      let keep_set = Proto.Node_id.Set.of_list (List.map nid keep) in
      let r = Proto.View.restrict view keep_set in
      Proto.View.node_count r <= Proto.View.node_count view
      && List.for_all (fun (id, _) -> Proto.Node_id.Set.mem id keep_set) r.Proto.View.nodes)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "properties"
    [
      ( "engine",
        qcheck [ prop_engine_deterministic; prop_engine_seed_sensitive; prop_fork_fidelity ] );
      ( "explorer",
        qcheck
          [
            prop_explorer_pure;
            prop_explorer_depth_monotone;
            prop_explorer_budget_respected;
            prop_explorer_covers_engine;
          ] );
      ("netem", qcheck [ prop_netem_fifo; prop_netem_queueing_slower_than_parallel ]);
      ("metrics", qcheck [ prop_strip_idempotent; prop_comments_do_not_count ]);
      ("stats", qcheck [ prop_percentile_monotone ]);
      ("view", qcheck [ prop_view_restrict_shrinks ]);
    ]
