(* The overload layer: bounded mailboxes and link queues with pluggable
   shed policies, queue pressure visible to handlers, token-bucket and
   sojourn admission control at the inject boundary, targeted chaff
   bursts, and the per-pair circuit breaker — all off by default at zero
   behavioural cost. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

(* Two message classes with distinct shed priorities, so [By_priority]
   eviction is observable; receivers also sample [Ctx.pressure] on
   every arrival. *)
module Prio_app = struct
  type msg = Lo of int | Hi of int

  type state = { self : Proto.Node_id.t; lo : int list; hi : int list; max_pressure : float }

  let name = "prio"
  let equal_state (a : state) b = a = b
  let msg_kind = function Lo _ -> "lo" | Hi _ -> "hi"
  let msg_bytes _ = 64
  let msg_codec = None
  let validate = None
  let durable = None
  let degraded = None
  let priority = Some (function Lo _ -> 0 | Hi _ -> 10)

  let pp_msg ppf = function
    | Lo n -> Format.fprintf ppf "lo(%d)" n
    | Hi n -> Format.fprintf ppf "hi(%d)" n

  let pp_state ppf st =
    Format.fprintf ppf "{lo=%d hi=%d}" (List.length st.lo) (List.length st.hi)

  let fingerprint = None
  let init (ctx : Proto.Ctx.t) = ({ self = ctx.self; lo = []; hi = []; max_pressure = 0. }, [])

  let receive =
    [
      Proto.Handler.v ~name:"any"
        ~guard:(fun _ ~src:_ _ -> true)
        (fun ctx st ~src:_ m ->
          let st = { st with max_pressure = Float.max st.max_pressure (Proto.Ctx.pressure ctx) } in
          match m with
          | Lo n -> ({ st with lo = n :: st.lo }, [])
          | Hi n -> ({ st with hi = n :: st.hi }, []));
    ]

  let on_timer _ st _ : state * msg Proto.Action.t list = (st, [])
  let properties : (state, msg) Proto.View.t Core.Property.t list = []
  let objectives : (state, msg) Proto.View.t Core.Objective.t list = []
  let generic_msgs _ : (Proto.Node_id.t * msg) list = []
end

module E = Engine.Sim.Make (Prio_app)

let topology n =
  Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

let make ?(seed = 3) ?(n = 2) () =
  let eng = E.create ~seed ~jitter:0. ~topology:(topology n) () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to n - 1 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 0.1;
  eng

let lo_of eng node =
  match E.state_of eng (nid node) with Some st -> List.rev st.Prio_app.lo | None -> []

let hi_of eng node =
  match E.state_of eng (nid node) with Some st -> List.rev st.Prio_app.hi | None -> []

let max_pressure_of eng node =
  match E.state_of eng (nid node) with Some st -> st.Prio_app.max_pressure | None -> 0.

(* ---------- configuration validation ---------- *)

let test_config_validation () =
  let eng = make () in
  let raises msg cfg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> E.set_overload eng ~config:cfg)
  in
  raises "Sim.set_overload: negative mailbox_capacity"
    { E.default_overload with E.mailbox_capacity = -1 };
  raises "Sim.set_overload: negative link_capacity" { E.default_overload with E.link_capacity = -1 };
  raises "Sim.set_overload: service_time must be >= 0"
    { E.default_overload with E.service_time = -0.1 };
  raises "Sim.set_overload: admit_rate must be >= 0" { E.default_overload with E.admit_rate = -1. };
  raises "Sim.set_overload: admit_burst must be positive"
    { E.default_overload with E.admit_burst = 0 };
  raises "Sim.set_overload: sojourn_threshold must be >= 0"
    { E.default_overload with E.sojourn_threshold = -1. };
  Alcotest.check_raises "Sim.overload: rate must be positive"
    (Invalid_argument "Sim.overload: rate must be positive") (fun () ->
      E.overload eng ~rate:0. (nid 1))

let test_limits_reported () =
  let eng = make () in
  checkb "off by default" true (E.overload_limits eng = None);
  E.set_overload eng;
  checkb "default config installed" true (E.overload_limits eng = Some E.default_overload)

(* ---------- bounded mailboxes and shed policies ---------- *)

(* A burst of simultaneous sends into a capacity-4 mailbox: which four
   survive depends only on the policy. *)
let burst_under ?(cap = 4) policy msgs =
  let eng = make () in
  E.set_overload eng
    ~config:{ E.default_overload with E.mailbox_capacity = cap; shed = policy };
  List.iter (fun m -> E.inject eng ~src:(nid 0) ~dst:(nid 1) m) msgs;
  E.run_for eng 5.;
  eng

let test_drop_newest () =
  let eng = burst_under E.Drop_newest (List.init 10 (fun i -> Prio_app.Lo (i + 1))) in
  checkb "first four admitted, the rest refused" true (lo_of eng 1 = [ 1; 2; 3; 4 ]);
  checki "six sheds counted against the mailbox" 6 (E.stats eng).E.sheds_mailbox;
  checki "high-water mark is the capacity" 4 (E.stats eng).E.max_mailbox_depth

let test_drop_oldest () =
  let eng = burst_under E.Drop_oldest (List.init 10 (fun i -> Prio_app.Lo (i + 1))) in
  checkb "each arrival evicted the oldest: last four survive" true (lo_of eng 1 = [ 7; 8; 9; 10 ]);
  checki "six sheds" 6 (E.stats eng).E.sheds_mailbox

let test_by_priority () =
  (* Five low-priority sends fill the queue, then five high-priority
     ones arrive: every Hi displaces the lowest-ranked victim (ties
     oldest-first), so the Los are wiped out one by one — including by
     the tie-breaking Lo 5 — and finally Hi 5 displaces its own
     eldest sibling. *)
  let msgs =
    List.init 5 (fun i -> Prio_app.Lo (i + 1)) @ List.init 5 (fun i -> Prio_app.Hi (i + 1))
  in
  let eng = burst_under E.By_priority msgs in
  Alcotest.check (Alcotest.list Alcotest.int) "every surviving message is high-priority" []
    (lo_of eng 1);
  Alcotest.check (Alcotest.list Alcotest.int) "the newest four his survive" [ 2; 3; 4; 5 ]
    (hi_of eng 1);
  checki "six messages shed along the way" 6 (E.stats eng).E.sheds_mailbox

let test_link_capacity () =
  (* Per-pair bound tighter than the mailbox: a 3-node fan-in where each
     sender may hold two in flight. *)
  let eng = make ~n:3 () in
  E.set_overload eng ~config:{ E.default_overload with E.link_capacity = 2 };
  for i = 1 to 6 do
    E.inject eng ~src:(nid 0) ~dst:(nid 2) (Prio_app.Lo i);
    E.inject eng ~src:(nid 1) ~dst:(nid 2) (Prio_app.Hi i)
  done;
  E.run_for eng 5.;
  checki "two per directed pair" 2 (List.length (lo_of eng 2));
  checki "the other pair is bounded independently" 2 (List.length (hi_of eng 2));
  checki "eight sheds against link queues" 8 (E.stats eng).E.sheds_link;
  checki "none against the (unbounded) mailbox" 0 (E.stats eng).E.sheds_mailbox

(* ---------- pressure ---------- *)

let test_pressure_visible () =
  let eng = make () in
  E.set_overload eng ~config:{ E.default_overload with E.mailbox_capacity = 4 };
  checkb "empty mailbox, zero pressure" true (E.pressure eng (nid 1) = 0.);
  for i = 1 to 4 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo i)
  done;
  checki "four queued" 4 (E.mailbox_depth eng (nid 1));
  checkb "pressure saturates at 1" true (E.pressure eng (nid 1) = 1.);
  E.run_for eng 5.;
  checki "drained" 0 (E.mailbox_depth eng (nid 1));
  checkb "handlers saw non-zero Ctx.pressure during the burst" true (max_pressure_of eng 1 > 0.)

let test_pressure_zero_when_unbounded () =
  let eng = make () in
  E.set_overload eng;
  for i = 1 to 8 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo i)
  done;
  checkb "unbounded mailbox never reports pressure" true (E.pressure eng (nid 1) = 0.);
  checkb "depth is still tracked" true (E.mailbox_depth eng (nid 1) = 8)

(* ---------- admission control at the inject boundary ---------- *)

let test_token_bucket () =
  let eng = make () in
  E.set_overload eng
    ~config:{ E.default_overload with E.admit_rate = 1.0; admit_burst = 2 };
  for i = 1 to 5 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo i)
  done;
  E.run_for eng 0.5;
  checki "burst budget admits two, refuses three" 3 (E.stats eng).E.sheds_admission;
  checki "the two admitted arrive" 2 (List.length (lo_of eng 1));
  (* A virtual second refills one token. *)
  E.run_for eng 1.0;
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo 6);
  E.run_for eng 0.5;
  checki "refill admits one more" 3 (List.length (lo_of eng 1));
  checki "no further admission sheds" 3 (E.stats eng).E.sheds_admission

let test_sojourn_gate () =
  (* A slow receiver (service_time delays each arrival by the backlog):
     once the oldest queued message has waited past the threshold, new
     injects are refused before the queue saturates. *)
  let eng = make () in
  E.set_overload eng
    ~config:{ E.default_overload with E.service_time = 0.2; sojourn_threshold = 0.1 };
  for i = 1 to 5 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo i)
  done;
  E.run_for eng 0.15;
  (* The head of the queue has now waited 0.15s > 0.1s. *)
  E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo 6);
  checkb "late inject refused by the sojourn gate" true ((E.stats eng).E.sheds_sojourn > 0);
  E.run_for eng 5.;
  checki "only the pre-gate messages arrived" 5 (List.length (lo_of eng 1))

(* ---------- chaff bursts ---------- *)

let test_overload_burst_bounded () =
  let eng = make () in
  E.set_overload eng ~config:{ E.default_overload with E.mailbox_capacity = 8 };
  E.overload eng ~rate:1000. (nid 1);
  E.run_for eng 2.;
  let s = E.stats eng in
  checkb "chaff flowed" true (s.E.chaff_sent > 500);
  checkb "mailbox never exceeded its bound" true (s.E.max_mailbox_depth <= 8);
  checkb "the bound actually bit" true (s.E.sheds_mailbox > 0);
  checkb "chaff is never handed to the app" true (lo_of eng 1 = [] && hi_of eng 1 = []);
  E.heal_overload eng (nid 1);
  let sent_at_heal = (E.stats eng).E.chaff_sent in
  E.run_for eng 2.;
  checki "healing stops the generator" sent_at_heal (E.stats eng).E.chaff_sent;
  checki "the queue drains" 0 (E.mailbox_depth eng (nid 1))

let test_heal_idempotent () =
  let eng = make () in
  E.overload eng (nid 1);
  E.heal_overload eng (nid 1);
  E.heal_overload eng (nid 1);
  E.run_for eng 1.;
  checkb "overload installs the layer on demand" true (E.overload_limits eng <> None)

(* ---------- circuit breaker ---------- *)

module Cb = Net.Circuit_breaker

let vt = Dsim.Vtime.of_seconds

let test_breaker_state_machine () =
  let cb = Cb.create ~failure_threshold:2 ~cooldown:5.0 ~half_open_probes:1 () in
  let st at = Cb.state cb ~src:0 ~dst:1 ~now:(vt at) in
  checkb "unknown pairs are closed" true (st 0. = Cb.Closed);
  Cb.record_failure cb ~src:0 ~dst:1 ~now:(vt 1.);
  checkb "one failure below threshold stays closed" true (st 1. = Cb.Closed);
  Cb.record_failure cb ~src:0 ~dst:1 ~now:(vt 2.);
  checkb "threshold trips open" true (st 2. = Cb.Open);
  checkb "open refuses sends" false (Cb.allow cb ~src:0 ~dst:1 ~now:(vt 3.));
  checkb "other pairs unaffected" true (Cb.allow cb ~src:1 ~dst:0 ~now:(vt 3.));
  checkb "cooldown elapses into half-open" true (st 7.5 = Cb.Half_open);
  checkb "half-open admits one probe" true (Cb.acquire cb ~src:0 ~dst:1 ~now:(vt 7.5));
  checkb "probe budget exhausted" false (Cb.acquire cb ~src:0 ~dst:1 ~now:(vt 7.6));
  Cb.record_failure cb ~src:0 ~dst:1 ~now:(vt 8.);
  checkb "probe failure re-opens" true (st 8. = Cb.Open);
  checkb "and restarts the cooldown" true (st 12. = Cb.Open);
  Cb.record_success cb ~src:0 ~dst:1;
  checkb "success closes from any state" true (st 12. = Cb.Closed);
  checki "nothing open afterwards" 0 (Cb.open_pairs cb ~now:(vt 12.))

let test_breaker_trip () =
  let cb = Cb.create () in
  Cb.trip cb ~src:0 ~dst:1 ~now:(vt 1.);
  checkb "external evidence opens instantly" true (Cb.state cb ~src:0 ~dst:1 ~now:(vt 1.) = Cb.Open);
  Cb.trip cb ~src:0 ~dst:1 ~now:(vt 2.);
  checkb "idempotent while open" true (Cb.state cb ~src:0 ~dst:1 ~now:(vt 2.) = Cb.Open)

let test_breaker_validation () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  raises "Circuit_breaker.create: failure_threshold must be positive" (fun () ->
      ignore (Cb.create ~failure_threshold:0 ()));
  raises "Circuit_breaker.create: cooldown must be positive" (fun () ->
      ignore (Cb.create ~cooldown:0. ()));
  raises "Circuit_breaker.create: half_open_probes must be positive" (fun () ->
      ignore (Cb.create ~half_open_probes:0 ()))

let test_breaker_in_engine () =
  (* Reliable delivery into a severed link with the breaker on: the
     first timeouts trip the pair open, after which retransmission
     attempts are refused on the sender side instead of hitting the
     wire. *)
  let eng = make () in
  E.enable_reliable eng ~config:{ E.default_reliable with E.jitter = 0.; max_retries = 8 };
  E.enable_breaker ~failure_threshold:2 ~cooldown:1000. eng;
  Net.Netem.cut_bidirectional (E.netem eng) 0 1;
  for i = 1 to 3 do
    E.inject eng ~src:(nid 0) ~dst:(nid 1) (Prio_app.Lo i)
  done;
  E.run_for eng 30.;
  let s = E.stats eng in
  checkb "retransmission attempts were refused" true (s.E.breaker_skips > 0);
  checkb "the pair is open" true
    (Cb.state (E.circuit_breaker eng) ~src:0 ~dst:1 ~now:(E.now eng) = Cb.Open)

(* ---------- determinism ---------- *)

let chaffed_run () =
  let eng = make ~seed:17 ~n:3 () in
  E.set_overload eng
    ~config:{ E.default_overload with E.mailbox_capacity = 6; shed = E.By_priority };
  for i = 1 to 20 do
    E.inject eng ~after:(0.05 *. float_of_int i) ~src:(nid 0) ~dst:(nid 2)
      (if i mod 2 = 0 then Prio_app.Hi i else Prio_app.Lo i)
  done;
  E.overload eng ~rate:400. (nid 2);
  E.run_for eng 2.;
  E.heal_overload eng (nid 2);
  E.run_for eng 3.;
  let s = E.stats eng in
  (lo_of eng 2, hi_of eng 2, s.E.sheds_mailbox, s.E.chaff_sent, s.E.max_mailbox_depth)

let test_deterministic_replay () =
  checkb "same seed, same shed trajectory" true (chaffed_run () = chaffed_run ())

(* The acceptance bar for the whole layer: installing it with every knob
   off changes nothing — same app trajectory, same message counters — so
   seeded runs predating the layer stay byte-identical. *)
let plain_run ~overload () =
  let eng = make ~seed:23 ~n:3 () in
  if overload then E.set_overload eng ~config:E.default_overload;
  Net.Netem.set_faults (E.netem eng)
    {
      (Net.Netem.global_faults (E.netem eng)) with
      Net.Netem.duplicate_rate = 0.2;
      duplicate_copies = 1;
    };
  for i = 1 to 15 do
    E.inject eng ~after:(0.03 *. float_of_int i) ~src:(nid 0)
      ~dst:(nid (1 + (i mod 2)))
      (if i mod 3 = 0 then Prio_app.Hi i else Prio_app.Lo i)
  done;
  E.run_for eng 10.;
  let s = E.stats eng in
  ( lo_of eng 1,
    hi_of eng 1,
    lo_of eng 2,
    hi_of eng 2,
    s.E.messages_delivered,
    s.E.messages_duplicated,
    s.E.events_processed )

let test_knobs_off_byte_identical () =
  checkb "default overload config changes no behaviour" true
    (plain_run ~overload:false () = plain_run ~overload:true ())

let () =
  Alcotest.run "overload"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "limits reported" `Quick test_limits_reported;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "drop newest" `Quick test_drop_newest;
          Alcotest.test_case "drop oldest" `Quick test_drop_oldest;
          Alcotest.test_case "by priority" `Quick test_by_priority;
          Alcotest.test_case "link capacity" `Quick test_link_capacity;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "visible to engine and handlers" `Quick test_pressure_visible;
          Alcotest.test_case "zero when unbounded" `Quick test_pressure_zero_when_unbounded;
        ] );
      ( "admission",
        [
          Alcotest.test_case "token bucket" `Quick test_token_bucket;
          Alcotest.test_case "sojourn gate" `Quick test_sojourn_gate;
        ] );
      ( "bursts",
        [
          Alcotest.test_case "bounded chaff burst" `Quick test_overload_burst_bounded;
          Alcotest.test_case "heal is idempotent" `Quick test_heal_idempotent;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "trip" `Quick test_breaker_trip;
          Alcotest.test_case "validation" `Quick test_breaker_validation;
          Alcotest.test_case "engine integration" `Quick test_breaker_in_engine;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "bit-identical replay" `Quick test_deterministic_replay;
          Alcotest.test_case "knobs off, byte-identical" `Quick test_knobs_off_byte_identical;
        ] );
    ]
