(* The persistent domain pool (Core.Pool) and its contract with the
   explorer: fan-out covers exactly the requested work, exceptions
   propagate deterministically without wedging the pool, teardown is
   idempotent — and, the property everything else leans on, explorer
   results are byte-identical for every pool size, including the
   representative violation paths, with only [outcomes_cached] (a
   partition statistic) allowed to move. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_strings = Alcotest.(check (list string))
let nid = Proto.Node_id.of_int

(* ---------- pool mechanics ---------- *)

let test_run_covers () =
  List.iter
    (fun domains ->
      let pool = Core.Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Core.Pool.shutdown pool)
        (fun () ->
          checki "size" domains (Core.Pool.size pool);
          let hit = Array.make domains 0 in
          Core.Pool.run pool (fun k -> hit.(k) <- hit.(k) + 1);
          Array.iteri
            (fun k n -> checki (Printf.sprintf "worker %d ran once (pool %d)" k domains) 1 n)
            hit))
    [ 1; 2; 4 ]

let test_run_chunks_covers () =
  List.iter
    (fun domains ->
      let pool = Core.Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Core.Pool.shutdown pool)
        (fun () ->
          List.iter
            (fun n ->
              let seen = Array.make (max n 1) 0 in
              Core.Pool.run_chunks pool ~n (fun ~worker:_ ~lo ~hi ->
                  for i = lo to hi - 1 do
                    seen.(i) <- seen.(i) + 1
                  done);
              for i = 0 to n - 1 do
                checki (Printf.sprintf "index %d covered once (n=%d pool %d)" i n domains) 1
                  seen.(i)
              done)
            [ 0; 1; 7; 128; 1000 ]))
    [ 1; 2; 4 ]

let test_run_chunks_deterministic () =
  (* The chunk -> worker assignment is a pure function of (n, chunk,
     size): two identical calls must partition identically. This is
     what keeps per-worker cache shards — and so [outcomes_cached] —
     reproducible for a fixed pool size. *)
  let pool = Core.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      let owner n =
        let o = Array.make n (-1) in
        Core.Pool.run_chunks pool ~n (fun ~worker ~lo ~hi ->
            for i = lo to hi - 1 do
              o.(i) <- worker
            done);
        o
      in
      let a = owner 1000 and b = owner 1000 in
      checkb "same partitioning both calls" true (a = b))

let test_exception_propagates () =
  let pool = Core.Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      (* Two workers fail: the lowest failing id wins, deterministically. *)
      let raised =
        try
          Core.Pool.run pool (fun k -> if k >= 1 then failwith (Printf.sprintf "boom%d" k));
          "no-exception"
        with Failure m -> m
      in
      checkb "lowest failing worker wins" true (raised = "boom1");
      (* The owner's own failure outranks any worker's. *)
      let raised =
        try
          Core.Pool.run pool (fun k -> failwith (Printf.sprintf "boom%d" k));
          "no-exception"
        with Failure m -> m
      in
      checkb "owner failure outranks" true (raised = "boom0");
      (* The pool survives: the failed jobs' workers went back to
         waiting, and a normal job still fans out to all of them. *)
      let hit = Array.make 3 0 in
      Core.Pool.run pool (fun k -> hit.(k) <- 1);
      checki "all workers alive after failures" 3 (Array.fold_left ( + ) 0 hit))

let test_shutdown_idempotent () =
  let pool = Core.Pool.create ~domains:3 in
  Core.Pool.shutdown pool;
  Core.Pool.shutdown pool;
  (* A shut-down pool refuses work rather than hanging on dead domains. *)
  checkb "run after shutdown raises" true
    (try
       Core.Pool.run pool (fun _ -> ());
       false
     with Invalid_argument _ -> true);
  (* Churn: repeated create/shutdown leaks no wedged domain (a leak
     would deadlock [Domain.join] in some later iteration). *)
  for _ = 1 to 20 do
    let p = Core.Pool.create ~domains:2 in
    Core.Pool.run p (fun _ -> ());
    Core.Pool.shutdown p
  done

(* ---------- explorer invariance across pool sizes ---------- *)

module P = Apps.Paxos

module Paxos_params = struct
  let population = 3
  let client_period = 0. (* the test injects commands itself *)
  let retry_timeout = 1.0
end

module PApp = P.Make (Paxos_params)
module PE = Engine.Sim.Make (PApp)
module Ex = Mc.Explorer.Make (PApp)

let paxos_world ~seed =
  let topology =
    Net.Topology.uniform ~n:3 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = PE.create ~seed ~jitter:0. ~topology () in
  PE.set_resolver eng P.self_resolver;
  for i = 0 to 2 do
    PE.spawn eng (nid i)
  done;
  PE.run_for eng 0.05;
  PE.inject eng ~src:(nid 1) ~dst:(nid 0) (P.Submit { cmd = { P.origin = 1; seq = 0; born = 0. } });
  PE.inject eng ~src:(nid 2) ~dst:(nid 1) (P.Submit { cmd = { P.origin = 2; seq = 1; born = 0. } });
  PE.run_for eng 0.015;
  Ex.world_of_view (PE.global_view eng)

(* Everything except outcomes_cached, including representative paths. *)
let full_sig (r : Ex.result) =
  List.map
    (fun (v : Ex.violation) ->
      Format.asprintf "%s@%d:%a" v.property v.at_depth
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Ex.pp_step)
        v.path)
    r.violations

let check_result_equal name (a : Ex.result) (b : Ex.result) =
  check_strings (name ^ ": violations") (full_sig a) (full_sig b);
  checki (name ^ ": worlds_explored") a.Ex.worlds_explored b.Ex.worlds_explored;
  checki (name ^ ": worlds_deduped") a.Ex.worlds_deduped b.Ex.worlds_deduped;
  checki (name ^ ": collisions") a.Ex.fingerprint_collisions b.Ex.fingerprint_collisions;
  checkb (name ^ ": truncated") a.Ex.truncated b.Ex.truncated;
  check_strings (name ^ ": liveness_unmet") a.Ex.liveness_unmet b.Ex.liveness_unmet

(* Depth 4 with drops pushes the deepest frontiers past the explorer's
   sequential threshold, so pools of size > 1 really fan out. *)
let explore_cfg ~pool w = Ex.explore ~include_drops:true ?pool ~max_worlds:100_000 ~depth:4 w

let test_pool_sizes_identical () =
  let w = paxos_world ~seed:3 in
  let base = explore_cfg ~pool:None w in
  checkb "scenario explores enough to fan out" true (base.Ex.worlds_explored > 200);
  List.iter
    (fun domains ->
      let pool = Core.Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Core.Pool.shutdown pool)
        (fun () ->
          let r = explore_cfg ~pool:(Some pool) w in
          check_result_equal (Printf.sprintf "pool %d vs sequential" domains) base r))
    [ 1; 2; 4; 8 ]

let test_pool_warm_cache_rounds () =
  (* The steering shape: one pool and one cache, reused across rounds.
     Results must not drift between rounds, and the second round must
     actually hit the cache — including outcomes memoized by workers
     other than the owner, which persist in their shards. *)
  let w = paxos_world ~seed:3 in
  let pool = Core.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      let cache = Ex.create_cache () in
      let r1 = Ex.explore ~include_drops:true ~pool ~cache ~max_worlds:100_000 ~depth:4 w in
      let r2 = Ex.explore ~include_drops:true ~pool ~cache ~max_worlds:100_000 ~depth:4 w in
      check_result_equal "round 2 vs round 1" r1 r2;
      checkb "round 2 hits the warm cache" true (r2.Ex.outcomes_cached > 0);
      (* And a sequential explore agrees with both. *)
      let seq = Ex.explore ~include_drops:true ~max_worlds:100_000 ~depth:4 w in
      check_result_equal "pooled vs sequential" seq r1)

let test_pool_survives_raising_explore () =
  (* An explore that dies (here: an invalid argument) must not wedge
     the pool it was handed. *)
  let pool = Core.Pool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      let w = paxos_world ~seed:3 in
      checkb "bad explore raises" true
        (try
           ignore (Ex.explore ~pool ~depth:(-1) w);
           false
         with Invalid_argument _ -> true);
      let r = explore_cfg ~pool:(Some pool) w in
      let base = explore_cfg ~pool:None w in
      check_result_equal "pool usable after raising explore" base r)

let () =
  Alcotest.run "pool"
    [
      ( "mechanics",
        [
          Alcotest.test_case "run covers all workers" `Quick test_run_covers;
          Alcotest.test_case "run_chunks covers indices" `Quick test_run_chunks_covers;
          Alcotest.test_case "run_chunks deterministic" `Quick test_run_chunks_deterministic;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "pool sizes byte-identical" `Quick test_pool_sizes_identical;
          Alcotest.test_case "warm cache across rounds" `Quick test_pool_warm_cache_rounds;
          Alcotest.test_case "survives raising explore" `Quick test_pool_survives_raising_explore;
        ] );
    ]
