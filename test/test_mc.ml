(* Tests for consequence prediction and execution steering, using a toy
   mutual-exclusion protocol whose violations are easy to stage. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module Lock = Test_support.Lock_app

module Ex = Mc.Explorer.Make (Lock)
module St = Mc.Steering.Make (Lock)

let world ?(timers = []) states pending : Ex.world =
  {
    states =
      List.fold_left
        (fun m (i, holding) -> Proto.Node_id.Map.add (nid i) { Lock.self = nid i; holding } m)
        Proto.Node_id.Map.empty states;
    pending = List.map (fun (a, b, m) -> (nid a, nid b, m)) pending;
    timers = List.map (fun (i, id) -> (nid i, id)) timers;
    clocks = [];
  }

let explore ?include_drops ?generic_node ?depth:(d = 3) w =
  Ex.explore ?include_drops ?generic_node ~depth:d w

let violations_named name result =
  List.filter (fun (v : Ex.violation) -> String.equal v.property name) result.Ex.violations

(* ---------- Explorer ---------- *)

let test_no_violation_in_safe_world () =
  let r = explore (world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant) ]) in
  checki "no violations" 0 (List.length r.Ex.violations);
  checkb "explored >1 world" true (r.Ex.worlds_explored > 1);
  checkb "not truncated" false r.Ex.truncated

let test_finds_double_grant () =
  let r =
    explore (world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Grant) ])
  in
  checkb "mutex violated in some future" true (List.length (violations_named "mutex" r) > 0);
  let v = List.hd (violations_named "mutex" r) in
  checki "needs two deliveries" 2 v.Ex.at_depth;
  checki "path length" 2 (List.length v.Ex.path)

let test_depth_bound_respected () =
  let w = world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Grant) ] in
  let shallow = explore ~depth:1 w in
  checki "unreachable at depth 1" 0 (List.length (violations_named "mutex" shallow))

let test_choice_branching () =
  (* Violation only if the flip chooses to take the lock — explorer
     must branch into the non-default alternative. *)
  let r = explore (world [ (0, true); (1, false) ] [ (0, 1, Lock.Flip) ]) in
  checkb "found via choice branch" true (List.length (violations_named "mutex" r) > 0)

let test_timer_branching () =
  let r = explore (world ~timers:[ (1, "grab") ] [ (0, true); (1, false) ] []) in
  checkb "timer fire explored" true (List.length (violations_named "mutex" r) > 0);
  let v = List.hd (violations_named "mutex" r) in
  checkb "path is a timer step" true
    (match v.Ex.path with [ Ex.Timer_step _ ] -> true | _ -> false)

let test_generic_node () =
  let w = world [ (0, true); (1, false) ] [] in
  let without = explore w in
  checki "closed world safe" 0 (List.length (violations_named "mutex" without));
  let with_generic = explore ~generic_node:true w in
  checkb "generic node finds it" true (List.length (violations_named "mutex" with_generic) > 0)

let test_drop_branches () =
  (* With drops enabled the violating delivery can be avoided — both
     futures are explored. *)
  let w = world [ (0, true); (1, false) ] [ (0, 1, Lock.Grant) ] in
  let r = explore ~include_drops:true w in
  checkb "violation still found" true (List.length (violations_named "mutex" r) > 0);
  checkb "drop step explored" true
    (List.exists
       (fun (s : Ex.step) -> match s with Ex.Drop_step _ -> true | _ -> false)
       (List.concat_map (fun (v : Ex.violation) -> v.Ex.path) r.Ex.violations)
     || r.Ex.worlds_explored > 2)

let test_dedup () =
  (* Two identical grants to the same node: delivering either first
     reaches the same world. *)
  let r = explore (world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (0, 1, Lock.Grant) ]) in
  checkb "dedup hit" true (r.Ex.worlds_deduped > 0)

let test_liveness_report () =
  let holds = explore (world [ (0, false) ] [ (1, 0, Lock.Grant) ]) in
  checkb "liveness satisfiable" true (holds.Ex.liveness_unmet = []);
  let never = explore (world [ (0, false) ] []) in
  checkb "liveness unmet reported" true (List.mem "someone-holds" never.Ex.liveness_unmet)

let test_budget_truncation () =
  let pending = List.init 6 (fun i -> (i mod 2, 1 - (i mod 2), Lock.Flip)) in
  let r = Ex.explore ~max_worlds:10 ~depth:6 (world [ (0, false); (1, false) ] pending) in
  checkb "truncated" true r.Ex.truncated;
  checki "budget respected" 10 r.Ex.worlds_explored

let test_first_steps () =
  let r =
    explore (world [ (0, true); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Release) ])
  in
  let steps = Ex.first_steps_to_violation r in
  checkb "offending first step is the grant" true
    (List.exists
       (fun (s : Ex.step) ->
         match s with
         | Ex.Deliver_step { kind; _ } -> String.equal kind "grant"
         | _ -> false)
       steps)

let test_iterative_deepening () =
  (* The double grant needs depth 2; iterative deepening should stop
     exactly there with a minimal 2-step path. *)
  let w = world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Grant) ] in
  let depth, r = Ex.iterative ~max_depth:5 w in
  checki "stops at the minimal depth" 2 depth;
  checkb "violations found" true (violations_named "mutex" r <> []);
  List.iter
    (fun (v : Ex.violation) -> checki "paths are minimal" 2 (List.length v.Ex.path))
    (violations_named "mutex" r);
  (* A safe world runs to max_depth and reports clean. *)
  let safe = world [ (0, false); (1, false) ] [ (0, 1, Lock.Release) ] in
  let depth, r = Ex.iterative ~max_depth:3 safe in
  checki "exhausts the bound" 3 depth;
  checki "clean" 0 (List.length r.Ex.violations)

let test_world_of_view () =
  let view : (Lock.state, Lock.msg) Proto.View.t =
    {
      time = Dsim.Vtime.zero;
      nodes = [ (nid 0, { Lock.self = nid 0; holding = true }) ];
      inflight = [ (nid 1, nid 0, Lock.Grant) ];
    }
  in
  let w = Ex.world_of_view ~timers:[ (nid 0, "grab") ] view in
  checki "states" 1 (Proto.Node_id.Map.cardinal w.Ex.states);
  checki "pending" 1 (List.length w.Ex.pending);
  checki "timers" 1 (List.length w.Ex.timers)

(* ---------- Steering ---------- *)

let test_steering_no_violation () =
  let v = St.decide ~depth:3 (world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant) ]) in
  checkb "nothing to steer" true (v = St.No_violation)

let test_steering_vetoes_offender () =
  let w = world [ (0, true); (1, false) ] [ (0, 1, Lock.Grant) ] in
  match St.decide ~depth:3 w with
  | St.Steer [ veto ] ->
      Alcotest.check Alcotest.string "kind" "grant" veto.St.kind;
      checki "src" 0 (Proto.Node_id.to_int veto.St.src);
      checki "dst" 1 (Proto.Node_id.to_int veto.St.dst)
  | St.Steer _ -> Alcotest.fail "expected exactly one veto"
  | St.No_violation -> Alcotest.fail "violation missed"
  | St.Cannot_steer _ -> Alcotest.fail "steering should be safe"

let test_steering_double_grant_vetoes_one () =
  let w = world [ (0, false); (1, false) ] [ (0, 1, Lock.Grant); (1, 0, Lock.Grant) ] in
  match St.decide ~depth:3 w with
  | St.Steer vetoes -> checkb "at least one veto" true (List.length vetoes >= 1)
  | St.No_violation | St.Cannot_steer _ -> Alcotest.fail "expected Steer"

let test_steering_reports_unsteerable () =
  (* The violation comes from a timer, not a filterable delivery. *)
  let w = world ~timers:[ (1, "grab") ] [ (0, true); (1, false) ] [] in
  match St.decide ~depth:2 w with
  | St.Cannot_steer props -> checkb "mutex doomed" true (List.mem "mutex" props)
  | St.No_violation -> Alcotest.fail "violation missed"
  | St.Steer _ -> Alcotest.fail "no delivery can be vetoed here"

let () =
  Alcotest.run "mc"
    [
      ( "explorer",
        [
          Alcotest.test_case "safe world" `Quick test_no_violation_in_safe_world;
          Alcotest.test_case "double grant" `Quick test_finds_double_grant;
          Alcotest.test_case "depth bound" `Quick test_depth_bound_respected;
          Alcotest.test_case "choice branching" `Quick test_choice_branching;
          Alcotest.test_case "timer branching" `Quick test_timer_branching;
          Alcotest.test_case "generic node" `Quick test_generic_node;
          Alcotest.test_case "drop branches" `Quick test_drop_branches;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "liveness" `Quick test_liveness_report;
          Alcotest.test_case "budget truncation" `Quick test_budget_truncation;
          Alcotest.test_case "first steps" `Quick test_first_steps;
          Alcotest.test_case "iterative deepening" `Quick test_iterative_deepening;
          Alcotest.test_case "world_of_view" `Quick test_world_of_view;
        ] );
      ( "steering",
        [
          Alcotest.test_case "no violation" `Quick test_steering_no_violation;
          Alcotest.test_case "vetoes offender" `Quick test_steering_vetoes_offender;
          Alcotest.test_case "double grant" `Quick test_steering_double_grant_vetoes_one;
          Alcotest.test_case "unsteerable" `Quick test_steering_reports_unsteerable;
        ] );
    ]
