(* Byzantine mutation: the decodes-clean contract of Wire.Mutator
   against every application wire codec, seeded chaos storms with
   mutation switched on (invariants must hold, validators must bounce
   something), and the byte-identity of seeded plans when the knob is
   off. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module C = Wire.Codec
module M = Wire.Mutator
module Ch = Engine.Chaos
module F = Engine.Faultplan
module X = Experiments.Chaos_exp

let nid = Proto.Node_id.of_int

(* ---------- honest corpora, one per application codec ---------- *)

module P = Apps.Paxos
module K = Apps.Kvstore
module G = Apps.Gossip
module D = Apps.Dht

let cmd = { P.origin = 1; seq = 3; born = 0.5 }

let paxos_corpus =
  [
    P.Submit { cmd };
    P.Prepare { inst = 2; bal = 7 };
    P.Promise { inst = 2; bal = 7; accepted = None };
    P.Promise { inst = 2; bal = 7; accepted = Some (4, cmd) };
    P.Accept_req { inst = 2; bal = 7; cmd };
    P.Accepted { inst = 2; bal = 7; cmd };
    P.Decided { inst = 2; cmd };
  ]

let kvstore_corpus =
  [
    K.Write { key = 3; origin = nid 1 };
    K.Write_done { seq = 9; born = 1.25 };
    K.Apply { seq = 9; key = 3; value = 9 };
    K.Read_req { rid = 4; key = 3; origin = nid 2; born = 2. };
    K.Read_reply { rid = 4; key = 3; value = 9; applied_seq = 9; born = 2. };
    K.Sync_req { have = 5 };
    K.Read_reject { rid = 4; retryable = true };
  ]

let gossip_corpus =
  [ G.Push { rumors = [ 1; 2; 5 ]; round = 3 }; G.Push_back { rumors = [] } ]

let dht_corpus =
  [
    D.Lookup { key = 10; origin = nid 1; born = 0.25; hops = 2 };
    D.Found { key = 10; owner = nid 4; born = 0.25; hops = 5 };
  ]

(* ---------- the mutator contract ---------- *)

(* Every emitted mutant must decode (through the same codec) to exactly
   the value the mutator claims, and its wire form must fit the size
   budget of the original encoding. Across a corpus and many draws, at
   least one mutant must be produced and at least one must genuinely
   differ from its original — otherwise the fault is a no-op. *)
let mutator_contract name codec corpus () =
  let rng = Dsim.Rng.create 99 in
  let emitted = ref 0 and changed = ref 0 in
  List.iter
    (fun m ->
      let bytes = C.encode codec m in
      for _ = 1 to 100 do
        match M.mutate ~rng ~node_ids:[ 0; 1; 2 ] codec bytes with
        | None -> ()
        | Some (v, wire) ->
            incr emitted;
            if v <> m then incr changed;
            checkb (name ^ ": size budget") true (String.length wire <= M.size_budget bytes);
            (match C.decode codec wire with
            | Ok v' -> checkb (name ^ ": decodes to claimed value") true (v = v')
            | Error e -> Alcotest.fail (name ^ ": mutant failed decode: " ^ e))
      done)
    corpus;
  checkb (name ^ ": mutants were produced") true (!emitted > 0);
  checkb (name ^ ": some mutant differs from its original") true (!changed > 0)

(* Same draws, same mutants: the mutator consumes only the given RNG. *)
let test_mutator_deterministic () =
  let stream seed =
    let rng = Dsim.Rng.create seed in
    List.concat_map
      (fun m ->
        let bytes = C.encode P.msg_codec m in
        List.filter_map
          (fun _ -> Option.map snd (M.mutate ~rng ~node_ids:[ 0; 1; 2 ] P.msg_codec bytes))
          (List.init 20 Fun.id))
      paxos_corpus
  in
  checkb "same seed, same mutants" true (stream 7 = stream 7);
  checkb "different seed, different mutants" true (stream 7 <> stream 8)

(* ---------- decoding totality on junk (per application codec) ---------- *)

let prop_decode_totals name codec =
  QCheck.Test.make ~name:(name ^ " decode totals on junk") ~count:300 QCheck.string
    (fun junk -> match C.decode codec junk with Ok _ | Error _ -> true)

let qcheck = List.map QCheck_alcotest.to_alcotest

(* ---------- seeded storms with mutation on ---------- *)

(* Seed 42 is the pinned operating point: mutants flow, validators
   bounce a few, and every safety property still holds. A different
   seed can lose the agreement coin-toss (a forged Decided reaching a
   node with no acceptor state is indistinguishable from an honest
   late decision), which is exactly why the storm is seeded. *)
let byz_soak app =
  Alcotest.test_case (app ^ " byzantine storm") `Slow (fun () ->
      let r = X.run ~seed:42 ~byz:(-1) app in
      checki (app ^ ": no safety violation") 0 r.X.violations;
      checkb (app ^ ": recovered") true r.X.recovered;
      checkb (app ^ ": mutants delivered") true (r.X.byz_emitted > 0);
      checkb (app ^ ": validator bounced some") true (r.X.byz_rejected > 0);
      checkb (app ^ ": accounting consistent") true
        (r.X.byz_rejected + r.X.byz_accepted <= r.X.byz_emitted))

let test_byz_soak_replays () =
  let a = X.run ~seed:42 ~byz:(-1) "kvstore" and b = X.run ~seed:42 ~byz:(-1) "kvstore" in
  checki "same mutants emitted" a.X.byz_emitted b.X.byz_emitted;
  checki "same mutants rejected" a.X.byz_rejected b.X.byz_rejected;
  checki "same mutants accepted" a.X.byz_accepted b.X.byz_accepted;
  checki "same deliveries" a.X.delivered b.X.delivered

let test_byz_off_reports_zero () =
  let r = X.run ~seed:42 "paxos" in
  checki "no mutants when off" 0 r.X.byz_emitted;
  checki "no rejections when off" 0 r.X.byz_rejected;
  checki "no acceptances when off" 0 r.X.byz_accepted

(* ---------- plan generation: knob off = byte-identical stream ---------- *)

let is_mutate = function F.Set_mutate _ | F.Heal_mutate _ -> true | _ -> false

(* The byzantine knobs draw from the plan RNG only when on, and draw
   after every other fault: switching them on adds mutate windows
   without perturbing any other fault's schedule, and a profile with
   [byz_rate = 0.] generates a plan byte-identical to one built before
   the knob existed. *)
let test_byz_knobs_preserve_rng_stream () =
  let base = Ch.default_profile in
  let per_link = { base with Ch.byz_links = 2; byz_rate = 0.25 } in
  let global = { base with Ch.byz_links = 0; byz_rate = 0.05 } in
  let p0 = F.events (Ch.generate ~seed:5 ~nodes:5 base) in
  checkb "no mutate events while off" true (not (List.exists (fun (_, e) -> is_mutate e) p0));
  List.iter
    (fun p ->
      let p1 = F.events (Ch.generate ~seed:5 ~nodes:5 p) in
      let rest = List.filter (fun (_, e) -> not (is_mutate e)) p1 in
      checkb "other faults byte-identical" true (p0 = rest);
      checkb "mutate windows added" true (List.exists (fun (_, e) -> is_mutate e) p1))
    [ per_link; global ]

let test_byz_global_channel_window () =
  let p = { Ch.default_profile with Ch.byz_links = 0; byz_rate = 0.05 } in
  let evs = F.events (Ch.generate ~seed:9 ~nodes:6 p) in
  let muts = List.filter (fun (_, e) -> is_mutate e) evs in
  match muts with
  | [ (t0, F.Set_mutate { rate; links = [] }); (t1, F.Heal_mutate { links = [] }) ] ->
      Alcotest.check (Alcotest.float 0.) "opens at t=0" 0. t0;
      Alcotest.check (Alcotest.float 0.) "rate as configured" 0.05 rate;
      Alcotest.check (Alcotest.float 0.) "heals at storm end" p.Ch.storm t1
  | _ -> Alcotest.fail "expected exactly one global mutate window"

let test_byz_per_link_windows () =
  let p = { Ch.default_profile with Ch.byz_links = 3; byz_rate = 0.25 } in
  let evs = List.map snd (F.events (Ch.generate ~seed:9 ~nodes:6 p)) in
  let sets =
    List.filter_map (function F.Set_mutate { links; _ } -> Some links | _ -> None) evs
  in
  let heals = List.filter_map (function F.Heal_mutate { links } -> Some links | _ -> None) evs in
  checkb "at most the requested links" true (List.length sets <= 3);
  checkb "at least one window survived collision-skipping" true (List.length sets >= 1);
  checki "every window healed" (List.length sets) (List.length heals);
  List.iter
    (function
      | [ (src, dst) ] ->
          checkb "directed link between distinct live nodes" true
            (src <> dst && src >= 0 && src < 6 && dst >= 0 && dst < 6)
      | links -> Alcotest.fail (Printf.sprintf "expected one link, got %d" (List.length links)))
    sets

let test_chaos_validates_byz_knobs () =
  Alcotest.check_raises "negative link count"
    (Invalid_argument "Chaos.generate: negative byzantine link count") (fun () ->
      ignore (Ch.generate ~seed:1 ~nodes:4 { Ch.default_profile with Ch.byz_links = -1 }));
  Alcotest.check_raises "rate above 1"
    (Invalid_argument "Chaos.generate: byzantine mutate rate outside [0,1]") (fun () ->
      ignore (Ch.generate ~seed:1 ~nodes:4 { Ch.default_profile with Ch.byz_rate = 1.5 }))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let test_pp_profile_shows_byz () =
  let p = { Ch.default_profile with Ch.byz_links = 2; byz_rate = 0.25 } in
  checkb "byz knob printed" true (contains (Format.asprintf "%a" Ch.pp_profile p) "byz=2@0.25")

(* ---------- fault plan validation for mutate windows ---------- *)

let test_faultplan_mutate_validation () =
  ignore
    (F.plan
       [
         (0., F.Set_mutate { rate = 0.2; links = [] });
         (2., F.Heal_mutate { links = [] });
         (3., F.Set_mutate { rate = 0.3; links = [ (0, 1) ] });
         (4., F.Heal_mutate { links = [ (0, 1) ] });
       ]);
  Alcotest.check_raises "overlapping windows of one scope"
    (Invalid_argument "Faultplan.plan: overlapping mutate windows") (fun () ->
      ignore
        (F.plan
           [
             (0., F.Set_mutate { rate = 0.1; links = [] });
             (1., F.Set_mutate { rate = 0.2; links = [] });
           ]));
  Alcotest.check_raises "heal of a scope never set"
    (Invalid_argument "Faultplan.plan: heal of a mutate never set") (fun () ->
      ignore (F.plan [ (0., F.Heal_mutate { links = [ (0, 1) ] }) ]));
  Alcotest.check_raises "self link"
    (Invalid_argument "Faultplan.plan: mutate link to self") (fun () ->
      ignore (F.plan [ (0., F.Set_mutate { rate = 0.1; links = [ (2, 2) ] }) ]));
  Alcotest.check_raises "rate outside [0,1]"
    (Invalid_argument "Faultplan.plan: mutate rate 1.5 outside [0,1]") (fun () ->
      ignore (F.plan [ (0., F.Set_mutate { rate = 1.5; links = [] }) ]))

let () =
  Alcotest.run "byzantine"
    [
      ( "mutator contract",
        [
          Alcotest.test_case "paxos codec" `Quick
            (mutator_contract "paxos" P.msg_codec paxos_corpus);
          Alcotest.test_case "kvstore codec" `Quick
            (mutator_contract "kvstore" K.msg_codec kvstore_corpus);
          Alcotest.test_case "gossip codec" `Quick
            (mutator_contract "gossip" G.msg_codec gossip_corpus);
          Alcotest.test_case "dht codec" `Quick (mutator_contract "dht" D.msg_codec dht_corpus);
          Alcotest.test_case "deterministic under a seeded stream" `Quick
            test_mutator_deterministic;
        ] );
      ( "decode totality",
        qcheck
          [
            prop_decode_totals "paxos" P.msg_codec;
            prop_decode_totals "kvstore" K.msg_codec;
            prop_decode_totals "gossip" G.msg_codec;
            prop_decode_totals "dht" D.msg_codec;
          ] );
      ( "storms",
        [
          byz_soak "paxos";
          byz_soak "kvstore";
          Alcotest.test_case "replay is bit-identical" `Slow test_byz_soak_replays;
          Alcotest.test_case "knob off reports zero" `Slow test_byz_off_reports_zero;
        ] );
      ( "plans",
        [
          Alcotest.test_case "knobs preserve the RNG stream" `Quick
            test_byz_knobs_preserve_rng_stream;
          Alcotest.test_case "global channel window" `Quick test_byz_global_channel_window;
          Alcotest.test_case "per-link windows" `Quick test_byz_per_link_windows;
          Alcotest.test_case "profile validation" `Quick test_chaos_validates_byz_knobs;
          Alcotest.test_case "profile pp shows byz" `Quick test_pp_profile_shows_byz;
          Alcotest.test_case "mutate window validation" `Quick test_faultplan_mutate_validation;
        ] );
    ]
