(* Tests for the declarative fault-schedule DSL, executed against the
   lock toy app. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let nid = Proto.Node_id.of_int

module Lock = Test_support.Lock_app
module E = Engine.Sim.Make (Lock)
module F = Engine.Faultplan
module Run = F.Run (E)

let topology =
  Net.Topology.uniform ~n:4 (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

let make () =
  let eng = E.create ~seed:2 ~jitter:0. ~topology () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to 3 do
    E.spawn eng (nid i)
  done;
  E.run_for eng 0.1;
  eng

(* ---------- plan structure ---------- *)

let test_plan_sorting () =
  let p = F.plan [ (5., F.Kill 1); (1., F.Restart 2); (3., F.Kill 0) ] in
  Alcotest.check (Alcotest.list (Alcotest.float 0.)) "sorted times" [ 1.; 3.; 5. ]
    (List.map fst (F.events p));
  Alcotest.check (Alcotest.float 0.) "duration" 5. (F.duration p)

let test_plan_invalid () =
  Alcotest.check_raises "negative time" (Invalid_argument "Faultplan.plan: negative time")
    (fun () -> ignore (F.plan [ (-1., F.Kill 0) ]))

let test_plan_pp () =
  let p = F.plan [ (1., F.Partition ([ 0; 1 ], [ 2; 3 ])) ] in
  let s = Format.asprintf "%a" F.pp p in
  checkb "printable" true (String.length s > 10)

(* ---------- validation ---------- *)

let invalid name msg mk =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (F.plan (mk ()))))

let validation_cases =
  [
    invalid "overlapping partition" "Faultplan.plan: partition groups overlap" (fun () ->
        [ (0., F.Partition ([ 0; 1 ], [ 1; 2 ])) ]);
    invalid "zero latency factor" "Faultplan.plan: non-positive degrade factor" (fun () ->
        [ (0., F.Degrade { endpoint = 1; latency_factor = 0.; bandwidth_factor = 0.5 }) ]);
    invalid "negative bandwidth factor" "Faultplan.plan: non-positive degrade factor" (fun () ->
        [ (0., F.Degrade { endpoint = 1; latency_factor = 2.; bandwidth_factor = -1. }) ]);
    invalid "duplicate rate above 1" "Faultplan.plan: duplicate rate 2 outside [0,1]" (fun () ->
        [ (0., F.Set_duplicate { rate = 2.; copies = 1 }) ]);
    invalid "duplicate without copies" "Faultplan.plan: duplicate copies < 1" (fun () ->
        [ (0., F.Set_duplicate { rate = 0.5; copies = 0 }) ]);
    invalid "negative corrupt flip" "Faultplan.plan: corrupt flip rate -0.1 outside [0,1]"
      (fun () -> [ (0., F.Set_corrupt { rate = 0.5; flip = -0.1 }) ]);
    invalid "negative reorder window" "Faultplan.plan: negative reorder window" (fun () ->
        [ (0., F.Set_reorder { rate = 0.5; window = -1. }) ]);
    invalid "empty crash storm" "Faultplan.plan: empty crash storm" (fun () ->
        [ (0., F.Crash_storm { victims = 0; period = 1.; rounds = 2; mode = F.Clean }) ]);
    invalid "zero-period crash storm" "Faultplan.plan: non-positive storm period" (fun () ->
        [ (0., F.Crash_storm { victims = 1; period = 0.; rounds = 2; mode = F.Clean }) ]);
    invalid "overlapping flap groups" "Faultplan.plan: flap groups overlap" (fun () ->
        [ (0., F.Flap { a = [ 0; 1 ]; b = [ 1; 2 ]; period = 1.; cycles = 1 }) ]);
    invalid "zero-period flap" "Faultplan.plan: non-positive flap period" (fun () ->
        [ (0., F.Flap { a = [ 0 ]; b = [ 1 ]; period = 0.; cycles = 1 }) ]);
    invalid "zero-cycle flap" "Faultplan.plan: empty flap" (fun () ->
        [ (0., F.Flap { a = [ 0 ]; b = [ 1 ]; period = 1.; cycles = 0 }) ]);
    invalid "gray link to self" "Faultplan.plan: gray link to self" (fun () ->
        [ (0., F.Gray_link { src = 1; dst = 1; loss = 0.5 }) ]);
    invalid "gray loss above 1" "Faultplan.plan: gray loss 1.5 outside [0,1]" (fun () ->
        [ (0., F.Gray_link { src = 0; dst = 1; loss = 1.5 }) ]);
    invalid "bare heal" "Faultplan.plan: heal of a partition never opened" (fun () ->
        [ (1., F.Heal_partition ([ 0; 1 ], [ 2; 3 ])) ]);
    invalid "heal after heal" "Faultplan.plan: heal of a partition never opened" (fun () ->
        [
          (0., F.Partition ([ 0 ], [ 1 ]));
          (1., F.Heal_partition ([ 0 ], [ 1 ]));
          (2., F.Heal_partition ([ 0 ], [ 1 ]));
        ]);
    invalid "overlapping partition windows" "Faultplan.plan: overlapping partition windows"
      (fun () ->
        [
          (0., F.Partition ([ 0; 1 ], [ 2; 3 ]));
          (1., F.Partition ([ 1; 0 ], [ 3; 2 ]));
          (2., F.Heal_partition ([ 0; 1 ], [ 2; 3 ]));
        ]);
    invalid "flap inside open partition" "Faultplan.plan: overlapping partition windows"
      (fun () ->
        [
          (0., F.Partition ([ 0 ], [ 1 ]));
          (1., F.Flap { a = [ 0 ]; b = [ 1 ]; period = 1.; cycles = 1 });
          (5., F.Heal_partition ([ 0 ], [ 1 ]));
        ]);
    invalid "zero overload rate" "Faultplan.plan: overload rate must be positive and finite"
      (fun () -> [ (0., F.Overload { node = 1; rate = 0. }) ]);
    invalid "infinite overload rate" "Faultplan.plan: overload rate must be positive and finite"
      (fun () -> [ (0., F.Overload { node = 1; rate = Float.infinity }) ]);
    invalid "overlapping overload windows" "Faultplan.plan: overlapping overload windows"
      (fun () ->
        [
          (0., F.Overload { node = 1; rate = 100. });
          (1., F.Overload { node = 1; rate = 200. });
          (2., F.Heal_overload { node = 1 });
        ]);
    invalid "bare heal_overload" "Faultplan.plan: heal of an overload never started" (fun () ->
        [ (1., F.Heal_overload { node = 1 }) ]);
  ]

let test_overload_plan_accepted () =
  (* Sequential windows on one node, concurrent windows on distinct
     nodes: both legal; pp names every event. *)
  let p =
    F.plan
      [
        (0., F.Overload { node = 1; rate = 500. });
        (1., F.Heal_overload { node = 1 });
        (2., F.Overload { node = 1; rate = 800. });
        (2., F.Overload { node = 2; rate = 300. });
        (4., F.Heal_overload { node = 1 });
        (4., F.Heal_overload { node = 2 });
      ]
  in
  checki "all six events kept" 6 (List.length (F.events p));
  let s = Format.asprintf "%a" F.pp p in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  checkb "pp shows the burst" true (contains s "overload(1, 500/s)");
  checkb "pp shows the heal" true (contains s "heal_overload(2)")

let test_overload_runs_against_engine () =
  let eng = make () in
  let p =
    F.plan [ (0.5, F.Overload { node = 2; rate = 400. }); (2., F.Heal_overload { node = 2 }) ]
  in
  Run.execute eng p;
  E.run_for eng 4.;
  let s = E.stats eng in
  checkb "chaff flowed through the engine" true (s.E.chaff_sent > 0);
  checkb "burst stopped at the heal" true (s.E.chaff_sent < 1000)

let test_heal_matches_up_to_ordering () =
  (* Group pairs are normalized: scrambled element order and swapped
     sides still close the window they opened. *)
  let p =
    F.plan
      [
        (0., F.Partition ([ 0; 1 ], [ 2; 3 ]));
        (1., F.Heal_partition ([ 3; 2 ], [ 1; 0 ]));
        (2., F.Partition ([ 0; 1 ], [ 2; 3 ]));
        (3., F.Heal_partition ([ 0; 1 ], [ 2; 3 ]));
      ]
  in
  checki "sequential windows accepted" 4 (List.length (F.events p))

let test_valid_plan_accepted () =
  let p =
    F.plan
      [
        (0., F.Set_duplicate { rate = 0.1; copies = 2 });
        (0., F.Set_corrupt { rate = 0.; flip = 0. });
        (1., F.Crash_storm { victims = 1; period = 0.5; rounds = 2; mode = F.Clean });
      ]
  in
  checki "kept all events" 3 (List.length (F.events p))

(* ---------- execution ---------- *)

let test_kill_restart_schedule () =
  let eng = make () in
  Run.execute ~and_then:0.5 eng
    (F.plan [ (0.5, F.Kill 2); (1.5, F.Restart 2) ]);
  checkb "node back" true (E.alive eng (nid 2));
  (* Timeline respected: total elapsed = 0.1 (setup) + 1.5 + 0.5. *)
  Alcotest.check (Alcotest.float 1e-6) "clock" 2.1 (Dsim.Vtime.to_seconds (E.now eng))

let test_kill_takes_effect_at_time () =
  let eng = make () in
  Run.execute eng (F.plan [ (0.5, F.Kill 2) ]);
  checkb "dead after plan" false (E.alive eng (nid 2))

let test_partition_blocks_and_heals () =
  let eng = make () in
  Run.execute eng (F.plan [ (0.1, F.Partition ([ 0; 1 ], [ 2; 3 ])) ]);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "cut blocks" true
    (match E.state_of eng (nid 2) with Some st -> not st.Lock.holding | None -> false);
  (* A bare heal no longer validates; the healing plan re-cuts the
     (already cut, so it's a no-op) pair to own its whole window. *)
  Run.execute eng
    (F.plan
       [ (0., F.Partition ([ 0; 1 ], [ 2; 3 ])); (0.1, F.Heal_partition ([ 0; 1 ], [ 2; 3 ])) ]);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "heal restores" true
    (match E.state_of eng (nid 2) with Some st -> st.Lock.holding | None -> false)

let test_degrade_and_restore () =
  let eng = make () in
  let base = (Net.Netem.path (E.netem eng) ~src:0 ~dst:1).Net.Linkprop.latency in
  Run.execute eng
    (F.plan [ (0.1, F.Degrade { endpoint = 1; latency_factor = 10.; bandwidth_factor = 0.1 }) ]);
  let slowed = (Net.Netem.path (E.netem eng) ~src:0 ~dst:1).Net.Linkprop.latency in
  checkb "latency inflated" true (slowed > 5. *. base);
  Run.execute eng (F.plan [ (0.1, F.Restore 1) ]);
  let restored = (Net.Netem.path (E.netem eng) ~src:0 ~dst:1).Net.Linkprop.latency in
  Alcotest.check (Alcotest.float 1e-9) "restored" base restored

let test_set_faults_events () =
  let eng = make () in
  Run.execute eng
    (F.plan
       [
         (0., F.Set_duplicate { rate = 0.2; copies = 3 });
         (0., F.Set_corrupt { rate = 0.1; flip = 0.05 });
         (0., F.Set_reorder { rate = 0.3; window = 0.4 });
       ]);
  let f = Net.Netem.global_faults (E.netem eng) in
  Alcotest.check (Alcotest.float 0.) "duplicate rate" 0.2 f.Net.Netem.duplicate_rate;
  checki "duplicate copies" 3 f.Net.Netem.duplicate_copies;
  Alcotest.check (Alcotest.float 0.) "corrupt rate" 0.1 f.Net.Netem.corrupt_rate;
  Alcotest.check (Alcotest.float 0.) "corrupt flip" 0.05 f.Net.Netem.corrupt_flip;
  Alcotest.check (Alcotest.float 0.) "reorder rate" 0.3 f.Net.Netem.reorder_rate;
  Alcotest.check (Alcotest.float 0.) "reorder window" 0.4 f.Net.Netem.reorder_window;
  (* Zero rates switch the faults back off without disturbing the rest. *)
  Run.execute eng (F.plan [ (0., F.Set_corrupt { rate = 0.; flip = 0. }) ]);
  let f = Net.Netem.global_faults (E.netem eng) in
  Alcotest.check (Alcotest.float 0.) "corrupt off" 0. f.Net.Netem.corrupt_rate;
  Alcotest.check (Alcotest.float 0.) "duplicate untouched" 0.2 f.Net.Netem.duplicate_rate

let test_crash_storm_revives_everyone () =
  let eng = make () in
  let before = Dsim.Vtime.to_seconds (E.now eng) in
  Run.execute eng (F.plan [ (0., F.Crash_storm { victims = 2; period = 0.4; rounds = 3; mode = F.Clean }) ]);
  for i = 0 to 3 do
    checkb (Printf.sprintf "node %d alive after storm" i) true (E.alive eng (nid i))
  done;
  (* The storm occupies rounds * period of schedule time. *)
  checkb "storm consumed its window" true
    (Dsim.Vtime.to_seconds (E.now eng) -. before >= 3. *. 0.4 -. 1e-9)

let test_flap_consumes_window_and_heals () =
  let eng = make () in
  let before = Dsim.Vtime.to_seconds (E.now eng) in
  Run.execute eng
    (F.plan [ (0., F.Flap { a = [ 0; 1 ]; b = [ 2; 3 ]; period = 0.5; cycles = 3 }) ]);
  (* Each cycle is cut + heal, a half-period apiece. *)
  checkb "flap consumed its window" true
    (Dsim.Vtime.to_seconds (E.now eng) -. before >= 3. *. 2. *. 0.5 -. 1e-9);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "link healthy after flap" true
    (match E.state_of eng (nid 2) with Some st -> st.Lock.holding | None -> false)

let test_gray_link_is_asymmetric () =
  let eng = make () in
  Run.execute eng (F.plan [ (0., F.Gray_link { src = 0; dst = 2; loss = 1. }) ]);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "lossy direction drops" true
    (match E.state_of eng (nid 2) with Some st -> not st.Lock.holding | None -> false);
  E.inject eng ~src:(nid 2) ~dst:(nid 0) Lock.Grant;
  E.run_for eng 1.;
  checkb "reverse direction clean" true
    (match E.state_of eng (nid 0) with Some st -> st.Lock.holding | None -> false);
  Run.execute eng (F.plan [ (0., F.Heal_gray { src = 0; dst = 2 }) ]);
  E.inject eng ~src:(nid 0) ~dst:(nid 2) Lock.Grant;
  E.run_for eng 1.;
  checkb "healed direction delivers" true
    (match E.state_of eng (nid 2) with Some st -> st.Lock.holding | None -> false)

let test_restart_idempotent () =
  let eng = make () in
  (* A restart of a node that is already alive must be a no-op, so
     composed schedules can't crash the executor. *)
  Run.execute eng (F.plan [ (0.1, F.Restart 1) ]);
  checkb "still alive" true (E.alive eng (nid 1))

let test_empty_plan_is_noop () =
  let eng = make () in
  let before = Dsim.Vtime.to_seconds (E.now eng) in
  Run.execute eng (F.plan []);
  Alcotest.check (Alcotest.float 1e-9) "time unchanged" before
    (Dsim.Vtime.to_seconds (E.now eng));
  checki "duration 0" 0 (int_of_float (F.duration (F.plan [])))

let () =
  Alcotest.run "faultplan"
    [
      ( "structure",
        [
          Alcotest.test_case "sorting" `Quick test_plan_sorting;
          Alcotest.test_case "invalid" `Quick test_plan_invalid;
          Alcotest.test_case "pp" `Quick test_plan_pp;
        ] );
      ( "validation",
        Alcotest.test_case "valid plan accepted" `Quick test_valid_plan_accepted
        :: Alcotest.test_case "heal matches up to ordering" `Quick
             test_heal_matches_up_to_ordering
        :: Alcotest.test_case "overload plan accepted" `Quick test_overload_plan_accepted
        :: validation_cases );
      ( "execution",
        [
          Alcotest.test_case "kill/restart schedule" `Quick test_kill_restart_schedule;
          Alcotest.test_case "kill timing" `Quick test_kill_takes_effect_at_time;
          Alcotest.test_case "partition" `Quick test_partition_blocks_and_heals;
          Alcotest.test_case "degrade/restore" `Quick test_degrade_and_restore;
          Alcotest.test_case "channel fault events" `Quick test_set_faults_events;
          Alcotest.test_case "crash storm" `Quick test_crash_storm_revives_everyone;
          Alcotest.test_case "flap" `Quick test_flap_consumes_window_and_heals;
          Alcotest.test_case "gray link" `Quick test_gray_link_is_asymmetric;
          Alcotest.test_case "idempotent restart" `Quick test_restart_idempotent;
          Alcotest.test_case "overload burst" `Quick test_overload_runs_against_engine;
          Alcotest.test_case "empty plan" `Quick test_empty_plan_is_noop;
        ] );
    ]
