(* The benchmark harness: regenerates every quantity the paper reports
   (E1-E3), every motivating comparison of its §3.1 (E4-E6), the
   steering result its §2 rests on (S1), and the ablations DESIGN.md
   calls out (A1-A3) — followed by Bechamel micro-benchmarks of the
   runtime machinery. Paper-reported values are printed alongside
   measured ones; EXPERIMENTS.md records the comparison. *)

let fast = Array.exists (String.equal "--fast") Sys.argv

(* Run only the exploration-engine section (and emit BENCH_explorer.json)
   without regenerating every experiment table. *)
let explorer_only = Array.exists (String.equal "--explorer-only") Sys.argv

(* Run only the observability section (and emit BENCH_obs.json) *)
let obs_only = Array.exists (String.equal "--obs-only") Sys.argv

(* Run only the failure-detector/reliable-delivery section (and emit
   BENCH_fd.json) *)
let fd_only = Array.exists (String.equal "--fd-only") Sys.argv

(* Run only the overload-robustness section (and emit
   BENCH_overload.json) *)
let overload_only = Array.exists (String.equal "--overload-only") Sys.argv

(* Run only the per-node clock section (and emit BENCH_clock.json) *)
let clock_only = Array.exists (String.equal "--clock-only") Sys.argv

(* Run only the byzantine-mutation section (and emit BENCH_byz.json) *)
let byz_only = Array.exists (String.equal "--byz-only") Sys.argv

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let seeds = if fast then [ 42 ] else [ 42; 43; 44 ]

(* ------------------------------------------------------------------ *)
(* E1: code metrics                                                     *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1  Code metrics: baseline vs choice-exposed RandTree (paper S4)";
  match Experiments.Metrics_exp.run () with
  | None -> print_endline "  (sources not found; run from the repository root)"
  | Some c ->
      let row name (m : Metrics.Code_metrics.t) paper_loc paper_cx =
        [
          name;
          Metrics.Report.fint m.loc;
          Metrics.Report.fint m.handlers;
          Metrics.Report.ffloat m.per_handler;
          paper_loc;
          paper_cx;
        ]
      in
      Metrics.Report.print ~title:"code size and handler complexity"
        ~header:[ "variant"; "LoC"; "handlers"; "if-else/handler"; "paper LoC"; "paper if/h" ]
        [
          row "baseline" c.baseline "487" "1.94";
          row "choice-exposed" c.choice "280" "0.28";
        ];
      Printf.printf "  LoC reduction: %.0f%% measured (paper: 43%%)\n" c.loc_reduction_percent;
      (* E1b: the same comparison on a second protocol. *)
      (match Experiments.Metrics_exp.run_gossip () with
      | None -> ()
      | Some g ->
          let short name (m : Metrics.Code_metrics.t) =
            [
              name;
              Metrics.Report.fint m.loc;
              Metrics.Report.fint m.handlers;
              Metrics.Report.ffloat m.per_handler;
            ]
          in
          Metrics.Report.print ~title:"E1b  the same pattern on the gossip pair"
            ~header:[ "variant"; "LoC"; "handlers"; "if-else/handler" ]
            [ short "gossip-baseline" g.baseline; short "gossip-choice" g.choice ];
          Printf.printf "  LoC reduction: %.0f%%\n" g.loc_reduction_percent)

(* ------------------------------------------------------------------ *)
(* E2/E3: RandTree join and rejoin depth                                *)
(* ------------------------------------------------------------------ *)

let e23 () =
  section "E2/E3  RandTree max depth: join, then fail+rejoin a subtree (paper S4)";
  let setups =
    if fast then Experiments.Randtree_exp.paper_setups else Experiments.Randtree_exp.all_setups
  in
  let paper_join = function
    | Experiments.Randtree_exp.Baseline | Experiments.Randtree_exp.Choice_random
    | Experiments.Randtree_exp.Choice_crystalball ->
        "6"
    | Experiments.Randtree_exp.Choice_greedy | Experiments.Randtree_exp.Choice_bandit -> "-"
  in
  let paper_rejoin = function
    | Experiments.Randtree_exp.Baseline | Experiments.Randtree_exp.Choice_random -> "10"
    | Experiments.Randtree_exp.Choice_crystalball -> "9"
    | Experiments.Randtree_exp.Choice_greedy | Experiments.Randtree_exp.Choice_bandit -> "-"
  in
  let rows =
    List.map
      (fun setup ->
        let o = Experiments.Randtree_exp.run_median ~seeds setup in
        [
          Experiments.Randtree_exp.setup_name setup;
          Metrics.Report.fint o.Experiments.Randtree_exp.depth_after_join;
          Metrics.Report.fopt_int o.Experiments.Randtree_exp.depth_after_rejoin;
          paper_join setup;
          paper_rejoin setup;
          Metrics.Report.fint o.Experiments.Randtree_exp.messages;
        ])
      setups
  in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "31 nodes, optimal depth %d (median of %d seed(s))"
         (Experiments.Randtree_exp.optimal_depth ~nodes:31 ~max_children:2)
         (List.length seeds))
    ~header:[ "setup"; "join depth"; "rejoin depth"; "paper join"; "paper rejoin"; "msgs" ]
    rows

(* E3b extension: sustained churn instead of one mass failure. *)
let e3b () =
  section "E3b  Extension: RandTree under continuous churn (kill/restart every 4s)";
  let rows =
    List.map
      (fun setup ->
        let o =
          Experiments.Randtree_exp.run_churn ~seed:(List.hd seeds)
            ~duration:(if fast then 60. else 120.)
            setup
        in
        [
          Experiments.Randtree_exp.setup_name setup;
          Metrics.Report.ffloat o.Experiments.Randtree_exp.mean_depth;
          Metrics.Report.fint o.Experiments.Randtree_exp.worst_depth;
          Metrics.Report.ffloat o.Experiments.Randtree_exp.mean_joined;
        ])
      Experiments.Randtree_exp.paper_setups
  in
  Metrics.Report.print ~title:"sampled every 4s while one node is always failing or rejoining"
    ~header:[ "setup"; "mean depth"; "worst depth"; "mean joined" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: gossip peer choice                                               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4  Gossip: peer-selection policies (paper S3.1, BAR Gossip / FlightPath)";
  List.iter
    (fun scenario ->
      let rows =
        List.map
          (fun policy ->
            let o =
              Experiments.Gossip_exp.run ~seed:(List.hd seeds)
                ~waves:(if fast then 3 else 5)
                ~scenario policy
            in
            [
              Experiments.Gossip_exp.policy_name policy;
              Metrics.Report.ffloat o.Experiments.Gossip_exp.mean_coverage_s;
              Metrics.Report.ffloat o.Experiments.Gossip_exp.max_coverage_s;
              Metrics.Report.fint o.Experiments.Gossip_exp.messages;
            ])
          Experiments.Gossip_exp.all_policies
      in
      Metrics.Report.print
        ~title:
          (Printf.sprintf "rumor coverage time, scenario = %s"
             (Experiments.Gossip_exp.scenario_name scenario))
        ~header:[ "policy"; "mean (s)"; "max (s)"; "msgs" ]
        rows)
    [ Experiments.Gossip_exp.Uniform; Experiments.Gossip_exp.Slow_stub ]

(* ------------------------------------------------------------------ *)
(* E5: content distribution block choice                                *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  Content distribution: block-selection policies (paper S3.1)";
  List.iter
    (fun scenario ->
      let rows =
        List.map
          (fun policy ->
            let o = Experiments.Dissem_exp.run ~seed:(List.hd seeds) ~scenario policy in
            [
              Experiments.Dissem_exp.policy_name policy;
              Printf.sprintf "%d/15" o.Experiments.Dissem_exp.completed;
              Metrics.Report.ffloat o.Experiments.Dissem_exp.mean_completion_s;
              Metrics.Report.ffloat o.Experiments.Dissem_exp.max_completion_s;
              Metrics.Report.fint o.Experiments.Dissem_exp.duplicate_pieces;
            ])
          Experiments.Dissem_exp.all_policies
      in
      Metrics.Report.print
        ~title:
          (Printf.sprintf "64-block file, scenario = %s"
             (Experiments.Dissem_exp.scenario_name scenario))
        ~header:[ "policy"; "done"; "mean (s)"; "max (s)"; "dup pieces" ]
        rows)
    Experiments.Dissem_exp.all_scenarios

(* ------------------------------------------------------------------ *)
(* E6: Paxos proposer choice                                            *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6  Consensus: proposer-assignment policies (paper S3.1, Paxos/Mencius)";
  List.iter
    (fun scenario ->
      let rows =
        List.map
          (fun policy ->
            let o =
              Experiments.Paxos_exp.run ~seed:(List.hd seeds)
                ~duration:(if fast then 30. else 60.)
                ~scenario policy
            in
            [
              Experiments.Paxos_exp.policy_name policy;
              Printf.sprintf "%d/%d" o.Experiments.Paxos_exp.committed
                o.Experiments.Paxos_exp.born;
              Metrics.Report.ffloat ~decimals:0 o.Experiments.Paxos_exp.mean_latency_ms;
              Metrics.Report.ffloat ~decimals:0 o.Experiments.Paxos_exp.p99_latency_ms;
              Metrics.Report.fint o.Experiments.Paxos_exp.agreement_violations;
            ])
          Experiments.Paxos_exp.all_policies
      in
      Metrics.Report.print
        ~title:
          (Printf.sprintf "5 replicas over 3 WAN areas, scenario = %s"
             (Experiments.Paxos_exp.scenario_name scenario))
        ~header:[ "policy"; "committed"; "mean (ms)"; "p99 (ms)"; "agreement viol." ]
        rows)
    Experiments.Paxos_exp.all_scenarios

(* ------------------------------------------------------------------ *)
(* E7: DHT routing choice                                               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  DHT: next-hop routing policies (paper S3.1, 'the node to forward a message to')";
  let rows =
    List.map
      (fun policy ->
        let o =
          Experiments.Dht_exp.run ~seed:(List.hd seeds) ~duration:(if fast then 20. else 40.)
            policy
        in
        [
          Experiments.Dht_exp.policy_name policy;
          Printf.sprintf "%d/%d" o.Experiments.Dht_exp.completed o.Experiments.Dht_exp.issued;
          Metrics.Report.ffloat ~decimals:0 o.Experiments.Dht_exp.mean_latency_ms;
          Metrics.Report.ffloat ~decimals:0 o.Experiments.Dht_exp.p99_latency_ms;
          Metrics.Report.ffloat o.Experiments.Dht_exp.mean_hops;
        ])
      Experiments.Dht_exp.all_policies
  in
  Metrics.Report.print ~title:"32-node Chord ring over a 4-area WAN, random lookups"
    ~header:[ "policy"; "completed"; "mean (ms)"; "p99 (ms)"; "mean hops" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: replicated KV store read-replica choice                          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Replicated KV store: read-replica choice (paper S3.2, consistency as performance)";
  let rows =
    List.map
      (fun policy ->
        let o =
          Experiments.Kvstore_exp.run ~seed:(List.hd seeds) ~duration:(if fast then 30. else 60.)
            policy
        in
        [
          Experiments.Kvstore_exp.policy_name policy;
          Metrics.Report.fint o.Experiments.Kvstore_exp.reads;
          Metrics.Report.ffloat ~decimals:1 o.Experiments.Kvstore_exp.mean_read_ms;
          Metrics.Report.ffloat ~decimals:1 o.Experiments.Kvstore_exp.p99_read_ms;
          Metrics.Report.ffloat o.Experiments.Kvstore_exp.mean_staleness;
          Metrics.Report.fint o.Experiments.Kvstore_exp.monotonic_violations;
        ])
      Experiments.Kvstore_exp.all_policies
  in
  Metrics.Report.print
    ~title:"5 replicas over 3 WAN areas; every session reads and writes"
    ~header:[ "policy"; "reads"; "mean (ms)"; "p99 (ms)"; "staleness"; "mono viol." ]
    rows

(* ------------------------------------------------------------------ *)
(* S1: execution steering                                               *)
(* ------------------------------------------------------------------ *)

let s1 () =
  section "S1  Execution steering on the buggy lease service (paper S2)";
  let base = Experiments.Steering_exp.run ~with_runtime:false () in
  let steered = Experiments.Steering_exp.run ~with_runtime:true () in
  Metrics.Report.print ~title:"120s of lease traffic, premature-expiry race armed"
    ~header:[ "setup"; "exclusivity violations"; "grants served"; "msgs filtered"; "vetoes" ]
    [
      [
        "no runtime";
        Metrics.Report.fint base.Experiments.Steering_exp.violations;
        Metrics.Report.fint base.Experiments.Steering_exp.grants;
        "0";
        "0";
      ];
      [
        "CrystalBall runtime";
        Metrics.Report.fint steered.Experiments.Steering_exp.violations;
        Metrics.Report.fint steered.Experiments.Steering_exp.grants;
        Metrics.Report.fint steered.Experiments.Steering_exp.filtered;
        Metrics.Report.fint steered.Experiments.Steering_exp.vetoes;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* A1: lookahead horizon ablation                                       *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section "A1  Ablation: lookahead horizon vs rejoin quality (paper S3.4 'fast enough')";
  let module RT = Experiments.Randtree_exp in
  let module CE = RT.Choice_engine in
  let run_with_horizon ~seed horizon =
    let nodes = 31 in
    let eng = CE.create ~seed ~topology:(RT.topology ~seed ~nodes) () in
    if horizon <= 0. then CE.set_resolver eng Core.Resolver.random
    else CE.set_lookahead eng { CE.default_lookahead with horizon; max_events = 600 };
    let d : RT.driver =
      {
        spawn = (fun ?after i -> CE.spawn eng ?after (Proto.Node_id.of_int i));
        kill = (fun i -> CE.kill eng (Proto.Node_id.of_int i));
        restart = (fun ?after i -> CE.restart eng ?after (Proto.Node_id.of_int i));
        run_for = (fun dt -> CE.run_for eng dt);
        max_depth = (fun () -> RT.Choice_shape.max_depth (CE.global_view eng));
        joined_count = (fun () -> RT.Choice_shape.joined (CE.global_view eng));
        subtree_of_root_child =
          (fun () ->
            RT.Choice_shape.largest_root_subtree (CE.global_view eng)
              ~root:(Proto.Node_id.of_int 0));
        messages = (fun () -> (CE.stats eng).messages_delivered);
        forks = (fun () -> (CE.stats eng).lookahead_forks);
      }
    in
    RT.join_phase d ~nodes ~seed;
    let join_depth = d.RT.max_depth () in
    let _victims = RT.rejoin_phase d ~seed in
    (join_depth, d.RT.max_depth (), d.RT.forks ())
  in
  let median xs =
    let sorted = List.sort Int.compare xs in
    List.nth sorted (List.length sorted / 2)
  in
  let rows =
    List.map
      (fun horizon ->
        let runs = List.map (fun seed -> run_with_horizon ~seed horizon) seeds in
        let join = median (List.map (fun (j, _, _) -> j) runs) in
        let rejoin = median (List.map (fun (_, r, _) -> r) runs) in
        let forks = List.fold_left (fun acc (_, _, f) -> acc + f) 0 runs / List.length runs in
        [
          (if horizon <= 0. then "0 (no lookahead)" else Printf.sprintf "%.1fs" horizon);
          Metrics.Report.fint join;
          Metrics.Report.fint rejoin;
          Metrics.Report.fint forks;
        ])
      (if fast then [ 0.; 1.0; 3.0 ] else [ 0.; 0.5; 1.0; 2.0; 3.0; 4.0 ])
  in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "E3 workload, varying prediction horizon (median of %d seed(s))"
         (List.length seeds))
    ~header:[ "horizon"; "join depth"; "rejoin depth"; "forks" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2: model staleness ablation                                         *)
(* ------------------------------------------------------------------ *)

let a2 () =
  section "A2  Ablation: checkpoint staleness vs steering quality (paper S3.3.2)";
  let base = Experiments.Steering_exp.run ~with_runtime:false () in
  let rows =
    List.map
      (fun delay ->
        let o = Experiments.Steering_exp.run ~with_runtime:true ~checkpoint_delay:delay () in
        let prevented =
          base.Experiments.Steering_exp.violations - o.Experiments.Steering_exp.violations
        in
        [
          Printf.sprintf "%.2fs" delay;
          Metrics.Report.fint o.Experiments.Steering_exp.violations;
          Printf.sprintf "%d/%d" (max 0 prevented) base.Experiments.Steering_exp.violations;
          Metrics.Report.fint o.Experiments.Steering_exp.filtered;
        ])
      (if fast then [ 0.05; 0.25 ] else [ 0.01; 0.05; 0.1; 0.15; 0.2; 0.25; 0.3 ])
  in
  Metrics.Report.print
    ~title:
      (Printf.sprintf
         "lease race (un-steered baseline: %d violations); message flight time 0.3s"
         base.Experiments.Steering_exp.violations)
    ~header:[ "staleness"; "violations"; "prevented"; "filtered" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3: cached fast path vs full lookahead                               *)
(* ------------------------------------------------------------------ *)

let a3 () =
  section "A3  Ablation: learned fast path vs full lookahead (paper S3.4)";
  let rows =
    List.map
      (fun policy ->
        let t0 = Unix.gettimeofday () in
        let o =
          Experiments.Gossip_exp.run ~seed:(List.hd seeds)
            ~waves:(if fast then 3 else 5)
            ~scenario:Experiments.Gossip_exp.Slow_stub policy
        in
        let wall = Unix.gettimeofday () -. t0 in
        [
          Experiments.Gossip_exp.policy_name policy;
          Metrics.Report.ffloat o.Experiments.Gossip_exp.mean_coverage_s;
          Metrics.Report.ffloat wall;
          (match o.Experiments.Gossip_exp.cache with
          | Some (hits, misses) -> Printf.sprintf "%d/%d" hits (hits + misses)
          | None -> "-");
        ])
      [
        Experiments.Gossip_exp.Random_peer;
        Experiments.Gossip_exp.Bandit;
        Experiments.Gossip_exp.Crystalball;
        Experiments.Gossip_exp.Hybrid;
      ]
  in
  (* The offline playbook: training cost paid before deployment. *)
  let playbook_row =
    let t0 = Unix.gettimeofday () in
    let o, contexts, forks =
      Experiments.Gossip_exp.run_playbook ~seed:(List.hd seeds)
        ~waves:(if fast then 3 else 5)
        ~episodes:(if fast then 1 else 2)
        ~scenario:Experiments.Gossip_exp.Slow_stub ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    [
      Experiments.Gossip_exp.policy_name o.Experiments.Gossip_exp.policy;
      Metrics.Report.ffloat o.Experiments.Gossip_exp.mean_coverage_s;
      Metrics.Report.ffloat wall;
      Printf.sprintf "%d ctx/%d forks offline" contexts forks;
    ]
  in
  Metrics.Report.print
    ~title:"gossip slow-stub: decision quality vs decision cost (wall-clock of whole run)"
    ~header:[ "resolver"; "mean coverage (s)"; "wall (s)"; "cache hits" ]
    (rows @ [ playbook_row ])

(* ------------------------------------------------------------------ *)
(* A5: value of information                                             *)
(* ------------------------------------------------------------------ *)

let a5 () =
  section "A5  Ablation: lookahead knowledge scope (paper S3.3.2 'lack of global information')";
  let median xs =
    let sorted = List.sort Int.compare xs in
    List.nth sorted (List.length sorted / 2)
  in
  let rows =
    List.map
      (fun hops ->
        let runs = List.map (fun seed -> Experiments.Randtree_exp.run_scoped ~seed ~hops ()) seeds in
        [
          (match hops with None -> "global" | Some h -> Printf.sprintf "%d hops" h);
          Metrics.Report.fint (median (List.map fst runs));
          Metrics.Report.fint (median (List.map snd runs));
        ])
      (if fast then [ Some 1; None ] else [ Some 1; Some 2; Some 4; None ])
  in
  Metrics.Report.print
    ~title:
      (Printf.sprintf
         "E3 workload; prediction objectives see only the deciding node's h-hop tree neighbourhood (median of %d seed(s))"
         (List.length seeds))
    ~header:[ "knowledge"; "join depth"; "rejoin depth" ]
    rows

(* ------------------------------------------------------------------ *)
(* A4: checkpoint overhead                                              *)
(* ------------------------------------------------------------------ *)

let a4 () =
  section "A4  Ablation: checkpoint traffic vs application throughput (paper S3.3.2)";
  let deadline = if fast then 60. else 120. in
  let base =
    Experiments.Overhead_exp.run ~seed:(List.hd seeds) ~deadline ~checkpoint_period:None ()
  in
  let rows =
    [
      "no runtime";
      Metrics.Report.ffloat ~decimals:1 base.Experiments.Overhead_exp.mean_completion_s;
      Metrics.Report.ffloat ~decimals:1 base.Experiments.Overhead_exp.max_completion_s;
      "0";
      "0";
    ]
    :: List.map
         (fun period ->
           let o =
             Experiments.Overhead_exp.run ~seed:(List.hd seeds) ~deadline
               ~checkpoint_period:(Some period) ()
           in
           [
             Printf.sprintf "period %.2fs" period;
             Metrics.Report.ffloat ~decimals:1 o.Experiments.Overhead_exp.mean_completion_s;
             Metrics.Report.ffloat ~decimals:1 o.Experiments.Overhead_exp.max_completion_s;
             Metrics.Report.fint o.Experiments.Overhead_exp.checkpoints;
             Printf.sprintf "%d KB" (o.Experiments.Overhead_exp.checkpoint_bytes / 1024);
           ])
         (if fast then [ 1.0; 0.1 ] else [ 5.0; 1.0; 0.5; 0.2; 0.1; 0.05 ])
  in
  Metrics.Report.print
    ~title:
      "choked-seed swarm with global-knowledge checkpointing; serialized state charged to access links"
    ~header:[ "collection"; "mean done (s)"; "max done (s)"; "checkpoints"; "bytes shipped" ]
    rows

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let ns_per_run test =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second (if fast then 0.2 else 0.5)) () in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | Some [] | None -> (name, Float.nan) :: acc)
    analyzed []

(* One Bechamel test per core runtime mechanism; each prints ns/op. *)
let micro () =
  section "Micro-benchmarks (Bechamel, ns/op)";
  let open Bechamel in
  let heap_test =
    Test.make ~name:"heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Dsim.Heap.create ~cmp:Int.compare in
           for i = 0 to 99 do
             Dsim.Heap.push h (i * 7919 mod 100)
           done;
           while not (Dsim.Heap.is_empty h) do
             ignore (Dsim.Heap.pop h)
           done))
  in
  let rng = Dsim.Rng.create 1 in
  let rng_test =
    Test.make ~name:"rng bits64" (Staged.stage (fun () -> ignore (Dsim.Rng.bits64 rng)))
  in
  let choice =
    Core.Choice.of_values ~label:"bench"
      ~feature:(fun v -> [ ("v", float_of_int v) ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let resolver_test name r =
    Test.make ~name:("resolve " ^ name)
      (Staged.stage (fun () -> ignore (Core.Resolver.apply r rng choice ~node:0 ~occurrence:0)))
  in
  let bandit = Core.Bandit.create () in
  let netmodel =
    let m = Net.Netmodel.create () in
    Net.Netmodel.observe_latency m ~src:0 ~dst:1 Dsim.Vtime.zero 0.01;
    m
  in
  let netmodel_test =
    Test.make ~name:"netmodel predict"
      (Staged.stage (fun () ->
           ignore
             (Net.Netmodel.predict_transfer_time netmodel ~src:0 ~dst:1
                ~now:(Dsim.Vtime.of_seconds 1.) ~bytes:512)))
  in
  let tests =
    [
      heap_test;
      rng_test;
      resolver_test "random" Core.Resolver.random;
      resolver_test "greedy" (Core.Resolver.greedy ~feature:"v" ());
      resolver_test "bandit" (Core.Bandit.to_resolver bandit);
      netmodel_test;
    ]
  in
  List.iter
    (fun t ->
      List.iter
        (fun (name, ns) -> Printf.printf "  %-24s %12.1f ns/op\n" name ns)
        (ns_per_run t))
    tests

(* ------------------------------------------------------------------ *)
(* EX: the exploration engine                                           *)
(* ------------------------------------------------------------------ *)

(* Worlds/second of consequence prediction: the retired digest engine
   (kept as Mc.Explorer_ref, the differential-test oracle) against the
   fingerprinted worklist engine, on snapshots frozen out of live paxos
   and randtree runs at the steering defaults (depth 3, max_worlds
   5000). Also times a full steering round (base explore plus one
   re-explore per candidate veto) both cold and with the runtime's
   persistent transposition cache. Results go to stdout and to
   BENCH_explorer.json in the working directory. *)

type ex_measure = {
  worlds_per_run : int;
  ms_per_run : float;
  worlds_per_sec : float;
}

type ex_row = {
  scenario : string;
  ex_depth : int;
  ex_max_worlds : int;
  ex_drops : bool;
  before : ex_measure;
  after : ex_measure;
  after_par : ex_measure;
  par_domains : int;
  steer_before_ms : float;
  steer_after_ms : float;
  steer_warm_ms : float;
  deduped : int;
  cached_warm : int;
  collisions : int;
}

module Ex_bench (App : Proto.App_intf.APP) = struct
  module Ex = Mc.Explorer.Make (App)
  module Ref = Mc.Explorer_ref.Make (App)
  module St = Mc.Steering.Make (App)

  let ref_world_of (w : Ex.world) : Ref.world =
    { Ref.states = w.states; pending = w.pending; timers = w.timers }

  (* Repeat [f] until [min_time] wall seconds elapse (after one warm-up
     run); milliseconds per run. *)
  let time_ms ~min_time f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    let runs = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < min_time do
      ignore (f ());
      incr runs;
      elapsed := Unix.gettimeofday () -. t0
    done;
    !elapsed *. 1000. /. float_of_int !runs

  (* The steering decision procedure run verbatim over the reference
     explorer: base explore, then one re-explore per candidate veto —
     what a pre-rewrite steering round cost. *)
  let ref_steer_round ?include_drops ~max_worlds ~depth (w : Ref.world) =
    let explore w = Ref.explore ?include_drops ~max_worlds ~depth w in
    let pset (r : Ref.result) =
      List.sort_uniq String.compare
        (List.map (fun (v : Ref.violation) -> v.property) r.violations)
    in
    let base = explore w in
    match base.Ref.violations with
    | [] -> ()
    | _ :: _ ->
        let doomed = pset base in
        let candidates =
          List.filter_map
            (function
              | Ref.Deliver_step { src; dst; kind } -> Some (src, dst, kind)
              | Ref.Drop_step _ | Ref.Timer_step _ | Ref.Generic_step _ -> None)
            (Ref.first_steps_to_violation base)
        in
        List.iter
          (fun (src, dst, kind) ->
            let dropped = ref false in
            let steered =
              {
                w with
                Ref.pending =
                  List.filter
                    (fun (s, d, m) ->
                      let matches =
                        (not !dropped)
                        && Proto.Node_id.equal s src && Proto.Node_id.equal d dst
                        && String.equal (App.msg_kind m) kind
                      in
                      if matches then dropped := true;
                      not matches)
                    w.Ref.pending;
              }
            in
            ignore (List.for_all (fun p -> List.mem p doomed) (pset (explore steered))))
          candidates

  let run ~scenario ?(include_drops = false) ~depth ~max_worlds (w : Ex.world) =
    let min_time = if fast then 0.2 else 1.0 in
    let refw = ref_world_of w in
    (* Worlds-per-run may legitimately differ between engines in drop
       mode (the worklist search covers length-divergent paths the
       bounded DFS pruned; see DESIGN.md), so each engine's throughput
       is computed against its own count. *)
    let r_old = Ref.explore ~include_drops ~max_worlds ~depth refw in
    let r_new = Ex.explore ~include_drops ~max_worlds ~depth w in
    let measure worlds ms =
      { worlds_per_run = worlds; ms_per_run = ms; worlds_per_sec = float_of_int worlds /. ms *. 1000. }
    in
    let ms_old = time_ms ~min_time (fun () -> Ref.explore ~include_drops ~max_worlds ~depth refw) in
    let ms_new = time_ms ~min_time (fun () -> Ex.explore ~include_drops ~max_worlds ~depth w) in
    let par_domains = max 2 (min 8 (Domain.recommended_domain_count ())) in
    (* One persistent pool across every timed run — the deployment
       shape (Crystal spawns its pool once per attach), and the whole
       point of the pool: domain spawn/join never lands in the timed
       region. *)
    let pool = Core.Pool.create ~domains:par_domains in
    let ms_par =
      Fun.protect
        ~finally:(fun () -> Core.Pool.shutdown pool)
        (fun () ->
          time_ms ~min_time (fun () -> Ex.explore ~include_drops ~pool ~max_worlds ~depth w))
    in
    let steer_before_ms =
      time_ms ~min_time (fun () -> ref_steer_round ~include_drops ~max_worlds ~depth refw)
    in
    let steer_after_ms =
      time_ms ~min_time (fun () -> St.decide ~include_drops ~max_worlds ~depth w)
    in
    let cache = St.Ex.create_cache () in
    let steer_warm_ms =
      time_ms ~min_time (fun () -> St.decide ~include_drops ~cache ~max_worlds ~depth w)
    in
    let r_warm = Ex.explore ~include_drops ~cache ~max_worlds ~depth w in
    {
      scenario;
      ex_depth = depth;
      ex_max_worlds = max_worlds;
      ex_drops = include_drops;
      before = measure r_old.Ref.worlds_explored ms_old;
      after = measure r_new.Ex.worlds_explored ms_new;
      after_par = measure r_new.Ex.worlds_explored ms_par;
      par_domains;
      steer_before_ms;
      steer_after_ms;
      steer_warm_ms;
      deduped = r_new.Ex.worlds_deduped;
      cached_warm = r_warm.Ex.outcomes_cached;
      collisions = r_new.Ex.fingerprint_collisions;
    }
end

module Ex_paxos_params = struct
  let population = 3
  let client_period = 0. (* the bench injects commands itself *)
  let retry_timeout = 1.0
end

module Ex_papp = Apps.Paxos.Make (Ex_paxos_params)
module Ex_pe = Engine.Sim.Make (Ex_papp)
module Ex_pb = Ex_bench (Ex_papp)

let ex_paxos_world ~seed =
  let topology =
    Net.Topology.uniform ~n:3 (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Ex_pe.create ~seed ~jitter:0. ~topology () in
  Ex_pe.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 2 do
    Ex_pe.spawn eng (Proto.Node_id.of_int i)
  done;
  Ex_pe.run_for eng 0.05;
  let submit origin seq =
    Ex_pe.inject eng
      ~src:(Proto.Node_id.of_int origin)
      ~dst:(Proto.Node_id.of_int 0)
      (Apps.Paxos.Submit { cmd = { Apps.Paxos.origin; seq; born = 0. } })
  in
  submit 1 0;
  submit 2 1;
  Ex_pe.run_for eng 0.015;
  Ex_pb.Ex.world_of_view (Ex_pe.global_view eng)

module Ex_rapp = Apps.Randtree_choice.Default
module Ex_re = Engine.Sim.Make (Ex_rapp)
module Ex_rb = Ex_bench (Ex_rapp)

let ex_randtree_world ~seed =
  let n = 6 in
  let topology =
    Net.Topology.uniform ~n (Net.Linkprop.v ~latency:0.01 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Ex_re.create ~seed ~jitter:0. ~topology () in
  for i = 0 to n - 1 do
    Ex_re.spawn eng ~after:(0.05 *. float_of_int i) (Proto.Node_id.of_int i)
  done;
  (* Freeze mid-join so the snapshot still has joins in flight. *)
  Ex_re.run_for eng 0.26;
  Ex_rb.Ex.world_of_view (Ex_re.global_view eng)

let ex_json_path = "BENCH_explorer.json"

let ex_emit_json rows =
  let oc = open_out ex_json_path in
  let p fmt = Printf.fprintf oc fmt in
  let measure_json label (m : ex_measure) =
    Printf.sprintf
      "{ \"engine\": %S, \"worlds_per_run\": %d, \"ms_per_run\": %.4f, \"worlds_per_sec\": %.1f }"
      label m.worlds_per_run m.ms_per_run m.worlds_per_sec
  in
  p "{\n";
  p "  \"bench\": \"explorer-engine\",\n";
  p "  \"units\": { \"throughput\": \"worlds/second\", \"latency\": \"ms/steering round\" },\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"scenarios\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": %S,\n" r.scenario;
      p "      \"config\": { \"depth\": %d, \"max_worlds\": %d, \"include_drops\": %b },\n"
        r.ex_depth r.ex_max_worlds r.ex_drops;
      p "      \"explore\": {\n";
      p "        \"before\": %s,\n" (measure_json "digest-dfs" r.before);
      p "        \"after\": %s,\n" (measure_json "fingerprint-worklist" r.after);
      p "        \"after_parallel\": { \"domains\": %d, %s },\n" r.par_domains
        (let s = measure_json "fingerprint-worklist" r.after_par in
         String.sub s 2 (String.length s - 4));
      p "        \"speedup\": %.2f,\n" (r.after.worlds_per_sec /. r.before.worlds_per_sec);
      p "        \"parallel_speedup\": %.2f\n"
        (r.after_par.worlds_per_sec /. r.after.worlds_per_sec);
      p "      },\n";
      p "      \"steering_round\": {\n";
      p "        \"before_ms\": %.4f,\n" r.steer_before_ms;
      p "        \"after_ms\": %.4f,\n" r.steer_after_ms;
      p "        \"after_warm_cache_ms\": %.4f,\n" r.steer_warm_ms;
      p "        \"speedup\": %.2f\n" (r.steer_before_ms /. r.steer_after_ms);
      p "      },\n";
      p "      \"counters\": { \"worlds_deduped\": %d, \"outcomes_cached_warm\": %d, \"fingerprint_collisions\": %d }\n"
        r.deduped r.cached_warm r.collisions;
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let ex () =
  section "EX  Exploration engine: digest DFS vs fingerprinted worklist (steering defaults)";
  let depth = 3 and max_worlds = 5_000 in
  let rows =
    [
      Ex_pb.run ~scenario:"paxos" ~depth ~max_worlds (ex_paxos_world ~seed:3);
      Ex_pb.run ~scenario:"paxos-drops" ~include_drops:true ~depth ~max_worlds
        (ex_paxos_world ~seed:3);
      Ex_rb.run ~scenario:"randtree" ~depth ~max_worlds (ex_randtree_world ~seed:5);
    ]
  in
  Metrics.Report.print ~title:"consequence-prediction throughput (same worlds both engines)"
    ~header:[ "scenario"; "worlds"; "before w/s"; "after w/s"; "speedup"; "domains w/s" ]
    (List.map
       (fun r ->
         [
           r.scenario;
           Printf.sprintf "%d/%d" r.before.worlds_per_run r.after.worlds_per_run;
           Printf.sprintf "%.0f" r.before.worlds_per_sec;
           Printf.sprintf "%.0f" r.after.worlds_per_sec;
           Printf.sprintf "%.1fx" (r.after.worlds_per_sec /. r.before.worlds_per_sec);
           Printf.sprintf "%.0f (%d)" r.after_par.worlds_per_sec r.par_domains;
         ])
       rows);
  Metrics.Report.print ~title:"steering-round latency (base explore + per-veto re-explores)"
    ~header:[ "scenario"; "before (ms)"; "after (ms)"; "warm cache (ms)"; "speedup" ]
    (List.map
       (fun r ->
         [
           r.scenario;
           Printf.sprintf "%.3f" r.steer_before_ms;
           Printf.sprintf "%.3f" r.steer_after_ms;
           Printf.sprintf "%.3f" r.steer_warm_ms;
           Printf.sprintf "%.1fx" (r.steer_before_ms /. r.steer_after_ms);
         ])
       rows);
  List.iter
    (fun r ->
      Printf.printf "  %-12s deduped %d, warm-cache outcomes %d, fp collisions %d\n" r.scenario
        r.deduped r.cached_warm r.collisions)
    rows;
  ex_emit_json rows;
  Printf.printf "  wrote %s\n" ex_json_path;
  (* Regression guard: a parallel explore must never be slower than the
     sequential one (0.95 leaves room for timer noise). Only meaningful
     with at least two real cores: on a single-core host every minor GC
     must synchronise the idle worker domain's backup thread over the
     one CPU, which alone costs 2-10x on this allocation-heavy loop —
     a healthy pool and a broken one are indistinguishable there. *)
  let cores = Domain.recommended_domain_count () in
  if cores < 2 then
    Printf.printf
      "  parallel guard skipped: single-core host (parallel throughput is GC-sync noise here)\n"
  else begin
    let tolerance = 0.95 in
    let failures =
      List.filter_map
        (fun r ->
          let ratio = r.after_par.worlds_per_sec /. r.after.worlds_per_sec in
          if ratio < tolerance then Some (r.scenario, ratio) else None)
        rows
    in
    if failures <> [] then begin
      List.iter
        (fun (scenario, ratio) ->
          Printf.eprintf
            "PARALLEL REGRESSION: scenario %S runs at %.2fx sequential throughput with %d \
             domains (tolerance %.2f on %d cores) — the domain pool is slower than one thread\n"
            scenario ratio
            (max 2 (min 8 cores))
            tolerance cores)
        failures;
      exit 1
    end
  end

(* ---------- OBS: observability layer (trace gate + metrics overhead) ----------

   Two questions, answered against the same 5-replica Paxos engine the
   obs subcommand instruments: (1) does the Trace min-level gate make
   below-threshold [logf] sites free of formatting cost, and (2) does
   attaching the metrics/span sink keep the event-loop slowdown inside
   the 5% budget? Results go to stdout and BENCH_obs.json. *)

module Obs_papp = Apps.Paxos.Make (struct
  let population = 5
  let client_period = 0.25
  let retry_timeout = 2.0
end)

module Obs_pe = Engine.Sim.Make (Obs_papp)

(* Nanoseconds per [logf] call at a Debug site: with the trace at Debug
   every call formats into the ring; at Info the gate must skip the
   formatting entirely, so the gated cost is the counter bump alone. *)
let obs_logf_ns level =
  let n = if fast then 200_000 else 1_000_000 in
  let tr = Dsim.Trace.create ~capacity:64 ~min_level:level () in
  let payload = "0123456789abcdef" in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Dsim.Trace.logf tr Dsim.Vtime.zero Dsim.Trace.Debug ~component:"bench"
      "event %d on node %d payload %s" i (i mod 7) payload
  done;
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
  (n, ns)

(* Engine events per wall second over [duration] virtual seconds of
   sustained Paxos traffic, at the given trace level, with or without
   the observability sink attached. *)
let obs_paxos_run ~level ~with_obs ~duration ~seed =
  let topology =
    Net.Topology.uniform ~n:5
      (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Obs_pe.create ~seed ~jitter:0. ~topology () in
  Dsim.Trace.set_min_level (Obs_pe.trace eng) level;
  if with_obs then Obs_pe.set_obs eng (Some (Obs.Sink.create ()));
  Obs_pe.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    Obs_pe.spawn eng (Proto.Node_id.of_int i)
  done;
  let t0 = Unix.gettimeofday () in
  Obs_pe.run_for eng duration;
  let wall = Unix.gettimeofday () -. t0 in
  float_of_int (Obs_pe.stats eng).Obs_pe.events_processed /. wall

(* The configs differ by a few percent at most, well inside single-run
   noise, and the process speeds up over its first runs (heap growth,
   code warm-up), so position in the schedule is itself a bias.  Each
   rep measures every config back to back with the order rotated, so
   over [reps] cycles every config occupies every slot equally; a full
   unrecorded cycle first absorbs the cold start, and each config
   reports its median. *)
let obs_paxos_sweep ~configs ~duration ~reps =
  let rotate k l =
    let n = List.length l in
    List.init n (fun i -> List.nth l ((i + k) mod n))
  in
  List.iter
    (fun (_, level, with_obs) -> ignore (obs_paxos_run ~level ~with_obs ~duration ~seed:7))
    configs;
  let samples = List.map (fun (name, _, _) -> (name, ref [])) configs in
  for r = 0 to reps - 1 do
    List.iter
      (fun (name, level, with_obs) ->
        let ev = obs_paxos_run ~level ~with_obs ~duration ~seed:(7 + r) in
        let acc = List.assoc name samples in
        acc := ev :: !acc)
      (rotate r configs)
  done;
  List.map
    (fun (name, acc) ->
      let sorted = List.sort compare !acc in
      (name, List.nth sorted (List.length sorted / 2)))
    samples

let obs_json_path = "BENCH_obs.json"

let obs_emit_json ~calls ~debug_ns ~gated_ns ~ev_debug ~ev_info ~ev_obs =
  let oc = open_out obs_json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"observability\",\n";
  p "  \"units\": { \"micro\": \"ns/logf call\", \"macro\": \"engine events/second\" },\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"trace_gate\": {\n";
  p "    \"micro\": { \"calls\": %d, \"debug_ns_per_call\": %.1f, \"gated_ns_per_call\": %.1f, \"speedup\": %.1f },\n"
    calls debug_ns gated_ns
    (if gated_ns > 0. then debug_ns /. gated_ns else 0.);
  p "    \"paxos\": { \"debug_events_per_sec\": %.0f, \"info_events_per_sec\": %.0f, \"gate_gain_pct\": %.2f }\n"
    ev_debug ev_info
    ((ev_info -. ev_debug) /. ev_debug *. 100.);
  p "  },\n";
  p "  \"obs_overhead\": { \"base_events_per_sec\": %.0f, \"obs_events_per_sec\": %.0f, \"overhead_pct\": %.2f, \"budget_pct\": 5.0 }\n"
    ev_info ev_obs
    ((ev_info -. ev_obs) /. ev_info *. 100.);
  p "}\n";
  close_out oc

let obs_bench () =
  section "OBS Observability: trace level gate + metrics/span sink overhead";
  let calls, debug_ns = obs_logf_ns Dsim.Trace.Debug in
  let _, gated_ns = obs_logf_ns Dsim.Trace.Info in
  Printf.printf
    "  logf at a Debug site (%d calls): %.1f ns formatted, %.1f ns gated (%.1fx)\n" calls
    debug_ns gated_ns
    (if gated_ns > 0. then debug_ns /. gated_ns else 0.);
  let duration = if fast then 20. else 60. in
  let reps = if fast then 3 else 5 in
  let medians =
    obs_paxos_sweep ~duration ~reps
      ~configs:
        [
          ("debug", Dsim.Trace.Debug, false);
          ("info", Dsim.Trace.Info, false);
          ("info+obs", Dsim.Trace.Info, true);
        ]
  in
  let ev_debug = List.assoc "debug" medians in
  let ev_info = List.assoc "info" medians in
  let ev_obs = List.assoc "info+obs" medians in
  let overhead_pct = (ev_info -. ev_obs) /. ev_info *. 100. in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "paxos engine throughput, %.0fs virtual, median of %d" duration reps)
    ~header:[ "config"; "events/s"; "vs info" ]
    [
      [ "trace=debug"; Printf.sprintf "%.0f" ev_debug;
        Printf.sprintf "%+.1f%%" ((ev_debug -. ev_info) /. ev_info *. 100.) ];
      [ "trace=info (gated)"; Printf.sprintf "%.0f" ev_info; "baseline" ];
      [ "trace=info + obs sink"; Printf.sprintf "%.0f" ev_obs;
        Printf.sprintf "%+.1f%%" (-.overhead_pct) ];
    ];
  Printf.printf "  obs sink overhead: %.2f%% (budget 5%%)%s\n" overhead_pct
    (if overhead_pct < 5. then "" else "  ** OVER BUDGET **");
  obs_emit_json ~calls ~debug_ns ~gated_ns ~ev_debug ~ev_info ~ev_obs;
  Printf.printf "  wrote %s\n" obs_json_path

(* ---------- FD: failure detection + reliable delivery overhead ----------

   The phi-accrual detector is fed passively on every delivery, so its
   cost rides the engine's hottest path. One question with a hard
   budget: does leaving the detector on (the default) keep the
   event-loop slowdown inside 5% versus switching it off?  The reliable
   layer is opt-in and schedules real extra work (acks, retry timers),
   so its figure is informational, not budgeted. Same 5-replica Paxos
   engine, same rotation/median discipline as the obs bench.  Results
   go to stdout and BENCH_fd.json. *)

let fd_paxos_run ~fd ~reliable ~duration ~seed =
  let topology =
    Net.Topology.uniform ~n:5
      (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Obs_pe.create ~seed ~jitter:0. ~topology () in
  Dsim.Trace.set_min_level (Obs_pe.trace eng) Dsim.Trace.Info;
  Obs_pe.set_fd_enabled eng fd;
  if reliable then Obs_pe.enable_reliable eng;
  Obs_pe.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    Obs_pe.spawn eng (Proto.Node_id.of_int i)
  done;
  let t0 = Unix.gettimeofday () in
  Obs_pe.run_for eng duration;
  let wall = Unix.gettimeofday () -. t0 in
  float_of_int (Obs_pe.stats eng).Obs_pe.events_processed /. wall

(* Same schedule-rotation reasoning as [obs_paxos_sweep]: the configs
   sit within a few percent of each other, so each rep measures every
   config back to back in rotated order and reports the median. *)
let fd_paxos_sweep ~configs ~duration ~reps =
  let rotate k l =
    let n = List.length l in
    List.init n (fun i -> List.nth l ((i + k) mod n))
  in
  List.iter
    (fun (_, fd, reliable) -> ignore (fd_paxos_run ~fd ~reliable ~duration ~seed:7))
    configs;
  let samples = List.map (fun (name, _, _) -> (name, ref [])) configs in
  for r = 0 to reps - 1 do
    List.iter
      (fun (name, fd, reliable) ->
        let ev = fd_paxos_run ~fd ~reliable ~duration ~seed:(7 + r) in
        let acc = List.assoc name samples in
        acc := ev :: !acc)
      (rotate r configs)
  done;
  List.map
    (fun (name, acc) ->
      let sorted = List.sort compare !acc in
      (name, List.nth sorted (List.length sorted / 2)))
    samples

let fd_json_path = "BENCH_fd.json"

let fd_emit_json ~ev_base ~ev_fd ~ev_rel =
  let oc = open_out fd_json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"failure_detector\",\n";
  p "  \"units\": \"engine events/second\",\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"fd_overhead\": { \"base_events_per_sec\": %.0f, \"fd_events_per_sec\": %.0f, \"overhead_pct\": %.2f, \"budget_pct\": 5.0 },\n"
    ev_base ev_fd
    ((ev_base -. ev_fd) /. ev_base *. 100.);
  p "  \"reliable_informational\": { \"events_per_sec\": %.0f, \"vs_base_pct\": %.2f }\n"
    ev_rel
    ((ev_base -. ev_rel) /. ev_base *. 100.);
  p "}\n";
  close_out oc

let fd_bench () =
  section "FD  Failure detection: passive phi-accrual feed overhead";
  let duration = if fast then 20. else 60. in
  let reps = if fast then 3 else 5 in
  let medians =
    fd_paxos_sweep ~duration ~reps
      ~configs:
        [
          ("base", false, false);
          ("fd", true, false);
          ("fd+reliable", true, true);
        ]
  in
  let ev_base = List.assoc "base" medians in
  let ev_fd = List.assoc "fd" medians in
  let ev_rel = List.assoc "fd+reliable" medians in
  let overhead_pct = (ev_base -. ev_fd) /. ev_base *. 100. in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "paxos engine throughput, %.0fs virtual, median of %d" duration reps)
    ~header:[ "config"; "events/s"; "vs base" ]
    [
      [ "fd off"; Printf.sprintf "%.0f" ev_base; "baseline" ];
      [ "fd on (default)"; Printf.sprintf "%.0f" ev_fd;
        Printf.sprintf "%+.1f%%" (-.overhead_pct) ];
      [ "fd + reliable"; Printf.sprintf "%.0f" ev_rel;
        Printf.sprintf "%+.1f%%" (-.((ev_base -. ev_rel) /. ev_base *. 100.)) ];
    ];
  Printf.printf "  fd feed overhead: %.2f%% (budget 5%%)%s\n" overhead_pct
    (if overhead_pct < 5. then "" else "  ** OVER BUDGET **");
  Printf.printf "  reliable layer (informational, schedules real ack/retry work): %+.1f%%\n"
    (-.((ev_base -. ev_rel) /. ev_base *. 100.));
  fd_emit_json ~ev_base ~ev_fd ~ev_rel;
  Printf.printf "  wrote %s\n" fd_json_path

(* ---------- OV: overload robustness (bounded queues + shedding) ----------

   Two claims with teeth, against the same 5-replica Paxos engine as
   the obs/fd benches. (1) Budgeted: the overload layer's hot-path
   hooks — an option check per delivery when unconfigured, ticketed
   queue bookkeeping when bounded mailboxes are installed but idle —
   keep the event-loop slowdown inside 5%. (2) Directional: under a
   genuine injection burst, bounded mailboxes with priority shedding
   keep the p99 delivery latency of real traffic at a fraction of the
   unbounded configuration's, where the backlog (and the queue delay
   every later arrival pays) grows without limit for as long as the
   burst lasts. Results go to stdout and BENCH_overload.json. *)

let ov_config ~bounded =
  {
    Obs_pe.default_overload with
    Obs_pe.mailbox_capacity = (if bounded then 64 else 0);
    shed = Obs_pe.By_priority;
    service_time = 5e-4;
  }

let ov_engine ~install ~seed =
  let topology =
    Net.Topology.uniform ~n:5
      (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Obs_pe.create ~seed ~jitter:0. ~topology () in
  Dsim.Trace.set_min_level (Obs_pe.trace eng) Dsim.Trace.Info;
  (* The budgeted quantity is the *disabled* path: layer installed,
     every knob off — what every run that never asked for overload
     robustness pays. *)
  if install then Obs_pe.set_overload eng ~config:Obs_pe.default_overload;
  Obs_pe.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    Obs_pe.spawn eng (Proto.Node_id.of_int i)
  done;
  eng

(* The two configs sit within noise of each other, and wall-clock
   speed on a shared machine drifts more over a few seconds than the
   budget we are asserting — so medians of whole-run throughputs are
   not enough. Each rep instead advances a base engine and an
   installed engine side by side in 1-virtual-second slices
   (alternating which goes first), so machine drift lands on both
   configs almost simultaneously; the rep contributes one idle/base
   throughput ratio, and the budget is judged against the median
   ratio. *)
let ov_overhead_rep ~duration ~seed =
  let e_base = ov_engine ~install:false ~seed
  and e_idle = ov_engine ~install:true ~seed in
  let wall_base = ref 0.
  and wall_idle = ref 0. in
  let timed wall eng =
    let t0 = Unix.gettimeofday () in
    Obs_pe.run_for eng 1.;
    wall := !wall +. (Unix.gettimeofday () -. t0)
  in
  for slice = 0 to int_of_float duration - 1 do
    if slice mod 2 = 0 then begin
      timed wall_base e_base;
      timed wall_idle e_idle
    end
    else begin
      timed wall_idle e_idle;
      timed wall_base e_base
    end
  done;
  let evps wall eng = float_of_int (Obs_pe.stats eng).Obs_pe.events_processed /. !wall in
  (evps wall_base e_base, evps wall_idle e_idle)

let ov_overhead_sweep ~duration ~reps =
  ignore (ov_overhead_rep ~duration:2. ~seed:7) (* warmup *);
  let base = ref [] and idle = ref [] and ratios = ref [] in
  for r = 0 to reps - 1 do
    let b, i = ov_overhead_rep ~duration ~seed:(7 + r) in
    base := b :: !base;
    idle := i :: !idle;
    ratios := (i /. b) :: !ratios
  done;
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  (median !base, median !idle, (1. -. median !ratios) *. 100.)

(* The burst comparison is in virtual time — fully deterministic, no
   rotation needed. A 2000/s chaff burst hits node 0 for two virtual
   seconds; with [service_time] 0.5 ms per queued message the drain
   rate cannot keep up, so the unbounded config's queue (and the delay
   every later real message pays behind it) grows for the whole burst,
   while the bounded config sheds chaff and keeps the backlog at 64. *)
let ov_burst_run ~bounded ~seed =
  let topology =
    Net.Topology.uniform ~n:5
      (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Obs_pe.create ~seed ~jitter:0. ~topology () in
  Dsim.Trace.set_min_level (Obs_pe.trace eng) Dsim.Trace.Warn;
  let sink = Obs.Sink.create () in
  Obs_pe.set_obs eng (Some sink);
  Obs_pe.set_overload eng ~config:(ov_config ~bounded);
  Obs_pe.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    Obs_pe.spawn eng (Proto.Node_id.of_int i)
  done;
  Obs_pe.run_for eng 2.;
  Obs_pe.overload eng ~rate:2000. (Proto.Node_id.of_int 0);
  Obs_pe.run_for eng 2.;
  Obs_pe.heal_overload eng (Proto.Node_id.of_int 0);
  Obs_pe.run_for eng 4.;
  (* Worst per-link p99 of real deliveries (chaff is never observed by
     the sink): the metric the burst is supposed to protect. *)
  let p99 =
    List.fold_left
      (fun acc j ->
        match (Obs.Json.member "name" j, Obs.Json.member "p99" j) with
        | Some (Obs.Json.Str "engine_delivery_latency_ms"), Some (Obs.Json.Float p) ->
            Float.max acc p
        | _ -> acc)
      0.
      (Obs.Registry.to_json ~include_volatile:true sink.Obs.Sink.registry)
  in
  (p99, Obs_pe.stats eng)

let ov_json_path = "BENCH_overload.json"

let ov_emit_json ~ev_base ~ev_idle ~overhead_pct ~p99_bounded ~p99_unbounded ~sheds ~max_depth =
  let oc = open_out ov_json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"overload\",\n";
  p "  \"fast\": %b,\n" fast;
  p
    "  \"overload_overhead\": { \"base_events_per_sec\": %.0f, \"idle_events_per_sec\": %.0f, \
     \"overhead_pct\": %.2f, \"budget_pct\": 5.0 },\n"
    ev_base ev_idle overhead_pct;
  p
    "  \"burst_p99_ms\": { \"bounded\": %.2f, \"unbounded\": %.2f, \
     \"bounded_beats_unbounded\": %b },\n"
    p99_bounded p99_unbounded
    (p99_bounded < p99_unbounded);
  p "  \"bounded_burst\": { \"sheds\": %d, \"max_mailbox_depth\": %d }\n" sheds max_depth;
  p "}\n";
  close_out oc

let ov_bench () =
  section "OV  Overload robustness: layer overhead and shed-vs-no-shed p99";
  let duration = if fast then 20. else 60. in
  let reps = if fast then 5 else 9 in
  let ev_base, ev_idle, overhead_pct = ov_overhead_sweep ~duration ~reps in
  let p99_bounded, stats_bounded = ov_burst_run ~bounded:true ~seed:11 in
  let p99_unbounded, _ = ov_burst_run ~bounded:false ~seed:11 in
  let sheds =
    stats_bounded.Obs_pe.sheds_mailbox + stats_bounded.Obs_pe.sheds_link
    + stats_bounded.Obs_pe.sheds_admission + stats_bounded.Obs_pe.sheds_sojourn
  in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "paxos engine throughput, %.0fs virtual, median of %d paired ratios"
         duration reps)
    ~header:[ "config"; "events/s"; "vs base" ]
    [
      [ "overload off"; Printf.sprintf "%.0f" ev_base; "baseline" ];
      [ "installed, knobs off"; Printf.sprintf "%.0f" ev_idle;
        Printf.sprintf "%+.1f%%" (-.overhead_pct) ];
    ];
  Metrics.Report.print ~title:"p99 delivery latency under a 2000/s 2s burst at node 0"
    ~header:[ "config"; "p99 (ms)"; "sheds"; "max depth" ]
    [
      [ "bounded (64, by-priority)"; Printf.sprintf "%.1f" p99_bounded;
        Metrics.Report.fint sheds;
        Metrics.Report.fint stats_bounded.Obs_pe.max_mailbox_depth ];
      [ "unbounded"; Printf.sprintf "%.1f" p99_unbounded; "0"; "(unbounded)" ];
    ];
  Printf.printf "  overload layer overhead (installed, idle): %.2f%% (budget 5%%)%s\n"
    overhead_pct
    (if overhead_pct < 5. then "" else "  ** OVER BUDGET **");
  Printf.printf "  burst p99: bounded %.1f ms vs unbounded %.1f ms%s\n" p99_bounded
    p99_unbounded
    (if p99_bounded < p99_unbounded then "" else "  ** SHEDDING DID NOT HELP **");
  ov_emit_json ~ev_base ~ev_idle ~overhead_pct ~p99_bounded ~p99_unbounded ~sheds
    ~max_depth:stats_bounded.Obs_pe.max_mailbox_depth;
  Printf.printf "  wrote %s\n" ov_json_path

(* ---------- CLOCK: per-node clock layer overhead ----------

   The budgeted quantity is the instrumented-but-inert path: every node
   given an identity clock entry (rate 1, zero offset — created via
   [set_clock_rate ~rate:1.0], which stays in the table where a heal
   would delete it), so every timer schedule and [Ctx.now] read goes
   through the clock conversions while producing byte-identical
   behaviour. That is what a run that never injects skew pays once the
   table exists; with no table at all the layer is a single [None]
   check. Same paired-slice protocol as the overload bench: the two
   configs differ by well under machine drift over a few seconds, so
   each rep advances both engines in alternating 1-virtual-second
   slices and contributes one throughput ratio; the budget is judged
   against the median ratio. Results go to stdout and
   BENCH_clock.json. *)

let clock_engine ~instrument ~seed =
  let topology =
    Net.Topology.uniform ~n:5
      (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)
  in
  let eng = Obs_pe.create ~seed ~jitter:0. ~topology () in
  Dsim.Trace.set_min_level (Obs_pe.trace eng) Dsim.Trace.Info;
  Obs_pe.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    Obs_pe.spawn eng (Proto.Node_id.of_int i)
  done;
  if instrument then
    for i = 0 to 4 do
      Obs_pe.set_clock_rate eng (Proto.Node_id.of_int i) ~rate:1.0
    done;
  eng

let clock_overhead_rep ~duration ~seed =
  let e_base = clock_engine ~instrument:false ~seed
  and e_inst = clock_engine ~instrument:true ~seed in
  let wall_base = ref 0.
  and wall_inst = ref 0. in
  let timed wall eng =
    let t0 = Unix.gettimeofday () in
    Obs_pe.run_for eng 1.;
    wall := !wall +. (Unix.gettimeofday () -. t0)
  in
  for slice = 0 to int_of_float duration - 1 do
    if slice mod 2 = 0 then begin
      timed wall_base e_base;
      timed wall_inst e_inst
    end
    else begin
      timed wall_inst e_inst;
      timed wall_base e_base
    end
  done;
  let evps wall eng = float_of_int (Obs_pe.stats eng).Obs_pe.events_processed /. !wall in
  (evps wall_base e_base, evps wall_inst e_inst)

let clock_overhead_sweep ~duration ~reps =
  ignore (clock_overhead_rep ~duration:2. ~seed:7) (* warmup *);
  let base = ref [] and inst = ref [] and ratios = ref [] in
  for r = 0 to reps - 1 do
    let b, i = clock_overhead_rep ~duration ~seed:(7 + r) in
    base := b :: !base;
    inst := i :: !inst;
    ratios := (i /. b) :: !ratios
  done;
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  (median !base, median !inst, (1. -. median !ratios) *. 100.)

(* Deterministic skew sanity check (virtual time, no wall clock): the
   same seeded paxos run with one replica's clock 25% fast must stay
   byte-equal on delivery counts to a run where that replica's timers
   genuinely fire early — i.e. the drift run must differ from the sync
   run, while two identical drift runs agree. *)
let clock_drift_determinism () =
  let run drift seed =
    let eng = clock_engine ~instrument:false ~seed in
    if drift then Obs_pe.set_clock_rate eng (Proto.Node_id.of_int 0) ~rate:1.25;
    Obs_pe.run_for eng 10.;
    (Obs_pe.stats eng).Obs_pe.messages_delivered
  in
  let sync = run false 11 in
  let d1 = run true 11 and d2 = run true 11 in
  (sync, d1, d1 = d2)

let clock_json_path = "BENCH_clock.json"

let clock_emit_json ~ev_base ~ev_inst ~overhead_pct ~sync_dlv ~drift_dlv ~drift_deterministic =
  let oc = open_out clock_json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"clock\",\n";
  p "  \"fast\": %b,\n" fast;
  p
    "  \"clock_overhead\": { \"base_events_per_sec\": %.0f, \"instrumented_events_per_sec\": \
     %.0f, \"overhead_pct\": %.2f, \"budget_pct\": 5.0 },\n"
    ev_base ev_inst overhead_pct;
  p
    "  \"drift_determinism\": { \"sync_delivered\": %d, \"drift_delivered\": %d, \
     \"drift_changes_schedule\": %b, \"repeat_runs_agree\": %b }\n"
    sync_dlv drift_dlv (sync_dlv <> drift_dlv) drift_deterministic;
  p "}\n";
  close_out oc

let clock_bench () =
  section "CLK Per-node clocks: identity-entry overhead and drift determinism";
  let duration = if fast then 20. else 60. in
  let reps = if fast then 5 else 9 in
  let ev_base, ev_inst, overhead_pct = clock_overhead_sweep ~duration ~reps in
  let sync_dlv, drift_dlv, drift_deterministic = clock_drift_determinism () in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "paxos engine throughput, %.0fs virtual, median of %d paired ratios"
         duration reps)
    ~header:[ "config"; "events/s"; "vs base" ]
    [
      [ "no clock table"; Printf.sprintf "%.0f" ev_base; "baseline" ];
      [ "identity clocks, all nodes"; Printf.sprintf "%.0f" ev_inst;
        Printf.sprintf "%+.1f%%" (-.overhead_pct) ];
    ];
  Metrics.Report.print ~title:"10s seeded paxos run, replica 0 at rate x1.25"
    ~header:[ "config"; "delivered"; "note" ]
    [
      [ "all clocks sync"; Metrics.Report.fint sync_dlv; "baseline schedule" ];
      [ "replica 0 fast"; Metrics.Report.fint drift_dlv;
        (if sync_dlv <> drift_dlv then "schedule shifted" else "** DRIFT HAD NO EFFECT **") ];
    ];
  Printf.printf "  clock layer overhead (identity entries): %.2f%% (budget 5%%)%s\n"
    overhead_pct
    (if overhead_pct < 5. then "" else "  ** OVER BUDGET **");
  Printf.printf "  drift determinism: repeat runs %s\n"
    (if drift_deterministic then "agree" else "DISAGREE  ** NOT DETERMINISTIC **");
  clock_emit_json ~ev_base ~ev_inst ~overhead_pct ~sync_dlv ~drift_dlv ~drift_deterministic;
  Printf.printf "  wrote %s\n" clock_json_path

(* BYZ --- What does the byzantine-mutation layer cost a run that never
   mutates? The admission path runs on every delivered message whether
   or not a storm is on: [App.validate] (a [Some] for paxos) plus
   Netem's mutate-rate gate. The paired base is the same paxos app
   with the validator stripped — byte-identical protocol, [None]
   admission — so the ratio prices exactly what a byz-free run pays
   for the feature existing. Same paired-slice protocol as the clock
   bench; judged against the median ratio. Results go to stdout and
   BENCH_byz.json. *)

module Byz_papp_base = struct
  include Obs_papp

  let validate = None
end

module Byz_pe_base = Engine.Sim.Make (Byz_papp_base)

let byz_topology () =
  Net.Topology.uniform ~n:5 (Net.Linkprop.v ~latency:0.02 ~bandwidth:1_000_000. ~loss:0.)

let byz_overhead_rep ~duration ~seed =
  let e_base = Byz_pe_base.create ~seed ~jitter:0. ~topology:(byz_topology ()) () in
  let e_inst = Obs_pe.create ~seed ~jitter:0. ~topology:(byz_topology ()) () in
  Byz_pe_base.set_resolver e_base Apps.Paxos.self_resolver;
  Obs_pe.set_resolver e_inst Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    Byz_pe_base.spawn e_base (Proto.Node_id.of_int i);
    Obs_pe.spawn e_inst (Proto.Node_id.of_int i)
  done;
  let wall_base = ref 0. and wall_inst = ref 0. in
  let timed_base () =
    let t0 = Unix.gettimeofday () in
    Byz_pe_base.run_for e_base 1.;
    wall_base := !wall_base +. (Unix.gettimeofday () -. t0)
  in
  let timed_inst () =
    let t0 = Unix.gettimeofday () in
    Obs_pe.run_for e_inst 1.;
    wall_inst := !wall_inst +. (Unix.gettimeofday () -. t0)
  in
  for slice = 0 to int_of_float duration - 1 do
    if slice mod 2 = 0 then begin
      timed_base ();
      timed_inst ()
    end
    else begin
      timed_inst ();
      timed_base ()
    end
  done;
  ( float_of_int (Byz_pe_base.stats e_base).Byz_pe_base.events_processed /. !wall_base,
    float_of_int (Obs_pe.stats e_inst).Obs_pe.events_processed /. !wall_inst )

let byz_overhead_sweep ~duration ~reps =
  ignore (byz_overhead_rep ~duration:2. ~seed:7) (* warmup *);
  let base = ref [] and inst = ref [] and ratios = ref [] in
  for r = 0 to reps - 1 do
    let b, i = byz_overhead_rep ~duration ~seed:(7 + r) in
    base := b :: !base;
    inst := i :: !inst;
    ratios := (i /. b) :: !ratios
  done;
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  (median !base, median !inst, (1. -. median !ratios) *. 100.)

(* Enabled-path sanity (virtual time, no wall clock): the pinned seeded
   byzantine storm must mutate, bounce some mutants at the validators,
   keep every safety property, and replay bit-identically. *)
let byz_storm_sanity () =
  let module X = Experiments.Chaos_exp in
  let a = X.run ~seed:42 ~byz:(-1) "paxos" in
  let b = X.run ~seed:42 ~byz:(-1) "paxos" in
  let replays =
    a.X.byz_emitted = b.X.byz_emitted
    && a.X.byz_rejected = b.X.byz_rejected
    && a.X.delivered = b.X.delivered
  in
  (a.X.byz_emitted, a.X.byz_rejected, a.X.byz_accepted, a.X.violations, replays)

let byz_json_path = "BENCH_byz.json"

let byz_emit_json ~ev_base ~ev_inst ~overhead_pct ~emitted ~rejected ~accepted ~violations
    ~replays =
  let oc = open_out byz_json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"byz\",\n";
  p "  \"fast\": %b,\n" fast;
  p
    "  \"disabled_path_overhead\": { \"base_events_per_sec\": %.0f, \
     \"instrumented_events_per_sec\": %.0f, \"overhead_pct\": %.2f, \"budget_pct\": 5.0 },\n"
    ev_base ev_inst overhead_pct;
  p
    "  \"storm_sanity\": { \"seed\": 42, \"byz_emitted\": %d, \"byz_rejected\": %d, \
     \"byz_accepted\": %d, \"violations\": %d, \"replays_bit_identical\": %b }\n"
    emitted rejected accepted violations replays;
  p "}\n";
  close_out oc

let byz_bench () =
  section "BYZ Byzantine mutation: disabled-path overhead and storm sanity";
  let duration = if fast then 20. else 60. in
  let reps = if fast then 5 else 9 in
  let ev_base, ev_inst, overhead_pct = byz_overhead_sweep ~duration ~reps in
  let emitted, rejected, accepted, violations, replays = byz_storm_sanity () in
  Metrics.Report.print
    ~title:
      (Printf.sprintf "paxos engine throughput, %.0fs virtual, median of %d paired ratios"
         duration reps)
    ~header:[ "config"; "events/s"; "vs base" ]
    [
      [ "no validator"; Printf.sprintf "%.0f" ev_base; "baseline" ];
      [ "validator, byz off"; Printf.sprintf "%.0f" ev_inst;
        Printf.sprintf "%+.1f%%" (-.overhead_pct) ];
    ];
  Metrics.Report.print ~title:"seeded byzantine storm (seed 42, global channel at 0.05)"
    ~header:[ "quantity"; "value"; "note" ]
    [
      [ "mutants emitted"; Metrics.Report.fint emitted;
        (if emitted > 0 then "storm was real" else "** NO MUTANTS **") ];
      [ "bounced by validators"; Metrics.Report.fint rejected;
        (if rejected > 0 then "admission exercised" else "** NOTHING BOUNCED **") ];
      [ "reached handlers"; Metrics.Report.fint accepted; "survived admission" ];
      [ "safety violations"; Metrics.Report.fint violations;
        (if violations = 0 then "invariants held" else "** UNSAFE **") ];
    ];
  Printf.printf "  disabled-path overhead (validator + rate gate): %.2f%% (budget 5%%)%s\n"
    overhead_pct
    (if overhead_pct < 5. then "" else "  ** OVER BUDGET **");
  Printf.printf "  storm replay: %s\n" (if replays then "bit-identical" else "** DIVERGED **");
  byz_emit_json ~ev_base ~ev_inst ~overhead_pct ~emitted ~rejected ~accepted ~violations
    ~replays;
  Printf.printf "  wrote %s\n" byz_json_path

let () =
  Printf.printf
    "Reproduction benches: Yabandeh et al., Simplifying Distributed System Development (HotOS 2009)\n";
  if fast then print_endline "(--fast: single seed, reduced sweeps)";
  if explorer_only then begin
    ex ();
    exit 0
  end;
  if obs_only then begin
    obs_bench ();
    exit 0
  end;
  if fd_only then begin
    fd_bench ();
    exit 0
  end;
  if overload_only then begin
    ov_bench ();
    exit 0
  end;
  if clock_only then begin
    clock_bench ();
    exit 0
  end;
  if byz_only then begin
    byz_bench ();
    exit 0
  end;
  e1 ();
  e23 ();
  e3b ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  s1 ();
  a1 ();
  a2 ();
  a3 ();
  a4 ();
  a5 ();
  ex ();
  obs_bench ();
  fd_bench ();
  ov_bench ();
  clock_bench ();
  byz_bench ();
  micro ();
  print_endline "\nAll experiment tables regenerated. See EXPERIMENTS.md for the paper-vs-measured record."
