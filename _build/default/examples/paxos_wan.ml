(* Consensus across a WAN (§3.1): five Paxos replicas in three areas
   commit a stream of locally-born commands. The proposer assignment is
   the exposed choice; we compare the classic fixed leader, the
   Mencius-style local proposer, and runtime-resolved policies — first
   on a balanced WAN, then with the fixed leader's access link
   congested.

   Run with: dune exec examples/paxos_wan.exe *)

let () =
  print_endline "Multi-instance Paxos, 5 replicas, 3 WAN areas, 60 virtual seconds.\n";
  List.iter
    (fun scenario ->
      Printf.printf "scenario: %s\n" (Experiments.Paxos_exp.scenario_name scenario);
      List.iter
        (fun policy ->
          let o = Experiments.Paxos_exp.run ~seed:9 ~scenario policy in
          Printf.printf
            "  %-15s %3d/%3d committed, mean %4.0fms, p99 %4.0fms, agreement violations: %d\n"
            (Experiments.Paxos_exp.policy_name policy)
            o.Experiments.Paxos_exp.committed o.Experiments.Paxos_exp.born
            o.Experiments.Paxos_exp.mean_latency_ms o.Experiments.Paxos_exp.p99_latency_ms
            o.Experiments.Paxos_exp.agreement_violations)
        Experiments.Paxos_exp.all_policies;
      print_endline "")
    Experiments.Paxos_exp.all_scenarios;
  print_endline "Safety never budges (agreement holds under every policy);";
  print_endline "performance is policy. The predictive resolver matches Mencius on";
  print_endline "a balanced WAN and beats both hard-coded policies when the";
  print_endline "environment shifts under them."
