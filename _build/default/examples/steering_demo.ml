(* Execution steering (§2): a lease service with a premature-expiry
   race hands the lease to two clients at once — unless the CrystalBall
   runtime, watching checkpoints and exploring consequences, vetoes the
   offending grant in flight.

   Run with: dune exec examples/steering_demo.exe *)

module R = Runtime.Crystal.Make (Apps.Lease.Default)
module E = R.E

let () =
  print_endline "Buggy lease service, 120 virtual seconds of traffic.\n";
  let unprotected = Experiments.Steering_exp.run ~seed:5 ~with_runtime:false () in
  Printf.printf "without runtime : %d exclusivity violations over %d grants\n"
    unprotected.Experiments.Steering_exp.violations unprotected.Experiments.Steering_exp.grants;
  let protected_ = Experiments.Steering_exp.run ~seed:5 ~with_runtime:true () in
  Printf.printf "with runtime    : %d violations over %d grants (%d messages vetoed in flight)\n\n"
    protected_.Experiments.Steering_exp.violations protected_.Experiments.Steering_exp.grants
    protected_.Experiments.Steering_exp.filtered;
  (* Show what a veto looks like from the inside: run a short protected
     session and print the steering trace. *)
  let eng = E.create ~seed:5 ~jitter:0. ~topology:Experiments.Steering_exp.topology () in
  E.set_resolver eng Core.Resolver.random;
  for i = 0 to 3 do
    E.spawn eng (Proto.Node_id.of_int i)
  done;
  let cry =
    R.attach
      ~config:
        {
          Runtime.Config.default with
          Runtime.Config.checkpoint_period = 0.1;
          checkpoint_delay = 0.05;
          steer_period = 0.1;
          steer_depth = 2;
          filter_ttl = 0.5;
        }
      ~neighbors:(fun _ -> List.init 4 Proto.Node_id.of_int)
      eng
  in
  R.run_for cry 30.;
  print_endline "steering trace (first vetoes installed):";
  List.iteri
    (fun i r ->
      if i < 5 then Printf.printf "  %s\n" (Format.asprintf "%a" Dsim.Trace.pp_record r))
    (Dsim.Trace.find (E.trace eng) ~component:"crystal" ~substring:"installing");
  print_endline "\nThe protocol code never mentions any of this: properties were";
  print_endline "declared, and the runtime predicted and steered."
