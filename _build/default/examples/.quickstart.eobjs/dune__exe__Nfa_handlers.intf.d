examples/nfa_handlers.mli:
