examples/quickstart.ml: Array Core Engine Format List Net Printf Proto
