examples/quickstart.mli:
