examples/overlay_rejoin.ml: Apps Experiments List Metrics Option Printf Proto
