examples/chaos_paxos.mli:
