examples/overlay_rejoin.mli:
