examples/chaos_paxos.ml: Apps Dsim Engine Format List Net Printf Proto String
