examples/steering_demo.mli:
