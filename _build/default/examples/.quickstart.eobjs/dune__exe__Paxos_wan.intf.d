examples/paxos_wan.mli:
