examples/nfa_handlers.ml: Core Dsim Engine Format List Net Option Printf Proto
