examples/paxos_wan.ml: Experiments List Printf
