examples/steering_demo.ml: Apps Core Dsim Experiments Format List Printf Proto Runtime
