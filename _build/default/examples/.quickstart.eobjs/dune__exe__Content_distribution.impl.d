examples/content_distribution.ml: Experiments List Printf
