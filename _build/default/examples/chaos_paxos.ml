(* Chaos engineering against consensus: a declarative fault plan —
   partitions, crashes, a degraded replica — runs against the Paxos
   deployment while clients keep submitting. Safety (agreement) must
   hold through all of it; performance degrades and recovers.

   Run with: dune exec examples/chaos_paxos.exe *)

module App = Apps.Paxos.Default
module E = Engine.Sim.Make (App)
module F = Engine.Faultplan
module Run = F.Run (E)

let plan =
  F.plan
    [
      (10., F.Degrade { endpoint = 1; latency_factor = 8.; bandwidth_factor = 0.2 });
      (20., F.Partition ([ 3; 4 ], [ 0; 1; 2 ]));
      (30., F.Kill 2);
      (35., F.Restart 2);
      (40., F.Heal_partition ([ 3; 4 ], [ 0; 1; 2 ]));
      (45., F.Restore 1);
    ]

let () =
  print_endline "Five Paxos replicas, local proposers, under this fault plan:\n";
  Format.printf "  @[<v>%a@]@.@." F.pp plan;
  let topology =
    Net.Topology.transit_stub
      ~jitter_rng:(Dsim.Rng.create 7)
      {
        Net.Topology.default_transit_stub with
        Net.Topology.transits = 3;
        stubs_per_transit = 2;
        clients_per_stub = 1;
      }
  in
  let eng = E.create ~seed:7 ~topology () in
  E.set_resolver eng Apps.Paxos.self_resolver;
  for i = 0 to 4 do
    E.spawn eng (Proto.Node_id.of_int i)
  done;
  Run.execute ~and_then:20. eng plan;
  let committed = ref 0 and born = ref 0 in
  let latencies = Dsim.Stats.create () in
  List.iter
    (fun (_, st) ->
      born := !born + App.born_count st;
      List.iter (fun l -> Dsim.Stats.add latencies (l *. 1000.)) (App.latencies st);
      committed := !committed + List.length (App.latencies st))
    (E.live_nodes eng);
  Printf.printf "committed %d of %d commands; mean %.0fms, p99 %.0fms\n" !committed !born
    (Dsim.Stats.mean latencies)
    (Dsim.Stats.percentile latencies 99.);
  let agreement_broken =
    List.exists (fun (_, n) -> String.equal n "agreement") (E.violations eng)
  in
  Printf.printf "agreement violations: %s\n"
    (if agreement_broken then "YES (bug!)" else "none");
  print_endline "\nThe fault plan is data: print it, replay it, sweep it.";
  print_endline "Safety is the property system's job; the plan only bends performance."
