(* Content distribution (§3.1): a 16-peer swarm downloads a 64-block
   file from a seed whose uplink we progressively choke, comparing the
   hard-coded strategies (random, rarest-random) with runtime-resolved
   ones. The paper's observation — neither hard-coded strategy is
   decidedly superior, so expose the choice — shows up as the gap that
   opens as the seed link tightens.

   Run with: dune exec examples/content_distribution.exe *)

let () =
  print_endline "Swarm download of a 64-block file; per-policy completion times.\n";
  List.iter
    (fun scenario ->
      Printf.printf "scenario: %s\n" (Experiments.Dissem_exp.scenario_name scenario);
      List.iter
        (fun policy ->
          let o = Experiments.Dissem_exp.run ~seed:7 ~scenario policy in
          Printf.printf "  %-14s %2d/15 done, mean %5.1fs, slowest %5.1fs, %d duplicate pieces\n"
            (Experiments.Dissem_exp.policy_name policy)
            o.Experiments.Dissem_exp.completed o.Experiments.Dissem_exp.mean_completion_s
            o.Experiments.Dissem_exp.max_completion_s o.Experiments.Dissem_exp.duplicate_pieces)
        Experiments.Dissem_exp.all_policies;
      print_endline "")
    Experiments.Dissem_exp.all_scenarios;
  print_endline "With a fast seed the strategies tie; as the seed chokes,";
  print_endline "diversity-aware selection pulls ahead - the deployment decides";
  print_endline "which policy wins, which is why the choice belongs to the runtime."
