(* The paper's case study (§4), narrated: 31 nodes build a random
   overlay tree, half of them fail and rejoin, and we compare the tree
   depth under the three setups (plus the learned resolver).

   Run with: dune exec examples/overlay_rejoin.exe *)

module RT = Experiments.Randtree_exp

(* Render the final tree of one run so the depth numbers have a face. *)
let render_final_tree () =
  let module CE = RT.Choice_engine in
  let eng = CE.create ~seed:43 ~topology:(RT.topology ~seed:43 ~nodes:RT.default_nodes) () in
  CE.set_lookahead eng { CE.default_lookahead with horizon = 3.0; max_events = 600 };
  let d : RT.driver =
    {
      spawn = (fun ?after i -> CE.spawn eng ?after (Proto.Node_id.of_int i));
      kill = (fun i -> CE.kill eng (Proto.Node_id.of_int i));
      restart = (fun ?after i -> CE.restart eng ?after (Proto.Node_id.of_int i));
      run_for = (fun dt -> CE.run_for eng dt);
      max_depth = (fun () -> RT.Choice_shape.max_depth (CE.global_view eng));
      joined_count = (fun () -> RT.Choice_shape.joined (CE.global_view eng));
      subtree_of_root_child =
        (fun () ->
          RT.Choice_shape.largest_root_subtree (CE.global_view eng) ~root:(Proto.Node_id.of_int 0));
      messages = (fun () -> (CE.stats eng).messages_delivered);
      forks = (fun () -> (CE.stats eng).lookahead_forks);
    }
  in
  RT.join_phase d ~nodes:RT.default_nodes ~seed:43;
  let _ = RT.rejoin_phase d ~seed:43 in
  let parents =
    List.map
      (fun (id, st) ->
        ( Proto.Node_id.to_int id,
          Option.map Proto.Node_id.to_int (Apps.Randtree_choice.Default.parent_of st) ))
      (CE.global_view eng).Proto.View.nodes
  in
  print_endline "Choice-CrystalBall's tree after the rejoin storm:";
  print_string (Metrics.Treeview.render (Metrics.Treeview.of_parents parents))

let () =
  let nodes = Experiments.Randtree_exp.default_nodes in
  Printf.printf "RandTree case study: %d nodes, optimal depth %d.\n\n" nodes
    (Experiments.Randtree_exp.optimal_depth ~nodes ~max_children:2);
  List.iter
    (fun setup ->
      let o = Experiments.Randtree_exp.run ~seed:43 setup in
      Printf.printf "%-20s joined %d/%d, depth %d after join, %s after subtree fail+rejoin\n"
        (Experiments.Randtree_exp.setup_name setup)
        o.Experiments.Randtree_exp.joined nodes o.Experiments.Randtree_exp.depth_after_join
        (match o.Experiments.Randtree_exp.depth_after_rejoin with
        | Some d -> string_of_int d
        | None -> "-"))
    (Experiments.Randtree_exp.paper_setups @ [ Experiments.Randtree_exp.Choice_greedy ]);
  print_endline "";
  render_final_tree ();
  print_endline "";
  print_endline "Baseline and Choice-Random produce the same trees (same policy,";
  print_endline "one hard-coded, one exposed); predictive resolution keeps the";
  print_endline "rebuilt tree shallower - the paper's 10 vs 9 relationship."
