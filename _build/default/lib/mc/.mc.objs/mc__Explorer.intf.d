lib/mc/explorer.mli: Format Proto
