lib/mc/steering.mli: Explorer Format Proto
