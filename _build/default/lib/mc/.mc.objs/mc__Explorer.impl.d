lib/mc/explorer.ml: Buffer Core Digest Dsim Format Hashtbl List Net Proto
