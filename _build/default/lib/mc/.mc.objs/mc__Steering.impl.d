lib/mc/steering.ml: Explorer Format List Proto String
