(** Execution steering (paper §2): decide, from a snapshot, whether an
    imminent action leads to a safety violation and whether vetoing it
    is itself safe.

    The verdict is computed purely on explorer worlds; installing the
    resulting event filters into a live engine is the runtime's job.
    An action is only vetoed if re-exploring the world {e without} it
    surfaces no violation of a property that was not already doomed —
    the paper's "if consequence prediction does not find any new
    inconsistencies due to execution steering". *)

module Make (App : Proto.App_intf.APP) : sig
  module Ex : module type of Explorer.Make (App)

  (** A filter to install: drop deliveries matching this triple. *)
  type veto = { src : Proto.Node_id.t; dst : Proto.Node_id.t; kind : string }

  type verdict =
    | No_violation
    | Steer of veto list  (** safe filters covering offending first steps *)
    | Cannot_steer of string list
        (** violations predicted, but every candidate filter introduced
            new ones; the property names are reported *)

  val decide :
    ?max_worlds:int ->
    ?include_drops:bool ->
    ?generic_node:bool ->
    depth:int ->
    Ex.world ->
    verdict

  val pp_veto : Format.formatter -> veto -> unit
end
