(** ASCII rendering of parent-pointer trees — the overlay examples and
    debugging sessions want to {e see} the tree, not infer it from a
    depth number. *)

type node = { id : int; children : node list }

val of_parents : (int * int option) list -> node list
(** Builds the forest from (node, parent) pairs; roots are nodes with
    no parent (or whose parent is absent). Children are ordered by id.
    Cycles are broken by treating the smallest-id member reached twice
    as already placed. *)

val render : ?max_width:int -> node list -> string
(** Classic box-drawing tree, one root per block:
    {v
    0
    ├── 1
    │   └── 3
    └── 2
    v} *)

val depth : node -> int
(** Depth of the deepest leaf; a single node has depth 1. *)
