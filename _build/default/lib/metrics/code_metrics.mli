(** Source-code metrics for the paper's E1 comparison: lines of code
    and if-else statements per handler, computed over this repository's
    own OCaml sources (the paper measured its Mace sources the same
    way).

    A {e handler region} is a top-level binding whose name starts with
    [handle_] or [h_], or is [init] or [on_timer] — the message/timer
    handler bodies of an app module. Complexity is the count of [if]
    keywords (each carrying its implicit else-arm) per handler
    region. *)

type t = {
  file : string;
  loc : int;  (** non-blank, non-comment lines *)
  handlers : int;  (** handler regions found *)
  if_else : int;  (** [if] keywords inside handler regions *)
  per_handler : float;  (** [if_else / handlers]; 0 when no handlers *)
}

val strip : string -> string
(** Source text with comments and string literals blanked out
    (structure preserved); exposed for tests. *)

val analyze_source : file:string -> string -> t
(** Analyses source text given verbatim. *)

val analyze_file : string -> t
(** Reads and analyses an [.ml] file.
    @raise Sys_error if the file cannot be read. *)

val reduction_percent : baseline:t -> improved:t -> float
(** Percentage LoC decrease from [baseline] to [improved]. *)

val pp : Format.formatter -> t -> unit
