lib/metrics/report.ml: Buffer List Printf String
