lib/metrics/seqdiag.ml: Buffer Bytes Hashtbl Int List Printf String
