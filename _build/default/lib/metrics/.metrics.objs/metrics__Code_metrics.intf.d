lib/metrics/code_metrics.mli: Format
