lib/metrics/treeview.ml: Buffer Int List Set String
