lib/metrics/code_metrics.ml: Buffer Format List String
