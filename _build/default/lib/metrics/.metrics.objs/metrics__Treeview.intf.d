lib/metrics/treeview.mli:
