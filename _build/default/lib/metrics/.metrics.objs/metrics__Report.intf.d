lib/metrics/report.mli:
