lib/metrics/seqdiag.mli:
