(** ASCII message sequence diagrams from an engine's message log. *)

type message = { at_ms : float; src : int; dst : int; kind : string }

val render : ?max_messages:int -> message list -> string
(** One lane per participant (sorted by id), one row per message:

    {v
            n0        n1        n2
     12.3ms  o---join--->         |
     15.1ms  |          o--ack---->
    v}

    Self-sends render as a [loop] marker on the lane. At most
    [max_messages] rows (default 100) are rendered, oldest first; a
    truncation note follows if more were supplied. *)
