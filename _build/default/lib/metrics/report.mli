(** Plain-text table rendering for the benchmark harness — one table
    per reproduced experiment, in the shape the paper reports it. *)

type align = Left | Right

val table :
  ?align:align list ->
  title:string ->
  header:string list ->
  string list list ->
  string
(** Renders an aligned table with a title rule. Rows shorter than the
    header are padded with empty cells. [align] defaults to [Left] for
    the first column and [Right] for the rest. *)

val print : ?align:align list -> title:string -> header:string list -> string list list -> unit
(** [table] followed by [print_string]. *)

val fint : int -> string
val ffloat : ?decimals:int -> float -> string
val fopt_int : int option -> string
