type align = Left | Right

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let table ?align ~title ~header rows =
  let cols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= cols then row else row @ List.init (cols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = cols -> a
    | Some _ | None -> List.init cols (fun i -> if i = 0 then Left else Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h)
          rows)
      header
  in
  let render_row row =
    let cells =
      List.mapi (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell) row
    in
    "  " ^ String.concat "  " cells
  in
  let rule = String.make (String.length title) '-' in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n" ^ rule ^ "\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf
    (render_row (List.map (fun w -> String.make w '-') widths) ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print ?align ~title ~header rows = print_string (table ?align ~title ~header rows)
let fint = string_of_int
let ffloat ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fopt_int = function Some i -> string_of_int i | None -> "-"
