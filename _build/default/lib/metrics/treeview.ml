type node = { id : int; children : node list }

let of_parents pairs =
  let ids = List.map fst pairs in
  let children_of parent =
    List.sort Int.compare
      (List.filter_map
         (fun (n, p) -> match p with Some q when q = parent -> Some n | _ -> None)
         pairs)
  in
  let module Iset = Set.Make (Int) in
  let rec build visited id =
    if Iset.mem id visited then { id; children = [] }
    else
      let visited = Iset.add id visited in
      { id; children = List.map (build visited) (children_of id) }
  in
  let is_root (_, p) =
    match p with None -> true | Some q -> not (List.mem q ids)
  in
  List.map (fun (n, _) -> build Iset.empty n) (List.filter is_root pairs)
  |> List.sort (fun a b -> Int.compare a.id b.id)

let render ?(max_width = 100) roots =
  let buf = Buffer.create 256 in
  let add line =
    let line =
      if String.length line > max_width then String.sub line 0 max_width else line
    in
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  let rec walk prefix is_last node =
    let connector = if is_last then "└── " else "├── " in
    add (prefix ^ connector ^ string_of_int node.id);
    let child_prefix = prefix ^ if is_last then "    " else "│   " in
    let rec children = function
      | [] -> ()
      | [ last ] -> walk child_prefix true last
      | c :: rest ->
          walk child_prefix false c;
          children rest
    in
    children node.children
  in
  List.iter
    (fun root ->
      add (string_of_int root.id);
      let rec top = function
        | [] -> ()
        | [ last ] -> walk "" true last
        | c :: rest ->
            walk "" false c;
            top rest
      in
      top root.children)
    roots;
  Buffer.contents buf

let rec depth node =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 node.children
