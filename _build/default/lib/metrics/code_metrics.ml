type t = {
  file : string;
  loc : int;
  handlers : int;
  if_else : int;
  per_handler : float;
}

(* Blank out comments (with nesting) and string literals, preserving
   newlines so line structure survives. *)
let strip src =
  let n = String.length src in
  let buf = Buffer.create n in
  let rec go i depth in_string =
    if i >= n then ()
    else if in_string then begin
      match src.[i] with
      | '\\' when i + 1 < n ->
          Buffer.add_string buf "  ";
          go (i + 2) depth true
      | '"' ->
          Buffer.add_char buf ' ';
          go (i + 1) depth false
      | '\n' ->
          Buffer.add_char buf '\n';
          go (i + 1) depth true
      | _ ->
          Buffer.add_char buf ' ';
          go (i + 1) depth true
    end
    else if depth > 0 then begin
      if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
        Buffer.add_string buf "  ";
        go (i + 2) (depth + 1) false
      end
      else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
        Buffer.add_string buf "  ";
        go (i + 2) (depth - 1) false
      end
      else begin
        Buffer.add_char buf (if src.[i] = '\n' then '\n' else ' ');
        go (i + 1) depth false
      end
    end
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      Buffer.add_string buf "  ";
      go (i + 2) 1 false
    end
    else if src.[i] = '"' then begin
      Buffer.add_char buf ' ';
      go (i + 1) 0 true
    end
    else begin
      Buffer.add_char buf src.[i];
      go (i + 1) 0 false
    end
  in
  go 0 0 false;
  Buffer.contents buf

let lines s = String.split_on_char '\n' s

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

(* Words of a line, splitting on anything that cannot be part of an
   identifier or keyword. *)
let words line =
  let out = ref [] in
  let cur = Buffer.create 16 in
  let flush () =
    if Buffer.length cur > 0 then begin
      out := Buffer.contents cur :: !out;
      Buffer.clear cur
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> Buffer.add_char cur c
      | _ -> flush ())
    line;
  flush ();
  List.rev !out

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* A top-level binding begins at column 0..2 with "let"; a handler
   binding's name starts with handle_/h_ or is init/on_timer. *)
let binding_name line =
  let trimmed = String.trim line in
  let col =
    let rec first_non_space i =
      if i >= String.length line then i
      else match line.[i] with ' ' | '\t' -> first_non_space (i + 1) | _ -> i
    in
    first_non_space 0
  in
  if col > 2 then None
  else
    match words trimmed with
    | "let" :: "rec" :: name :: _ | "let" :: name :: _ -> Some name
    | _ -> None

let is_handler_name name =
  starts_with "handle_" name || starts_with "h_" name || name = "init" || name = "on_timer"

let count_ifs line =
  List.length (List.filter (fun w -> w = "if") (words line))

let analyze_source ~file src =
  let stripped = strip src in
  let all_lines = lines stripped in
  let loc = List.length (List.filter (fun l -> not (is_blank l)) all_lines) in
  (* Walk lines tracking whether we are inside a handler region. *)
  let handlers = ref 0 in
  let if_else = ref 0 in
  let in_handler = ref false in
  List.iter
    (fun line ->
      (match binding_name line with
      | Some name ->
          if is_handler_name name then begin
            incr handlers;
            in_handler := true
          end
          else in_handler := false
      | None -> ());
      if !in_handler then if_else := !if_else + count_ifs line)
    all_lines;
  let handlers = !handlers and if_else = !if_else in
  {
    file;
    loc;
    handlers;
    if_else;
    per_handler = (if handlers = 0 then 0. else float_of_int if_else /. float_of_int handlers);
  }

let analyze_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  analyze_source ~file:path src

let reduction_percent ~baseline ~improved =
  if baseline.loc = 0 then 0.
  else 100. *. (1. -. (float_of_int improved.loc /. float_of_int baseline.loc))

let pp ppf t =
  Format.fprintf ppf "%s: %d LoC, %d handlers, %d if-else (%.2f/handler)" t.file t.loc
    t.handlers t.if_else t.per_handler
