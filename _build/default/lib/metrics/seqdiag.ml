type message = { at_ms : float; src : int; dst : int; kind : string }

let lane_width = 12

let render ?(max_messages = 100) messages =
  let participants =
    List.sort_uniq Int.compare (List.concat_map (fun m -> [ m.src; m.dst ]) messages)
  in
  match participants with
  | [] -> "(no messages)\n"
  | _ ->
      let lane_of =
        let table = Hashtbl.create 16 in
        List.iteri (fun i p -> Hashtbl.replace table p i) participants;
        fun p -> Hashtbl.find table p
      in
      let n = List.length participants in
      let time_col = 10 in
      let width = time_col + (n * lane_width) in
      let buf = Buffer.create 1024 in
      (* Header: participant labels centred on their lanes. *)
      let header = Bytes.make width ' ' in
      List.iteri
        (fun i p ->
          let label = Printf.sprintf "n%d" p in
          let centre = time_col + (i * lane_width) + (lane_width / 2) in
          let start = max 0 (centre - (String.length label / 2)) in
          String.iteri
            (fun j c -> if start + j < width then Bytes.set header (start + j) c)
            label)
        participants;
      Buffer.add_string buf (Bytes.to_string header);
      Buffer.add_char buf '\n';
      let shown = ref 0 in
      List.iter
        (fun m ->
          if !shown < max_messages then begin
            incr shown;
            let row = Bytes.make width ' ' in
            (* Time gutter. *)
            let time = Printf.sprintf "%8.1fms" m.at_ms in
            String.iteri (fun j c -> if j < time_col then Bytes.set row j c) time;
            (* Idle lanes. *)
            List.iteri
              (fun i _ ->
                Bytes.set row (time_col + (i * lane_width) + (lane_width / 2)) '|')
              participants;
            let col p = time_col + (lane_of p * lane_width) + (lane_width / 2) in
            if m.src = m.dst then begin
              (* Self-delivery. *)
              let c = col m.src in
              Bytes.set row c 'o';
              let label = " " ^ m.kind ^ " (self)" in
              String.iteri
                (fun j ch -> if c + 1 + j < width then Bytes.set row (c + 1 + j) ch)
                label
            end
            else begin
              let a = col m.src and b = col m.dst in
              let lo = min a b and hi = max a b in
              for j = lo + 1 to hi - 1 do
                Bytes.set row j '-'
              done;
              Bytes.set row a 'o';
              Bytes.set row b (if b > a then '>' else '<');
              (* Kind label centred on the arrow. *)
              let centre = (lo + hi) / 2 in
              let start = max (lo + 1) (centre - (String.length m.kind / 2)) in
              String.iteri
                (fun j ch -> if start + j < hi then Bytes.set row (start + j) ch)
                m.kind
            end;
            Buffer.add_string buf (Bytes.to_string row);
            Buffer.add_char buf '\n'
          end)
        messages;
      let total = List.length messages in
      if total > max_messages then
        Buffer.add_string buf (Printf.sprintf "... (%d more messages)\n" (total - max_messages));
      Buffer.contents buf
