lib/apps/gossip.ml: Core Dsim Format Fun Int List Proto Set
